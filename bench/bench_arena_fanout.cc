// bench_arena_fanout: the dispatch-cost A/B behind the batch arena.
//
// Part 1 counts record copies directly. The legacy engine materialized one
// private std::vector<TransactionRecord> per shard for every batch — 1 copy
// at ingest plus `jobs` copies at dispatch, O(jobs) per record. The arena
// appends each record once into a shared slab and hands every shard a span
// view of it — exactly 1 copy per record, independent of the shard count.
// A copy-counting record type drives both designs over the same stream and
// prints copies-per-record plus the pure dispatch wall time.
//
// Part 2 runs the real sharded engine (checker suite, worker threads) over
// one transaction stream at max_inflight_batches = 1 (synchronous: the
// producer blocks until each batch drains), 2 (double-buffered pipeline,
// the default) and 4, reporting ingest-to-finish wall time.
//
// With REPRO_BENCH_JSON set, every row is also written to
// BENCH_arena_fanout.json (schema_version 1).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abv/eval_engine.h"
#include "bench_table_common.h"
#include "checker/wrapper.h"
#include "psl/parser.h"
#include "support/batch_arena.h"
#include "tlm/transaction.h"

using namespace repro;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Part 1: copy counting -------------------------------------------------------

std::atomic<uint64_t> g_copies{0};

// Stands in for TransactionRecord: a payload heavy enough that copies are
// the dominant cost, with a global copy counter. Moves are not counted —
// both designs move the producer's record into their buffer.
struct CountingRecord {
  std::vector<uint64_t> payload;

  explicit CountingRecord(size_t words = 16) : payload(words, 0xA5) {}
  CountingRecord(const CountingRecord& other) : payload(other.payload) {
    g_copies.fetch_add(1, std::memory_order_relaxed);
  }
  CountingRecord& operator=(const CountingRecord& other) {
    payload = other.payload;
    g_copies.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  CountingRecord(CountingRecord&&) = default;
  CountingRecord& operator=(CountingRecord&&) = default;
};

struct FanoutResult {
  uint64_t copies = 0;
  double seconds = 0;
};

// The legacy fan-out: buffer a batch, then copy the whole batch into one
// private vector per shard (what per-shard ownership used to require).
FanoutResult run_legacy(size_t records, size_t jobs, size_t batch_size) {
  g_copies.store(0);
  const double start = now_s();
  std::vector<CountingRecord> open;
  open.reserve(batch_size);
  uint64_t consumed = 0;
  auto dispatch = [&] {
    for (size_t s = 0; s < jobs; ++s) {
      std::vector<CountingRecord> shard_copy(open.begin(), open.end());
      consumed += shard_copy.size();
    }
    open.clear();
  };
  for (size_t i = 0; i < records; ++i) {
    open.push_back(CountingRecord(16));  // the ingest copy (counted via copy ctor path)
    g_copies.fetch_add(1, std::memory_order_relaxed);  // model copying in from the caller
    if (open.size() == batch_size) dispatch();
  }
  if (!open.empty()) dispatch();
  FanoutResult r;
  r.seconds = now_s() - start;
  r.copies = g_copies.load() + consumed * 0;  // consumed keeps the loop alive
  return r;
}

// The arena path: one append per record; every shard reads the same span.
FanoutResult run_arena(size_t records, size_t jobs, size_t batch_size) {
  g_copies.store(0);
  const double start = now_s();
  support::BatchArena<CountingRecord> arena(batch_size);
  uint64_t consumed = 0;
  auto dispatch = [&](support::BatchArena<CountingRecord>::Span span) {
    if (span.empty()) return;
    for (size_t s = 0; s < jobs; ++s) {
      for (const CountingRecord& rec : span) consumed += rec.payload.size() ? 1 : 0;
      arena.release(span);
    }
  };
  for (size_t i = 0; i < records; ++i) {
    arena.append(CountingRecord(16));  // moved in; the one logical copy:
    g_copies.fetch_add(1, std::memory_order_relaxed);
    if (arena.pending() == batch_size) dispatch(arena.seal(static_cast<uint32_t>(jobs)));
  }
  dispatch(arena.seal(static_cast<uint32_t>(jobs)));
  FanoutResult r;
  r.seconds = now_s() - start;
  r.copies = g_copies.load() + consumed * 0;
  return r;
}

// ---- Part 2: real engine dispatch latency ----------------------------------------

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  if (!result.ok()) {
    std::fprintf(stderr, "bad property: %s\n", text.c_str());
    std::exit(1);
  }
  return result.value();
}

tlm::TransactionRecord make_record(sim::Time end, uint64_t ds, uint64_t rdy,
                                   uint64_t out) {
  static auto keys = std::make_shared<tlm::Snapshot::Keys>(
      tlm::Snapshot::Keys{"ds", "rdy", "out"});
  tlm::TransactionRecord record;
  record.end = end;
  record.observables = tlm::Snapshot(keys);
  record.observables.set("ds", ds);
  record.observables.set("rdy", rdy);
  record.observables.set("out", out);
  return record;
}

double run_engine(size_t jobs, size_t batch_size, size_t max_inflight,
                  const std::vector<tlm::TransactionRecord>& stream) {
  abv::EvalEngine::Options options;
  options.config = {.jobs = jobs,
                    .batch_size = batch_size,
                    .max_inflight_batches = max_inflight};
  abv::EvalEngine engine(options);
  std::vector<std::unique_ptr<checker::TlmCheckerWrapper>> wrappers;
  for (const char* text :
       {"s1: always (!ds || next_e[1,40](rdy)) @Tb",
        "s2: always (!ds || next_e[1,80](rdy)) @Tb",
        "d1: always (!ds || (!rdy until rdy)) @Tb",
        "f1: always (!ds || next_e[1,40](out != 0)) @Tb",
        "s3: always (!ds || next_e[2,80](rdy)) @Tb",
        "s4: always (!ds || next_e[1,120](rdy)) @Tb"}) {
    wrappers.push_back(
        std::make_unique<checker::TlmCheckerWrapper>(tlm_prop(text), 10));
    engine.add(wrappers.back().get());
  }
  const double start = now_s();
  engine.on_records(stream.data(), stream.data() + stream.size());
  engine.finish();
  return now_s() - start;
}

double best_of(int repeats, const std::function<double()>& run) {
  double best = 1e100;
  for (int i = 0; i < repeats; ++i) best = std::min(best, run());
  return best;
}

std::string json_row(const char* part, const char* mode, size_t jobs,
                     size_t records, size_t max_inflight, uint64_t copies,
                     double copies_per_record, double seconds) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"part\": \"%s\", \"mode\": \"%s\", \"jobs\": %zu, "
                "\"records\": %zu, \"max_inflight\": %zu, \"copies\": %llu, "
                "\"copies_per_record\": %.3f, \"seconds\": %.6f}",
                part, mode, jobs, records, max_inflight,
                static_cast<unsigned long long>(copies), copies_per_record,
                seconds);
  return buf;
}

}  // namespace

int main() {
  bench::BenchJson json("arena_fanout");
  const size_t kRecords = bench::scaled(200000);
  const size_t kBatch = 64;

  std::printf("=== Part 1: per-record copy count, legacy fan-out vs arena "
              "(%zu records, batch %zu) ===\n", kRecords, kBatch);
  std::printf("%-8s %6s %14s %18s %12s\n", "mode", "jobs", "copies",
              "copies/record", "seconds");
  for (size_t jobs : {1, 2, 4, 8}) {
    const FanoutResult legacy = run_legacy(kRecords, jobs, kBatch);
    const FanoutResult arena = run_arena(kRecords, jobs, kBatch);
    const double legacy_cpr = double(legacy.copies) / double(kRecords);
    const double arena_cpr = double(arena.copies) / double(kRecords);
    std::printf("%-8s %6zu %14llu %18.3f %12.6f\n", "legacy", jobs,
                static_cast<unsigned long long>(legacy.copies), legacy_cpr,
                legacy.seconds);
    std::printf("%-8s %6zu %14llu %18.3f %12.6f\n", "arena", jobs,
                static_cast<unsigned long long>(arena.copies), arena_cpr,
                arena.seconds);
    json.add_raw(json_row("copies", "legacy", jobs, kRecords, 0,
                          legacy.copies, legacy_cpr, legacy.seconds));
    json.add_raw(json_row("copies", "arena", jobs, kRecords, 0,
                          arena.copies, arena_cpr, arena.seconds));
    // The whole point: legacy scales with jobs, the arena does not.
    if (arena.copies != kRecords ||
        legacy.copies != kRecords * (1 + jobs)) {
      std::fprintf(stderr, "copy-count model violated!\n");
      return 1;
    }
  }

  const size_t kEngineRecords = bench::scaled(60000);
  const size_t jobs = bench::bench_jobs();
  std::vector<tlm::TransactionRecord> stream;
  stream.reserve(kEngineRecords);
  sim::Time t = 10;
  for (size_t i = 0; i < kEngineRecords; ++i) {
    const bool fire = i % 3 == 0;
    stream.push_back(
        make_record(t, fire ? 1 : 0, fire ? 0 : 1, i % 5 == 0 ? 0 : i));
    t += i % 7 == 6 ? 130 : 40;
  }

  std::printf("\n=== Part 2: engine ingest+finish wall time, %zu records, "
              "%zu jobs ===\n", kEngineRecords, jobs);
  std::printf("%-14s %12s %14s\n", "max_inflight", "seconds", "records/s");
  for (size_t max_inflight : {1, 2, 4}) {
    const double seconds = best_of(3, [&] {
      return run_engine(jobs, kBatch, max_inflight, stream);
    });
    std::printf("%-14zu %12.4f %14.0f\n", max_inflight, seconds,
                double(kEngineRecords) / seconds);
    json.add_raw(json_row("dispatch", "arena", jobs, kEngineRecords,
                          max_inflight, 0, 0.0, seconds));
  }
  return 0;
}
