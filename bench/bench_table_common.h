// Shared machinery for the Table I / Fig. 6 benchmark harnesses.
#ifndef REPRO_BENCH_BENCH_TABLE_COMMON_H_
#define REPRO_BENCH_BENCH_TABLE_COMMON_H_

#include <cstdio>
#include <string>

#include "models/testbench.h"

namespace repro::bench {

// Workload sizes picked so the RTL baseline runs a fraction of a second on a
// small machine while keeping >= 10^5 simulated cycles. Override with the
// REPRO_BENCH_SCALE environment variable (integer percentage, default 100).
size_t scaled(size_t workload);

// Worker count used for the sharded-engine benchmark columns: the
// REPRO_BENCH_JOBS environment variable when set, otherwise the hardware
// concurrency clamped to [2, 8].
size_t bench_jobs();

struct Measurement {
  double seconds = 0;
  bool functional_ok = false;
  bool properties_ok = false;
  uint64_t transactions = 0;
  models::RunResult result;
};

// Runs one configuration `repeats` times and keeps the minimum wall time.
Measurement measure(const models::RunConfig& config, int repeats = 3);

// Prints one Table-I-style row.
void print_row(const char* label, double without_s, double with_s,
               bool ok);

// The paper's checker-count points: 1, 5 and the whole suite.
struct CheckerPoints {
  size_t one = 1;
  size_t five = 5;
  size_t all;
};

// Machine-readable benchmark output. When the REPRO_BENCH_JSON environment
// variable is set (non-empty, not "0"), every record add()ed during the
// harness run is written as one JSON file, BENCH_<name>.json, at
// destruction. A value naming an existing directory selects the output
// directory; any other truthy value writes to the current directory.
class BenchJson {
 public:
  explicit BenchJson(std::string name);
  ~BenchJson();

  bool enabled() const { return enabled_; }

  void add(const std::string& label, const models::RunConfig& config,
           double seconds, const models::RunResult& result);
  void add(const std::string& label, const models::RunConfig& config,
           const Measurement& m) {
    add(label, config, m.seconds, m.result);
  }

  // Appends one pre-rendered JSON object for harnesses whose records are not
  // whole-simulation runs (micro-benchmarks measuring engine internals).
  void add_raw(const std::string& json_object);

 private:
  std::string name_;
  std::string dir_;
  bool enabled_ = false;
  std::string records_;  // accumulated JSON array elements
  size_t count_ = 0;
};

// Emits the full Table I block for one design.
void run_table1(models::Design design, size_t workload, size_t suite_size);

}  // namespace repro::bench

#endif  // REPRO_BENCH_BENCH_TABLE_COMMON_H_
