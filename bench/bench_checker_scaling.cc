// Checks the paper's linearity claim (Sec. V): "the number of activated
// checkers linearly affects the overhead in the overall simulation, in both
// testcases and at each abstraction level". Sweeps the checker count from 0
// to the full suite at every level and prints per-checker overhead.
//
// At the TLM levels each row is printed twice: once with the serial
// evaluation engine (jobs=1, the paper's configuration) and once with the
// sharded engine (jobs=N, REPRO_BENCH_JOBS or hardware concurrency), so the
// scaling of the parallel checker engine is visible next to the serial
// baseline it must match verdict-for-verdict.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "analysis/prune.h"
#include "bench_table_common.h"
#include "psl/parser.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

struct RowFit {
  double slope = 0;  // overhead per checker, percent
  double r = 1;      // linearity correlation
};

RowFit fit(const std::vector<double>& secs) {
  const double base = secs[0];
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n_points = static_cast<double>(secs.size());
  for (size_t i = 0; i < secs.size(); ++i) {
    const double x = static_cast<double>(i);
    const double y = (secs[i] / base - 1.0) * 100.0;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  RowFit f;
  f.slope = (n_points * sxy - sx * sy) / (n_points * sxx - sx * sx);
  const double denom = (n_points * sxx - sx * sx) * (n_points * syy - sy * sy);
  f.r = denom > 0 ? (n_points * sxy - sx * sy) / std::sqrt(denom) : 1.0;
  return f;
}

// Aggregate coverage summary for one measured run: suite-wide vacuity split
// from the schema-v2 coverage counters, emitted as a raw JSON record next
// to the timing record it annotates.
void add_coverage_record(bench::BenchJson& json, const char* label,
                         const models::RunConfig& config,
                         const bench::Measurement& m) {
  if (!json.enabled() || m.result.report.properties().empty()) return;
  uint64_t activations = 0, holds = 0, failures = 0;
  uint64_t real = 0, vacuous = 0, dyn_vacuous = 0;
  for (const abv::PropertyReport& p : m.result.report.properties()) {
    activations += p.activations;
    holds += p.holds;
    failures += p.failures;
    real += p.real_passes;
    vacuous += p.vacuous_passes;
    if (p.dynamically_vacuous()) ++dyn_vacuous;
  }
  const double rate =
      holds == 0 ? 0.0
                 : static_cast<double>(vacuous) / static_cast<double>(holds);
  char record[512];
  std::snprintf(
      record, sizeof record,
      "{\"label\": \"%s coverage\", \"design\": \"%s\", \"level\": \"%s\", "
      "\"checkers\": %zu, \"jobs\": %zu, \"activations\": %llu, "
      "\"holds\": %llu, \"failures\": %llu, \"real_passes\": %llu, "
      "\"vacuous_passes\": %llu, \"vacuous_pass_rate\": %.6f, "
      "\"dynamically_vacuous_properties\": %llu}",
      label, models::to_string(config.design),
      models::to_string(config.level), config.checkers, config.engine.jobs,
      static_cast<unsigned long long>(activations),
      static_cast<unsigned long long>(holds),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(real),
      static_cast<unsigned long long>(vacuous), rate,
      static_cast<unsigned long long>(dyn_vacuous));
  json.add_raw(record);
}

std::vector<double> row(models::RunConfig config, size_t suite_size,
                        size_t jobs, bench::BenchJson& json,
                        const char* suffix = "") {
  config.engine.jobs = jobs;
  std::vector<double> secs;
  for (size_t n = 0; n <= suite_size; ++n) {
    config.checkers = n;
    const bench::Measurement m = bench::measure(config, /*repeats=*/2);
    char label[64];
    std::snprintf(label, sizeof label, "%s x%zu %zuC%s",
                  models::to_string(config.level), jobs, n, suffix);
    json.add(label, config, m);
    add_coverage_record(json, label, config, m);
    secs.push_back(m.seconds);
  }
  return secs;
}

void print_row(const char* label, const std::vector<double>& secs) {
  std::printf("%-12s", label);
  for (double s : secs) std::printf(" %8.4f", s);
  std::printf("\n");
  const RowFit f = fit(secs);
  std::printf("%-12s overhead/checker = %.1f%%, linearity r = %.3f\n", "",
              f.slope, f.r);
}

void sweep(Design design, size_t workload, size_t suite_size) {
  const size_t w = bench::scaled(workload);
  const size_t jobs = bench::bench_jobs();
  bench::BenchJson json(std::string("checker_scaling_") +
                        models::to_string(design));
  std::printf("--- %s (workload %zu) ---\n", models::to_string(design), w);
  std::printf("%-12s", "level");
  for (size_t n = 0; n <= suite_size; ++n) std::printf(" %7zuC", n);
  std::printf("\n");
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    models::RunConfig config;
    config.design = design;
    config.level = level;
    config.workload = w;
    const std::vector<double> serial = row(config, suite_size, /*jobs=*/1, json);
    print_row(models::to_string(level), serial);
    if (level == Level::kRtl) continue;  // the engine only runs at TLM
    // Same serial sweep with the lockstep kernel disabled: the scaling
    // tables show the vectorized and scalar compiled backends side by side
    // (verdict-identical; only the per-checker slope may move).
    models::RunConfig scalar_config = config;
    scalar_config.engine.vectorized = false;
    const std::vector<double> novec =
        row(scalar_config, suite_size, /*jobs=*/1, json, " novec");
    char label[32];
    std::snprintf(label, sizeof label, "%s -vec", models::to_string(level));
    print_row(label, novec);
    const std::vector<double> sharded = row(config, suite_size, jobs, json);
    std::snprintf(label, sizeof label, "%s x%zu", models::to_string(level),
                  jobs);
    print_row(label, sharded);
    std::printf("%-12s full-suite serial/sharded = %.2fx, "
                "novec/vectorized = %.2fx\n",
                "", serial.back() / sharded.back(),
                novec.back() / serial.back());
  }
}

// Extra properties that the prune planner removes: tautologies (elided) and
// restatements of suite obligations (subsumed). Only suite signals are
// referenced, so the unpruned baseline can simulate every one of them.
std::vector<psl::RtlProperty> prunable_extras() {
  auto parsed = psl::parse_rtl_property_file(
      "x1: always (rdy || !rdy) @clk_pos;\n"
      "x2: always (ds -> ds) @clk_pos;\n"
      "x3: always ((ds && rdy) -> rdy) @clk_pos;\n"
      "x4: always (!ds || rdy || !rdy) @clk_pos;\n"
      "x5: always (!ds || next[17](rdy)) @clk_pos;\n"
      "x6: always (!ds || next[17](rdy)) @clk_pos;");
  return parsed.ok() ? parsed.value() : std::vector<psl::RtlProperty>{};
}

// Pruned-vs-unpruned A/B: the full DES56 suite plus six prunable extras.
// Six of the fifteen properties (40%) leave the live set, plus the suite's
// own p7 => 47% pruned. Records/s and live-checker counts per leg go to
// BENCH_prune.json; the two legs must agree verdict-for-verdict.
void prune_ab() {
  bench::BenchJson json("prune");
  std::printf("=== Analysis-guided pruning A/B (DES56 + 6 prunable extras) "
              "===\n");
  std::printf("%-14s %8s %8s %10s %12s %8s\n", "level", "mode", "live",
              "seconds", "records/s", "speedup");
  for (Level level : {Level::kTlmCa, Level::kTlmAt}) {
    models::RunConfig config;
    config.design = Design::kDes56;
    config.level = level;
    config.checkers = 9;
    config.workload = bench::scaled(1600);
    config.engine.jobs = 1;
    config.extra_properties = prunable_extras();

    models::RunConfig pruned = config;
    pruned.analysis.prune = analysis::PruneMode::kSafe;

    const bench::Measurement base = bench::measure(config, /*repeats=*/3);
    const bench::Measurement fast = bench::measure(pruned, /*repeats=*/3);
    const size_t total = config.checkers + config.extra_properties.size();
    const size_t live = fast.result.prune_plan.live();
    const double base_rps =
        static_cast<double>(base.transactions) / base.seconds;
    const double fast_rps =
        static_cast<double>(fast.transactions) / fast.seconds;
    const bool verdicts_match =
        base.properties_ok == fast.properties_ok &&
        base.result.report.all_ok() == fast.result.report.all_ok();
    std::printf("%-14s %8s %5zu/%-2zu %10.4f %12.0f %8s\n",
                models::to_string(level), "off", total, total, base.seconds,
                base_rps, "");
    std::printf("%-14s %8s %5zu/%-2zu %10.4f %12.0f %7.2fx%s\n",
                models::to_string(level), "safe", live, total, fast.seconds,
                fast_rps, fast_rps / base_rps,
                verdicts_match ? "" : "  VERDICT MISMATCH");
    if (json.enabled()) {
      char record[512];
      std::snprintf(
          record, sizeof record,
          "{\"label\": \"prune A/B %s\", \"design\": \"des56\", "
          "\"level\": \"%s\", \"jobs\": 1, \"properties\": %zu, "
          "\"live_checkers_off\": %zu, \"live_checkers_safe\": %zu, "
          "\"pruned_fraction\": %.3f, \"seconds_off\": %.6f, "
          "\"seconds_safe\": %.6f, \"records_per_sec_off\": %.1f, "
          "\"records_per_sec_safe\": %.1f, \"speedup\": %.3f, "
          "\"verdicts_match\": %s}",
          models::to_string(level), models::to_string(level), total, total,
          live,
          static_cast<double>(total - live) / static_cast<double>(total),
          base.seconds, fast.seconds, base_rps, fast_rps,
          fast_rps / base_rps, verdicts_match ? "true" : "false");
      json.add_raw(record);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Checker-count scaling (linearity claim, Sec. V) ===\n");
  std::printf("sharded rows use jobs=%zu (REPRO_BENCH_JOBS to override)\n",
              bench::bench_jobs());
  sweep(Design::kDes56, 1600, 9);
  sweep(Design::kColorConv, 16000, 12);
  prune_ab();
  return 0;
}
