// Checks the paper's linearity claim (Sec. V): "the number of activated
// checkers linearly affects the overhead in the overall simulation, in both
// testcases and at each abstraction level". Sweeps the checker count from 0
// to the full suite at every level and prints per-checker overhead.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_table_common.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

void sweep(Design design, size_t workload, size_t suite_size) {
  const size_t w = bench::scaled(workload);
  std::printf("--- %s (workload %zu) ---\n", models::to_string(design), w);
  std::printf("%-8s", "level");
  for (size_t n = 0; n <= suite_size; ++n) std::printf(" %7zuC", n);
  std::printf("\n");
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    models::RunConfig config;
    config.design = design;
    config.level = level;
    config.workload = w;
    std::vector<double> secs;
    for (size_t n = 0; n <= suite_size; ++n) {
      config.checkers = n;
      secs.push_back(bench::measure(config, /*repeats=*/2).seconds);
    }
    std::printf("%-8s", models::to_string(level));
    for (double s : secs) std::printf(" %8.4f", s);
    std::printf("\n");
    // Least-squares slope of overhead vs. checker count, as a linearity
    // indicator: report overhead-per-checker and the correlation.
    const double base = secs[0];
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    const double n_points = static_cast<double>(secs.size());
    for (size_t i = 0; i < secs.size(); ++i) {
      const double x = static_cast<double>(i);
      const double y = (secs[i] / base - 1.0) * 100.0;
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      syy += y * y;
    }
    const double slope = (n_points * sxy - sx * sy) / (n_points * sxx - sx * sx);
    const double denom = (n_points * sxx - sx * sx) * (n_points * syy - sy * sy);
    const double r = denom > 0 ? (n_points * sxy - sx * sy) / std::sqrt(denom) : 1.0;
    std::printf("%-8s overhead/checker = %.1f%%, linearity r = %.3f\n", "",
                slope, r);
  }
}

}  // namespace

int main() {
  std::printf("=== Checker-count scaling (linearity claim, Sec. V) ===\n");
  sweep(Design::kDes56, 1600, 9);
  sweep(Design::kColorConv, 16000, 12);
  return 0;
}
