// Ablation: why the property abstraction is needed, and why our
// opaque-fixpoint refinement of push_ahead matters.
//
// Three DES56 TLM-AT runs on the SAME correct model and workload:
//   A. naive reuse — the unabstracted RTL properties evaluated on the
//      transaction stream, counting transactions as clock events (the
//      approach Sec. III-A rejects). Expect spurious failures.
//   B. paper-exact push mode — Methodology III.1 with next distributed into
//      until operands (reproduces Fig. 3's q2 verbatim). The resulting
//      per-position next_e deadlines fall between AT transactions, so the
//      until-based properties fail spuriously (the soundness gap documented
//      in DESIGN.md).
//   C. opaque-fixpoint mode (library default) — all properties hold.
#include <cstdio>
#include <iostream>

#include "bench_table_common.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

models::RunResult run_at(const char* label, bench::BenchJson& json,
                         std::vector<size_t> indices, rewrite::PushMode mode,
                         bool naive) {
  models::RunConfig config;
  config.design = Design::kDes56;
  config.level = Level::kTlmAt;
  config.workload = repro::bench::scaled(400);
  config.property_indices = std::move(indices);
  config.abstraction.push_mode = mode;
  config.abstraction.at_replay_unabstracted = naive;
  models::RunResult result = models::run_simulation(config);
  json.add(label, config, result.wall_seconds, result);
  return result;
}

uint64_t total_failures(const models::RunResult& r) {
  return r.report.total_failures();
}

}  // namespace

int main() {
  std::printf("=== Ablation: naive reuse vs. paper push mode vs. default ===\n");
  std::printf("(DES56 TLM-AT, correct model — every failure is spurious)\n\n");

  bench::BenchJson json("ablation_naive");

  // A: naive event counting. p3 (index 2) is excluded: it references the
  // abstracted signals, which do not exist at all in the AT interface.
  const models::RunResult naive =
      run_at("A naive", json, {0, 1, 3, 4, 5, 6, 7, 8},
             rewrite::PushMode::kOpaqueFixpoints, /*naive=*/true);
  std::printf("A. naive next[n] event counting: %llu spurious failures\n",
              static_cast<unsigned long long>(total_failures(naive)));

  // B: paper-exact push mode, full suite.
  const models::RunResult paper =
      run_at("B paper push", json, {0, 1, 2, 3, 4, 5, 6, 7, 8},
             rewrite::PushMode::kDistributeThroughFixpoints, /*naive=*/false);
  std::printf("B. paper push mode (next into until): %llu spurious failures\n",
              static_cast<unsigned long long>(total_failures(paper)));

  // C: library default.
  const models::RunResult sound =
      run_at("C default", json, {0, 1, 2, 3, 4, 5, 6, 7, 8},
             rewrite::PushMode::kOpaqueFixpoints, /*naive=*/false);
  std::printf("C. opaque-fixpoint mode (default):  %llu spurious failures\n\n",
              static_cast<unsigned long long>(total_failures(sound)));

  std::printf("per-property failures, configuration B:\n");
  paper.report.print(std::cout);

  const bool shape_ok = total_failures(naive) > 0 && total_failures(sound) == 0;
  std::printf("\nexpected shape (A > 0, C == 0): %s\n", shape_ok ? "ok" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
