// Regenerates the ColorConv half of Table I (12-property suite).
#include "bench_table_common.h"

int main() {
  repro::bench::run_table1(repro::models::Design::kColorConv,
                           /*workload=*/24000, /*suite_size=*/12);
  return 0;
}
