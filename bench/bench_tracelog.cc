// bench_tracelog: throughput of the versioned trace-log container and the
// offline replay path it feeds.
//
// Part 1 measures the container itself on a synthetic record stream: write
// and read throughput (records/s and MB/s) for both encodings, the CRC-framed
// binary format and the JSONL debug format.
//
// Part 2 compares end-to-end replay against live ingest on the DES56 TLM-AT
// configuration with the full checker suite: a live run records its stream,
// then the same log is replayed through the same checkers. Replay skips the
// simulation kernel, so it must not be slower than live ingest — the run
// exits non-zero if replay throughput drops below 0.9x the live rate, which
// makes this binary usable as a CI regression gate.
//
// With REPRO_BENCH_JSON set, every row is also written to
// BENCH_tracelog.json (schema_version 1).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_table_common.h"
#include "models/testbench.h"
#include "support/tracelog.h"
#include "tlm/record_source.h"
#include "tlm/transaction.h"

using namespace repro;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double best_of(int repeats, const std::function<double()>& run) {
  double best = 1e100;
  for (int i = 0; i < repeats; ++i) best = std::min(best, run());
  return best;
}

tlm::RecordStreamMeta bench_meta() {
  tlm::RecordStreamMeta meta;
  meta.design = "DES56";
  meta.level = "TLM-AT";
  meta.clock_period_ns = 10;
  meta.observables = {"ds", "rdy", "out"};
  return meta;
}

std::vector<tlm::TransactionRecord> synth_records(size_t count) {
  auto keys = std::make_shared<tlm::Snapshot::Keys>(
      tlm::Snapshot::Keys{"ds", "rdy", "out"});
  std::vector<tlm::TransactionRecord> records;
  records.reserve(count);
  sim::Time t = 10;
  for (size_t i = 0; i < count; ++i) {
    tlm::TransactionRecord r;
    r.start = t;
    r.end = t + 40;
    r.address = i % 7;
    r.data = {0xC0FFEE00 + i, i * i};
    r.observables = tlm::Snapshot(keys);
    r.observables.set("ds", i % 3 == 0 ? 1 : 0);
    r.observables.set("rdy", i % 3 == 0 ? 0 : 1);
    r.observables.set("out", i % 5 == 0 ? 0 : i);
    records.push_back(std::move(r));
    t += 40;
  }
  return records;
}

std::string json_row(const char* part, const char* format, size_t records,
                     uint64_t bytes, double seconds, double records_per_s,
                     double mb_per_s) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"part\": \"%s\", \"format\": \"%s\", \"records\": %zu, "
                "\"bytes\": %llu, \"seconds\": %.6f, "
                "\"records_per_s\": %.0f, \"mb_per_s\": %.2f}",
                part, format, records,
                static_cast<unsigned long long>(bytes), seconds, records_per_s,
                mb_per_s);
  return buf;
}

// Part 1: raw container throughput on one synthetic stream, both encodings.
int run_container_bench(bench::BenchJson& json, const std::string& tmp) {
  const size_t kRecords = bench::scaled(200000);
  const auto records = synth_records(kRecords);
  const tlm::RecordStreamMeta meta = bench_meta();

  std::printf("=== Part 1: container throughput (%zu records) ===\n",
              kRecords);
  std::printf("%-8s %8s %12s %12s %14s %10s\n", "format", "op", "bytes",
              "seconds", "records/s", "MB/s");
  for (const char* ext : {".rtabv", ".jsonl"}) {
    const std::string path = tmp + "/bench_tracelog" + ext;
    const char* format = ext[1] == 'r' ? "binary" : "jsonl";

    const double write_s = best_of(3, [&] {
      const double start = now_s();
      support::tracelog::TraceWriter writer(path, meta);
      for (const tlm::TransactionRecord& r : records) writer.append(r);
      writer.finish();
      if (!writer.ok()) {
        std::fprintf(stderr, "write failed: %s\n", writer.error().c_str());
        std::exit(1);
      }
      return now_s() - start;
    });
    const uint64_t bytes = std::filesystem::file_size(path);
    const double mb = double(bytes) / 1e6;
    std::printf("%-8s %8s %12llu %12.4f %14.0f %10.1f\n", format, "write",
                static_cast<unsigned long long>(bytes), write_s,
                double(kRecords) / write_s, mb / write_s);
    json.add_raw(json_row("container_write", format, kRecords, bytes, write_s,
                          double(kRecords) / write_s, mb / write_s));

    const double read_s = best_of(3, [&] {
      const double start = now_s();
      support::tracelog::TraceReader reader;
      if (auto err = reader.open(path)) {
        std::fprintf(stderr, "read failed: %s\n", err->to_string().c_str());
        std::exit(1);
      }
      if (reader.records().size() != kRecords) {
        std::fprintf(stderr, "short read: %zu records\n",
                     reader.records().size());
        std::exit(1);
      }
      return now_s() - start;
    });
    std::printf("%-8s %8s %12llu %12.4f %14.0f %10.1f\n", format, "read",
                static_cast<unsigned long long>(bytes), read_s,
                double(kRecords) / read_s, mb / read_s);
    json.add_raw(json_row("container_read", format, kRecords, bytes, read_s,
                          double(kRecords) / read_s, mb / read_s));
  }
  return 0;
}

// Part 2: live run (recording) vs offline replay of the recorded log, same
// design, level and checker suite. Returns non-zero when replay throughput
// falls below the 0.9x-of-live gate.
int run_replay_bench(bench::BenchJson& json, const std::string& tmp) {
  const std::string log = tmp + "/bench_tracelog_des56.rtabv";

  models::RunConfig live;
  live.design = models::Design::kDes56;
  live.level = models::Level::kTlmAt;
  live.workload = bench::scaled(2400);
  live.checkers = 9;
  live.ingest.record_path = log;

  models::RunConfig replay = live;
  replay.ingest.record_path.clear();
  replay.ingest.replay_path = log;

  std::printf("\n=== Part 2: live ingest vs offline replay "
              "(DES56 TLM-AT, workload %zu, 9 checkers) ===\n",
              live.workload);
  std::printf("%-8s %12s %14s %14s\n", "mode", "seconds", "records", "records/s");

  const bench::Measurement live_m = bench::measure(live);
  const double live_rate = double(live_m.transactions) / live_m.seconds;
  std::printf("%-8s %12.4f %14llu %14.0f\n", "live", live_m.seconds,
              static_cast<unsigned long long>(live_m.transactions), live_rate);
  json.add("live record", live, live_m);

  const bench::Measurement replay_m = bench::measure(replay);
  if (!replay_m.result.ingest_error.empty()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay_m.result.ingest_error.c_str());
    return 1;
  }
  const double replay_rate = double(replay_m.transactions) / replay_m.seconds;
  std::printf("%-8s %12.4f %14llu %14.0f\n", "replay", replay_m.seconds,
              static_cast<unsigned long long>(replay_m.transactions),
              replay_rate);
  json.add("replay", replay, replay_m);

  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"part\": \"gate\", \"live_records_per_s\": %.0f, "
                "\"replay_records_per_s\": %.0f, \"ratio\": %.3f}",
                live_rate, replay_rate, replay_rate / live_rate);
  json.add_raw(buf);
  std::printf("replay/live throughput ratio: %.2fx (gate: >= 0.90x)\n",
              replay_rate / live_rate);

  if (!live_m.functional_ok || !live_m.properties_ok ||
      !replay_m.properties_ok) {
    std::fprintf(stderr, "verdicts regressed during benchmark run\n");
    return 1;
  }
  if (live_m.transactions != replay_m.transactions) {
    std::fprintf(stderr, "replay saw %llu records, live produced %llu\n",
                 static_cast<unsigned long long>(replay_m.transactions),
                 static_cast<unsigned long long>(live_m.transactions));
    return 1;
  }
  if (replay_rate < 0.9 * live_rate) {
    std::fprintf(stderr, "replay throughput gate failed: %.0f < 0.9 * %.0f\n",
                 replay_rate, live_rate);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  bench::BenchJson json("tracelog");
  std::error_code ec;
  const std::string tmp = std::filesystem::temp_directory_path(ec).string();
  if (ec) {
    std::fprintf(stderr, "no temp directory: %s\n", ec.message().c_str());
    return 1;
  }
  if (int rc = run_container_bench(json, tmp)) return rc;
  return run_replay_bench(json, tmp);
}
