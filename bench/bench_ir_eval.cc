// Micro-benchmark of the two checker-instance backends (Sec. IV): the
// tree-walking interpreter (detail::Node virtual dispatch) vs the compiled
// flat program (checker/program.h), stepped over identical synthetic event
// streams for every abstracted DES56 property.
//
// Each backend drives one Instance through the stream with reset-on-resolve
// (the wrapper's recycling pattern), so the numbers measure steady-state
// step throughput including verdict resolution and reuse. Also reports the
// hash-consing hit rate of the expression intern table over the suite.
//
// The all-checkers columns step a full 64-instance battery per property —
// the wrapper's many-instances-one-formula shape — once through 64 scalar
// compiled instances and once through the 64-wide lockstep kernel
// (checker/batch.h), with reset-on-resolve recycling on both sides and a
// resolution-count parity check between them.
//
// The analysis-cost section times the symbolic bounded trajectory
// evaluation (analysis/symbolic.h) over both shipped suites at both levels
// and records dead-node counts and the fraction of properties it discharges
// (never-fails, exhaustively) into BENCH_symbolic.json. It doubles as the
// CI wall-clock gate: `bench_ir_eval --symbolic-only` runs just that
// section and exits non-zero when the analysis blows a generous budget.
//
// With REPRO_BENCH_JSON set, records land in BENCH_ir_eval.json (and
// BENCH_symbolic.json for the analysis-cost section).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analysis/symbolic.h"
#include "bench_table_common.h"
#include "checker/batch.h"
#include "checker/checker.h"
#include "checker/instance.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "models/properties.h"
#include "psl/intern.h"
#include "rewrite/methodology.h"
#include "support/coverage.h"
#include "support/rng.h"

using namespace repro;

namespace {

// Synthetic TLM-AT-style stream: transaction-end events at irregular
// instants, handshake-shaped signals so next/until obligations both resolve
// and survive. Deterministic (fixed seed) so both backends see the same
// trace.
checker::Trace make_trace(size_t length) {
  Rng rng(0x1DEA11EDULL);
  checker::Trace trace;
  trace.reserve(length);
  psl::TimeNs t = 0;
  size_t since_ds = 1000;
  for (size_t i = 0; i < length; ++i) {
    t += 5 + rng.below(46);  // 5..50 ns between transaction ends
    const bool ds = rng.chance(1, 5);
    if (ds) since_ds = 0; else ++since_ds;
    checker::Observation ob;
    ob.time = t;
    ob.values.set("ds", ds ? 1 : 0);
    // rdy usually follows an accepted operation a few events later.
    ob.values.set("rdy", (!ds && since_ds >= 2 && rng.chance(3, 5)) ? 1 : 0);
    ob.values.set("out", rng.chance(9, 10) ? 1 + rng.below(1000) : 0);
    ob.values.set("indata", rng.below(1000));
    ob.values.set("monitor_en", 1);
    trace.push_back(std::move(ob));
  }
  return trace;
}

struct Throughput {
  double steps_per_second = 0;
  uint64_t resolutions = 0;  // verdicts reached (instance then reset)
};

// One timed pass of `instance` over the trace, resetting on every resolved
// verdict (the wrapper's recycling pattern).
Throughput time_pass(checker::Instance& instance, const checker::Trace& trace,
                     size_t iters) {
  instance.reset();
  Throughput t;
  const auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    for (const checker::Observation& ob : trace) {
      const checker::Event ev{ob.time, &ob.values};
      if (instance.step(ev) != checker::Verdict::kPending) {
        ++t.resolutions;
        instance.reset();
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  t.steps_per_second =
      static_cast<double>(iters * trace.size()) / elapsed.count();
  return t;
}

// Measures both backends with interleaved repetitions (A B A B ...) so that
// machine-load drift hits both equally; keeps the best pass of each.
void run_pair(checker::Instance& interp, checker::Instance& compiled,
              const checker::Trace& trace, size_t iters, Throughput& ti,
              Throughput& tc) {
  time_pass(interp, trace, iters);    // warm-up
  time_pass(compiled, trace, iters);  // warm-up
  for (int rep = 0; rep < 5; ++rep) {
    const Throughput a = time_pass(interp, trace, iters);
    const Throughput b = time_pass(compiled, trace, iters);
    if (a.steps_per_second > ti.steps_per_second) ti = a;
    if (b.steps_per_second > tc.steps_per_second) tc = b;
  }
}

// ---- All-checkers battery: 64 instances of one property ------------------------

constexpr uint32_t kWidth = checker::BatchState::kLanes;

// 64 scalar compiled instances stepped one at a time per event.
Throughput time_scalar_battery(
    std::vector<std::unique_ptr<checker::Instance>>& battery,
    const checker::Trace& trace, size_t iters) {
  for (auto& instance : battery) instance->reset();
  Throughput t;
  const auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    for (const checker::Observation& ob : trace) {
      const checker::Event ev{ob.time, &ob.values};
      for (auto& instance : battery) {
        if (instance->step(ev) != checker::Verdict::kPending) {
          ++t.resolutions;
          instance->reset();
        }
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  t.steps_per_second =
      static_cast<double>(iters * trace.size() * battery.size()) /
      elapsed.count();
  return t;
}

// The same 64 instances as lockstep lanes: one prime() per event advances
// the whole word, then each lane's verdict is read off (and recycled).
Throughput time_vector_battery(checker::BatchState& block,
                               const checker::Trace& trace, size_t iters) {
  for (uint32_t lane = 0; lane < kWidth; ++lane) block.reset_lane(lane);
  Throughput t;
  const auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    for (const checker::Observation& ob : trace) {
      const checker::Event ev{ob.time, &ob.values};
      block.prime(ev, ~uint64_t{0});
      for (uint32_t lane = 0; lane < kWidth; ++lane) {
        if (block.step_lane(ev, lane) != checker::Verdict::kPending) {
          ++t.resolutions;
          block.reset_lane(lane);
        }
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  t.steps_per_second =
      static_cast<double>(iters * trace.size() * kWidth) / elapsed.count();
  return t;
}

void run_battery_pair(std::vector<std::unique_ptr<checker::Instance>>& battery,
                      checker::BatchState& block, const checker::Trace& trace,
                      size_t iters, Throughput& ts, Throughput& tv) {
  time_scalar_battery(battery, trace, iters);  // warm-up
  time_vector_battery(block, trace, iters);    // warm-up
  for (int rep = 0; rep < 5; ++rep) {
    const Throughput a = time_scalar_battery(battery, trace, iters);
    const Throughput b = time_vector_battery(block, trace, iters);
    if (a.steps_per_second > ts.steps_per_second) ts = a;
    if (b.steps_per_second > tv.steps_per_second) tv = b;
  }
}

// ---- Telemetry overhead: coverage row attached vs detached ---------------

// One timed sample: `passes` fresh PropertyCheckers (event timestamps must
// be monotonic within a checker's lifetime, so the checker cannot be
// re-fed the same trace) each driven once through the stream and finished.
// With `row` set, the checker mirrors its stats into the live coverage row
// after every event — the full telemetry path exercised by the snapshot
// sampler. `stats_out`, when non-null, receives the last pass's stats.
double time_telemetry_pass(const psl::ExprPtr& formula,
                           const checker::Trace& trace, size_t passes,
                           support::CoverageTable::Row* row,
                           checker::CheckerStats* stats_out) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t p = 0; p < passes; ++p) {
    checker::PropertyChecker ck("bench", formula, nullptr);
    ck.set_coverage(row);
    for (const checker::Observation& ob : trace) {
      ck.on_event(ob.time, ob.values);
    }
    ck.finish();
    if (stats_out && p + 1 == passes) *stats_out = ck.stats();
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(passes * trace.size()) / elapsed.count();
}

// ---- Symbolic analysis cost ----------------------------------------------------

// Generous wall-clock budget for symbolically analyzing BOTH shipped suites
// at both levels. The observed cost is a few milliseconds; the gate exists
// to catch accidental exponential blow-ups, not to tune milliseconds.
constexpr double kSymbolicBudgetSeconds = 10.0;

// Runs the symbolic bounded trajectory evaluation over one suite: every
// property's RTL formula plus its abstracted TLM formula (when it differs),
// mirroring check_symbolic. Returns per-suite aggregates.
struct SymbolicCost {
  size_t levels = 0;      // (property, level) pairs attempted
  size_t analyzed = 0;    // accepted by an encoding (status kOk)
  size_t skipped = 0;     // declined (mixed currencies, abort, budget)
  size_t discharged = 0;  // proved never-failing over an exhaustive horizon
  size_t witnesses = 0;   // reachable failures with a replay-verified trace
  size_t dead_nodes = 0;  // program nodes that never influence the verdict
  size_t folded = 0;      // programs shrunk by the parity-gated fold
  double seconds = 0;
};

SymbolicCost symbolic_suite_cost(const models::PropertySuite& suite) {
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const std::vector<rewrite::AbstractionOutcome> outcomes =
      rewrite::abstract_suite(suite.properties, options);

  analysis::SymbolicEval::Options sym_opt;
  sym_opt.clock_period_ns = suite.clock_period_ns;
  sym_opt.step_budget = 16;

  SymbolicCost cost;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    std::vector<psl::ExprPtr> levels = {suite.properties[i].formula};
    if (!outcomes[i].deleted() &&
        psl::to_string(outcomes[i].property->formula) !=
            psl::to_string(suite.properties[i].formula)) {
      levels.push_back(outcomes[i].property->formula);
    }
    for (const psl::ExprPtr& formula : levels) {
      ++cost.levels;
      analysis::SymbolicEval sym(formula, sym_opt);
      if (sym.status() != analysis::SymbolicEval::Status::kOk) {
        ++cost.skipped;
        continue;
      }
      ++cost.analyzed;
      if (sym.never_fails() && sym.exhaustive()) {
        ++cost.discharged;
      } else if (sym.fail_witness().has_value()) {
        ++cost.witnesses;
      }
      if (sym.exhaustive()) cost.dead_nodes += sym.dead_nodes().size();
      size_t folded_nodes = 0;
      if (sym.fold_dead(&folded_nodes) != nullptr) ++cost.folded;
      (void)folded_nodes;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  cost.seconds = elapsed.count();
  return cost;
}

// Prints and records the analysis-cost table; returns non-zero when the
// wall-clock budget is blown.
int run_symbolic_cost_section() {
  bench::BenchJson json("symbolic");
  std::printf("\n=== Symbolic analysis cost (16-step budget, both levels) "
              "===\n");
  std::printf("%-10s %7s %9s %8s %11s %9s %11s %7s %10s\n", "suite", "levels",
              "analyzed", "skipped", "discharged", "witnesses", "dead nodes",
              "folds", "seconds");
  double total_seconds = 0;
  for (const models::PropertySuite& suite :
       {models::des56_suite(), models::colorconv_suite()}) {
    const SymbolicCost c = symbolic_suite_cost(suite);
    total_seconds += c.seconds;
    const double discharged_fraction =
        c.analyzed == 0 ? 0.0
                        : static_cast<double>(c.discharged) /
                              static_cast<double>(c.analyzed);
    std::printf("%-10s %7zu %9zu %8zu %7zu/%-3.0f%% %9zu %11zu %7zu %10.5f\n",
                suite.design.c_str(), c.levels, c.analyzed, c.skipped,
                c.discharged, 100.0 * discharged_fraction, c.witnesses,
                c.dead_nodes, c.folded, c.seconds);
    if (json.enabled()) {
      char record[512];
      std::snprintf(
          record, sizeof record,
          "{\"label\": \"symbolic %s\", \"design\": \"%s\", "
          "\"step_budget\": 16, \"levels\": %zu, \"analyzed\": %zu, "
          "\"skipped\": %zu, \"discharged\": %zu, "
          "\"discharged_fraction\": %.6f, \"witnesses\": %zu, "
          "\"dead_nodes\": %zu, \"folded_programs\": %zu, "
          "\"seconds\": %.6f, \"budget_seconds\": %.1f}",
          suite.design.c_str(), suite.design.c_str(), c.levels, c.analyzed,
          c.skipped, c.discharged, discharged_fraction, c.witnesses,
          c.dead_nodes, c.folded, c.seconds, kSymbolicBudgetSeconds);
      json.add_raw(record);
    }
  }
  std::printf("symbolic analysis of both suites: %.5f s (budget %.1f s)\n",
              total_seconds, kSymbolicBudgetSeconds);
  if (total_seconds > kSymbolicBudgetSeconds) {
    std::printf("SYMBOLIC ANALYSIS OVER BUDGET\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // CI gate mode: run only the (cheap) symbolic analysis-cost section.
  if (argc > 1 && std::strcmp(argv[1], "--symbolic-only") == 0) {
    return run_symbolic_cost_section();
  }
  const size_t kTraceLen = bench::scaled(2048);
  const size_t kIters = 64;
  const checker::Trace trace = make_trace(kTraceLen);

  const models::PropertySuite suite = models::des56_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const std::vector<rewrite::AbstractionOutcome> outcomes =
      rewrite::abstract_suite(suite.properties, options);

  bench::BenchJson json("ir_eval");
  models::RunConfig meta;  // bookkeeping for the JSON records
  meta.design = models::Design::kDes56;
  meta.level = models::Level::kTlmAt;
  meta.workload = kTraceLen * kIters;
  meta.checkers = 1;

  // The battery columns amortise one prime() over 64 lanes; fewer passes
  // keep the 64x-larger step count per pass in budget.
  const size_t kBatteryIters = kIters / 8;

  std::printf("=== Instance step throughput: interpreter vs compiled ===\n");
  std::printf("%zu-event stream x %zu passes per property; all-checkers "
              "columns step %u instances x %zu passes\n\n",
              kTraceLen, kIters, kWidth, kBatteryIters);
  std::printf("%-6s %14s %14s %9s %14s %14s %9s %8s\n", "prop",
              "interp steps/s", "compiled st/s", "speedup", "scalar64 st/s",
              "vector64 st/s", "vspeedup", "program");

  double log_speedup_sum = 0;
  size_t measured = 0;
  double log_vector_sum = 0;
  size_t vector_measured = 0;
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    if (outcomes[i].deleted()) continue;
    const psl::ExprPtr& formula = outcomes[i].property->formula;
    const std::string& name = suite.properties[i].name;

    checker::Instance interp(formula);
    const auto program = checker::Program::compile(formula);
    checker::Instance compiled(program);
    Throughput ti, tc;
    run_pair(interp, compiled, trace, kIters, ti, tc);

    if (ti.resolutions != tc.resolutions) {
      std::printf("%-6s BACKEND MISMATCH: %llu vs %llu resolutions\n",
                  name.c_str(),
                  static_cast<unsigned long long>(ti.resolutions),
                  static_cast<unsigned long long>(tc.resolutions));
      return 1;
    }

    const double speedup = tc.steps_per_second / ti.steps_per_second;
    log_speedup_sum += std::log(speedup);
    ++measured;

    // All-checkers battery over the wrapper's program: the body below the
    // top-level always chain, exactly what instances of this property run.
    psl::ExprPtr body = formula;
    while (body->kind == psl::ExprKind::kAlways) body = body->lhs;
    const auto body_program = checker::Program::compile(body);
    Throughput ts, tv;
    const bool vectorizable = checker::ProgramBatch::supported(*body_program);
    if (vectorizable) {
      std::vector<std::unique_ptr<checker::Instance>> battery;
      for (uint32_t lane = 0; lane < kWidth; ++lane) {
        battery.push_back(std::make_unique<checker::Instance>(body_program));
      }
      auto layout = std::make_shared<const checker::ProgramBatch>(body_program);
      checker::BatchState block(layout);
      for (uint32_t lane = 0; lane < kWidth; ++lane) block.allocate_lane();
      run_battery_pair(battery, block, trace, kBatteryIters, ts, tv);
      if (ts.resolutions != tv.resolutions) {
        std::printf("%-6s VECTOR MISMATCH: %llu vs %llu resolutions\n",
                    name.c_str(),
                    static_cast<unsigned long long>(ts.resolutions),
                    static_cast<unsigned long long>(tv.resolutions));
        return 1;
      }
      log_vector_sum += std::log(tv.steps_per_second / ts.steps_per_second);
      ++vector_measured;
      std::printf("%-6s %14.3e %14.3e %8.2fx %14.3e %14.3e %8.2fx %5zu op\n",
                  name.c_str(), ti.steps_per_second, tc.steps_per_second,
                  speedup, ts.steps_per_second, tv.steps_per_second,
                  tv.steps_per_second / ts.steps_per_second, program->size());
    } else {
      std::printf("%-6s %14.3e %14.3e %8.2fx %14s %14s %9s %5zu op\n",
                  name.c_str(), ti.steps_per_second, tc.steps_per_second,
                  speedup, "-", "-", "-", program->size());
    }

    const double steps = static_cast<double>(kTraceLen * kIters);
    models::RunResult r;
    r.transactions = kTraceLen * kIters;
    r.functional_ok = true;
    r.properties_ok = true;
    r.wall_seconds = steps / ti.steps_per_second;
    json.add(name + " interp", meta, r.wall_seconds, r);
    r.wall_seconds = steps / tc.steps_per_second;
    json.add(name + " compiled", meta, r.wall_seconds, r);
    if (vectorizable) {
      models::RunConfig meta64 = meta;  // the 64-instance battery records
      meta64.checkers = kWidth;
      const double battery_steps =
          static_cast<double>(kTraceLen * kBatteryIters * kWidth);
      models::RunResult rb;
      rb.transactions = kTraceLen * kBatteryIters;
      rb.functional_ok = true;
      rb.properties_ok = true;
      meta64.engine.vectorized = false;
      rb.wall_seconds = battery_steps / ts.steps_per_second;
      json.add(name + " scalar64", meta64, rb.wall_seconds, rb);
      meta64.engine.vectorized = true;
      rb.wall_seconds = battery_steps / tv.steps_per_second;
      json.add(name + " vector64", meta64, rb.wall_seconds, rb);
    }
  }

  const double geomean =
      measured == 0 ? 0 : std::exp(log_speedup_sum / measured);
  std::printf("\ngeometric-mean compiled speedup: %.2fx over %zu properties\n",
              geomean, measured);
  const double vector_geomean =
      vector_measured == 0 ? 0 : std::exp(log_vector_sum / vector_measured);
  std::printf("geometric-mean lockstep speedup over the scalar battery: "
              "%.2fx over %zu properties\n",
              vector_geomean, vector_measured);

  // Telemetry overhead: the full PropertyChecker path with a live coverage
  // row attached (relaxed mirror stores after every event, latency
  // histogram, vacuity split) vs the same checker with no row. Interleaved
  // best-of-reps per side; the acceptance gate below requires the geomean
  // throughput ratio with/without to stay >= 0.95 (<= ~5% overhead).
  std::printf("\n=== Telemetry overhead: coverage row attached vs off ===\n");
  std::printf("%-6s %14s %14s %9s %8s %8s\n", "prop", "off steps/s",
              "cov steps/s", "overhead", "vacuous", "rate");
  support::CoverageTable cov_table;
  const size_t kTelemetryPasses = kIters / 8;
  double log_telemetry_sum = 0;
  size_t telemetry_measured = 0;
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    if (outcomes[i].deleted()) continue;
    const psl::ExprPtr& formula = outcomes[i].property->formula;
    const std::string& name = suite.properties[i].name;
    support::CoverageTable::Row* row = &cov_table.row(name);

    time_telemetry_pass(formula, trace, kTelemetryPasses, row, nullptr);
    time_telemetry_pass(formula, trace, kTelemetryPasses, nullptr, nullptr);
    double with_cov = 0, without_cov = 0;
    checker::CheckerStats stats;
    for (int rep = 0; rep < 5; ++rep) {
      const double a =
          time_telemetry_pass(formula, trace, kTelemetryPasses, row, &stats);
      const double b =
          time_telemetry_pass(formula, trace, kTelemetryPasses, nullptr,
                              nullptr);
      if (a > with_cov) with_cov = a;
      if (b > without_cov) without_cov = b;
    }
    const double ratio = with_cov / without_cov;
    log_telemetry_sum += std::log(ratio);
    ++telemetry_measured;

    const double vacuous_rate =
        stats.holds == 0
            ? 0.0
            : static_cast<double>(stats.vacuous_passes) /
                  static_cast<double>(stats.holds);
    std::printf("%-6s %14.3e %14.3e %8.2f%% %8llu %7.1f%%\n", name.c_str(),
                without_cov, with_cov, (1.0 / ratio - 1.0) * 100.0,
                static_cast<unsigned long long>(stats.vacuous_passes),
                100.0 * vacuous_rate);

    // Coverage summary record for BENCH_ir_eval.json: the vacuity split the
    // telemetry run observed, plus the measured overhead ratio.
    if (json.enabled()) {
      char record[512];
      std::snprintf(
          record, sizeof record,
          "{\"label\": \"%s telemetry\", \"design\": \"des56\", "
          "\"steps_per_second_off\": %.6e, \"steps_per_second_cov\": %.6e, "
          "\"telemetry_ratio\": %.6f, \"activations\": %llu, "
          "\"holds\": %llu, \"failures\": %llu, \"real_passes\": %llu, "
          "\"vacuous_passes\": %llu, \"vacuous_pass_rate\": %.6f, "
          "\"dynamically_vacuous\": %s}",
          name.c_str(), without_cov, with_cov, ratio,
          static_cast<unsigned long long>(stats.activations),
          static_cast<unsigned long long>(stats.holds),
          static_cast<unsigned long long>(stats.failures),
          static_cast<unsigned long long>(stats.real_passes),
          static_cast<unsigned long long>(stats.vacuous_passes), vacuous_rate,
          stats.failures == 0 && stats.real_passes == 0 ? "true" : "false");
      json.add_raw(record);
    }
  }
  const double telemetry_geomean =
      telemetry_measured == 0
          ? 1.0
          : std::exp(log_telemetry_sum / telemetry_measured);
  std::printf("geometric-mean telemetry throughput ratio (cov/off): %.3f "
              "over %zu properties\n",
              telemetry_geomean, telemetry_measured);

  // Hash-consing effectiveness: intern the whole abstracted suite twice.
  psl::ExprTable table;
  for (int round = 0; round < 2; ++round) {
    for (const rewrite::AbstractionOutcome& o : outcomes) {
      if (!o.deleted()) table.intern(o.property->formula);
    }
  }
  const psl::ExprTable::Stats& stats = table.stats();
  const double hit_rate =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);
  std::printf("intern table over 2x suite: %llu hits, %llu misses "
              "(%.1f%% hit rate)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              100.0 * hit_rate);

  const int symbolic_rc = run_symbolic_cost_section();

  // Gate: the compiled backend must not regress below the interpreter, the
  // lockstep kernel must hold its >= 3x headline on the battery columns,
  // the coverage telemetry must cost at most ~5% geomean throughput, and
  // the symbolic analysis must stay inside its wall-clock budget.
  if (symbolic_rc != 0) return symbolic_rc;
  if (geomean < 1.0) return 1;
  if (vector_measured > 0 && vector_geomean < 3.0) return 1;
  if (telemetry_measured > 0 && telemetry_geomean < 0.95) return 1;
  return 0;
}
