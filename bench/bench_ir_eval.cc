// Micro-benchmark of the two checker-instance backends (Sec. IV): the
// tree-walking interpreter (detail::Node virtual dispatch) vs the compiled
// flat program (checker/program.h), stepped over identical synthetic event
// streams for every abstracted DES56 property.
//
// Each backend drives one Instance through the stream with reset-on-resolve
// (the wrapper's recycling pattern), so the numbers measure steady-state
// step throughput including verdict resolution and reuse. Also reports the
// hash-consing hit rate of the expression intern table over the suite.
//
// With REPRO_BENCH_JSON set, records land in BENCH_ir_eval.json.
#include <chrono>
#include <cstdio>
#include <cmath>
#include <string>
#include <vector>

#include "bench_table_common.h"
#include "checker/instance.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "models/properties.h"
#include "psl/intern.h"
#include "rewrite/methodology.h"
#include "support/rng.h"

using namespace repro;

namespace {

// Synthetic TLM-AT-style stream: transaction-end events at irregular
// instants, handshake-shaped signals so next/until obligations both resolve
// and survive. Deterministic (fixed seed) so both backends see the same
// trace.
checker::Trace make_trace(size_t length) {
  Rng rng(0x1DEA11EDULL);
  checker::Trace trace;
  trace.reserve(length);
  psl::TimeNs t = 0;
  size_t since_ds = 1000;
  for (size_t i = 0; i < length; ++i) {
    t += 5 + rng.below(46);  // 5..50 ns between transaction ends
    const bool ds = rng.chance(1, 5);
    if (ds) since_ds = 0; else ++since_ds;
    checker::Observation ob;
    ob.time = t;
    ob.values.set("ds", ds ? 1 : 0);
    // rdy usually follows an accepted operation a few events later.
    ob.values.set("rdy", (!ds && since_ds >= 2 && rng.chance(3, 5)) ? 1 : 0);
    ob.values.set("out", rng.chance(9, 10) ? 1 + rng.below(1000) : 0);
    ob.values.set("indata", rng.below(1000));
    ob.values.set("monitor_en", 1);
    trace.push_back(std::move(ob));
  }
  return trace;
}

struct Throughput {
  double steps_per_second = 0;
  uint64_t resolutions = 0;  // verdicts reached (instance then reset)
};

// One timed pass of `instance` over the trace, resetting on every resolved
// verdict (the wrapper's recycling pattern).
Throughput time_pass(checker::Instance& instance, const checker::Trace& trace,
                     size_t iters) {
  instance.reset();
  Throughput t;
  const auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    for (const checker::Observation& ob : trace) {
      const checker::Event ev{ob.time, &ob.values};
      if (instance.step(ev) != checker::Verdict::kPending) {
        ++t.resolutions;
        instance.reset();
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  t.steps_per_second =
      static_cast<double>(iters * trace.size()) / elapsed.count();
  return t;
}

// Measures both backends with interleaved repetitions (A B A B ...) so that
// machine-load drift hits both equally; keeps the best pass of each.
void run_pair(checker::Instance& interp, checker::Instance& compiled,
              const checker::Trace& trace, size_t iters, Throughput& ti,
              Throughput& tc) {
  time_pass(interp, trace, iters);    // warm-up
  time_pass(compiled, trace, iters);  // warm-up
  for (int rep = 0; rep < 5; ++rep) {
    const Throughput a = time_pass(interp, trace, iters);
    const Throughput b = time_pass(compiled, trace, iters);
    if (a.steps_per_second > ti.steps_per_second) ti = a;
    if (b.steps_per_second > tc.steps_per_second) tc = b;
  }
}

}  // namespace

int main() {
  const size_t kTraceLen = bench::scaled(2048);
  const size_t kIters = 64;
  const checker::Trace trace = make_trace(kTraceLen);

  const models::PropertySuite suite = models::des56_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const std::vector<rewrite::AbstractionOutcome> outcomes =
      rewrite::abstract_suite(suite.properties, options);

  bench::BenchJson json("ir_eval");
  models::RunConfig meta;  // bookkeeping for the JSON records
  meta.design = models::Design::kDes56;
  meta.level = models::Level::kTlmAt;
  meta.workload = kTraceLen * kIters;
  meta.checkers = 1;

  std::printf("=== Instance step throughput: interpreter vs compiled ===\n");
  std::printf("%zu-event stream x %zu passes per property\n\n", kTraceLen,
              kIters);
  std::printf("%-6s %14s %14s %9s %8s\n", "prop", "interp steps/s",
              "compiled st/s", "speedup", "program");

  double log_speedup_sum = 0;
  size_t measured = 0;
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    if (outcomes[i].deleted()) continue;
    const psl::ExprPtr& formula = outcomes[i].property->formula;
    const std::string& name = suite.properties[i].name;

    checker::Instance interp(formula);
    const auto program = checker::Program::compile(formula);
    checker::Instance compiled(program);
    Throughput ti, tc;
    run_pair(interp, compiled, trace, kIters, ti, tc);

    if (ti.resolutions != tc.resolutions) {
      std::printf("%-6s BACKEND MISMATCH: %llu vs %llu resolutions\n",
                  name.c_str(),
                  static_cast<unsigned long long>(ti.resolutions),
                  static_cast<unsigned long long>(tc.resolutions));
      return 1;
    }

    const double speedup = tc.steps_per_second / ti.steps_per_second;
    log_speedup_sum += std::log(speedup);
    ++measured;
    std::printf("%-6s %14.3e %14.3e %8.2fx %5zu op\n", name.c_str(),
                ti.steps_per_second, tc.steps_per_second, speedup,
                program->size());

    const double steps = static_cast<double>(kTraceLen * kIters);
    models::RunResult r;
    r.transactions = kTraceLen * kIters;
    r.functional_ok = true;
    r.properties_ok = true;
    r.wall_seconds = steps / ti.steps_per_second;
    json.add(name + " interp", meta, r.wall_seconds, r);
    r.wall_seconds = steps / tc.steps_per_second;
    json.add(name + " compiled", meta, r.wall_seconds, r);
  }

  const double geomean =
      measured == 0 ? 0 : std::exp(log_speedup_sum / measured);
  std::printf("\ngeometric-mean compiled speedup: %.2fx over %zu properties\n",
              geomean, measured);

  // Hash-consing effectiveness: intern the whole abstracted suite twice.
  psl::ExprTable table;
  for (int round = 0; round < 2; ++round) {
    for (const rewrite::AbstractionOutcome& o : outcomes) {
      if (!o.deleted()) table.intern(o.property->formula);
    }
  }
  const psl::ExprTable::Stats& stats = table.stats();
  const double hit_rate =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);
  std::printf("intern table over 2x suite: %llu hits, %llu misses "
              "(%.1f%% hit rate)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              100.0 * hit_rate);

  return geomean >= 1.0 ? 0 : 1;
}
