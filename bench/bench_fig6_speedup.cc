// Regenerates Fig. 6: RTL/TLM simulation speedup for both testcases, with
// and without checkers ("with" = the full property suite, as in the paper's
// All C configuration).
#include <cstdio>

#include "bench_table_common.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

void speedups(Design design, size_t workload, size_t suite_size) {
  const size_t w = bench::scaled(workload);
  models::RunConfig config;
  config.design = design;
  config.workload = w;

  double secs[3][2];  // [level][without/with]
  bool ok = true;
  int row = 0;
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    config.level = level;
    config.checkers = 0;
    const bench::Measurement base = bench::measure(config);
    config.checkers = suite_size;
    const bench::Measurement with = bench::measure(config);
    secs[row][0] = base.seconds;
    secs[row][1] = with.seconds;
    ok = ok && base.functional_ok && with.functional_ok && with.properties_ok;
    ++row;
  }

  std::printf("%-10s %-18s %14s %14s   %s\n", models::to_string(design), "",
              "w/out checkers", "with checkers", ok ? "ok" : "CHECK-FAILED");
  std::printf("%-10s %-18s %14.2f %14.2f\n", "", "RTL/TLM-CA speedup",
              secs[0][0] / secs[1][0], secs[0][1] / secs[1][1]);
  std::printf("%-10s %-18s %14.2f %14.2f\n", "", "RTL/TLM-AT speedup",
              secs[0][0] / secs[2][0], secs[0][1] / secs[2][1]);
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: RTL/TLM simulation speedup ===\n");
  speedups(Design::kDes56, 2400, 9);
  speedups(Design::kColorConv, 24000, 12);
  return 0;
}
