// Regenerates Fig. 6: RTL/TLM simulation speedup for both testcases, with
// and without checkers ("with" = the full property suite, as in the paper's
// All C configuration). A third column runs the full suite through the
// sharded evaluation engine (jobs=N) so the serial and parallel checker
// runtimes can be compared on the same workload.
#include <cstdio>

#include "bench_table_common.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

void speedups(Design design, size_t workload, size_t suite_size) {
  const size_t w = bench::scaled(workload);
  const size_t jobs = bench::bench_jobs();
  bench::BenchJson json(std::string("fig6_") + models::to_string(design));
  models::RunConfig config;
  config.design = design;
  config.workload = w;

  double secs[3][3];  // [level][without / with serial / with sharded]
  bool ok = true;
  int row = 0;
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    config.level = level;
    config.engine.jobs = 1;
    config.checkers = 0;
    const bench::Measurement base = bench::measure(config);
    json.add(std::string(models::to_string(level)) + " base", config, base);
    config.checkers = suite_size;
    const bench::Measurement with = bench::measure(config);
    json.add(std::string(models::to_string(level)) + " all C", config, with);
    secs[row][0] = base.seconds;
    secs[row][1] = with.seconds;
    if (level == Level::kRtl) {
      secs[row][2] = with.seconds;  // the engine only runs at TLM
      ok = ok && base.functional_ok && with.functional_ok && with.properties_ok;
    } else {
      config.engine.jobs = jobs;
      const bench::Measurement sharded = bench::measure(config);
      json.add(std::string(models::to_string(level)) + " all C sharded", config,
               sharded);
      secs[row][2] = sharded.seconds;
      ok = ok && base.functional_ok && with.functional_ok &&
           with.properties_ok && sharded.functional_ok && sharded.properties_ok;
    }
    ++row;
  }

  char sharded_hdr[24];
  std::snprintf(sharded_hdr, sizeof sharded_hdr, "with c. x%zu", jobs);
  std::printf("%-10s %-18s %14s %14s %14s   %s\n", models::to_string(design),
              "", "w/out checkers", "with checkers", sharded_hdr,
              ok ? "ok" : "CHECK-FAILED");
  std::printf("%-10s %-18s %14.2f %14.2f %14.2f\n", "", "RTL/TLM-CA speedup",
              secs[0][0] / secs[1][0], secs[0][1] / secs[1][1],
              secs[0][1] / secs[1][2]);
  std::printf("%-10s %-18s %14.2f %14.2f %14.2f\n", "", "RTL/TLM-AT speedup",
              secs[0][0] / secs[2][0], secs[0][1] / secs[2][1],
              secs[0][1] / secs[2][2]);
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: RTL/TLM simulation speedup ===\n");
  std::printf("sharded column uses jobs=%zu (REPRO_BENCH_JOBS to override)\n",
              bench::bench_jobs());
  speedups(Design::kDes56, 2400, 9);
  speedups(Design::kColorConv, 24000, 12);
  return 0;
}
