// Micro-benchmarks of the abstraction engine itself: parsing, NNF,
// push-ahead, Algorithm III.1 and the whole Methodology III.1 pipeline.
// The paper's pitch is that the abstraction is automatic and cheap compared
// to manually rewriting suites; these numbers quantify "cheap".
#include <benchmark/benchmark.h>

#include "models/properties.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "rewrite/next_substitution.h"
#include "rewrite/nnf.h"
#include "rewrite/push_ahead.h"

using namespace repro;

namespace {

const psl::RtlProperty& p3() {
  static const psl::RtlProperty p = models::des56_suite().properties[2];
  return p;
}

void BM_ParseSuite(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = psl::parse_rtl_property_file(models::kDes56PropertyText);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseSuite);

void BM_Nnf(benchmark::State& state) {
  const psl::ExprPtr formula = p3().formula;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::to_nnf(formula));
  }
}
BENCHMARK(BM_Nnf);

void BM_PushAhead(benchmark::State& state) {
  const psl::ExprPtr formula = rewrite::to_nnf(p3().formula);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::push_ahead_next(formula));
  }
}
BENCHMARK(BM_PushAhead);

void BM_NextSubstitution(benchmark::State& state) {
  const psl::ExprPtr formula =
      rewrite::push_ahead_next(rewrite::to_nnf(p3().formula));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::substitute_next(formula, 10));
  }
}
BENCHMARK(BM_NextSubstitution);

void BM_AbstractDes56Suite(benchmark::State& state) {
  const models::PropertySuite suite = models::des56_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::abstract_suite(suite.properties, options));
  }
}
BENCHMARK(BM_AbstractDes56Suite);

void BM_AbstractColorConvSuite(benchmark::State& state) {
  const models::PropertySuite suite = models::colorconv_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::abstract_suite(suite.properties, options));
  }
}
BENCHMARK(BM_AbstractColorConvSuite);

// Deeply nested synthetic property: stresses the rewriting passes.
void BM_AbstractDeepNext(benchmark::State& state) {
  std::string text = "always (!a || ";
  for (int i = 0; i < state.range(0); ++i) text += "next(";
  text += "b";
  for (int i = 0; i < state.range(0); ++i) text += ")";
  text += ") @clk_pos";
  auto parsed = psl::parse_rtl_property(text);
  rewrite::AbstractionOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewrite::abstract_property(parsed.value(), options));
  }
}
BENCHMARK(BM_AbstractDeepNext)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
