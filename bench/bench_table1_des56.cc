// Regenerates the DES56 half of Table I: simulation time without checkers
// and with 1 / 5 / all 9 checkers, at RTL, TLM-CA (original RTL properties
// on per-cycle transactions) and TLM-AT (properties abstracted with
// Methodology III.1), plus the resulting overhead percentages.
#include "bench_table_common.h"

int main() {
  repro::bench::run_table1(repro::models::Design::kDes56, /*workload=*/2400,
                           /*suite_size=*/9);
  return 0;
}
