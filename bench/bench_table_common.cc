#include "bench_table_common.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

namespace repro::bench {

size_t scaled(size_t workload) {
  const char* scale = std::getenv("REPRO_BENCH_SCALE");
  if (scale == nullptr) return workload;
  const long pct = std::strtol(scale, nullptr, 10);
  if (pct <= 0) return workload;
  return std::max<size_t>(1, workload * static_cast<size_t>(pct) / 100);
}

size_t bench_jobs() {
  const char* env = std::getenv("REPRO_BENCH_JOBS");
  if (env != nullptr) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw == 0 ? 2 : hw, 2, 8);
}

Measurement measure(const models::RunConfig& config, int repeats) {
  Measurement m;
  m.seconds = 1e100;
  for (int i = 0; i < repeats; ++i) {
    models::RunResult r = models::run_simulation(config);
    if (r.wall_seconds < m.seconds) m.seconds = r.wall_seconds;
    m.functional_ok = r.functional_ok;
    m.properties_ok = config.checkers == 0 || r.properties_ok;
    m.transactions = r.transactions;
    m.result = std::move(r);
  }
  return m;
}

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {
  const char* env = std::getenv("REPRO_BENCH_JSON");
  if (env == nullptr || env[0] == '\0' ||
      (env[0] == '0' && env[1] == '\0')) {
    return;
  }
  enabled_ = true;
  std::error_code ec;
  if (std::filesystem::is_directory(env, ec)) dir_ = env;
}

void BenchJson::add(const std::string& label, const models::RunConfig& config,
                    double seconds, const models::RunResult& result) {
  if (!enabled_) return;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s    {\"label\": \"%s\", \"design\": \"%s\", \"level\": \"%s\", "
      "\"checkers\": %zu, \"jobs\": %zu, \"workload\": %zu, "
      "\"seconds\": %.6f, \"transactions\": %llu, "
      "\"functional_ok\": %s, \"properties_ok\": %s}",
      count_ == 0 ? "\n" : ",\n", label.c_str(),
      models::to_string(config.design), models::to_string(config.level),
      config.checkers, config.engine.jobs, config.workload, seconds,
      static_cast<unsigned long long>(result.transactions),
      result.functional_ok ? "true" : "false",
      result.properties_ok ? "true" : "false");
  records_ += buf;
  ++count_;
}

void BenchJson::add_raw(const std::string& json_object) {
  if (!enabled_) return;
  records_ += std::string(count_ == 0 ? "\n    " : ",\n    ") + json_object;
  ++count_;
}

BenchJson::~BenchJson() {
  if (!enabled_) return;
  const std::string path =
      (dir_.empty() ? std::string() : dir_ + "/") + "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "REPRO_BENCH_JSON: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema_version\": 1,\n  \"bench\": \"" << name_
      << "\",\n  \"records\": [" << records_ << (count_ ? "\n  ]" : "]")
      << "\n}\n";
  std::printf("benchmark records written to %s\n", path.c_str());
}

void print_row(const char* label, double without_s, double with_s, bool ok) {
  const double overhead = (with_s / without_s - 1.0) * 100.0;
  std::printf("%-14s %10.4f %10.4f %9.1f%%   %s\n", label, without_s, with_s,
              overhead, ok ? "ok" : "CHECK-FAILED");
}

void run_table1(models::Design design, size_t workload, size_t suite_size) {
  using models::Level;
  const size_t w = scaled(workload);
  BenchJson json(std::string("table1_") + models::to_string(design));
  std::printf("=== Table I: %s (workload %zu, properties %zu) ===\n",
              models::to_string(design), w, suite_size);
  std::printf("%-14s %10s %10s %10s\n", "config", "w/out c.(s)", "with c.(s)",
              "overhead");

  const size_t points[] = {1, 5, suite_size};
  const char* point_names[] = {"1 C", "5 C", "All C"};

  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    models::RunConfig config;
    config.design = design;
    config.level = level;
    config.workload = w;
    config.checkers = 0;
    const Measurement base = measure(config);
    json.add(std::string(models::to_string(level)) + " 0 C", config, base);
    for (int i = 0; i < 3; ++i) {
      config.checkers = points[i];
      const Measurement with = measure(config);
      char label[64];
      std::snprintf(label, sizeof label, "%s %s", models::to_string(level),
                    point_names[i]);
      json.add(label, config, with);
      print_row(label, base.seconds, with.seconds,
                base.functional_ok && with.functional_ok && with.properties_ok);
    }
  }
}

}  // namespace repro::bench
