file(REMOVE_RECURSE
  "CMakeFiles/pslabs.dir/pslabs.cpp.o"
  "CMakeFiles/pslabs.dir/pslabs.cpp.o.d"
  "pslabs"
  "pslabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pslabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
