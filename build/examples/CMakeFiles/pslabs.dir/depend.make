# Empty dependencies file for pslabs.
# This may be replaced when dependencies are built.
