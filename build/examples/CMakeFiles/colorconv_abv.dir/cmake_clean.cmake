file(REMOVE_RECURSE
  "CMakeFiles/colorconv_abv.dir/colorconv_abv.cpp.o"
  "CMakeFiles/colorconv_abv.dir/colorconv_abv.cpp.o.d"
  "colorconv_abv"
  "colorconv_abv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colorconv_abv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
