# Empty dependencies file for colorconv_abv.
# This may be replaced when dependencies are built.
