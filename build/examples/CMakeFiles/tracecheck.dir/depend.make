# Empty dependencies file for tracecheck.
# This may be replaced when dependencies are built.
