file(REMOVE_RECURSE
  "CMakeFiles/tracecheck.dir/tracecheck.cpp.o"
  "CMakeFiles/tracecheck.dir/tracecheck.cpp.o.d"
  "tracecheck"
  "tracecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
