file(REMOVE_RECURSE
  "CMakeFiles/checkergen.dir/checkergen.cpp.o"
  "CMakeFiles/checkergen.dir/checkergen.cpp.o.d"
  "checkergen"
  "checkergen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkergen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
