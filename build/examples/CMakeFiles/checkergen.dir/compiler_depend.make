# Empty compiler generated dependencies file for checkergen.
# This may be replaced when dependencies are built.
