# Empty compiler generated dependencies file for des56_abv.
# This may be replaced when dependencies are built.
