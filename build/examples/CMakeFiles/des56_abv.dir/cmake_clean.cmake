file(REMOVE_RECURSE
  "CMakeFiles/des56_abv.dir/des56_abv.cpp.o"
  "CMakeFiles/des56_abv.dir/des56_abv.cpp.o.d"
  "des56_abv"
  "des56_abv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des56_abv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
