file(REMOVE_RECURSE
  "CMakeFiles/rewrite_semantics_test.dir/rewrite_semantics_test.cc.o"
  "CMakeFiles/rewrite_semantics_test.dir/rewrite_semantics_test.cc.o.d"
  "rewrite_semantics_test"
  "rewrite_semantics_test.pdb"
  "rewrite_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
