# Empty compiler generated dependencies file for rewrite_semantics_test.
# This may be replaced when dependencies are built.
