file(REMOVE_RECURSE
  "CMakeFiles/tlm_test.dir/tlm_test.cc.o"
  "CMakeFiles/tlm_test.dir/tlm_test.cc.o.d"
  "tlm_test"
  "tlm_test.pdb"
  "tlm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
