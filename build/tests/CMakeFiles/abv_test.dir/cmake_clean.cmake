file(REMOVE_RECURSE
  "CMakeFiles/abv_test.dir/abv_test.cc.o"
  "CMakeFiles/abv_test.dir/abv_test.cc.o.d"
  "abv_test"
  "abv_test.pdb"
  "abv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
