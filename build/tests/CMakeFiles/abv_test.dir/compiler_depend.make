# Empty compiler generated dependencies file for abv_test.
# This may be replaced when dependencies are built.
