file(REMOVE_RECURSE
  "CMakeFiles/psl_test.dir/psl_test.cc.o"
  "CMakeFiles/psl_test.dir/psl_test.cc.o.d"
  "psl_test"
  "psl_test.pdb"
  "psl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
