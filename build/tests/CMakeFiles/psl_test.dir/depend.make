# Empty dependencies file for psl_test.
# This may be replaced when dependencies are built.
