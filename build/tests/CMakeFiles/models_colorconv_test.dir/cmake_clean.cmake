file(REMOVE_RECURSE
  "CMakeFiles/models_colorconv_test.dir/models_colorconv_test.cc.o"
  "CMakeFiles/models_colorconv_test.dir/models_colorconv_test.cc.o.d"
  "models_colorconv_test"
  "models_colorconv_test.pdb"
  "models_colorconv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_colorconv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
