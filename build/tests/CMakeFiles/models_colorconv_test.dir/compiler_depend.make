# Empty compiler generated dependencies file for models_colorconv_test.
# This may be replaced when dependencies are built.
