file(REMOVE_RECURSE
  "CMakeFiles/models_des56_test.dir/models_des56_test.cc.o"
  "CMakeFiles/models_des56_test.dir/models_des56_test.cc.o.d"
  "models_des56_test"
  "models_des56_test.pdb"
  "models_des56_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_des56_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
