# Empty dependencies file for models_des56_test.
# This may be replaced when dependencies are built.
