# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/psl_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/wrapper_test[1]_include.cmake")
include("/root/repo/build/tests/tlm_test[1]_include.cmake")
include("/root/repo/build/tests/abv_test[1]_include.cmake")
include("/root/repo/build/tests/models_des56_test[1]_include.cmake")
include("/root/repo/build/tests/models_colorconv_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
