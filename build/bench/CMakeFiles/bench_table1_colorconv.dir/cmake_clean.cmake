file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_colorconv.dir/bench_table1_colorconv.cc.o"
  "CMakeFiles/bench_table1_colorconv.dir/bench_table1_colorconv.cc.o.d"
  "CMakeFiles/bench_table1_colorconv.dir/bench_table_common.cc.o"
  "CMakeFiles/bench_table1_colorconv.dir/bench_table_common.cc.o.d"
  "bench_table1_colorconv"
  "bench_table1_colorconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_colorconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
