file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_des56.dir/bench_table1_des56.cc.o"
  "CMakeFiles/bench_table1_des56.dir/bench_table1_des56.cc.o.d"
  "CMakeFiles/bench_table1_des56.dir/bench_table_common.cc.o"
  "CMakeFiles/bench_table1_des56.dir/bench_table_common.cc.o.d"
  "bench_table1_des56"
  "bench_table1_des56.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_des56.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
