# Empty dependencies file for bench_table1_des56.
# This may be replaced when dependencies are built.
