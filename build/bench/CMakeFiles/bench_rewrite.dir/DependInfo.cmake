
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rewrite.cc" "bench/CMakeFiles/bench_rewrite.dir/bench_rewrite.cc.o" "gcc" "bench/CMakeFiles/bench_rewrite.dir/bench_rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_abv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_psl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
