file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_scaling.dir/bench_checker_scaling.cc.o"
  "CMakeFiles/bench_checker_scaling.dir/bench_checker_scaling.cc.o.d"
  "CMakeFiles/bench_checker_scaling.dir/bench_table_common.cc.o"
  "CMakeFiles/bench_checker_scaling.dir/bench_table_common.cc.o.d"
  "bench_checker_scaling"
  "bench_checker_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
