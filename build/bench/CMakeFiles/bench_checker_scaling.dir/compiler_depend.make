# Empty compiler generated dependencies file for bench_checker_scaling.
# This may be replaced when dependencies are built.
