file(REMOVE_RECURSE
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_core.cc.o"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_core.cc.o.d"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_rtl.cc.o"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_rtl.cc.o.d"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_at.cc.o"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_at.cc.o.d"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_ca.cc.o"
  "CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_ca.cc.o.d"
  "CMakeFiles/repro_models.dir/models/des56/des56_cycle.cc.o"
  "CMakeFiles/repro_models.dir/models/des56/des56_cycle.cc.o.d"
  "CMakeFiles/repro_models.dir/models/des56/des56_rtl.cc.o"
  "CMakeFiles/repro_models.dir/models/des56/des56_rtl.cc.o.d"
  "CMakeFiles/repro_models.dir/models/des56/des56_tlm_at.cc.o"
  "CMakeFiles/repro_models.dir/models/des56/des56_tlm_at.cc.o.d"
  "CMakeFiles/repro_models.dir/models/des56/des56_tlm_ca.cc.o"
  "CMakeFiles/repro_models.dir/models/des56/des56_tlm_ca.cc.o.d"
  "CMakeFiles/repro_models.dir/models/des56/des_core.cc.o"
  "CMakeFiles/repro_models.dir/models/des56/des_core.cc.o.d"
  "CMakeFiles/repro_models.dir/models/properties.cc.o"
  "CMakeFiles/repro_models.dir/models/properties.cc.o.d"
  "CMakeFiles/repro_models.dir/models/stimulus.cc.o"
  "CMakeFiles/repro_models.dir/models/stimulus.cc.o.d"
  "CMakeFiles/repro_models.dir/models/testbench.cc.o"
  "CMakeFiles/repro_models.dir/models/testbench.cc.o.d"
  "librepro_models.a"
  "librepro_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
