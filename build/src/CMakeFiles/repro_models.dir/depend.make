# Empty dependencies file for repro_models.
# This may be replaced when dependencies are built.
