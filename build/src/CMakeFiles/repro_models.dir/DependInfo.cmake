
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/colorconv/colorconv_core.cc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_core.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_core.cc.o.d"
  "/root/repo/src/models/colorconv/colorconv_rtl.cc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_rtl.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_rtl.cc.o.d"
  "/root/repo/src/models/colorconv/colorconv_tlm_at.cc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_at.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_at.cc.o.d"
  "/root/repo/src/models/colorconv/colorconv_tlm_ca.cc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_ca.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/colorconv/colorconv_tlm_ca.cc.o.d"
  "/root/repo/src/models/des56/des56_cycle.cc" "src/CMakeFiles/repro_models.dir/models/des56/des56_cycle.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/des56/des56_cycle.cc.o.d"
  "/root/repo/src/models/des56/des56_rtl.cc" "src/CMakeFiles/repro_models.dir/models/des56/des56_rtl.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/des56/des56_rtl.cc.o.d"
  "/root/repo/src/models/des56/des56_tlm_at.cc" "src/CMakeFiles/repro_models.dir/models/des56/des56_tlm_at.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/des56/des56_tlm_at.cc.o.d"
  "/root/repo/src/models/des56/des56_tlm_ca.cc" "src/CMakeFiles/repro_models.dir/models/des56/des56_tlm_ca.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/des56/des56_tlm_ca.cc.o.d"
  "/root/repo/src/models/des56/des_core.cc" "src/CMakeFiles/repro_models.dir/models/des56/des_core.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/des56/des_core.cc.o.d"
  "/root/repo/src/models/properties.cc" "src/CMakeFiles/repro_models.dir/models/properties.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/properties.cc.o.d"
  "/root/repo/src/models/stimulus.cc" "src/CMakeFiles/repro_models.dir/models/stimulus.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/stimulus.cc.o.d"
  "/root/repo/src/models/testbench.cc" "src/CMakeFiles/repro_models.dir/models/testbench.cc.o" "gcc" "src/CMakeFiles/repro_models.dir/models/testbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_abv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_tlm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_psl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
