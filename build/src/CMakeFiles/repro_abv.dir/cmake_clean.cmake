file(REMOVE_RECURSE
  "CMakeFiles/repro_abv.dir/abv/report.cc.o"
  "CMakeFiles/repro_abv.dir/abv/report.cc.o.d"
  "CMakeFiles/repro_abv.dir/abv/rtl_env.cc.o"
  "CMakeFiles/repro_abv.dir/abv/rtl_env.cc.o.d"
  "CMakeFiles/repro_abv.dir/abv/tlm_env.cc.o"
  "CMakeFiles/repro_abv.dir/abv/tlm_env.cc.o.d"
  "librepro_abv.a"
  "librepro_abv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_abv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
