# Empty dependencies file for repro_abv.
# This may be replaced when dependencies are built.
