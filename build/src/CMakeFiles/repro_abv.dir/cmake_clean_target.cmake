file(REMOVE_RECURSE
  "librepro_abv.a"
)
