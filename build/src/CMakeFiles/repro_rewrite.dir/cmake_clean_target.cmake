file(REMOVE_RECURSE
  "librepro_rewrite.a"
)
