file(REMOVE_RECURSE
  "CMakeFiles/repro_rewrite.dir/rewrite/context_map.cc.o"
  "CMakeFiles/repro_rewrite.dir/rewrite/context_map.cc.o.d"
  "CMakeFiles/repro_rewrite.dir/rewrite/methodology.cc.o"
  "CMakeFiles/repro_rewrite.dir/rewrite/methodology.cc.o.d"
  "CMakeFiles/repro_rewrite.dir/rewrite/next_substitution.cc.o"
  "CMakeFiles/repro_rewrite.dir/rewrite/next_substitution.cc.o.d"
  "CMakeFiles/repro_rewrite.dir/rewrite/nnf.cc.o"
  "CMakeFiles/repro_rewrite.dir/rewrite/nnf.cc.o.d"
  "CMakeFiles/repro_rewrite.dir/rewrite/push_ahead.cc.o"
  "CMakeFiles/repro_rewrite.dir/rewrite/push_ahead.cc.o.d"
  "CMakeFiles/repro_rewrite.dir/rewrite/signal_abstraction.cc.o"
  "CMakeFiles/repro_rewrite.dir/rewrite/signal_abstraction.cc.o.d"
  "librepro_rewrite.a"
  "librepro_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
