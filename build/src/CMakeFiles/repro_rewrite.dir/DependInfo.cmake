
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/context_map.cc" "src/CMakeFiles/repro_rewrite.dir/rewrite/context_map.cc.o" "gcc" "src/CMakeFiles/repro_rewrite.dir/rewrite/context_map.cc.o.d"
  "/root/repo/src/rewrite/methodology.cc" "src/CMakeFiles/repro_rewrite.dir/rewrite/methodology.cc.o" "gcc" "src/CMakeFiles/repro_rewrite.dir/rewrite/methodology.cc.o.d"
  "/root/repo/src/rewrite/next_substitution.cc" "src/CMakeFiles/repro_rewrite.dir/rewrite/next_substitution.cc.o" "gcc" "src/CMakeFiles/repro_rewrite.dir/rewrite/next_substitution.cc.o.d"
  "/root/repo/src/rewrite/nnf.cc" "src/CMakeFiles/repro_rewrite.dir/rewrite/nnf.cc.o" "gcc" "src/CMakeFiles/repro_rewrite.dir/rewrite/nnf.cc.o.d"
  "/root/repo/src/rewrite/push_ahead.cc" "src/CMakeFiles/repro_rewrite.dir/rewrite/push_ahead.cc.o" "gcc" "src/CMakeFiles/repro_rewrite.dir/rewrite/push_ahead.cc.o.d"
  "/root/repo/src/rewrite/signal_abstraction.cc" "src/CMakeFiles/repro_rewrite.dir/rewrite/signal_abstraction.cc.o" "gcc" "src/CMakeFiles/repro_rewrite.dir/rewrite/signal_abstraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_psl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
