# Empty dependencies file for repro_rewrite.
# This may be replaced when dependencies are built.
