file(REMOVE_RECURSE
  "librepro_psl.a"
)
