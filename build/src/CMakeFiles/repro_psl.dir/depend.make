# Empty dependencies file for repro_psl.
# This may be replaced when dependencies are built.
