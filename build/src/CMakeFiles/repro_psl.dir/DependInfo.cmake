
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psl/ast.cc" "src/CMakeFiles/repro_psl.dir/psl/ast.cc.o" "gcc" "src/CMakeFiles/repro_psl.dir/psl/ast.cc.o.d"
  "/root/repo/src/psl/lexer.cc" "src/CMakeFiles/repro_psl.dir/psl/lexer.cc.o" "gcc" "src/CMakeFiles/repro_psl.dir/psl/lexer.cc.o.d"
  "/root/repo/src/psl/parser.cc" "src/CMakeFiles/repro_psl.dir/psl/parser.cc.o" "gcc" "src/CMakeFiles/repro_psl.dir/psl/parser.cc.o.d"
  "/root/repo/src/psl/simple_subset.cc" "src/CMakeFiles/repro_psl.dir/psl/simple_subset.cc.o" "gcc" "src/CMakeFiles/repro_psl.dir/psl/simple_subset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
