file(REMOVE_RECURSE
  "CMakeFiles/repro_psl.dir/psl/ast.cc.o"
  "CMakeFiles/repro_psl.dir/psl/ast.cc.o.d"
  "CMakeFiles/repro_psl.dir/psl/lexer.cc.o"
  "CMakeFiles/repro_psl.dir/psl/lexer.cc.o.d"
  "CMakeFiles/repro_psl.dir/psl/parser.cc.o"
  "CMakeFiles/repro_psl.dir/psl/parser.cc.o.d"
  "CMakeFiles/repro_psl.dir/psl/simple_subset.cc.o"
  "CMakeFiles/repro_psl.dir/psl/simple_subset.cc.o.d"
  "librepro_psl.a"
  "librepro_psl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_psl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
