
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlm/recorder.cc" "src/CMakeFiles/repro_tlm.dir/tlm/recorder.cc.o" "gcc" "src/CMakeFiles/repro_tlm.dir/tlm/recorder.cc.o.d"
  "/root/repo/src/tlm/socket.cc" "src/CMakeFiles/repro_tlm.dir/tlm/socket.cc.o" "gcc" "src/CMakeFiles/repro_tlm.dir/tlm/socket.cc.o.d"
  "/root/repo/src/tlm/transaction.cc" "src/CMakeFiles/repro_tlm.dir/tlm/transaction.cc.o" "gcc" "src/CMakeFiles/repro_tlm.dir/tlm/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
