file(REMOVE_RECURSE
  "CMakeFiles/repro_tlm.dir/tlm/recorder.cc.o"
  "CMakeFiles/repro_tlm.dir/tlm/recorder.cc.o.d"
  "CMakeFiles/repro_tlm.dir/tlm/socket.cc.o"
  "CMakeFiles/repro_tlm.dir/tlm/socket.cc.o.d"
  "CMakeFiles/repro_tlm.dir/tlm/transaction.cc.o"
  "CMakeFiles/repro_tlm.dir/tlm/transaction.cc.o.d"
  "librepro_tlm.a"
  "librepro_tlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
