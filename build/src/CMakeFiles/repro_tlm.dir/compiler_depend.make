# Empty compiler generated dependencies file for repro_tlm.
# This may be replaced when dependencies are built.
