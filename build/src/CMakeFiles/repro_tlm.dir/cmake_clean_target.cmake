file(REMOVE_RECURSE
  "librepro_tlm.a"
)
