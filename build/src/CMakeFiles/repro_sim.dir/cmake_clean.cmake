file(REMOVE_RECURSE
  "CMakeFiles/repro_sim.dir/sim/clock.cc.o"
  "CMakeFiles/repro_sim.dir/sim/clock.cc.o.d"
  "CMakeFiles/repro_sim.dir/sim/kernel.cc.o"
  "CMakeFiles/repro_sim.dir/sim/kernel.cc.o.d"
  "CMakeFiles/repro_sim.dir/sim/trace.cc.o"
  "CMakeFiles/repro_sim.dir/sim/trace.cc.o.d"
  "CMakeFiles/repro_sim.dir/sim/vcd.cc.o"
  "CMakeFiles/repro_sim.dir/sim/vcd.cc.o.d"
  "librepro_sim.a"
  "librepro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
