
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/repro_sim.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/repro_sim.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/CMakeFiles/repro_sim.dir/sim/kernel.cc.o" "gcc" "src/CMakeFiles/repro_sim.dir/sim/kernel.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/repro_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/repro_sim.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/vcd.cc" "src/CMakeFiles/repro_sim.dir/sim/vcd.cc.o" "gcc" "src/CMakeFiles/repro_sim.dir/sim/vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
