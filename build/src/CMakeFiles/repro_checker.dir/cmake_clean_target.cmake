file(REMOVE_RECURSE
  "librepro_checker.a"
)
