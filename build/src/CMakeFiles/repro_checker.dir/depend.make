# Empty dependencies file for repro_checker.
# This may be replaced when dependencies are built.
