file(REMOVE_RECURSE
  "CMakeFiles/repro_checker.dir/checker/checker.cc.o"
  "CMakeFiles/repro_checker.dir/checker/checker.cc.o.d"
  "CMakeFiles/repro_checker.dir/checker/codegen.cc.o"
  "CMakeFiles/repro_checker.dir/checker/codegen.cc.o.d"
  "CMakeFiles/repro_checker.dir/checker/instance.cc.o"
  "CMakeFiles/repro_checker.dir/checker/instance.cc.o.d"
  "CMakeFiles/repro_checker.dir/checker/reference_eval.cc.o"
  "CMakeFiles/repro_checker.dir/checker/reference_eval.cc.o.d"
  "CMakeFiles/repro_checker.dir/checker/trace.cc.o"
  "CMakeFiles/repro_checker.dir/checker/trace.cc.o.d"
  "CMakeFiles/repro_checker.dir/checker/trace_io.cc.o"
  "CMakeFiles/repro_checker.dir/checker/trace_io.cc.o.d"
  "CMakeFiles/repro_checker.dir/checker/wrapper.cc.o"
  "CMakeFiles/repro_checker.dir/checker/wrapper.cc.o.d"
  "librepro_checker.a"
  "librepro_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
