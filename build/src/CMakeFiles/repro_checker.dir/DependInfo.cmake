
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/checker.cc" "src/CMakeFiles/repro_checker.dir/checker/checker.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/checker.cc.o.d"
  "/root/repo/src/checker/codegen.cc" "src/CMakeFiles/repro_checker.dir/checker/codegen.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/codegen.cc.o.d"
  "/root/repo/src/checker/instance.cc" "src/CMakeFiles/repro_checker.dir/checker/instance.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/instance.cc.o.d"
  "/root/repo/src/checker/reference_eval.cc" "src/CMakeFiles/repro_checker.dir/checker/reference_eval.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/reference_eval.cc.o.d"
  "/root/repo/src/checker/trace.cc" "src/CMakeFiles/repro_checker.dir/checker/trace.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/trace.cc.o.d"
  "/root/repo/src/checker/trace_io.cc" "src/CMakeFiles/repro_checker.dir/checker/trace_io.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/trace_io.cc.o.d"
  "/root/repo/src/checker/wrapper.cc" "src/CMakeFiles/repro_checker.dir/checker/wrapper.cc.o" "gcc" "src/CMakeFiles/repro_checker.dir/checker/wrapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_psl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
