// Validation of the PSL simple-subset restrictions (IEEE 1850 sec. 4.4.4),
// adapted to the LTL core of Def. II.1.
//
// The simple subset guarantees that time moves forward from left to right
// through a property, which is what makes single-pass dynamic checker
// synthesis possible (Sec. II of the paper). We enforce:
//   1. negation is applied only to boolean expressions;
//   2. the left operand of `->` is boolean;
//   3. at most one operand of `||` is non-boolean;
//   4. the operands of `until`/`release` are boolean or a next/next_e chain
//      ending in a boolean (the forms produced by push_ahead_next);
//   5. `always`/`eventually!` bodies are themselves simple-subset.
#ifndef REPRO_PSL_SIMPLE_SUBSET_H_
#define REPRO_PSL_SIMPLE_SUBSET_H_

#include <string>
#include <vector>

#include "psl/ast.h"

namespace repro::psl {

// Returns the list of violations (empty means the property is in the
// simple subset). Each entry pinpoints the offending subformula.
std::vector<std::string> simple_subset_violations(const ExprPtr& e);

// Convenience wrapper.
bool in_simple_subset(const ExprPtr& e);

}  // namespace repro::psl

#endif  // REPRO_PSL_SIMPLE_SUBSET_H_
