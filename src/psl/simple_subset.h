// Validation of the PSL simple-subset restrictions (IEEE 1850 sec. 4.4.4),
// adapted to the LTL core of Def. II.1.
//
// The simple subset guarantees that time moves forward from left to right
// through a property, which is what makes single-pass dynamic checker
// synthesis possible (Sec. II of the paper). We enforce:
//   1. negation is applied only to boolean expressions;
//   2. the left operand of `->` is boolean;
//   3. at most one operand of `||` is non-boolean;
//   4. the operands of `until`/`release` are boolean or a next/next_e chain
//      ending in a boolean (the forms produced by push_ahead_next);
//   5. the abort condition of `abort` is boolean;
//   6. `always`/`eventually!` bodies are themselves simple-subset.
//
// Violations are reported structurally (rule + offending subformula) so the
// analysis layer can attach stable diagnostic codes; the string API remains
// as a convenience for report notes.
#ifndef REPRO_PSL_SIMPLE_SUBSET_H_
#define REPRO_PSL_SIMPLE_SUBSET_H_

#include <string>
#include <vector>

#include "psl/ast.h"

namespace repro::psl {

// One simple-subset rule per enforced restriction; the analysis layer maps
// these 1:1 onto the PSL001..PSL005 diagnostic codes.
enum class SubsetRule {
  kNegationNonBoolean,        // negation applied to a non-boolean operand
  kImplicationLhsNonBoolean,  // left operand of '->' is not boolean
  kOrBothNonBoolean,          // both operands of '||' are non-boolean
  kUntilOperandNonBoolean,    // until/release operand not boolean/next chain
  kAbortConditionNonBoolean,  // abort condition is not boolean
};

// Human-readable description of the rule ("negation applied to non-boolean
// operand", ...).
const char* describe(SubsetRule rule);

struct SubsetViolation {
  SubsetRule rule;
  // Printed offending subformula.
  std::string subformula;
};

// Returns all violations, in pre-order position of the offending subformula.
// Empty means the property is in the simple subset.
std::vector<SubsetViolation> check_simple_subset(const ExprPtr& e);

// Legacy string form: "description: subformula" per violation.
std::vector<std::string> simple_subset_violations(const ExprPtr& e);

// Convenience wrapper.
bool in_simple_subset(const ExprPtr& e);

}  // namespace repro::psl

#endif  // REPRO_PSL_SIMPLE_SUBSET_H_
