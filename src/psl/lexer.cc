#include "psl/lexer.h"

#include <cctype>

namespace repro::psl {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenKind kind, size_t at, std::string text = "") {
    tokens.push_back({kind, std::move(text), 0, static_cast<int>(at)});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '#' or '--' to end of line.
    if (c == '#' || (c == '-' && i + 1 < n && input[i + 1] == '-')) {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (ident_start(c)) {
      size_t j = i + 1;
      while (j < n && ident_char(input[j])) ++j;
      std::string text(input.substr(i, j - i));
      // Strong-operator suffix: eventually! / until! are single tokens.
      if (j < n && input[j] == '!' &&
          (text == "eventually" || text == "until" || text == "abort")) {
        text += '!';
        ++j;
      }
      push(TokenKind::kIdent, start, std::move(text));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      uint64_t value = 0;
      if (c == '0' && i + 1 < n && (input[i + 1] == 'x' || input[i + 1] == 'X')) {
        j = i + 2;
        if (j >= n || !std::isxdigit(static_cast<unsigned char>(input[j]))) {
          return Error{"malformed hex literal", static_cast<int>(i)};
        }
        while (j < n && std::isxdigit(static_cast<unsigned char>(input[j]))) {
          value = value * 16 + (std::isdigit(static_cast<unsigned char>(input[j]))
                                    ? input[j] - '0'
                                    : (std::tolower(input[j]) - 'a' + 10));
          ++j;
        }
      } else {
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          value = value * 10 + (input[j] - '0');
          ++j;
        }
      }
      Token t{TokenKind::kNumber, std::string(input.substr(i, j - i)), value,
              static_cast<int>(start)};
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case '[': push(TokenKind::kLBracket, start); ++i; break;
      case ']': push(TokenKind::kRBracket, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case ':': push(TokenKind::kColon, start); ++i; break;
      case ';': push(TokenKind::kSemicolon, start); ++i; break;
      case '@': push(TokenKind::kAt, start); ++i; break;
      case '&':
        i += (i + 1 < n && input[i + 1] == '&') ? 2 : 1;
        push(TokenKind::kAnd, start);
        break;
      case '|':
        i += (i + 1 < n && input[i + 1] == '|') ? 2 : 1;
        push(TokenKind::kOr, start);
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kNot, start);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kEq, start);
          i += 2;
        } else {
          // Accept single '=' as equality: the paper writes `indata = 0`.
          push(TokenKind::kEq, start);
          ++i;
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      case '-':
        if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kImplies, start);
          i += 2;
        } else {
          return Error{"unexpected '-'", static_cast<int>(i)};
        }
        break;
      default:
        return Error{std::string("unexpected character '") + c + "'",
                     static_cast<int>(i)};
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace repro::psl
