#include "psl/ast.h"

#include <algorithm>
#include <cassert>

namespace repro::psl {
namespace {

std::shared_ptr<Expr> make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr const_true() {
  static const ExprPtr t = make(ExprKind::kConstTrue);
  return t;
}

ExprPtr const_false() {
  static const ExprPtr f = make(ExprKind::kConstFalse);
  return f;
}

ExprPtr atom(Atom a) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAtom;
  e->atom = std::move(a);
  return e;
}

ExprPtr sig(std::string name) {
  Atom a;
  a.lhs = std::move(name);
  a.op = CmpOp::kTruthy;
  return atom(std::move(a));
}

ExprPtr cmp(std::string lhs, CmpOp op, uint64_t value) {
  Atom a;
  a.lhs = std::move(lhs);
  a.op = op;
  a.rhs_value = value;
  return atom(std::move(a));
}

ExprPtr not_(ExprPtr p) {
  assert(p);
  auto e = make(ExprKind::kNot);
  e->lhs = std::move(p);
  return e;
}

ExprPtr and_(ExprPtr a, ExprPtr b) {
  assert(a && b);
  auto e = make(ExprKind::kAnd);
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr or_(ExprPtr a, ExprPtr b) {
  assert(a && b);
  auto e = make(ExprKind::kOr);
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr implies(ExprPtr a, ExprPtr b) {
  assert(a && b);
  auto e = make(ExprKind::kImplies);
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr next(uint32_t n, ExprPtr p) {
  assert(n >= 1 && p);
  auto e = make(ExprKind::kNext);
  e->next_count = n;
  e->lhs = std::move(p);
  return e;
}

ExprPtr next_eps(uint32_t tau, TimeNs eps, ExprPtr p) {
  assert(eps >= 1 && p);
  auto e = make(ExprKind::kNextEps);
  e->tau = tau;
  e->eps = eps;
  e->lhs = std::move(p);
  return e;
}

ExprPtr until(ExprPtr a, ExprPtr b, bool strong) {
  assert(a && b);
  auto e = make(ExprKind::kUntil);
  e->strong = strong;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr release(ExprPtr a, ExprPtr b) {
  assert(a && b);
  auto e = make(ExprKind::kRelease);
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr always(ExprPtr p) {
  assert(p);
  auto e = make(ExprKind::kAlways);
  e->lhs = std::move(p);
  return e;
}

ExprPtr eventually(ExprPtr p) {
  assert(p);
  auto e = make(ExprKind::kEventually);
  e->strong = true;
  e->lhs = std::move(p);
  return e;
}

ExprPtr abort_(ExprPtr p, ExprPtr b, bool strong) {
  assert(p && b && is_boolean(b));
  auto e = make(ExprKind::kAbort);
  e->strong = strong;
  e->lhs = std::move(p);
  e->rhs = std::move(b);
  return e;
}

bool equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kConstTrue:
    case ExprKind::kConstFalse:
      return true;
    case ExprKind::kAtom:
      return a->atom == b->atom;
    case ExprKind::kNext:
      if (a->next_count != b->next_count) return false;
      break;
    case ExprKind::kNextEps:
      if (a->tau != b->tau || a->eps != b->eps) return false;
      break;
    case ExprKind::kUntil:
    case ExprKind::kEventually:
    case ExprKind::kAbort:
      if (a->strong != b->strong) return false;
      break;
    default:
      break;
  }
  return equal(a->lhs, b->lhs) && equal(a->rhs, b->rhs);
}

bool is_boolean(const ExprPtr& e) {
  if (!e) return true;
  switch (e->kind) {
    case ExprKind::kConstTrue:
    case ExprKind::kConstFalse:
    case ExprKind::kAtom:
      return true;
    case ExprKind::kNot:
      return is_boolean(e->lhs);
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kImplies:
      return is_boolean(e->lhs) && is_boolean(e->rhs);
    default:
      return false;
  }
}

bool is_literal(const ExprPtr& e) {
  if (!e) return false;
  if (e->kind == ExprKind::kAtom) return true;
  return e->kind == ExprKind::kNot && e->lhs && e->lhs->kind == ExprKind::kAtom;
}

namespace {

void collect_signals(const ExprPtr& e, std::set<std::string>& out) {
  if (!e) return;
  if (e->kind == ExprKind::kAtom) {
    out.insert(e->atom.lhs);
    if (e->atom.rhs_is_signal) out.insert(e->atom.rhs_signal);
    return;
  }
  collect_signals(e->lhs, out);
  collect_signals(e->rhs, out);
}

}  // namespace

std::set<std::string> referenced_signals(const ExprPtr& e) {
  std::set<std::string> out;
  collect_signals(e, out);
  return out;
}

size_t node_count(const ExprPtr& e) {
  if (!e) return 0;
  return 1 + node_count(e->lhs) + node_count(e->rhs);
}

uint32_t max_next_depth(const ExprPtr& e) {
  if (!e) return 0;
  uint32_t self = e->kind == ExprKind::kNext ? e->next_count : 0;
  if (e->kind == ExprKind::kNextEps) self = e->tau;
  return self + std::max(max_next_depth(e->lhs), max_next_depth(e->rhs));
}

TimeNs max_eps(const ExprPtr& e) {
  if (!e) return 0;
  TimeNs self = e->kind == ExprKind::kNextEps ? e->eps : 0;
  return self + std::max(max_eps(e->lhs), max_eps(e->rhs));
}

bool has_temporal(const ExprPtr& e) {
  if (!e) return false;
  switch (e->kind) {
    case ExprKind::kNext:
    case ExprKind::kNextEps:
    case ExprKind::kUntil:
    case ExprKind::kRelease:
    case ExprKind::kAlways:
    case ExprKind::kEventually:
    case ExprKind::kAbort:
      return true;
    default:
      return has_temporal(e->lhs) || has_temporal(e->rhs);
  }
}

namespace {

const char* cmp_str(CmpOp op) {
  switch (op) {
    case CmpOp::kTruthy: return "";
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

// Binding strength, higher binds tighter. Used to minimize parentheses.
int precedence(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAlways:
    case ExprKind::kEventually:
      return 1;
    case ExprKind::kImplies:
      return 2;
    case ExprKind::kUntil:
    case ExprKind::kRelease:
    case ExprKind::kAbort:
      return 3;
    case ExprKind::kOr:
      return 4;
    case ExprKind::kAnd:
      return 5;
    case ExprKind::kNot:
      return 6;
    default:
      return 7;  // atoms, constants, next/next_e (self-delimiting)
  }
}

void print(const ExprPtr& e, int parent_prec, std::string& out) {
  const int prec = precedence(e->kind);
  const bool parens = prec < parent_prec;
  if (parens) out += "(";
  switch (e->kind) {
    case ExprKind::kConstTrue:
      out += "true";
      break;
    case ExprKind::kConstFalse:
      out += "false";
      break;
    case ExprKind::kAtom: {
      const Atom& a = e->atom;
      out += a.lhs;
      if (a.op != CmpOp::kTruthy) {
        out += " ";
        out += cmp_str(a.op);
        out += " ";
        out += a.rhs_is_signal ? a.rhs_signal : std::to_string(a.rhs_value);
      }
      break;
    }
    case ExprKind::kNot: {
      out += "!";
      // A comparison atom must be parenthesized under negation: "!x == 0"
      // would read as "(!x) == 0".
      const bool cmp_atom = e->lhs->kind == ExprKind::kAtom &&
                            e->lhs->atom.op != CmpOp::kTruthy;
      print(e->lhs, cmp_atom ? 100 : precedence(ExprKind::kNot) + 1, out);
      break;
    }
    case ExprKind::kAnd:
      print(e->lhs, prec, out);
      out += " && ";
      print(e->rhs, prec + 1, out);
      break;
    case ExprKind::kOr:
      print(e->lhs, prec, out);
      out += " || ";
      print(e->rhs, prec + 1, out);
      break;
    case ExprKind::kImplies:
      print(e->lhs, prec + 1, out);
      out += " -> ";
      print(e->rhs, prec, out);
      break;
    case ExprKind::kNext:
      out += "next";
      if (e->next_count != 1) {
        out += "[" + std::to_string(e->next_count) + "]";
      }
      out += "(";
      print(e->lhs, 0, out);
      out += ")";
      break;
    case ExprKind::kNextEps:
      out += "next_e[" + std::to_string(e->tau) + "," + std::to_string(e->eps) + "](";
      print(e->lhs, 0, out);
      out += ")";
      break;
    case ExprKind::kUntil:
      print(e->lhs, prec + 1, out);
      out += e->strong ? " until! " : " until ";
      print(e->rhs, prec + 1, out);
      break;
    case ExprKind::kRelease:
      print(e->lhs, prec + 1, out);
      out += " release ";
      print(e->rhs, prec + 1, out);
      break;
    case ExprKind::kAbort:
      print(e->lhs, prec + 1, out);
      out += e->strong ? " abort! " : " abort ";
      print(e->rhs, prec + 1, out);
      break;
    case ExprKind::kAlways:
      out += "always ";
      print(e->lhs, prec, out);
      break;
    case ExprKind::kEventually:
      out += "eventually! ";
      print(e->lhs, prec, out);
      break;
  }
  if (parens) out += ")";
}

}  // namespace

std::string to_string(const ExprPtr& e) {
  assert(e);
  std::string out;
  print(e, 0, out);
  return out;
}

std::string to_string(const ClockContext& c) {
  std::string base;
  switch (c.kind) {
    case ClockContext::Kind::kTrue: base = "true"; break;
    case ClockContext::Kind::kClk: base = "clk"; break;
    case ClockContext::Kind::kClkPos: base = "clk_pos"; break;
    case ClockContext::Kind::kClkNeg: base = "clk_neg"; break;
  }
  if (c.guard) base += " && " + to_string(c.guard);
  return base;
}

std::string to_string(const TransactionContext& c) {
  std::string base = "Tb";
  if (c.guard) base += " && " + to_string(c.guard);
  return base;
}

std::string to_string(const RtlProperty& p) {
  return to_string(p.formula) + " @" + to_string(p.context);
}

std::string to_string(const TlmProperty& p) {
  return to_string(p.formula) + " @" + to_string(p.context);
}

}  // namespace repro::psl
