#include "psl/intern.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace repro::psl {

namespace {

// FNV-1a style mixing; good enough for hash-cons buckets.
inline size_t mix(size_t h, uint64_t v) {
  h ^= static_cast<size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

size_t hash_string(const std::string& s) {
  return std::hash<std::string>{}(s);
}

}  // namespace

size_t ExprTable::NodeKeyHash::operator()(const NodeKey& k) const {
  size_t h = static_cast<size_t>(k.kind);
  h = mix(h, k.strong);
  h = mix(h, k.next_count);
  h = mix(h, k.tau);
  h = mix(h, k.eps);
  h = mix(h, k.atom);
  h = mix(h, k.lhs);
  h = mix(h, k.rhs);
  return h;
}

size_t ExprTable::AtomKeyHash::operator()(const AtomKey& k) const {
  size_t h = hash_string(k.atom.lhs);
  h = mix(h, static_cast<uint64_t>(k.atom.op));
  h = mix(h, k.atom.rhs_is_signal);
  h = mix(h, hash_string(k.atom.rhs_signal));
  h = mix(h, k.atom.rhs_value);
  return h;
}

ExprTable::ExprTable() {
  // Slot 0 is the kNoExpr sentinel: an absent child contributes nothing to
  // any fact and converts to nullptr.
  nodes_.emplace_back();
  Facts none;
  none.is_boolean = true;  // matches is_boolean(nullptr) in ast.cc
  facts_.push_back(none);
  signals_.emplace_back();
  expr_cache_.emplace_back(nullptr);
}

uint32_t ExprTable::intern_atom(const Atom& a) {
  auto [it, inserted] =
      atom_index_.try_emplace(AtomKey{a}, static_cast<uint32_t>(atoms_.size()));
  if (inserted) atoms_.push_back(a);
  return it->second;
}

ExprId ExprTable::add(NodeKey key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  const ExprId id = static_cast<ExprId>(nodes_.size());
  index_.emplace(key, id);

  Node n;
  n.kind = key.kind;
  n.strong = key.strong;
  n.next_count = key.next_count;
  n.tau = key.tau;
  n.eps = key.eps;
  n.atom = key.atom;
  n.lhs = key.lhs;
  n.rhs = key.rhs;
  nodes_.push_back(n);

  const Facts& l = facts_[key.lhs];
  const Facts& r = facts_[key.rhs];
  Facts f;
  f.node_count = 1 + l.node_count + r.node_count;
  uint32_t next_self = 0;
  if (key.kind == ExprKind::kNext) next_self = key.next_count;
  if (key.kind == ExprKind::kNextEps) next_self = key.tau;
  f.max_next_depth = next_self + std::max(l.max_next_depth, r.max_next_depth);
  const TimeNs eps_self = key.kind == ExprKind::kNextEps ? key.eps : 0;
  f.max_eps = eps_self + std::max(l.max_eps, r.max_eps);
  switch (key.kind) {
    case ExprKind::kConstTrue:
    case ExprKind::kConstFalse:
    case ExprKind::kAtom:
      f.is_boolean = true;
      f.has_temporal = false;
      break;
    case ExprKind::kNot:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kImplies:
      f.is_boolean = l.is_boolean && r.is_boolean;
      f.has_temporal = l.has_temporal || r.has_temporal;
      break;
    default:
      f.is_boolean = false;
      f.has_temporal = true;
      break;
  }
  facts_.push_back(f);

  // Sorted-unique merge of the children's signal sets (plus the atom's own).
  std::vector<std::string> sigs;
  if (key.kind == ExprKind::kAtom) {
    const Atom& a = atoms_[key.atom];
    sigs.push_back(a.lhs);
    if (a.rhs_is_signal) sigs.push_back(a.rhs_signal);
    std::sort(sigs.begin(), sigs.end());
    sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
  } else {
    const auto& ls = signals_[key.lhs];
    const auto& rs = signals_[key.rhs];
    sigs.reserve(ls.size() + rs.size());
    std::set_union(ls.begin(), ls.end(), rs.begin(), rs.end(),
                   std::back_inserter(sigs));
  }
  signals_.push_back(std::move(sigs));
  expr_cache_.emplace_back(nullptr);
  return id;
}

ExprId ExprTable::mk_true() { return add({ExprKind::kConstTrue, false, 1, 0, 0, 0, kNoExpr, kNoExpr}); }
ExprId ExprTable::mk_false() { return add({ExprKind::kConstFalse, false, 1, 0, 0, 0, kNoExpr, kNoExpr}); }

ExprId ExprTable::mk_atom(const Atom& a) {
  return add({ExprKind::kAtom, false, 1, 0, 0, intern_atom(a), kNoExpr, kNoExpr});
}

ExprId ExprTable::mk_not(ExprId p) {
  assert(p != kNoExpr);
  return add({ExprKind::kNot, false, 1, 0, 0, 0, p, kNoExpr});
}

ExprId ExprTable::mk_and(ExprId a, ExprId b) {
  assert(a != kNoExpr && b != kNoExpr);
  return add({ExprKind::kAnd, false, 1, 0, 0, 0, a, b});
}

ExprId ExprTable::mk_or(ExprId a, ExprId b) {
  assert(a != kNoExpr && b != kNoExpr);
  return add({ExprKind::kOr, false, 1, 0, 0, 0, a, b});
}

ExprId ExprTable::mk_implies(ExprId a, ExprId b) {
  assert(a != kNoExpr && b != kNoExpr);
  return add({ExprKind::kImplies, false, 1, 0, 0, 0, a, b});
}

ExprId ExprTable::mk_next(uint32_t n, ExprId p) {
  assert(n >= 1 && p != kNoExpr);
  return add({ExprKind::kNext, false, n, 0, 0, 0, p, kNoExpr});
}

ExprId ExprTable::mk_next_eps(uint32_t tau, TimeNs eps, ExprId p) {
  assert(eps >= 1 && p != kNoExpr);
  return add({ExprKind::kNextEps, false, 1, tau, eps, 0, p, kNoExpr});
}

ExprId ExprTable::mk_until(ExprId a, ExprId b, bool strong) {
  assert(a != kNoExpr && b != kNoExpr);
  return add({ExprKind::kUntil, strong, 1, 0, 0, 0, a, b});
}

ExprId ExprTable::mk_release(ExprId a, ExprId b) {
  assert(a != kNoExpr && b != kNoExpr);
  return add({ExprKind::kRelease, false, 1, 0, 0, 0, a, b});
}

ExprId ExprTable::mk_always(ExprId p) {
  assert(p != kNoExpr);
  return add({ExprKind::kAlways, false, 1, 0, 0, 0, p, kNoExpr});
}

ExprId ExprTable::mk_eventually(ExprId p) {
  assert(p != kNoExpr);
  return add({ExprKind::kEventually, true, 1, 0, 0, 0, p, kNoExpr});
}

ExprId ExprTable::mk_abort(ExprId p, ExprId b, bool strong) {
  assert(p != kNoExpr && b != kNoExpr && facts_[b].is_boolean);
  return add({ExprKind::kAbort, strong, 1, 0, 0, 0, p, b});
}

ExprId ExprTable::intern(const ExprPtr& e) {
  if (!e) return kNoExpr;
  switch (e->kind) {
    case ExprKind::kConstTrue:
      return mk_true();
    case ExprKind::kConstFalse:
      return mk_false();
    case ExprKind::kAtom:
      return mk_atom(e->atom);
    case ExprKind::kNot:
      return mk_not(intern(e->lhs));
    case ExprKind::kAnd:
      return mk_and(intern(e->lhs), intern(e->rhs));
    case ExprKind::kOr:
      return mk_or(intern(e->lhs), intern(e->rhs));
    case ExprKind::kImplies:
      return mk_implies(intern(e->lhs), intern(e->rhs));
    case ExprKind::kNext:
      return mk_next(e->next_count, intern(e->lhs));
    case ExprKind::kNextEps:
      return mk_next_eps(e->tau, e->eps, intern(e->lhs));
    case ExprKind::kUntil:
      return mk_until(intern(e->lhs), intern(e->rhs), e->strong);
    case ExprKind::kRelease:
      return mk_release(intern(e->lhs), intern(e->rhs));
    case ExprKind::kAlways:
      return mk_always(intern(e->lhs));
    case ExprKind::kEventually:
      return mk_eventually(intern(e->lhs));
    case ExprKind::kAbort:
      return mk_abort(intern(e->lhs), intern(e->rhs), e->strong);
  }
  assert(false && "unreachable");
  return kNoExpr;
}

ExprPtr ExprTable::expr(ExprId id) const {
  if (id == kNoExpr) return nullptr;
  if (expr_cache_[id]) return expr_cache_[id];
  const Node& n = nodes_[id];
  ExprPtr out;
  switch (n.kind) {
    case ExprKind::kConstTrue:
      out = const_true();
      break;
    case ExprKind::kConstFalse:
      out = const_false();
      break;
    case ExprKind::kAtom:
      out = atom(atoms_[n.atom]);
      break;
    case ExprKind::kNot:
      out = not_(expr(n.lhs));
      break;
    case ExprKind::kAnd:
      out = and_(expr(n.lhs), expr(n.rhs));
      break;
    case ExprKind::kOr:
      out = or_(expr(n.lhs), expr(n.rhs));
      break;
    case ExprKind::kImplies:
      out = implies(expr(n.lhs), expr(n.rhs));
      break;
    case ExprKind::kNext:
      out = next(n.next_count, expr(n.lhs));
      break;
    case ExprKind::kNextEps:
      out = next_eps(n.tau, n.eps, expr(n.lhs));
      break;
    case ExprKind::kUntil:
      out = until(expr(n.lhs), expr(n.rhs), n.strong);
      break;
    case ExprKind::kRelease:
      out = release(expr(n.lhs), expr(n.rhs));
      break;
    case ExprKind::kAlways:
      out = always(expr(n.lhs));
      break;
    case ExprKind::kEventually:
      out = eventually(expr(n.lhs));
      break;
    case ExprKind::kAbort:
      out = abort_(expr(n.lhs), expr(n.rhs), n.strong);
      break;
  }
  expr_cache_[id] = out;
  return out;
}

}  // namespace repro::psl
