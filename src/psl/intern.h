// Hash-consed expression arena: the interned IR behind the rewrite pass
// manager and the compiled checker programs.
//
// ExprTable stores each structurally distinct expression exactly once and
// names it by a dense ExprId, so
//   - structural equality is an integer comparison (two formulas are equal
//     iff their ids in the same table are equal),
//   - per-node facts (node_count, max_next_depth, max_eps, referenced
//     signals, boolean/temporal flags) are computed once at intern time from
//     the children's cached facts, and
//   - rewrite passes can memoize over ExprId instead of re-walking trees.
//
// The shared_ptr tree AST of ast.h remains the exchange format during the
// migration: intern() folds a tree into the table and expr() rebuilds (and
// caches) a tree for an id. A table is single-threaded by design — each pass
// manager or compiler owns its own; the artifacts they produce (ExprPtr
// trees, checker programs) are immutable and freely shared across threads.
#ifndef REPRO_PSL_INTERN_H_
#define REPRO_PSL_INTERN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "psl/ast.h"

namespace repro::psl {

// Dense handle into an ExprTable. 0 is reserved for "no expression" (the
// absent child of a unary node, a deleted formula).
using ExprId = uint32_t;
inline constexpr ExprId kNoExpr = 0;

class ExprTable {
 public:
  // One interned node. Children are ids interned earlier (lhs/rhs < own id),
  // so the node array is already topologically ordered.
  struct Node {
    ExprKind kind = ExprKind::kConstTrue;
    bool strong = false;       // until! / eventually! / abort!
    uint32_t next_count = 1;   // kNext
    uint32_t tau = 0;          // kNextEps
    TimeNs eps = 0;            // kNextEps
    uint32_t atom = 0;         // index into atoms(), kAtom only
    ExprId lhs = kNoExpr;
    ExprId rhs = kNoExpr;
  };

  // Facts cached per node at intern time (O(1) from the children's facts).
  struct Facts {
    uint32_t node_count = 0;
    uint32_t max_next_depth = 0;
    TimeNs max_eps = 0;
    bool is_boolean = false;
    bool has_temporal = false;
  };

  struct Stats {
    uint64_t hits = 0;    // intern calls answered by an existing node
    uint64_t misses = 0;  // intern calls that created a node
  };

  ExprTable();

  // ---- Interning -----------------------------------------------------------

  // Folds a tree into the table; structurally equal trees yield equal ids.
  ExprId intern(const ExprPtr& e);

  // Node-level constructors (the factory API over ids).
  ExprId mk_true();
  ExprId mk_false();
  ExprId mk_atom(const Atom& a);
  ExprId mk_not(ExprId p);
  ExprId mk_and(ExprId a, ExprId b);
  ExprId mk_or(ExprId a, ExprId b);
  ExprId mk_implies(ExprId a, ExprId b);
  ExprId mk_next(uint32_t n, ExprId p);
  ExprId mk_next_eps(uint32_t tau, TimeNs eps, ExprId p);
  ExprId mk_until(ExprId a, ExprId b, bool strong);
  ExprId mk_release(ExprId a, ExprId b);
  ExprId mk_always(ExprId p);
  ExprId mk_eventually(ExprId p);
  ExprId mk_abort(ExprId p, ExprId b, bool strong);

  // ---- Access --------------------------------------------------------------

  const Node& node(ExprId id) const { return nodes_[id]; }
  const Facts& facts(ExprId id) const { return facts_[id]; }
  const Atom& atom_of(ExprId id) const { return atoms_[nodes_[id].atom]; }

  // Sorted, deduplicated names of the design signals referenced below `id`.
  const std::vector<std::string>& signals(ExprId id) const {
    return signals_[id];
  }

  // Rebuilds (and caches) a shared tree for `id`. kNoExpr yields nullptr.
  ExprPtr expr(ExprId id) const;

  // Number of interned nodes, including the kNoExpr sentinel.
  size_t size() const { return nodes_.size(); }
  const Stats& stats() const { return stats_; }

  std::string to_string(ExprId id) const { return psl::to_string(expr(id)); }

 private:
  struct NodeKey {
    ExprKind kind;
    bool strong;
    uint32_t next_count;
    uint32_t tau;
    TimeNs eps;
    uint32_t atom;
    ExprId lhs;
    ExprId rhs;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const;
  };
  struct AtomKey {
    Atom atom;
    bool operator==(const AtomKey& other) const { return atom == other.atom; }
  };
  struct AtomKeyHash {
    size_t operator()(const AtomKey& k) const;
  };

  ExprId add(NodeKey key);
  uint32_t intern_atom(const Atom& a);

  std::vector<Node> nodes_;
  std::vector<Facts> facts_;
  std::vector<std::vector<std::string>> signals_;
  std::vector<Atom> atoms_;
  std::unordered_map<NodeKey, ExprId, NodeKeyHash> index_;
  std::unordered_map<AtomKey, uint32_t, AtomKeyHash> atom_index_;
  mutable std::vector<ExprPtr> expr_cache_;
  Stats stats_;
};

}  // namespace repro::psl

#endif  // REPRO_PSL_INTERN_H_
