#include "psl/parser.h"

#include <cassert>

#include "psl/lexer.h"
#include "support/strutil.h"

namespace repro::psl {
namespace {

bool is_keyword(const std::string& text) {
  return text == "always" || text == "eventually!" || text == "never" ||
         text == "next" || text == "next_e" || text == "until" ||
         text == "until!" || text == "release" || text == "abort" ||
         text == "abort!" || text == "true" || text == "false";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> expr() { return always_expr(); }

  const Token& peek() const { return tokens_[pos_]; }
  bool at_end() const { return peek().kind == TokenKind::kEnd; }

  bool accept(TokenKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool accept_ident(std::string_view text) {
    if (peek().kind != TokenKind::kIdent || peek().text != text) return false;
    ++pos_;
    return true;
  }

  Error err(std::string message) const {
    return Error{std::move(message), peek().position};
  }

  // context := ('true'|'clk'|'clk_pos'|'clk_neg'|'Tb') ['&&' expr]
  // Returns a ClockContext; `is_tlm` is set when the base was Tb.
  Result<ClockContext> context(bool& is_tlm) {
    is_tlm = false;
    ClockContext ctx;
    if (peek().kind != TokenKind::kIdent) {
      return err("expected clock or transaction context after '@'");
    }
    const std::string base = peek().text;
    if (base == "true") {
      ctx.kind = ClockContext::Kind::kTrue;
    } else if (base == "clk") {
      ctx.kind = ClockContext::Kind::kClk;
    } else if (base == "clk_pos") {
      ctx.kind = ClockContext::Kind::kClkPos;
    } else if (base == "clk_neg") {
      ctx.kind = ClockContext::Kind::kClkNeg;
    } else if (base == "Tb") {
      is_tlm = true;
    } else {
      return err("unknown context base '" + base + "'");
    }
    ++pos_;
    if (accept(TokenKind::kAnd)) {
      auto guard = always_expr();
      if (!guard.ok()) return guard.error();
      if (!is_boolean(guard.value())) {
        return err("context guard must be a boolean expression");
      }
      ctx.guard = std::move(guard).take();
    }
    return ctx;
  }

 private:
  Result<ExprPtr> always_expr() {
    if (accept_ident("always")) {
      auto body = always_expr();
      if (!body.ok()) return body;
      return always(std::move(body).take());
    }
    if (accept_ident("eventually!")) {
      auto body = always_expr();
      if (!body.ok()) return body;
      return eventually(std::move(body).take());
    }
    if (accept_ident("never")) {
      // Sugar: never p == always !p.
      auto body = always_expr();
      if (!body.ok()) return body;
      return always(not_(std::move(body).take()));
    }
    return impl_expr();
  }

  Result<ExprPtr> impl_expr() {
    auto lhs = until_expr();
    if (!lhs.ok()) return lhs;
    if (accept(TokenKind::kImplies)) {
      auto rhs = impl_expr();
      if (!rhs.ok()) return rhs;
      return implies(std::move(lhs).take(), std::move(rhs).take());
    }
    return lhs;
  }

  Result<ExprPtr> until_expr() {
    auto lhs = or_expr();
    if (!lhs.ok()) return lhs;
    if (peek().kind == TokenKind::kIdent) {
      const std::string& text = peek().text;
      if (text == "until" || text == "until!") {
        const bool strong = text == "until!";
        ++pos_;
        auto rhs = until_expr();
        if (!rhs.ok()) return rhs;
        return until(std::move(lhs).take(), std::move(rhs).take(), strong);
      }
      if (text == "release") {
        ++pos_;
        auto rhs = until_expr();
        if (!rhs.ok()) return rhs;
        return release(std::move(lhs).take(), std::move(rhs).take());
      }
      if (text == "abort" || text == "abort!") {
        const bool strong = text == "abort!";
        ++pos_;
        auto rhs = until_expr();
        if (!rhs.ok()) return rhs;
        if (!is_boolean(rhs.value())) {
          return err("abort condition must be a boolean expression");
        }
        return abort_(std::move(lhs).take(), std::move(rhs).take(), strong);
      }
    }
    return lhs;
  }

  Result<ExprPtr> or_expr() {
    auto lhs = and_expr();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kOr)) {
      auto rhs = and_expr();
      if (!rhs.ok()) return rhs;
      lhs = or_(std::move(lhs).take(), std::move(rhs).take());
    }
    return lhs;
  }

  Result<ExprPtr> and_expr() {
    auto lhs = not_expr();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kAnd)) {
      auto rhs = not_expr();
      if (!rhs.ok()) return rhs;
      lhs = and_(std::move(lhs).take(), std::move(rhs).take());
    }
    return lhs;
  }

  Result<ExprPtr> not_expr() {
    if (accept(TokenKind::kNot)) {
      auto body = not_expr();
      if (!body.ok()) return body;
      return not_(std::move(body).take());
    }
    return primary();
  }

  Result<ExprPtr> primary() {
    const Token& t = peek();
    if (t.kind == TokenKind::kLParen) {
      ++pos_;
      auto body = always_expr();
      if (!body.ok()) return body;
      if (!accept(TokenKind::kRParen)) return err("expected ')'");
      return body;
    }
    if (t.kind != TokenKind::kIdent) {
      return err("expected expression");
    }
    // always / eventually! are accepted as (greedy) prefixes in any
    // subexpression position, e.g. `!ds || eventually! rdy`.
    if (t.text == "always" || t.text == "eventually!" || t.text == "never") {
      return always_expr();
    }
    if (t.text == "true") {
      ++pos_;
      return const_true();
    }
    if (t.text == "false") {
      ++pos_;
      return const_false();
    }
    if (t.text == "next") {
      ++pos_;
      uint32_t n = 1;
      if (accept(TokenKind::kLBracket)) {
        if (peek().kind != TokenKind::kNumber) return err("expected repetition count");
        if (peek().value == 0) return err("next[0] is not allowed");
        n = static_cast<uint32_t>(peek().value);
        ++pos_;
        if (!accept(TokenKind::kRBracket)) return err("expected ']'");
      }
      if (!accept(TokenKind::kLParen)) return err("expected '(' after next");
      auto body = always_expr();
      if (!body.ok()) return body;
      if (!accept(TokenKind::kRParen)) return err("expected ')'");
      return next(n, std::move(body).take());
    }
    if (t.text == "next_e") {
      ++pos_;
      if (!accept(TokenKind::kLBracket)) return err("expected '[' after next_e");
      if (peek().kind != TokenKind::kNumber) return err("expected tau");
      const uint32_t tau = static_cast<uint32_t>(peek().value);
      ++pos_;
      if (!accept(TokenKind::kComma)) return err("expected ','");
      if (peek().kind != TokenKind::kNumber) return err("expected eps");
      const TimeNs eps = peek().value;
      ++pos_;
      if (eps == 0) return err("next_e requires eps >= 1 ns");
      if (!accept(TokenKind::kRBracket)) return err("expected ']'");
      if (!accept(TokenKind::kLParen)) return err("expected '(' after next_e[...]");
      auto body = always_expr();
      if (!body.ok()) return body;
      if (!accept(TokenKind::kRParen)) return err("expected ')'");
      return next_eps(tau, eps, std::move(body).take());
    }
    if (is_keyword(t.text)) {
      return err("unexpected keyword '" + t.text + "'");
    }
    // Atom: ident [cmpop (num | ident)]
    Atom a;
    a.lhs = t.text;
    ++pos_;
    CmpOp op = CmpOp::kTruthy;
    switch (peek().kind) {
      case TokenKind::kEq: op = CmpOp::kEq; break;
      case TokenKind::kNe: op = CmpOp::kNe; break;
      case TokenKind::kLt: op = CmpOp::kLt; break;
      case TokenKind::kLe: op = CmpOp::kLe; break;
      case TokenKind::kGt: op = CmpOp::kGt; break;
      case TokenKind::kGe: op = CmpOp::kGe; break;
      default:
        return atom(std::move(a));
    }
    ++pos_;
    a.op = op;
    if (peek().kind == TokenKind::kNumber) {
      a.rhs_value = peek().value;
      ++pos_;
    } else if (peek().kind == TokenKind::kIdent && !is_keyword(peek().text)) {
      a.rhs_is_signal = true;
      a.rhs_signal = peek().text;
      ++pos_;
    } else {
      return err("expected number or signal after comparison operator");
    }
    return atom(std::move(a));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

struct ParsedProperty {
  std::string name;
  ExprPtr formula;
  ClockContext context;
  bool is_tlm = false;
};

Result<ParsedProperty> parse_one(Parser& parser) {
  ParsedProperty out;
  // Optional `name:` prefix.
  if (parser.peek().kind == TokenKind::kIdent && !is_keyword(parser.peek().text)) {
    const Token name_tok = parser.peek();
    // Lookahead: ident ':' means a property name.
    Parser probe = parser;  // cheap copy: token vector shared by value
    probe.accept(TokenKind::kIdent);
    if (probe.accept(TokenKind::kColon)) {
      parser.accept(TokenKind::kIdent);
      parser.accept(TokenKind::kColon);
      out.name = name_tok.text;
    }
  }
  auto formula = parser.expr();
  if (!formula.ok()) return formula.error();
  out.formula = std::move(formula).take();
  if (parser.accept(TokenKind::kAt)) {
    auto ctx = parser.context(out.is_tlm);
    if (!ctx.ok()) return ctx.error();
    out.context = std::move(ctx).take();
  }
  return out;
}

}  // namespace

Result<ExprPtr> parse_expr(std::string_view input) {
  auto tokens = tokenize(input);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).take());
  auto result = parser.expr();
  if (!result.ok()) return result;
  if (!parser.at_end()) {
    return Error{"trailing input after expression", parser.peek().position};
  }
  return result;
}

Result<RtlProperty> parse_rtl_property(std::string_view input) {
  auto tokens = tokenize(input);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).take());
  auto parsed = parse_one(parser);
  if (!parsed.ok()) return parsed.error();
  parser.accept(TokenKind::kSemicolon);
  if (!parser.at_end()) {
    return Error{"trailing input after property", parser.peek().position};
  }
  if (parsed.value().is_tlm) {
    return Error{"expected an RTL clock context, found transaction context Tb", 0};
  }
  return RtlProperty{parsed.value().name, parsed.value().formula,
                     parsed.value().context};
}

Result<TlmProperty> parse_tlm_property(std::string_view input) {
  auto tokens = tokenize(input);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).take());
  auto parsed = parse_one(parser);
  if (!parsed.ok()) return parsed.error();
  parser.accept(TokenKind::kSemicolon);
  if (!parser.at_end()) {
    return Error{"trailing input after property", parser.peek().position};
  }
  const ParsedProperty& p = parsed.value();
  // Absent context defaults to the basic transaction context Tb.
  const bool context_absent =
      !p.is_tlm && p.context.kind == ClockContext::Kind::kTrue && !p.context.guard;
  if (!p.is_tlm && !context_absent) {
    return Error{"expected transaction context Tb on a TLM property", 0};
  }
  return TlmProperty{p.name, p.formula, TransactionContext{p.context.guard}};
}

Result<std::vector<RtlProperty>> parse_rtl_property_file(
    std::string_view input, std::vector<int>* offsets) {
  std::vector<RtlProperty> out;
  auto tokens = tokenize(input);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).take());
  while (!parser.at_end()) {
    // Skip stray separators.
    if (parser.accept(TokenKind::kSemicolon)) continue;
    const int start = static_cast<int>(parser.peek().position);
    auto parsed = parse_one(parser);
    if (!parsed.ok()) return parsed.error();
    if (parsed.value().is_tlm) {
      return Error{"RTL property file contains a TLM (Tb) context", 0};
    }
    out.push_back(RtlProperty{parsed.value().name, parsed.value().formula,
                              parsed.value().context});
    if (offsets != nullptr) offsets->push_back(start);
    if (!parser.accept(TokenKind::kSemicolon) && !parser.at_end()) {
      return Error{"expected ';' between properties", parser.peek().position};
    }
  }
  return out;
}

}  // namespace repro::psl
