// Abstract syntax for the LTL core of PSL used by the paper (Def. II.1),
// extended with the paper's next_eps^tau operator (Def. III.3) and with
// PSL clock contexts / TLM transaction contexts.
//
// Expressions are immutable and shared (shared_ptr<const Expr>): rewriting
// passes build new trees that reuse unchanged subtrees.
#ifndef REPRO_PSL_AST_H_
#define REPRO_PSL_AST_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace repro::psl {

// Evaluation times for next_eps are expressed in nanoseconds (Def. III.3).
using TimeNs = uint64_t;

enum class ExprKind {
  kConstTrue,
  kConstFalse,
  kAtom,        // comparison over design signals
  kNot,         // general negation (reduced to atoms by NNF)
  kAnd,
  kOr,
  kImplies,     // a -> b, sugar for !a || b (removed by NNF)
  kNext,        // next[n](p), n >= 1 clock events
  kNextEps,     // next_eps^tau(p): p must hold at an event exactly eps ns
                // after the position where this operator fires (Def. III.3)
  kUntil,       // p until q (weak) / p until! q (strong)
  kRelease,     // p release q (weak)
  kAlways,      // always p == false release p
  kEventually,  // eventually! p == true until! p (strong)
  kAbort,       // p abort b: PSL async reset -- a pending p is discharged
                // the moment the boolean b holds: to true for `abort`, to
                // false for `abort!` (strong == true). The strong variant
                // arises from negation: !(p abort b) == (!p) abort! b.
};

// Comparison operator of an atomic proposition.
enum class CmpOp { kTruthy, kEq, kNe, kLt, kLe, kGt, kGe };

// Atomic proposition over design observables: either the truthiness of a
// signal (`rdy`), or a comparison of a signal against a constant or another
// signal (`indata == 0`, `out != expected`).
struct Atom {
  std::string lhs;
  CmpOp op = CmpOp::kTruthy;
  bool rhs_is_signal = false;
  std::string rhs_signal;
  uint64_t rhs_value = 0;

  bool operator==(const Atom&) const = default;
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind;

  // kAtom
  Atom atom;
  // kNext: number of events to skip (n in next[n]).
  uint32_t next_count = 1;
  // kNextEps: position index tau and required evaluation time eps (ns).
  uint32_t tau = 0;
  TimeNs eps = 0;
  // kUntil / kEventually: strong variant (until! / eventually!).
  bool strong = false;

  // Children: unary operators use only lhs.
  ExprPtr lhs;
  ExprPtr rhs;
};

// ---- Factory functions -----------------------------------------------------

ExprPtr const_true();
ExprPtr const_false();
ExprPtr atom(Atom a);
// Convenience: truthy signal atom.
ExprPtr sig(std::string name);
// Convenience: comparison against a constant.
ExprPtr cmp(std::string lhs, CmpOp op, uint64_t value);
ExprPtr not_(ExprPtr p);
ExprPtr and_(ExprPtr a, ExprPtr b);
ExprPtr or_(ExprPtr a, ExprPtr b);
ExprPtr implies(ExprPtr a, ExprPtr b);
ExprPtr next(uint32_t n, ExprPtr p);
ExprPtr next_eps(uint32_t tau, TimeNs eps, ExprPtr p);
ExprPtr until(ExprPtr a, ExprPtr b, bool strong = false);
ExprPtr release(ExprPtr a, ExprPtr b);
ExprPtr always(ExprPtr p);
ExprPtr eventually(ExprPtr p);
// p abort b (resolve_true) / p abort! b; b must be boolean.
ExprPtr abort_(ExprPtr p, ExprPtr b, bool strong = false);

// ---- Queries ---------------------------------------------------------------

// Structural equality.
bool equal(const ExprPtr& a, const ExprPtr& b);

// True if the expression contains no temporal operator (pure boolean layer).
bool is_boolean(const ExprPtr& e);

// True if `e` is an atom or a negated atom (a literal in NNF terms).
bool is_literal(const ExprPtr& e);

// Collects the names of all design signals referenced by `e`.
std::set<std::string> referenced_signals(const ExprPtr& e);

// Number of nodes, for diagnostics and benchmarks.
size_t node_count(const ExprPtr& e);

// Largest total next/next_eps depth along any path: for next it accumulates
// event counts, for next_eps nanoseconds are reported separately by
// max_eps(). Used to size checker instance pools (Sec. IV).
uint32_t max_next_depth(const ExprPtr& e);
TimeNs max_eps(const ExprPtr& e);

// True if `e` contains at least one kNext / kNextEps / kUntil / kRelease /
// kAlways / kEventually operator.
bool has_temporal(const ExprPtr& e);

// ---- Printing --------------------------------------------------------------

// Renders the expression in the concrete syntax accepted by the parser:
//   always (!(ds && indata == 0) || next[17](out != 0))
//   next_e[1,170](out != 0)
std::string to_string(const ExprPtr& e);

// ---- Contexts and properties ------------------------------------------------

// PSL clock context: the @ expression of an RTL property (Sec. III-A).
struct ClockContext {
  enum class Kind { kTrue, kClk, kClkPos, kClkNeg };
  Kind kind = Kind::kTrue;
  // Optional boolean guard (`clock_expr && var_expr` form of Def. III.2).
  ExprPtr guard;  // nullptr when absent

  bool operator==(const ClockContext& other) const {
    return kind == other.kind && equal(guard, other.guard);
  }
};

std::string to_string(const ClockContext& c);

// TLM transaction context (Def. III.2): the basic context Tb evaluates the
// property at the end of every transaction; an optional guard restricts it.
struct TransactionContext {
  ExprPtr guard;  // nullptr when absent

  bool operator==(const TransactionContext& other) const {
    return equal(guard, other.guard);
  }
};

std::string to_string(const TransactionContext& c);

// An RTL property: formula plus clock context.
struct RtlProperty {
  std::string name;
  ExprPtr formula;
  ClockContext context;
};

// A TLM property: formula plus transaction context.
struct TlmProperty {
  std::string name;
  ExprPtr formula;
  TransactionContext context;
};

std::string to_string(const RtlProperty& p);
std::string to_string(const TlmProperty& p);

}  // namespace repro::psl

#endif  // REPRO_PSL_AST_H_
