// Tokenizer for the PSL-like concrete syntax:
//
//   p3: always (!ds || (next[15](rdy_nnc) && next[16](rdy_nc))) @clk_pos
//
// Keywords: always, eventually!, next, next_e, until, until!, release,
// true, false. Comments start with '#' or '--' and run to end of line.
#ifndef REPRO_PSL_LEXER_H_
#define REPRO_PSL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace repro::psl {

enum class TokenKind {
  kIdent,     // signal names and keywords (keyword detection is contextual)
  kNumber,
  kLParen, kRParen, kLBracket, kRBracket,
  kComma, kColon, kSemicolon,
  kNot,        // !
  kAnd,        // && or &
  kOr,         // || or |
  kImplies,    // ->
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAt,         // @
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier text or number literal
  uint64_t value = 0; // for kNumber
  int position = 0;   // byte offset in input
};

// Tokenizes `input`; returns an Error on any malformed character or number.
// The result always ends with a kEnd token.
Result<std::vector<Token>> tokenize(std::string_view input);

}  // namespace repro::psl

#endif  // REPRO_PSL_LEXER_H_
