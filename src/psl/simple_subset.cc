#include "psl/simple_subset.h"

namespace repro::psl {
namespace {

// True for boolean expressions and for next/next_e chains whose innermost
// operand is boolean — the shapes push_ahead_next produces for until and
// release operands.
bool is_boolean_or_next_chain(const ExprPtr& e) {
  if (is_boolean(e)) return true;
  if (e->kind == ExprKind::kNext || e->kind == ExprKind::kNextEps) {
    return is_boolean_or_next_chain(e->lhs);
  }
  return false;
}

void check(const ExprPtr& e, std::vector<std::string>& out) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kNot:
      if (!is_boolean(e->lhs)) {
        out.push_back("negation applied to non-boolean operand: " + to_string(e));
      }
      check(e->lhs, out);
      break;
    case ExprKind::kImplies:
      if (!is_boolean(e->lhs)) {
        out.push_back("left operand of '->' is not boolean: " + to_string(e));
      }
      check(e->lhs, out);
      check(e->rhs, out);
      break;
    case ExprKind::kOr:
      if (!is_boolean(e->lhs) && !is_boolean(e->rhs)) {
        out.push_back("both operands of '||' are non-boolean: " + to_string(e));
      }
      check(e->lhs, out);
      check(e->rhs, out);
      break;
    case ExprKind::kUntil:
    case ExprKind::kRelease:
      if (!is_boolean_or_next_chain(e->lhs)) {
        out.push_back("left operand of until/release is not boolean: " +
                      to_string(e));
      }
      if (!is_boolean_or_next_chain(e->rhs)) {
        out.push_back("right operand of until/release is not boolean: " +
                      to_string(e));
      }
      check(e->lhs, out);
      check(e->rhs, out);
      break;
    case ExprKind::kAbort:
      if (!is_boolean(e->rhs)) {
        out.push_back("abort condition is not boolean: " + to_string(e));
      }
      check(e->lhs, out);
      break;
    default:
      check(e->lhs, out);
      check(e->rhs, out);
      break;
  }
}

}  // namespace

std::vector<std::string> simple_subset_violations(const ExprPtr& e) {
  std::vector<std::string> out;
  check(e, out);
  return out;
}

bool in_simple_subset(const ExprPtr& e) {
  return simple_subset_violations(e).empty();
}

}  // namespace repro::psl
