#include "psl/simple_subset.h"

namespace repro::psl {
namespace {

// True for boolean expressions and for next/next_e chains whose innermost
// operand is boolean — the shapes push_ahead_next produces for until and
// release operands.
bool is_boolean_or_next_chain(const ExprPtr& e) {
  if (is_boolean(e)) return true;
  if (e->kind == ExprKind::kNext || e->kind == ExprKind::kNextEps) {
    return is_boolean_or_next_chain(e->lhs);
  }
  return false;
}

void check(const ExprPtr& e, std::vector<SubsetViolation>& out) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kNot:
      if (!is_boolean(e->lhs)) {
        out.push_back({SubsetRule::kNegationNonBoolean, to_string(e)});
      }
      check(e->lhs, out);
      break;
    case ExprKind::kImplies:
      if (!is_boolean(e->lhs)) {
        out.push_back({SubsetRule::kImplicationLhsNonBoolean, to_string(e)});
      }
      check(e->lhs, out);
      check(e->rhs, out);
      break;
    case ExprKind::kOr:
      if (!is_boolean(e->lhs) && !is_boolean(e->rhs)) {
        out.push_back({SubsetRule::kOrBothNonBoolean, to_string(e)});
      }
      check(e->lhs, out);
      check(e->rhs, out);
      break;
    case ExprKind::kUntil:
    case ExprKind::kRelease:
      if (!is_boolean_or_next_chain(e->lhs) ||
          !is_boolean_or_next_chain(e->rhs)) {
        out.push_back({SubsetRule::kUntilOperandNonBoolean, to_string(e)});
      }
      check(e->lhs, out);
      check(e->rhs, out);
      break;
    case ExprKind::kAbort:
      if (!is_boolean(e->rhs)) {
        out.push_back({SubsetRule::kAbortConditionNonBoolean, to_string(e)});
      }
      check(e->lhs, out);
      break;
    default:
      check(e->lhs, out);
      check(e->rhs, out);
      break;
  }
}

}  // namespace

const char* describe(SubsetRule rule) {
  switch (rule) {
    case SubsetRule::kNegationNonBoolean:
      return "negation applied to non-boolean operand";
    case SubsetRule::kImplicationLhsNonBoolean:
      return "left operand of '->' is not boolean";
    case SubsetRule::kOrBothNonBoolean:
      return "both operands of '||' are non-boolean";
    case SubsetRule::kUntilOperandNonBoolean:
      return "operand of until/release is not boolean or a next chain";
    case SubsetRule::kAbortConditionNonBoolean:
      return "abort condition is not boolean";
  }
  return "?";
}

std::vector<SubsetViolation> check_simple_subset(const ExprPtr& e) {
  std::vector<SubsetViolation> out;
  check(e, out);
  return out;
}

std::vector<std::string> simple_subset_violations(const ExprPtr& e) {
  std::vector<std::string> out;
  for (const SubsetViolation& v : check_simple_subset(e)) {
    out.push_back(std::string(describe(v.rule)) + ": " + v.subformula);
  }
  return out;
}

bool in_simple_subset(const ExprPtr& e) {
  return check_simple_subset(e).empty();
}

}  // namespace repro::psl
