// Recursive-descent parser for the PSL-like property syntax.
//
// Grammar (precedence low -> high):
//   property   := [ident ':'] expr ['@' context]
//   expr       := always_expr
//   always_expr:= ('always' | 'eventually!') always_expr | impl_expr
//   impl_expr  := until_expr ['->' impl_expr]                (right assoc)
//   until_expr := or_expr [('until'|'until!'|'release') until_expr]
//   or_expr    := and_expr ('||' and_expr)*
//   and_expr   := not_expr ('&&' not_expr)*
//   not_expr   := '!' not_expr | primary
//   primary    := 'true' | 'false'
//              | 'next' ['[' num ']'] '(' expr ')'
//              | 'next_e' '[' num ',' num ']' '(' expr ')'
//              | '(' expr ')'
//              | atom
//   atom       := ident [cmpop (num | ident)]
//   context    := ('true'|'clk'|'clk_pos'|'clk_neg'|'Tb') ['&&' expr]
//
// A context beginning with `Tb` yields a TLM property; anything else an RTL
// property. `parse_property_file` parses `name: expr @ctx;`-separated lists.
#ifndef REPRO_PSL_PARSER_H_
#define REPRO_PSL_PARSER_H_

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "psl/ast.h"
#include "support/status.h"

namespace repro::psl {

// Parses a bare formula (no name, no clock context).
Result<ExprPtr> parse_expr(std::string_view input);

// Parses one RTL property: optional `name:` prefix, formula, optional
// `@context`. A missing context is the basic clock context (true).
Result<RtlProperty> parse_rtl_property(std::string_view input);

// Parses one TLM property: the context must be `Tb` (optionally guarded)
// or absent (defaulting to Tb).
Result<TlmProperty> parse_tlm_property(std::string_view input);

// Parses a whole property file: properties separated by ';' or newlines,
// each `name: formula @context`. Blank lines and comments are skipped.
// `offsets`, when non-null, receives the byte offset of each property's
// first token in `input` (parallel to the returned vector) — source spans
// for diagnostics.
Result<std::vector<RtlProperty>> parse_rtl_property_file(
    std::string_view input, std::vector<int>* offsets = nullptr);

}  // namespace repro::psl

#endif  // REPRO_PSL_PARSER_H_
