#include "rewrite/next_substitution.h"

#include <cassert>

namespace repro::rewrite {

using psl::ExprKind;
using psl::ExprPtr;
using psl::TimeNs;

namespace {

ExprPtr walk(const ExprPtr& e, TimeNs c, uint32_t& counter) {
  if (!e) return e;
  if (e->kind == ExprKind::kNext) {
    // The operand is a literal (paper mode) or an opaque boolean-operand
    // fixpoint (see PushMode::kOpaqueFixpoints); either way it contains no
    // further kNext nodes.
    const uint32_t tau = ++counter;
    return psl::next_eps(tau, static_cast<TimeNs>(e->next_count) * c, e->lhs);
  }
  // Rebuild only when a child changed, preserving sharing elsewhere.
  ExprPtr lhs = e->lhs ? walk(e->lhs, c, counter) : nullptr;
  ExprPtr rhs = e->rhs ? walk(e->rhs, c, counter) : nullptr;
  if (lhs == e->lhs && rhs == e->rhs) return e;
  auto out = std::make_shared<psl::Expr>(*e);
  out->lhs = std::move(lhs);
  out->rhs = std::move(rhs);
  return out;
}

}  // namespace

ExprPtr substitute_next(const ExprPtr& e, TimeNs clock_period_ns) {
  assert(e);
  assert(clock_period_ns >= 1);
  uint32_t counter = 0;
  return walk(e, clock_period_ns, counter);
}

}  // namespace repro::rewrite
