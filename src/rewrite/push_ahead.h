// push_ahead_next procedure (first phase of step 2 of Methodology III.1).
//
// Pushes `next` operators towards the leaves so that every remaining `next`
// operand is a literal (atom or negated atom). Rules from Sec. III-A:
//   next(a || b)        == next(a) || next(b)
//   next(a && b)        == next(a) && next(b)
//   next(a until b)     == next(a) until next(b)
//   next(a release b)   == next(a) release next(b)
// plus the derived identities needed for a complete normal form:
//   next[n](next[m](p)) == next[n+m](p)
//   next(always p)      == always(next p)         (X G p == G X p)
//   next(eventually! p) == eventually!(next p)    (X F p == F X p)
//   next(true) == true, next(false) == false      (constants are
//                                                  time-invariant)
// The input must be in NNF.
#ifndef REPRO_REWRITE_PUSH_AHEAD_H_
#define REPRO_REWRITE_PUSH_AHEAD_H_

#include "psl/ast.h"

namespace repro::rewrite {

// How next distributes over until/release.
enum class PushMode {
  // Distribute through every operator, as published (Sec. III-A). This
  // reproduces Fig. 3's q2 verbatim, but the resulting per-position next_e
  // deadlines are unsatisfiable on transaction streams sparser than the RTL
  // clock grid (see DESIGN.md): a sound TLM-AT check of such properties
  // needs a transaction at every grid instant of the until window.
  kDistributeThroughFixpoints,
  // Stop at until/release (and always/eventually!) nodes whose operands are
  // boolean: next[k](p until q) stays a single next[k](...) and Algorithm
  // III.1 turns it into next_e[tau, k*c](p until q) — the until then anchors
  // at the (unique, timing-equivalence-guaranteed) event k cycles after
  // firing and iterates densely over the following transactions. This is
  // our soundness refinement and the default for the experiments.
  kOpaqueFixpoints,
};

psl::ExprPtr push_ahead_next(const psl::ExprPtr& e,
                             PushMode mode = PushMode::kOpaqueFixpoints);

// True if every kNext node in `e` has a literal operand or (in opaque mode)
// a boolean-operand fixpoint operand.
bool is_pushed(const psl::ExprPtr& e);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_PUSH_AHEAD_H_
