// Algorithm III.1: substitution of next[n] chains with next_eps^tau.
//
// Input: a formula in NNF after push_ahead_next, so that every kNext node
// wraps a literal. Each subformula next[n](a) — the s_i(a_i) of the paper —
// is replaced by next_e[tau=i, eps=n*c](a), where c is the RTL clock period
// in nanoseconds and i is the 1-based position of the subformula in a
// left-to-right scan of the property.
#ifndef REPRO_REWRITE_NEXT_SUBSTITUTION_H_
#define REPRO_REWRITE_NEXT_SUBSTITUTION_H_

#include "psl/ast.h"

namespace repro::rewrite {

// Replaces every next[n](literal) with next_e[i, n*c](literal).
// `clock_period_ns` must be >= 1.
psl::ExprPtr substitute_next(const psl::ExprPtr& e, psl::TimeNs clock_period_ns);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_NEXT_SUBSTITUTION_H_
