// Def. III.2: mapping of an RTL clock context to a TLM transaction context.
//
//   - the basic context (true) and {clk, clk_pos, clk_neg} map to the basic
//     transaction context Tb (evaluate at the end of every transaction);
//   - `clock_expr && var_expr` maps to `Tb && var_expr`.
#ifndef REPRO_REWRITE_CONTEXT_MAP_H_
#define REPRO_REWRITE_CONTEXT_MAP_H_

#include "psl/ast.h"

namespace repro::rewrite {

psl::TransactionContext map_context(const psl::ClockContext& c);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_CONTEXT_MAP_H_
