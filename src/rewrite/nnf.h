// Negation normal form (step 1 of Methodology III.1).
//
// Rewrites a formula so that negation is applied only to atomic
// propositions, eliminating `->` on the way (Def. II.1 admits only literals,
// and/or, next, until, release — always/eventually are kept as first-class
// nodes since they are the derived fixpoints `false release p` and
// `true until! p`).
#ifndef REPRO_REWRITE_NNF_H_
#define REPRO_REWRITE_NNF_H_

#include "psl/ast.h"

namespace repro::rewrite {

// Returns the negation-normal-form of `e`. Duality used for the temporal
// operators (finite-trace weak/strong pairing):
//   !(p until! q) == !p release !q
//   !(p until  q) == !q until! (!p && !q)
//   !(p release q) == !p until! !q
//   !always p      == eventually! !p
//   !eventually! p == always !p
//   !next[n] p     == next[n] !p        (RTL clock contexts: the trace is
//                                        as long as the simulation, so next
//                                        is self-dual here)
psl::ExprPtr to_nnf(const psl::ExprPtr& e);

// True if `e` is already in NNF (negations only on atoms, no implications).
bool is_nnf(const psl::ExprPtr& e);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_NNF_H_
