#include "rewrite/methodology.h"

#include "psl/intern.h"
#include "psl/simple_subset.h"
#include "rewrite/context_map.h"
#include "rewrite/nnf.h"
#include "rewrite/pass_manager.h"
#include "rewrite/signal_abstraction.h"

namespace repro::rewrite {

namespace {

PassTrace make_trace(const std::string& pass, const psl::ExprTable& table,
                     psl::ExprId before, psl::ExprId after, bool cache_hit,
                     std::vector<std::string> notes = {}) {
  PassTrace t;
  t.pass = pass;
  t.before = table.to_string(before);
  t.after = after == psl::kNoExpr ? "(deleted)" : table.to_string(after);
  t.nodes_before = table.facts(before).node_count;
  t.nodes_after = after == psl::kNoExpr ? 0 : table.facts(after).node_count;
  t.changed = before != after;
  t.cache_hit = cache_hit;
  t.notes = std::move(notes);
  return t;
}

}  // namespace

std::string format_passes(const std::vector<PassTrace>& passes) {
  std::string out;
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassTrace& t = passes[i];
    out += "  [" + std::to_string(i + 1) + "] " + t.pass + "\n";
    out += "      in : " + t.before + "\n";
    out += "      out: " + t.after + "\n";
    out += "      " + std::string(t.changed ? "changed" : "unchanged") + ", " +
           std::to_string(t.nodes_before) + " -> " +
           std::to_string(t.nodes_after) + " node(s)" +
           (t.cache_hit ? ", cached" : "") + "\n";
    for (const std::string& note : t.notes) {
      out += "      note: " + note + "\n";
    }
  }
  return out;
}

AbstractionOutcome abstract_property(PassManager& pm,
                                     const psl::RtlProperty& p) {
  AbstractionOutcome out;
  psl::ExprTable& table = pm.table();

  for (const std::string& v : psl::simple_subset_violations(p.formula)) {
    out.notes.push_back("simple-subset: " + v);
  }

  const psl::ExprId original = table.intern(p.formula);
  bool hit = false;

  // Step 1: negation normal form.
  const psl::ExprId nnf_id = pm.nnf(original, &hit);
  out.passes.push_back(make_trace("nnf", table, original, nnf_id, hit));

  // Sec. III-B: delete subformulas over abstracted signals (Fig. 4).
  const PassManager::SignalAbstraction& sig =
      pm.signal_abstraction(nnf_id, &hit);
  out.classification = sig.classification;
  for (const std::string& rule : sig.rules) {
    out.notes.push_back("signal-abstraction: " + rule);
  }
  out.passes.push_back(make_trace("signal-abstraction", table, nnf_id,
                                  sig.formula, hit, sig.rules));
  if (sig.formula == psl::kNoExpr) {
    out.notes.push_back("property deleted: it only constrained abstracted signals");
    return out;
  }

  // The clock-context guard is a boolean over DUV variables (Def. III.2);
  // abstract it the same way. A fully-deleted guard degrades to plain Tb.
  psl::ClockContext context = p.context;
  std::vector<std::string> context_notes;
  if (context.guard) {
    SignalAbstractionResult guard = abstract_signals(
        to_nnf(context.guard), pm.options().abstracted_signals);
    if (!guard.formula) {
      out.notes.push_back("context guard deleted; falling back to basic context");
      context_notes.push_back("context guard deleted; falling back to basic context");
      context.guard = nullptr;
    } else {
      context.guard = guard.formula;
    }
  }

  // Step 2: push next operators onto literals, then Algorithm III.1.
  const psl::ExprId pushed = pm.push_ahead(sig.formula, &hit);
  out.passes.push_back(
      make_trace("push-ahead", table, sig.formula, pushed, hit));
  const psl::ExprId substituted = pm.next_substitution(pushed, &hit);
  out.passes.push_back(
      make_trace("next-substitution", table, pushed, substituted, hit));

  // Step 3: clock context -> transaction context (Def. III.2).
  psl::TlmProperty tlm;
  tlm.name = p.name;
  tlm.formula = table.expr(substituted);
  tlm.context = map_context(context);
  PassTrace ctx_trace;
  ctx_trace.pass = "context-map";
  ctx_trace.before = psl::to_string(p.context);
  ctx_trace.after = psl::to_string(tlm.context);
  ctx_trace.changed = ctx_trace.before != ctx_trace.after;
  ctx_trace.notes = std::move(context_notes);
  out.passes.push_back(std::move(ctx_trace));
  out.property = std::move(tlm);
  return out;
}

AbstractionOutcome abstract_property(const psl::RtlProperty& p,
                                     const AbstractionOptions& options) {
  PassManager pm(options);
  return abstract_property(pm, p);
}

std::vector<AbstractionOutcome> abstract_suite(
    const std::vector<psl::RtlProperty>& suite, const AbstractionOptions& options) {
  // One shared manager: suites with repeated subformulas (and repeated
  // abstraction calls, e.g. RTL + TLM runs of the same suite) hit the memo.
  PassManager pm(options);
  std::vector<AbstractionOutcome> out;
  out.reserve(suite.size());
  for (const auto& p : suite) out.push_back(abstract_property(pm, p));
  return out;
}

}  // namespace repro::rewrite
