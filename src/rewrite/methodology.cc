#include "rewrite/methodology.h"

#include "psl/simple_subset.h"
#include "rewrite/context_map.h"
#include "rewrite/next_substitution.h"
#include "rewrite/nnf.h"
#include "rewrite/push_ahead.h"

namespace repro::rewrite {

AbstractionOutcome abstract_property(const psl::RtlProperty& p,
                                     const AbstractionOptions& options) {
  AbstractionOutcome out;

  for (const std::string& v : psl::simple_subset_violations(p.formula)) {
    out.notes.push_back("simple-subset: " + v);
  }

  // Step 1: negation normal form.
  psl::ExprPtr formula = to_nnf(p.formula);

  // Sec. III-B: delete subformulas over abstracted signals.
  SignalAbstractionResult sig = abstract_signals(formula, options.abstracted_signals);
  out.classification = sig.classification;
  for (auto& rule : sig.applied_rules) {
    out.notes.push_back("signal-abstraction: " + rule);
  }
  if (!sig.formula) {
    out.notes.push_back("property deleted: it only constrained abstracted signals");
    return out;
  }
  formula = sig.formula;

  // The clock-context guard is a boolean over DUV variables (Def. III.2);
  // abstract it the same way. A fully-deleted guard degrades to plain Tb.
  psl::ClockContext context = p.context;
  if (context.guard) {
    SignalAbstractionResult guard =
        abstract_signals(to_nnf(context.guard), options.abstracted_signals);
    if (!guard.formula) {
      out.notes.push_back("context guard deleted; falling back to basic context");
      context.guard = nullptr;
    } else {
      context.guard = guard.formula;
    }
  }

  // Step 2: push next operators onto literals, then Algorithm III.1.
  formula = push_ahead_next(formula, options.push_mode);
  formula = substitute_next(formula, options.clock_period_ns);

  // Step 3: clock context -> transaction context (Def. III.2).
  psl::TlmProperty tlm;
  tlm.name = p.name;
  tlm.formula = formula;
  tlm.context = map_context(context);
  out.property = std::move(tlm);
  return out;
}

std::vector<AbstractionOutcome> abstract_suite(
    const std::vector<psl::RtlProperty>& suite, const AbstractionOptions& options) {
  std::vector<AbstractionOutcome> out;
  out.reserve(suite.size());
  for (const auto& p : suite) out.push_back(abstract_property(p, options));
  return out;
}

}  // namespace repro::rewrite
