#include "rewrite/nnf.h"

#include <cassert>

namespace repro::rewrite {

using psl::Expr;
using psl::ExprKind;
using psl::ExprPtr;
using psl::and_;
using psl::or_;
using psl::not_;
using psl::next;
using psl::next_eps;
using psl::until;
using psl::release;
using psl::always;
using psl::eventually;

namespace {

ExprPtr nnf_pos(const ExprPtr& e);
ExprPtr nnf_neg(const ExprPtr& e);

// NNF of `e` itself.
ExprPtr nnf_pos(const ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::kConstTrue:
    case ExprKind::kConstFalse:
    case ExprKind::kAtom:
      return e;
    case ExprKind::kNot:
      return nnf_neg(e->lhs);
    case ExprKind::kAnd:
      return and_(nnf_pos(e->lhs), nnf_pos(e->rhs));
    case ExprKind::kOr:
      return or_(nnf_pos(e->lhs), nnf_pos(e->rhs));
    case ExprKind::kImplies:
      return or_(nnf_neg(e->lhs), nnf_pos(e->rhs));
    case ExprKind::kNext:
      return next(e->next_count, nnf_pos(e->lhs));
    case ExprKind::kNextEps:
      return next_eps(e->tau, e->eps, nnf_pos(e->lhs));
    case ExprKind::kUntil:
      return until(nnf_pos(e->lhs), nnf_pos(e->rhs), e->strong);
    case ExprKind::kRelease:
      return release(nnf_pos(e->lhs), nnf_pos(e->rhs));
    case ExprKind::kAlways:
      return always(nnf_pos(e->lhs));
    case ExprKind::kEventually:
      return eventually(nnf_pos(e->lhs));
    case ExprKind::kAbort:
      return psl::abort_(nnf_pos(e->lhs), e->rhs, e->strong);
  }
  assert(false && "unreachable");
  return e;
}

// Negating a comparison atom flips its operator: !(a == b) is a != b, and
// so on. Truthiness atoms keep an explicit negation.
ExprPtr negate_atom(const ExprPtr& e) {
  using psl::CmpOp;
  psl::Atom a = e->atom;
  switch (a.op) {
    case CmpOp::kTruthy:
      return not_(e);
    case CmpOp::kEq: a.op = CmpOp::kNe; break;
    case CmpOp::kNe: a.op = CmpOp::kEq; break;
    case CmpOp::kLt: a.op = CmpOp::kGe; break;
    case CmpOp::kLe: a.op = CmpOp::kGt; break;
    case CmpOp::kGt: a.op = CmpOp::kLe; break;
    case CmpOp::kGe: a.op = CmpOp::kLt; break;
  }
  return psl::atom(std::move(a));
}

// NNF of `!e`.
ExprPtr nnf_neg(const ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::kConstTrue:
      return psl::const_false();
    case ExprKind::kConstFalse:
      return psl::const_true();
    case ExprKind::kAtom:
      return negate_atom(e);
    case ExprKind::kNot:
      return nnf_pos(e->lhs);
    case ExprKind::kAnd:
      return or_(nnf_neg(e->lhs), nnf_neg(e->rhs));
    case ExprKind::kOr:
      return and_(nnf_neg(e->lhs), nnf_neg(e->rhs));
    case ExprKind::kImplies:
      return and_(nnf_pos(e->lhs), nnf_neg(e->rhs));
    case ExprKind::kNext:
      return next(e->next_count, nnf_neg(e->lhs));
    case ExprKind::kNextEps:
      return next_eps(e->tau, e->eps, nnf_neg(e->lhs));
    case ExprKind::kUntil:
      if (e->strong) {
        // !(p until! q) == !p release !q
        return release(nnf_neg(e->lhs), nnf_neg(e->rhs));
      }
      // !(p until q) == !q until! (!p && !q)
      return until(nnf_neg(e->rhs), and_(nnf_neg(e->lhs), nnf_neg(e->rhs)),
                   /*strong=*/true);
    case ExprKind::kRelease:
      // !(p release q) == !p until! !q
      return until(nnf_neg(e->lhs), nnf_neg(e->rhs), /*strong=*/true);
    case ExprKind::kAlways:
      return eventually(nnf_neg(e->lhs));
    case ExprKind::kEventually:
      return always(nnf_neg(e->lhs));
    case ExprKind::kAbort:
      // Reset semantics: negation flips the reset resolution:
      // !(p abort b) == (!p) abort! b and !(p abort! b) == (!p) abort b.
      return psl::abort_(nnf_neg(e->lhs), e->rhs, !e->strong);
  }
  assert(false && "unreachable");
  return e;
}

}  // namespace

ExprPtr to_nnf(const ExprPtr& e) {
  assert(e);
  return nnf_pos(e);
}

bool is_nnf(const ExprPtr& e) {
  if (!e) return true;
  if (e->kind == ExprKind::kImplies) return false;
  if (e->kind == ExprKind::kNot) {
    return e->lhs && e->lhs->kind == ExprKind::kAtom;
  }
  return is_nnf(e->lhs) && is_nnf(e->rhs);
}

}  // namespace repro::rewrite
