#include "rewrite/context_map.h"

namespace repro::rewrite {

psl::TransactionContext map_context(const psl::ClockContext& c) {
  // Every base clock context collapses to Tb; the variable guard, if any,
  // carries over verbatim (Def. III.2).
  return psl::TransactionContext{c.guard};
}

}  // namespace repro::rewrite
