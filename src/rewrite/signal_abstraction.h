// Abstraction of signals (Sec. III-B, Fig. 4).
//
// When the RTL-to-TLM abstraction removes I/O protocol signals, every
// subformula referring to a removed signal becomes unevaluable and is
// deleted; the rules of Fig. 4 define how the deletion (the paper's
// `∅` marker) propagates upward:
//
//   a_s            ->  ∅          next(a_s)      ->  ∅
//   p || ∅         ->  p          ∅ || p         ->  p
//   p && ∅         ->  p          ∅ && p         ->  p
//   p until ∅      ->  p          ∅ until p      ->  ∅
//   p release ∅    ->  ∅          ∅ release p    ->  p
//
// (The published table prints `∅ until p` twice; the second occurrence is
// read as `∅ release p -> p`, the only reading that keeps the table total
// over until/release.)
//
// The result is classified for the human-investigation triage the paper
// describes: deleting an `&&` branch yields a logical consequence of the
// original (safe to check at TLM); deleting an `||` branch or rewriting an
// until/release does not, so a TLM failure needs manual review.
#ifndef REPRO_REWRITE_SIGNAL_ABSTRACTION_H_
#define REPRO_REWRITE_SIGNAL_ABSTRACTION_H_

#include <set>
#include <string>
#include <vector>

#include "psl/ast.h"

namespace repro::rewrite {

enum class AbstractionClass {
  kUnchanged,      // no rule fired: p' == p
  kConsequence,    // p' is a logical consequence of p
  kNeedsReview,    // p' may not follow from p: review TLM failures manually
  kDeleted,        // the whole property depended on abstracted signals
};

struct SignalAbstractionResult {
  // nullptr when the whole formula was deleted.
  psl::ExprPtr formula;
  AbstractionClass classification = AbstractionClass::kUnchanged;
  // One entry per rule application, for diagnostics.
  std::vector<std::string> applied_rules;
};

// Removes from `e` (NNF) every subformula mentioning a signal in
// `abstracted`, per the Fig. 4 rules.
SignalAbstractionResult abstract_signals(
    const psl::ExprPtr& e, const std::set<std::string>& abstracted);

const char* to_string(AbstractionClass c);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_SIGNAL_ABSTRACTION_H_
