#include "rewrite/push_ahead.h"

#include <cassert>

namespace repro::rewrite {

using psl::ExprKind;
using psl::ExprPtr;

namespace {

bool is_fixpoint(ExprKind kind) {
  return kind == ExprKind::kUntil || kind == ExprKind::kRelease ||
         kind == ExprKind::kAlways || kind == ExprKind::kEventually ||
         kind == ExprKind::kAbort;
}

// True when a fixpoint node should stay opaque under an outer next: its
// operands are purely boolean, so anchoring the whole fixpoint at the
// shifted instant is equivalent to shifting each operand.
bool opaque_candidate(const ExprPtr& e) {
  if (!is_fixpoint(e->kind)) return false;
  if (!psl::is_boolean(e->lhs)) return false;
  return !e->rhs || psl::is_boolean(e->rhs);
}

ExprPtr push(const ExprPtr& e, PushMode mode);

// Applies next[n] to an already-pushed expression, distributing it inward.
ExprPtr apply_next(uint32_t n, const ExprPtr& e, PushMode mode) {
  assert(n >= 1);
  if (mode == PushMode::kOpaqueFixpoints && opaque_candidate(e)) {
    return psl::next(n, e);
  }
  switch (e->kind) {
    case ExprKind::kConstTrue:
    case ExprKind::kConstFalse:
      // Constants are time-invariant: shifting the evaluation point does not
      // change their value.
      return e;
    case ExprKind::kAtom:
    case ExprKind::kNot:
      return psl::next(n, e);
    case ExprKind::kNext:
      // Collapse chains: next[n](next[m](p)) == next[n+m](p).
      return apply_next(n + e->next_count, e->lhs, mode);
    case ExprKind::kAnd:
      return psl::and_(apply_next(n, e->lhs, mode), apply_next(n, e->rhs, mode));
    case ExprKind::kOr:
      return psl::or_(apply_next(n, e->lhs, mode), apply_next(n, e->rhs, mode));
    case ExprKind::kUntil:
      return psl::until(apply_next(n, e->lhs, mode), apply_next(n, e->rhs, mode),
                        e->strong);
    case ExprKind::kRelease:
      return psl::release(apply_next(n, e->lhs, mode),
                          apply_next(n, e->rhs, mode));
    case ExprKind::kAlways:
      return psl::always(apply_next(n, e->lhs, mode));
    case ExprKind::kEventually:
      return psl::eventually(apply_next(n, e->lhs, mode));
    case ExprKind::kAbort:
      // The abort condition is boolean and shifts with the operand.
      return psl::abort_(apply_next(n, e->lhs, mode), e->rhs, e->strong);
    case ExprKind::kNextEps:
    case ExprKind::kImplies:
      break;
  }
  assert(false && "push_ahead_next requires NNF input without next_e");
  return e;
}

ExprPtr push(const ExprPtr& e, PushMode mode) {
  switch (e->kind) {
    case ExprKind::kConstTrue:
    case ExprKind::kConstFalse:
    case ExprKind::kAtom:
    case ExprKind::kNot:
      return e;
    case ExprKind::kNext:
      return apply_next(e->next_count, push(e->lhs, mode), mode);
    case ExprKind::kAnd:
      return psl::and_(push(e->lhs, mode), push(e->rhs, mode));
    case ExprKind::kOr:
      return psl::or_(push(e->lhs, mode), push(e->rhs, mode));
    case ExprKind::kUntil:
      return psl::until(push(e->lhs, mode), push(e->rhs, mode), e->strong);
    case ExprKind::kRelease:
      return psl::release(push(e->lhs, mode), push(e->rhs, mode));
    case ExprKind::kAlways:
      return psl::always(push(e->lhs, mode));
    case ExprKind::kEventually:
      return psl::eventually(push(e->lhs, mode));
    case ExprKind::kAbort:
      return psl::abort_(push(e->lhs, mode), e->rhs, e->strong);
    case ExprKind::kNextEps:
    case ExprKind::kImplies:
      break;
  }
  assert(false && "push_ahead_next requires NNF input without next_e");
  return e;
}

}  // namespace

ExprPtr push_ahead_next(const ExprPtr& e, PushMode mode) {
  assert(e);
  return push(e, mode);
}

bool is_pushed(const ExprPtr& e) {
  if (!e) return true;
  if (e->kind == ExprKind::kNext) {
    const ExprPtr& operand = e->lhs;
    if (psl::is_literal(operand) || operand->kind == ExprKind::kConstTrue ||
        operand->kind == ExprKind::kConstFalse) {
      return true;
    }
    return opaque_candidate(operand);
  }
  return is_pushed(e->lhs) && is_pushed(e->rhs);
}

}  // namespace repro::rewrite
