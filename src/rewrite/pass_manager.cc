#include "rewrite/pass_manager.h"

#include "rewrite/next_substitution.h"
#include "rewrite/nnf.h"
#include "rewrite/push_ahead.h"
#include "rewrite/signal_abstraction.h"

namespace repro::rewrite {

psl::ExprId PassManager::nnf(psl::ExprId f, bool* cache_hit) {
  if (auto it = nnf_memo_.find(f); it != nnf_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  const psl::ExprId out = table_.intern(to_nnf(table_.expr(f)));
  nnf_memo_.emplace(f, out);
  return out;
}

const PassManager::SignalAbstraction& PassManager::signal_abstraction(
    psl::ExprId f, bool* cache_hit) {
  if (auto it = sig_memo_.find(f); it != sig_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  SignalAbstractionResult result =
      abstract_signals(table_.expr(f), options_.abstracted_signals);
  SignalAbstraction entry;
  entry.formula = table_.intern(result.formula);  // kNoExpr when deleted
  entry.classification = result.classification;
  entry.rules = std::move(result.applied_rules);
  return sig_memo_.emplace(f, std::move(entry)).first->second;
}

psl::ExprId PassManager::push_ahead(psl::ExprId f, bool* cache_hit) {
  if (auto it = push_memo_.find(f); it != push_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  const psl::ExprId out =
      table_.intern(push_ahead_next(table_.expr(f), options_.push_mode));
  push_memo_.emplace(f, out);
  return out;
}

psl::ExprId PassManager::next_substitution(psl::ExprId f, bool* cache_hit) {
  if (auto it = subst_memo_.find(f); it != subst_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  const psl::ExprId out =
      table_.intern(substitute_next(table_.expr(f), options_.clock_period_ns));
  subst_memo_.emplace(f, out);
  return out;
}

}  // namespace repro::rewrite
