#include "rewrite/pass_manager.h"

#include <algorithm>

#include "rewrite/next_substitution.h"
#include "rewrite/nnf.h"
#include "rewrite/push_ahead.h"
#include "rewrite/signal_abstraction.h"

namespace repro::rewrite {

void SpecializationFacts::add(psl::ExprId id, bool value) {
  const auto pos = std::lower_bound(
      known.begin(), known.end(), id,
      [](const auto& entry, psl::ExprId key) { return entry.first < key; });
  if (pos != known.end() && pos->first == id) {
    pos->second = value;
    return;
  }
  known.insert(pos, {id, value});
}

const bool* SpecializationFacts::lookup(psl::ExprId id) const {
  const auto pos = std::lower_bound(
      known.begin(), known.end(), id,
      [](const auto& entry, psl::ExprId key) { return entry.first < key; });
  if (pos != known.end() && pos->first == id) return &pos->second;
  return nullptr;
}

psl::ExprId PassManager::nnf(psl::ExprId f, bool* cache_hit) {
  if (auto it = nnf_memo_.find(f); it != nnf_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  const psl::ExprId out = table_.intern(to_nnf(table_.expr(f)));
  nnf_memo_.emplace(f, out);
  return out;
}

const PassManager::SignalAbstraction& PassManager::signal_abstraction(
    psl::ExprId f, bool* cache_hit) {
  if (auto it = sig_memo_.find(f); it != sig_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  SignalAbstractionResult result =
      abstract_signals(table_.expr(f), options_.abstracted_signals);
  SignalAbstraction entry;
  entry.formula = table_.intern(result.formula);  // kNoExpr when deleted
  entry.classification = result.classification;
  entry.rules = std::move(result.applied_rules);
  return sig_memo_.emplace(f, std::move(entry)).first->second;
}

psl::ExprId PassManager::push_ahead(psl::ExprId f, bool* cache_hit) {
  if (auto it = push_memo_.find(f); it != push_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  const psl::ExprId out =
      table_.intern(push_ahead_next(table_.expr(f), options_.push_mode));
  push_memo_.emplace(f, out);
  return out;
}

namespace {

bool is_const(const psl::ExprTable& t, psl::ExprId id, bool value) {
  const psl::ExprKind k = t.node(id).kind;
  return value ? k == psl::ExprKind::kConstTrue : k == psl::ExprKind::kConstFalse;
}

// Rewrites the anchor-time positions of a body: known subformulas become
// constants, and the boolean connectives above them re-simplify. Every fold
// used here (!true, true&&x, x||false, false->x, ...) is an exact semantic
// identity at a single evaluation position, so no verdict can move; the
// recursion deliberately stops at atoms and temporal operators, whose
// operands are evaluated at later events where the facts need not hold.
struct Specializer {
  psl::ExprTable& t;
  const SpecializationFacts& facts;

  psl::ExprId anchor(psl::ExprId f) {
    if (const bool* known = facts.lookup(f)) {
      return *known ? t.mk_true() : t.mk_false();
    }
    const psl::ExprTable::Node n = t.node(f);  // copy: mk_* may reallocate
    switch (n.kind) {
      case psl::ExprKind::kNot: {
        const psl::ExprId a = anchor(n.lhs);
        if (is_const(t, a, true)) return t.mk_false();
        if (is_const(t, a, false)) return t.mk_true();
        return a == n.lhs ? f : t.mk_not(a);
      }
      case psl::ExprKind::kAnd: {
        const psl::ExprId a = anchor(n.lhs);
        const psl::ExprId b = anchor(n.rhs);
        if (is_const(t, a, false) || is_const(t, b, false)) return t.mk_false();
        if (is_const(t, a, true)) return b;
        if (is_const(t, b, true)) return a;
        return a == n.lhs && b == n.rhs ? f : t.mk_and(a, b);
      }
      case psl::ExprKind::kOr: {
        const psl::ExprId a = anchor(n.lhs);
        const psl::ExprId b = anchor(n.rhs);
        if (is_const(t, a, true) || is_const(t, b, true)) return t.mk_true();
        if (is_const(t, a, false)) return b;
        if (is_const(t, b, false)) return a;
        return a == n.lhs && b == n.rhs ? f : t.mk_or(a, b);
      }
      case psl::ExprKind::kImplies: {
        const psl::ExprId a = anchor(n.lhs);
        const psl::ExprId b = anchor(n.rhs);
        if (is_const(t, a, false) || is_const(t, b, true)) return t.mk_true();
        if (is_const(t, a, true)) return b;
        return a == n.lhs && b == n.rhs ? f : t.mk_implies(a, b);
      }
      default:
        // Atom or temporal operator: anchor-time facts do not reach inside.
        return f;
    }
  }
};

}  // namespace

psl::ExprId PassManager::specialize(psl::ExprId f,
                                    const SpecializationFacts& facts,
                                    bool* cache_hit) {
  if (facts.empty()) {
    if (cache_hit != nullptr) *cache_hit = false;
    return f;  // identity; keep the memo clean
  }
  const auto key = std::make_pair(f, facts.known);
  if (auto it = spec_memo_.find(key); it != spec_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  // The checker strips the whole leading always chain and re-activates the
  // body per guarded event, so each always level keeps anchor semantics.
  size_t always_depth = 0;
  psl::ExprId body = f;
  while (table_.node(body).kind == psl::ExprKind::kAlways) {
    ++always_depth;
    body = table_.node(body).lhs;
  }
  Specializer spec{table_, facts};
  psl::ExprId out = spec.anchor(body);
  for (size_t i = 0; i < always_depth; ++i) out = table_.mk_always(out);
  spec_memo_.emplace(key, out);
  return out;
}

psl::ExprId PassManager::next_substitution(psl::ExprId f, bool* cache_hit) {
  if (auto it = subst_memo_.find(f); it != subst_memo_.end()) {
    ++cache_stats_.hits;
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  ++cache_stats_.misses;
  if (cache_hit != nullptr) *cache_hit = false;
  const psl::ExprId out =
      table_.intern(substitute_next(table_.expr(f), options_.clock_period_ns));
  subst_memo_.emplace(f, out);
  return out;
}

}  // namespace repro::rewrite
