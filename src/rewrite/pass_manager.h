// Pass manager for the Methodology III.1 rewrite pipeline.
//
// Owns a hash-consed ExprTable (psl/intern.h) and exposes the pipeline
// stages — NNF, signal abstraction (Fig. 4), push_ahead_next, Algorithm
// III.1 next substitution — as explicit passes over interned ExprIds, each
// memoized per whole-formula id: abstracting the same (sub)suite twice, or
// two properties sharing a formula, reruns no rewrite. The memo key is the
// *whole* formula handed to the pass (next substitution's tau numbering is a
// global left-to-right scan, so finer subtree-level reuse would be unsound
// there; whole-formula granularity is correct for every pass).
//
// The passes themselves stay in their dedicated modules (nnf.h,
// signal_abstraction.h, push_ahead.h, next_substitution.h); the manager
// adds interning, memoization and trace recording on top. abstract_property
// (methodology.h) drives the full pipeline through a manager and records a
// PassTrace per stage.
#ifndef REPRO_REWRITE_PASS_MANAGER_H_
#define REPRO_REWRITE_PASS_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "psl/intern.h"
#include "rewrite/methodology.h"

namespace repro::rewrite {

// Truth values a caller proved to hold at every instance anchor of a
// property (typically atoms entailed by the activation guard: the guard
// gates activation, so it holds at each anchor event). The specialization
// pass folds these ONLY at anchor-time positions — the boolean spine of the
// always-stripped body — because active instances keep stepping on events
// where the guard is false, so the facts say nothing about operands of
// temporal operators.
struct SpecializationFacts {
  // (subformula id, known truth value), sorted by id, deduplicated.
  std::vector<std::pair<psl::ExprId, bool>> known;

  bool empty() const { return known.empty(); }
  void add(psl::ExprId id, bool value);
  const bool* lookup(psl::ExprId id) const;
};

class PassManager {
 public:
  explicit PassManager(AbstractionOptions options)
      : options_(std::move(options)) {}

  const AbstractionOptions& options() const { return options_; }
  psl::ExprTable& table() { return table_; }
  const psl::ExprTable& table() const { return table_; }

  struct CacheStats {
    uint64_t hits = 0;    // pass invocations answered by the memo
    uint64_t misses = 0;  // pass invocations that ran the rewrite
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  // Memoized result of signal abstraction: the rewritten formula (kNoExpr
  // when the property was deleted) plus the Fig. 4 bookkeeping.
  struct SignalAbstraction {
    psl::ExprId formula = psl::kNoExpr;
    AbstractionClass classification = AbstractionClass::kUnchanged;
    std::vector<std::string> rules;
  };

  // The pipeline stages. `cache_hit`, when non-null, reports whether the
  // call was served from the memo.
  psl::ExprId nnf(psl::ExprId f, bool* cache_hit = nullptr);
  const SignalAbstraction& signal_abstraction(psl::ExprId f,
                                              bool* cache_hit = nullptr);
  psl::ExprId push_ahead(psl::ExprId f, bool* cache_hit = nullptr);
  psl::ExprId next_substitution(psl::ExprId f, bool* cache_hit = nullptr);

  // Specialization stage: constant-folds the `facts` truth values into the
  // anchor-time positions of `f` (descending the top-level always chain and
  // then boolean connectives only) and re-simplifies the boolean layer
  // (!true, true&&x, false||x, ...). Verdict-preserving for checkers whose
  // activation guard entails the facts; activity counters (real/vacuous
  // split, node_visits) may shift with the slimmer formula. Memoized per
  // (formula, facts) pair like every other pass.
  psl::ExprId specialize(psl::ExprId f, const SpecializationFacts& facts,
                         bool* cache_hit = nullptr);

 private:
  AbstractionOptions options_;
  psl::ExprTable table_;
  std::unordered_map<psl::ExprId, psl::ExprId> nnf_memo_;
  std::unordered_map<psl::ExprId, SignalAbstraction> sig_memo_;
  std::unordered_map<psl::ExprId, psl::ExprId> push_memo_;
  std::unordered_map<psl::ExprId, psl::ExprId> subst_memo_;
  // Ordered map: the key embeds the facts vector, which has no cheap hash.
  std::map<std::pair<psl::ExprId, std::vector<std::pair<psl::ExprId, bool>>>,
           psl::ExprId>
      spec_memo_;
  CacheStats cache_stats_;
};

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_PASS_MANAGER_H_
