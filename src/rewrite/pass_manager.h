// Pass manager for the Methodology III.1 rewrite pipeline.
//
// Owns a hash-consed ExprTable (psl/intern.h) and exposes the pipeline
// stages — NNF, signal abstraction (Fig. 4), push_ahead_next, Algorithm
// III.1 next substitution — as explicit passes over interned ExprIds, each
// memoized per whole-formula id: abstracting the same (sub)suite twice, or
// two properties sharing a formula, reruns no rewrite. The memo key is the
// *whole* formula handed to the pass (next substitution's tau numbering is a
// global left-to-right scan, so finer subtree-level reuse would be unsound
// there; whole-formula granularity is correct for every pass).
//
// The passes themselves stay in their dedicated modules (nnf.h,
// signal_abstraction.h, push_ahead.h, next_substitution.h); the manager
// adds interning, memoization and trace recording on top. abstract_property
// (methodology.h) drives the full pipeline through a manager and records a
// PassTrace per stage.
#ifndef REPRO_REWRITE_PASS_MANAGER_H_
#define REPRO_REWRITE_PASS_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "psl/intern.h"
#include "rewrite/methodology.h"

namespace repro::rewrite {

class PassManager {
 public:
  explicit PassManager(AbstractionOptions options)
      : options_(std::move(options)) {}

  const AbstractionOptions& options() const { return options_; }
  psl::ExprTable& table() { return table_; }
  const psl::ExprTable& table() const { return table_; }

  struct CacheStats {
    uint64_t hits = 0;    // pass invocations answered by the memo
    uint64_t misses = 0;  // pass invocations that ran the rewrite
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  // Memoized result of signal abstraction: the rewritten formula (kNoExpr
  // when the property was deleted) plus the Fig. 4 bookkeeping.
  struct SignalAbstraction {
    psl::ExprId formula = psl::kNoExpr;
    AbstractionClass classification = AbstractionClass::kUnchanged;
    std::vector<std::string> rules;
  };

  // The pipeline stages. `cache_hit`, when non-null, reports whether the
  // call was served from the memo.
  psl::ExprId nnf(psl::ExprId f, bool* cache_hit = nullptr);
  const SignalAbstraction& signal_abstraction(psl::ExprId f,
                                              bool* cache_hit = nullptr);
  psl::ExprId push_ahead(psl::ExprId f, bool* cache_hit = nullptr);
  psl::ExprId next_substitution(psl::ExprId f, bool* cache_hit = nullptr);

 private:
  AbstractionOptions options_;
  psl::ExprTable table_;
  std::unordered_map<psl::ExprId, psl::ExprId> nnf_memo_;
  std::unordered_map<psl::ExprId, SignalAbstraction> sig_memo_;
  std::unordered_map<psl::ExprId, psl::ExprId> push_memo_;
  std::unordered_map<psl::ExprId, psl::ExprId> subst_memo_;
  CacheStats cache_stats_;
};

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_PASS_MANAGER_H_
