// Methodology III.1: the full RTL-to-TLM property abstraction pipeline.
//
//   parse -> NNF -> signal abstraction (Fig. 4) -> push_ahead_next ->
//   Algorithm III.1 (next -> next_eps) -> context mapping (Def. III.2)
//
// Signal abstraction runs before the time abstraction so that next chains
// over removed signals disappear before tau positions are assigned; this is
// what produces q3 = always(!ds || next_e[1,170](rdy)) from p3 in Fig. 3.
#ifndef REPRO_REWRITE_METHODOLOGY_H_
#define REPRO_REWRITE_METHODOLOGY_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "psl/ast.h"
#include "rewrite/push_ahead.h"
#include "rewrite/signal_abstraction.h"

namespace repro::rewrite {

struct AbstractionOptions {
  // Clock period c of the RTL DUV, in nanoseconds (Algorithm III.1).
  psl::TimeNs clock_period_ns = 10;
  // I/O signals removed by the RTL-to-TLM abstraction (Sec. III-B).
  std::set<std::string> abstracted_signals;
  // How next distributes over until/release (see push_ahead.h). The paper
  // mode reproduces Fig. 3 verbatim; the opaque mode is sound on sparse
  // TLM-AT transaction streams and is the default.
  PushMode push_mode = PushMode::kOpaqueFixpoints;
};

struct AbstractionOutcome {
  // Empty when the property was deleted by signal abstraction.
  std::optional<psl::TlmProperty> property;
  AbstractionClass classification = AbstractionClass::kUnchanged;
  // Rule applications and simple-subset diagnostics, for reporting.
  std::vector<std::string> notes;

  bool deleted() const { return !property.has_value(); }
};

// Abstracts a single RTL property into a TLM property.
AbstractionOutcome abstract_property(const psl::RtlProperty& p,
                                     const AbstractionOptions& options);

// Abstracts a whole suite, preserving order; deleted properties produce
// outcomes with deleted() == true so callers can report them.
std::vector<AbstractionOutcome> abstract_suite(
    const std::vector<psl::RtlProperty>& suite, const AbstractionOptions& options);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_METHODOLOGY_H_
