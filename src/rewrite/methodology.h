// Methodology III.1: the full RTL-to-TLM property abstraction pipeline.
//
//   parse -> NNF -> signal abstraction (Fig. 4) -> push_ahead_next ->
//   Algorithm III.1 (next -> next_eps) -> context mapping (Def. III.2)
//
// Signal abstraction runs before the time abstraction so that next chains
// over removed signals disappear before tau positions are assigned; this is
// what produces q3 = always(!ds || next_e[1,170](rdy)) from p3 in Fig. 3.
#ifndef REPRO_REWRITE_METHODOLOGY_H_
#define REPRO_REWRITE_METHODOLOGY_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "psl/ast.h"
#include "rewrite/push_ahead.h"
#include "rewrite/signal_abstraction.h"

namespace repro::rewrite {

struct AbstractionOptions {
  // Clock period c of the RTL DUV, in nanoseconds (Algorithm III.1).
  psl::TimeNs clock_period_ns = 10;
  // I/O signals removed by the RTL-to-TLM abstraction (Sec. III-B).
  std::set<std::string> abstracted_signals;
  // How next distributes over until/release (see push_ahead.h). The paper
  // mode reproduces Fig. 3 verbatim; the opaque mode is sound on sparse
  // TLM-AT transaction streams and is the default.
  PushMode push_mode = PushMode::kOpaqueFixpoints;
};

// One recorded pipeline stage applied to one property: what went in, what
// came out, and whether the pass manager answered from its memo table.
struct PassTrace {
  std::string pass;        // "nnf", "signal-abstraction", ...
  std::string before;      // printed input formula (or context)
  std::string after;       // printed output; "(deleted)" when erased
  size_t nodes_before = 0;
  size_t nodes_after = 0;
  bool changed = false;
  bool cache_hit = false;  // served from the per-pass memo over ExprId
  std::vector<std::string> notes;  // per-pass rule applications
};

// Human-readable rendering of a recorded pipeline (the --dump-passes view).
std::string format_passes(const std::vector<PassTrace>& passes);

struct AbstractionOutcome {
  // Empty when the property was deleted by signal abstraction.
  std::optional<psl::TlmProperty> property;
  AbstractionClass classification = AbstractionClass::kUnchanged;
  // Rule applications and simple-subset diagnostics, for reporting.
  std::vector<std::string> notes;
  // One entry per pipeline stage, in application order.
  std::vector<PassTrace> passes;

  bool deleted() const { return !property.has_value(); }
};

class PassManager;

// Abstracts a single RTL property into a TLM property. Builds a throwaway
// PassManager; use the overload below to share one (and its memo tables)
// across properties.
AbstractionOutcome abstract_property(const psl::RtlProperty& p,
                                     const AbstractionOptions& options);

// Same pipeline through a caller-owned PassManager (pass_manager.h): repeated
// formulas and shared subtrees hit the per-pass memo tables.
AbstractionOutcome abstract_property(PassManager& pm, const psl::RtlProperty& p);

// Abstracts a whole suite, preserving order; deleted properties produce
// outcomes with deleted() == true so callers can report them. The whole
// suite shares one PassManager.
std::vector<AbstractionOutcome> abstract_suite(
    const std::vector<psl::RtlProperty>& suite, const AbstractionOptions& options);

}  // namespace repro::rewrite

#endif  // REPRO_REWRITE_METHODOLOGY_H_
