#include "rewrite/signal_abstraction.h"

#include <algorithm>
#include <cassert>

namespace repro::rewrite {

using psl::ExprKind;
using psl::ExprPtr;

namespace {

struct Walker {
  const std::set<std::string>& abstracted;
  std::vector<std::string>* log;
  // Worst classification produced by an absorption rule so far.
  AbstractionClass worst = AbstractionClass::kUnchanged;

  void raise(AbstractionClass c) { worst = std::max(worst, c); }

  void note(const std::string& rule) { log->push_back(rule); }

  bool atom_is_abstracted(const psl::Atom& a) const {
    if (abstracted.count(a.lhs)) return true;
    return a.rhs_is_signal && abstracted.count(a.rhs_signal);
  }

  // Returns nullptr to represent the deleted subformula (Fig. 4's ∅).
  ExprPtr walk(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kConstTrue:
      case ExprKind::kConstFalse:
        return e;
      case ExprKind::kAtom:
        if (atom_is_abstracted(e->atom)) {
          note("a_s -> deleted: " + psl::to_string(e));
          return nullptr;
        }
        return e;
      case ExprKind::kNot: {
        // NNF input: operand is an atom.
        ExprPtr inner = walk(e->lhs);
        if (!inner) return nullptr;  // !a_s -> deleted
        return inner == e->lhs ? e : psl::not_(inner);
      }
      case ExprKind::kNext: {
        ExprPtr inner = walk(e->lhs);
        if (!inner) {
          note("next(a_s) -> deleted");
          return nullptr;
        }
        return inner == e->lhs ? e : psl::next(e->next_count, inner);
      }
      case ExprKind::kNextEps: {
        ExprPtr inner = walk(e->lhs);
        if (!inner) {
          note("next_e(a_s) -> deleted");
          return nullptr;
        }
        return inner == e->lhs ? e : psl::next_eps(e->tau, e->eps, inner);
      }
      case ExprKind::kAnd: {
        ExprPtr lhs = walk(e->lhs);
        ExprPtr rhs = walk(e->rhs);
        if (lhs && rhs) {
          return (lhs == e->lhs && rhs == e->rhs) ? e : psl::and_(lhs, rhs);
        }
        if (!lhs && !rhs) return nullptr;
        // p && deleted -> p: dropping a conjunct weakens the property, so the
        // result is a logical consequence of the original.
        note("p && deleted -> p");
        raise(AbstractionClass::kConsequence);
        return lhs ? lhs : rhs;
      }
      case ExprKind::kOr: {
        ExprPtr lhs = walk(e->lhs);
        ExprPtr rhs = walk(e->rhs);
        if (lhs && rhs) {
          return (lhs == e->lhs && rhs == e->rhs) ? e : psl::or_(lhs, rhs);
        }
        if (!lhs && !rhs) return nullptr;
        // p || deleted -> p: dropping a disjunct strengthens the property;
        // a TLM failure of the result needs human review (Sec. III-B).
        note("p || deleted -> p");
        raise(AbstractionClass::kNeedsReview);
        return lhs ? lhs : rhs;
      }
      case ExprKind::kUntil: {
        ExprPtr lhs = walk(e->lhs);
        ExprPtr rhs = walk(e->rhs);
        if (lhs && rhs) {
          return (lhs == e->lhs && rhs == e->rhs)
                     ? e
                     : psl::until(lhs, rhs, e->strong);
        }
        if (lhs && !rhs) {
          // p until deleted -> p: the terminating event is no longer
          // observable; checking p at the current instant only is neither
          // stronger nor weaker in general.
          note("p until deleted -> p");
          raise(AbstractionClass::kNeedsReview);
          return lhs;
        }
        // deleted until p -> deleted (both-deleted collapses the same way).
        note("deleted until p -> deleted");
        return nullptr;
      }
      case ExprKind::kRelease: {
        ExprPtr lhs = walk(e->lhs);
        ExprPtr rhs = walk(e->rhs);
        if (lhs && rhs) {
          return (lhs == e->lhs && rhs == e->rhs) ? e : psl::release(lhs, rhs);
        }
        if (!rhs) {
          // p release deleted -> deleted: the maintained condition is gone,
          // nothing is left to check.
          note("p release deleted -> deleted");
          return nullptr;
        }
        // deleted release p -> p: p release q entails q at the current
        // instant, so the result is a logical consequence.
        note("deleted release p -> p");
        raise(AbstractionClass::kConsequence);
        return rhs;
      }
      case ExprKind::kAlways: {
        ExprPtr inner = walk(e->lhs);
        if (!inner) {
          note("always(deleted) -> deleted");
          return nullptr;
        }
        return inner == e->lhs ? e : psl::always(inner);
      }
      case ExprKind::kEventually: {
        ExprPtr inner = walk(e->lhs);
        if (!inner) {
          note("eventually!(deleted) -> deleted");
          return nullptr;
        }
        return inner == e->lhs ? e : psl::eventually(inner);
      }
      case ExprKind::kAbort: {
        ExprPtr lhs = walk(e->lhs);
        ExprPtr rhs = walk(e->rhs);
        if (!lhs) {
          // deleted abort b -> deleted: nothing left to protect.
          note("deleted abort b -> deleted");
          return nullptr;
        }
        if (!rhs) {
          // p abort deleted -> p: losing the reset condition strengthens the
          // property; a TLM failure needs review.
          note("p abort deleted -> p");
          raise(AbstractionClass::kNeedsReview);
          return lhs;
        }
        return (lhs == e->lhs && rhs == e->rhs) ? e
                                                : psl::abort_(lhs, rhs, e->strong);
      }
      case ExprKind::kImplies:
        break;  // NNF input has no implications
    }
    assert(false && "abstract_signals requires NNF input");
    return e;
  }
};

}  // namespace

SignalAbstractionResult abstract_signals(const ExprPtr& e,
                                         const std::set<std::string>& abstracted) {
  assert(e);
  SignalAbstractionResult result;
  Walker walker{abstracted, &result.applied_rules};
  result.formula = walker.walk(e);
  if (!result.formula) {
    result.classification = AbstractionClass::kDeleted;
  } else if (result.formula == e) {
    result.classification = AbstractionClass::kUnchanged;
  } else {
    result.classification = std::max(walker.worst, AbstractionClass::kConsequence);
  }
  return result;
}

const char* to_string(AbstractionClass c) {
  switch (c) {
    case AbstractionClass::kUnchanged: return "unchanged";
    case AbstractionClass::kConsequence: return "consequence";
    case AbstractionClass::kNeedsReview: return "needs-review";
    case AbstractionClass::kDeleted: return "deleted";
  }
  return "?";
}

}  // namespace repro::rewrite
