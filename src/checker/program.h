// Compiled checker programs: the flat, allocation-light form of one
// property's obligation evaluation (the fast path replacing the
// virtual-dispatch obligation tree of instance.h).
//
// Program::compile flattens a formula into a dense, topologically ordered
// node table (children precede parents; the root is the last node), one
// opcode per node. The program is immutable and shared: every checker
// instance of the property — across all wrapper pools and all evaluation
// engine shards — evaluates against the same table.
//
// Runtime state lives entirely in ProgramState: one flat Slot per program
// node (verdict cache + per-opcode scratch: skip counter, deadline, armed
// bits), so reset() is a memset-style fill. The four multi-instantiating
// operators (until/release spawn a (p, q) pair per position; always /
// eventually! spawn a child per event) keep per-activation sub-frames, each
// a flat slot vector over the operand's contiguous subtree range; retired
// sub-frames are recycled through per-shape free lists, so steady-state
// stepping allocates nothing.
//
// Semantics are identical, event for event, to the detail::Node interpreter;
// the ir test suite proves parity against both the interpreter and
// reference_eval, and the backend-equivalence suite proves byte-identical
// JSON reports on the example designs.
#ifndef REPRO_CHECKER_PROGRAM_H_
#define REPRO_CHECKER_PROGRAM_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "checker/trace.h"
#include "psl/ast.h"

namespace repro::psl {
class ExprTable;
}

namespace repro::checker {

class Program {
 public:
  // Opcode = the expression kind; the compiled form keeps the operator
  // algebra and replaces the tree walk, not the semantics.
  using Opcode = psl::ExprKind;

  static constexpr uint32_t kNoNode = ~uint32_t{0};

  struct ProgNode {
    Opcode op = Opcode::kConstTrue;
    bool strong = false;       // until! / eventually! / abort!
    uint32_t lhs = kNoNode;    // child indices, always < own index
    uint32_t rhs = kNoNode;
    uint32_t subtree_lo = 0;   // this subtree occupies [subtree_lo, index]
    uint32_t next_count = 1;   // kNext
    psl::TimeNs eps = 0;       // kNextEps
    uint32_t atom = 0;         // index into atoms(), kAtom only
    // True when the subtree is purely boolean (no temporal operator): its
    // verdict is decided by its anchor event alone, so the evaluator can
    // compute it directly without per-node slot state or spawned frames.
    bool pure_bool = false;
  };

  // Compiles `formula` (shared subtrees are expanded: every occurrence has
  // its own runtime state).
  static std::shared_ptr<const Program> compile(const psl::ExprPtr& formula);
  // Same, from an interned id.
  static std::shared_ptr<const Program> compile(const psl::ExprTable& table,
                                                uint32_t id);

  const std::vector<ProgNode>& nodes() const { return nodes_; }
  const std::vector<psl::Atom>& atoms() const { return atoms_; }
  uint32_t root() const { return static_cast<uint32_t>(nodes_.size()) - 1; }
  size_t size() const { return nodes_.size(); }
  // Multi-instantiating (until/release/always/eventually) nodes.
  size_t dynamic_count() const { return dyn_nodes_.size(); }

  // Number of dynamic nodes with index < n (prefix count); the kid index of
  // a dynamic node inside a frame based at b is dyn_before(n) - dyn_before(b).
  uint32_t dyn_before(uint32_t n) const { return dyn_prefix_[n]; }
  // Node index of the dynamic node with the given ordinal.
  uint32_t dyn_node(uint32_t ordinal) const { return dyn_nodes_[ordinal]; }

  // Indices of every node inside an antecedent/guard subtree: for an
  // implication-shaped body (`a -> c`, or its NNF image `!a || c` with a
  // boolean disjunct guarding a temporal one) these are the nodes of the
  // boolean guard side, walked through nested guards on the consequent.
  // Empty when the body has no guard shape — every pass is real evidence.
  // Dual of psl-level derive_antecedent(); used for vacuity telemetry and
  // annotated in dump().
  const std::vector<uint32_t>& antecedent_nodes() const {
    return antecedent_nodes_;
  }

  // Human-readable program listing (one line per node, root last).
  void dump(std::ostream& os) const;

 private:
  friend class ProgramState;

  uint32_t emit(const psl::ExprPtr& e);
  void finalize();

  std::vector<ProgNode> nodes_;
  std::vector<psl::Atom> atoms_;
  std::vector<uint32_t> dyn_prefix_;  // size() + 1 entries
  std::vector<uint32_t> dyn_nodes_;
  std::vector<uint32_t> antecedent_nodes_;
};

// The boolean antecedent/guard of an implication-shaped body, or nullptr
// when the body has no such shape. Recognized shapes (NNF removes kImplies,
// so abstracted TLM bodies arrive as disjunctions):
//   a -> c          (boolean a)            guard a
//   !a || c, c || !a (boolean one side,
//                     temporal other)      guard = negation of the boolean
//                                          disjunct (the disjunct *failing*
//                                          is what forces c to be checked)
// Nested guards on the consequent conjoin: a -> (b -> c) yields a && b.
// The walk stops at the first temporal operator — guards buried under
// next/until are evaluated at later events and are out of scope (their
// passes count as real). A hold whose guard evaluated false at the anchor
// proves nothing (vacuous pass); see DESIGN.md §13.
psl::ExprPtr derive_antecedent(const psl::ExprPtr& body);

// Flat runtime state of one checker instance over a shared Program.
class ProgramState {
 public:
  explicit ProgramState(std::shared_ptr<const Program> program);

  Verdict step(const Event& ev);
  Verdict finish();
  bool collect_deadlines(std::vector<psl::TimeNs>& out) const;
  void reset();

  const Program& program() const { return *program_; }

  // One slot per program node. verdict encodes kPending as 0 so a fresh
  // frame is all-zeroes.
  struct Slot {
    uint8_t verdict = 0;  // 0 pending, 1 true, 2 false
    uint8_t flags = 0;    // bit 0: armed / anchored; bit 1: child armed
    uint32_t count = 0;   // kNext events skipped
    psl::TimeNs target = 0;  // kNextEps required evaluation instant
  };

  // A sub-instance: flat slots over one contiguous subtree range plus the
  // spawned sub-frames of any dynamic nodes inside that range. `verdict`
  // caches the sub-instance's resolved root verdict (the p_v/q_v of a
  // fixpoint position).
  struct Frame {
    uint8_t verdict = 0;
    std::vector<Slot> slots;
    std::vector<std::vector<Frame>> kids;
  };

 private:
  friend class ProgramEvaluator;

  std::shared_ptr<const Program> program_;
  Frame root_;
  // Recycled frames, keyed by shape: ordinal * 2 + side (side 1 = the rhs
  // operand frame of a fixpoint, side 0 otherwise).
  std::vector<std::vector<Frame>> spare_;
  // Per-event atom memo: the program dedups atoms, so each atom is evaluated
  // at most once per step() no matter how many frames reference it. An entry
  // is valid when its stamp equals the current step's stamp.
  std::vector<uint64_t> atom_stamp_;
  std::vector<uint8_t> atom_val_;
  uint64_t stamp_ = 0;
};

}  // namespace repro::checker

#endif  // REPRO_CHECKER_PROGRAM_H_
