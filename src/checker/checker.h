// PropertyChecker: the synthesized checker for one property, driven by a
// stream of evaluation events.
//
// This is the generic checker used (a) at RTL, where the event stream is
// the clock edges selected by the clock context, and (b) at TLM-CA, where
// unabstracted RTL properties are evaluated at per-cycle transaction
// boundaries (the paper's TLM-CA rows of Table I). The Sec. IV wrapper for
// abstracted (next_e) properties lives in wrapper.h.
//
// A property with a top-level `always` starts a fresh verification session
// (checker instance) at every evaluation event whose context guard holds,
// mirroring the behaviour FoCs-generated checkers have at RTL.
#ifndef REPRO_CHECKER_CHECKER_H_
#define REPRO_CHECKER_CHECKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "checker/batch.h"
#include "checker/instance.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "psl/ast.h"
#include "support/coverage.h"
#include "support/metrics.h"

namespace repro::checker {

// Backend and resource options shared by PropertyChecker and the Sec. IV
// wrapper. The compiled backend evaluates a flat program (program.h) shared
// by every instance of a property; the interpreter backend keeps the
// virtual-dispatch obligation tree of instance.h. Both implement the same
// semantics (cross-validated in the ir test suite).
struct CheckerOptions {
  bool compiled = true;
  // On the compiled backend, evaluate instances of frame-free programs
  // (ProgramBatch::supported) through the 64-wide lockstep kernel (batch.h).
  // Reports are byte-identical either way; only speed differs. Programs with
  // dynamic operators fall back to scalar compiled evaluation per property.
  bool vectorized = true;
  // Maximum number of Failure entries retained for diagnostics; verdicts and
  // stats are unaffected.
  size_t failure_log_cap = 64;
};

// One observed property violation. `time` is the simulation (VCD) timestamp
// the violation was attributed to. `witness` is the wrapper's ring buffer of
// recent transactions at failure time, oldest first; empty for plain
// checkers and for wrappers configured with witness depth 0.
struct Failure {
  psl::TimeNs time = 0;
  std::string property;
  std::vector<WitnessEntry> witness;
};

struct CheckerStats {
  uint64_t events = 0;        // evaluation events observed
  uint64_t activations = 0;   // instances started
  uint64_t failures = 0;      // instances resolved kFalse
  uint64_t holds = 0;         // instances resolved kTrue
  uint64_t trivial = 0;       // activations resolved at their anchor event
                              // (vacuity indicator: typically a false
                              // antecedent, the paper's "trivially true")
  uint64_t uncompleted = 0;   // instances still pending at finish()
  uint64_t steps = 0;         // instance step() calls (work measure)
  // Vacuity split of `holds` (holds == real_passes + vacuous_passes): a
  // pass is real when the property's derived antecedent/guard fired at the
  // instance's anchor event, vacuous otherwise. Properties without a guard
  // shape count every hold as real. See DESIGN.md §13.
  uint64_t real_passes = 0;
  uint64_t vacuous_passes = 0;
  // steps x formula node count: a deterministic evaluation-cost proxy that
  // is identical across the interpreter/compiled/lockstep backends (actual
  // per-backend node visits differ and would break report byte-identity).
  uint64_t node_visits = 0;
  // Lockstep accounting (vectorized backend only; absent from reports, so
  // the JSON stays byte-identical with vectorization on or off).
  uint64_t vector_batches = 0;       // multi-lane prime() calls
  uint64_t vector_lanes_filled = 0;  // lanes advanced by those calls
};

class PropertyChecker {
 public:
  // `formula` is the full property; a leading `always` chain is stripped and
  // turned into per-event instance activation. `guard` is the optional
  // boolean context guard (clock context guard at RTL, Tb guard at TLM);
  // nullptr means every event is an evaluation point.
  PropertyChecker(std::string name, psl::ExprPtr formula, psl::ExprPtr guard,
                  CheckerOptions options = {});

  // Feeds one evaluation event.
  void on_event(psl::TimeNs time, const ValueContext& values);

  // Ends the trace: resolves outstanding instances with truncated semantics.
  void finish();

  const std::string& name() const { return name_; }
  const CheckerStats& stats() const { return stats_; }
  const std::vector<Failure>& failures() const { return failure_log_; }
  bool ok() const { return stats_.failures == 0; }

  const CheckerOptions& options() const { return options_; }
  // Compiled program shared by this checker's instances; nullptr on the
  // interpreter backend.
  const std::shared_ptr<const Program>& program() const { return program_; }

  // Replaces the compiled program with one built from `formula` (e.g. the
  // parity-gated dead-node fold of an analysis PruneDecision). The original
  // formula keeps driving the node_visits cost proxy and the derived
  // antecedent, so reports stay byte-identical; only the executed node
  // table shrinks. Must be called before the first event; no-op on nullptr
  // or the interpreter backend.
  void set_program_formula(const psl::ExprPtr& formula);

  // --- Observability -------------------------------------------------------

  // The derived antecedent/guard (derive_antecedent on the stripped body);
  // nullptr when the body has no guard shape (every pass is then real).
  const psl::ExprPtr& antecedent() const { return antecedent_; }

  // Activation-to-verdict latency in simulation nanoseconds, one sample per
  // retired instance. Deterministic for a given event stream.
  const support::Histogram& latency_histogram() const { return latency_ns_; }

  // Attaches the live coverage row this checker mirrors its stats into at
  // the end of every event (relaxed stores; see support/coverage.h).
  // nullptr detaches. The row must outlive the checker.
  void set_coverage(support::CoverageTable::Row* row);

 private:
  void sync_coverage();
  void retire(std::unique_ptr<Instance> instance, Verdict v, psl::TimeNs time);
  std::unique_ptr<Instance> make_instance();
  void prime_cohorts(const Event& ev);

  std::string name_;
  psl::ExprPtr formula_;       // keeps the AST alive for node back-references
  psl::ExprPtr body_;          // formula with the top-level always stripped
  psl::ExprPtr guard_;         // may be nullptr
  CheckerOptions options_;
  std::shared_ptr<const Program> program_;  // compiled backend only
  // Vectorized backend: shared lockstep layout and the lane blocks the
  // instances live in (see wrapper.h for the wrapper-side counterpart).
  std::shared_ptr<const ProgramBatch> batch_layout_;
  std::vector<std::shared_ptr<BatchState>> blocks_;
  // Reused per-event scratch of the prime pre-pass (block -> lanes).
  std::vector<std::pair<BatchState*, uint64_t>> prime_masks_;
  bool repeating_ = false;     // had a top-level always
  bool started_ = false;       // non-repeating: first activation done
  std::vector<std::unique_ptr<Instance>> active_;
  std::vector<std::unique_ptr<Instance>> free_pool_;
  CheckerStats stats_;
  std::vector<Failure> failure_log_;  // capped at options_.failure_log_cap

  psl::ExprPtr antecedent_;    // derived guard, may be nullptr
  uint64_t node_cost_ = 0;     // node_count(body_), the node_visits increment
  support::Histogram latency_ns_;
  support::CoverageTable::Row* coverage_ = nullptr;
};

}  // namespace repro::checker

#endif  // REPRO_CHECKER_CHECKER_H_
