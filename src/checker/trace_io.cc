#include "checker/trace_io.h"

#include <charconv>

#include "support/strutil.h"

namespace repro::checker {
namespace {

Result<uint64_t> parse_value(std::string_view text, int line) {
  uint64_t value = 0;
  std::from_chars_result result{};
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    result = std::from_chars(text.data() + 2, text.data() + text.size(), value, 16);
  } else {
    result = std::from_chars(text.data(), text.data() + text.size(), value, 10);
  }
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    return Error{"malformed value '" + std::string(text) + "'", line};
  }
  return value;
}

}  // namespace

Result<Trace> parse_trace_csv(std::string_view text) {
  Trace trace;
  std::vector<std::string> columns;
  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_number;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }
    const std::vector<std::string> cells = split_and_trim(line, ',');
    if (columns.empty()) {
      // Header row.
      if (cells.size() < 2 || cells[0] != "time") {
        return Error{"trace header must be 'time,<sig>,...'", line_number};
      }
      columns.assign(cells.begin() + 1, cells.end());
      continue;
    }
    if (cells.size() != columns.size() + 1) {
      return Error{"row has " + std::to_string(cells.size()) + " cells, expected " +
                       std::to_string(columns.size() + 1),
                   line_number};
    }
    Observation o;
    auto time = parse_value(cells[0], line_number);
    if (!time.ok()) return time.error();
    o.time = time.value();
    if (!trace.empty() && o.time <= trace.back().time) {
      return Error{"timestamps must be strictly increasing", line_number};
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      auto value = parse_value(cells[i + 1], line_number);
      if (!value.ok()) return value.error();
      o.values.set(columns[i], value.value());
    }
    trace.push_back(std::move(o));
    if (pos > text.size()) break;
  }
  if (columns.empty()) {
    return Error{"empty trace file", 0};
  }
  return trace;
}

std::string to_csv(const Trace& trace) {
  std::string out = "time";
  if (trace.empty()) return out + "\n";
  for (const auto& [name, value] : trace.front().values.entries()) {
    out += ",";
    out += name;
  }
  out += "\n";
  for (const Observation& o : trace) {
    out += std::to_string(o.time);
    for (const auto& [name, value] : trace.front().values.entries()) {
      out += ",";
      out += std::to_string(o.values.value(name));
    }
    out += "\n";
  }
  return out;
}

}  // namespace repro::checker
