#include "checker/program.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>

#include "psl/intern.h"

namespace repro::checker {

namespace {

// Verdict encoding with kPending == 0, so fresh state is all-zeroes.
constexpr uint8_t kVPend = 0;
constexpr uint8_t kVTrue = 1;
constexpr uint8_t kVFalse = 2;

Verdict decode(uint8_t v) {
  switch (v) {
    case kVTrue: return Verdict::kTrue;
    case kVFalse: return Verdict::kFalse;
    default: return Verdict::kPending;
  }
}

uint8_t not3(uint8_t v) {
  if (v == kVTrue) return kVFalse;
  if (v == kVFalse) return kVTrue;
  return kVPend;
}

uint8_t and3(uint8_t a, uint8_t b) {
  if (a == kVFalse || b == kVFalse) return kVFalse;
  if (a == kVPend || b == kVPend) return kVPend;
  return kVTrue;
}

uint8_t or3(uint8_t a, uint8_t b) {
  if (a == kVTrue || b == kVTrue) return kVTrue;
  if (a == kVPend || b == kVPend) return kVPend;
  return kVFalse;
}

bool is_dynamic(Program::Opcode op) {
  switch (op) {
    case Program::Opcode::kUntil:
    case Program::Opcode::kRelease:
    case Program::Opcode::kAlways:
    case Program::Opcode::kEventually:
      return true;
    default:
      return false;
  }
}

bool is_fixpoint(Program::Opcode op) {
  return op == Program::Opcode::kUntil || op == Program::Opcode::kRelease;
}

const char* op_name(Program::Opcode op) {
  switch (op) {
    case Program::Opcode::kConstTrue: return "true";
    case Program::Opcode::kConstFalse: return "false";
    case Program::Opcode::kAtom: return "atom";
    case Program::Opcode::kNot: return "not";
    case Program::Opcode::kAnd: return "and";
    case Program::Opcode::kOr: return "or";
    case Program::Opcode::kImplies: return "implies";
    case Program::Opcode::kNext: return "next";
    case Program::Opcode::kNextEps: return "next_e";
    case Program::Opcode::kUntil: return "until";
    case Program::Opcode::kRelease: return "release";
    case Program::Opcode::kAlways: return "always";
    case Program::Opcode::kEventually: return "eventually";
    case Program::Opcode::kAbort: return "abort";
  }
  return "?";
}

}  // namespace

uint32_t Program::emit(const psl::ExprPtr& e) {
  const uint32_t lo = static_cast<uint32_t>(nodes_.size());
  const uint32_t lhs = e->lhs ? emit(e->lhs) : kNoNode;
  const uint32_t rhs = e->rhs ? emit(e->rhs) : kNoNode;
  ProgNode n;
  n.op = e->kind;
  n.strong = e->strong;
  n.lhs = lhs;
  n.rhs = rhs;
  n.subtree_lo = lo;
  n.next_count = e->next_count;
  n.eps = e->eps;
  switch (e->kind) {
    case Opcode::kConstTrue:
    case Opcode::kConstFalse:
    case Opcode::kAtom:
      n.pure_bool = true;
      break;
    case Opcode::kNot:
      n.pure_bool = nodes_[lhs].pure_bool;
      break;
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kImplies:
      n.pure_bool = nodes_[lhs].pure_bool && nodes_[rhs].pure_bool;
      break;
    default:
      break;
  }
  if (e->kind == Opcode::kAtom) {
    // Programs are small; a linear atom dedup keeps the table compact.
    uint32_t found = static_cast<uint32_t>(atoms_.size());
    for (uint32_t i = 0; i < atoms_.size(); ++i) {
      if (atoms_[i] == e->atom) {
        found = i;
        break;
      }
    }
    if (found == atoms_.size()) atoms_.push_back(e->atom);
    n.atom = found;
  }
  nodes_.push_back(n);
  return static_cast<uint32_t>(nodes_.size()) - 1;
}

void Program::finalize() {
  dyn_prefix_.resize(nodes_.size() + 1);
  uint32_t count = 0;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    dyn_prefix_[i] = count;
    if (is_dynamic(nodes_[i].op)) {
      dyn_nodes_.push_back(i);
      ++count;
    }
  }
  dyn_prefix_[nodes_.size()] = count;

  // Collect the guard subtrees of the implication shapes derive_antecedent()
  // recognizes, walking from the root through nested guards. The walk is the
  // node-table mirror of the AST walk: kImplies with a pure-boolean lhs
  // contributes the lhs subtree, a disjunction of one pure-boolean and one
  // temporal operand contributes the boolean subtree.
  uint32_t at = root();
  while (true) {
    const ProgNode& n = nodes_[at];
    uint32_t guard = kNoNode;
    uint32_t cont = kNoNode;
    if (n.op == Opcode::kImplies && nodes_[n.lhs].pure_bool) {
      guard = n.lhs;
      cont = n.rhs;
    } else if (n.op == Opcode::kOr &&
               nodes_[n.lhs].pure_bool != nodes_[n.rhs].pure_bool) {
      guard = nodes_[n.lhs].pure_bool ? n.lhs : n.rhs;
      cont = nodes_[n.lhs].pure_bool ? n.rhs : n.lhs;
    }
    if (guard == kNoNode) break;
    for (uint32_t i = nodes_[guard].subtree_lo; i <= guard; ++i) {
      antecedent_nodes_.push_back(i);
    }
    at = cont;
  }
}

std::shared_ptr<const Program> Program::compile(const psl::ExprPtr& formula) {
  assert(formula);
  auto program = std::make_shared<Program>();
  program->emit(formula);
  program->finalize();
  return program;
}

std::shared_ptr<const Program> Program::compile(const psl::ExprTable& table,
                                                uint32_t id) {
  return compile(table.expr(id));
}

psl::ExprPtr derive_antecedent(const psl::ExprPtr& body) {
  if (!body) return nullptr;
  psl::ExprPtr guard;
  psl::ExprPtr cont;
  if (body->kind == psl::ExprKind::kImplies && psl::is_boolean(body->lhs)) {
    guard = body->lhs;
    cont = body->rhs;
  } else if (body->kind == psl::ExprKind::kOr) {
    const bool lhs_bool = psl::is_boolean(body->lhs);
    if (lhs_bool != psl::is_boolean(body->rhs)) {
      // The pass is vacuous exactly when the boolean disjunct alone decided
      // it, so the antecedent is that disjunct's negation.
      guard = psl::not_(lhs_bool ? body->lhs : body->rhs);
      cont = lhs_bool ? body->rhs : body->lhs;
    }
  }
  if (!guard) return nullptr;
  if (psl::ExprPtr inner = derive_antecedent(cont)) {
    return psl::and_(std::move(guard), std::move(inner));
  }
  return guard;
}

void Program::dump(std::ostream& os) const {
  os << "program: " << nodes_.size() << " node(s), " << dyn_nodes_.size()
     << " dynamic, " << atoms_.size() << " atom(s), root @" << root() << "\n";
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const ProgNode& n = nodes_[i];
    os << std::setw(4) << i << ": " << std::left << std::setw(10)
       << op_name(n.op) << std::right;
    switch (n.op) {
      case Opcode::kAtom:
        os << psl::to_string(psl::atom(atoms_[n.atom]));
        break;
      case Opcode::kNext:
        os << "[" << n.next_count << "] @" << n.lhs;
        break;
      case Opcode::kNextEps:
        os << "eps=" << n.eps << "ns @" << n.lhs;
        break;
      case Opcode::kNot:
      case Opcode::kAlways:
        os << "@" << n.lhs;
        break;
      case Opcode::kEventually:
        os << (n.strong ? "! " : " ") << "@" << n.lhs;
        break;
      case Opcode::kUntil:
        os << (n.strong ? "! " : " ") << "@" << n.lhs << ", @" << n.rhs;
        break;
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kImplies:
      case Opcode::kRelease:
        os << "@" << n.lhs << ", @" << n.rhs;
        break;
      case Opcode::kAbort:
        os << (n.strong ? "! " : " ") << "@" << n.lhs << " on @" << n.rhs;
        break;
      default:
        break;
    }
    if (n.subtree_lo != i) os << "   | subtree [" << n.subtree_lo << ".." << i << "]";
    if (is_dynamic(n.op)) os << "   | dyn#" << dyn_prefix_[i];
    if (std::find(antecedent_nodes_.begin(), antecedent_nodes_.end(), i) !=
        antecedent_nodes_.end()) {
      os << "   | ant";
    }
    os << "\n";
  }
}

// ---- Evaluation -------------------------------------------------------------

namespace {

using Frame = ProgramState::Frame;
using Slot = ProgramState::Slot;

// One step()/finish() dispatch over the flat node table. The recursion
// mirrors the obligation tree exactly (depth = formula height); all state
// updates go into the frame's slot array and the per-frame kid lists.
class Evaluator {
 public:
  Evaluator(const Program& prog, std::vector<std::vector<Frame>>* spare,
            const Event* ev, uint64_t stamp = 0,
            std::vector<uint64_t>* atom_stamp = nullptr,
            std::vector<uint8_t>* atom_val = nullptr)
      : prog_(prog),
        spare_(spare),
        ev_(ev),
        stamp_(stamp),
        atom_stamp_(atom_stamp),
        atom_val_(atom_val) {}

  uint8_t step(uint32_t n, Frame& f, uint32_t base) {
    Slot& s = f.slots[n - base];
    if (s.verdict != kVPend) return s.verdict;
    s.verdict = step_raw(n, f, base, s);
    return s.verdict;
  }

  uint8_t finish(uint32_t n, Frame& f, uint32_t base) {
    Slot& s = f.slots[n - base];
    if (s.verdict != kVPend) return s.verdict;
    s.verdict = finish_raw(n, f, base, s);
    return s.verdict;
  }

  // Moves every spawned sub-frame of `f` (whose base node is `base`) into
  // the free lists, leaving the kid vectors empty.
  void release_kids(Frame& f, uint32_t base) {
    for (size_t j = 0; j < f.kids.size(); ++j) {
      const uint32_t ord = prog_.dyn_before(base) + static_cast<uint32_t>(j);
      const bool fix = is_fixpoint(prog_.nodes()[prog_.dyn_node(ord)].op);
      std::vector<Frame>& vec = f.kids[j];
      for (size_t i = 0; i < vec.size(); ++i) {
        retire(ord * 2 + (fix ? static_cast<uint32_t>(i & 1) : 0),
               std::move(vec[i]));
      }
      vec.clear();
    }
  }

 private:
  // Shape of the frame with free-list key `key`: the operand subtree it
  // covers. side 1 is the rhs operand of a fixpoint.
  uint32_t frame_root(uint32_t key) const {
    const Program::ProgNode& dn = prog_.nodes()[prog_.dyn_node(key >> 1)];
    return (key & 1) ? dn.rhs : dn.lhs;
  }

  Frame acquire(uint32_t key) {
    // Purely boolean subtrees resolve at the anchor event and carry their
    // verdict in Frame::verdict alone: no slot or kid storage, nothing worth
    // recycling through the pool.
    if (prog_.nodes()[frame_root(key)].pure_bool) return Frame{};
    std::vector<Frame>& pool = (*spare_)[key];
    if (!pool.empty()) {
      Frame f = std::move(pool.back());
      pool.pop_back();
      std::fill(f.slots.begin(), f.slots.end(), Slot{});
      f.verdict = kVPend;
      return f;
    }
    const uint32_t r = frame_root(key);
    const uint32_t lo = prog_.nodes()[r].subtree_lo;
    Frame f;
    f.slots.resize(r - lo + 1);
    f.kids.resize(prog_.dyn_before(r + 1) - prog_.dyn_before(lo));
    return f;
  }

  void retire(uint32_t key, Frame&& f) {
    const uint32_t r = frame_root(key);
    if (prog_.nodes()[r].pure_bool) return;  // slotless, nothing to recycle
    release_kids(f, prog_.nodes()[r].subtree_lo);
    (*spare_)[key].push_back(std::move(f));
  }

  // Value of the deduplicated atom `k` at the current event, computed at
  // most once per step.
  bool atom_value(uint32_t k) {
    if (atom_stamp_ == nullptr) {
      return eval_atom(prog_.atoms()[k], *ev_->values);
    }
    uint64_t& st = (*atom_stamp_)[k];
    if (st != stamp_) {
      st = stamp_;
      (*atom_val_)[k] = eval_atom(prog_.atoms()[k], *ev_->values) ? 1 : 0;
    }
    return (*atom_val_)[k] != 0;
  }

  bool eval_bool(uint32_t n) {
    const Program::ProgNode& node = prog_.nodes()[n];
    switch (node.op) {
      case Program::Opcode::kConstTrue: return true;
      case Program::Opcode::kConstFalse: return false;
      case Program::Opcode::kAtom:
        return atom_value(node.atom);
      case Program::Opcode::kNot: return !eval_bool(node.lhs);
      case Program::Opcode::kAnd:
        return eval_bool(node.lhs) && eval_bool(node.rhs);
      case Program::Opcode::kOr:
        return eval_bool(node.lhs) || eval_bool(node.rhs);
      case Program::Opcode::kImplies:
        return !eval_bool(node.lhs) || eval_bool(node.rhs);
      default:
        assert(false && "abort condition must be boolean");
        return false;
    }
  }

  // Tries to resolve a fresh obligation at its anchor event using only the
  // purely boolean parts of the subtree, without any frame state. Returns
  // kVPend when the verdict genuinely needs a stateful frame; the caller
  // then falls back to a full step (atom evaluation is memoized per event,
  // so the partial work is not repeated). Writes no state, so the fallback
  // starts clean.
  uint8_t anchor_shortcut(uint32_t n) {
    const Program::ProgNode& node = prog_.nodes()[n];
    if (node.pure_bool) return eval_bool(n) ? kVTrue : kVFalse;
    switch (node.op) {
      case Program::Opcode::kOr: {
        const uint8_t l = anchor_shortcut(node.lhs);
        if (l == kVTrue) return kVTrue;
        const uint8_t r = anchor_shortcut(node.rhs);
        if (r == kVTrue) return kVTrue;
        return l == kVFalse && r == kVFalse ? kVFalse : kVPend;
      }
      case Program::Opcode::kAnd: {
        const uint8_t l = anchor_shortcut(node.lhs);
        if (l == kVFalse) return kVFalse;
        const uint8_t r = anchor_shortcut(node.rhs);
        if (r == kVFalse) return kVFalse;
        return l == kVTrue && r == kVTrue ? kVTrue : kVPend;
      }
      case Program::Opcode::kImplies: {
        const uint8_t l = anchor_shortcut(node.lhs);
        if (l == kVFalse) return kVTrue;
        const uint8_t r = anchor_shortcut(node.rhs);
        if (r == kVTrue) return kVTrue;
        return l == kVTrue && r == kVFalse ? kVFalse : kVPend;
      }
      default:
        return kVPend;
    }
  }

  uint8_t step_raw(uint32_t n, Frame& f, uint32_t base, Slot& s) {
    const Program::ProgNode& node = prog_.nodes()[n];
    // A purely boolean subtree is decided by the anchor event alone: evaluate
    // it directly, skipping the per-node slot recursion. The short-circuit
    // order of eval_bool matches the slot path exactly.
    if (node.pure_bool) return eval_bool(n) ? kVTrue : kVFalse;
    switch (node.op) {
      case Program::Opcode::kConstTrue:
        return kVTrue;
      case Program::Opcode::kConstFalse:
        return kVFalse;
      case Program::Opcode::kAtom:
        return atom_value(node.atom) ? kVTrue : kVFalse;
      case Program::Opcode::kNot:
        return not3(step(node.lhs, f, base));
      case Program::Opcode::kAnd: {
        // Short-circuit exactly like the interpreter: when the left operand
        // alone decides, the right subtree is never anchored.
        const uint8_t l = step(node.lhs, f, base);
        if (l == kVFalse) return kVFalse;
        return and3(l, step(node.rhs, f, base));
      }
      case Program::Opcode::kOr: {
        const uint8_t l = step(node.lhs, f, base);
        if (l == kVTrue) return kVTrue;
        return or3(l, step(node.rhs, f, base));
      }
      case Program::Opcode::kImplies: {
        const uint8_t l = step(node.lhs, f, base);
        if (l == kVFalse) return kVTrue;
        return or3(not3(l), step(node.rhs, f, base));
      }
      case Program::Opcode::kNext: {
        if (!(s.flags & 1)) {
          if (s.count < node.next_count) {
            ++s.count;
            return kVPend;
          }
          s.flags |= 1;  // operand anchors at this event
        }
        return step(node.lhs, f, base);
      }
      case Program::Opcode::kNextEps: {
        if (!(s.flags & 1)) {
          s.flags |= 1;
          s.target = ev_->time + node.eps;
          return kVPend;
        }
        if (s.flags & 2) return step(node.lhs, f, base);
        if (ev_->time < s.target) return kVPend;
        if (ev_->time > s.target) return kVFalse;
        s.flags |= 2;
        return step(node.lhs, f, base);
      }
      case Program::Opcode::kAbort: {
        if (eval_bool(node.rhs)) return node.strong ? kVFalse : kVTrue;
        s.flags |= 2;  // operand observed at least one event
        return step(node.lhs, f, base);
      }
      case Program::Opcode::kUntil:
      case Program::Opcode::kRelease:
        return fixpoint_step(n, node, f, base);
      case Program::Opcode::kAlways:
      case Program::Opcode::kEventually:
        return spawn_step(n, node, f, base);
    }
    assert(false && "unreachable");
    return kVPend;
  }

  uint8_t fixpoint_fold(const Program::ProgNode& node,
                        const std::vector<Frame>& kids, uint8_t rest) const {
    for (size_t i = kids.size(); i >= 2; i -= 2) {
      const uint8_t pv = kids[i - 2].verdict;
      const uint8_t qv = kids[i - 1].verdict;
      if (node.op == Program::Opcode::kUntil) {
        rest = or3(qv, and3(pv, rest));
      } else {
        rest = and3(qv, or3(pv, rest));
      }
    }
    return rest;
  }

  uint8_t fixpoint_step(uint32_t n, const Program::ProgNode& node, Frame& f,
                        uint32_t base) {
    const uint32_t ord = prog_.dyn_before(n);
    std::vector<Frame>& kids = f.kids[ord - prog_.dyn_before(base)];
    const uint32_t p_lo = prog_.nodes()[node.lhs].subtree_lo;
    const uint32_t q_lo = prog_.nodes()[node.rhs].subtree_lo;
    // Purely boolean operands resolve at their anchor event: their position
    // verdicts need no frame state at all, just the byte in Frame::verdict.
    const bool pure_p = prog_.nodes()[node.lhs].pure_bool;
    const bool pure_q = prog_.nodes()[node.rhs].pure_bool;
    for (size_t i = 0; i < kids.size(); i += 2) {
      Frame& pf = kids[i];
      Frame& qf = kids[i + 1];
      if (pf.verdict == kVPend) pf.verdict = step(node.lhs, pf, p_lo);
      if (qf.verdict == kVPend) qf.verdict = step(node.rhs, qf, q_lo);
    }
    kids.push_back(acquire(ord * 2));
    kids.push_back(acquire(ord * 2 + 1));
    Frame& pf = kids[kids.size() - 2];
    Frame& qf = kids.back();
    pf.verdict = pure_p ? (eval_bool(node.lhs) ? kVTrue : kVFalse)
                        : step(node.lhs, pf, p_lo);
    qf.verdict = pure_q ? (eval_bool(node.rhs) ? kVTrue : kVFalse)
                        : step(node.rhs, qf, q_lo);
    const uint8_t v = fixpoint_fold(node, kids, kVPend);
    if (v != kVPend) {
      for (size_t i = 0; i < kids.size(); ++i) {
        retire(ord * 2 + static_cast<uint32_t>(i & 1), std::move(kids[i]));
      }
      kids.clear();
    }
    return v;
  }

  uint8_t spawn_step(uint32_t n, const Program::ProgNode& node, Frame& f,
                     uint32_t base) {
    const uint32_t ord = prog_.dyn_before(n);
    std::vector<Frame>& kids = f.kids[ord - prog_.dyn_before(base)];
    const uint32_t c_lo = prog_.nodes()[node.lhs].subtree_lo;
    const bool is_always = node.op == Program::Opcode::kAlways;
    // Evaluate the fresh obligation first: most anchor events resolve it via
    // the frameless boolean shortcut (handshake-shaped bodies), so the
    // common case touches no frame at all. Atom evaluation is pure per
    // event, so the order relative to the older kids is unobservable.
    Frame fresh;
    bool have_frame = false;
    uint8_t fv = anchor_shortcut(node.lhs);
    if (fv == kVPend) {
      fresh = acquire(ord * 2);
      have_frame = true;
      fv = step(node.lhs, fresh, c_lo);
    }
    if ((is_always && fv == kVFalse) || (!is_always && fv == kVTrue)) {
      if (have_frame) retire(ord * 2, std::move(fresh));
      drop_all(ord, kids);
      return is_always ? kVFalse : kVTrue;
    }
    size_t i = 0;
    while (i < kids.size()) {
      const uint8_t v = step(node.lhs, kids[i], c_lo);
      if (v == (is_always ? kVFalse : kVTrue)) {
        if (have_frame) retire(ord * 2, std::move(fresh));
        drop_all(ord, kids);
        return v;
      }
      if (v != kVPend) {  // discharged obligation
        retire(ord * 2, std::move(kids[i]));
        kids.erase(kids.begin() + static_cast<ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
    if (fv == kVPend) {
      kids.push_back(std::move(fresh));
    } else if (have_frame) {
      retire(ord * 2, std::move(fresh));
    }
    return kVPend;
  }

  void drop_all(uint32_t ord, std::vector<Frame>& kids) {
    for (Frame& k : kids) retire(ord * 2, std::move(k));
    kids.clear();
  }

  uint8_t finish_raw(uint32_t n, Frame& f, uint32_t base, Slot& s) {
    const Program::ProgNode& node = prog_.nodes()[n];
    switch (node.op) {
      case Program::Opcode::kConstTrue:
        return kVTrue;
      case Program::Opcode::kConstFalse:
        return kVFalse;
      case Program::Opcode::kAtom:
        return kVPend;  // never anchored
      case Program::Opcode::kNot:
        return not3(finish(node.lhs, f, base));
      case Program::Opcode::kAnd:
        return and3(finish(node.lhs, f, base), finish(node.rhs, f, base));
      case Program::Opcode::kOr:
        return or3(finish(node.lhs, f, base), finish(node.rhs, f, base));
      case Program::Opcode::kImplies:
        return or3(not3(finish(node.lhs, f, base)),
                   finish(node.rhs, f, base));
      case Program::Opcode::kNext:
        // Trace ended before the operand anchored: weak next, no failure.
        if (!(s.flags & 1)) return kVTrue;
        return finish(node.lhs, f, base);
      case Program::Opcode::kNextEps:
        if (!(s.flags & 2)) return kVTrue;
        return finish(node.lhs, f, base);
      case Program::Opcode::kAbort:
        if (!(s.flags & 2)) return kVTrue;
        return finish(node.lhs, f, base);
      case Program::Opcode::kUntil:
      case Program::Opcode::kRelease: {
        const uint32_t ord = prog_.dyn_before(n);
        std::vector<Frame>& kids = f.kids[ord - prog_.dyn_before(base)];
        const uint32_t p_lo = prog_.nodes()[node.lhs].subtree_lo;
        const uint32_t q_lo = prog_.nodes()[node.rhs].subtree_lo;
        for (size_t i = 0; i < kids.size(); i += 2) {
          Frame& pf = kids[i];
          Frame& qf = kids[i + 1];
          if (pf.verdict == kVPend) pf.verdict = finish(node.lhs, pf, p_lo);
          if (qf.verdict == kVPend) qf.verdict = finish(node.rhs, qf, q_lo);
        }
        const bool weak = node.op == Program::Opcode::kRelease || !node.strong;
        return fixpoint_fold(node, kids, weak ? kVTrue : kVFalse);
      }
      case Program::Opcode::kAlways:
      case Program::Opcode::kEventually: {
        const uint32_t ord = prog_.dyn_before(n);
        std::vector<Frame>& kids = f.kids[ord - prog_.dyn_before(base)];
        const uint32_t c_lo = prog_.nodes()[node.lhs].subtree_lo;
        const bool is_always = node.op == Program::Opcode::kAlways;
        for (Frame& k : kids) {
          const uint8_t v = finish(node.lhs, k, c_lo);
          if (is_always && v == kVFalse) return kVFalse;
          if (!is_always && v == kVTrue) return kVTrue;
        }
        return is_always ? kVTrue : kVFalse;
      }
    }
    assert(false && "unreachable");
    return kVPend;
  }

  const Program& prog_;
  std::vector<std::vector<Frame>>* spare_;
  const Event* ev_;
  uint64_t stamp_;
  std::vector<uint64_t>* atom_stamp_;
  std::vector<uint8_t>* atom_val_;
};

// Deadline collection is read-only; mirrors Node::collect_deadlines.
bool collect_node(const Program& prog, uint32_t n, const Frame& f,
                  uint32_t base, std::vector<psl::TimeNs>& out) {
  const Slot& s = f.slots[n - base];
  if (s.verdict != kVPend) return true;
  const Program::ProgNode& node = prog.nodes()[n];
  switch (node.op) {
    case Program::Opcode::kConstTrue:
    case Program::Opcode::kConstFalse:
      return true;
    case Program::Opcode::kAtom:
      return false;
    case Program::Opcode::kNot:
      return collect_node(prog, node.lhs, f, base, out);
    case Program::Opcode::kAnd:
    case Program::Opcode::kOr:
    case Program::Opcode::kImplies: {
      const bool a = collect_node(prog, node.lhs, f, base, out);
      const bool b = collect_node(prog, node.rhs, f, base, out);
      return a && b;
    }
    case Program::Opcode::kNext:
      if (!(s.flags & 1)) return false;
      return collect_node(prog, node.lhs, f, base, out);
    case Program::Opcode::kNextEps:
      if (s.flags & 2) return collect_node(prog, node.lhs, f, base, out);
      if (!(s.flags & 1)) return false;
      out.push_back(s.target);
      return true;
    default:
      // until/release/always/eventually/abort must observe every event.
      return false;
  }
}

}  // namespace

ProgramState::ProgramState(std::shared_ptr<const Program> program)
    : program_(std::move(program)) {
  assert(program_ != nullptr && program_->size() > 0);
  root_.slots.resize(program_->size());
  root_.kids.resize(program_->dynamic_count());
  spare_.resize(program_->dynamic_count() * 2);
  atom_stamp_.resize(program_->atoms().size(), 0);
  atom_val_.resize(program_->atoms().size(), 0);
}

Verdict ProgramState::step(const Event& ev) {
  ++stamp_;
  Evaluator e(*program_, &spare_, &ev, stamp_, &atom_stamp_, &atom_val_);
  return decode(e.step(program_->root(), root_, 0));
}

Verdict ProgramState::finish() {
  Evaluator e(*program_, &spare_, nullptr);
  return decode(e.finish(program_->root(), root_, 0));
}

bool ProgramState::collect_deadlines(std::vector<psl::TimeNs>& out) const {
  if (root_.slots[program_->root()].verdict != kVPend) return true;
  return collect_node(*program_, program_->root(), root_, 0, out);
}

void ProgramState::reset() {
  std::fill(root_.slots.begin(), root_.slots.end(), Slot{});
  Evaluator e(*program_, &spare_, nullptr);
  e.release_kids(root_, 0);
}

}  // namespace repro::checker
