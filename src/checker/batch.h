// Vectorized 64-wide lockstep evaluation over a shared checker Program.
//
// The compiled backend (program.h) advances one instance per step() call;
// under a wrapper a transaction typically makes *many* instances of the same
// property due at once (the deadline cohort of Sec. IV point 2). The batch
// backend packs the per-instance boolean node state into one 64-bit word per
// program node — bit i belongs to lane i — so a single masked pass over the
// post-order node table advances up to 64 pending instances in lockstep, and
// each atom / purely boolean subtree is evaluated once per event and
// broadcast to every lane instead of once per instance.
//
// Scope: only programs without dynamic (frame-spawning) nodes are supported
// — ProgramBatch::supported() is exactly `dynamic_count() == 0`. That covers
// the wrapper's abstracted next_e properties and the handshake-shaped RTL
// bodies; until/release/always/eventually bodies keep the scalar compiled
// backend (the wrapper falls back per property, not per instance).
//
// Semantics: the masked kernel mirrors program.cc's Evaluator *exactly*,
// including its short-circuit order — a subtree is only advanced for the
// lanes whose parent actually steps it, because short-circuiting controls
// when a subtree anchors, not just how much work is done. The need-mask
// recursion (todo / rhs_need) is therefore the bitwise transcription of the
// scalar control flow, and the ir/vector test suites prove three-way parity
// against the interpreter and the scalar compiled backend.
//
// Priming protocol: a caller that knows a cohort of lanes will all consume
// the same event calls prime(ev, mask) once; each lane's owner then calls
// step_lane(ev, lane), which consumes the lane's primed bit without
// re-evaluating. A step_lane() without a prior prime primes just that lane,
// so scalar bookkeeping loops need no special cases — re-dued instances
// (eps == 0 pathologies) self-prime and observe the same double-step the
// scalar path does.
#ifndef REPRO_CHECKER_BATCH_H_
#define REPRO_CHECKER_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "checker/program.h"
#include "checker/trace.h"
#include "psl/ast.h"

namespace repro::checker {

// Immutable per-Program layout shared by every BatchState of a property:
// maps each counter-carrying node (next / next_e) to a dense scratch ordinal
// so per-lane counters and deadline targets live in flat arrays.
class ProgramBatch {
 public:
  explicit ProgramBatch(std::shared_ptr<const Program> program);

  // A program is vectorizable iff it spawns no per-activation frames; every
  // remaining opcode keeps its whole state in one bit, one counter or one
  // deadline per lane. abort is supported: its condition is purely boolean
  // and lane-uniform, and its "observed" bit is plane state.
  static bool supported(const Program& program) {
    return program.dynamic_count() == 0;
  }

  const Program& program() const { return *program_; }
  const std::shared_ptr<const Program>& shared_program() const {
    return program_;
  }
  // Dense ordinal of node n's per-lane scratch (counts for kNext, targets
  // for kNextEps); only meaningful for those opcodes.
  uint32_t scratch(uint32_t n) const { return scratch_[n]; }
  uint32_t count_words() const { return count_words_; }
  uint32_t target_words() const { return target_words_; }

 private:
  std::shared_ptr<const Program> program_;
  std::vector<uint32_t> scratch_;  // one entry per node
  uint32_t count_words_ = 0;       // number of kNext nodes
  uint32_t target_words_ = 0;      // number of kNextEps nodes
};

// Runtime state of up to 64 checker instances (lanes) of one program.
// Four bit-planes per node replace ProgramState's Slot fields:
//   val_t_/val_f_  <-> Slot::verdict (neither bit set = pending)
//   armed_         <-> Slot::flags bit 0 (anchored / operand armed)
//   observed_      <-> Slot::flags bit 1 (child armed / event observed)
// plus per-lane scalar scratch for kNext counters and kNextEps targets.
class BatchState {
 public:
  static constexpr uint32_t kLanes = 64;

  explicit BatchState(std::shared_ptr<const ProgramBatch> layout);

  // --- lane management ------------------------------------------------------
  bool has_free_lane() const { return allocated_ != ~uint64_t{0}; }
  // Lowest free lane; must not be called when has_free_lane() is false.
  uint32_t allocate_lane();
  // Returns the lane to the block (fresh state, available for reallocation).
  void release_lane(uint32_t lane);
  uint64_t allocated() const { return allocated_; }

  // --- lockstep evaluation --------------------------------------------------
  // Advances every lane in `mask` by one event in a single masked pass and
  // marks them primed. All lanes of a prime call share the event, so atoms
  // and pure-boolean subtrees are evaluated once and broadcast.
  void prime(const Event& ev, uint64_t mask);
  // Verdict of `lane` after consuming `ev`: uses the primed result when the
  // lane was primed for this event, else primes the single lane first.
  Verdict step_lane(const Event& ev, uint32_t lane);
  // End-of-trace resolution for one lane (truncated semantics).
  Verdict finish_lane(uint32_t lane);
  // Mirrors ProgramState::collect_deadlines for one lane.
  bool collect_deadlines(uint32_t lane, std::vector<psl::TimeNs>& out) const;
  // Restores the lane's fresh (pre-anchor) state; the lane stays allocated.
  void reset_lane(uint32_t lane);

  Verdict root_verdict(uint32_t lane) const;
  uint64_t primed() const { return primed_; }
  const ProgramBatch& layout() const { return *layout_; }

  // --- vacuity telemetry ----------------------------------------------------
  // "Consequent exercised" bit plane, one bit per lane (see
  // Instance::set_exercised). The owner writes the bit at the lane's anchor
  // event; reset_lane clears it with the rest of the lane state so recycled
  // lanes start out not-exercised, exactly like a fresh scalar instance.
  void set_exercised(uint32_t lane, bool v) {
    const uint64_t bit = uint64_t{1} << lane;
    exercised_ = v ? (exercised_ | bit) : (exercised_ & ~bit);
  }
  bool exercised(uint32_t lane) const { return (exercised_ >> lane) & 1; }

 private:
  bool eval_bool(uint32_t n);
  bool atom_value(uint32_t k);
  void step_node(uint32_t n, uint64_t need);
  uint8_t finish_node(uint32_t n, uint64_t bit);
  uint8_t finish_raw(uint32_t n, uint64_t bit);
  bool collect_node(uint32_t n, uint32_t lane,
                    std::vector<psl::TimeNs>& out) const;

  std::shared_ptr<const ProgramBatch> layout_;
  const Program* prog_;  // borrowed from layout_, hot-path shortcut

  // One 64-bit plane per program node (lane i = bit i).
  std::vector<uint64_t> val_t_;
  std::vector<uint64_t> val_f_;
  std::vector<uint64_t> armed_;
  std::vector<uint64_t> observed_;
  // Per-lane scalar scratch, indexed scratch(n) * kLanes + lane.
  std::vector<uint32_t> counts_;       // kNext events skipped
  std::vector<psl::TimeNs> targets_;   // kNextEps required instants

  // Per-prime atom memo (lane-uniform: one value per atom per event).
  std::vector<uint64_t> atom_stamp_;
  std::vector<uint8_t> atom_val_;
  uint64_t stamp_ = 0;

  uint64_t allocated_ = 0;  // lanes handed out
  uint64_t primed_ = 0;     // lanes whose planes already reflect the event
  uint64_t exercised_ = 0;  // lanes whose antecedent fired at their anchor
  const Event* ev_ = nullptr;  // valid during prime() only
};

}  // namespace repro::checker

#endif  // REPRO_CHECKER_BATCH_H_
