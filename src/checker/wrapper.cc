#include "checker/wrapper.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace repro::checker {

LifetimeInfo compute_lifetime(const psl::ExprPtr& formula,
                              psl::TimeNs clock_period_ns) {
  assert(formula);
  assert(clock_period_ns >= 1);
  LifetimeInfo info;
  psl::ExprPtr body = formula;
  while (body->kind == psl::ExprKind::kAlways) body = body->lhs;
  // A formula is time-scheduled iff it has no fixpoint operators below the
  // stripped always chain.
  std::vector<const psl::Expr*> work{body.get()};
  while (!work.empty()) {
    const psl::Expr* e = work.back();
    work.pop_back();
    switch (e->kind) {
      case psl::ExprKind::kUntil:
      case psl::ExprKind::kRelease:
      case psl::ExprKind::kAlways:
      case psl::ExprKind::kEventually:
      case psl::ExprKind::kAbort:
        info.bounded = false;
        break;
      default:
        break;
    }
    if (e->lhs) work.push_back(e->lhs.get());
    if (e->rhs) work.push_back(e->rhs.get());
  }
  info.max_eps = psl::max_eps(body);
  if (info.bounded) {
    // Ceiling division: a window that is not a multiple of the clock period
    // still needs an instant for its final partial period.
    info.instants = static_cast<size_t>(
        (info.max_eps + clock_period_ns - 1) / clock_period_ns);
  }
  return info;
}

TlmCheckerWrapper::TlmCheckerWrapper(const psl::TlmProperty& property,
                                     psl::TimeNs clock_period_ns,
                                     CheckerOptions options)
    : name_(property.name),
      formula_(property.formula),
      guard_(property.context.guard),
      options_(options),
      // Sub-period to ~2k-period sim-time latencies; DES56's longest next_e
      // window (170 ns at a 10 ns clock) sits mid-range.
      latency_ns_(support::exponential_bounds(clock_period_ns, 12)) {
  assert(formula_);
  assert(clock_period_ns >= 1);
  body_ = formula_;
  while (body_->kind == psl::ExprKind::kAlways) {
    repeating_ = true;
    body_ = body_->lhs;
  }
  antecedent_ = derive_antecedent(body_);
  node_cost_ = psl::node_count(body_);
  // Compile once; every instance in the pool shares the immutable program.
  if (options_.compiled) program_ = Program::compile(body_);
  // Frame-free programs additionally share a lockstep layout: instances then
  // occupy lanes of 64-wide blocks and due cohorts advance in one pass.
  if (program_ != nullptr && options_.vectorized &&
      ProgramBatch::supported(*program_)) {
    batch_layout_ = std::make_shared<const ProgramBatch>(program_);
  }
  // Sec. IV point 1: the pool is sized by the lifetime of an instance, i.e.
  // the number of instants in (t_fire, t_end] at which a transaction can
  // occur (see compute_lifetime). A property with until/release obligations
  // has no static bound; the pool then grows on demand.
  const LifetimeInfo info = compute_lifetime(body_, clock_period_ns);
  if (info.bounded) {
    lifetime_ = info.instants;
    free_pool_.reserve(lifetime_);
    for (size_t i = 0; i < lifetime_; ++i) {
      free_pool_.push_back(make_instance());
    }
    stats_.pool_capacity = lifetime_;
  }
}

void TlmCheckerWrapper::set_program_formula(const psl::ExprPtr& formula) {
  assert(!started_ && stats_.transactions == 0);
  if (formula == nullptr || program_ == nullptr) return;
  psl::ExprPtr body = formula;
  while (body->kind == psl::ExprKind::kAlways) body = body->lhs;
  program_ = Program::compile(body);
  batch_layout_.reset();
  if (options_.vectorized && ProgramBatch::supported(*program_)) {
    batch_layout_ = std::make_shared<const ProgramBatch>(program_);
  }
  // The pre-filled pool references the old program; rebuild it at the
  // original lifetime so pool_capacity is unchanged.
  blocks_.clear();
  free_pool_.clear();
  for (size_t i = 0; i < lifetime_; ++i) {
    free_pool_.push_back(make_instance());
  }
}

void TlmCheckerWrapper::retire(std::unique_ptr<Instance> instance, Verdict v,
                               psl::TimeNs time) {
  const psl::TimeNs activated = instance->activated_at();
  latency_ns_.record(time >= activated ? time - activated : 0);
  switch (v) {
    case Verdict::kTrue:
      ++stats_.holds;
      // The vacuity split: a hold whose antecedent never fired at the
      // firing transaction proves nothing about the consequent.
      if (instance->exercised()) {
        ++stats_.real_passes;
      } else {
        ++stats_.vacuous_passes;
      }
      break;
    case Verdict::kFalse:
      ++stats_.failures;
      if (failure_log_.size() < options_.failure_log_cap) {
        failure_log_.push_back({time, name_, witness_snapshot()});
      }
      if (trace_ != nullptr) {
        trace_->instant(trace_tid_, "fail:" + name_, {{"sim_time_ns", time}});
      }
      break;
    case Verdict::kPending:
      ++stats_.uncompleted;
      break;
  }
  // Sec. IV point 3: reset the instance so it can serve a later session.
  // Bounded properties keep their statically sized pool (Sec. IV point 1);
  // unbounded (until-based) properties would otherwise accumulate every
  // instance ever allocated, so their pool is capped at the high-water mark
  // of concurrently active instances and the excess is dropped.
  if (lifetime_ == 0 &&
      free_pool_.size() >= std::max<size_t>(1, peak_active_)) {
    ++stats_.pool_dropped;
    --stats_.pool_capacity;
    return;
  }
  instance->reset();
  free_pool_.push_back(std::move(instance));
}

void TlmCheckerWrapper::place(std::unique_ptr<Instance> instance) {
  if (auto deadline = instance->next_deadline()) {
    table_.emplace(*deadline, std::move(instance));
    stats_.table_peak = std::max(stats_.table_peak, table_.size());
  } else {
    dense_.push_back(std::move(instance));
  }
  peak_active_ = std::max(peak_active_, table_.size() + dense_.size());
}

void TlmCheckerWrapper::set_witness_depth(size_t depth) {
  witness_depth_ = depth;
  witness_ring_.clear();
  witness_ring_.shrink_to_fit();
  witness_next_ = 0;
}

void TlmCheckerWrapper::capture_witness(psl::TimeNs time,
                                        const ValueContext& values) {
  auto observables = values.witness_values();
  if (observables == nullptr) return;  // context cannot enumerate its signals
  if (witness_ring_.size() < witness_depth_) {
    witness_ring_.push_back({time, std::move(observables)});
  } else {
    witness_ring_[witness_next_] = {time, std::move(observables)};
    witness_next_ = (witness_next_ + 1) % witness_depth_;
  }
}

std::vector<WitnessEntry> TlmCheckerWrapper::witness_snapshot() const {
  // Oldest first: once the ring is full, witness_next_ points at the oldest
  // entry; before that, insertion order is already chronological.
  std::vector<WitnessEntry> out;
  out.reserve(witness_ring_.size());
  for (size_t i = 0; i < witness_ring_.size(); ++i) {
    out.push_back(witness_ring_[(witness_next_ + i) % witness_ring_.size()]);
  }
  return out;
}

std::unique_ptr<Instance> TlmCheckerWrapper::acquire() {
  if (!free_pool_.empty()) {
    auto instance = std::move(free_pool_.back());
    free_pool_.pop_back();
    ++stats_.reuses;
    return instance;
  }
  ++stats_.pool_capacity;
  return make_instance();
}

std::unique_ptr<Instance> TlmCheckerWrapper::make_instance() {
  if (batch_layout_ != nullptr) {
    for (const auto& block : blocks_) {
      if (block->has_free_lane()) {
        return std::make_unique<Instance>(block, block->allocate_lane());
      }
    }
    blocks_.push_back(std::make_shared<BatchState>(batch_layout_));
    return std::make_unique<Instance>(blocks_.back(),
                                      blocks_.back()->allocate_lane());
  }
  if (program_) return std::make_unique<Instance>(program_);
  return std::make_unique<Instance>(body_);
}

// Lockstep pre-pass: collect the instances this transaction is about to step
// — scheduled entries whose deadline has arrived plus every dense instance —
// group them by lane block, and advance each block once through the 64-wide
// kernel. The bookkeeping loops in on_transaction then consume the primed
// verdicts lane by lane, so stats ordering, table evolution, failure logs
// and the free-pool LIFO are identical to the scalar path by construction.
// Instances that get re-stepped within the same transaction (re-dued
// eps == 0 entries, table instances migrating to the dense list) have
// consumed their primed bit by then and self-prime, preserving the scalar
// double-step.
void TlmCheckerWrapper::prime_cohorts(psl::TimeNs time, const Event& ev) {
  prime_masks_.clear();
  const auto add = [&](const Instance& instance) {
    BatchState* block = instance.batch_block();
    if (block == nullptr) return;
    const uint64_t bit = uint64_t{1} << instance.batch_lane();
    for (auto& [b, mask] : prime_masks_) {
      if (b == block) {
        mask |= bit;
        return;
      }
    }
    prime_masks_.emplace_back(block, bit);
  };
  for (auto it = table_.begin(); it != table_.end() && it->first <= time;
       ++it) {
    add(*it->second);
  }
  for (const auto& instance : dense_) add(*instance);
  for (auto& [block, mask] : prime_masks_) {
    const int lanes = std::popcount(mask);
    const uint64_t t0 =
        trace_ != nullptr && lanes > 1 ? trace_->now_ns() : 0;
    block->prime(ev, mask);
    if (lanes > 1) {
      ++stats_.vector_batches;
      stats_.vector_lanes_filled += static_cast<uint64_t>(lanes);
      if (trace_ != nullptr) {
        const uint64_t t1 = trace_->now_ns();
        trace_->span(trace_tid_, "vector_batch", t0, t1 > t0 ? t1 - t0 : 0,
                     {{"lanes", static_cast<uint64_t>(lanes)}});
      }
    }
  }
}

void TlmCheckerWrapper::on_transaction(psl::TimeNs time, const ValueContext& values) {
  ++stats_.transactions;
  last_time_ = time;
  if (witness_depth_ > 0) capture_witness(time, values);
  const Event ev{time, &values};
  if (!blocks_.empty()) prime_cohorts(time, ev);

  // Sec. IV point 2: evaluate every scheduled instance whose deadline is at
  // or before `time`. An instance due strictly earlier missed its evaluation
  // point; feeding it this event lets the next_e nodes resolve it (to kFalse
  // unless the formula absorbs the miss).
  while (!table_.empty() && table_.begin()->first <= time) {
    if (table_.begin()->first < time) ++stats_.missed_deadlines;
    auto instance = std::move(table_.begin()->second);
    table_.erase(table_.begin());
    ++stats_.steps;
    stats_.node_visits += node_cost_;
    const Verdict v = instance->step(ev);
    if (v == Verdict::kPending) {
      place(std::move(instance));
    } else {
      retire(std::move(instance), v, time);
    }
  }

  // Dense instances observe every transaction.
  size_t keep = 0;
  for (size_t i = 0; i < dense_.size(); ++i) {
    ++stats_.steps;
    stats_.node_visits += node_cost_;
    const Verdict v = dense_[i]->step(ev);
    if (v == Verdict::kPending) {
      dense_[keep++] = std::move(dense_[i]);
    } else {
      retire(std::move(dense_[i]), v, time);
    }
  }
  dense_.resize(keep);

  // Sec. IV point 4: activate a new session at each transaction matching the
  // transaction context.
  if (!repeating_ && started_) {
    if (coverage_ != nullptr) sync_coverage();
    return;
  }
  if (guard_ && !eval_boolean(guard_, values)) {
    if (coverage_ != nullptr) sync_coverage();
    return;
  }
  started_ = true;

  auto instance = acquire();
  instance->set_activated_at(time);
  instance->set_exercised(antecedent_ == nullptr ||
                          eval_boolean(antecedent_, values));
  ++stats_.activations;
  ++stats_.steps;
  stats_.node_visits += node_cost_;
  const Verdict v = instance->step(ev);
  if (v == Verdict::kPending) {
    // Register the instance with its required evaluation points; trivially
    // resolved instances (e.g. antecedent false at firing) never get here.
    place(std::move(instance));
  } else {
    ++stats_.trivial;
    retire(std::move(instance), v, time);
  }
  if (coverage_ != nullptr) sync_coverage();
}

void TlmCheckerWrapper::finish() {
  // End-of-sim retirements are attributed to the last observed transaction
  // time: a dense instance failed *by* then, and a scheduled instance's
  // deadline may lie beyond the end of the trace.
  for (auto& [deadline, instance] : table_) {
    const Verdict v = instance->finish();
    retire(std::move(instance), v, std::min(deadline, last_time_));
  }
  table_.clear();
  for (auto& instance : dense_) {
    const Verdict v = instance->finish();
    retire(std::move(instance), v, last_time_);
  }
  dense_.clear();
  if (coverage_ != nullptr) sync_coverage();
}

void TlmCheckerWrapper::set_coverage(support::CoverageTable::Row* row) {
  coverage_ = row;
  if (coverage_ != nullptr) sync_coverage();
}

void TlmCheckerWrapper::sync_coverage() {
  // Single-writer mirror: this wrapper is the only writer of its row, so
  // relaxed stores of the current totals are enough for a reader to observe
  // a recent, internally-plausible state (exact after finish()).
  auto& row = *coverage_;
  const auto relaxed = std::memory_order_relaxed;
  row.activations.store(stats_.activations, relaxed);
  row.holds.store(stats_.holds, relaxed);
  row.failures.store(stats_.failures, relaxed);
  row.uncompleted.store(stats_.uncompleted, relaxed);
  row.trivial.store(stats_.trivial, relaxed);
  row.real_passes.store(stats_.real_passes, relaxed);
  row.vacuous_passes.store(stats_.vacuous_passes, relaxed);
  row.missed_deadlines.store(stats_.missed_deadlines, relaxed);
  row.node_visits.store(stats_.node_visits, relaxed);
}

}  // namespace repro::checker
