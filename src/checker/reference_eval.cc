#include "checker/reference_eval.h"

#include <cassert>

namespace repro::checker {
namespace {

using psl::ExprKind;
using psl::ExprPtr;

Verdict not3(Verdict v) {
  switch (v) {
    case Verdict::kTrue: return Verdict::kFalse;
    case Verdict::kFalse: return Verdict::kTrue;
    case Verdict::kPending: return Verdict::kPending;
  }
  return Verdict::kPending;
}

Verdict and3(Verdict a, Verdict b) {
  if (a == Verdict::kFalse || b == Verdict::kFalse) return Verdict::kFalse;
  if (a == Verdict::kPending || b == Verdict::kPending) return Verdict::kPending;
  return Verdict::kTrue;
}

Verdict or3(Verdict a, Verdict b) {
  if (a == Verdict::kTrue || b == Verdict::kTrue) return Verdict::kTrue;
  if (a == Verdict::kPending || b == Verdict::kPending) return Verdict::kPending;
  return Verdict::kFalse;
}

bool eval_atom_or_bool(const ExprPtr& b, const ValueContext& ctx) {
  return eval_boolean(b, ctx);
}

Verdict boundary(bool complete, bool weak) {
  if (!complete) return Verdict::kPending;
  return weak ? Verdict::kTrue : Verdict::kFalse;
}

Verdict eval(const ExprPtr& e, const Trace& trace, size_t i, bool complete) {
  assert(i < trace.size());
  switch (e->kind) {
    case ExprKind::kConstTrue:
      return Verdict::kTrue;
    case ExprKind::kConstFalse:
      return Verdict::kFalse;
    case ExprKind::kAtom:
      return eval_atom(e->atom, trace[i].values) ? Verdict::kTrue : Verdict::kFalse;
    case ExprKind::kNot:
      return not3(eval(e->lhs, trace, i, complete));
    case ExprKind::kAnd:
      return and3(eval(e->lhs, trace, i, complete),
                  eval(e->rhs, trace, i, complete));
    case ExprKind::kOr:
      return or3(eval(e->lhs, trace, i, complete),
                 eval(e->rhs, trace, i, complete));
    case ExprKind::kImplies:
      return or3(not3(eval(e->lhs, trace, i, complete)),
                 eval(e->rhs, trace, i, complete));
    case ExprKind::kNext: {
      const size_t target = i + e->next_count;
      if (target >= trace.size()) return boundary(complete, /*weak=*/true);
      return eval(e->lhs, trace, target, complete);
    }
    case ExprKind::kNextEps: {
      const psl::TimeNs target_time = trace[i].time + e->eps;
      for (size_t j = i + 1; j < trace.size(); ++j) {
        if (trace[j].time == target_time) return eval(e->lhs, trace, j, complete);
        if (trace[j].time > target_time) return Verdict::kFalse;
      }
      return boundary(complete, /*weak=*/true);
    }
    case ExprKind::kUntil: {
      // Three-valued fixpoint expansion, evaluated back-to-front:
      //   U(k) = q(k) || (p(k) && U(k+1)),  U(len) = boundary(strength).
      Verdict rest = boundary(complete, /*weak=*/!e->strong);
      for (size_t k = trace.size(); k-- > i;) {
        rest = or3(eval(e->rhs, trace, k, complete),
                   and3(eval(e->lhs, trace, k, complete), rest));
      }
      return rest;
    }
    case ExprKind::kRelease: {
      //   R(k) = q(k) && (p(k) || R(k+1)),  R(len) = boundary(weak).
      Verdict rest = boundary(complete, /*weak=*/true);
      for (size_t k = trace.size(); k-- > i;) {
        rest = and3(eval(e->rhs, trace, k, complete),
                    or3(eval(e->lhs, trace, k, complete), rest));
      }
      return rest;
    }
    case ExprKind::kAlways: {
      Verdict acc = Verdict::kTrue;
      for (size_t k = i; k < trace.size(); ++k) {
        acc = and3(acc, eval(e->lhs, trace, k, complete));
        if (acc == Verdict::kFalse) return Verdict::kFalse;
      }
      return and3(acc, boundary(complete, /*weak=*/true));
    }
    case ExprKind::kEventually: {
      Verdict acc = Verdict::kFalse;
      for (size_t k = i; k < trace.size(); ++k) {
        acc = or3(acc, eval(e->lhs, trace, k, complete));
        if (acc == Verdict::kTrue) return Verdict::kTrue;
      }
      return or3(acc, boundary(complete, /*weak=*/false));
    }
    case ExprKind::kAbort: {
      // p abort b: p runs until the first position where b holds; a pending
      // obligation is then discharged to true (abort) or false (abort!).
      size_t reset = trace.size();
      bool has_reset = false;
      for (size_t k = i; k < trace.size(); ++k) {
        if (eval_atom_or_bool(e->rhs, trace[k].values)) {
          reset = k;
          has_reset = true;
          break;
        }
      }
      const Verdict on_reset = e->strong ? Verdict::kFalse : Verdict::kTrue;
      const Trace prefix(trace.begin(), trace.begin() + reset);
      if (static_cast<size_t>(i) >= prefix.size()) {
        // Aborted at (or before) the anchor itself.
        return on_reset;
      }
      const Verdict v = eval(e->lhs, prefix, i, /*complete=*/false);
      if (v != Verdict::kPending) return v;
      // Still pending at the reset point: discharged; still pending at the
      // (unaborted) end of trace: defer to the usual boundary handling.
      if (has_reset) return on_reset;
      return complete ? eval(e->lhs, trace, i, /*complete=*/true)
                      : Verdict::kPending;
    }
  }
  assert(false && "unreachable");
  return Verdict::kPending;
}

}  // namespace

Verdict reference_eval(const ExprPtr& e, const Trace& trace, size_t position,
                       bool complete) {
  assert(e);
  return eval(e, trace, position, complete);
}

Verdict reference_eval_always(const ExprPtr& e, const Trace& trace, bool complete) {
  Verdict acc = Verdict::kTrue;
  for (size_t i = 0; i < trace.size(); ++i) {
    acc = and3(acc, eval(e, trace, i, complete));
    if (acc == Verdict::kFalse) return Verdict::kFalse;
  }
  return acc;
}

}  // namespace repro::checker
