#include "checker/codegen.h"

#include <cassert>

namespace repro::checker {
namespace {

using psl::Expr;
using psl::ExprKind;
using psl::ExprPtr;

// Renders a boolean subformula as a C++ expression over `v`.
std::string bool_expr(const ExprPtr& e) {
  assert(psl::is_boolean(e));
  switch (e->kind) {
    case ExprKind::kConstTrue:
      return "true";
    case ExprKind::kConstFalse:
      return "false";
    case ExprKind::kAtom: {
      const psl::Atom& a = e->atom;
      const std::string lhs = "v." + a.lhs;
      if (a.op == psl::CmpOp::kTruthy) return "(" + lhs + " != 0)";
      const std::string rhs =
          a.rhs_is_signal ? "v." + a.rhs_signal : std::to_string(a.rhs_value);
      const char* op = "==";
      switch (a.op) {
        case psl::CmpOp::kEq: op = "=="; break;
        case psl::CmpOp::kNe: op = "!="; break;
        case psl::CmpOp::kLt: op = "<"; break;
        case psl::CmpOp::kLe: op = "<="; break;
        case psl::CmpOp::kGt: op = ">"; break;
        case psl::CmpOp::kGe: op = ">="; break;
        case psl::CmpOp::kTruthy: break;
      }
      return "(" + lhs + " " + op + " " + rhs + ")";
    }
    case ExprKind::kNot:
      return "!" + bool_expr(e->lhs);
    case ExprKind::kAnd:
      return "(" + bool_expr(e->lhs) + " && " + bool_expr(e->rhs) + ")";
    case ExprKind::kOr:
      return "(" + bool_expr(e->lhs) + " || " + bool_expr(e->rhs) + ")";
    case ExprKind::kImplies:
      return "(!" + bool_expr(e->lhs) + " || " + bool_expr(e->rhs) + ")";
    default:
      assert(false);
      return "false";
  }
}

// One generated operand: either an inline boolean expression or a stateful
// child struct with step/finish functions.
struct Operand {
  bool boolean = false;
  std::string expr;         // boolean: C++ expression
  int id = -1;              // stateful: struct/function suffix
  std::string struct_name;  // stateful: "S<id>"

  // Code fragments to evaluate the operand at the current event / finish,
  // given the member access path to its state (e.g. "s.c3" or "pos.p").
  std::string step(const std::string& path) const {
    if (boolean) return "(" + expr + " ? V_T : V_F)";
    return "step_" + std::to_string(id) + "(" + path + ", t, v)";
  }
  std::string fin(const std::string& path) const {
    if (boolean) return "V_P";  // a boolean never anchored stays pending
    return "finish_" + std::to_string(id) + "(" + path + ")";
  }
  std::string field(const std::string& name) const {
    if (boolean) return "";
    return "  " + struct_name + " " + name + ";\n";
  }
};

class Generator {
 public:
  // Emits structs + step/finish functions for `e`; returns its operand.
  Operand gen(const ExprPtr& e) {
    if (psl::is_boolean(e)) {
      Operand op;
      op.boolean = true;
      op.expr = bool_expr(e);
      return op;
    }
    switch (e->kind) {
      case ExprKind::kNot:
        return gen_not(e);
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kImplies:
        return gen_binary(e);
      case ExprKind::kNext:
        return gen_next(e);
      case ExprKind::kNextEps:
        return gen_next_eps(e);
      case ExprKind::kUntil:
      case ExprKind::kRelease:
        return gen_fixpoint(e);
      case ExprKind::kAlways:
      case ExprKind::kEventually:
        return gen_spawn(e);
      case ExprKind::kAbort:
        return gen_abort(e);
      default:
        assert(false && "unexpected node kind");
        return {};
    }
  }

  std::string body;  // struct + function definitions, children first

 private:
  Operand fresh(const char* /*kind*/) {
    Operand op;
    op.id = next_id_++;
    op.struct_name = "S" + std::to_string(op.id);
    return op;
  }

  // Emits one stateful node: its struct (with `fields` and child members)
  // and its step/finish functions with the given bodies.
  void emit(const Operand& op, const std::string& fields,
            const std::string& step_body, const std::string& finish_body) {
    const std::string id = std::to_string(op.id);
    body += "struct " + op.struct_name + " {\n  int8_t verdict = V_P;\n" +
            fields + "};\n";
    body += "static inline int8_t step_" + id + "(" + op.struct_name +
            "& s, uint64_t t, const Values& v) {\n"
            "  if (s.verdict != V_P) return s.verdict;\n"
            "  (void)t; (void)v;\n" +
            step_body + "}\n";
    body += "static inline int8_t finish_" + id + "(" + op.struct_name +
            "& s) {\n  if (s.verdict != V_P) return s.verdict;\n" +
            finish_body + "}\n\n";
  }

  Operand gen_not(const ExprPtr& e) {
    const Operand child = gen(e->lhs);
    Operand op = fresh("not");
    emit(op, child.field("c"),
         "  s.verdict = not3(" + child.step("s.c") + ");\n  return s.verdict;\n",
         "  s.verdict = not3(" + child.fin("s.c") + ");\n  return s.verdict;\n");
    return op;
  }

  Operand gen_binary(const ExprPtr& e) {
    const Operand lhs = gen(e->lhs);
    const Operand rhs = gen(e->rhs);
    Operand op = fresh("bin");
    std::string comb, short_circuit;
    switch (e->kind) {
      case ExprKind::kAnd:
        comb = "and3(a, b)";
        short_circuit = "  if (a == V_F) { s.verdict = V_F; return V_F; }\n";
        break;
      case ExprKind::kOr:
        comb = "or3(a, b)";
        short_circuit = "  if (a == V_T) { s.verdict = V_T; return V_T; }\n";
        break;
      default:  // implies
        comb = "or3(not3(a), b)";
        short_circuit = "  if (a == V_F) { s.verdict = V_T; return V_T; }\n";
        break;
    }
    // Boolean operands are sampled once, at the node's anchor event; their
    // verdicts live in cached slots (stateful operands cache internally and
    // must be stepped at every event while pending).
    const std::string step_a =
        lhs.boolean ? "  if (s.av == V_P) s.av = " + lhs.step("") + ";\n"
                    : "  s.av = " + lhs.step("s.a") + ";\n";
    const std::string step_b =
        rhs.boolean ? "  if (s.bv == V_P) s.bv = " + rhs.step("") + ";\n"
                    : "  s.bv = " + rhs.step("s.b") + ";\n";
    const std::string fin_a =
        lhs.boolean ? "" : "  if (s.av == V_P) s.av = " + lhs.fin("s.a") + ";\n";
    const std::string fin_b =
        rhs.boolean ? "" : "  if (s.bv == V_P) s.bv = " + rhs.fin("s.b") + ";\n";
    emit(op,
         lhs.field("a") + rhs.field("b") +
             "  int8_t av = V_P;\n  int8_t bv = V_P;\n",
         step_a + "  {\n    const int8_t a = s.av;\n  " + short_circuit +
             "  }\n" + step_b +
             "  s.verdict = [&]{ const int8_t a = s.av, b = s.bv; return " +
             comb + "; }();\n  return s.verdict;\n",
         fin_a + fin_b +
             "  s.verdict = [&]{ const int8_t a = s.av, b = s.bv; return " +
             comb + "; }();\n  return s.verdict;\n");
    return op;
  }

  Operand gen_next(const ExprPtr& e) {
    const Operand child = gen(e->lhs);
    Operand op = fresh("next");
    const std::string n = std::to_string(e->next_count);
    emit(op,
         "  uint32_t skipped = 0;\n  bool armed = false;\n" + child.field("c"),
         "  if (!s.armed) {\n"
         "    if (s.skipped < " + n + ") { ++s.skipped; return V_P; }\n"
         "    s.armed = true;\n"
         "  }\n"
         "  s.verdict = " + child.step("s.c") + ";\n  return s.verdict;\n",
         "  s.verdict = s.armed ? " + child.fin("s.c") +
             " : V_T;\n  return s.verdict;\n");
    return op;
  }

  Operand gen_next_eps(const ExprPtr& e) {
    const Operand child = gen(e->lhs);
    Operand op = fresh("next_eps");
    const std::string eps = std::to_string(e->eps);
    emit(op,
         "  bool anchored = false;\n  bool armed = false;\n"
         "  uint64_t target = 0;\n" + child.field("c"),
         "  if (!s.anchored) { s.anchored = true; s.target = t + " + eps +
             "; return V_P; }\n"
             "  if (!s.armed) {\n"
             "    if (t < s.target) return V_P;\n"
             "    if (t > s.target) { s.verdict = V_F; return V_F; }\n"
             "    s.armed = true;\n"
             "  }\n"
             "  s.verdict = " + child.step("s.c") + ";\n  return s.verdict;\n",
         "  s.verdict = s.armed ? " + child.fin("s.c") +
             " : V_T;\n  return s.verdict;\n");
    return op;
  }

  Operand gen_fixpoint(const ExprPtr& e) {
    const Operand p = gen(e->lhs);
    const Operand q = gen(e->rhs);
    Operand op = fresh("fix");
    const std::string id = std::to_string(op.id);
    const bool is_until = e->kind == ExprKind::kUntil;
    const std::string fold = is_until ? "or3(s.pos[i].qv, and3(s.pos[i].pv, rest))"
                                      : "and3(s.pos[i].qv, or3(s.pos[i].pv, rest))";
    const std::string boundary =
        (is_until && e->strong) ? "V_F" : "V_T";  // release and weak until: true
    const std::string pos_struct =
        "struct Pos" + id + " {\n" + p.field("p") + q.field("q") +
        "  int8_t pv = V_P;\n  int8_t qv = V_P;\n};\n";
    body += pos_struct;
    emit(op, "  std::vector<Pos" + id + "> pos;\n",
         "  for (auto& pos : s.pos) {\n"
         "    if (pos.pv == V_P) pos.pv = " + p.step("pos.p") + ";\n"
         "    if (pos.qv == V_P) pos.qv = " + q.step("pos.q") + ";\n"
         "  }\n"
         "  s.pos.emplace_back();\n"
         "  s.pos.back().pv = " + p.step("s.pos.back().p") + ";\n"
         "  s.pos.back().qv = " + q.step("s.pos.back().q") + ";\n"
         "  int8_t rest = V_P;\n"
         "  for (size_t i = s.pos.size(); i-- > 0;) rest = " + fold + ";\n"
         "  if (rest != V_P) { s.pos.clear(); s.verdict = rest; }\n"
         "  return rest;\n",
         "  for (auto& pos : s.pos) {\n"
         "    if (pos.pv == V_P) pos.pv = " + p.fin("pos.p") + ";\n"
         "    if (pos.qv == V_P) pos.qv = " + q.fin("pos.q") + ";\n"
         "    if (pos.pv == V_P) pos.pv = V_T;\n"   // boolean leaf never anchored
         "    if (pos.qv == V_P) pos.qv = V_T;\n"
         "  }\n"
         "  int8_t rest = " + boundary + ";\n"
         "  for (size_t i = s.pos.size(); i-- > 0;) rest = " + fold + ";\n"
         "  s.verdict = rest;\n  return rest;\n");
    return op;
  }

  Operand gen_spawn(const ExprPtr& e) {
    const Operand child = gen(e->lhs);
    Operand op = fresh("spawn");
    const bool is_always = e->kind == ExprKind::kAlways;
    const std::string kill = is_always ? "V_F" : "V_T";   // resolves the node
    const std::string boundary = is_always ? "V_T" : "V_F";
    if (child.boolean) {
      // always/eventually! over a boolean needs no child state: the operand
      // resolves at each event on its own.
      emit(op, "",
           "  const int8_t r = " + child.step("") + ";\n"
           "  if (r == " + kill + ") { s.verdict = " + kill +
               "; return s.verdict; }\n  return V_P;\n",
           "  s.verdict = " + boundary + ";\n  return s.verdict;\n");
      return op;
    }
    emit(op, "  std::vector<" + child.struct_name + "> kids;\n",
         "  s.kids.emplace_back();\n"
         "  size_t keep = 0;\n"
         "  for (size_t i = 0; i < s.kids.size(); ++i) {\n"
         "    const int8_t r = " + child.step("s.kids[i]") + ";\n"
         "    if (r == " + kill + ") { s.verdict = " + kill + "; return s.verdict; }\n"
         "    if (r == V_P) s.kids[keep++] = s.kids[i];\n"
         "  }\n"
         "  s.kids.resize(keep);\n"
         "  return V_P;\n",
         "  for (auto& kid : s.kids) {\n"
         "    const int8_t r = " + child.fin("kid") + ";\n"
         "    if (r == " + kill + ") { s.verdict = " + kill + "; return s.verdict; }\n"
         "    (void)r;\n"
         "  }\n"
         "  s.verdict = " + boundary + ";\n  return s.verdict;\n");
    return op;
  }

  Operand gen_abort(const ExprPtr& e) {
    const Operand child = gen(e->lhs);
    const std::string cond = bool_expr(e->rhs);
    const std::string on_reset = e->strong ? "V_F" : "V_T";
    Operand op = fresh("abort");
    emit(op, "  bool armed = false;\n" + child.field("c"),
         "  if (" + cond + ") { s.verdict = " + on_reset + "; return " +
             on_reset + "; }\n"
         "  s.armed = true;\n"
         "  s.verdict = " + child.step("s.c") + ";\n  return s.verdict;\n",
         "  s.verdict = s.armed ? " + child.fin("s.c") +
             " : V_T;\n  return s.verdict;\n");
    return op;
  }

  int next_id_ = 0;
};

}  // namespace

std::string generate_checker_source(const std::string& class_name,
                                    const psl::ExprPtr& formula,
                                    const psl::ExprPtr& guard,
                                    const std::string& header_comment) {
  assert(formula);
  // Strip the leading always chain: it maps to per-event activation.
  ExprPtr body_formula = formula;
  bool repeating = false;
  while (body_formula->kind == ExprKind::kAlways) {
    repeating = true;
    body_formula = body_formula->lhs;
  }

  std::set<std::string> signals = psl::referenced_signals(formula);
  if (guard) {
    for (const std::string& s : psl::referenced_signals(guard)) signals.insert(s);
  }

  std::string out;
  out += "// Generated checker -- do not edit.\n";
  if (!header_comment.empty()) out += "// " + header_comment + "\n";
  out += "// property: " + psl::to_string(formula) + "\n";
  out += "#pragma once\n#include <cstdint>\n#include <cstddef>\n#include <utility>\n#include <vector>\n\n";
  out += "namespace gen_" + class_name + " {\n\n";
  out += "enum : int8_t { V_P = -1, V_F = 0, V_T = 1 };\n";
  out += "static inline int8_t not3(int8_t a) { return a == V_P ? V_P : (a == V_T ? V_F : V_T); }\n";
  out += "static inline int8_t and3(int8_t a, int8_t b) {\n"
         "  if (a == V_F || b == V_F) return V_F;\n"
         "  if (a == V_P || b == V_P) return V_P;\n  return V_T;\n}\n";
  out += "static inline int8_t or3(int8_t a, int8_t b) {\n"
         "  if (a == V_T || b == V_T) return V_T;\n"
         "  if (a == V_P || b == V_P) return V_P;\n  return V_F;\n}\n\n";
  out += "struct Values {\n";
  for (const std::string& s : signals) out += "  uint64_t " + s + " = 0;\n";
  out += "};\n\n";

  Generator generator;
  const bool pure_boolean = psl::is_boolean(body_formula);
  Operand root;
  if (!pure_boolean) {
    root = generator.gen(body_formula);
    out += generator.body;
  }

  const std::string guard_expr = guard ? bool_expr(guard) : "true";
  out += "class " + class_name + " {\n public:\n";
  out += "  void on_event(uint64_t t, const Values& v) {\n";
  out += "    ++events_;\n";
  if (!pure_boolean) {
    out += "    size_t keep = 0;\n"
           "    for (size_t i = 0; i < active_.size(); ++i) {\n"
           "      const int8_t r = " + root.step("active_[i]") + ";\n"
           "      if (r == V_P) { active_[keep++] = std::move(active_[i]); continue; }\n"
           "      if (r == V_F) ++failures_; else ++holds_;\n"
           "    }\n"
           "    active_.resize(keep);\n";
  }
  out += "    if (!(" + guard_expr + ")) return;\n";
  if (!repeating) {
    out += "    if (started_) return;\n    started_ = true;\n";
  }
  out += "    ++activations_;\n";
  if (pure_boolean) {
    out += "    if (" + bool_expr(body_formula) +
           ") ++holds_; else ++failures_;\n";
  } else {
    out += "    active_.emplace_back();\n"
           "    const int8_t r = " + root.step("active_.back()") + ";\n"
           "    if (r != V_P) {\n"
           "      if (r == V_F) ++failures_; else ++holds_;\n"
           "      active_.pop_back();\n"
           "    }\n";
  }
  out += "  }\n\n";
  out += "  void finish() {\n";
  if (!pure_boolean) {
    out += "    for (auto& inst : active_) {\n"
           "      const int8_t r = " + root.fin("inst") + ";\n"
           "      if (r == V_F) ++failures_; else if (r == V_T) ++holds_;\n"
           "      else ++uncompleted_;\n"
           "    }\n"
           "    active_.clear();\n";
  }
  out += "  }\n\n";
  out += "  uint64_t events() const { return events_; }\n"
         "  uint64_t activations() const { return activations_; }\n"
         "  uint64_t holds() const { return holds_; }\n"
         "  uint64_t failures() const { return failures_; }\n"
         "  uint64_t uncompleted() const { return uncompleted_; }\n"
         "  bool ok() const { return failures_ == 0; }\n\n";
  out += " private:\n";
  if (!pure_boolean) {
    out += "  std::vector<" + root.struct_name + "> active_;\n";
  }
  if (!repeating) out += "  bool started_ = false;\n";
  out += "  uint64_t events_ = 0;\n  uint64_t activations_ = 0;\n"
         "  uint64_t holds_ = 0;\n  uint64_t failures_ = 0;\n"
         "  uint64_t uncompleted_ = 0;\n";
  out += "};\n\n}  // namespace gen_" + class_name + "\n";
  return out;
}

std::string generate_checker(const psl::RtlProperty& property) {
  const std::string name =
      (property.name.empty() ? std::string("property") : property.name) +
      "_checker";
  return generate_checker_source(
      name, property.formula, property.context.guard,
      "RTL property, clock context " + psl::to_string(property.context));
}

std::string generate_checker(const psl::TlmProperty& property) {
  const std::string name =
      (property.name.empty() ? std::string("property") : property.name) +
      "_checker";
  return generate_checker_source(
      name, property.formula, property.context.guard,
      "TLM property, transaction context " + psl::to_string(property.context));
}

}  // namespace repro::checker
