// Incremental checker instance: the synthesized form of one property
// evaluation session (Sec. IV).
//
// An Instance is anchored at one evaluation point (clock edge / transaction
// end). Its first step() call receives the anchor event; subsequent calls
// receive the following events of the stream. The instance maintains an
// obligation tree mirroring the formula and resolves to kTrue/kFalse as soon
// as the verdict is determined; finish() applies end-of-trace (truncated)
// semantics. The semantics implemented here is cross-validated against
// reference_eval in the test suite.
//
// Instances are reusable: reset() restores the fresh state so a wrapper can
// recycle completed instances (step 3 of the Sec. IV wrapper behaviour).
#ifndef REPRO_CHECKER_INSTANCE_H_
#define REPRO_CHECKER_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "checker/batch.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "psl/ast.h"

namespace repro::checker {

namespace detail {

// Obligation-tree node. Nodes are created just before their anchor event is
// fed; step() is called with the anchor event first, then each later event.
class Node {
 public:
  virtual ~Node() = default;
  virtual Verdict step(const Event& ev) = 0;
  // End of trace: resolve weak obligations to kTrue, strong ones to kFalse.
  virtual Verdict finish() = 0;
  // Collects the wall-clock instants at which this subtree must next be
  // evaluated (targets of unresolved next_e nodes). Returns false if the
  // subtree needs to observe every event (until/release/always/...).
  virtual bool collect_deadlines(std::vector<psl::TimeNs>& out) const = 0;
  // Restores the fresh (pre-anchor) state in place, without reallocating
  // the obligation tree — this is what makes wrapper instance reuse
  // (Sec. IV point 3) cheap.
  virtual void reset() = 0;
};

std::unique_ptr<Node> make_node(const psl::ExprPtr& e);

}  // namespace detail

class Instance {
 public:
  // Interpreter backend: builds a virtual-dispatch obligation tree.
  explicit Instance(psl::ExprPtr formula);
  // Compiled backend: flat state over a shared immutable Program.
  explicit Instance(std::shared_ptr<const Program> program);
  // Vectorized backend: one lane of a shared 64-wide lockstep block. The
  // lane must already be allocated; the instance owns it and returns it to
  // the block on destruction.
  Instance(std::shared_ptr<BatchState> block, uint32_t lane);
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  // Feeds the next event; the first call anchors the instance. Returns the
  // verdict after consuming the event.
  Verdict step(const Event& ev);

  // Declares the trace complete and resolves the remaining obligations.
  Verdict finish();

  Verdict verdict() const { return verdict_; }
  bool resolved() const { return verdict_ != Verdict::kPending; }

  // Earliest wall-clock instant at which this instance must be evaluated
  // next, if the pending obligations are purely time-scheduled (next_e).
  // nullopt when the instance must see every event or is resolved.
  std::optional<psl::TimeNs> next_deadline() const;

  // Restores the instance to its fresh (pre-anchor) state for reuse.
  void reset();

  // Activation bookkeeping for the wrapper's activation-to-verdict latency
  // metric: set by the owner at the anchor event, read at retirement.
  void set_activated_at(psl::TimeNs t) { activated_at_ = t; }
  psl::TimeNs activated_at() const { return activated_at_; }

  // "Consequent exercised" bit for vacuity telemetry: the owner evaluates
  // the property's derived antecedent at the anchor event and records the
  // outcome here; retirement counts a kTrue verdict as a real pass when the
  // bit is set and a vacuous pass otherwise. Lane-backed instances keep the
  // bit in the block's per-lane plane so lane recycling clears it with the
  // rest of the lane state.
  void set_exercised(bool v) {
    if (block_ != nullptr) {
      block_->set_exercised(lane_, v);
    } else {
      exercised_ = v;
    }
  }
  bool exercised() const {
    return block_ != nullptr ? block_->exercised(lane_) : exercised_;
  }

  // True when this instance runs on a compiled backend (flat program state
  // or a lockstep lane).
  bool compiled() const { return state_.has_value() || block_ != nullptr; }

  // Lockstep block backing this instance (nullptr on the scalar backends)
  // and the lane it occupies; the owner uses these to group instances into
  // prime() cohorts.
  BatchState* batch_block() const { return block_.get(); }
  uint32_t batch_lane() const { return lane_; }

 private:
  psl::ExprPtr formula_;
  std::unique_ptr<detail::Node> root_;   // interpreter backend
  std::optional<ProgramState> state_;    // compiled backend
  std::shared_ptr<BatchState> block_;    // vectorized backend
  uint32_t lane_ = 0;                    // lane within block_
  Verdict verdict_ = Verdict::kPending;
  psl::TimeNs activated_at_ = 0;
  bool exercised_ = false;  // scalar backends; lane-backed bit lives in block_
};

}  // namespace repro::checker

#endif  // REPRO_CHECKER_INSTANCE_H_
