// Trace serialization: a simple CSV dialect for recorded evaluation-event
// streams, so traces captured from a simulator (or written by hand) can be
// checked offline with the trace checker example (examples/tracecheck.cpp).
//
// Format: first line is the header `time,<sig1>,<sig2>,...`; each following
// line is one evaluation event with a strictly increasing decimal time (ns)
// and one decimal or 0x-hex value per signal. Blank lines and lines starting
// with '#' are ignored.
//
//   time,ds,indata,out,rdy
//   10,1,0,0,0
//   20,0,0,0,0
//   180,0,0,0x9d2a73f1,1
#ifndef REPRO_CHECKER_TRACE_IO_H_
#define REPRO_CHECKER_TRACE_IO_H_

#include <string>
#include <string_view>

#include "checker/trace.h"
#include "support/status.h"

namespace repro::checker {

// Parses a CSV trace; fails on malformed headers, rows with the wrong arity,
// unparsable values, or non-increasing timestamps.
Result<Trace> parse_trace_csv(std::string_view text);

// Serializes a trace. The signal columns are the union of the signals
// appearing in the first observation (all observations must agree).
std::string to_csv(const Trace& trace);

}  // namespace repro::checker

#endif  // REPRO_CHECKER_TRACE_IO_H_
