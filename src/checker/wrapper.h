// The Sec. IV wrapper: executes checker instances of an abstracted (TLM)
// property at the correct simulation instants.
//
// The wrapper implements the four behaviours of Sec. IV:
//   1. allocation of checker instances — a pool sized by the property
//      lifetime (the maximum number of instants where transactions can
//      occur between firing and completion);
//   2. evaluation of active instances — an evaluation table maps the next
//      required evaluation time of each scheduled instance to the instance;
//      on a transaction at time t, instances due at t are evaluated and
//      instances whose deadline passed (t' < t) resolve per next_e
//      semantics (a missed evaluation point is a failure unless the formula
//      absorbs it);
//   3. reset and reuse of instances that reached their completion time;
//   4. activation of a new instance at each transaction matching the
//      transaction context, skipping registration when the instance is
//      trivially resolved at its firing point.
//
// Properties whose pending obligations are not purely time-scheduled
// (until/release/eventually) are kept on a dense list and see every
// transaction; this is the graceful degradation for until-based TLM
// properties like q2 of Fig. 3.
#ifndef REPRO_CHECKER_WRAPPER_H_
#define REPRO_CHECKER_WRAPPER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <utility>

#include "checker/batch.h"
#include "checker/checker.h"
#include "checker/instance.h"
#include "psl/ast.h"
#include "support/coverage.h"
#include "support/metrics.h"
#include "support/trace_sink.h"

namespace repro::checker {

// Static sizing of a wrapper's checker-instance pool (Sec. IV point 1),
// shared with the pre-simulation checker-sizing analysis pass. `bounded` is
// false when the formula (below its top-level always chain) contains a
// fixpoint operator (until/release/always/eventually/abort), in which case
// the pool has no static bound and grows on demand. For bounded formulas
// `instants` is the instance lifetime in transaction instants: with timing
// equivalence those instants are multiples of the RTL clock period, so
// lifetime = ceil(max next_e window / clock period) — the ceiling matters
// when a window is not a multiple of the period, where truncation would
// undersize the pool and the deadline horizon.
struct LifetimeInfo {
  bool bounded = true;
  size_t instants = 0;       // 0 when unbounded or purely boolean
  psl::TimeNs max_eps = 0;   // largest next_e window below the always chain
};

LifetimeInfo compute_lifetime(const psl::ExprPtr& formula,
                              psl::TimeNs clock_period_ns);

struct WrapperStats {
  uint64_t transactions = 0;   // transaction-end events observed
  uint64_t activations = 0;    // verification sessions started
  uint64_t failures = 0;
  uint64_t holds = 0;
  uint64_t trivial = 0;  // sessions resolved at their firing transaction
  uint64_t uncompleted = 0;
  uint64_t reuses = 0;         // sessions served by a recycled instance
  uint64_t steps = 0;          // instance step() calls
  // Vacuity split of `holds` (holds == real_passes + vacuous_passes); see
  // CheckerStats and DESIGN.md §13.
  uint64_t real_passes = 0;
  uint64_t vacuous_passes = 0;
  // Evaluation-table entries popped strictly past their deadline (the
  // out-of-order/missed evaluation points of Sec. IV point 2); the next_e
  // semantics decide whether the miss is absorbed or fails the instance.
  uint64_t missed_deadlines = 0;
  // steps x formula node count (deterministic cost proxy; see CheckerStats).
  uint64_t node_visits = 0;
  size_t pool_capacity = 0;    // live instances (active + pooled)
  size_t pool_dropped = 0;     // instances freed by the free-pool cap
  size_t table_peak = 0;       // peak size of the evaluation table
  // Lockstep accounting (vectorized backend only; absent from reports, so
  // the JSON stays byte-identical with vectorization on or off).
  uint64_t vector_batches = 0;       // multi-lane prime() calls
  uint64_t vector_lanes_filled = 0;  // lanes advanced by those calls
};

class TlmCheckerWrapper {
 public:
  // `clock_period_ns` is the reference RTL clock period; together with the
  // formula's maximum next_e window it determines the instance-pool size
  // preallocated up front (Sec. IV point 1). A property with unbounded
  // lifetime (until-based) starts with an empty pool that grows on demand.
  // `options` selects the instance backend and the failure-log cap.
  TlmCheckerWrapper(const psl::TlmProperty& property, psl::TimeNs clock_period_ns,
                    CheckerOptions options = {});

  // End of one transaction at time `time`, with the DUV observables.
  void on_transaction(psl::TimeNs time, const ValueContext& values);

  // End of simulation.
  void finish();

  const std::string& name() const { return name_; }
  const WrapperStats& stats() const { return stats_; }
  const std::vector<Failure>& failures() const { return failure_log_; }
  bool ok() const { return stats_.failures == 0; }

  // Lifetime in instants, as computed per Sec. IV (0 if unbounded).
  size_t lifetime() const { return lifetime_; }

  const CheckerOptions& options() const { return options_; }
  // Compiled program shared by this wrapper's instances; nullptr on the
  // interpreter backend.
  const std::shared_ptr<const Program>& program() const { return program_; }

  // Replaces the compiled program with one built from `formula` (e.g. the
  // parity-gated dead-node fold of an analysis PruneDecision). The original
  // formula keeps driving everything observable — lifetime, pool sizing and
  // the node_visits cost proxy — so reports stay byte-identical; only the
  // executed node table shrinks. Must be called before the first
  // transaction; no-op on nullptr or the interpreter backend.
  void set_program_formula(const psl::ExprPtr& formula);

  // --- Observability -------------------------------------------------------

  // Resizes the failure-witness ring buffer (recent transactions dumped
  // alongside each failure verdict). 0 disables capture. Call before the
  // first on_transaction; resizing discards buffered entries.
  void set_witness_depth(size_t depth);
  size_t witness_depth() const { return witness_depth_; }

  // Emits an instant trace event on lane `tid` for every failure verdict.
  // The sink must outlive the wrapper; nullptr disables emission.
  void set_trace(support::TraceSink* sink, uint32_t tid) {
    trace_ = sink;
    trace_tid_ = tid;
  }

  // Activation-to-verdict latency in simulation nanoseconds, one sample per
  // retired session. Deterministic for a given transaction stream.
  const support::Histogram& latency_histogram() const { return latency_ns_; }

  // The derived antecedent/guard (derive_antecedent on the stripped body);
  // nullptr when the body has no guard shape (every pass is then real).
  const psl::ExprPtr& antecedent() const { return antecedent_; }

  // Attaches the live coverage row this wrapper mirrors its stats into at
  // the end of every transaction (relaxed stores; see support/coverage.h).
  // nullptr detaches. The row must outlive the wrapper.
  void set_coverage(support::CoverageTable::Row* row);

 private:
  void sync_coverage();
  void retire(std::unique_ptr<Instance> instance, Verdict v, psl::TimeNs time);
  void place(std::unique_ptr<Instance> instance);
  std::unique_ptr<Instance> acquire();
  std::unique_ptr<Instance> make_instance();
  void prime_cohorts(psl::TimeNs time, const Event& ev);
  void capture_witness(psl::TimeNs time, const ValueContext& values);
  std::vector<WitnessEntry> witness_snapshot() const;

  std::string name_;
  psl::ExprPtr formula_;   // keeps the AST alive
  psl::ExprPtr body_;      // formula with top-level always stripped
  psl::ExprPtr guard_;     // transaction-context guard, may be nullptr
  CheckerOptions options_;
  std::shared_ptr<const Program> program_;  // compiled backend only
  // Vectorized backend: the shared lockstep layout and the lane blocks the
  // instances live in (one block per 64 concurrent instances). Empty when
  // the program is unsupported or vectorization is off.
  std::shared_ptr<const ProgramBatch> batch_layout_;
  std::vector<std::shared_ptr<BatchState>> blocks_;
  // Reused per-transaction scratch of the prime pre-pass (block -> lanes).
  std::vector<std::pair<BatchState*, uint64_t>> prime_masks_;
  bool repeating_ = false;
  bool started_ = false;
  size_t lifetime_ = 0;
  // Last transaction-end time observed; end-of-sim retirements are reported
  // at this instant (never later than the end of the trace).
  psl::TimeNs last_time_ = 0;
  // High-water mark of concurrently scheduled + dense instances; caps the
  // free pool of unbounded (until-based) properties.
  size_t peak_active_ = 0;

  // Evaluation table: next required evaluation time -> scheduled instance.
  std::multimap<psl::TimeNs, std::unique_ptr<Instance>> table_;
  // Instances that must observe every transaction.
  std::vector<std::unique_ptr<Instance>> dense_;
  // Reset instances ready for reuse.
  std::vector<std::unique_ptr<Instance>> free_pool_;

  WrapperStats stats_;
  std::vector<Failure> failure_log_;

  // Failure-witness ring buffer: the last `witness_depth_` transactions,
  // written circularly (witness_next_ is the overwrite position once full).
  size_t witness_depth_ = 8;
  std::vector<WitnessEntry> witness_ring_;
  size_t witness_next_ = 0;

  // Activation-to-verdict latency in simulation ns.
  support::Histogram latency_ns_;

  psl::ExprPtr antecedent_;  // derived guard, may be nullptr
  uint64_t node_cost_ = 0;   // node_count(body_), the node_visits increment
  support::CoverageTable::Row* coverage_ = nullptr;

  support::TraceSink* trace_ = nullptr;
  uint32_t trace_tid_ = 0;
};

}  // namespace repro::checker

#endif  // REPRO_CHECKER_WRAPPER_H_
