// Checker synthesis as code generation (the FoCs role in the paper's flow).
//
// Emits a standalone, dependency-free C++17 source file implementing a
// dynamic checker for one property. The generated monitor has the same
// semantics as the in-process Instance/PropertyChecker machinery (the
// differential test compiles and runs generated checkers against the
// library on shared traces):
//
//   class q3_checker {
//    public:
//     struct Values { uint64_t ds; uint64_t rdy; };   // typed observables
//     void on_event(uint64_t time_ns, const Values& v);
//     void finish();
//     uint64_t failures() const;  // holds(), activations(), events()
//   };
//
// Boolean subformulas compile to inline expressions; each temporal operator
// becomes a plain struct with explicit state and a step function — no
// virtual dispatch, no library dependency. Generated checkers construct a
// fresh obligation per activation (no instance pooling): they favour
// integration simplicity over the wrapper's recycling optimization.
#ifndef REPRO_CHECKER_CODEGEN_H_
#define REPRO_CHECKER_CODEGEN_H_

#include <string>

#include "psl/ast.h"

namespace repro::checker {

// Generates the full source text of a checker for `formula` under the
// optional boolean activation `guard` (nullptr = activate at every event).
// `class_name` must be a valid C++ identifier; `header_comment` is included
// verbatim at the top.
std::string generate_checker_source(const std::string& class_name,
                                    const psl::ExprPtr& formula,
                                    const psl::ExprPtr& guard,
                                    const std::string& header_comment);

// Convenience wrappers naming the class `<name>_checker`.
std::string generate_checker(const psl::RtlProperty& property);
std::string generate_checker(const psl::TlmProperty& property);

}  // namespace repro::checker

#endif  // REPRO_CHECKER_CODEGEN_H_
