#include "checker/instance.h"

#include <cassert>

namespace repro::checker {
namespace detail {
namespace {

using psl::ExprKind;
using psl::ExprPtr;

Verdict not3(Verdict v) {
  switch (v) {
    case Verdict::kTrue: return Verdict::kFalse;
    case Verdict::kFalse: return Verdict::kTrue;
    case Verdict::kPending: return Verdict::kPending;
  }
  return Verdict::kPending;
}

Verdict and3(Verdict a, Verdict b) {
  if (a == Verdict::kFalse || b == Verdict::kFalse) return Verdict::kFalse;
  if (a == Verdict::kPending || b == Verdict::kPending) return Verdict::kPending;
  return Verdict::kTrue;
}

Verdict or3(Verdict a, Verdict b) {
  if (a == Verdict::kTrue || b == Verdict::kTrue) return Verdict::kTrue;
  if (a == Verdict::kPending || b == Verdict::kPending) return Verdict::kPending;
  return Verdict::kFalse;
}

// Common resolved-verdict bookkeeping.
class NodeBase : public Node {
 public:
  Verdict step(const Event& ev) final {
    if (verdict_ == Verdict::kPending) verdict_ = on_step(ev);
    return verdict_;
  }
  Verdict finish() final {
    if (verdict_ == Verdict::kPending) verdict_ = on_finish();
    return verdict_;
  }
  bool collect_deadlines(std::vector<psl::TimeNs>& out) const final {
    if (verdict_ != Verdict::kPending) return true;
    return on_collect(out);
  }
  void reset() final {
    verdict_ = Verdict::kPending;
    on_reset();
  }

 protected:
  virtual Verdict on_step(const Event& ev) = 0;
  virtual Verdict on_finish() = 0;
  virtual bool on_collect(std::vector<psl::TimeNs>& out) const = 0;
  virtual void on_reset() = 0;

  Verdict verdict_ = Verdict::kPending;
};

class ConstNode : public NodeBase {
 public:
  explicit ConstNode(bool value) : value_(value) {}

 protected:
  Verdict on_step(const Event&) override {
    return value_ ? Verdict::kTrue : Verdict::kFalse;
  }
  Verdict on_finish() override {
    return value_ ? Verdict::kTrue : Verdict::kFalse;
  }
  bool on_collect(std::vector<psl::TimeNs>&) const override { return true; }
  void on_reset() override {}

 private:
  bool value_;
};

class AtomNode : public NodeBase {
 public:
  explicit AtomNode(const psl::Atom& atom) : atom_(atom) {}

 protected:
  Verdict on_step(const Event& ev) override {
    return eval_atom(atom_, *ev.values) ? Verdict::kTrue : Verdict::kFalse;
  }
  Verdict on_finish() override { return Verdict::kPending; }  // never anchored
  bool on_collect(std::vector<psl::TimeNs>&) const override { return false; }
  void on_reset() override {}

 private:
  const psl::Atom& atom_;
};

class NotNode : public NodeBase {
 public:
  explicit NotNode(const ExprPtr& operand) : child_(make_node(operand)) {}

 protected:
  Verdict on_step(const Event& ev) override { return not3(child_->step(ev)); }
  Verdict on_finish() override { return not3(child_->finish()); }
  bool on_collect(std::vector<psl::TimeNs>& out) const override {
    return child_->collect_deadlines(out);
  }
  void on_reset() override { child_->reset(); }

 private:
  std::unique_ptr<Node> child_;
};

// And / Or / Implies share the event-forwarding structure and differ only in
// the combination function.
class BinaryBoolNode : public NodeBase {
 public:
  BinaryBoolNode(ExprKind kind, const ExprPtr& lhs, const ExprPtr& rhs)
      : kind_(kind), lhs_(make_node(lhs)), rhs_(make_node(rhs)) {}

 protected:
  Verdict on_step(const Event& ev) override {
    // Short-circuit: when the left operand alone decides the verdict, the
    // right subtree is never anchored — its (fresh) state is irrelevant
    // because the whole node is resolved. This makes the dominant case of a
    // property whose antecedent is false at activation nearly free.
    const Verdict lhs = lhs_->step(ev);
    if (kind_ == ExprKind::kAnd && lhs == Verdict::kFalse) return Verdict::kFalse;
    if (kind_ == ExprKind::kOr && lhs == Verdict::kTrue) return Verdict::kTrue;
    if (kind_ == ExprKind::kImplies && lhs == Verdict::kFalse) return Verdict::kTrue;
    return combine(lhs, rhs_->step(ev));
  }
  Verdict on_finish() override {
    return combine(lhs_->finish(), rhs_->finish());
  }
  bool on_collect(std::vector<psl::TimeNs>& out) const override {
    const bool a = lhs_->collect_deadlines(out);
    const bool b = rhs_->collect_deadlines(out);
    return a && b;
  }
  void on_reset() override {
    lhs_->reset();
    rhs_->reset();
  }

 private:
  Verdict combine(Verdict a, Verdict b) const {
    switch (kind_) {
      case ExprKind::kAnd: return and3(a, b);
      case ExprKind::kOr: return or3(a, b);
      case ExprKind::kImplies: return or3(not3(a), b);
      default: break;
    }
    assert(false);
    return Verdict::kPending;
  }

  ExprKind kind_;
  std::unique_ptr<Node> lhs_;
  std::unique_ptr<Node> rhs_;
};

// next[n](p): skip n events after the anchor, then run p anchored there.
class NextNode : public NodeBase {
 public:
  NextNode(uint32_t n, const ExprPtr& operand) : n_(n), operand_(operand) {}

 protected:
  Verdict on_step(const Event& ev) override {
    if (!armed_child_) {
      if (skipped_ < n_) {
        ++skipped_;
        return Verdict::kPending;
      }
      if (!child_) child_ = make_node(operand_);
      armed_child_ = true;
    }
    return child_->step(ev);
  }
  Verdict on_finish() override {
    // Trace ended before the operand anchored: weak next, no failure.
    if (!armed_child_) return Verdict::kTrue;
    return child_->finish();
  }
  bool on_collect(std::vector<psl::TimeNs>& out) const override {
    // Counting events: the node must observe every event until the child is
    // anchored; afterwards the child decides.
    if (!armed_child_) return false;
    return child_->collect_deadlines(out);
  }
  void on_reset() override {
    skipped_ = 0;
    if (child_) child_->reset();
    armed_child_ = false;
  }

 private:
  uint32_t n_;
  const ExprPtr& operand_;
  uint32_t skipped_ = 0;
  std::unique_ptr<Node> child_;  // lazily built once, then reset in place
  bool armed_child_ = false;
};

// next_e[tau,eps](p): Def. III.3 / Sec. IV wrapper semantics. The operand
// must be evaluated at an event occurring exactly eps ns after the anchor;
// earlier events are ignored, and an event past the target without the
// target having been observed resolves to kFalse.
class NextEpsNode : public NodeBase {
 public:
  NextEpsNode(psl::TimeNs eps, const ExprPtr& operand)
      : eps_(eps), operand_(operand) {}

 protected:
  Verdict on_step(const Event& ev) override {
    if (!anchored_) {
      anchored_ = true;
      target_ = ev.time + eps_;
      return Verdict::kPending;
    }
    if (armed_child_) return child_->step(ev);
    if (ev.time < target_) return Verdict::kPending;
    if (ev.time > target_) return Verdict::kFalse;
    if (!child_) child_ = make_node(operand_);
    armed_child_ = true;
    return child_->step(ev);
  }
  Verdict on_finish() override {
    // Never evaluable before the end of the trace: weak, no failure.
    if (!armed_child_) return Verdict::kTrue;
    return child_->finish();
  }
  bool on_collect(std::vector<psl::TimeNs>& out) const override {
    if (armed_child_) return child_->collect_deadlines(out);
    if (!anchored_) return false;
    out.push_back(target_);
    return true;
  }
  void on_reset() override {
    anchored_ = false;
    target_ = 0;
    if (child_) child_->reset();
    armed_child_ = false;
  }

 private:
  psl::TimeNs eps_;
  const ExprPtr& operand_;
  bool anchored_ = false;
  psl::TimeNs target_ = 0;
  std::unique_ptr<Node> child_;  // lazily built once, then reset in place
  bool armed_child_ = false;
};

// until / release: one (p, q) child pair is spawned per position; the
// verdict is the Kleene fold matching reference_eval:
//   until:   q0 || (p0 && (q1 || (p1 && ...rest)))
//   release: q0 && (p0 || (q1 && (p1 || ...rest)))
// with rest = kPending while the trace is ongoing and the boundary verdict
// at finish().
class FixpointNode : public NodeBase {
 public:
  FixpointNode(ExprKind kind, bool strong, const ExprPtr& lhs, const ExprPtr& rhs)
      : kind_(kind), strong_(strong), lhs_(lhs), rhs_(rhs) {}

 protected:
  Verdict on_step(const Event& ev) override {
    for (auto& pos : positions_) {
      if (pos.p_v == Verdict::kPending) pos.p_v = pos.p->step(ev);
      if (pos.q_v == Verdict::kPending) pos.q_v = pos.q->step(ev);
    }
    positions_.emplace_back(lhs_, rhs_);
    Position& fresh = positions_.back();
    fresh.p_v = fresh.p->step(ev);
    fresh.q_v = fresh.q->step(ev);
    Verdict v = fold(Verdict::kPending);
    if (v != Verdict::kPending) positions_.clear();
    return v;
  }
  Verdict on_finish() override {
    for (auto& pos : positions_) {
      if (pos.p_v == Verdict::kPending) pos.p_v = pos.p->finish();
      if (pos.q_v == Verdict::kPending) pos.q_v = pos.q->finish();
    }
    const bool weak = kind_ == ExprKind::kRelease || !strong_;
    return fold(weak ? Verdict::kTrue : Verdict::kFalse);
  }
  bool on_collect(std::vector<psl::TimeNs>&) const override { return false; }
  void on_reset() override { positions_.clear(); }

 private:
  struct Position {
    Position(const ExprPtr& lhs, const ExprPtr& rhs)
        : p(make_node(lhs)), q(make_node(rhs)) {}
    std::unique_ptr<Node> p;
    std::unique_ptr<Node> q;
    Verdict p_v = Verdict::kPending;
    Verdict q_v = Verdict::kPending;
  };

  Verdict fold(Verdict rest) const {
    for (size_t i = positions_.size(); i-- > 0;) {
      const Position& pos = positions_[i];
      if (kind_ == ExprKind::kUntil) {
        rest = or3(pos.q_v, and3(pos.p_v, rest));
      } else {
        rest = and3(pos.q_v, or3(pos.p_v, rest));
      }
    }
    return rest;
  }

  ExprKind kind_;
  bool strong_;
  const ExprPtr& lhs_;
  const ExprPtr& rhs_;
  std::vector<Position> positions_;
};

// p abort b: the operand runs until the first event where the (boolean)
// abort condition holds; a still-pending obligation is then discharged as
// true (PSL async-reset semantics). The condition is checked before the
// operand consumes the event.
class AbortNode : public NodeBase {
 public:
  AbortNode(const ExprPtr& operand, const ExprPtr& condition, bool strong)
      : operand_(operand), condition_(condition),
        on_reset_(strong ? Verdict::kFalse : Verdict::kTrue) {}

 protected:
  Verdict on_step(const Event& ev) override {
    if (eval_boolean(condition_, *ev.values)) return on_reset_;
    if (!child_) child_ = make_node(operand_);
    return child_->step(ev);
  }
  Verdict on_finish() override {
    if (!child_) return Verdict::kTrue;
    return child_->finish();
  }
  bool on_collect(std::vector<psl::TimeNs>&) const override {
    // The abort condition must be sampled at every event.
    return false;
  }
  void on_reset() override {
    if (child_) child_->reset();
  }

 private:
  const ExprPtr& operand_;
  const ExprPtr& condition_;
  const Verdict on_reset_;
  std::unique_ptr<Node> child_;  // lazily built once, then reset in place
};

// always p / eventually! p: one child per position.
class SpawnNode : public NodeBase {
 public:
  SpawnNode(ExprKind kind, const ExprPtr& operand)
      : kind_(kind), operand_(operand) {}

 protected:
  Verdict on_step(const Event& ev) override {
    children_.push_back(make_node(operand_));
    Verdict worst = Verdict::kTrue;
    for (auto it = children_.begin(); it != children_.end();) {
      const Verdict v = (*it)->step(ev);
      if (kind_ == ExprKind::kAlways) {
        if (v == Verdict::kFalse) return Verdict::kFalse;
        if (v == Verdict::kTrue) {
          it = children_.erase(it);  // discharged obligation
          continue;
        }
      } else {  // eventually!
        if (v == Verdict::kTrue) return Verdict::kTrue;
        if (v == Verdict::kFalse) {
          it = children_.erase(it);
          continue;
        }
      }
      worst = Verdict::kPending;
      ++it;
    }
    (void)worst;
    return Verdict::kPending;  // never resolves positively while ongoing
  }
  Verdict on_finish() override {
    for (auto& child : children_) {
      const Verdict v = child->finish();
      if (kind_ == ExprKind::kAlways && v == Verdict::kFalse) return Verdict::kFalse;
      if (kind_ == ExprKind::kEventually && v == Verdict::kTrue) return Verdict::kTrue;
    }
    return kind_ == ExprKind::kAlways ? Verdict::kTrue : Verdict::kFalse;
  }
  bool on_collect(std::vector<psl::TimeNs>&) const override { return false; }
  void on_reset() override { children_.clear(); }

 private:
  ExprKind kind_;
  const ExprPtr& operand_;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace

std::unique_ptr<Node> make_node(const ExprPtr& e) {
  assert(e);
  switch (e->kind) {
    case ExprKind::kConstTrue:
      return std::make_unique<ConstNode>(true);
    case ExprKind::kConstFalse:
      return std::make_unique<ConstNode>(false);
    case ExprKind::kAtom:
      return std::make_unique<AtomNode>(e->atom);
    case ExprKind::kNot:
      return std::make_unique<NotNode>(e->lhs);
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kImplies:
      return std::make_unique<BinaryBoolNode>(e->kind, e->lhs, e->rhs);
    case ExprKind::kNext:
      return std::make_unique<NextNode>(e->next_count, e->lhs);
    case ExprKind::kNextEps:
      return std::make_unique<NextEpsNode>(e->eps, e->lhs);
    case ExprKind::kUntil:
      return std::make_unique<FixpointNode>(e->kind, e->strong, e->lhs, e->rhs);
    case ExprKind::kRelease:
      return std::make_unique<FixpointNode>(e->kind, /*strong=*/false, e->lhs,
                                            e->rhs);
    case ExprKind::kAlways:
    case ExprKind::kEventually:
      return std::make_unique<SpawnNode>(e->kind, e->lhs);
    case ExprKind::kAbort:
      return std::make_unique<AbortNode>(e->lhs, e->rhs, e->strong);
  }
  assert(false && "unreachable");
  return nullptr;
}

}  // namespace detail

Instance::Instance(psl::ExprPtr formula) : formula_(std::move(formula)) {
  assert(formula_);
  root_ = detail::make_node(formula_);
}

Instance::Instance(std::shared_ptr<const Program> program)
    : state_(std::in_place, std::move(program)) {}

Instance::Instance(std::shared_ptr<BatchState> block, uint32_t lane)
    : block_(std::move(block)), lane_(lane) {
  assert(block_ != nullptr);
  assert(block_->allocated() & (uint64_t{1} << lane_));
}

Instance::~Instance() {
  if (block_ != nullptr) block_->release_lane(lane_);
}

Verdict Instance::step(const Event& ev) {
  if (verdict_ != Verdict::kPending) return verdict_;
  verdict_ = block_   ? block_->step_lane(ev, lane_)
             : state_ ? state_->step(ev)
                      : root_->step(ev);
  return verdict_;
}

Verdict Instance::finish() {
  if (verdict_ != Verdict::kPending) return verdict_;
  verdict_ = block_   ? block_->finish_lane(lane_)
             : state_ ? state_->finish()
                      : root_->finish();
  return verdict_;
}

std::optional<psl::TimeNs> Instance::next_deadline() const {
  if (verdict_ != Verdict::kPending) return std::nullopt;
  std::vector<psl::TimeNs> deadlines;
  const bool scheduled = block_   ? block_->collect_deadlines(lane_, deadlines)
                         : state_ ? state_->collect_deadlines(deadlines)
                                  : root_->collect_deadlines(deadlines);
  if (!scheduled || deadlines.empty()) {
    return std::nullopt;
  }
  psl::TimeNs best = deadlines.front();
  for (psl::TimeNs t : deadlines) best = std::min(best, t);
  return best;
}

void Instance::reset() {
  if (block_) {
    block_->reset_lane(lane_);
  } else if (state_) {
    state_->reset();
  } else {
    root_->reset();
  }
  verdict_ = Verdict::kPending;
  exercised_ = false;
}

}  // namespace repro::checker
