// Evaluation events, traces and atomic-proposition evaluation.
//
// A checker consumes a stream of evaluation events. At RTL an event is a
// clock edge selected by the property's clock context; at TLM it is the end
// of a transaction (the basic transaction context Tb of Def. III.2). Each
// event carries the simulation time and a view of the DUV observables.
#ifndef REPRO_CHECKER_TRACE_H_
#define REPRO_CHECKER_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "psl/ast.h"

namespace repro::checker {

// Three-valued verdict of a property instance over a (possibly ongoing)
// trace. kPending means the verdict depends on events not yet observed.
enum class Verdict { kTrue, kFalse, kPending };

const char* to_string(Verdict v);

// The (name, value) pairs one evaluation event exposed, materialized for
// failure diagnostics. Shared: every wrapper whose ring buffer remembers the
// same event holds the same immutable snapshot.
using WitnessValues = std::vector<std::pair<std::string, uint64_t>>;

// One remembered evaluation event: the simulation (VCD) timestamp of the
// transaction plus the observables it carried.
struct WitnessEntry {
  psl::TimeNs time = 0;
  std::shared_ptr<const WitnessValues> observables;
};

class ValueContext;

// One evaluation event handed to a checker instance.
struct Event {
  psl::TimeNs time;
  const ValueContext* values;
};

// Read access to the DUV observables at one evaluation event.
class ValueContext {
 public:
  virtual ~ValueContext() = default;
  // Value of signal `name`; must only be called for signals the context
  // provides (checked by has()).
  virtual uint64_t value(std::string_view name) const = 0;
  virtual bool has(std::string_view name) const = 0;
  // Shareable snapshot of every signal this context exposes, for failure
  // witnesses. nullptr when the context cannot enumerate its signals (the
  // wrapper then skips witness capture for this event).
  virtual std::shared_ptr<const WitnessValues> witness_values() const {
    return nullptr;
  }
};

// ValueContext backed by a plain map; used for recorded traces and tests.
class MapContext : public ValueContext {
 public:
  MapContext() = default;
  explicit MapContext(std::map<std::string, uint64_t> values)
      : values_(std::move(values)) {}

  void set(const std::string& name, uint64_t value) { values_[name] = value; }

  uint64_t value(std::string_view name) const override;
  bool has(std::string_view name) const override;
  std::shared_ptr<const WitnessValues> witness_values() const override;

  const std::map<std::string, uint64_t>& entries() const { return values_; }

 private:
  std::map<std::string, uint64_t> values_;
};

// One recorded evaluation event.
struct Observation {
  psl::TimeNs time = 0;
  MapContext values;
};

// A recorded stream of evaluation events, in increasing time order.
using Trace = std::vector<Observation>;

// Evaluates an atomic proposition against `ctx`. All referenced signals
// must be present in the context.
bool eval_atom(const psl::Atom& atom, const ValueContext& ctx);

// Evaluates a boolean (non-temporal) expression against `ctx`.
bool eval_boolean(const psl::ExprPtr& e, const ValueContext& ctx);

}  // namespace repro::checker

#endif  // REPRO_CHECKER_TRACE_H_
