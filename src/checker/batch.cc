#include "checker/batch.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace repro::checker {

namespace {

// Same verdict encoding as program.cc: kPending == 0, fresh planes are
// all-zeroes.
constexpr uint8_t kVPend = 0;
constexpr uint8_t kVTrue = 1;
constexpr uint8_t kVFalse = 2;

Verdict decode(uint8_t v) {
  switch (v) {
    case kVTrue: return Verdict::kTrue;
    case kVFalse: return Verdict::kFalse;
    default: return Verdict::kPending;
  }
}

uint8_t not3(uint8_t v) {
  if (v == kVTrue) return kVFalse;
  if (v == kVFalse) return kVTrue;
  return kVPend;
}

uint8_t and3(uint8_t a, uint8_t b) {
  if (a == kVFalse || b == kVFalse) return kVFalse;
  if (a == kVPend || b == kVPend) return kVPend;
  return kVTrue;
}

uint8_t or3(uint8_t a, uint8_t b) {
  if (a == kVTrue || b == kVTrue) return kVTrue;
  if (a == kVPend || b == kVPend) return kVPend;
  return kVFalse;
}

}  // namespace

ProgramBatch::ProgramBatch(std::shared_ptr<const Program> program)
    : program_(std::move(program)) {
  assert(program_ != nullptr);
  assert(supported(*program_));
  scratch_.resize(program_->size(), 0);
  for (uint32_t n = 0; n < program_->size(); ++n) {
    switch (program_->nodes()[n].op) {
      case Program::Opcode::kNext:
        scratch_[n] = count_words_++;
        break;
      case Program::Opcode::kNextEps:
        scratch_[n] = target_words_++;
        break;
      default:
        break;
    }
  }
}

BatchState::BatchState(std::shared_ptr<const ProgramBatch> layout)
    : layout_(std::move(layout)), prog_(&layout_->program()) {
  const size_t n = prog_->size();
  val_t_.resize(n, 0);
  val_f_.resize(n, 0);
  armed_.resize(n, 0);
  observed_.resize(n, 0);
  counts_.resize(size_t{layout_->count_words()} * kLanes, 0);
  targets_.resize(size_t{layout_->target_words()} * kLanes, 0);
  atom_stamp_.resize(prog_->atoms().size(), 0);
  atom_val_.resize(prog_->atoms().size(), 0);
}

uint32_t BatchState::allocate_lane() {
  assert(has_free_lane());
  const uint32_t lane = static_cast<uint32_t>(std::countr_one(allocated_));
  allocated_ |= uint64_t{1} << lane;
  return lane;
}

void BatchState::release_lane(uint32_t lane) {
  assert(lane < kLanes);
  assert(allocated_ & (uint64_t{1} << lane));
  reset_lane(lane);
  allocated_ &= ~(uint64_t{1} << lane);
}

void BatchState::reset_lane(uint32_t lane) {
  assert(lane < kLanes);
  const uint64_t keep = ~(uint64_t{1} << lane);
  for (size_t n = 0; n < val_t_.size(); ++n) {
    val_t_[n] &= keep;
    val_f_[n] &= keep;
    armed_[n] &= keep;
    observed_[n] &= keep;
  }
  for (size_t w = 0; w < layout_->count_words(); ++w) {
    counts_[w * kLanes + lane] = 0;
  }
  for (size_t w = 0; w < layout_->target_words(); ++w) {
    targets_[w * kLanes + lane] = 0;
  }
  primed_ &= keep;
  exercised_ &= keep;
}

bool BatchState::atom_value(uint32_t k) {
  // Lane-uniform: every lane of a prime call shares the event, so the memo
  // is one value per atom per prime (the 64-wide analogue of ProgramState's
  // per-step atom memo).
  if (atom_stamp_[k] != stamp_) {
    atom_stamp_[k] = stamp_;
    atom_val_[k] = eval_atom(prog_->atoms()[k], *ev_->values) ? 1 : 0;
  }
  return atom_val_[k] != 0;
}

bool BatchState::eval_bool(uint32_t n) {
  const Program::ProgNode& node = prog_->nodes()[n];
  switch (node.op) {
    case Program::Opcode::kConstTrue: return true;
    case Program::Opcode::kConstFalse: return false;
    case Program::Opcode::kAtom: return atom_value(node.atom);
    case Program::Opcode::kNot: return !eval_bool(node.lhs);
    case Program::Opcode::kAnd:
      return eval_bool(node.lhs) && eval_bool(node.rhs);
    case Program::Opcode::kOr:
      return eval_bool(node.lhs) || eval_bool(node.rhs);
    case Program::Opcode::kImplies:
      return !eval_bool(node.lhs) || eval_bool(node.rhs);
    default:
      assert(false && "abort condition must be boolean");
      return false;
  }
}

// The masked transcription of Evaluator::step/step_raw. `need` is the set of
// lanes whose parent steps this node at the current event; `todo` drops the
// lanes already resolved at an earlier event (the Slot::verdict memo). The
// rhs_need masks reproduce the scalar short-circuit order bit for bit — a
// lane whose left operand decides never anchors the right subtree.
void BatchState::step_node(uint32_t n, uint64_t need) {
  const uint64_t todo = need & ~(val_t_[n] | val_f_[n]);
  if (todo == 0) return;
  const Program::ProgNode& node = prog_->nodes()[n];
  if (node.pure_bool) {
    // Decided by the anchor event alone and identical across lanes: one
    // broadcast evaluation replaces up to 64 scalar eval_bool walks.
    if (eval_bool(n)) {
      val_t_[n] |= todo;
    } else {
      val_f_[n] |= todo;
    }
    return;
  }
  switch (node.op) {
    case Program::Opcode::kNot: {
      step_node(node.lhs, todo);
      val_t_[n] |= val_f_[node.lhs] & todo;
      val_f_[n] |= val_t_[node.lhs] & todo;
      return;
    }
    case Program::Opcode::kAnd: {
      step_node(node.lhs, todo);
      const uint64_t lt = val_t_[node.lhs] & todo;
      const uint64_t lf = val_f_[node.lhs] & todo;
      const uint64_t rhs_need = todo & ~lf;
      step_node(node.rhs, rhs_need);
      val_t_[n] |= lt & val_t_[node.rhs];
      val_f_[n] |= lf | (val_f_[node.rhs] & rhs_need);
      return;
    }
    case Program::Opcode::kOr: {
      step_node(node.lhs, todo);
      const uint64_t lt = val_t_[node.lhs] & todo;
      const uint64_t lf = val_f_[node.lhs] & todo;
      const uint64_t rhs_need = todo & ~lt;
      step_node(node.rhs, rhs_need);
      val_t_[n] |= lt | (val_t_[node.rhs] & rhs_need);
      val_f_[n] |= lf & val_f_[node.rhs];
      return;
    }
    case Program::Opcode::kImplies: {
      step_node(node.lhs, todo);
      const uint64_t lt = val_t_[node.lhs] & todo;
      const uint64_t lf = val_f_[node.lhs] & todo;
      const uint64_t rhs_need = todo & ~lf;
      step_node(node.rhs, rhs_need);
      val_t_[n] |= lf | (val_t_[node.rhs] & rhs_need);
      val_f_[n] |= lt & val_f_[node.rhs];
      return;
    }
    case Program::Opcode::kNext: {
      uint64_t child_need = todo & armed_[n];
      uint64_t counting = todo & ~armed_[n];
      while (counting != 0) {
        const uint32_t lane =
            static_cast<uint32_t>(std::countr_zero(counting));
        counting &= counting - 1;
        uint32_t& count = counts_[size_t{layout_->scratch(n)} * kLanes + lane];
        if (count < node.next_count) {
          ++count;  // still skipping: the lane stays pending this event
        } else {
          armed_[n] |= uint64_t{1} << lane;  // operand anchors here
          child_need |= uint64_t{1} << lane;
        }
      }
      step_node(node.lhs, child_need);
      val_t_[n] |= val_t_[node.lhs] & child_need;
      val_f_[n] |= val_f_[node.lhs] & child_need;
      return;
    }
    case Program::Opcode::kNextEps: {
      uint64_t child_need = 0;
      uint64_t pending = todo;
      while (pending != 0) {
        const uint32_t lane = static_cast<uint32_t>(std::countr_zero(pending));
        pending &= pending - 1;
        const uint64_t bit = uint64_t{1} << lane;
        if (!(armed_[n] & bit)) {  // anchor: schedule the required instant
          armed_[n] |= bit;
          targets_[size_t{layout_->scratch(n)} * kLanes + lane] =
              ev_->time + node.eps;
          continue;
        }
        if (observed_[n] & bit) {  // operand already anchored
          child_need |= bit;
          continue;
        }
        const psl::TimeNs target =
            targets_[size_t{layout_->scratch(n)} * kLanes + lane];
        if (ev_->time < target) continue;  // not due yet
        if (ev_->time > target) {          // missed the evaluation point
          val_f_[n] |= bit;
          continue;
        }
        observed_[n] |= bit;  // due exactly now: anchor the operand
        child_need |= bit;
      }
      step_node(node.lhs, child_need);
      val_t_[n] |= val_t_[node.lhs] & child_need;
      val_f_[n] |= val_f_[node.lhs] & child_need;
      return;
    }
    case Program::Opcode::kAbort: {
      // The abort condition is purely boolean, hence lane-uniform: one
      // evaluation decides every lane of the cohort.
      if (eval_bool(node.rhs)) {
        if (node.strong) {
          val_f_[n] |= todo;
        } else {
          val_t_[n] |= todo;
        }
        return;
      }
      observed_[n] |= todo;  // operand observed at least one event
      step_node(node.lhs, todo);
      val_t_[n] |= val_t_[node.lhs] & todo;
      val_f_[n] |= val_f_[node.lhs] & todo;
      return;
    }
    default:
      // Consts/atoms are pure_bool; dynamic ops are rejected by supported().
      assert(false && "unreachable opcode in lockstep kernel");
      return;
  }
}

void BatchState::prime(const Event& ev, uint64_t mask) {
  assert((mask & ~allocated_) == 0);
  if (mask == 0) return;
  ++stamp_;
  ev_ = &ev;
  step_node(prog_->root(), mask);
  ev_ = nullptr;
  primed_ |= mask;
}

Verdict BatchState::step_lane(const Event& ev, uint32_t lane) {
  assert(lane < kLanes);
  const uint64_t bit = uint64_t{1} << lane;
  if (!(primed_ & bit)) prime(ev, bit);
  // Consume the primed bit: a second step at the same event (a re-dued
  // eps == 0 entry) must re-advance the lane exactly like the scalar path.
  primed_ &= ~bit;
  return root_verdict(lane);
}

Verdict BatchState::root_verdict(uint32_t lane) const {
  const uint64_t bit = uint64_t{1} << lane;
  const uint32_t root = prog_->root();
  if (val_t_[root] & bit) return Verdict::kTrue;
  if (val_f_[root] & bit) return Verdict::kFalse;
  return Verdict::kPending;
}

// End-of-trace resolution mirrors Evaluator::finish/finish_raw: no pure_bool
// shortcut (an unanchored atom finishes pending, not at some absent event).
uint8_t BatchState::finish_node(uint32_t n, uint64_t bit) {
  if (val_t_[n] & bit) return kVTrue;
  if (val_f_[n] & bit) return kVFalse;
  const uint8_t v = finish_raw(n, bit);
  if (v == kVTrue) val_t_[n] |= bit;
  if (v == kVFalse) val_f_[n] |= bit;
  return v;
}

uint8_t BatchState::finish_raw(uint32_t n, uint64_t bit) {
  const Program::ProgNode& node = prog_->nodes()[n];
  switch (node.op) {
    case Program::Opcode::kConstTrue:
      return kVTrue;
    case Program::Opcode::kConstFalse:
      return kVFalse;
    case Program::Opcode::kAtom:
      return kVPend;  // never anchored
    case Program::Opcode::kNot:
      return not3(finish_node(node.lhs, bit));
    case Program::Opcode::kAnd:
      return and3(finish_node(node.lhs, bit), finish_node(node.rhs, bit));
    case Program::Opcode::kOr:
      return or3(finish_node(node.lhs, bit), finish_node(node.rhs, bit));
    case Program::Opcode::kImplies:
      return or3(not3(finish_node(node.lhs, bit)),
                 finish_node(node.rhs, bit));
    case Program::Opcode::kNext:
      // Trace ended before the operand anchored: weak next, no failure.
      if (!(armed_[n] & bit)) return kVTrue;
      return finish_node(node.lhs, bit);
    case Program::Opcode::kNextEps:
      if (!(observed_[n] & bit)) return kVTrue;
      return finish_node(node.lhs, bit);
    case Program::Opcode::kAbort:
      if (!(observed_[n] & bit)) return kVTrue;
      return finish_node(node.lhs, bit);
    default:
      assert(false && "unreachable opcode in lockstep kernel");
      return kVPend;
  }
}

Verdict BatchState::finish_lane(uint32_t lane) {
  assert(lane < kLanes);
  return decode(finish_node(prog_->root(), uint64_t{1} << lane));
}

bool BatchState::collect_node(uint32_t n, uint32_t lane,
                              std::vector<psl::TimeNs>& out) const {
  const uint64_t bit = uint64_t{1} << lane;
  if ((val_t_[n] | val_f_[n]) & bit) return true;
  const Program::ProgNode& node = prog_->nodes()[n];
  switch (node.op) {
    case Program::Opcode::kConstTrue:
    case Program::Opcode::kConstFalse:
      return true;
    case Program::Opcode::kAtom:
      return false;
    case Program::Opcode::kNot:
      return collect_node(node.lhs, lane, out);
    case Program::Opcode::kAnd:
    case Program::Opcode::kOr:
    case Program::Opcode::kImplies: {
      const bool a = collect_node(node.lhs, lane, out);
      const bool b = collect_node(node.rhs, lane, out);
      return a && b;
    }
    case Program::Opcode::kNext:
      if (!(armed_[n] & bit)) return false;
      return collect_node(node.lhs, lane, out);
    case Program::Opcode::kNextEps:
      if (observed_[n] & bit) return collect_node(node.lhs, lane, out);
      if (!(armed_[n] & bit)) return false;
      out.push_back(targets_[size_t{layout_->scratch(n)} * kLanes + lane]);
      return true;
    default:
      // abort must sample its condition at every event.
      return false;
  }
}

bool BatchState::collect_deadlines(uint32_t lane,
                                   std::vector<psl::TimeNs>& out) const {
  assert(lane < kLanes);
  const uint32_t root = prog_->root();
  if ((val_t_[root] | val_f_[root]) & (uint64_t{1} << lane)) return true;
  return collect_node(root, lane, out);
}

}  // namespace repro::checker
