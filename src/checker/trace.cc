#include "checker/trace.h"

#include <cassert>

namespace repro::checker {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kTrue: return "true";
    case Verdict::kFalse: return "false";
    case Verdict::kPending: return "pending";
  }
  return "?";
}

uint64_t MapContext::value(std::string_view name) const {
  auto it = values_.find(std::string(name));
  assert(it != values_.end() && "signal not present in evaluation context");
  return it->second;
}

bool MapContext::has(std::string_view name) const {
  return values_.count(std::string(name)) != 0;
}

std::shared_ptr<const WitnessValues> MapContext::witness_values() const {
  auto values = std::make_shared<WitnessValues>();
  values->reserve(values_.size());
  for (const auto& [name, value] : values_) values->emplace_back(name, value);
  return values;
}

bool eval_atom(const psl::Atom& atom, const ValueContext& ctx) {
  const uint64_t lhs = ctx.value(atom.lhs);
  if (atom.op == psl::CmpOp::kTruthy) return lhs != 0;
  const uint64_t rhs =
      atom.rhs_is_signal ? ctx.value(atom.rhs_signal) : atom.rhs_value;
  switch (atom.op) {
    case psl::CmpOp::kTruthy: return lhs != 0;  // unreachable, kept for -Wswitch
    case psl::CmpOp::kEq: return lhs == rhs;
    case psl::CmpOp::kNe: return lhs != rhs;
    case psl::CmpOp::kLt: return lhs < rhs;
    case psl::CmpOp::kLe: return lhs <= rhs;
    case psl::CmpOp::kGt: return lhs > rhs;
    case psl::CmpOp::kGe: return lhs >= rhs;
  }
  return false;
}

bool eval_boolean(const psl::ExprPtr& e, const ValueContext& ctx) {
  assert(e && psl::is_boolean(e));
  switch (e->kind) {
    case psl::ExprKind::kConstTrue: return true;
    case psl::ExprKind::kConstFalse: return false;
    case psl::ExprKind::kAtom: return eval_atom(e->atom, ctx);
    case psl::ExprKind::kNot: return !eval_boolean(e->lhs, ctx);
    case psl::ExprKind::kAnd: return eval_boolean(e->lhs, ctx) && eval_boolean(e->rhs, ctx);
    case psl::ExprKind::kOr: return eval_boolean(e->lhs, ctx) || eval_boolean(e->rhs, ctx);
    case psl::ExprKind::kImplies:
      return !eval_boolean(e->lhs, ctx) || eval_boolean(e->rhs, ctx);
    default:
      assert(false && "eval_boolean applied to a temporal expression");
      return false;
  }
}

}  // namespace repro::checker
