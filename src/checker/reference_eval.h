// Reference (ground-truth) evaluation of a formula over a recorded trace.
//
// This is a direct, non-incremental implementation of the finite-trace
// semantics the checkers must implement; it exists so that the incremental
// checker can be cross-validated against it (including with randomized
// property/trace sweeps). It is O(|trace|^2 * |formula|) and is not used in
// the simulation fast path.
//
// Finite-trace conventions (truncated semantics):
//   - on an INCOMPLETE trace, obligations that look past the end are
//     kPending;
//   - on a COMPLETE trace, weak operators (next, until, release, always)
//     resolve kTrue at the boundary and strong ones (until!, eventually!)
//     resolve kFalse.
//   - next_e[tau,eps](p) at position i (Def. III.3): let T = time(i) + eps;
//     if some later position j has time(j) == T, the verdict is p at j; if a
//     later position has time(j) > T before any == T, the verdict is kFalse
//     ("no event observable at eps"); otherwise pending/boundary.
#ifndef REPRO_CHECKER_REFERENCE_EVAL_H_
#define REPRO_CHECKER_REFERENCE_EVAL_H_

#include "checker/trace.h"
#include "psl/ast.h"

namespace repro::checker {

// Evaluates `e` anchored at `trace[position]`. `complete` selects boundary
// semantics as described above. position must be < trace.size().
Verdict reference_eval(const psl::ExprPtr& e, const Trace& trace, size_t position,
                       bool complete);

// Evaluates `always e` over the whole trace with the given anchor stream —
// i.e. the conjunction of reference_eval(e, trace, i) for all i. Returns
// kFalse if any anchor fails, kPending if none fails and some is pending on
// an incomplete trace, kTrue otherwise.
Verdict reference_eval_always(const psl::ExprPtr& e, const Trace& trace,
                              bool complete);

}  // namespace repro::checker

#endif  // REPRO_CHECKER_REFERENCE_EVAL_H_
