#include "checker/checker.h"

#include <bit>
#include <cassert>

namespace repro::checker {

PropertyChecker::PropertyChecker(std::string name, psl::ExprPtr formula,
                                 psl::ExprPtr guard, CheckerOptions options)
    : name_(std::move(name)),
      formula_(std::move(formula)),
      guard_(std::move(guard)),
      options_(options),
      // Sim-time latency from ns-scale (RTL edge-to-edge) up to ~8M ns.
      latency_ns_(support::exponential_bounds(1, 24)) {
  assert(formula_);
  body_ = formula_;
  while (body_->kind == psl::ExprKind::kAlways) {
    repeating_ = true;
    body_ = body_->lhs;
  }
  antecedent_ = derive_antecedent(body_);
  node_cost_ = psl::node_count(body_);
  // Compile once; every instance (across all activations) shares the program.
  if (options_.compiled) program_ = Program::compile(body_);
  // Frame-free programs share a lockstep layout (see wrapper.cc for the
  // Sec. IV wrapper counterpart of this backend selection).
  if (program_ != nullptr && options_.vectorized &&
      ProgramBatch::supported(*program_)) {
    batch_layout_ = std::make_shared<const ProgramBatch>(program_);
  }
}

void PropertyChecker::set_program_formula(const psl::ExprPtr& formula) {
  assert(stats_.events == 0 && active_.empty());
  if (formula == nullptr || program_ == nullptr) return;
  psl::ExprPtr body = formula;
  while (body->kind == psl::ExprKind::kAlways) body = body->lhs;
  program_ = Program::compile(body);
  batch_layout_.reset();
  if (options_.vectorized && ProgramBatch::supported(*program_)) {
    batch_layout_ = std::make_shared<const ProgramBatch>(program_);
  }
  blocks_.clear();
  free_pool_.clear();
}

std::unique_ptr<Instance> PropertyChecker::make_instance() {
  if (batch_layout_ != nullptr) {
    for (const auto& block : blocks_) {
      if (block->has_free_lane()) {
        return std::make_unique<Instance>(block, block->allocate_lane());
      }
    }
    blocks_.push_back(std::make_shared<BatchState>(batch_layout_));
    return std::make_unique<Instance>(blocks_.back(),
                                      blocks_.back()->allocate_lane());
  }
  if (program_) return std::make_unique<Instance>(program_);
  return std::make_unique<Instance>(body_);
}

// Lockstep pre-pass over the active list; see TlmCheckerWrapper::prime_cohorts
// for the invariants (the scalar loop below then consumes the primed verdicts
// lane by lane, so stats and failure-log order are unchanged).
void PropertyChecker::prime_cohorts(const Event& ev) {
  prime_masks_.clear();
  for (const auto& instance : active_) {
    BatchState* block = instance->batch_block();
    if (block == nullptr) continue;
    const uint64_t bit = uint64_t{1} << instance->batch_lane();
    bool found = false;
    for (auto& [b, mask] : prime_masks_) {
      if (b == block) {
        mask |= bit;
        found = true;
        break;
      }
    }
    if (!found) prime_masks_.emplace_back(block, bit);
  }
  for (auto& [block, mask] : prime_masks_) {
    const int lanes = std::popcount(mask);
    block->prime(ev, mask);
    if (lanes > 1) {
      ++stats_.vector_batches;
      stats_.vector_lanes_filled += static_cast<uint64_t>(lanes);
    }
  }
}

void PropertyChecker::retire(std::unique_ptr<Instance> instance, Verdict v,
                             psl::TimeNs time) {
  const psl::TimeNs activated = instance->activated_at();
  latency_ns_.record(time >= activated ? time - activated : 0);
  switch (v) {
    case Verdict::kTrue:
      ++stats_.holds;
      // The vacuity split: a hold whose antecedent never fired at the
      // anchor proves nothing about the consequent.
      if (instance->exercised()) {
        ++stats_.real_passes;
      } else {
        ++stats_.vacuous_passes;
      }
      break;
    case Verdict::kFalse:
      ++stats_.failures;
      if (failure_log_.size() < options_.failure_log_cap) {
        failure_log_.push_back({time, name_});
      }
      break;
    case Verdict::kPending:
      ++stats_.uncompleted;
      break;
  }
  instance->reset();
  free_pool_.push_back(std::move(instance));
}

void PropertyChecker::on_event(psl::TimeNs time, const ValueContext& values) {
  ++stats_.events;
  const Event ev{time, &values};
  if (!blocks_.empty()) prime_cohorts(ev);

  // Feed the event to every active instance; retire the resolved ones.
  size_t keep = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    ++stats_.steps;
    stats_.node_visits += node_cost_;
    const Verdict v = active_[i]->step(ev);
    if (v == Verdict::kPending) {
      active_[keep++] = std::move(active_[i]);
    } else {
      retire(std::move(active_[i]), v, time);
    }
  }
  active_.resize(keep);

  // Activation: a new verification session starts at each evaluation point
  // matching the context (for always-properties), or once (otherwise).
  if (!repeating_ && started_) {
    if (coverage_ != nullptr) sync_coverage();
    return;
  }
  if (guard_ && !eval_boolean(guard_, values)) {
    if (coverage_ != nullptr) sync_coverage();
    return;
  }
  started_ = true;

  std::unique_ptr<Instance> instance;
  if (!free_pool_.empty()) {
    instance = std::move(free_pool_.back());
    free_pool_.pop_back();
  } else {
    instance = make_instance();
  }
  instance->set_activated_at(time);
  instance->set_exercised(antecedent_ == nullptr ||
                          eval_boolean(antecedent_, values));
  ++stats_.activations;
  ++stats_.steps;
  stats_.node_visits += node_cost_;
  const Verdict v = instance->step(ev);
  if (v == Verdict::kPending) {
    active_.push_back(std::move(instance));
  } else {
    ++stats_.trivial;
    retire(std::move(instance), v, time);
  }
  if (coverage_ != nullptr) sync_coverage();
}

void PropertyChecker::finish() {
  for (auto& instance : active_) {
    const Verdict v = instance->finish();
    retire(std::move(instance), v, /*time=*/0);
  }
  active_.clear();
  if (coverage_ != nullptr) sync_coverage();
}

void PropertyChecker::set_coverage(support::CoverageTable::Row* row) {
  coverage_ = row;
  if (coverage_ != nullptr) sync_coverage();
}

void PropertyChecker::sync_coverage() {
  // Single-writer mirror: this checker is the only writer of its row, so
  // relaxed stores of the current totals are enough for a reader to observe
  // a recent, internally-plausible state (exact after finish()).
  auto& row = *coverage_;
  const auto relaxed = std::memory_order_relaxed;
  row.activations.store(stats_.activations, relaxed);
  row.holds.store(stats_.holds, relaxed);
  row.failures.store(stats_.failures, relaxed);
  row.uncompleted.store(stats_.uncompleted, relaxed);
  row.trivial.store(stats_.trivial, relaxed);
  row.real_passes.store(stats_.real_passes, relaxed);
  row.vacuous_passes.store(stats_.vacuous_passes, relaxed);
  row.node_visits.store(stats_.node_visits, relaxed);
}

}  // namespace repro::checker
