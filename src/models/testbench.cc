#include "models/testbench.h"

#include <cassert>
#include <chrono>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <vector>

#include "abv/rtl_env.h"
#include "abv/tlm_env.h"
#include "analysis/coverage_check.h"
#include "analysis/driver.h"
#include "models/colorconv/colorconv_rtl.h"
#include "models/colorconv/colorconv_tlm_at.h"
#include "models/colorconv/colorconv_tlm_ca.h"
#include "models/des56/des56_rtl.h"
#include "models/des56/des56_tlm_at.h"
#include "models/des56/des56_tlm_ca.h"
#include "models/properties.h"
#include "models/stimulus.h"
#include "sim/clock.h"
#include "support/metrics.h"
#include "support/trace_sink.h"
#include "support/tracelog.h"
#include "tlm/record_source.h"
#include "tlm/recorder.h"
#include "tlm/socket.h"

namespace repro::models {
namespace {

using Clock = std::chrono::steady_clock;

constexpr sim::Time kForever = ~sim::Time{0} / 2;

// Selects the configured properties: explicit indices when given, otherwise
// the first `checkers` entries of the suite.
std::vector<psl::RtlProperty> pick(const PropertySuite& suite,
                                   const RunConfig& config) {
  std::vector<psl::RtlProperty> out;
  if (!config.property_indices.empty()) {
    for (size_t i : config.property_indices) {
      if (i < suite.properties.size()) out.push_back(suite.properties[i]);
    }
  } else {
    const size_t n = std::min(config.checkers, suite.properties.size());
    out.assign(suite.properties.begin(), suite.properties.begin() + n);
  }
  out.insert(out.end(), config.extra_properties.begin(),
             config.extra_properties.end());
  return out;
}

bool abv_enabled(const RunConfig& config) {
  return config.checkers > 0 || !config.property_indices.empty() ||
         !config.extra_properties.empty();
}

checker::CheckerOptions checker_options(const RunConfig& config) {
  checker::CheckerOptions options;
  options.compiled = config.compiled_checkers;
  options.vectorized = config.engine.vectorized;
  options.failure_log_cap = config.observability.failure_log_cap;
  return options;
}

// Observability outputs opened for one TLM run. Both streams (may be null)
// must stay alive until the end of the run: the sink's destructor writes the
// trace file, and the engine holds a raw pointer to the metrics stream until
// finish() emits the final snapshot line.
struct TlmOutputs {
  std::unique_ptr<support::TraceSink> trace;
  std::unique_ptr<std::ofstream> metrics;
};

// Applies the engine and observability knob groups shared by every TLM
// runner.
TlmOutputs configure_tlm_env(abv::TlmAbvEnv& env, const RunConfig& config) {
  env.set_engine_config(config.engine);
  env.set_witness_depth(config.observability.witness_depth);
  env.set_checker_options(checker_options(config));
  TlmOutputs out;
  if (!config.observability.trace_path.empty()) {
    out.trace =
        std::make_unique<support::TraceSink>(config.observability.trace_path);
    env.set_trace_sink(out.trace.get());
  }
  if (!config.observability.metrics_path.empty()) {
    out.metrics =
        std::make_unique<std::ofstream>(config.observability.metrics_path);
    env.set_metrics_output(out.metrics.get(),
                           config.observability.metrics_interval);
  }
  return out;
}

// Copies the environment's merged metrics into the result and adds the sim
// kernel gauges on top (also the only metrics present at RTL / without ABV).
void record_sim_metrics(RunResult& result, support::MetricsSnapshot base) {
  result.metrics = std::move(base);
  result.metrics.gauges["sim.kernel_events"] = result.kernel_events;
  result.metrics.gauges["sim.delta_cycles"] = result.delta_cycles;
  result.metrics.gauges["sim.transactions"] = result.transactions;
  result.metrics.gauges["sim.wall_ns"] =
      static_cast<uint64_t>(result.wall_seconds * 1e9);
}

// Prune plan prepared once per run and handed (by reference) to the level
// runner. `active` is false when pruning is off or ABV is disabled; `audit`
// selects the AnalysisMode::kError cross-check (pruned properties still run
// and every derived verdict is compared against the real one, PRN003).
struct PrunePrep {
  analysis::PrunePlan plan;
  bool active = false;
  bool audit = false;
};

template <typename Env>
void collect_prune_audit(const Env& env, const PrunePrep& prune,
                         RunResult& result) {
  if (!prune.active || !prune.audit) return;
  std::vector<analysis::Diagnostic> diags = env.prune_cross_check();
  result.analysis_diagnostics.insert(result.analysis_diagnostics.end(),
                                     std::make_move_iterator(diags.begin()),
                                     std::make_move_iterator(diags.end()));
}

// Abstracts the selected properties for TLM-AT; returns the non-deleted ones
// and counts deletions.
std::vector<psl::TlmProperty> abstract_for_at(const RunConfig& config,
                                              const PropertySuite& suite,
                                              size_t& deleted) {
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  options.push_mode = config.abstraction.push_mode;
  std::vector<psl::TlmProperty> out;
  deleted = 0;
  for (const psl::RtlProperty& p : pick(suite, config)) {
    rewrite::AbstractionOutcome outcome = rewrite::abstract_property(p, options);
    if (outcome.deleted()) {
      ++deleted;
    } else {
      out.push_back(*outcome.property);
    }
  }
  return out;
}

// Builds the prune plan over the formulas this run will actually check: the
// RTL formulas for RTL / TLM-CA / the unabstracted-replay ablation
// (clock-edge context keys), the abstracted TLM formulas for the normal
// TLM-AT flow (basic transaction context).
PrunePrep prepare_prune(const RunConfig& config, const PropertySuite& suite) {
  PrunePrep prep;
  prep.plan.mode = config.analysis.prune;
  if (config.analysis.prune == analysis::PruneMode::kOff ||
      !abv_enabled(config)) {
    return prep;
  }
  std::vector<analysis::PruneInput> inputs;
  if (config.level == Level::kTlmAt &&
      !config.abstraction.at_replay_unabstracted) {
    size_t deleted = 0;
    for (const psl::TlmProperty& q : abstract_for_at(config, suite, deleted)) {
      inputs.push_back(analysis::make_prune_input(q));
    }
  } else {
    for (const psl::RtlProperty& p : pick(suite, config)) {
      inputs.push_back(analysis::make_prune_input(p));
    }
  }
  analysis::SymbolicPruneOptions symbolic;
  symbolic.enabled = config.analysis.symbolic_budget > 0;
  symbolic.clock_period_ns = config.clock_period_ns;
  symbolic.step_budget = config.analysis.symbolic_budget;
  prep.plan = analysis::build_prune_plan(inputs, config.analysis.prune,
                                         /*atom_cap=*/20, symbolic);
  prep.active = true;
  prep.audit = config.analysis == AnalysisMode::kError;
  return prep;
}

// Trace-log recording prepared once per runner (IngestConfig.record_path).
// The meta block names this run's stream identity; the observable dictionary
// is adopted from the first record so the producing model's key-table order
// is preserved verbatim (witness byte-identity depends on it).
struct IngestPrep {
  tlm::RecordStreamMeta meta;
  std::unique_ptr<support::tracelog::TraceWriter> writer;
};

IngestPrep prepare_ingest(const RunConfig& config) {
  IngestPrep prep;
  prep.meta.design = to_string(config.design);
  prep.meta.level = to_string(config.level);
  prep.meta.clock_period_ns = config.clock_period_ns;
  if (!config.ingest.record_path.empty()) {
    prep.writer = std::make_unique<support::tracelog::TraceWriter>(
        config.ingest.record_path, prep.meta);
  }
  return prep;
}

void finish_ingest(IngestPrep& ingest, RunResult& result) {
  if (ingest.writer != nullptr && !ingest.writer->finish()) {
    result.ingest_error = ingest.writer->error();
  }
}

// Runs a live TLM simulation to completion. With a consumer (checkers or a
// record writer) the kernel is stepped through a LiveRecordSource and the
// completed transactions are drained span by span into the environment —
// the pull-based ingest path; the record stream (and therefore every
// verdict) is identical to the historical push-based subscription. Without
// a consumer the kernel just runs (the recorder stays inactive, so targets
// skip snapshot materialization).
void run_live_tlm(sim::Kernel& kernel, tlm::TransactionRecorder& recorder,
                  abv::TlmAbvEnv& env, const IngestPrep& ingest, bool pull) {
  if (pull) {
    tlm::LiveRecordSource source(kernel, recorder, ingest.meta, kForever);
    for (tlm::RecordSpan span = source.next(); !span.empty();
         span = source.next()) {
      env.on_records(span.begin, span.end);
    }
  } else {
    kernel.run(kForever);
  }
  env.finish();
}

// ---- DES56 -----------------------------------------------------------------

RunResult run_des56_rtl(const RunConfig& config, const PropertySuite& suite,
                        const PrunePrep& prune) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", config.clock_period_ns, 0);
  Des56Rtl duv(kernel, clock);
  sim::Signal<bool> monitor_en(kernel, "monitor_en", true);

  const std::vector<DesOp> ops = make_des_ops(config.workload, config.seed);
  Des56DriverModel driver(ops);
  clock.on_negedge([&] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    const Des56Inputs in = driver.tick(duv.rdy.read(), duv.out.read());
    duv.ds.write(in.ds);
    if (in.ds) {
      duv.indata.write(in.indata);
      duv.key.write(in.key);
      duv.decrypt.write(in.decrypt);
    }
  });

  abv::SignalBag bag;
  duv.register_signals(bag);
  bag.add("monitor_en", monitor_en);
  IngestPrep ingest = prepare_ingest(config);
  abv::RtlAbvEnv env(kernel, bag);
  env.set_checker_options(checker_options(config));
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    for (const psl::RtlProperty& p : pick(suite, config)) {
      env.add_property(p);
    }
  }
  if (abv_enabled(config) || ingest.writer != nullptr) env.attach(clock);

  RunResult result;
  const auto t0 = Clock::now();
  kernel.run(kForever);
  env.finish();
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = kernel.now();
  result.kernel_events = kernel.events_executed();
  result.delta_cycles = kernel.delta_cycles();
  result.ops_completed = driver.ops_completed();
  result.mismatches = driver.mismatches();
  result.functional_ok =
      driver.mismatches() == 0 && driver.ops_completed() == ops.size();
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, {});
  finish_ingest(ingest, result);
  return result;
}

RunResult run_des56_tlm_ca(const RunConfig& config, const PropertySuite& suite,
                        const PrunePrep& prune) {
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  Des56TlmCa target;
  target.set_static_observable("monitor_en", 1);
  tlm::InitiatorSocket socket(kernel, &recorder, "des56_ca");
  socket.bind(target);

  const std::vector<DesOp> ops = make_des_ops(config.workload, config.seed);
  Des56DriverModel driver(ops);

  IngestPrep ingest = prepare_ingest(config);
  abv::TlmAbvEnv env(suite.clock_period_ns);
  const TlmOutputs outputs = configure_tlm_env(env, config);
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    // TLM-CA rows of Table I: the original RTL properties, unabstracted,
    // replayed on the per-cycle transaction stream.
    for (const psl::RtlProperty& p : pick(suite, config)) {
      env.add_rtl_property(p);
    }
  }
  const bool pull = abv_enabled(config) || ingest.writer != nullptr;
  if (pull) env.bind();

  // Per-cycle transaction loop. Inputs at edge k+1 derive from the outputs
  // returned by the edge-k transaction, exactly like the RTL driver.
  auto next_inputs = std::make_shared<Des56Inputs>();
  auto payload = std::make_shared<tlm::Payload>();
  std::function<void()> cycle = [&kernel, &socket, &driver, next_inputs, payload,
                                 &config, &cycle] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    payload->command = tlm::Command::kWrite;
    payload->data.assign({next_inputs->ds ? uint64_t{1} : 0, next_inputs->indata,
                          next_inputs->key,
                          next_inputs->decrypt ? uint64_t{1} : 0});
    socket.transport(*payload);
    const bool rdy = payload->data[1] != 0;
    const uint64_t out = payload->data[0];
    *next_inputs = driver.tick(rdy, out);
    kernel.schedule_at(kernel.now() + config.clock_period_ns, cycle);
  };
  kernel.schedule_at(0, cycle);

  RunResult result;
  const auto t0 = Clock::now();
  run_live_tlm(kernel, recorder, env, ingest, pull);
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = kernel.now();
  result.kernel_events = kernel.events_executed();
  result.delta_cycles = kernel.delta_cycles();
  result.transactions = recorder.transactions();
  result.ops_completed = driver.ops_completed();
  result.mismatches = driver.mismatches();
  result.functional_ok =
      driver.mismatches() == 0 && driver.ops_completed() == ops.size();
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, env.metrics_snapshot());
  finish_ingest(ingest, result);
  return result;
}

RunResult run_des56_tlm_at(const RunConfig& config, const PropertySuite& suite,
                        const PrunePrep& prune) {
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  Des56TlmAt target(kernel, &recorder, config.clock_period_ns);
  target.set_static_observable("monitor_en", 1);
  tlm::InitiatorSocket socket(kernel, &recorder, "des56_at");
  socket.bind(target);

  const std::vector<DesOp> ops = make_des_ops(config.workload, config.seed);
  std::vector<uint64_t> expected;
  expected.reserve(ops.size());
  for (const DesOp& op : ops) {
    expected.push_back(op.decrypt ? des_decrypt(op.indata, op.key)
                                  : des_encrypt(op.indata, op.key));
  }

  RunResult result;
  size_t deleted = 0;
  IngestPrep ingest = prepare_ingest(config);
  abv::TlmAbvEnv env(suite.clock_period_ns);
  const TlmOutputs outputs = configure_tlm_env(env, config);
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    if (config.abstraction.at_replay_unabstracted) {
      for (const psl::RtlProperty& p : pick(suite, config)) {
        env.add_rtl_property(p);
      }
    } else {
      for (const psl::TlmProperty& q : abstract_for_at(config, suite, deleted)) {
        env.add_property(q);
      }
    }
  }
  const bool pull = abv_enabled(config) || ingest.writer != nullptr;
  if (pull) env.bind();
  result.properties_deleted = deleted;

  const sim::Time c = config.clock_period_ns;
  auto op_index = std::make_shared<size_t>(0);
  auto completed = std::make_shared<size_t>(0);
  auto mismatches = std::make_shared<size_t>(0);
  std::function<void()> submit = [&, op_index, completed, mismatches] {
    const size_t i = (*op_index)++;
    tlm::Payload write;
    write.command = tlm::Command::kWrite;
    write.data = {ops[i].indata, ops[i].key, ops[i].decrypt ? uint64_t{1} : 0};
    socket.transport(write);
    tlm::Payload read;
    read.command = tlm::Command::kRead;
    const sim::Time done = socket.transport(read);
    if (read.data.empty() || read.data[0] != expected[i]) ++(*mismatches);
    ++(*completed);
    if (i + 1 < ops.size()) {
      // Same schedule as the RTL driver: ds_{i+1} rises 18 + gap cycles
      // after ds_i.
      kernel.schedule_at(kernel.now() + (18 + ops[i + 1].gap) * c, submit);
    } else {
      kernel.schedule_at(done + 4 * c, [&kernel] { kernel.stop(); });
    }
  };
  if (!ops.empty()) {
    kernel.schedule_at((ops[0].gap + 1) * c, submit);
  }

  const auto t0 = Clock::now();
  run_live_tlm(kernel, recorder, env, ingest, pull);
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = kernel.now();
  result.kernel_events = kernel.events_executed();
  result.delta_cycles = kernel.delta_cycles();
  result.transactions = recorder.transactions();
  result.ops_completed = *completed;
  result.mismatches = *mismatches;
  result.functional_ok = *mismatches == 0 && *completed == ops.size();
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, env.metrics_snapshot());
  finish_ingest(ingest, result);
  return result;
}

// ---- ColorConv --------------------------------------------------------------

RunResult run_colorconv_rtl(const RunConfig& config, const PropertySuite& suite,
                        const PrunePrep& prune) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", config.clock_period_ns, 0);
  ColorConvRtl duv(kernel, clock);
  sim::Signal<bool> sof(kernel, "sof", false);
  sim::Signal<bool> monitor_en(kernel, "monitor_en", true);

  const std::vector<CcBurst> bursts = make_cc_bursts(config.workload, config.seed);
  size_t total_pixels = 0;
  for (const CcBurst& b : bursts) total_pixels += b.pixels.size();
  ColorConvDriverModel driver(bursts);
  clock.on_negedge([&] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    const ColorConvDrive drive =
        driver.tick(duv.rdy.read(), static_cast<uint8_t>(duv.y.read()),
                    static_cast<uint8_t>(duv.cb.read()),
                    static_cast<uint8_t>(duv.cr.read()));
    duv.ds.write(drive.inputs.ds);
    duv.r.write(drive.inputs.r);
    duv.g.write(drive.inputs.g);
    duv.b.write(drive.inputs.b);
    sof.write(drive.sof);
  });

  abv::SignalBag bag;
  duv.register_signals(bag);
  bag.add("sof", sof);
  bag.add("monitor_en", monitor_en);
  IngestPrep ingest = prepare_ingest(config);
  abv::RtlAbvEnv env(kernel, bag);
  env.set_checker_options(checker_options(config));
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    for (const psl::RtlProperty& p : pick(suite, config)) {
      env.add_property(p);
    }
  }
  if (abv_enabled(config) || ingest.writer != nullptr) env.attach(clock);

  RunResult result;
  const auto t0 = Clock::now();
  kernel.run(kForever);
  env.finish();
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = kernel.now();
  result.kernel_events = kernel.events_executed();
  result.delta_cycles = kernel.delta_cycles();
  result.ops_completed = driver.pixels_completed();
  result.mismatches = driver.mismatches();
  result.functional_ok =
      driver.mismatches() == 0 && driver.pixels_completed() == total_pixels;
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, {});
  finish_ingest(ingest, result);
  return result;
}

RunResult run_colorconv_tlm_ca(const RunConfig& config,
                               const PropertySuite& suite,
                               const PrunePrep& prune) {
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  ColorConvTlmCa target;
  target.set_static_observable("monitor_en", 1);
  tlm::InitiatorSocket socket(kernel, &recorder, "colorconv_ca");
  socket.bind(target);

  const std::vector<CcBurst> bursts = make_cc_bursts(config.workload, config.seed);
  size_t total_pixels = 0;
  for (const CcBurst& b : bursts) total_pixels += b.pixels.size();
  ColorConvDriverModel driver(bursts);

  IngestPrep ingest = prepare_ingest(config);
  abv::TlmAbvEnv env(suite.clock_period_ns);
  const TlmOutputs outputs = configure_tlm_env(env, config);
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    for (const psl::RtlProperty& p : pick(suite, config)) {
      env.add_rtl_property(p);
    }
  }
  const bool pull = abv_enabled(config) || ingest.writer != nullptr;
  if (pull) env.bind();

  auto next_drive = std::make_shared<ColorConvDrive>();
  auto payload = std::make_shared<tlm::Payload>();
  std::function<void()> cycle = [&kernel, &socket, &driver, next_drive, payload,
                                 &config, &cycle] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    payload->command = tlm::Command::kWrite;
    payload->data.assign({next_drive->inputs.ds ? uint64_t{1} : 0,
                          uint64_t{next_drive->inputs.r},
                          uint64_t{next_drive->inputs.g},
                          uint64_t{next_drive->inputs.b},
                          next_drive->sof ? uint64_t{1} : 0});
    socket.transport(*payload);
    const bool rdy = payload->data[0] != 0;
    *next_drive = driver.tick(rdy, static_cast<uint8_t>(payload->data[1]),
                              static_cast<uint8_t>(payload->data[2]),
                              static_cast<uint8_t>(payload->data[3]));
    kernel.schedule_at(kernel.now() + config.clock_period_ns, cycle);
  };
  kernel.schedule_at(0, cycle);

  RunResult result;
  const auto t0 = Clock::now();
  run_live_tlm(kernel, recorder, env, ingest, pull);
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = kernel.now();
  result.kernel_events = kernel.events_executed();
  result.delta_cycles = kernel.delta_cycles();
  result.transactions = recorder.transactions();
  result.ops_completed = driver.pixels_completed();
  result.mismatches = driver.mismatches();
  result.functional_ok =
      driver.mismatches() == 0 && driver.pixels_completed() == total_pixels;
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, env.metrics_snapshot());
  finish_ingest(ingest, result);
  return result;
}

RunResult run_colorconv_tlm_at(const RunConfig& config,
                               const PropertySuite& suite,
                               const PrunePrep& prune) {
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  ColorConvTlmAt target(kernel, &recorder, config.clock_period_ns);
  target.set_static_observable("monitor_en", 1);
  tlm::InitiatorSocket socket(kernel, &recorder, "colorconv_at");
  socket.bind(target);

  const std::vector<CcBurst> bursts = make_cc_bursts(config.workload, config.seed);
  size_t total_pixels = 0;
  for (const CcBurst& b : bursts) total_pixels += b.pixels.size();

  RunResult result;
  size_t deleted = 0;
  IngestPrep ingest = prepare_ingest(config);
  abv::TlmAbvEnv env(suite.clock_period_ns);
  const TlmOutputs outputs = configure_tlm_env(env, config);
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    if (config.abstraction.at_replay_unabstracted) {
      for (const psl::RtlProperty& p : pick(suite, config)) {
        env.add_rtl_property(p);
      }
    } else {
      for (const psl::TlmProperty& q : abstract_for_at(config, suite, deleted)) {
        env.add_property(q);
      }
    }
  }
  const bool pull = abv_enabled(config) || ingest.writer != nullptr;
  if (pull) env.bind();
  result.properties_deleted = deleted;

  // Temporally-decoupled initiator (TLM-2.0 LT style): a whole burst is
  // issued from a single kernel event, with local time offsets carried in
  // the transport delay. Record delivery times are unchanged, so the
  // verification environment sees the exact same event stream as before.
  const sim::Time c = config.clock_period_ns;
  auto burst_index = std::make_shared<size_t>(0);
  auto completed = std::make_shared<size_t>(0);
  auto mismatches = std::make_shared<size_t>(0);
  auto write = std::make_shared<tlm::Payload>();
  auto read = std::make_shared<tlm::Payload>();
  std::function<void()> burst_fn = [&, burst_index, completed, mismatches, write,
                                    read] {
    const CcBurst& burst = bursts[*burst_index];
    const sim::Time t0 = kernel.now();
    const size_t n = burst.pixels.size();
    for (size_t i = 0; i < n; ++i) {
      const Pixel& p = burst.pixels[i];
      write->command = tlm::Command::kWrite;
      write->data.assign({uint64_t{p.r}, uint64_t{p.g}, uint64_t{p.b},
                          i == 0 ? uint64_t{1} : uint64_t{0}});
      sim::Time write_delay = i * c;
      socket.transport(*write, write_delay);
      read->command = tlm::Command::kRead;
      read->data.clear();
      // Mid-burst, pixel i's result instant (i*c + 8c) coincides with the
      // write of pixel i+8, whose record carries the identical full
      // snapshot; the read phase is then silent to avoid a duplicated
      // evaluation point.
      read->record = i + ColorConvTlmAt::kLatencyCycles >= n;
      sim::Time read_delay = i * c;
      socket.transport(*read, read_delay);
      const Ycbcr expect = colorconv_ref(p.r, p.g, p.b);
      if (read->data.size() != 3 || read->data[0] != expect.y ||
          read->data[1] != expect.cb || read->data[2] != expect.cr) {
        ++(*mismatches);
      }
      ++(*completed);
    }
    // Mark the ds and rdy falling instants (Def. III.1).
    target.emit_idle(t0 + n * c);
    target.emit_idle(t0 + (n + ColorConvTlmAt::kLatencyCycles) * c);
    ++(*burst_index);
    if (*burst_index < bursts.size()) {
      kernel.schedule_at(t0 + (n + bursts[*burst_index].gap) * c, burst_fn);
    } else {
      kernel.schedule_at(t0 + (n + 4 + ColorConvTlmAt::kLatencyCycles) * c,
                         [&kernel] { kernel.stop(); });
    }
  };
  if (!bursts.empty()) {
    kernel.schedule_at((bursts[0].gap + 1) * c, burst_fn);
  }

  const auto t0 = Clock::now();
  run_live_tlm(kernel, recorder, env, ingest, pull);
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = kernel.now();
  result.kernel_events = kernel.events_executed();
  result.delta_cycles = kernel.delta_cycles();
  result.transactions = recorder.transactions();
  result.ops_completed = *completed;
  result.mismatches = *mismatches;
  result.functional_ok = *mismatches == 0 && *completed == total_pixels;
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, env.metrics_snapshot());
  finish_ingest(ingest, result);
  return result;
}

// ---- Offline replay --------------------------------------------------------

// Replays a recorded TLM stream through an environment configured exactly
// like the live runner for (design, level) would configure it — same
// property registration, abstraction, prune plan and engine knobs — so
// verdicts, witness rings, coverage counters and prune-derived rows come out
// byte-identical to the live run.
RunResult run_tlm_replay(const RunConfig& config, const PropertySuite& suite,
                         const PrunePrep& prune, tlm::RecordSource& source) {
  RunResult result;
  size_t deleted = 0;
  IngestPrep ingest = prepare_ingest(config);
  abv::TlmAbvEnv env(suite.clock_period_ns);
  const TlmOutputs outputs = configure_tlm_env(env, config);
  if (ingest.writer != nullptr) env.set_record_writer(ingest.writer.get());
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    if (config.level == Level::kTlmAt &&
        !config.abstraction.at_replay_unabstracted) {
      for (const psl::TlmProperty& q : abstract_for_at(config, suite, deleted)) {
        env.add_property(q);
      }
    } else {
      for (const psl::RtlProperty& p : pick(suite, config)) {
        env.add_rtl_property(p);
      }
    }
  }
  env.bind();
  result.properties_deleted = deleted;

  const auto t0 = Clock::now();
  uint64_t records = 0;
  sim::Time last_end = 0;
  for (tlm::RecordSpan span = source.next(); !span.empty();
       span = source.next()) {
    env.on_records(span.begin, span.end);
    records += span.size();
    last_end = span.end[-1].end;
  }
  env.finish();
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = last_end;
  result.transactions = records;
  // No DUV executes during replay, so the driver self-check has no subject;
  // functional verification happened when the stream was recorded.
  result.functional_ok = true;
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, env.metrics_snapshot());
  finish_ingest(ingest, result);
  return result;
}

// RTL replay: each record is one settled clock-edge sample (address 0 =
// rising, 1 = falling); the recorded snapshots substitute for sampling a
// live design, so the kernel and signal bag are inert placeholders.
RunResult run_rtl_replay(const RunConfig& config, const PropertySuite& suite,
                         const PrunePrep& prune, tlm::RecordSource& source) {
  sim::Kernel kernel;
  abv::SignalBag bag;
  IngestPrep ingest = prepare_ingest(config);
  abv::RtlAbvEnv env(kernel, bag);
  env.set_checker_options(checker_options(config));
  if (prune.active) env.set_prune_plan(&prune.plan, prune.audit);
  if (abv_enabled(config)) {
    for (const psl::RtlProperty& p : pick(suite, config)) {
      env.add_property(p);
    }
  }

  RunResult result;
  const auto t0 = Clock::now();
  sim::Time last_end = 0;
  for (tlm::RecordSpan span = source.next(); !span.empty();
       span = source.next()) {
    for (const tlm::TransactionRecord* r = span.begin; r != span.end; ++r) {
      if (ingest.writer != nullptr) ingest.writer->append(*r);
      env.on_sample(r->end, r->address == 0, r->observables);
      last_end = r->end;
    }
  }
  env.finish();
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.sim_end_ns = last_end;
  result.functional_ok = true;  // see run_tlm_replay
  collect_prune_audit(env, prune, result);
  result.report = env.report();
  result.properties_ok = env.all_ok();
  record_sim_metrics(result, {});
  finish_ingest(ingest, result);
  return result;
}

// Runs the static analysis battery over the configured properties. Returns
// true when the simulation may proceed (always, except kError with errors).
bool run_analysis(const RunConfig& config, const PropertySuite& suite,
                  RunResult& result) {
  analysis::AnalysisOptions options;
  options.abstraction.clock_period_ns = suite.clock_period_ns;
  options.abstraction.abstracted_signals = suite.abstracted_signals;
  options.abstraction.push_mode = config.abstraction.push_mode;
  options.symbolic_budget = config.analysis.symbolic_budget;
  if (config.level == Level::kTlmAt && !config.abstraction.at_replay_unabstracted) {
    // Normal AT flow: the original formula binds at RTL, the abstracted one
    // against the transaction snapshots of the AT target.
    options.rtl_observables = level_observables(config.design, Level::kRtl);
    options.tlm_observables = level_observables(config.design, Level::kTlmAt);
  } else {
    // RTL, TLM-CA and the unabstracted-replay ablation all evaluate the
    // original RTL formulas directly against this level's observables.
    options.rtl_observables = level_observables(config.design, config.level);
  }

  analysis::Driver driver(options);
  for (const psl::RtlProperty& p : pick(suite, config)) {
    driver.analyze(p);
  }
  result.analysis_ok = driver.ok();
  for (const analysis::PropertyAnalysis& r : driver.results()) {
    result.analysis_diagnostics.insert(result.analysis_diagnostics.end(),
                                       r.diagnostics.begin(),
                                       r.diagnostics.end());
  }
  return result.analysis_ok || config.analysis != AnalysisMode::kError;
}

// Shared post-run tail of both run_simulation overloads: merges the
// analysis/prune diagnostics in their documented order, writes the prune
// plan, and appends the static-vs-dynamic coverage cross-check.
void finalize_run(const RunConfig& config, const PrunePrep& prune,
                  RunResult& analyzed, RunResult& result) {
  // Merge diagnostics: static analysis first, then the plan's
  // PRN001/002/004 notes, then the PRN003 cross-check errors the runner
  // appended (the only thing in result.analysis_diagnostics at this point).
  std::vector<analysis::Diagnostic> prune_errors =
      std::move(result.analysis_diagnostics);
  result.analysis_diagnostics = std::move(analyzed.analysis_diagnostics);
  if (prune.active) {
    std::vector<analysis::Diagnostic> notes = prune.plan.diagnostics();
    result.analysis_diagnostics.insert(result.analysis_diagnostics.end(),
                                       std::make_move_iterator(notes.begin()),
                                       std::make_move_iterator(notes.end()));
  }
  result.analysis_ok = analyzed.analysis_ok && prune_errors.empty();
  result.analysis_diagnostics.insert(
      result.analysis_diagnostics.end(),
      std::make_move_iterator(prune_errors.begin()),
      std::make_move_iterator(prune_errors.end()));
  result.prune_plan = prune.plan;
  if (prune.active && !config.observability.prune_plan_path.empty()) {
    std::ofstream plan_out(config.observability.prune_plan_path);
    prune.plan.write_json(plan_out);
  }

  // Post-run static-vs-dynamic cross-check: reconcile the analysis layer's
  // vacuity predictions with the coverage the run actually observed
  // (COV001/COV002 warnings appended after the static diagnostics).
  if (config.analysis != AnalysisMode::kOff && abv_enabled(config)) {
    std::vector<analysis::DynamicCoverage> observed;
    for (const abv::PropertyReport& p : result.report.properties()) {
      // Derived (pruned) rows carry no dynamic evidence; auditing them for
      // vacuity would only restate the prune decision.
      if (!p.prune.empty()) continue;
      analysis::DynamicCoverage c;
      c.property = p.name;
      c.activations = p.activations;
      c.failures = p.failures;
      c.real_passes = p.real_passes;
      c.vacuous_passes = p.vacuous_passes;
      observed.push_back(std::move(c));
    }
    std::vector<analysis::Diagnostic> cov =
        analysis::cross_check_coverage(result.analysis_diagnostics, observed);
    result.analysis_diagnostics.insert(result.analysis_diagnostics.end(),
                                       std::make_move_iterator(cov.begin()),
                                       std::make_move_iterator(cov.end()));
  }
}

}  // namespace

std::vector<std::string> level_observables(Design d, Level l) {
  switch (d) {
    case Design::kDes56:
      switch (l) {
        case Level::kRtl:
        case Level::kTlmCa:
          return {"ds",  "indata",        "key",
                  "decrypt", "out",       "rdy",
                  "rdy_next_cycle", "rdy_next_next_cycle", "monitor_en"};
        case Level::kTlmAt:
          return {"ds", "indata", "key", "decrypt", "out", "rdy",
                  "monitor_en"};
      }
      break;
    case Design::kColorConv:
      switch (l) {
        case Level::kRtl:
          return {"ds", "r",  "g",  "b",   "y",
                  "cb", "cr", "rdy", "rdy_next_cycle", "sof", "monitor_en"};
        case Level::kTlmCa:
          return {"ds", "r",  "g",  "b",   "sof", "y",
                  "cb", "cr", "rdy", "rdy_next_cycle", "monitor_en"};
        case Level::kTlmAt:
          return {"ds", "r",  "g",  "b",   "sof", "y",
                  "cb", "cr", "rdy", "monitor_en"};
      }
      break;
  }
  return {};
}

const char* to_string(Design d) {
  switch (d) {
    case Design::kDes56: return "DES56";
    case Design::kColorConv: return "ColorConv";
  }
  return "?";
}

const char* to_string(Level l) {
  switch (l) {
    case Level::kRtl: return "RTL";
    case Level::kTlmCa: return "TLM-CA";
    case Level::kTlmAt: return "TLM-AT";
  }
  return "?";
}

bool parse_design(const std::string& name, Design& out) {
  for (Design d : {Design::kDes56, Design::kColorConv}) {
    if (name == to_string(d)) {
      out = d;
      return true;
    }
  }
  return false;
}

bool parse_level(const std::string& name, Level& out) {
  for (Level l : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    if (name == to_string(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

RunResult run_simulation(const RunConfig& config) {
  if (!config.ingest.replay_path.empty()) {
    // Offline replay: decode + validate the log, check its identity against
    // this configuration, then feed it through the source-based overload.
    RunResult result;
    support::tracelog::TraceReader reader;
    if (std::optional<support::tracelog::TraceError> err =
            reader.open(config.ingest.replay_path)) {
      result.ingest_error = err->to_string();
      return result;
    }
    tlm::RecordStreamMeta expected;
    expected.design = to_string(config.design);
    expected.level = to_string(config.level);
    expected.clock_period_ns = config.clock_period_ns;
    expected.observables = level_observables(config.design, config.level);
    if (std::optional<support::tracelog::TraceError> err =
            support::tracelog::validate_meta(reader.meta(), expected)) {
      result.ingest_error = err->to_string();
      return result;
    }
    support::tracelog::TraceReplaySource source(std::move(reader));
    return run_simulation(config, source);
  }

  const PropertySuite suite =
      config.design == Design::kDes56 ? des56_suite() : colorconv_suite();

  // Pre-simulation static analysis. Uses its own pass manager, so it leaves
  // the simulated configuration (and its reports) untouched.
  RunResult analyzed;
  if (config.analysis != AnalysisMode::kOff && abv_enabled(config)) {
    if (!run_analysis(config, suite, analyzed)) {
      return analyzed;  // kError: diagnostics block the simulation
    }
  }

  const PrunePrep prune = prepare_prune(config, suite);

  RunResult result;
  switch (config.design) {
    case Design::kDes56:
      switch (config.level) {
        case Level::kRtl: result = run_des56_rtl(config, suite, prune); break;
        case Level::kTlmCa: result = run_des56_tlm_ca(config, suite, prune); break;
        case Level::kTlmAt: result = run_des56_tlm_at(config, suite, prune); break;
      }
      break;
    case Design::kColorConv:
      switch (config.level) {
        case Level::kRtl: result = run_colorconv_rtl(config, suite, prune); break;
        case Level::kTlmCa: result = run_colorconv_tlm_ca(config, suite, prune); break;
        case Level::kTlmAt: result = run_colorconv_tlm_at(config, suite, prune); break;
      }
      break;
  }
  finalize_run(config, prune, analyzed, result);
  return result;
}

RunResult run_simulation(const RunConfig& config, tlm::RecordSource& source) {
  const PropertySuite suite =
      config.design == Design::kDes56 ? des56_suite() : colorconv_suite();

  RunResult analyzed;
  if (config.analysis != AnalysisMode::kOff && abv_enabled(config)) {
    if (!run_analysis(config, suite, analyzed)) {
      return analyzed;  // kError: diagnostics block the replay too
    }
  }

  const PrunePrep prune = prepare_prune(config, suite);
  RunResult result = config.level == Level::kRtl
                         ? run_rtl_replay(config, suite, prune, source)
                         : run_tlm_replay(config, suite, prune, source);
  finalize_run(config, prune, analyzed, result);
  return result;
}

}  // namespace repro::models
