// Workload generation and drivers for the three abstraction levels.
//
// The same generated operation schedule drives the RTL, TLM-CA and TLM-AT
// models; the per-cycle driver logic is factored into pure "driver model"
// state machines so that the RTL testbench (signals, falling-edge process)
// and the TLM-CA testbench (per-cycle transactions) produce bit- and
// cycle-identical input streams — the precondition for timing equivalence
// (Def. III.1). The TLM-AT drivers replay the same schedule on the
// transaction timeline.
#ifndef REPRO_MODELS_STIMULUS_H_
#define REPRO_MODELS_STIMULUS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "models/colorconv/colorconv_core.h"
#include "models/des56/des56_cycle.h"
#include "models/des56/des_core.h"

namespace repro::models {

// ---- DES56 workload --------------------------------------------------------

struct DesOp {
  uint64_t indata = 0;
  uint64_t key = 0;
  bool decrypt = false;
  uint32_t gap = 0;  // idle cycles before ds is asserted
};

// Deterministic schedule; roughly one op in eight encrypts the all-zero
// block so that property p1 fires non-vacuously.
std::vector<DesOp> make_des_ops(size_t count, uint64_t seed);

// One-outstanding protocol state machine, advanced once per clock edge.
// tick() receives the outputs observed at edge k and returns the inputs to
// apply at edge k+1.
class Des56DriverModel {
 public:
  explicit Des56DriverModel(const std::vector<DesOp>& ops);

  Des56Inputs tick(bool rdy, uint64_t out);

  // All operations issued, checked, and the drain window has elapsed.
  bool done() const { return phase_ == Phase::kDone; }
  size_t ops_completed() const { return completed_; }
  size_t mismatches() const { return mismatches_; }
  uint64_t expected_result(size_t op_index) const { return expected_[op_index]; }

 private:
  enum class Phase { kGap, kAssert, kWait, kDrain, kDone };

  const std::vector<DesOp>& ops_;
  std::vector<uint64_t> expected_;
  Des56Inputs held_;  // last driven data values (ds excluded)
  Phase phase_ = Phase::kGap;
  size_t index_ = 0;      // next op to issue
  size_t completed_ = 0;  // ops whose result has been checked
  uint32_t countdown_ = 0;
  size_t mismatches_ = 0;

  static constexpr uint32_t kDrainCycles = 4;
};

// ---- ColorConv workload ----------------------------------------------------

struct Pixel {
  uint8_t r = 0, g = 0, b = 0;
};

struct CcBurst {
  uint32_t gap = 9;  // idle cycles before the burst; >= 9 keeps sof exact
  std::vector<Pixel> pixels;
};

// Deterministic bursts (lengths 4..24) seeded with the corner-case pixels
// the properties fire on: black, white and grayscale.
std::vector<CcBurst> make_cc_bursts(size_t total_pixels, uint64_t seed);

struct ColorConvDrive {
  ColorConvInputs inputs;
  bool sof = false;  // first pixel of a burst entering an empty pipeline
};

// Streaming driver state machine; tick() semantics as for DES56.
class ColorConvDriverModel {
 public:
  explicit ColorConvDriverModel(const std::vector<CcBurst>& bursts);

  ColorConvDrive tick(bool rdy, uint8_t y, uint8_t cb, uint8_t cr);

  bool done() const { return phase_ == Phase::kDone; }
  size_t pixels_completed() const { return completed_; }
  size_t mismatches() const { return mismatches_; }

 private:
  enum class Phase { kGap, kBurst, kDrain, kDone };

  const std::vector<CcBurst>& bursts_;
  std::vector<Ycbcr> expected_;  // FIFO of results awaited, by global index
  ColorConvInputs held_;         // last driven pixel values (ds excluded)
  size_t check_index_ = 0;
  size_t issued_ = 0;
  Phase phase_ = Phase::kGap;
  size_t burst_ = 0;
  size_t pixel_ = 0;
  uint32_t countdown_ = 0;
  size_t completed_ = 0;
  size_t mismatches_ = 0;

  static constexpr uint32_t kDrainCycles = 12;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_STIMULUS_H_
