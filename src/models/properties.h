// Reconstructed PSL property suites for the two testcases (Sec. V: 9
// properties for DES56, 12 for ColorConv). The three DES56 properties of the
// paper's Fig. 3 are included: p1 and p3 verbatim, and p2 both verbatim (for
// the rewriting tests and the ablation bench, as `p2_paper`) and in the
// boolean-operand-until form `p2` used by the experiment suites, which
// abstracts soundly onto sparse TLM-AT transaction streams (see DESIGN.md).
#ifndef REPRO_MODELS_PROPERTIES_H_
#define REPRO_MODELS_PROPERTIES_H_

#include <set>
#include <string>
#include <vector>

#include "psl/ast.h"

namespace repro::models {

struct PropertySuite {
  std::string design;
  // Full RTL property suite, in source order.
  std::vector<psl::RtlProperty> properties;
  // Interface signals removed by the RTL-to-TLM-AT abstraction.
  std::set<std::string> abstracted_signals;
  // Reference RTL clock period (Algorithm III.1).
  psl::TimeNs clock_period_ns = 10;
};

// The 9-property DES56 suite.
PropertySuite des56_suite();
// The 12-property ColorConv suite.
PropertySuite colorconv_suite();

// Fig. 3's p2, exactly as published (next distributed into the until by the
// paper's push_ahead rules). Used by the rewriting tests and by the
// soundness ablation benchmark.
psl::RtlProperty des56_p2_paper();

// Raw property text (parser input), exposed for the pslabs example.
extern const char kDes56PropertyText[];
extern const char kColorConvPropertyText[];

}  // namespace repro::models

#endif  // REPRO_MODELS_PROPERTIES_H_
