#include "models/properties.h"

#include <cassert>

#include "psl/parser.h"

namespace repro::models {

const char kDes56PropertyText[] = R"(
# DES56 RTL property suite (9 properties, clock period 10 ns).
# p1..p3 follow Fig. 3 of the paper; p2 uses the boolean-operand-until form
# (see des56_p2_paper() for the verbatim version).
p1: always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos;
p2: always (!ds || next(!ds until rdy)) @clk_pos;
p3: always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle)
     && next[17](rdy))) @clk_pos;
# Latency and handshake behaviour.
p4: always (!ds || next(!rdy until rdy)) @clk_pos;
p5: always (!ds || (!rdy until rdy)) @clk_pos;
p6: always (!ds || next(rdy release !ds)) @clk_pos;
# Guarded clock context (Def. III.2, clock_expr && var_expr form).
p7: always (!ds || next[17](rdy)) @clk_pos && monitor_en;
# rdy is a single-cycle pulse.
p8: always (!rdy || next(!rdy)) @clk_pos;
# Every accepted operation completes.
p9: always (!ds || eventually! rdy) @clk_pos;
)";

const char kColorConvPropertyText[] = R"(
# ColorConv RTL property suite (12 properties, clock period 10 ns).
c1: always (!ds || next[8](rdy)) @clk_pos;
c2: always (!ds || next[8](y <= 235)) @clk_pos;
c3: always (!ds || next[8](y >= 16)) @clk_pos;
c4: always (!(ds && r == 0 && g == 0 && b == 0)
     || next[8](y == 16 && cb == 128 && cr == 128)) @clk_pos;
c5: always (!(ds && r == 255 && g == 255 && b == 255) || next[8](y == 235)) @clk_pos;
c6: always (!ds || (next[7](rdy_next_cycle) && next[8](rdy))) @clk_pos;
c7: always (!(ds && sof) || (!rdy until rdy)) @clk_pos;
c8: always (!rdy || (cb >= 16 && cb <= 240)) @clk_pos;
c9: always (!rdy || (cr >= 16 && cr <= 240)) @clk_pos;
c10: always (!rdy || (y >= 16 && y <= 235)) @clk_pos;
c11: always (!(ds && sof) || eventually! rdy) @clk_pos;
c12: always (!(ds && r == g && g == b) || next[8](cb == 128 && cr == 128)) @clk_pos;
)";

namespace {

std::vector<psl::RtlProperty> parse_or_die(const char* text) {
  auto parsed = psl::parse_rtl_property_file(text);
  assert(parsed.ok() && "bundled property suite failed to parse");
  return std::move(parsed).take();
}

}  // namespace

PropertySuite des56_suite() {
  PropertySuite suite;
  suite.design = "DES56";
  suite.properties = parse_or_die(kDes56PropertyText);
  assert(suite.properties.size() == 9);
  suite.abstracted_signals = {"rdy_next_cycle", "rdy_next_next_cycle"};
  suite.clock_period_ns = 10;
  return suite;
}

PropertySuite colorconv_suite() {
  PropertySuite suite;
  suite.design = "ColorConv";
  suite.properties = parse_or_die(kColorConvPropertyText);
  assert(suite.properties.size() == 12);
  suite.abstracted_signals = {"rdy_next_cycle"};
  suite.clock_period_ns = 10;
  return suite;
}

psl::RtlProperty des56_p2_paper() {
  auto parsed = psl::parse_rtl_property(
      "p2_paper: always (!ds || next(!ds until next(rdy))) @clk_pos");
  assert(parsed.ok());
  return std::move(parsed).take();
}

}  // namespace repro::models
