// TLM approximately-timed (TLM-AT) model of the DES56 IP.
//
// The I/O protocol is abstracted: one write transaction submits an
// operation, one read transaction returns the result; rdy_next_cycle and
// rdy_next_next_cycle disappear from the interface (they are the abstracted
// signals of the property suite). Four timing points per operation are
// exposed to the verification environment, mirroring the TLM-2.0 AT 4-phase
// protocol and — per Def. III.1 — covering every instant where a preserved
// interface signal changes at RTL:
//
//   T            write BEGIN_REQ   ds=1, indata/key/decrypt valid
//   T + c        write END_REQ     ds back to 0
//   T + 17c      read  BEGIN_RESP  rdy=1, out = result
//   T + 18c      read  END_RESP    rdy back to 0
//
// (c = RTL clock period.) BEGIN records are emitted by the target itself;
// END records are the socket's completion records.
#ifndef REPRO_MODELS_DES56_DES56_TLM_AT_H_
#define REPRO_MODELS_DES56_DES56_TLM_AT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/des56/des_core.h"
#include "tlm/recorder.h"
#include "tlm/socket.h"

namespace repro::models {

class Des56TlmAt : public tlm::TargetIf {
 public:
  Des56TlmAt(sim::Kernel& kernel, tlm::TransactionRecorder* recorder,
             sim::Time clock_period_ns)
      : kernel_(kernel), recorder_(recorder), period_(clock_period_ns) {}

  // Write payload data: {indata, key, decrypt}. Read payload returns {out}.
  void b_transport(tlm::Payload& payload, sim::Time& delay) override;

  // Must be called before the first monitored transaction.
  void set_static_observable(const std::string& name, uint64_t value) {
    statics_.emplace_back(name, value);
  }

  static constexpr int kLatencyCycles = 17;

 private:
  enum : size_t { kDs, kIndata, kKey, kDecrypt, kOut, kRdy };

  tlm::Snapshot snapshot(bool ds, bool rdy, uint64_t out);
  void emit_phase(sim::Time at, tlm::Command command, tlm::Snapshot observables);

  sim::Kernel& kernel_;
  tlm::TransactionRecorder* recorder_;  // may be null (unmonitored run)
  sim::Time period_;
  std::vector<std::pair<std::string, uint64_t>> statics_;
  std::shared_ptr<const tlm::Snapshot::Keys> keys_;
  tlm::Snapshot proto_;

  uint64_t indata_ = 0;
  uint64_t key_ = 0;
  bool decrypt_ = false;
  uint64_t result_ = 0;      // result of the pending operation
  uint64_t last_out_ = 0;    // value of `out` before the pending result lands
  bool pending_ = false;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_DES56_DES56_TLM_AT_H_
