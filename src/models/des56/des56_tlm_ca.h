// TLM cycle-accurate (TLM-CA) model of the DES56 IP.
//
// The I/O protocol of the RTL model is preserved: the initiator issues one
// write transaction per clock cycle carrying the cycle's input values; the
// target advances the shared cycle-accurate core by one edge and returns
// the registered outputs. The end of each per-cycle transaction therefore
// corresponds to a rising clock edge, and unabstracted RTL properties can be
// replayed directly on the transaction stream (the TLM-CA rows of Table I).
//
// data[] layout for the write payload: {ds, indata, key, decrypt};
// on return the payload data is {out, rdy, rdy_next_cycle,
// rdy_next_next_cycle}.
#ifndef REPRO_MODELS_DES56_DES56_TLM_CA_H_
#define REPRO_MODELS_DES56_DES56_TLM_CA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/des56/des56_cycle.h"
#include "tlm/socket.h"

namespace repro::models {

class Des56TlmCa : public tlm::TargetIf {
 public:
  Des56TlmCa() = default;

  void b_transport(tlm::Payload& payload, sim::Time& delay) override;

  // Extra observables merged into every transaction (testbench signals such
  // as monitor_en). Must be called before the first monitored transaction.
  void set_static_observable(const std::string& name, uint64_t value) {
    statics_.emplace_back(name, value);
  }

 private:
  // Fixed indices of the hot observables in the snapshot key table.
  enum : size_t { kDs, kIndata, kKey, kDecrypt, kOut, kRdy, kRdyNc, kRdyNnc };

  const tlm::Snapshot& prototype();

  Des56Cycle core_;
  std::vector<std::pair<std::string, uint64_t>> statics_;
  std::shared_ptr<const tlm::Snapshot::Keys> keys_;
  tlm::Snapshot proto_;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_DES56_DES56_TLM_CA_H_
