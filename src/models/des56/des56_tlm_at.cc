#include "models/des56/des56_tlm_at.h"

namespace repro::models {

tlm::Snapshot Des56TlmAt::snapshot(bool ds, bool rdy, uint64_t out) {
  if (!keys_) {
    auto keys = std::make_shared<tlm::Snapshot::Keys>(
        tlm::Snapshot::Keys{"ds", "indata", "key", "decrypt", "out", "rdy"});
    for (const auto& [name, value] : statics_) keys->push_back(name);
    keys_ = keys;
    proto_ = tlm::Snapshot(keys_);
    for (const auto& [name, value] : statics_) proto_.set(name, value);
  }
  tlm::Snapshot values = proto_;
  values.set_at(kDs, ds ? 1 : 0);
  values.set_at(kIndata, indata_);
  values.set_at(kKey, key_);
  values.set_at(kDecrypt, decrypt_ ? 1 : 0);
  values.set_at(kOut, out);
  values.set_at(kRdy, rdy ? 1 : 0);
  return values;
}

void Des56TlmAt::emit_phase(sim::Time at, tlm::Command command,
                            tlm::Snapshot observables) {
  if (recorder_ == nullptr || !recorder_->active()) return;
  tlm::TransactionRecord record;
  record.start = kernel_.now();
  record.end = at;
  record.command = command;
  record.observables = std::move(observables);
  recorder_->emit(std::move(record));
}

void Des56TlmAt::b_transport(tlm::Payload& payload, sim::Time& delay) {
  // Temporal decoupling: the transaction starts `delay` after kernel time.
  const sim::Time now = kernel_.now() + delay;
  const bool monitored =
      payload.monitored && recorder_ != nullptr && recorder_->active();
  if (payload.command == tlm::Command::kWrite) {
    if (payload.data.size() < 3 || pending_) {
      payload.response = tlm::Response::kGenericError;
      return;
    }
    indata_ = payload.data[0];
    key_ = payload.data[1];
    decrypt_ = payload.data[2] != 0;
    // The IP function is computed here, untimed; the latency is pure timing
    // annotation, which is what makes the AT model fast.
    result_ = decrypt_ ? des_decrypt(indata_, key_) : des_encrypt(indata_, key_);
    pending_ = true;
    // END_REQ one cycle after BEGIN_REQ: ds has fallen.
    delay += period_;
    payload.response = tlm::Response::kOk;
    if (monitored) {
      // BEGIN_REQ: the instant where ds rises at RTL.
      emit_phase(now, tlm::Command::kWrite,
                 snapshot(/*ds=*/true, /*rdy=*/false, last_out_));
      payload.observables = snapshot(/*ds=*/false, /*rdy=*/false, last_out_);
    }
    return;
  }
  // Read: returns the pending result with the full IP latency annotated.
  if (!pending_) {
    payload.response = tlm::Response::kGenericError;
    return;
  }
  pending_ = false;
  delay += (kLatencyCycles + 1) * period_;
  payload.data = {result_};
  payload.response = tlm::Response::kOk;
  if (monitored) {
    // BEGIN_RESP: the instant where rdy rises and out changes at RTL.
    emit_phase(now + kLatencyCycles * period_, tlm::Command::kRead,
               snapshot(/*ds=*/false, /*rdy=*/true, result_));
    // END_RESP one cycle later: rdy has fallen, out keeps the result.
    payload.observables = snapshot(/*ds=*/false, /*rdy=*/false, result_);
  }
  last_out_ = result_;
}

}  // namespace repro::models
