#include "models/des56/des56_cycle.h"

namespace repro::models {

Des56Outputs Des56Cycle::step(const Des56Inputs& in) {
  Des56Outputs out;
  out.out = out_;
  if (busy_) {
    ++cycle_;
    if (cycle_ <= 16) {
      const int index = decrypt_ ? 16 - cycle_ : cycle_ - 1;
      state_ = des_round(state_, schedule_[index]);
    }
    out.rdy_next_next_cycle = cycle_ == 15;
    out.rdy_next_cycle = cycle_ == 16;
    if (cycle_ == 17) {
      out_ = des_unload(state_);
      out.out = out_;
      out.rdy = true;
      busy_ = false;
    }
  } else if (in.ds) {
    busy_ = true;
    cycle_ = 0;
    decrypt_ = in.decrypt;
    state_ = des_load(in.indata);
    schedule_ = des_key_schedule(in.key);
  }
  return out;
}

void Des56Cycle::reset() {
  busy_ = false;
  cycle_ = 0;
  out_ = 0;
}

}  // namespace repro::models
