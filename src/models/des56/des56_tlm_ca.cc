#include "models/des56/des56_tlm_ca.h"

namespace repro::models {

const tlm::Snapshot& Des56TlmCa::prototype() {
  if (!keys_) {
    auto keys = std::make_shared<tlm::Snapshot::Keys>(tlm::Snapshot::Keys{
        "ds", "indata", "key", "decrypt", "out", "rdy", "rdy_next_cycle",
        "rdy_next_next_cycle"});
    for (const auto& [name, value] : statics_) keys->push_back(name);
    keys_ = keys;
    proto_ = tlm::Snapshot(keys_);
    for (const auto& [name, value] : statics_) proto_.set(name, value);
  }
  return proto_;
}

void Des56TlmCa::b_transport(tlm::Payload& payload, sim::Time& delay) {
  // One transaction == one clock edge; it completes instantaneously.
  delay += 0;
  if (payload.command != tlm::Command::kWrite || payload.data.size() < 4) {
    payload.response = tlm::Response::kGenericError;
    return;
  }
  Des56Inputs in;
  in.ds = payload.data[0] != 0;
  in.indata = payload.data[1];
  in.key = payload.data[2];
  in.decrypt = payload.data[3] != 0;
  const Des56Outputs o = core_.step(in);

  payload.response = tlm::Response::kOk;
  payload.data.assign({o.out, o.rdy ? uint64_t{1} : 0,
                       o.rdy_next_cycle ? uint64_t{1} : 0,
                       o.rdy_next_next_cycle ? uint64_t{1} : 0});
  if (!payload.monitored) return;

  payload.observables = prototype();
  payload.observables.set_at(kDs, in.ds ? 1 : 0);
  payload.observables.set_at(kIndata, in.indata);
  payload.observables.set_at(kKey, in.key);
  payload.observables.set_at(kDecrypt, in.decrypt ? 1 : 0);
  payload.observables.set_at(kOut, o.out);
  payload.observables.set_at(kRdy, o.rdy ? 1 : 0);
  payload.observables.set_at(kRdyNc, o.rdy_next_cycle ? 1 : 0);
  payload.observables.set_at(kRdyNnc, o.rdy_next_next_cycle ? 1 : 0);
}

}  // namespace repro::models
