// Cycle-accurate behavioural core of the DES56 IP.
//
// One step() call corresponds to one rising clock edge. The same core drives
// the RTL model (wrapped in signals) and the TLM-CA model (wrapped in
// per-cycle transactions), which makes the two timing-equivalent by
// construction.
//
// Protocol (one outstanding operation, as assumed by property p2):
//   - edge k:     ds == 1 with indata/key/decrypt valid -> operation accepted
//   - edges k+1 .. k+16: one DES round per cycle
//   - edge k+15:  rdy_next_next_cycle == 1
//   - edge k+16:  rdy_next_cycle == 1
//   - edge k+17:  rdy == 1 and out holds the result (latency 17 cycles)
#ifndef REPRO_MODELS_DES56_DES56_CYCLE_H_
#define REPRO_MODELS_DES56_DES56_CYCLE_H_

#include <cstdint>

#include "models/des56/des_core.h"

namespace repro::models {

struct Des56Inputs {
  bool ds = false;
  uint64_t indata = 0;
  uint64_t key = 0;
  bool decrypt = false;
};

struct Des56Outputs {
  uint64_t out = 0;
  bool rdy = false;
  bool rdy_next_cycle = false;
  bool rdy_next_next_cycle = false;
};

class Des56Cycle {
 public:
  // Advances one clock edge with the given input values; returns the output
  // values as registered at this edge.
  Des56Outputs step(const Des56Inputs& in);

  bool busy() const { return busy_; }
  void reset();

 private:
  bool busy_ = false;
  int cycle_ = 0;  // cycles since the accepting edge
  bool decrypt_ = false;
  DesState state_{};
  DesKeySchedule schedule_{};
  uint64_t out_ = 0;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_DES56_DES56_CYCLE_H_
