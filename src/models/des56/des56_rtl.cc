#include "models/des56/des56_rtl.h"

namespace repro::models {

Des56Rtl::Des56Rtl(sim::Kernel& kernel, sim::Clock& clock)
    : ds(kernel, "ds", false),
      indata(kernel, "indata", 0),
      key(kernel, "key", 0),
      decrypt(kernel, "decrypt", false),
      out(kernel, "out", 0),
      rdy(kernel, "rdy", false),
      rdy_next_cycle(kernel, "rdy_next_cycle", false),
      rdy_next_next_cycle(kernel, "rdy_next_next_cycle", false),
      busy_(kernel, "des56.busy", false),
      round_(kernel, "des56.round", 0),
      mode_dec_(kernel, "des56.mode_dec", false),
      l_(kernel, "des56.l", 0),
      r_(kernel, "des56.r", 0),
      c_(kernel, "des56.c", 0),
      d_(kernel, "des56.d", 0) {
  clock.on_posedge([this] { control_proc(); });
  clock.on_posedge([this] { keypath_proc(); });
  clock.on_posedge([this] { datapath_proc(); });
}

// Acceptance, round counting and the handshake outputs. Timing (accept at
// edge k): rounds run at k+1..k+16; rdy_next_next_cycle registers at k+15,
// rdy_next_cycle at k+16, rdy (with out) at k+17.
void Des56Rtl::control_proc() {
  const bool busy = busy_.read();
  const uint64_t round = round_.read();
  if (busy) {
    round_.write(round + 1);
    rdy_next_next_cycle.write(round == 14);
    rdy_next_cycle.write(round == 15);
    if (round == 16) {
      rdy.write(true);
      busy_.write(false);
    }
  } else {
    rdy.write(false);
    rdy_next_cycle.write(false);
    rdy_next_next_cycle.write(false);
    if (ds.read()) {
      busy_.write(true);
      round_.write(0);
      mode_dec_.write(decrypt.read());
    }
  }
}

// C/D key registers: loaded through PC1 on acceptance, rotated once per
// round (left for encryption, right with the reversed schedule for
// decryption).
void Des56Rtl::keypath_proc() {
  const bool busy = busy_.read();
  if (!busy) {
    if (ds.read()) {
      const DesCd cd = des_key_load(key.read());
      c_.write(cd.c);
      d_.write(cd.d);
    }
    return;
  }
  const uint64_t round = round_.read();
  if (round >= 16) return;
  DesCd cd{static_cast<uint32_t>(c_.read()), static_cast<uint32_t>(d_.read())};
  cd = mode_dec_.read()
           ? des_cd_rotate_right(cd, kDesDecShifts[round])
           : des_cd_rotate_left(cd, kDesEncShifts[round]);
  c_.write(cd.c);
  d_.write(cd.d);
}

// L/R data registers: IP on acceptance, one Feistel round per cycle, swap +
// FP into the output register after round 16. The round key is derived
// combinationally from the *post-rotation* C/D of this same edge, so the
// datapath recomputes the rotation on its pre-edge view (exactly the
// combinational cone a synthesized core would have).
void Des56Rtl::datapath_proc() {
  const bool busy = busy_.read();
  if (!busy) {
    if (ds.read()) {
      const DesState state = des_load(indata.read());
      l_.write(state.l);
      r_.write(state.r);
    }
    return;
  }
  const uint64_t round = round_.read();
  if (round < 16) {
    DesCd cd{static_cast<uint32_t>(c_.read()), static_cast<uint32_t>(d_.read())};
    cd = mode_dec_.read()
             ? des_cd_rotate_right(cd, kDesDecShifts[round])
             : des_cd_rotate_left(cd, kDesEncShifts[round]);
    const uint64_t round_key = des_round_key(cd);
    const uint32_t l = static_cast<uint32_t>(l_.read());
    const uint32_t r = static_cast<uint32_t>(r_.read());
    l_.write(r);
    r_.write(l ^ des_feistel(r, round_key));
  } else {
    const DesState state{static_cast<uint32_t>(l_.read()),
                         static_cast<uint32_t>(r_.read())};
    out.write(des_unload(state));
  }
}

void Des56Rtl::register_signals(abv::SignalBag& bag) const {
  bag.add("ds", ds);
  bag.add("indata", indata);
  bag.add("key", key);
  bag.add("decrypt", decrypt);
  bag.add("out", out);
  bag.add("rdy", rdy);
  bag.add("rdy_next_cycle", rdy_next_cycle);
  bag.add("rdy_next_next_cycle", rdy_next_next_cycle);
}

}  // namespace repro::models
