// DES-56 block cipher core (FIPS 46-3), exposed both as one-shot
// encrypt/decrypt functions and as a per-round staged API so the RTL model
// can execute exactly one round per clock cycle (the paper's DES56 IP has a
// latency of 17 cycles: 1 load + 16 rounds).
#ifndef REPRO_MODELS_DES56_DES_CORE_H_
#define REPRO_MODELS_DES56_DES_CORE_H_

#include <array>
#include <cstdint>

namespace repro::models {

// The 16 48-bit round keys. For decryption the schedule is applied in
// reverse order.
using DesKeySchedule = std::array<uint64_t, 16>;

// Derives the key schedule from a 64-bit key (parity bits ignored).
DesKeySchedule des_key_schedule(uint64_t key);

// Internal state after the initial permutation: (L, R) halves.
struct DesState {
  uint32_t l = 0;
  uint32_t r = 0;

  bool operator==(const DesState&) const = default;
};

// Initial permutation + split. The first pipeline stage of the RTL model.
DesState des_load(uint64_t block);

// One Feistel round with the given 48-bit round key.
DesState des_round(DesState state, uint64_t round_key);

// Half swap + final permutation. Applied after the 16th round.
uint64_t des_unload(DesState state);

// One-shot reference implementations, used by testbenches to check model
// outputs and by tests against the FIPS 46 test vectors.
uint64_t des_encrypt(uint64_t block, uint64_t key);
uint64_t des_decrypt(uint64_t block, uint64_t key);

// ---- Key-path staged API ----------------------------------------------------
//
// The signal-level RTL model registers the C/D key halves and rotates them
// once per round, applying PC2 combinationally — the way iterative DES
// hardware implements the key schedule. Decryption rotates right with the
// reversed shift schedule (first decrypt round uses C16/D16 == C0/D0, hence
// the leading 0).

struct DesCd {
  uint32_t c = 0;  // 28-bit halves
  uint32_t d = 0;

  bool operator==(const DesCd&) const = default;
};

// PC1: loads the key registers.
DesCd des_key_load(uint64_t key);
// One round of the key path: rotates per the round's schedule entry.
DesCd des_cd_rotate_left(DesCd cd, int amount);
DesCd des_cd_rotate_right(DesCd cd, int amount);
// PC2: extracts the 48-bit round key from the C/D registers.
uint64_t des_round_key(DesCd cd);
// The Feistel function (expansion, key mix, S-boxes, permutation).
uint32_t des_feistel(uint32_t r, uint64_t round_key);

// Left-rotation amounts per encryption round; right-rotation amounts per
// decryption round.
extern const int kDesEncShifts[16];
extern const int kDesDecShifts[16];

}  // namespace repro::models

#endif  // REPRO_MODELS_DES56_DES_CORE_H_
