// RTL (signal-level, cycle-accurate) model of the DES56 IP.
//
// Port list mirrors the paper's Fig. 2(a): ds, indata, key, decrypt in;
// out, rdy, rdy_next_cycle, rdy_next_next_cycle out.
//
// The model is structured the way HIFSuite-style VHDL-to-SystemC
// translation structures an iterative DES core — three rising-edge
// processes communicating through registered signals:
//   * control  — operation acceptance, round counter, handshake outputs;
//   * key path — C/D registers rotated once per round, PC2 combinational;
//   * datapath — L/R registers through the Feistel round, IP/FP at the
//     boundaries.
// The extra signal traffic relative to the behavioural TLM-CA model is what
// makes the RTL simulation measurably slower, as in the paper's Table I.
//
// Inputs are expected to be driven by a falling-edge (or earlier) process
// so they are stable at the sampling edge, as in the bundled drivers.
#ifndef REPRO_MODELS_DES56_DES56_RTL_H_
#define REPRO_MODELS_DES56_DES56_RTL_H_

#include "abv/rtl_env.h"
#include "models/des56/des_core.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"

namespace repro::models {

class Des56Rtl {
 public:
  Des56Rtl(sim::Kernel& kernel, sim::Clock& clock);

  // Input ports (driven by the testbench).
  sim::Signal<bool> ds;
  sim::Signal<uint64_t> indata;
  sim::Signal<uint64_t> key;
  sim::Signal<bool> decrypt;

  // Output ports.
  sim::Signal<uint64_t> out;
  sim::Signal<bool> rdy;
  sim::Signal<bool> rdy_next_cycle;
  sim::Signal<bool> rdy_next_next_cycle;

  // Registers all ports under their property names.
  void register_signals(abv::SignalBag& bag) const;

 private:
  void control_proc();
  void keypath_proc();
  void datapath_proc();

  // Internal registers (signals, so inter-process reads see pre-edge
  // values exactly as in translated RTL).
  sim::Signal<bool> busy_;
  sim::Signal<uint64_t> round_;  // cycles since acceptance
  sim::Signal<bool> mode_dec_;
  sim::Signal<uint64_t> l_;
  sim::Signal<uint64_t> r_;
  sim::Signal<uint64_t> c_;
  sim::Signal<uint64_t> d_;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_DES56_DES56_RTL_H_
