#include "models/colorconv/colorconv_tlm_at.h"

namespace repro::models {

bool ColorConvTlmAt::rdy_at(sim::Time t) const {
  for (const InFlight& f : in_flight_) {
    if (f.done == t) return true;
    if (f.done > t) break;  // deque is in increasing done order
  }
  return false;
}

Ycbcr ColorConvTlmAt::out_at(sim::Time t) const {
  Ycbcr out = last_out_;
  for (const InFlight& f : in_flight_) {
    if (f.done > t) break;
    out = f.result;
  }
  return out;
}

void ColorConvTlmAt::prune(sim::Time now) {
  while (!in_flight_.empty() && in_flight_.front().done < now &&
         in_flight_.front().read_issued) {
    last_out_ = in_flight_.front().result;
    in_flight_.pop_front();
  }
}

tlm::Snapshot ColorConvTlmAt::snapshot(bool ds, uint8_t r, uint8_t g,
                                       uint8_t b, uint64_t sof, sim::Time at) {
  if (!keys_) {
    auto keys = std::make_shared<tlm::Snapshot::Keys>(tlm::Snapshot::Keys{
        "ds", "r", "g", "b", "sof", "y", "cb", "cr", "rdy"});
    for (const auto& [name, value] : statics_) keys->push_back(name);
    keys_ = keys;
    proto_ = tlm::Snapshot(keys_);
    for (const auto& [name, value] : statics_) proto_.set(name, value);
  }
  tlm::Snapshot values = proto_;
  const Ycbcr out = out_at(at);
  values.set_at(kDsIdx, ds ? 1 : 0);
  values.set_at(kR, r);
  values.set_at(kG, g);
  values.set_at(kB, b);
  values.set_at(kSof, sof);
  values.set_at(kY, out.y);
  values.set_at(kCb, out.cb);
  values.set_at(kCr, out.cr);
  values.set_at(kRdy, rdy_at(at) ? 1 : 0);
  return values;
}

void ColorConvTlmAt::b_transport(tlm::Payload& payload, sim::Time& delay) {
  // Temporal decoupling: the transaction starts `delay` after kernel time.
  const sim::Time now = kernel_.now() + delay;
  prune(now);
  if (payload.command == tlm::Command::kWrite) {
    if (payload.data.size() < 4) {
      payload.response = tlm::Response::kGenericError;
      return;
    }
    const uint8_t r = static_cast<uint8_t>(payload.data[0]);
    const uint8_t g = static_cast<uint8_t>(payload.data[1]);
    const uint8_t b = static_cast<uint8_t>(payload.data[2]);
    const uint64_t sof = payload.data[3];
    InFlight f;
    f.done = now + kLatencyCycles * period_;
    f.result = colorconv_ref(r, g, b);
    in_flight_.push_back(f);
    // The write completes instantly: the pipeline accepts a pixel per cycle.
    payload.response = tlm::Response::kOk;
    if (payload.monitored) {
      payload.observables = snapshot(/*ds=*/true, r, g, b, sof, now);
    }
    return;
  }
  // Read: pops the oldest pixel without an issued read; completion carries
  // the pipeline latency relative to the pixel's submission.
  for (InFlight& f : in_flight_) {
    if (f.read_issued) continue;
    f.read_issued = true;
    delay += f.done - now;
    payload.data = {f.result.y, f.result.cb, f.result.cr};
    payload.response = tlm::Response::kOk;
    // Response-phase snapshot: request signals are not re-exposed (ds=0), so
    // ds-guarded properties do not re-fire on stale input values.
    if (payload.monitored) {
      payload.observables = snapshot(/*ds=*/false, 0, 0, 0, /*sof=*/0, f.done);
    }
    return;
  }
  payload.response = tlm::Response::kGenericError;
}

void ColorConvTlmAt::emit_idle(sim::Time at) {
  if (recorder_ == nullptr || !recorder_->active()) return;
  prune(kernel_.now());
  tlm::TransactionRecord record;
  record.start = kernel_.now();
  record.end = at;
  record.command = tlm::Command::kWrite;
  record.observables = snapshot(/*ds=*/false, 0, 0, 0, /*sof=*/0, at);
  recorder_->emit(std::move(record));
}

}  // namespace repro::models
