#include "models/colorconv/colorconv_rtl.h"

namespace repro::models {
namespace {

uint64_t pack3(uint8_t a, uint8_t b, uint8_t c) {
  return (static_cast<uint64_t>(a) << 16) | (static_cast<uint64_t>(b) << 8) | c;
}

}  // namespace

ColorConvRtl::Boundary::Boundary(sim::Kernel& kernel, int index)
    : valid(kernel, "colorconv.s" + std::to_string(index) + ".valid", false),
      rgb(kernel, "colorconv.s" + std::to_string(index) + ".rgb", 0),
      y_acc(kernel, "colorconv.s" + std::to_string(index) + ".y_acc", 0),
      cb_acc(kernel, "colorconv.s" + std::to_string(index) + ".cb_acc", 0),
      cr_acc(kernel, "colorconv.s" + std::to_string(index) + ".cr_acc", 0),
      ycbcr(kernel, "colorconv.s" + std::to_string(index) + ".ycbcr", 0) {}

ColorConvRtl::ColorConvRtl(sim::Kernel& kernel, sim::Clock& clock)
    : ds(kernel, "ds", false),
      r(kernel, "r", 0),
      g(kernel, "g", 0),
      b(kernel, "b", 0),
      y(kernel, "y", 0),
      cb(kernel, "cb", 0),
      cr(kernel, "cr", 0),
      rdy(kernel, "rdy", false),
      rdy_next_cycle(kernel, "rdy_next_cycle", false) {
  for (int i = 0; i < 8; ++i) {
    boundaries_[i] = std::make_unique<Boundary>(kernel, i);
  }
  // One process per stage plus the output registers, all on the rising edge.
  for (int i = 0; i < 8; ++i) {
    clock.on_posedge([this, i] { stage_proc(i); });
  }
  clock.on_posedge([this] { output_proc(); });
}

CcStage ColorConvRtl::load(int boundary) const {
  const Boundary& bd = *boundaries_[boundary];
  CcStage s;
  s.valid = bd.valid.read();
  const uint64_t rgb = bd.rgb.read();
  s.r = static_cast<uint8_t>(rgb >> 16);
  s.g = static_cast<uint8_t>(rgb >> 8);
  s.b = static_cast<uint8_t>(rgb);
  s.y_acc = static_cast<int32_t>(bd.y_acc.read());
  s.cb_acc = static_cast<int32_t>(bd.cb_acc.read());
  s.cr_acc = static_cast<int32_t>(bd.cr_acc.read());
  const uint64_t ycbcr = bd.ycbcr.read();
  s.y = static_cast<uint8_t>(ycbcr >> 16);
  s.cb = static_cast<uint8_t>(ycbcr >> 8);
  s.cr = static_cast<uint8_t>(ycbcr);
  return s;
}

void ColorConvRtl::store(int boundary, const CcStage& s) {
  Boundary& bd = *boundaries_[boundary];
  bd.valid.write(s.valid);
  bd.rgb.write(pack3(s.r, s.g, s.b));
  bd.y_acc.write(static_cast<uint64_t>(static_cast<uint32_t>(s.y_acc)));
  bd.cb_acc.write(static_cast<uint64_t>(static_cast<uint32_t>(s.cb_acc)));
  bd.cr_acc.write(static_cast<uint64_t>(static_cast<uint32_t>(s.cr_acc)));
  bd.ycbcr.write(pack3(s.y, s.cb, s.cr));
}

void ColorConvRtl::stage_proc(int i) {
  if (i == 0) {
    CcStage s;
    s.valid = ds.read();
    s.r = static_cast<uint8_t>(r.read());
    s.g = static_cast<uint8_t>(g.read());
    s.b = static_cast<uint8_t>(b.read());
    store(0, s);
    return;
  }
  store(i, colorconv_stage(i, load(i - 1)));
}

void ColorConvRtl::output_proc() {
  const CcStage s7 = load(7);
  rdy.write(s7.valid);
  // Data output registers are valid-enabled: they hold through bubbles.
  if (s7.valid) {
    y.write(s7.y);
    cb.write(s7.cb);
    cr.write(s7.cr);
  }
  // Stage 6's output (pre-edge view) is what stage 7 registers at this edge,
  // i.e. what the output flops will present at the next edge.
  const CcStage s6 = colorconv_stage(7, load(6));
  rdy_next_cycle.write(s6.valid);
}

void ColorConvRtl::register_signals(abv::SignalBag& bag) const {
  bag.add("ds", ds);
  bag.add("r", r);
  bag.add("g", g);
  bag.add("b", b);
  bag.add("y", y);
  bag.add("cb", cb);
  bag.add("cr", cr);
  bag.add("rdy", rdy);
  bag.add("rdy_next_cycle", rdy_next_cycle);
}

}  // namespace repro::models
