#include "models/colorconv/colorconv_core.h"

namespace repro::models {
namespace {

uint8_t clamp8(int32_t v) {
  if (v < 0) return 0;
  if (v > 255) return 255;
  return static_cast<uint8_t>(v);
}

}  // namespace

Ycbcr colorconv_ref(uint8_t r, uint8_t g, uint8_t b) {
  const int32_t y = 16 + ((66 * r + 129 * g + 25 * b + 128) >> 8);
  const int32_t cb = 128 + ((-38 * r - 74 * g + 112 * b + 128) >> 8);
  const int32_t cr = 128 + ((112 * r - 94 * g - 18 * b + 128) >> 8);
  return Ycbcr{clamp8(y), clamp8(cb), clamp8(cr)};
}

CcStage colorconv_stage(int i, CcStage s) {
  switch (i) {
    case 1:
      s.y_acc = 66 * s.r;
      break;
    case 2:
      s.y_acc += 129 * s.g;
      s.cb_acc = -38 * s.r;
      break;
    case 3:
      s.y_acc += 25 * s.b + 128;
      s.cb_acc += -74 * s.g;
      s.cr_acc = 112 * s.r;
      break;
    case 4:
      s.cb_acc += 112 * s.b + 128;
      s.cr_acc += -94 * s.g;
      break;
    case 5:
      s.cr_acc += -18 * s.b + 128;
      break;
    case 6:
      s.y = clamp8(16 + (s.y_acc >> 8));
      s.cb = clamp8(128 + (s.cb_acc >> 8));
      s.cr = clamp8(128 + (s.cr_acc >> 8));
      break;
    case 7:
      // Plain staging register before the output flops.
      break;
    default:
      break;
  }
  return s;
}

ColorConvOutputs ColorConvPipeline::step(const ColorConvInputs& in) {
  // Output registers load from stage 7 (the pixel that entered 8 edges
  // ago); the data registers are enabled by the valid flag and hold their
  // last value through bubbles, as the TLM models do.
  out_.rdy = stages_[7].valid;
  if (stages_[7].valid) {
    out_.y = stages_[7].y;
    out_.cb = stages_[7].cb;
    out_.cr = stages_[7].cr;
  }

  // Shift the pipeline back to front, performing each stage's share of the
  // multiply/accumulate work on the way.
  for (int i = 7; i >= 1; --i) {
    stages_[i] = colorconv_stage(i, stages_[i - 1]);
  }
  stages_[0] = CcStage{};
  stages_[0].valid = in.ds;
  stages_[0].r = in.r;
  stages_[0].g = in.g;
  stages_[0].b = in.b;

  // rdy_next_cycle mirrors the (freshly shifted) stage-7 valid flag: the
  // output registers will load it at the next edge.
  out_.rdy_next_cycle = stages_[7].valid;
  return out_;
}

void ColorConvPipeline::reset() {
  stages_ = {};
  out_ = {};
}

}  // namespace repro::models
