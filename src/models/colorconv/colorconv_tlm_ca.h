// TLM cycle-accurate model of the ColorConv IP: one write transaction per
// clock cycle, carrying {ds, r, g, b, sof}; returns {rdy, y, cb, cr,
// rdy_next_cycle} and a full observables snapshot. `sof` (start of frame /
// burst) is a testbench-driven observable, forwarded per cycle.
#ifndef REPRO_MODELS_COLORCONV_COLORCONV_TLM_CA_H_
#define REPRO_MODELS_COLORCONV_COLORCONV_TLM_CA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/colorconv/colorconv_core.h"
#include "tlm/socket.h"

namespace repro::models {

class ColorConvTlmCa : public tlm::TargetIf {
 public:
  ColorConvTlmCa() = default;

  void b_transport(tlm::Payload& payload, sim::Time& delay) override;

  // Must be called before the first monitored transaction.
  void set_static_observable(const std::string& name, uint64_t value) {
    statics_.emplace_back(name, value);
  }

 private:
  enum : size_t { kDsIdx, kR, kG, kB, kSof, kY, kCb, kCr, kRdy, kRdyNc };

  const tlm::Snapshot& prototype();

  ColorConvPipeline core_;
  std::vector<std::pair<std::string, uint64_t>> statics_;
  std::shared_ptr<const tlm::Snapshot::Keys> keys_;
  tlm::Snapshot proto_;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_COLORCONV_COLORCONV_TLM_CA_H_
