// RTL (signal-level) model of the ColorConv IP.
//
// Structured as translated pipelined VHDL would be: one rising-edge process
// per pipeline stage plus the output-register process, communicating
// through registered stage-boundary signals. Register semantics between
// stages come from the kernel's delta-cycle signals, not from explicit
// shifting — each stage process reads its predecessor's pre-edge values.
#ifndef REPRO_MODELS_COLORCONV_COLORCONV_RTL_H_
#define REPRO_MODELS_COLORCONV_COLORCONV_RTL_H_

#include <array>
#include <memory>

#include "abv/rtl_env.h"
#include "models/colorconv/colorconv_core.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"

namespace repro::models {

class ColorConvRtl {
 public:
  ColorConvRtl(sim::Kernel& kernel, sim::Clock& clock);

  // Input ports.
  sim::Signal<bool> ds;
  sim::Signal<uint64_t> r;
  sim::Signal<uint64_t> g;
  sim::Signal<uint64_t> b;

  // Output ports.
  sim::Signal<uint64_t> y;
  sim::Signal<uint64_t> cb;
  sim::Signal<uint64_t> cr;
  sim::Signal<bool> rdy;
  sim::Signal<bool> rdy_next_cycle;

  void register_signals(abv::SignalBag& bag) const;

 private:
  // Registered boundary between stage i-1 and i.
  struct Boundary {
    Boundary(sim::Kernel& kernel, int index);
    sim::Signal<bool> valid;
    sim::Signal<uint64_t> rgb;     // packed r|g|b
    sim::Signal<uint64_t> y_acc;   // int32 stored as uint64
    sim::Signal<uint64_t> cb_acc;
    sim::Signal<uint64_t> cr_acc;
    sim::Signal<uint64_t> ycbcr;   // packed y|cb|cr
  };

  CcStage load(int boundary) const;
  void store(int boundary, const CcStage& s);
  void stage_proc(int i);
  void output_proc();

  std::array<std::unique_ptr<Boundary>, 8> boundaries_;
};

}  // namespace repro::models

#endif  // REPRO_MODELS_COLORCONV_COLORCONV_RTL_H_
