#include "models/colorconv/colorconv_tlm_ca.h"

namespace repro::models {

const tlm::Snapshot& ColorConvTlmCa::prototype() {
  if (!keys_) {
    auto keys = std::make_shared<tlm::Snapshot::Keys>(tlm::Snapshot::Keys{
        "ds", "r", "g", "b", "sof", "y", "cb", "cr", "rdy", "rdy_next_cycle"});
    for (const auto& [name, value] : statics_) keys->push_back(name);
    keys_ = keys;
    proto_ = tlm::Snapshot(keys_);
    for (const auto& [name, value] : statics_) proto_.set(name, value);
  }
  return proto_;
}

void ColorConvTlmCa::b_transport(tlm::Payload& payload, sim::Time& delay) {
  delay += 0;  // one transaction == one clock edge, completing instantly
  if (payload.command != tlm::Command::kWrite || payload.data.size() < 5) {
    payload.response = tlm::Response::kGenericError;
    return;
  }
  ColorConvInputs in;
  in.ds = payload.data[0] != 0;
  in.r = static_cast<uint8_t>(payload.data[1]);
  in.g = static_cast<uint8_t>(payload.data[2]);
  in.b = static_cast<uint8_t>(payload.data[3]);
  const uint64_t sof = payload.data[4];
  const ColorConvOutputs o = core_.step(in);

  payload.response = tlm::Response::kOk;
  payload.data.assign({o.rdy ? uint64_t{1} : 0, uint64_t{o.y}, uint64_t{o.cb},
                       uint64_t{o.cr}, o.rdy_next_cycle ? uint64_t{1} : 0});
  if (!payload.monitored) return;

  payload.observables = prototype();
  payload.observables.set_at(kDsIdx, in.ds ? 1 : 0);
  payload.observables.set_at(kR, in.r);
  payload.observables.set_at(kG, in.g);
  payload.observables.set_at(kB, in.b);
  payload.observables.set_at(kSof, sof);
  payload.observables.set_at(kY, o.y);
  payload.observables.set_at(kCb, o.cb);
  payload.observables.set_at(kCr, o.cr);
  payload.observables.set_at(kRdy, o.rdy ? 1 : 0);
  payload.observables.set_at(kRdyNc, o.rdy_next_cycle ? 1 : 0);
}

}  // namespace repro::models
