// ColorConv IP: RGB -> YCbCr (ITU-R BT.601) fixed-point converter.
//
// The paper's ColorConv testcase is an 8-stage pipelined IP with a latency
// of 8 clock cycles and one-pixel-per-cycle throughput. The conversion is
// the standard 8.8 fixed-point BT.601 matrix:
//
//   Y  =  16 + (( 66 R + 129 G +  25 B + 128) >> 8)
//   Cb = 128 + ((-38 R -  74 G + 112 B + 128) >> 8)
//   Cr = 128 + ((112 R -  94 G -  18 B + 128) >> 8)
//
// For 8-bit inputs the outputs are provably inside the nominal ranges
// Y in [16,235], Cb/Cr in [16,240] — the range properties of the suite.
#ifndef REPRO_MODELS_COLORCONV_COLORCONV_CORE_H_
#define REPRO_MODELS_COLORCONV_COLORCONV_CORE_H_

#include <array>
#include <cstdint>

namespace repro::models {

struct Ycbcr {
  uint8_t y = 0;
  uint8_t cb = 0;
  uint8_t cr = 0;

  bool operator==(const Ycbcr&) const = default;
};

// One-shot reference conversion.
Ycbcr colorconv_ref(uint8_t r, uint8_t g, uint8_t b);

struct ColorConvInputs {
  bool ds = false;  // pixel valid
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
};

struct ColorConvOutputs {
  bool rdy = false;           // output valid
  bool rdy_next_cycle = false;  // output valid at the next edge
  uint8_t y = 0;
  uint8_t cb = 0;
  uint8_t cr = 0;
};

// One pipeline-stage register bundle.
struct CcStage {
  bool valid = false;
  uint8_t r = 0, g = 0, b = 0;
  int32_t y_acc = 0, cb_acc = 0, cr_acc = 0;
  uint8_t y = 0, cb = 0, cr = 0;

  bool operator==(const CcStage&) const = default;
};

// The combinational function between stage boundary i-1 and i (i in 1..7):
// the multiply/accumulate work is split across the stages the way a
// DSP-slice implementation would be:
//   s0 input regs | s1 Y products | s2 Y sum, Cb products | s3 Cb sum,
//   Cr products | s4 Cr sum | s5 round/shift | s6 clamp (rdy_next_cycle
//   asserted here) | s7 staging regs (outputs load from here)
// Shared between the behavioural pipeline (TLM-CA) and the signal-level
// RTL model so the two are cycle-equivalent by construction.
CcStage colorconv_stage(int i, CcStage prev);

// Cycle-accurate 8-stage pipeline; step() == one rising clock edge;
// latency 8, throughput 1 pixel/cycle.
class ColorConvPipeline {
 public:
  ColorConvOutputs step(const ColorConvInputs& in);
  void reset();

 private:
  std::array<CcStage, 8> stages_{};
  ColorConvOutputs out_{};
};

}  // namespace repro::models

#endif  // REPRO_MODELS_COLORCONV_COLORCONV_CORE_H_
