// TLM approximately-timed model of the ColorConv IP.
//
// Streaming protocol: the initiator issues one write transaction per pixel
// (back to back during a burst) and one read transaction per pixel whose
// completion is annotated with the full 8-cycle pipeline latency. The
// control signal rdy_next_cycle disappears from the interface (it is the
// abstracted signal of the ColorConv suite).
//
// Events exposed per burst of n pixels starting at T0 (c = clock period):
//   T0 + i*c         write end   ds=1, pixel i, sof on the first pixel
//   T0 + n*c         idle mark   ds=0            (ds falling instant)
//   T0 + i*c + 8c    read end    rdy=1, y/cb/cr of pixel i
//   T0 + (n+8)*c     idle mark   rdy=0           (rdy falling instant)
// which covers every instant where a preserved interface signal changes at
// RTL (Def. III.1). The idle marks are emitted by the testbench through
// emit_idle().
#ifndef REPRO_MODELS_COLORCONV_COLORCONV_TLM_AT_H_
#define REPRO_MODELS_COLORCONV_COLORCONV_TLM_AT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/colorconv/colorconv_core.h"
#include "tlm/recorder.h"
#include "tlm/socket.h"

namespace repro::models {

class ColorConvTlmAt : public tlm::TargetIf {
 public:
  ColorConvTlmAt(sim::Kernel& kernel, tlm::TransactionRecorder* recorder,
                 sim::Time clock_period_ns)
      : kernel_(kernel), recorder_(recorder), period_(clock_period_ns) {}

  // Write payload data: {r, g, b, sof}; completes instantly (the pipeline
  // accepts one pixel per cycle). Read payload: returns {y, cb, cr} with the
  // 8-cycle latency annotated.
  void b_transport(tlm::Payload& payload, sim::Time& delay) override;

  // Emits an idle-phase record at `at` (>= now) marking a falling edge of
  // ds and/or rdy; the snapshot is computed from the in-flight pixels.
  void emit_idle(sim::Time at);

  // Must be called before the first monitored transaction.
  void set_static_observable(const std::string& name, uint64_t value) {
    statics_.emplace_back(name, value);
  }

  static constexpr int kLatencyCycles = 8;

 private:
  enum : size_t { kDsIdx, kR, kG, kB, kSof, kY, kCb, kCr, kRdy };

  struct InFlight {
    sim::Time done = 0;
    Ycbcr result;
    bool read_issued = false;
  };

  bool rdy_at(sim::Time t) const;
  Ycbcr out_at(sim::Time t) const;
  void prune(sim::Time now);
  tlm::Snapshot snapshot(bool ds, uint8_t r, uint8_t g, uint8_t b,
                         uint64_t sof, sim::Time at);

  sim::Kernel& kernel_;
  tlm::TransactionRecorder* recorder_;
  sim::Time period_;
  std::vector<std::pair<std::string, uint64_t>> statics_;
  std::shared_ptr<const tlm::Snapshot::Keys> keys_;
  tlm::Snapshot proto_;

  std::deque<InFlight> in_flight_;
  Ycbcr last_out_{};
};

}  // namespace repro::models

#endif  // REPRO_MODELS_COLORCONV_COLORCONV_TLM_AT_H_
