// Simulation harness: builds and runs one (design, abstraction level,
// checker count) configuration and reports wall-clock time plus
// verification results. This is the engine behind the Table I / Fig. 6
// benchmarks and the integration tests.
#ifndef REPRO_MODELS_TESTBENCH_H_
#define REPRO_MODELS_TESTBENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "abv/engine_config.h"
#include "abv/report.h"
#include "analysis/diagnostic.h"
#include "analysis/prune.h"
#include "psl/ast.h"
#include "rewrite/methodology.h"
#include "sim/kernel.h"
#include "support/metrics.h"

namespace repro::tlm {
class RecordSource;
}  // namespace repro::tlm

namespace repro::models {

enum class Design { kDes56, kColorConv };
enum class Level { kRtl, kTlmCa, kTlmAt };

const char* to_string(Design d);
const char* to_string(Level l);

// Inverse of to_string, accepting exactly the emitted names ("DES56",
// "ColorConv", "RTL", "TLM-CA", "TLM-AT") — how replay tools map a trace
// log's meta back onto a run configuration. Returns false on unknown names.
bool parse_design(const std::string& name, Design& out);
bool parse_level(const std::string& name, Level& out);

// Static property analysis (analysis::Driver) ahead of the simulation:
//   kOff    skip entirely (default; legacy behavior),
//   kOn     run and attach diagnostics to the result, always simulate,
//   kError  run and abort before simulating when any error-severity
//           diagnostic fires (the --Werror-analysis mode).
// The analysis never mutates the simulated configuration: for clean
// properties the simulation report is byte-identical with analysis on/off.
enum class AnalysisMode { kOff, kOn, kError };

// Observable names the verification environment of (design, level) exposes
// to checkers — the binding target of the analysis env-binding pass. Matches
// the signal bags / transaction snapshots built by run_simulation, including
// the testbench-added statics (monitor_en, ColorConv RTL's sof).
std::vector<std::string> level_observables(Design d, Level l);

// Observability knobs shared by the TLM runners (ignored at RTL except for
// failure_log_cap, which applies to every checker backend).
struct ObservabilityConfig {
  // When non-empty, the TLM runners write a Chrome trace-event JSON file
  // here (engine spans, failure instants).
  std::string trace_path;
  // Failure-witness ring depth per wrapper (0 disables capture). Ignored
  // for unabstracted replay (plain checkers carry no witnesses).
  size_t witness_depth = 8;
  // Maximum failure entries retained per checker/wrapper for diagnostics.
  size_t failure_log_cap = 64;
  // When non-empty, the TLM runners stream periodic JSONL snapshots of the
  // merged metrics registry + per-property coverage table here (one compact
  // object per line; validated by tools/validate_metrics.py).
  std::string metrics_path;
  // Records between two mid-run snapshot lines; 0 emits only the exact
  // final end-of-run line.
  size_t metrics_interval = 256;
  // When non-empty, the machine-readable prune plan (analysis::PrunePlan
  // write_json, schema_version 1) is written here. Ignored when pruning is
  // off.
  std::string prune_plan_path;
};

// Record-stream ingest selection (support::tracelog). The two paths are
// independent: a run may record, replay, or both (replaying while recording
// round-trips the log).
struct IngestConfig {
  // When non-empty, the ingested record stream is serialized here as a
  // versioned trace log (binary, or JSONL for .jsonl paths). At RTL the
  // stream is the sampled clock-edge sequence; at TLM it is the completed
  // transactions, framed per sealed engine batch.
  std::string record_path;
  // When non-empty, no simulation runs: the trace log here is replayed
  // through the identically-configured checker environment instead. The
  // log's meta (design, level, clock period, observable dictionary) must
  // match the run configuration. Reports are byte-identical to the live
  // run that produced the log (timing excluded).
  std::string replay_path;
};

// Property-abstraction knobs for the TLM-AT flow.
struct AbstractionConfig {
  // Push mode used when abstracting properties for TLM-AT.
  rewrite::PushMode push_mode = rewrite::PushMode::kOpaqueFixpoints;
  // Ablation: replay the *unabstracted* RTL properties at TLM-AT, counting
  // transactions as if they were clock events (the naive reuse the paper
  // argues against in Sec. III-A).
  bool at_replay_unabstracted = false;
};

// Pre-simulation static analysis knobs. Implicitly convertible from/to
// AnalysisMode, so `config.analysis = AnalysisMode::kOn` and
// `config.analysis == AnalysisMode::kOff` keep working.
struct AnalysisConfig {
  AnalysisMode mode = AnalysisMode::kOff;
  // Analysis-guided runtime pruning (analysis::PrunePlan): kOff simulates
  // every property; kSafe elides statically-true properties and derives
  // subsumed verdicts from their subsumer's instance; kAggressive
  // additionally elides statically-false properties with a derived failure.
  // Verdicts (per-property ok and the run verdict) are preserved; activity
  // counters shrink with the live set. With mode == kError pruned properties
  // still run and every derived verdict is cross-checked (PRN003).
  analysis::PruneMode prune = analysis::PruneMode::kOff;
  // Symbolic bounded trajectory evaluation feeding the prune planner
  // (analysis/symbolic.h): step/instant budget, 0 = off. Adds elide-grade
  // never-fails evidence beyond the structural StaticProver and parity-gated
  // dead-node program folds; reports stay byte-identical (the fold swaps
  // only the executed node table, never the cost accounting).
  size_t symbolic_budget = 0;

  AnalysisConfig() = default;
  AnalysisConfig(AnalysisMode m) : mode(m) {}  // NOLINT: intentional implicit
  operator AnalysisMode() const { return mode; }
};

// Layered run configuration: the identity of the run (design, level,
// property selection, workload) stays flat; tuning knobs live in nested
// option groups designed for designated initializers, e.g.
//   RunConfig config;
//   config.engine = {.jobs = 4, .max_inflight_batches = 3};
//   config.observability = {.trace_path = "at.trace.json"};
struct RunConfig {
  Design design = Design::kDes56;
  Level level = Level::kRtl;
  // Number of properties to check, in suite order; 0 disables ABV.
  size_t checkers = 0;
  // Explicit property selection (suite indices); overrides `checkers` when
  // non-empty. Used by the ablation benchmarks.
  std::vector<size_t> property_indices;
  // Workload size: DES56 operations or ColorConv pixels.
  size_t workload = 500;
  uint64_t seed = 42;
  psl::TimeNs clock_period_ns = 10;
  // Checker backend: compiled flat programs (default) or the tree
  // interpreter. Verdicts and reports are identical; only speed differs.
  bool compiled_checkers = true;
  // Extra properties appended after the suite selection; abstracted for
  // TLM-AT like any suite entry. Lets callers inject ad-hoc properties
  // (e.g. a deliberately failing witness demo) without editing the suite.
  std::vector<psl::RtlProperty> extra_properties;

  // Evaluation-engine knobs (jobs, batch_size, max_inflight_batches),
  // passed to abv::EvalEngine verbatim. Ignored at RTL; batch_size and
  // max_inflight_batches are ignored at jobs == 1 (serial path).
  abv::EngineConfig engine;
  ObservabilityConfig observability;
  AbstractionConfig abstraction;
  AnalysisConfig analysis;
  IngestConfig ingest;
};

struct RunResult {
  double wall_seconds = 0.0;
  sim::Time sim_end_ns = 0;
  uint64_t kernel_events = 0;
  uint64_t delta_cycles = 0;
  uint64_t transactions = 0;  // 0 at RTL
  size_t ops_completed = 0;
  size_t mismatches = 0;          // driver self-check failures
  size_t properties_deleted = 0;  // suite entries removed by Fig. 4 rules
  abv::Report report;             // empty when checkers == 0
  // Merged runtime metrics: engine/wrapper metrics (TLM with ABV enabled)
  // plus sim.* kernel gauges, filled for every run.
  support::MetricsSnapshot metrics;
  bool functional_ok = false;
  bool properties_ok = false;  // true also when checkers == 0
  // Diagnostics from the pre-simulation analysis (empty when analysis is
  // off). analysis_ok is false iff an error-severity diagnostic fired; with
  // AnalysisMode::kError that also means the simulation did not run.
  std::vector<analysis::Diagnostic> analysis_diagnostics;
  bool analysis_ok = true;
  // The prune plan the run executed under (mode kOff and empty decisions
  // when pruning was disabled). Plan diagnostics (PRN001/002/004, plus
  // PRN003 cross-check errors under AnalysisMode::kError) are merged into
  // analysis_diagnostics.
  analysis::PrunePlan prune_plan;
  // Trace-log ingest failure (unreadable/corrupt replay input, meta that
  // contradicts the run configuration, or a record-log write error). When
  // non-empty the other result fields are meaningless; CLIs report it and
  // exit with the usage/configuration status.
  std::string ingest_error;
};

// Runs one configuration to completion. With config.ingest.replay_path set
// no simulation runs: the recorded stream is replayed through the same
// checker environment the live run would have built.
RunResult run_simulation(const RunConfig& config);

// Checks `config` against an explicit record source — the RecordSource half
// of the ingest redesign: any producer of the stream (live adapter, trace
// replay, synthetic) yields the same report the subscribed live run would.
// The source's meta is NOT validated against the config here; callers that
// care (the replay path above) validate first.
RunResult run_simulation(const RunConfig& config, tlm::RecordSource& source);

}  // namespace repro::models

#endif  // REPRO_MODELS_TESTBENCH_H_
