#include "models/stimulus.h"

#include <algorithm>

#include "support/rng.h"

namespace repro::models {

std::vector<DesOp> make_des_ops(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<DesOp> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    DesOp op;
    op.indata = rng.chance(1, 8) ? 0 : rng.next();
    op.key = rng.next();
    op.decrypt = rng.chance(1, 2);
    op.gap = static_cast<uint32_t>(rng.below(4));
    ops.push_back(op);
  }
  return ops;
}

Des56DriverModel::Des56DriverModel(const std::vector<DesOp>& ops) : ops_(ops) {
  expected_.reserve(ops.size());
  for (const DesOp& op : ops) {
    expected_.push_back(op.decrypt ? des_decrypt(op.indata, op.key)
                                   : des_encrypt(op.indata, op.key));
  }
  if (ops_.empty()) {
    phase_ = Phase::kDone;
  } else {
    countdown_ = ops_.front().gap;
  }
}

Des56Inputs Des56DriverModel::tick(bool rdy, uint64_t out) {
  // Data inputs hold their last driven value while ds is low, exactly as
  // the RTL signals would; this keeps the TLM observables timing-equivalent.
  Des56Inputs in = held_;
  in.ds = false;
  if (phase_ == Phase::kWait && rdy) {
    if (out != expected_[completed_]) ++mismatches_;
    ++completed_;
    if (index_ < ops_.size()) {
      phase_ = Phase::kGap;
      countdown_ = ops_[index_].gap;
    } else {
      phase_ = Phase::kDrain;
      countdown_ = kDrainCycles;
    }
  }
  switch (phase_) {
    case Phase::kGap:
      if (countdown_ == 0) {
        const DesOp& op = ops_[index_++];
        in.ds = true;
        in.indata = op.indata;
        in.key = op.key;
        in.decrypt = op.decrypt;
        held_ = in;
        phase_ = Phase::kAssert;
      } else {
        --countdown_;
      }
      break;
    case Phase::kAssert:
      // ds was high for exactly one cycle; now wait for the result.
      phase_ = Phase::kWait;
      break;
    case Phase::kWait:
      break;
    case Phase::kDrain:
      if (countdown_ == 0) {
        phase_ = Phase::kDone;
      } else {
        --countdown_;
      }
      break;
    case Phase::kDone:
      break;
  }
  return in;
}

std::vector<CcBurst> make_cc_bursts(size_t total_pixels, uint64_t seed) {
  Rng rng(seed);
  std::vector<CcBurst> bursts;
  size_t produced = 0;
  while (produced < total_pixels) {
    CcBurst burst;
    burst.gap = static_cast<uint32_t>(rng.range(9, 16));
    const size_t len =
        std::min<size_t>(rng.range(8, 48), total_pixels - produced);
    burst.pixels.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      Pixel p;
      switch (rng.below(8)) {
        case 0:  // black: fires c4
          break;
        case 1:  // white: fires c5
          p = {255, 255, 255};
          break;
        case 2: {  // grayscale: fires c12
          const uint8_t v = static_cast<uint8_t>(rng.below(256));
          p = {v, v, v};
          break;
        }
        default:
          p = {static_cast<uint8_t>(rng.below(256)),
               static_cast<uint8_t>(rng.below(256)),
               static_cast<uint8_t>(rng.below(256))};
          break;
      }
      burst.pixels.push_back(p);
    }
    produced += len;
    bursts.push_back(std::move(burst));
  }
  return bursts;
}

ColorConvDriverModel::ColorConvDriverModel(const std::vector<CcBurst>& bursts)
    : bursts_(bursts) {
  for (const CcBurst& burst : bursts_) {
    for (const Pixel& p : burst.pixels) {
      expected_.push_back(colorconv_ref(p.r, p.g, p.b));
    }
  }
  if (bursts_.empty()) {
    phase_ = Phase::kDone;
  } else {
    countdown_ = bursts_.front().gap;
  }
}

ColorConvDrive ColorConvDriverModel::tick(bool rdy, uint8_t y, uint8_t cb,
                                          uint8_t cr) {
  if (rdy) {
    const Ycbcr& expect = expected_[check_index_];
    if (y != expect.y || cb != expect.cb || cr != expect.cr) ++mismatches_;
    ++check_index_;
    ++completed_;
  }
  ColorConvDrive drive;
  drive.inputs = held_;
  drive.inputs.ds = false;
  switch (phase_) {
    case Phase::kGap:
      if (countdown_ == 0) {
        const CcBurst& burst = bursts_[burst_];
        const Pixel& p = burst.pixels[pixel_];
        drive.inputs = {true, p.r, p.g, p.b};
        held_ = drive.inputs;
        drive.sof = pixel_ == 0;  // gap >= 9 guarantees an empty pipeline
        ++issued_;
        if (++pixel_ >= burst.pixels.size()) {
          pixel_ = 0;
          ++burst_;
          if (burst_ >= bursts_.size()) {
            phase_ = Phase::kDrain;
            countdown_ = kDrainCycles;
          } else {
            phase_ = Phase::kGap;
            countdown_ = bursts_[burst_].gap;
          }
        } else {
          phase_ = Phase::kBurst;
        }
      } else {
        --countdown_;
      }
      break;
    case Phase::kBurst: {
      const CcBurst& burst = bursts_[burst_];
      const Pixel& p = burst.pixels[pixel_];
      drive.inputs = {true, p.r, p.g, p.b};
      held_ = drive.inputs;
      drive.sof = false;
      ++issued_;
      if (++pixel_ >= burst.pixels.size()) {
        pixel_ = 0;
        ++burst_;
        if (burst_ >= bursts_.size()) {
          phase_ = Phase::kDrain;
          countdown_ = kDrainCycles;
        } else {
          phase_ = Phase::kGap;
          countdown_ = bursts_[burst_].gap;
        }
      }
      break;
    }
    case Phase::kDrain:
      if (countdown_ == 0) {
        phase_ = Phase::kDone;
      } else {
        --countdown_;
      }
      break;
    case Phase::kDone:
      break;
  }
  return drive;
}

}  // namespace repro::models
