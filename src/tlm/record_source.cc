#include "tlm/record_source.h"

#include <utility>

namespace repro::tlm {

LiveRecordSource::LiveRecordSource(sim::Kernel& kernel,
                                   TransactionRecorder& recorder,
                                   RecordStreamMeta meta, sim::Time until)
    : kernel_(kernel), meta_(std::move(meta)), until_(until) {
  recorder.subscribe(
      [this](const TransactionRecord& record) { buffer_.push_back(record); });
}

RecordSpan LiveRecordSource::next() {
  // The records handed out last time die now; the consumer was told so.
  buffer_.clear();
  // One timestamp can complete several transactions (a temporally-decoupled
  // burst, coinciding record deliveries); they form one span, preserving
  // the delivery order of the push path.
  while (buffer_.empty() && kernel_.step(until_)) {
  }
  return {buffer_.data(), buffer_.data() + buffer_.size()};
}

}  // namespace repro::tlm
