#include "tlm/recorder.h"

#include <memory>
#include <utility>

namespace repro::tlm {

void TransactionRecorder::emit(TransactionRecord record) {
  ++transactions_;
  if (listeners_.empty()) return;
  auto shared = std::make_shared<TransactionRecord>(std::move(record));
  kernel_.schedule_at(shared->end, [this, shared] {
    for (const auto& listener : listeners_) listener(*shared);
  });
}

}  // namespace repro::tlm
