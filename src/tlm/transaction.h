// TLM transaction payload, modeled after the TLM-2.0 generic payload.
//
// The `observables` map plays the role of a TLM-2.0 extension: it carries
// the values of the preserved interface variables as they stand at the
// *completion* instant of the transaction, which is what the verification
// environment samples at each Tb evaluation point (Def. III.2).
#ifndef REPRO_TLM_TRANSACTION_H_
#define REPRO_TLM_TRANSACTION_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.h"

namespace repro::tlm {

// A cheap value snapshot of the preserved interface variables: the key set
// is fixed per model and shared (one allocation per model, not per
// transaction); a snapshot instance is one flat value vector. Lookup is a
// linear scan, which beats tree/hash containers for the ~10 observables a
// model exposes.
class Snapshot {
 public:
  using Keys = std::vector<std::string>;

  Snapshot() = default;
  explicit Snapshot(std::shared_ptr<const Keys> keys)
      : keys_(std::move(keys)), values_(keys_ ? keys_->size() : 0, 0) {}

  bool empty() const { return keys_ == nullptr; }
  size_t size() const { return keys_ ? keys_->size() : 0; }
  const Keys* keys() const { return keys_.get(); }

  void set(std::string_view name, uint64_t value) {
    const Keys& keys = *keys_;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == name) {
        values_[i] = value;
        return;
      }
    }
    assert(false && "observable not in the model's key table");
  }

  std::optional<uint64_t> get(std::string_view name) const {
    if (!keys_) return std::nullopt;
    const Keys& keys = *keys_;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == name) return values_[i];
    }
    return std::nullopt;
  }

  uint64_t at(size_t index) const { return values_[index]; }
  void set_at(size_t index, uint64_t value) { values_[index] = value; }

 private:
  std::shared_ptr<const Keys> keys_;
  std::vector<uint64_t> values_;
};

enum class Command { kRead, kWrite };
enum class Response { kOk, kAddressError, kGenericError };

const char* to_string(Command c);
const char* to_string(Response r);

struct Payload {
  Command command = Command::kWrite;
  uint64_t address = 0;
  std::vector<uint64_t> data;  // word-granular, little-endian word order
  Response response = Response::kOk;
  // Set by the initiator socket when a verification environment is
  // subscribed: only then do targets materialize the observables extension
  // (mirrors how TLM-2.0 extensions are only populated on request).
  bool monitored = false;
  // Cleared by the initiator (or target) to mark a phase as silent: the
  // transaction is counted but no record is delivered. Used when its
  // completion instant coincides with another exposed phase carrying the
  // identical snapshot, so the evaluation point is not duplicated.
  bool record = true;
  // Verification extension: preserved interface values at completion time.
  Snapshot observables;
};

// A completed transaction as seen by the verification environment.
struct TransactionRecord {
  sim::Time start = 0;  // issue instant
  sim::Time end = 0;    // completion instant (start + annotated delay)
  Command command = Command::kWrite;
  uint64_t address = 0;
  std::vector<uint64_t> data;
  Response response = Response::kOk;
  Snapshot observables;
};

}  // namespace repro::tlm

#endif  // REPRO_TLM_TRANSACTION_H_
