#include "tlm/transaction.h"

namespace repro::tlm {

const char* to_string(Command c) {
  switch (c) {
    case Command::kRead: return "read";
    case Command::kWrite: return "write";
  }
  return "?";
}

const char* to_string(Response r) {
  switch (r) {
    case Response::kOk: return "ok";
    case Response::kAddressError: return "address-error";
    case Response::kGenericError: return "generic-error";
  }
  return "?";
}

}  // namespace repro::tlm
