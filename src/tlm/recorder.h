// Transaction-end event stream.
//
// The recorder is the glue between the TLM model and the dynamic ABV
// environment: every transaction completion is delivered, at its completion
// time and in kernel time order, to the subscribed listeners. The end of
// every transaction is the basic transaction context Tb of Def. III.2.
#ifndef REPRO_TLM_RECORDER_H_
#define REPRO_TLM_RECORDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/kernel.h"
#include "tlm/transaction.h"

namespace repro::tlm {

class TransactionRecorder {
 public:
  using Listener = std::function<void(const TransactionRecord&)>;

  explicit TransactionRecorder(sim::Kernel& kernel) : kernel_(kernel) {}

  void subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }

  // True when at least one listener is subscribed; when false, initiators
  // skip record materialization entirely and only count the transaction.
  bool active() const { return !listeners_.empty(); }

  // Schedules delivery of `record` to all listeners at record.end.
  // record.end must be >= the kernel's current time.
  void emit(TransactionRecord record);

  // Counts a transaction that was not materialized (unmonitored run).
  void count() { ++transactions_; }

  uint64_t transactions() const { return transactions_; }

 private:
  sim::Kernel& kernel_;
  std::vector<Listener> listeners_;
  uint64_t transactions_ = 0;
};

}  // namespace repro::tlm

#endif  // REPRO_TLM_RECORDER_H_
