// Pull-based, span-oriented ingest surface for the verification runtime.
//
// A RecordSource produces the completed-transaction stream the evaluation
// engine checks, one contiguous span at a time — mirroring
// EvalEngine::on_records — without saying anything about who produced the
// records. The two shipped implementations are the live simulation adapter
// below (LiveRecordSource, which steps the kernel and drains the recorder)
// and support::tracelog::TraceReplaySource (offline replay of a recorded
// log). Verdicts depend only on the record stream, so any source that
// produces the same stream produces byte-identical reports.
#ifndef REPRO_TLM_RECORD_SOURCE_H_
#define REPRO_TLM_RECORD_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "tlm/recorder.h"
#include "tlm/transaction.h"

namespace repro::tlm {

// A contiguous slice of completed transactions, in completion-time order.
// The pointed-to records are owned by the source and stay valid only until
// the next call into it.
struct RecordSpan {
  const TransactionRecord* begin = nullptr;
  const TransactionRecord* end = nullptr;

  size_t size() const { return static_cast<size_t>(end - begin); }
  bool empty() const { return begin == end; }
};

// Identity of a record stream: which design/abstraction level produced it,
// the reference clock period the checker wrappers are sized with, and the
// observable dictionary (the model's snapshot key table, in key-table order
// — witness rings serialize observables in this order, so replay must
// preserve it verbatim).
struct RecordStreamMeta {
  std::string design;
  std::string level;
  uint64_t clock_period_ns = 0;
  std::vector<std::string> observables;
};

class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual const RecordStreamMeta& meta() const = 0;

  // Next span of completed transactions; an empty span means the stream is
  // exhausted. The returned records are invalidated by the next call.
  virtual RecordSpan next() = 0;
};

// Live adapter: subscribes to the recorder and advances the simulation one
// timestamp at a time until records appear. Each next() call returns the
// records completed since the previous call; the stream ends when the
// kernel stops (or runs out of events) with no records pending.
class LiveRecordSource : public RecordSource {
 public:
  // Subscribing makes the recorder active, so initiators materialize
  // observables exactly as they would for a directly-subscribed
  // environment. `until` bounds simulation time like Kernel::run.
  LiveRecordSource(sim::Kernel& kernel, TransactionRecorder& recorder,
                   RecordStreamMeta meta, sim::Time until);

  const RecordStreamMeta& meta() const override { return meta_; }
  RecordSpan next() override;

 private:
  sim::Kernel& kernel_;
  RecordStreamMeta meta_;
  sim::Time until_;
  std::vector<TransactionRecord> buffer_;
};

}  // namespace repro::tlm

#endif  // REPRO_TLM_RECORD_SOURCE_H_
