#include "tlm/socket.h"

namespace repro::tlm {

sim::Time InitiatorSocket::transport(Payload& payload) {
  sim::Time delay = 0;
  return transport(payload, delay);
}

sim::Time InitiatorSocket::transport(Payload& payload, sim::Time& delay) {
  assert(target_ != nullptr && "initiator socket not bound");
  const sim::Time start = kernel_.now() + delay;
  const bool monitored = recorder_ != nullptr && recorder_->active();
  payload.monitored = monitored;
  target_->b_transport(payload, delay);
  const sim::Time end = kernel_.now() + delay;
  if (recorder_ == nullptr) return end;
  if (!monitored || !payload.record) {
    recorder_->count();
    return end;
  }
  TransactionRecord record;
  record.start = start;
  record.end = end;
  record.command = payload.command;
  record.address = payload.address;
  record.data = payload.data;
  record.response = payload.response;
  record.observables = std::move(payload.observables);
  recorder_->emit(std::move(record));
  return end;
}

}  // namespace repro::tlm
