// Initiator/target sockets with blocking transport and timing annotation,
// modeled after the TLM-2.0 loosely-/approximately-timed interfaces.
#ifndef REPRO_TLM_SOCKET_H_
#define REPRO_TLM_SOCKET_H_

#include <cassert>
#include <string>

#include "sim/kernel.h"
#include "tlm/recorder.h"
#include "tlm/transaction.h"

namespace repro::tlm {

// Target side: the model implements b_transport. The callee may add to
// `delay` the time the transaction takes; it must fill payload.data on
// reads and payload.observables with the preserved interface values as of
// completion.
class TargetIf {
 public:
  virtual ~TargetIf() = default;
  virtual void b_transport(Payload& payload, sim::Time& delay) = 0;
};

// Initiator side. transport() forwards to the bound target, emits the
// completed transaction to the recorder (delivered at the completion
// instant) and returns the completion time so state-machine drivers can
// schedule their continuation after it.
class InitiatorSocket {
 public:
  InitiatorSocket(sim::Kernel& kernel, TransactionRecorder* recorder,
                  std::string name)
      : kernel_(kernel), recorder_(recorder), name_(std::move(name)) {}

  void bind(TargetIf& target) { target_ = &target; }
  bool bound() const { return target_ != nullptr; }
  const std::string& name() const { return name_; }

  // Issues `payload` now; returns the completion time (now + annotated
  // delay). The payload is updated in place (read data, response,
  // observables).
  sim::Time transport(Payload& payload);

  // Temporally-decoupled variant (TLM-2.0 LT style): the transaction starts
  // `delay` after the current kernel time; the target adds its latency to
  // `delay`. Returns the completion time (now + delay-out). This lets a
  // driver issue a whole burst from a single kernel event.
  sim::Time transport(Payload& payload, sim::Time& delay);

 private:
  sim::Kernel& kernel_;
  TransactionRecorder* recorder_;  // may be null (unmonitored traffic)
  std::string name_;
  TargetIf* target_ = nullptr;
};

}  // namespace repro::tlm

#endif  // REPRO_TLM_SOCKET_H_
