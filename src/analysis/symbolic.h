// Symbolic bounded trajectory evaluation of compiled checker programs.
//
// SymbolicEval executes a checker::Program node table over BDD-valued atoms
// for a bounded horizon, transcribing reference_eval's three-valued
// finite-trace semantics (the ground truth the scalar engines are proven
// against) into verdict *sets*: each program node at each step gets a pair
// of BDDs (t, f) describing exactly which atom trajectories make it true or
// false there; pending is the complement. Atoms are independent
// propositional variables per (atom, step) — the same soundness contract as
// bool_logic.h: every UNSAT claim (never fails, antecedent unsatisfiable,
// node never influences the verdict) holds for all atom valuations and
// hence for the real signal semantics; SAT claims are "not ruled out" and
// are only reported as facts once a concrete witness trace replays through
// the real interpreter to the predicted verdict.
//
// Two trajectory encodings, selected by the program's operator mix:
//
//   event-stepped    no next_e: steps are consecutive evaluation events
//                    (RTL clock edges). Fixpoint operators unroll to the
//                    horizon; complete traces of every length L <= K are
//                    evaluated exactly (truncated-trace boundary semantics).
//   time-scheduled   next_e + boolean operators only: instants are the
//                    distinct cumulative next_e offsets. Per instant, free
//                    variables encode "an event exists exactly there" and
//                    "an event exists strictly inside the following gap",
//                    which models met / missed / truncated deadlines over
//                    ALL event streams (arbitrary timing) exactly.
//
// Programs mixing both currencies, or containing abort (whose semantics
// depend on resolution times), are declined with an explicit skip reason —
// mirroring the SEM005 atom-cap contract. The horizon K comes from the
// wrapper lifetime (checker::compute_lifetime) and is capped by a
// configurable step budget.
//
// exhaustive() is the load-bearing bit: when the horizon covers every
// trajectory (all longer traces are prefix-determined), bounded queries are
// exact over all traces and never_fails() is elide-grade prune evidence —
// strictly stronger than the tautology-only StaticProver. See DESIGN.md §15.
#ifndef REPRO_ANALYSIS_SYMBOLIC_H_
#define REPRO_ANALYSIS_SYMBOLIC_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/bool_logic.h"
#include "analysis/diagnostic.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "psl/ast.h"

namespace repro::analysis {

class SymbolicEval {
 public:
  struct Options {
    // Event period of the target stream; scales next_e offsets.
    psl::TimeNs clock_period_ns = 10;
    // Horizon cap: unbounded (fixpoint) programs unroll to at most this
    // many steps; bounded programs use their exact lifetime when it fits.
    // Also caps the time-scheduled instant count.
    size_t step_budget = 16;
    // Distinct-atom cap, same contract as BoolAnalyzer.
    size_t atom_cap = 20;
    // BDD growth guard: evaluation aborts to kOverBudget past this many
    // live BDD nodes.
    size_t bdd_node_cap = 1u << 20;
  };

  enum class Status { kOk, kUnsupported, kOverBudget };

  // `formula` is the property formula as the runtime sees it; the leading
  // always-chain (the activation stream) is stripped, matching the wrapper:
  // the analysis covers one instance anchored at an arbitrary event, which
  // quantifies over every activation of the repeating property.
  SymbolicEval(const psl::ExprPtr& formula, Options options);

  Status status() const { return status_; }
  // Human-readable reason when status() != kOk.
  const std::string& skip_reason() const { return skip_reason_; }
  // Steps (event-stepped) or instants (time-scheduled) actually evaluated.
  size_t horizon() const { return horizon_; }
  bool time_scheduled() const { return scheduled_; }
  // True when the horizon covers every trajectory: verdicts of longer
  // traces are prefix-determined, so the bounded queries are exact.
  bool exhaustive();

  // No complete trace within the horizon fails. Elide-grade evidence iff
  // exhaustive() also holds.
  bool never_fails();

  // Minimal-length failing trace, concretized to integer signal values and
  // replay-verified against the concrete interpreter. nullopt when no
  // failure is reachable within the horizon or no witness is realizable.
  struct FailWitness {
    WitnessTrace trace;
    size_t length = 0;  // events
  };
  std::optional<FailWitness> fail_witness();

  // Program node indices whose value never influences the root verdict
  // profile within the horizon (forcing the node to either constant leaves
  // every verdict set unchanged).
  std::vector<uint32_t> dead_nodes();

  // Dead-node elimination: the body with constant-foldable subtrees
  // replaced, parity-gated — the folded program's full verdict profile
  // (every prefix length, complete and incomplete) must equal the
  // original's, so the runtime verdict *stream* is preserved event for
  // event. Event-stepped exhaustive programs only; nullptr when nothing
  // folds or the gate fails. `folded_nodes` (optional) receives how many
  // original program nodes the fold removed.
  psl::ExprPtr fold_dead(size_t* folded_nodes = nullptr);

  // The derived antecedent (checker::derive_antecedent) is unsatisfiable
  // under the activation guard on every reachable trajectory: every pass
  // would be vacuous. `guard` may be nullptr (no activation guard).
  bool antecedent_unsat(const psl::ExprPtr& guard);

  // The compiled program under analysis (post always-strip); nullptr only
  // when compilation was skipped (kUnsupported before compile).
  const std::shared_ptr<const checker::Program>& program() const {
    return program_;
  }
  const psl::ExprPtr& body() const { return body_; }

 private:
  struct SymVerdict {
    Bdd::Ref t = Bdd::kFalse;
    Bdd::Ref f = Bdd::kFalse;

    bool operator==(const SymVerdict&) const = default;
  };
  // Root verdicts over every query point: event-stepped programs list
  // (L, complete) pairs for L = 1..K; time-scheduled programs the single
  // complete-trace verdict.
  using Profile = std::vector<SymVerdict>;

  void classify(const psl::ExprPtr& body);
  void build_schedule();
  // Routes evaluation at the given program (usually the analyzed one; the
  // fold parity gate evaluates a candidate) with optional forced node
  // constants (dead-node probing; indices of the *analyzed* program).
  void begin_eval(const checker::Program& prog,
                  const std::vector<uint8_t>* force);
  Bdd::Ref atom_ref(uint32_t atom, size_t step);
  SymVerdict eval_event(uint32_t node, size_t step, size_t len, bool complete);
  SymVerdict eval_scheduled(uint32_t node);
  SymVerdict boundary(bool complete, bool weak);
  Profile profile(const checker::Program& prog,
                  const std::vector<uint8_t>* force);
  std::optional<Bdd::Ref> build_boolean(const psl::ExprPtr& e);
  std::optional<WitnessTrace> concretize_event(const Bdd::Assignment& a,
                                               size_t len);
  std::optional<WitnessTrace> concretize_scheduled(const Bdd::Assignment& a);
  bool solve_step(
      const std::vector<std::optional<bool>>& required,
      std::vector<std::pair<std::string, uint64_t>>& values) const;

  Options options_;
  Status status_ = Status::kOk;
  std::string skip_reason_;
  psl::ExprPtr body_;
  std::shared_ptr<const checker::Program> program_;
  bool scheduled_ = false;
  bool bounded_ = true;  // no fixpoint operators
  size_t horizon_ = 0;
  std::optional<bool> exhaustive_cache_;

  Bdd bdd_;
  // Variable ids are assigned step-major (all variables of step/instant s
  // before those of s+1) so witness extraction reads front-to-back.
  // var_of_atom_[step * atom_count + atom] is the BDD variable of that
  // (atom, step); scheduled programs add per-instant event/gap variables.
  std::vector<uint32_t> var_of_atom_;
  // Time-scheduled only: sorted distinct cumulative next_e offsets
  // (offsets_[0] = 0 = the anchor), the instant each program node is
  // anchored at, per-instant "an event exists exactly here" variables and
  // "an event exists strictly inside the following gap" refs (kFalse when
  // the integer-time gap is empty), plus the suffix-or "some event past
  // this instant" refs.
  std::vector<psl::TimeNs> offsets_;
  std::vector<uint32_t> node_instant_;
  std::vector<uint32_t> event_var_;  // [1..], instant 0 unused
  std::vector<uint32_t> gap_var_;    // [1..], ~0u when gap empty
  std::vector<Bdd::Ref> past_;       // [1..]

  // Evaluation routing (begin_eval): current program, forced node
  // constants (0 free / 1 true / 2 false) and the current program's
  // atom-index translation into the analyzed program's variables.
  const checker::Program* cur_prog_ = nullptr;
  const std::vector<uint8_t>* cur_force_ = nullptr;
  std::vector<uint32_t> cur_atom_map_;
  std::unordered_map<uint64_t, SymVerdict> memo_;
  // Atoms referenced by guard/antecedent queries but absent from the
  // program; each gets one stable fresh variable past the trajectory range.
  std::vector<psl::Atom> extra_atoms_;
};

// Replays a witness trace through the concrete compiled interpreter
// (Program::compile + ProgramState) and returns the final verdict (finish()
// resolves a still-pending obligation with complete-trace semantics, like
// end of simulation). The leading always-chain of `formula` is stripped:
// the trace anchors one instance at its first event.
checker::Verdict replay_witness(const psl::ExprPtr& formula,
                                const WitnessTrace& witness);

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_SYMBOLIC_H_
