// Static-vs-dynamic coverage cross-check (COV001..COV002).
//
// The static analysis layer predicts vacuity from the formula alone
// (SEM003/SEM004: antecedent statically false, consequent or guard
// statically true). The runtime coverage table observes vacuity as it
// actually happened: a property is *dynamically vacuous* when a run produced
// no failure and no real (antecedent-exercised) pass. This check reconciles
// the two views after a run:
//
//   COV001  the analysis called the property non-vacuous, but the run never
//           exercised its consequent — the stimulus never fired the
//           antecedent (or never activated the property at all), so every
//           reported pass proves nothing about the consequent.
//   COV002  the analysis called the property statically vacuous, yet the
//           run observed real passes or failures — the static verdict was
//           too conservative for this environment (e.g. an env-specific
//           binding makes the "constant" guard vary).
//
// The inputs are plain value structs, so the simulation harness can bridge
// abv::Report rows here without this library depending on repro_abv.
#ifndef REPRO_ANALYSIS_COVERAGE_CHECK_H_
#define REPRO_ANALYSIS_COVERAGE_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"

namespace repro::analysis {

// Per-property dynamic coverage observed by one run; mirrors the counters
// of support::CoverageTable::RowSnapshot that the cross-check needs.
struct DynamicCoverage {
  std::string property;
  uint64_t activations = 0;
  uint64_t failures = 0;
  uint64_t real_passes = 0;
  uint64_t vacuous_passes = 0;

  // A run proved nothing about the consequent: no failure, no real pass.
  bool dynamically_vacuous() const {
    return failures == 0 && real_passes == 0;
  }
  // The run exercised the consequent at least once.
  bool dynamically_exercised() const { return !dynamically_vacuous(); }
};

// Cross-checks the static diagnostics of a run against its observed
// coverage and returns COV001/COV002 warnings (empty when the two views
// agree). `statics` is the full diagnostic list of the pre-simulation
// analysis; only SEM003/SEM004 entries (static vacuity) participate.
std::vector<Diagnostic> cross_check_coverage(
    const std::vector<Diagnostic>& statics,
    const std::vector<DynamicCoverage>& observed);

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_COVERAGE_CHECK_H_
