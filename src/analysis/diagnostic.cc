#include "analysis/diagnostic.h"

#include <ostream>

#include "support/json.h"

namespace repro::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string to_string(const Diagnostic& d) {
  std::string out = std::string(to_string(d.severity)) + "[" + d.code + "] ";
  if (!d.property.empty()) out += d.property + ": ";
  out += d.message;
  if (d.span.valid()) {
    out += " (at offset " + std::to_string(d.span.offset) + ")";
  }
  if (!d.hint.empty()) out += "\n  hint: " + d.hint;
  return out;
}

std::string format_witness(const WitnessTrace& witness,
                           const std::string& indent) {
  std::string out;
  for (const TraceEvent& ev : witness) {
    out += indent + "t=" + std::to_string(ev.time);
    for (const auto& [name, value] : ev.values) {
      out += " " + name + "=" + std::to_string(value);
    }
    out += "\n";
  }
  return out;
}

void write_json(std::ostream& os, const Diagnostic& d) {
  os << "{\"code\":";
  support::json::write_string(os, d.code);
  os << ",\"severity\":";
  support::json::write_string(os, to_string(d.severity));
  os << ",\"property\":";
  support::json::write_string(os, d.property);
  os << ",\"check\":";
  support::json::write_string(os, d.check);
  os << ",\"message\":";
  support::json::write_string(os, d.message);
  if (!d.hint.empty()) {
    os << ",\"hint\":";
    support::json::write_string(os, d.hint);
  }
  if (d.span.valid()) {
    os << ",\"offset\":" << d.span.offset << ",\"length\":" << d.span.length;
  }
  if (!d.witness.empty()) {
    os << ",\"witness\":[";
    for (size_t i = 0; i < d.witness.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"time\":" << d.witness[i].time << ",\"values\":{";
      for (size_t j = 0; j < d.witness[i].values.size(); ++j) {
        if (j != 0) os << ",";
        support::json::write_string(os, d.witness[i].values[j].first);
        os << ":" << d.witness[i].values[j].second;
      }
      os << "}}";
    }
    os << "]";
  }
  os << "}";
}

bool is_skip_code(const std::string& code) {
  return code == "SEM005" || code == "PRN004" || code == "SYM005";
}

DiagnosticCounts count(const std::vector<Diagnostic>& diagnostics) {
  DiagnosticCounts c;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kNote: ++c.notes; break;
      case Severity::kWarning: ++c.warnings; break;
      case Severity::kError: ++c.errors; break;
    }
    if (is_skip_code(d.code)) ++c.skipped;
  }
  return c;
}

}  // namespace repro::analysis
