// Analysis-guided runtime pruning: fold static verdicts into the live
// checker set before the simulation spawns it.
//
// The planner classifies each property of a suite against the others:
//
//   kElide     the verdict is statically known — the formula can never
//              produce a failure (safe and aggressive modes), or it fails at
//              every activation (aggressive mode only). No checker is
//              spawned; the report row carries the derived verdict.
//   kSubsumed  another *live* property of the same evaluation context
//              entails it (prove_consequence on the formulas, BDD guard
//              containment on the activation guards). The checker is not
//              spawned either; the verdict is derived from the subsuming
//              property's instance at report time.
//   kLive      everything else, including every property whose analysis hit
//              the BDD atom cap — an inconclusive analysis never prunes.
//
// Soundness contract (see DESIGN.md §14): pruning preserves *verdicts*
// (per-property ok() and the overall run verdict), not activity counters.
// An elided-true property reports zero failures, which matches any run of a
// never-failing checker. A subsumed property inherits "ok" from its
// subsumer: guard containment makes every evaluation point of the subsumed
// property an evaluation point of the subsumer, where the subsumer's
// formula entails it pointwise; contrapositively a subsumed failure implies
// a subsumer failure, so the overall run verdict is identical. When the
// subsumer fails, the subsumed row is reported as derived-inconclusive
// (never as a pass masking a failure). Aggressive mode additionally elides
// statically-false formulas with a derived *fail* — exact whenever the
// property would have been activated at least once, which is why it is not
// the safe default.
//
// With analysis=error the runtime keeps spawning pruned checkers and
// cross-checks every derived verdict against the real one (PRN003).
#ifndef REPRO_ANALYSIS_PRUNE_H_
#define REPRO_ANALYSIS_PRUNE_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/bool_logic.h"
#include "analysis/diagnostic.h"
#include "psl/ast.h"
#include "rewrite/pass_manager.h"

namespace repro::analysis {

enum class PruneMode { kOff, kSafe, kAggressive };
enum class PruneAction { kLive, kElide, kSubsumed };

const char* to_string(PruneMode m);
const char* to_string(PruneAction a);
// Parses "off" / "safe" / "aggressive"; false on anything else.
bool parse_prune_mode(std::string_view text, PruneMode& out);

// One property handed to the planner: the formula the runtime will actually
// check at this abstraction level, plus its activation guard. Properties
// are only comparable for subsumption when their context keys match (clock
// edge kind at RTL, the basic transaction context at TLM).
struct PruneInput {
  std::string name;
  psl::ExprPtr formula;
  psl::ExprPtr guard;       // nullptr = every event is an evaluation point
  std::string context_key;  // e.g. "posedge", "negedge", "edge", "tb"
};

PruneInput make_prune_input(const psl::RtlProperty& p);
PruneInput make_prune_input(const psl::TlmProperty& p);

// Symbolic bounded trajectory evidence (analysis/symbolic.h) feeding the
// planner. When enabled, pass 1 falls back to SymbolicEval::never_fails on
// properties the structural StaticProver cannot discharge — elide-grade only
// when the symbolic horizon is exhaustive — and surviving live properties
// get a parity-gated dead-node fold (PruneDecision::program_fold).
struct SymbolicPruneOptions {
  bool enabled = false;
  // Event period of the target stream (scales next_e offsets).
  psl::TimeNs clock_period_ns = 10;
  // Horizon cap handed to SymbolicEval.
  size_t step_budget = 16;
};

struct PruneDecision {
  std::string name;
  PruneAction action = PruneAction::kLive;
  // kElide: the statically derived verdict (true = can never fail; false =
  // fails at every activation, aggressive mode only).
  bool static_verdict = true;
  // kSubsumed: the live property whose instance derives this verdict.
  std::string subsumed_by;
  // The analysis hit the BDD atom cap somewhere while looking at this
  // property; it stays kLive and the skip is reported (PRN004).
  bool capped = false;
  std::string reason;  // human-readable justification
  // kLive only: the formula with guard-implied atoms constant-folded at the
  // instance anchor (the rewrite-layer specialization stage); nullptr when
  // no fold applied — check the original formula unchanged.
  psl::ExprPtr specialized;
  // kLive only, symbolic evidence: a dead-node fold of the *checked*
  // formula (specialized when present, original otherwise), parity-gated by
  // SymbolicEval::fold_dead so the verdict stream is identical event for
  // event. The runtime compiles this program in place of the formula while
  // the original body keeps driving cost accounting (node_visits), so
  // reports stay byte-identical. nullptr = no fold.
  psl::ExprPtr program_fold;
};

struct PrunePlan {
  PruneMode mode = PruneMode::kOff;
  std::vector<PruneDecision> decisions;  // input order

  const PruneDecision* find(std::string_view name) const;
  size_t live() const;
  size_t elided() const;
  size_t subsumed() const;

  // PRN001 (elided) / PRN002 (subsumed) / PRN004 (capped, kept live) notes,
  // one per non-trivial decision.
  std::vector<Diagnostic> diagnostics() const;

  // Machine-readable plan (stable schema, schema_version 1).
  void write_json(std::ostream& os) const;
};

// Builds the plan over `pm`'s table: formulas and guards are interned
// there, specialization runs through pm.specialize, and entailment queries
// go through `booleans`, which must have been built over the same table.
PrunePlan build_prune_plan(rewrite::PassManager& pm, BoolAnalyzer& booleans,
                           const std::vector<PruneInput>& inputs,
                           PruneMode mode,
                           const SymbolicPruneOptions& symbolic = {});

// Convenience: same, through a throwaway PassManager/BoolAnalyzer.
PrunePlan build_prune_plan(const std::vector<PruneInput>& inputs,
                           PruneMode mode, size_t atom_cap = 20,
                           const SymbolicPruneOptions& symbolic = {});

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_PRUNE_H_
