// analysis::Driver — the static property-analysis battery.
//
// The driver owns one rewrite::PassManager (and thus one interned ExprTable)
// and one BoolAnalyzer, runs the Methodology III.1 pipeline on each property
// handed to analyze(), and then runs every check of checks.h over the
// outcome. All diagnostics accumulate in per-property records; render_text()
// and write_json() produce the compiler-style and machine-readable reports.
//
// The driver never mutates the properties or the simulation configuration:
// running it before a simulation leaves the simulation's reports
// byte-identical (the testbench uses its own pass manager).
#ifndef REPRO_ANALYSIS_DRIVER_H_
#define REPRO_ANALYSIS_DRIVER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/bool_logic.h"
#include "analysis/checks.h"
#include "analysis/diagnostic.h"

namespace repro::analysis {

class Driver {
 public:
  explicit Driver(AnalysisOptions options);

  const AnalysisOptions& options() const { return options_; }

  // Runs the full check battery on one property and returns its record
  // (valid until the next analyze() call reallocates the vector — index
  // into results() for stable access).
  const PropertyAnalysis& analyze(const psl::RtlProperty& property,
                                  SourceSpan span = {});

  // Attaches a diagnostic produced outside the per-property battery (e.g. a
  // PSL000 parse error from psl_lint).
  void add_diagnostic(Diagnostic d);

  const std::vector<PropertyAnalysis>& results() const { return results_; }
  const std::vector<Diagnostic>& extra_diagnostics() const { return extra_; }

  // Severity histogram over every diagnostic seen so far.
  DiagnosticCounts counts() const;
  // True when no error-severity diagnostic was emitted.
  bool ok() const { return counts().errors == 0; }

  // Compiler-style text report: one line per diagnostic plus a summary line.
  void render_text(std::ostream& os) const;

  // Machine-readable report (schema_version 1): per-property records with
  // classification, audit status, sizing and diagnostics.
  void write_json(std::ostream& os) const;

 private:
  AnalysisOptions options_;
  rewrite::PassManager pm_;
  BoolAnalyzer booleans_;
  std::vector<PropertyAnalysis> results_;
  std::vector<Diagnostic> extra_;
};

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_DRIVER_H_
