#include "analysis/checks.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "psl/simple_subset.h"

namespace repro::analysis {

namespace {

using psl::ExprId;
using psl::ExprKind;
using psl::ExprTable;

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

void emit(CheckContext& ctx, std::string code, Severity severity,
          std::string check, std::string message, std::string hint = {}) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = severity;
  d.property = ctx.property.name;
  d.check = std::move(check);
  d.message = std::move(message);
  d.hint = std::move(hint);
  d.span = ctx.span;
  ctx.record.diagnostics.push_back(std::move(d));
}

}  // namespace

const char* to_string(AuditStatus s) {
  switch (s) {
    case AuditStatus::kConfirmed: return "confirmed";
    case AuditStatus::kMismatch: return "mismatch";
    case AuditStatus::kSkipped: return "skipped";
  }
  return "?";
}

bool PropertyAnalysis::ok() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

// ---- Simple subset (PSL001..PSL005) -----------------------------------------

void check_simple_subset(CheckContext& ctx) {
  for (const psl::SubsetViolation& v :
       psl::check_simple_subset(ctx.property.formula)) {
    const char* code = "PSL001";
    const char* hint = "";
    switch (v.rule) {
      case psl::SubsetRule::kNegationNonBoolean:
        code = "PSL001";
        hint = "push the negation inward (NNF) or negate a boolean instead";
        break;
      case psl::SubsetRule::kImplicationLhsNonBoolean:
        code = "PSL002";
        hint = "only boolean antecedents keep time moving left to right";
        break;
      case psl::SubsetRule::kOrBothNonBoolean:
        code = "PSL003";
        hint = "rewrite so that at most one '||' operand is temporal";
        break;
      case psl::SubsetRule::kUntilOperandNonBoolean:
        code = "PSL004";
        hint = "use boolean operands (or next chains over booleans) in "
               "until/release";
        break;
      case psl::SubsetRule::kAbortConditionNonBoolean:
        code = "PSL005";
        hint = "abort conditions must be boolean";
        break;
    }
    emit(ctx, code, Severity::kError, "simple-subset",
         std::string(psl::describe(v.rule)) + ": " + v.subformula, hint);
  }
}

// ---- Boolean-layer semantics (SEM001..SEM005) --------------------------------

namespace {

bool is_literal_or_const(const ExprTable& t, ExprId id) {
  const ExprTable::Node& n = t.node(id);
  if (n.kind == ExprKind::kConstTrue || n.kind == ExprKind::kConstFalse ||
      n.kind == ExprKind::kAtom) {
    return true;
  }
  return n.kind == ExprKind::kNot && t.node(n.lhs).kind == ExprKind::kAtom;
}

struct SemScan {
  CheckContext& ctx;
  const ExprTable& t;
  std::unordered_set<ExprId> reported;  // vacuity already reported here
  std::unordered_set<ExprId> visited;
  bool capped = false;

  void note_answer(BoolAnalyzer::Answer a) {
    if (a == BoolAnalyzer::Answer::kCapped) capped = true;
  }

  // Pass A: static vacuity of implications and guarded-command ors.
  void vacuity(ExprId id) {
    if (id == psl::kNoExpr || !visited.insert(id).second) return;
    const ExprTable::Node& n = t.node(id);
    if (n.kind == ExprKind::kImplies) {
      if (t.facts(n.lhs).is_boolean) {
        const auto a = ctx.booleans.contradiction(n.lhs);
        note_answer(a);
        if (a == BoolAnalyzer::Answer::kYes && reported.insert(n.lhs).second) {
          emit(ctx, "SEM003", Severity::kWarning, "bool-semantics",
               "implication antecedent is statically false: " +
                   t.to_string(n.lhs),
               "the property is vacuously true; every activation resolves "
               "trivially");
        }
      }
      if (t.facts(n.rhs).is_boolean) {
        const auto a = ctx.booleans.tautology(n.rhs);
        note_answer(a);
        if (a == BoolAnalyzer::Answer::kYes && reported.insert(n.rhs).second) {
          emit(ctx, "SEM004", Severity::kWarning, "bool-semantics",
               "implication consequent is statically true: " +
                   t.to_string(n.rhs),
               "the property is vacuously true; it constrains nothing");
        }
      }
    }
    // The guarded-command idiom `!a || temporal`: a statically-true boolean
    // operand short-circuits the whole disjunction. Pure-boolean ors are
    // left to the maximal-subformula scan (pass B) to avoid double reports.
    if (n.kind == ExprKind::kOr) {
      const bool lb = t.facts(n.lhs).is_boolean;
      const bool rb = t.facts(n.rhs).is_boolean;
      if (lb != rb) {
        const ExprId guard = lb ? n.lhs : n.rhs;
        const auto a = ctx.booleans.tautology(guard);
        note_answer(a);
        if (a == BoolAnalyzer::Answer::kYes && reported.insert(guard).second) {
          emit(ctx, "SEM004", Severity::kWarning, "bool-semantics",
               "'||' operand is statically true: " + t.to_string(guard),
               "the property is vacuously satisfied at every evaluation "
               "point");
        }
      }
    }
    vacuity(n.lhs);
    vacuity(n.rhs);
  }

  // Pass B: tautology/contradiction of maximal boolean subformulas.
  void maximal(ExprId id) {
    if (id == psl::kNoExpr) return;
    if (t.facts(id).is_boolean) {
      if (is_literal_or_const(t, id) || reported.count(id) != 0) return;
      const auto taut = ctx.booleans.tautology(id);
      note_answer(taut);
      if (taut == BoolAnalyzer::Answer::kYes) {
        emit(ctx, "SEM001", Severity::kWarning, "bool-semantics",
             "boolean subformula is a tautology: " + t.to_string(id),
             "simplify it to 'true'");
        return;
      }
      const auto contra = ctx.booleans.contradiction(id);
      note_answer(contra);
      if (contra == BoolAnalyzer::Answer::kYes) {
        emit(ctx, "SEM002", Severity::kWarning, "bool-semantics",
             "boolean subformula is contradictory: " + t.to_string(id),
             "simplify it to 'false'");
      }
      return;  // subformulas of a boolean formula are not maximal
    }
    const ExprTable::Node& n = t.node(id);
    maximal(n.lhs);
    maximal(n.rhs);
  }
};

}  // namespace

void check_bool_semantics(CheckContext& ctx) {
  ExprTable& t = ctx.pm.table();
  const ExprId original = t.intern(ctx.property.formula);
  SemScan scan{ctx, t, {}, {}};
  scan.vacuity(original);
  scan.maximal(original);
  if (scan.capped) {
    emit(ctx, "SEM005", Severity::kNote, "bool-semantics",
         "boolean-layer analysis skipped: formula exceeds the " +
             std::to_string(ctx.booleans.atom_cap()) + "-atom analysis cap",
         "split the property or raise the cap to analyze it");
  }
}

// ---- Consequence audit (AUD001..AUD004, Thm. III.2) -------------------------

namespace {

struct Prover {
  const ExprTable& t;
  BoolAnalyzer& ba;
  std::map<std::pair<ExprId, ExprId>, Entailment> memo;

  Entailment prove(ExprId p, ExprId q) {
    if (p == q) return Entailment::kProved;
    const auto key = std::make_pair(p, q);
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    const Entailment out = prove_uncached(p, q);
    memo.emplace(key, out);
    return out;
  }

  // Combines rule outcomes: proved wins; otherwise a cap anywhere demotes
  // unknown to capped so the caller can report the skip.
  struct Acc {
    bool capped = false;
    bool update(Entailment e) {  // returns true when proved
      if (e == Entailment::kCapped) capped = true;
      return e == Entailment::kProved;
    }
    Entailment result() const {
      return capped ? Entailment::kCapped : Entailment::kUnknown;
    }
  };

  Entailment both(ExprId p1, ExprId q1, ExprId p2, ExprId q2) {
    const Entailment a = prove(p1, q1);
    if (a == Entailment::kUnknown) return Entailment::kUnknown;
    const Entailment b = prove(p2, q2);
    if (b == Entailment::kProved && a == Entailment::kProved) {
      return Entailment::kProved;
    }
    if (a == Entailment::kCapped || b == Entailment::kCapped) {
      return Entailment::kCapped;
    }
    return Entailment::kUnknown;
  }

  Entailment prove_uncached(ExprId p, ExprId q) {
    const ExprTable::Node& np = t.node(p);
    const ExprTable::Node& nq = t.node(q);
    // Terminal rules.
    if (nq.kind == ExprKind::kConstTrue) return Entailment::kProved;
    if (np.kind == ExprKind::kConstFalse) return Entailment::kProved;
    // Propositional discharge when both sides are boolean.
    if (t.facts(p).is_boolean && t.facts(q).is_boolean) {
      switch (ba.implies(p, q)) {
        case BoolAnalyzer::Answer::kYes: return Entailment::kProved;
        case BoolAnalyzer::Answer::kNo: return Entailment::kUnknown;
        case BoolAnalyzer::Answer::kCapped: return Entailment::kCapped;
      }
    }
    Acc acc;
    // Structural monotonicity: matching operators with entailed operands.
    if (np.kind == nq.kind) {
      switch (np.kind) {
        case ExprKind::kAlways:
        case ExprKind::kEventually:
          if (acc.update(prove(np.lhs, nq.lhs))) return Entailment::kProved;
          break;
        case ExprKind::kNext:
          if (np.next_count == nq.next_count &&
              acc.update(prove(np.lhs, nq.lhs))) {
            return Entailment::kProved;
          }
          break;
        case ExprKind::kNextEps:
          if (np.eps == nq.eps && acc.update(prove(np.lhs, nq.lhs))) {
            return Entailment::kProved;
          }
          break;
        case ExprKind::kUntil:
          // strong |= weak of entailed operands; weak never entails strong.
          if ((np.strong || !nq.strong) &&
              both(np.lhs, nq.lhs, np.rhs, nq.rhs) == Entailment::kProved) {
            return Entailment::kProved;
          }
          break;
        case ExprKind::kRelease:
          if (both(np.lhs, nq.lhs, np.rhs, nq.rhs) == Entailment::kProved) {
            return Entailment::kProved;
          }
          break;
        case ExprKind::kAbort:
          if (np.rhs == nq.rhs && np.strong == nq.strong &&
              acc.update(prove(np.lhs, nq.lhs))) {
            return Entailment::kProved;
          }
          break;
        default:
          break;
      }
    }
    // Conjunction elimination / disjunction introduction (the Fig. 4
    // &&-deletion shape).
    if (np.kind == ExprKind::kAnd) {
      if (acc.update(prove(np.lhs, q))) return Entailment::kProved;
      if (acc.update(prove(np.rhs, q))) return Entailment::kProved;
    }
    if (nq.kind == ExprKind::kOr) {
      if (acc.update(prove(p, nq.lhs))) return Entailment::kProved;
      if (acc.update(prove(p, nq.rhs))) return Entailment::kProved;
    }
    // Case split / conjunction introduction.
    if (np.kind == ExprKind::kOr &&
        both(np.lhs, q, np.rhs, q) == Entailment::kProved) {
      return Entailment::kProved;
    }
    if (nq.kind == ExprKind::kAnd &&
        both(p, nq.lhs, p, nq.rhs) == Entailment::kProved) {
      return Entailment::kProved;
    }
    // always p |= p (now); a release b |= b (now); a until! b |= eventually b.
    if (np.kind == ExprKind::kAlways && acc.update(prove(np.lhs, q))) {
      return Entailment::kProved;
    }
    if (np.kind == ExprKind::kRelease && acc.update(prove(np.rhs, q))) {
      return Entailment::kProved;
    }
    if (nq.kind == ExprKind::kEventually && acc.update(prove(p, nq.lhs))) {
      return Entailment::kProved;
    }
    if (np.kind == ExprKind::kUntil && np.strong &&
        nq.kind == ExprKind::kEventually &&
        acc.update(prove(np.rhs, nq.lhs))) {
      return Entailment::kProved;
    }
    return acc.result();
  }
};

}  // namespace

Entailment prove_consequence(const ExprTable& table, ExprId p, ExprId q,
                             BoolAnalyzer& booleans) {
  Prover prover{table, booleans, {}};
  return prover.prove(p, q);
}

void check_consequence(CheckContext& ctx) {
  using rewrite::AbstractionClass;
  ExprTable& t = ctx.pm.table();
  const AbstractionClass cls = ctx.outcome.classification;
  const char* cls_name = rewrite::to_string(cls);

  if (cls == AbstractionClass::kDeleted || ctx.outcome.deleted()) {
    ctx.record.audit = AuditStatus::kConfirmed;
    emit(ctx, "AUD001", Severity::kNote, "consequence-audit",
         "property deleted by signal abstraction (vacuous at TLM); nothing "
         "to audit");
    return;
  }

  // Audit between the NNF'd original and the signal-abstraction output —
  // the exact pair Thm. III.2 relates. Both calls are memoized in the pass
  // manager, so this reruns no rewrite.
  const ExprId original = ctx.pm.nnf(t.intern(ctx.property.formula));
  const ExprId abstracted = ctx.pm.signal_abstraction(original).formula;
  const Entailment res =
      prove_consequence(t, original, abstracted, ctx.booleans);

  if (res == Entailment::kCapped) {
    ctx.record.audit = AuditStatus::kSkipped;
    emit(ctx, "AUD004", Severity::kNote, "consequence-audit",
         std::string("consequence audit skipped: formula exceeds the ") +
             std::to_string(ctx.booleans.atom_cap()) + "-atom analysis cap " +
             "(syntactic classification '" + cls_name + "' stands unchecked)");
    return;
  }

  const bool claims_consequence = cls == AbstractionClass::kUnchanged ||
                                  cls == AbstractionClass::kConsequence;
  if (claims_consequence) {
    if (res == Entailment::kProved) {
      ctx.record.audit = AuditStatus::kConfirmed;
      emit(ctx, "AUD001", Severity::kNote, "consequence-audit",
           std::string("abstracted formula is a logical consequence of the "
                       "original (Thm. III.2); classification '") +
               cls_name + "' confirmed");
    } else {
      ctx.record.audit = AuditStatus::kMismatch;
      emit(ctx, "AUD002", Severity::kWarning, "consequence-audit",
           std::string("classified '") + cls_name +
               "' but the audit could not establish that the abstracted "
               "formula follows from the original",
           "treat TLM failures of this property as needs-review");
    }
    return;
  }

  // kNeedsReview: the audit may still prove consequence (the syntactic
  // classification is conservative), which downgrades the review burden.
  if (res == Entailment::kProved) {
    ctx.record.audit = AuditStatus::kConfirmed;
    emit(ctx, "AUD003", Severity::kNote, "consequence-audit",
         "audit proved the abstracted formula is a logical consequence of "
         "the original although it is classified 'needs-review'",
         "the syntactic classification is conservative; TLM results for "
         "this property can be trusted as at RTL");
  } else {
    ctx.record.audit = AuditStatus::kConfirmed;
    emit(ctx, "AUD001", Severity::kNote, "consequence-audit",
         "audit agrees: the abstracted formula is not provably a "
         "consequence of the original; 'needs-review' stands");
  }
}

// ---- Environment binding (ENV001..ENV002) ------------------------------------

namespace {

void bind_names(CheckContext& ctx, const std::vector<std::string>& referenced,
                const std::vector<std::string>& available, const char* what,
                const char* env_name, const char* code) {
  if (available.empty()) return;
  const std::set<std::string> have(available.begin(), available.end());
  for (const std::string& name : referenced) {
    if (have.count(name) != 0) continue;
    emit(ctx, code, Severity::kError, "env-binding",
         std::string(what) + " references observable '" + name +
             "' which the " + env_name + " environment does not expose",
         "available observables: " + join(available));
  }
}

}  // namespace

void check_env_binding(CheckContext& ctx) {
  ExprTable& t = ctx.pm.table();
  // RTL side: the original formula and its clock-context guard evaluate
  // against the RTL environment's signal bag.
  if (!ctx.options.rtl_observables.empty()) {
    const ExprId original = t.intern(ctx.property.formula);
    bind_names(ctx, t.signals(original), ctx.options.rtl_observables, "atom",
               "RTL", "ENV001");
    if (ctx.property.context.guard) {
      const ExprId guard = t.intern(ctx.property.context.guard);
      bind_names(ctx, t.signals(guard), ctx.options.rtl_observables,
                 "clock-context guard", "RTL", "ENV002");
    }
  }
  // TLM side: the abstracted formula and the mapped transaction-context
  // guard evaluate against the TLM environment's transaction snapshots —
  // this turns the runtime ObservablesContext::value fail-fast into a
  // pre-simulation diagnostic.
  if (!ctx.options.tlm_observables.empty() && !ctx.outcome.deleted()) {
    const ExprId tlm = t.intern(ctx.outcome.property->formula);
    bind_names(ctx, t.signals(tlm), ctx.options.tlm_observables, "atom",
               "TLM", "ENV001");
    if (ctx.outcome.property->context.guard) {
      const ExprId guard = t.intern(ctx.outcome.property->context.guard);
      bind_names(ctx, t.signals(guard), ctx.options.tlm_observables,
                 "transaction-context guard", "TLM", "ENV002");
    }
  }
}

// ---- Checker sizing (SIZ001..SIZ003) -----------------------------------------

namespace {

void collect_windows(const ExprTable& t, ExprId id,
                     std::vector<psl::TimeNs>& out,
                     std::unordered_set<ExprId>& visited) {
  if (id == psl::kNoExpr || !visited.insert(id).second) return;
  const ExprTable::Node& n = t.node(id);
  if (n.kind == ExprKind::kNextEps) out.push_back(n.eps);
  collect_windows(t, n.lhs, out, visited);
  collect_windows(t, n.rhs, out, visited);
}

}  // namespace

void check_sizing(CheckContext& ctx) {
  if (ctx.outcome.deleted()) return;
  ExprTable& t = ctx.pm.table();
  const psl::TimeNs period = ctx.options.abstraction.clock_period_ns;
  const ExprId tlm = t.intern(ctx.outcome.property->formula);

  std::unordered_set<ExprId> visited;
  std::vector<psl::TimeNs> windows;
  collect_windows(t, tlm, windows, visited);
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  ctx.record.windows_ns = windows;
  ctx.record.lifetime =
      checker::compute_lifetime(ctx.outcome.property->formula, period);

  for (const psl::TimeNs eps : windows) {
    if (period != 0 && eps % period != 0) {
      emit(ctx, "SIZ001", Severity::kWarning, "checker-sizing",
           "next_e window " + std::to_string(eps) +
               " ns is not a multiple of the " + std::to_string(period) +
               " ns clock period",
           "the wrapper rounds the instance lifetime up to " +
               std::to_string((eps + period - 1) / period) +
               " instants; align the window with the clock period");
    }
  }

  const checker::LifetimeInfo& life = ctx.record.lifetime;
  if (!life.bounded) {
    emit(ctx, "SIZ002", Severity::kNote, "checker-sizing",
         "wrapper lifetime is unbounded (until/release/eventually "
         "obligations); the instance pool grows on demand, capped at the "
         "active high-water mark");
  } else if (life.max_eps > 0) {
    std::string window_list;
    for (const psl::TimeNs eps : windows) {
      if (!window_list.empty()) window_list += ", ";
      window_list += std::to_string(eps);
    }
    emit(ctx, "SIZ003", Severity::kNote, "checker-sizing",
         "predicted wrapper sizing: lifetime " +
             std::to_string(life.instants) +
             " instants, instance-pool capacity " +
             std::to_string(life.instants) + " (windows: " + window_list +
             " ns)");
  }
}

}  // namespace repro::analysis
