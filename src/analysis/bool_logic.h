// Boolean-layer semantic engine for the static analysis passes.
//
// A small reduced ordered BDD (hash-consed nodes, memoized ite) decides
// tautology, contradiction and implication over the boolean layer of
// interned formulas. Atoms are deduplicated through the ExprTable's atom
// index and treated as independent propositional variables — semantically
// related comparisons (`y <= 235` vs `y > 235`) are NOT connected, which
// keeps every positive answer sound: a reported tautology/contradiction/
// implication holds for all atom valuations, hence for the real signal
// semantics too. The converse does not hold (the analysis may miss
// arithmetic tautologies); callers treat "no" as "unknown".
//
// Queries are capped at `atom_cap` distinct atoms (default 20): past the
// cap build() declines and the caller emits an explicit "analysis skipped"
// diagnostic instead of silently burning memory.
#ifndef REPRO_ANALYSIS_BOOL_LOGIC_H_
#define REPRO_ANALYSIS_BOOL_LOGIC_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "psl/intern.h"

namespace repro::analysis {

// Reduced ordered BDD. Refs 0/1 are the terminal false/true nodes; variable
// order is the order variables are first created in.
class Bdd {
 public:
  using Ref = uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  Bdd();

  Ref var(uint32_t v);
  Ref not_(Ref f) { return ite(f, kFalse, kTrue); }
  Ref and_(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref or_(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  bool is_true(Ref f) const { return f == kTrue; }
  bool is_false(Ref f) const { return f == kFalse; }

  size_t node_count() const { return nodes_.size(); }

  // Satisfying assignments as (variable, value) pairs along one BDD path;
  // variables not mentioned are don't-care. The walk prefers the low branch
  // (variable false) whenever it stays satisfiable, biasing extracted
  // witnesses toward "nothing happens".
  using Assignment = std::vector<std::pair<uint32_t, bool>>;

  // One satisfying assignment of f; false when f is unsatisfiable.
  bool sat_one(Ref f, Assignment& out) const;
  // Up to `limit` satisfying cube assignments of f (DFS order, low branch
  // first).
  std::vector<Assignment> sat_some(Ref f, size_t limit) const;

 private:
  struct Node {
    uint32_t var = 0;  // terminals use the max var so they sort last
    Ref lo = 0;
    Ref hi = 0;
  };
  struct Key {
    uint32_t var;
    Ref lo;
    Ref hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (uint64_t{k.var} << 40) ^ (uint64_t{k.lo} << 20) ^ k.hi;
      h *= 0x9E3779B97F4A7C15ull;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct IteKey {
    Ref f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& k) const {
      uint64_t v = (uint64_t{k.f} << 42) ^ (uint64_t{k.g} << 21) ^ k.h;
      v *= 0xC2B2AE3D27D4EB4Full;
      return static_cast<size_t>(v ^ (v >> 29));
    }
  };

  Ref mk(uint32_t var, Ref lo, Ref hi);
  Ref ite(Ref f, Ref g, Ref h);
  Ref cofactor(Ref f, uint32_t var, bool positive) const;

  std::vector<Node> nodes_;
  std::unordered_map<Key, Ref, KeyHash> unique_;
  std::unordered_map<IteKey, Ref, IteKeyHash> ite_memo_;
};

// Builds BDDs for boolean-layer formulas of one ExprTable. Atom identity
// comes from the table's atom interning, so `rdy` in two different formulas
// maps to the same variable. The analyzer may outlive table growth: ids are
// resolved lazily per query.
class BoolAnalyzer {
 public:
  explicit BoolAnalyzer(const psl::ExprTable& table, size_t atom_cap = 20)
      : table_(table), atom_cap_(atom_cap) {}

  size_t atom_cap() const { return atom_cap_; }

  // BDD of a boolean formula (kAtom/kNot/kAnd/kOr/kImplies/constants only —
  // the caller guarantees facts(id).is_boolean). nullopt when building would
  // exceed the atom cap; `atoms_needed`, when non-null, receives the number
  // of distinct atoms the formula references.
  std::optional<Bdd::Ref> build(psl::ExprId id, size_t* atoms_needed = nullptr);

  // Tri-state query results: the cap turns "don't know" into kCapped so
  // callers can report the skip explicitly.
  enum class Answer { kYes, kNo, kCapped };

  Answer tautology(psl::ExprId id);
  Answer contradiction(psl::ExprId id);
  // Does `a` propositionally entail `b`?
  Answer implies(psl::ExprId a, psl::ExprId b);

  // Distinct atoms referenced below `id` (boolean or not).
  size_t distinct_atoms(psl::ExprId id);

 private:
  uint32_t var_for_atom(uint32_t table_atom);
  void collect_atoms(psl::ExprId id, std::vector<uint32_t>& atoms);

  const psl::ExprTable& table_;
  size_t atom_cap_;
  Bdd bdd_;
  std::unordered_map<uint32_t, uint32_t> atom_vars_;  // table atom -> BDD var
  std::unordered_map<psl::ExprId, Bdd::Ref> build_memo_;
  std::unordered_map<psl::ExprId, std::vector<uint32_t>> atom_memo_;
};

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_BOOL_LOGIC_H_
