#include "analysis/symbolic.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "analysis/checks.h"
#include "checker/program.h"

namespace repro::analysis {

namespace {

using checker::Program;
using psl::ExprKind;

const char* opcode_name(ExprKind k) {
  switch (k) {
    case ExprKind::kConstTrue: return "true";
    case ExprKind::kConstFalse: return "false";
    case ExprKind::kAtom: return "atom";
    case ExprKind::kNot: return "not";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kImplies: return "implies";
    case ExprKind::kNext: return "next";
    case ExprKind::kNextEps: return "next_e";
    case ExprKind::kUntil: return "until";
    case ExprKind::kRelease: return "release";
    case ExprKind::kAlways: return "always";
    case ExprKind::kEventually: return "eventually";
    case ExprKind::kAbort: return "abort";
  }
  return "?";
}

bool is_fixpoint(ExprKind k) {
  return k == ExprKind::kUntil || k == ExprKind::kRelease ||
         k == ExprKind::kAlways || k == ExprKind::kEventually;
}

// Signals an atom references.
void atom_signals(const psl::Atom& a, std::vector<std::string>& out) {
  out.push_back(a.lhs);
  if (a.rhs_is_signal) out.push_back(a.rhs_signal);
}

}  // namespace

SymbolicEval::SymbolicEval(const psl::ExprPtr& formula, Options options)
    : options_(options) {
  body_ = formula;
  while (body_ != nullptr && body_->kind == ExprKind::kAlways) {
    body_ = body_->lhs;
  }
  if (body_ == nullptr) {
    status_ = Status::kUnsupported;
    skip_reason_ = "empty formula";
    return;
  }
  classify(body_);
  if (status_ != Status::kOk) return;
  program_ = Program::compile(body_);
  if (program_->atoms().size() > options_.atom_cap) {
    status_ = Status::kOverBudget;
    skip_reason_ = "formula references " +
                   std::to_string(program_->atoms().size()) +
                   " distinct atoms (cap " + std::to_string(options_.atom_cap) +
                   ")";
    return;
  }
  if (scheduled_) {
    build_schedule();
    return;
  }
  // Event-stepped horizon: bounded programs resolve within their maximum
  // nested-next distance D, so lengths 1..D+1 cover every trace exactly
  // (longer traces never hit a boundary and depend only on steps <= D).
  // Fixpoint programs unroll to the budget; exhaustive() reports whether
  // every trajectory still resolved within it.
  const auto& nodes = program_->nodes();
  std::vector<size_t> depth(nodes.size(), 0);
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    const size_t dl = n.lhs == Program::kNoNode ? 0 : depth[n.lhs];
    const size_t dr = n.rhs == Program::kNoNode ? 0 : depth[n.rhs];
    depth[i] = std::max(dl, dr);
    if (n.op == ExprKind::kNext) depth[i] = n.next_count + dl;
  }
  const size_t want = bounded_ ? depth[program_->root()] + 1
                               : options_.step_budget;
  horizon_ = std::min(std::max<size_t>(want, 1), options_.step_budget);
  if (horizon_ < want) {
    // A clamped bounded program can no longer claim exhaustiveness; keep
    // going (witness search within the clamp stays sound) but flag it.
    exhaustive_cache_ = false;
  }
  if (horizon_ == 0) {
    status_ = Status::kOverBudget;
    skip_reason_ = "step budget is 0";
    return;
  }
  const size_t atoms = program_->atoms().size();
  var_of_atom_.resize(horizon_ * atoms);
  uint32_t next_var = 0;
  for (size_t s = 0; s < horizon_; ++s) {
    for (size_t a = 0; a < atoms; ++a) {
      var_of_atom_[s * atoms + a] = next_var++;
    }
  }
}

void SymbolicEval::classify(const psl::ExprPtr& body) {
  bool has_abort = false;
  bool has_next = false;
  bool has_eps = false;
  bool has_fix = false;
  bool has_zero_eps = false;
  std::vector<const psl::Expr*> work{body.get()};
  while (!work.empty()) {
    const psl::Expr* e = work.back();
    work.pop_back();
    switch (e->kind) {
      case ExprKind::kAbort: has_abort = true; break;
      case ExprKind::kNext: has_next = true; break;
      case ExprKind::kNextEps:
        has_eps = true;
        if (e->eps == 0) has_zero_eps = true;
        break;
      default:
        if (is_fixpoint(e->kind)) has_fix = true;
        break;
    }
    if (e->lhs) work.push_back(e->lhs.get());
    if (e->rhs) work.push_back(e->rhs.get());
  }
  if (has_abort) {
    status_ = Status::kUnsupported;
    skip_reason_ = "abort obligations depend on resolution times";
    return;
  }
  if (has_eps && (has_next || has_fix)) {
    status_ = Status::kUnsupported;
    skip_reason_ = "mixes timed (next_e) and event-counted obligations";
    return;
  }
  if (has_zero_eps) {
    status_ = Status::kUnsupported;
    skip_reason_ = "zero-width next_e window";
    return;
  }
  scheduled_ = has_eps;
  bounded_ = !has_fix;
}

void SymbolicEval::build_schedule() {
  // Each node of a next_e/boolean program is evaluated at exactly one
  // cumulative time offset from the anchor (the tree has no fixpoints, so
  // every node sits on a unique root path). Children are visited after
  // their parent in descending index order.
  const auto& nodes = program_->nodes();
  std::vector<psl::TimeNs> off(nodes.size(), 0);
  for (uint32_t i = static_cast<uint32_t>(nodes.size()); i-- > 0;) {
    const auto& n = nodes[i];
    const psl::TimeNs child_off =
        n.op == ExprKind::kNextEps ? off[i] + n.eps : off[i];
    if (n.lhs != Program::kNoNode) off[n.lhs] = child_off;
    if (n.rhs != Program::kNoNode) off[n.rhs] = child_off;
  }
  offsets_.assign(1, 0);
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    // The instant a next_e node *targets* (its operand's anchor).
    if (nodes[i].op == ExprKind::kNextEps) {
      offsets_.push_back(off[i] + nodes[i].eps);
    }
  }
  std::sort(offsets_.begin(), offsets_.end());
  offsets_.erase(std::unique(offsets_.begin(), offsets_.end()),
                 offsets_.end());
  horizon_ = offsets_.size();
  if (horizon_ > options_.step_budget) {
    status_ = Status::kOverBudget;
    skip_reason_ = "needs " + std::to_string(horizon_) +
                   " scheduled instants (budget " +
                   std::to_string(options_.step_budget) + ")";
    return;
  }
  node_instant_.resize(nodes.size());
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const auto it = std::lower_bound(offsets_.begin(), offsets_.end(), off[i]);
    assert(it != offsets_.end() && *it == off[i]);
    node_instant_[i] = static_cast<uint32_t>(it - offsets_.begin());
  }
  // Instant-major variable order: [event?, gap?, atoms...] per instant. The
  // anchor (instant 0) always carries an event. gap_var_[j] stands for "an
  // event exists strictly inside (offsets_[j], offsets_[j+1])" (the last
  // gap is unbounded); a gap with no integer-time room is constant false.
  const size_t atoms = program_->atoms().size();
  var_of_atom_.resize(horizon_ * atoms);
  event_var_.assign(horizon_, 0);
  gap_var_.assign(horizon_, ~0u);
  uint32_t next_var = 0;
  for (size_t j = 0; j < horizon_; ++j) {
    if (j > 0) {
      event_var_[j] = next_var++;
      const bool last = j + 1 == horizon_;
      if (last || offsets_[j + 1] > offsets_[j] + 1) gap_var_[j] = next_var++;
    }
    for (size_t a = 0; a < atoms; ++a) {
      var_of_atom_[j * atoms + a] = next_var++;
    }
  }
  // past_[j]: some event strictly after offsets_[j] — the "deadline missed"
  // trigger of Def. III.3. Suffix-or over later event/gap variables.
  past_.assign(horizon_, Bdd::kFalse);
  for (size_t j = horizon_; j-- > 1;) {
    Bdd::Ref r = gap_var_[j] == ~0u ? Bdd::kFalse : bdd_.var(gap_var_[j]);
    if (j + 1 < horizon_) {
      r = bdd_.or_(r, bdd_.or_(bdd_.var(event_var_[j + 1]), past_[j + 1]));
    }
    past_[j] = r;
  }
}

void SymbolicEval::begin_eval(const checker::Program& prog,
                              const std::vector<uint8_t>* force) {
  memo_.clear();
  cur_prog_ = &prog;
  cur_force_ = force;
  cur_atom_map_.clear();
  if (&prog != program_.get()) {
    // Translate the candidate program's atom indices into the analyzed
    // program's variable space (the fold only ever removes atoms).
    cur_atom_map_.resize(prog.atoms().size(), 0);
    for (uint32_t i = 0; i < prog.atoms().size(); ++i) {
      bool found = false;
      for (uint32_t k = 0; k < program_->atoms().size(); ++k) {
        if (program_->atoms()[k] == prog.atoms()[i]) {
          cur_atom_map_[i] = k;
          found = true;
          break;
        }
      }
      assert(found);
      (void)found;
    }
  }
}

Bdd::Ref SymbolicEval::atom_ref(uint32_t atom, size_t step) {
  if (!cur_atom_map_.empty()) atom = cur_atom_map_[atom];
  return bdd_.var(var_of_atom_[step * program_->atoms().size() + atom]);
}

SymbolicEval::SymVerdict SymbolicEval::boundary(bool complete, bool weak) {
  if (!complete) return {Bdd::kFalse, Bdd::kFalse};
  return weak ? SymVerdict{Bdd::kTrue, Bdd::kFalse}
              : SymVerdict{Bdd::kFalse, Bdd::kTrue};
}

// Transcription of reference_eval's three-valued recursion into verdict
// sets: and3 becomes (t1 & t2, f1 | f2), or3 its dual, not3 the swap. The
// fixpoint recurrences run front-to-back with memoized suffixes:
//   U(s) = q(s) | (p(s) & U(s+1)),   R(s) = q(s) & (p(s) | R(s+1)).
SymbolicEval::SymVerdict SymbolicEval::eval_event(uint32_t node, size_t step,
                                                  size_t len, bool complete) {
  assert(step < len);
  if (cur_force_ != nullptr && cur_prog_ == program_.get()) {
    const uint8_t f = (*cur_force_)[node];
    if (f == 1) return {Bdd::kTrue, Bdd::kFalse};
    if (f == 2) return {Bdd::kFalse, Bdd::kTrue};
  }
  const uint64_t key =
      ((((uint64_t{node} << 10) | step) << 10 | len) << 1) | (complete ? 1 : 0);
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  const auto& n = cur_prog_->nodes()[node];
  SymVerdict r;
  switch (n.op) {
    case ExprKind::kConstTrue:
      r = {Bdd::kTrue, Bdd::kFalse};
      break;
    case ExprKind::kConstFalse:
      r = {Bdd::kFalse, Bdd::kTrue};
      break;
    case ExprKind::kAtom: {
      const Bdd::Ref v = atom_ref(n.atom, step);
      r = {v, bdd_.not_(v)};
      break;
    }
    case ExprKind::kNot: {
      const SymVerdict a = eval_event(n.lhs, step, len, complete);
      r = {a.f, a.t};
      break;
    }
    case ExprKind::kAnd: {
      const SymVerdict a = eval_event(n.lhs, step, len, complete);
      const SymVerdict b = eval_event(n.rhs, step, len, complete);
      r = {bdd_.and_(a.t, b.t), bdd_.or_(a.f, b.f)};
      break;
    }
    case ExprKind::kOr: {
      const SymVerdict a = eval_event(n.lhs, step, len, complete);
      const SymVerdict b = eval_event(n.rhs, step, len, complete);
      r = {bdd_.or_(a.t, b.t), bdd_.and_(a.f, b.f)};
      break;
    }
    case ExprKind::kImplies: {
      const SymVerdict a = eval_event(n.lhs, step, len, complete);
      const SymVerdict b = eval_event(n.rhs, step, len, complete);
      r = {bdd_.or_(a.f, b.t), bdd_.and_(a.t, b.f)};
      break;
    }
    case ExprKind::kNext: {
      const size_t target = step + n.next_count;
      r = target >= len ? boundary(complete, /*weak=*/true)
                        : eval_event(n.lhs, target, len, complete);
      break;
    }
    case ExprKind::kUntil: {
      const SymVerdict q = eval_event(n.rhs, step, len, complete);
      const SymVerdict p = eval_event(n.lhs, step, len, complete);
      const SymVerdict rest = step + 1 < len
                                  ? eval_event(node, step + 1, len, complete)
                                  : boundary(complete, /*weak=*/!n.strong);
      const SymVerdict pr = {bdd_.and_(p.t, rest.t), bdd_.or_(p.f, rest.f)};
      r = {bdd_.or_(q.t, pr.t), bdd_.and_(q.f, pr.f)};
      break;
    }
    case ExprKind::kRelease: {
      const SymVerdict q = eval_event(n.rhs, step, len, complete);
      const SymVerdict p = eval_event(n.lhs, step, len, complete);
      const SymVerdict rest = step + 1 < len
                                  ? eval_event(node, step + 1, len, complete)
                                  : boundary(complete, /*weak=*/true);
      const SymVerdict pr = {bdd_.or_(p.t, rest.t), bdd_.and_(p.f, rest.f)};
      r = {bdd_.and_(q.t, pr.t), bdd_.or_(q.f, pr.f)};
      break;
    }
    case ExprKind::kAlways: {
      const SymVerdict p = eval_event(n.lhs, step, len, complete);
      const SymVerdict rest = step + 1 < len
                                  ? eval_event(node, step + 1, len, complete)
                                  : boundary(complete, /*weak=*/true);
      r = {bdd_.and_(p.t, rest.t), bdd_.or_(p.f, rest.f)};
      break;
    }
    case ExprKind::kEventually: {
      const SymVerdict p = eval_event(n.lhs, step, len, complete);
      const SymVerdict rest = step + 1 < len
                                  ? eval_event(node, step + 1, len, complete)
                                  : boundary(complete, /*weak=*/false);
      r = {bdd_.or_(p.t, rest.t), bdd_.and_(p.f, rest.f)};
      break;
    }
    case ExprKind::kNextEps:
    case ExprKind::kAbort:
      assert(false && "gated by classify()");
      break;
  }
  if (bdd_.node_count() > options_.bdd_node_cap && status_ == Status::kOk) {
    status_ = Status::kOverBudget;
    skip_reason_ = "BDD node cap exceeded";
  }
  memo_.emplace(key, r);
  return r;
}

// Scheduled semantics of Def. III.3 over arbitrary event streams: a next_e
// targeting instant j resolves through three disjoint outcomes — met (an
// event exists exactly at the target time: the operand's verdict), missed
// (no event there but some event past it: false), truncated (the stream
// ends first: weak/complete boundary, i.e. true).
SymbolicEval::SymVerdict SymbolicEval::eval_scheduled(uint32_t node) {
  if (cur_force_ != nullptr) {
    const uint8_t f = (*cur_force_)[node];
    if (f == 1) return {Bdd::kTrue, Bdd::kFalse};
    if (f == 2) return {Bdd::kFalse, Bdd::kTrue};
  }
  if (const auto it = memo_.find(node); it != memo_.end()) return it->second;
  const auto& n = cur_prog_->nodes()[node];
  SymVerdict r;
  switch (n.op) {
    case ExprKind::kConstTrue:
      r = {Bdd::kTrue, Bdd::kFalse};
      break;
    case ExprKind::kConstFalse:
      r = {Bdd::kFalse, Bdd::kTrue};
      break;
    case ExprKind::kAtom: {
      const Bdd::Ref v = atom_ref(n.atom, node_instant_[node]);
      r = {v, bdd_.not_(v)};
      break;
    }
    case ExprKind::kNot: {
      const SymVerdict a = eval_scheduled(n.lhs);
      r = {a.f, a.t};
      break;
    }
    case ExprKind::kAnd: {
      const SymVerdict a = eval_scheduled(n.lhs);
      const SymVerdict b = eval_scheduled(n.rhs);
      r = {bdd_.and_(a.t, b.t), bdd_.or_(a.f, b.f)};
      break;
    }
    case ExprKind::kOr: {
      const SymVerdict a = eval_scheduled(n.lhs);
      const SymVerdict b = eval_scheduled(n.rhs);
      r = {bdd_.or_(a.t, b.t), bdd_.and_(a.f, b.f)};
      break;
    }
    case ExprKind::kImplies: {
      const SymVerdict a = eval_scheduled(n.lhs);
      const SymVerdict b = eval_scheduled(n.rhs);
      r = {bdd_.or_(a.f, b.t), bdd_.and_(a.t, b.f)};
      break;
    }
    case ExprKind::kNextEps: {
      const uint32_t j = node_instant_[n.lhs];
      assert(j > 0);
      const SymVerdict a = eval_scheduled(n.lhs);
      const Bdd::Ref met = bdd_.var(event_var_[j]);
      const Bdd::Ref unmet = bdd_.not_(met);
      r = {bdd_.or_(bdd_.and_(met, a.t), bdd_.and_(unmet, bdd_.not_(past_[j]))),
           bdd_.or_(bdd_.and_(met, a.f), bdd_.and_(unmet, past_[j]))};
      break;
    }
    default:
      assert(false && "gated by classify()");
      break;
  }
  if (bdd_.node_count() > options_.bdd_node_cap && status_ == Status::kOk) {
    status_ = Status::kOverBudget;
    skip_reason_ = "BDD node cap exceeded";
  }
  memo_.emplace(node, r);
  return r;
}

SymbolicEval::Profile SymbolicEval::profile(const checker::Program& prog,
                                            const std::vector<uint8_t>* force) {
  begin_eval(prog, force);
  Profile out;
  if (scheduled_) {
    out.push_back(eval_scheduled(prog.root()));
    return out;
  }
  // Every prefix length, complete and incomplete: equality of two profiles
  // means the runtime verdict stream is identical event for event.
  for (size_t len = 1; len <= horizon_; ++len) {
    out.push_back(eval_event(prog.root(), 0, len, /*complete=*/true));
    out.push_back(eval_event(prog.root(), 0, len, /*complete=*/false));
  }
  return out;
}

bool SymbolicEval::exhaustive() {
  if (status_ != Status::kOk) return false;
  if (exhaustive_cache_.has_value()) return *exhaustive_cache_;
  if (scheduled_) {
    // The event/gap encoding quantifies over all stream lengths at once.
    exhaustive_cache_ = true;
    return true;
  }
  // Exhaustive iff every trajectory is decided on the incomplete horizon
  // prefix: informative verdicts on incomplete prefixes are
  // extension-invariant, so longer traces add nothing.
  begin_eval(*program_, nullptr);
  const SymVerdict v =
      eval_event(program_->root(), 0, horizon_, /*complete=*/false);
  exhaustive_cache_ = status_ == Status::kOk && bdd_.or_(v.t, v.f) == Bdd::kTrue;
  return *exhaustive_cache_;
}

bool SymbolicEval::never_fails() {
  if (status_ != Status::kOk) return false;
  begin_eval(*program_, nullptr);
  if (scheduled_) {
    return eval_scheduled(program_->root()).f == Bdd::kFalse &&
           status_ == Status::kOk;
  }
  for (size_t len = 1; len <= horizon_; ++len) {
    if (eval_event(program_->root(), 0, len, /*complete=*/true).f !=
        Bdd::kFalse) {
      return false;
    }
  }
  return status_ == Status::kOk;
}

bool SymbolicEval::solve_step(
    const std::vector<std::optional<bool>>& required,
    std::vector<std::pair<std::string, uint64_t>>& values) const {
  // Concretization: the BDD treats atoms as independent, but comparisons
  // over shared signals are not — find integer signal values realizing the
  // required truth assignment by brute force over a small candidate grid
  // (0, 1 and every compared constant +/- 1 per signal).
  const auto& atoms = program_->atoms();
  std::vector<std::string> signals;
  for (const auto& a : atoms) atom_signals(a, signals);
  std::sort(signals.begin(), signals.end());
  signals.erase(std::unique(signals.begin(), signals.end()), signals.end());
  std::map<std::string, std::vector<uint64_t>> candidates;
  for (const auto& s : signals) candidates[s] = {0, 1};
  for (const auto& a : atoms) {
    if (a.rhs_is_signal) continue;
    auto& c = candidates[a.lhs];
    c.push_back(a.rhs_value);
    c.push_back(a.rhs_value + 1);
    if (a.rhs_value > 0) c.push_back(a.rhs_value - 1);
  }
  for (auto& [_, c] : candidates) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  // Odometer over the candidate grid, capped so pathological atom sets
  // cannot stall the lint pass.
  size_t combos = 1;
  for (const auto& s : signals) {
    combos *= candidates[s].size();
    if (combos > 20000) return false;
  }
  std::vector<size_t> pick(signals.size(), 0);
  for (size_t c = 0; c < combos; ++c) {
    checker::MapContext ctx;
    for (size_t i = 0; i < signals.size(); ++i) {
      ctx.set(signals[i], candidates[signals[i]][pick[i]]);
    }
    bool ok = true;
    for (size_t a = 0; a < atoms.size() && ok; ++a) {
      if (required[a].has_value() &&
          checker::eval_atom(atoms[a], ctx) != *required[a]) {
        ok = false;
      }
    }
    if (ok) {
      values.assign(ctx.entries().begin(), ctx.entries().end());
      return true;
    }
    for (size_t i = 0; i < pick.size(); ++i) {
      if (++pick[i] < candidates[signals[i]].size()) break;
      pick[i] = 0;
    }
  }
  return false;
}

std::optional<WitnessTrace> SymbolicEval::concretize_event(
    const Bdd::Assignment& a, size_t len) {
  const size_t natoms = program_->atoms().size();
  std::vector<std::vector<std::optional<bool>>> required(
      len, std::vector<std::optional<bool>>(natoms));
  for (const auto& [var, value] : a) {
    const size_t step = var / natoms;
    if (step >= len) continue;
    required[step][var % natoms] = value;
  }
  WitnessTrace trace;
  for (size_t s = 0; s < len; ++s) {
    TraceEvent ev;
    ev.time = (s + 1) * options_.clock_period_ns;
    if (!solve_step(required[s], ev.values)) return std::nullopt;
    trace.push_back(std::move(ev));
  }
  return trace;
}

std::optional<WitnessTrace> SymbolicEval::concretize_scheduled(
    const Bdd::Assignment& a) {
  const size_t natoms = program_->atoms().size();
  std::vector<bool> event_present(horizon_, false);
  std::vector<bool> gap_present(horizon_, false);
  event_present[0] = true;  // the anchor
  std::vector<std::vector<std::optional<bool>>> required(
      horizon_, std::vector<std::optional<bool>>(natoms));
  for (const auto& [var, value] : a) {
    bool matched = false;
    for (size_t j = 1; j < horizon_ && !matched; ++j) {
      if (event_var_[j] == var) {
        event_present[j] = value;
        matched = true;
      } else if (gap_var_[j] == var) {
        gap_present[j] = value;
        matched = true;
      }
    }
    if (matched) continue;
    // Atom variable: instant-major layout.
    for (size_t j = 0; j < horizon_ && !matched; ++j) {
      for (size_t k = 0; k < natoms && !matched; ++k) {
        if (var_of_atom_[j * natoms + k] == var) {
          required[j][k] = value;
          matched = true;
        }
      }
    }
  }
  WitnessTrace trace;
  for (size_t j = 0; j < horizon_; ++j) {
    if (event_present[j]) {
      TraceEvent ev;
      ev.time = offsets_[j];
      if (!solve_step(required[j], ev.values)) return std::nullopt;
      trace.push_back(std::move(ev));
    }
    if (gap_present[j]) {
      // A sentinel event strictly inside the gap: it carries no obligation
      // of its own, it only witnesses "the stream moved past the deadline".
      TraceEvent ev;
      ev.time = offsets_[j] + 1;
      std::vector<std::optional<bool>> free(natoms);
      if (!solve_step(free, ev.values)) return std::nullopt;
      trace.push_back(std::move(ev));
    }
  }
  return trace;
}

std::optional<SymbolicEval::FailWitness> SymbolicEval::fail_witness() {
  if (status_ != Status::kOk) return std::nullopt;
  begin_eval(*program_, nullptr);
  const size_t max_len = scheduled_ ? 1 : horizon_;
  for (size_t len = 1; len <= max_len; ++len) {
    const Bdd::Ref fail =
        scheduled_ ? eval_scheduled(program_->root()).f
                   : eval_event(program_->root(), 0, len, /*complete=*/true).f;
    if (status_ != Status::kOk) return std::nullopt;
    if (fail == Bdd::kFalse) continue;
    for (const Bdd::Assignment& a : bdd_.sat_some(fail, 64)) {
      std::optional<WitnessTrace> trace =
          scheduled_ ? concretize_scheduled(a) : concretize_event(a, len);
      if (!trace.has_value()) continue;
      // The witness only ships once the concrete interpreter agrees: replay
      // through the real Program evaluator must reproduce the failure.
      if (replay_witness(body_, *trace) != checker::Verdict::kFalse) continue;
      const size_t events = trace->size();
      return FailWitness{std::move(*trace), events};
    }
  }
  return std::nullopt;
}

std::vector<uint32_t> SymbolicEval::dead_nodes() {
  std::vector<uint32_t> dead;
  if (status_ != Status::kOk) return dead;
  if (program_->size() > 128 || program_->size() < 2) return dead;
  const Profile base = profile(*program_, nullptr);
  if (status_ != Status::kOk) return dead;
  for (uint32_t n = 0; n + 1 < program_->size(); ++n) {
    const auto op = program_->nodes()[n].op;
    if (op == ExprKind::kConstTrue || op == ExprKind::kConstFalse) continue;
    std::vector<uint8_t> force(program_->size(), 0);
    force[n] = 1;
    if (profile(*program_, &force) != base) continue;
    force[n] = 2;
    if (profile(*program_, &force) != base) continue;
    if (status_ != Status::kOk) break;
    dead.push_back(n);
  }
  return dead;
}

namespace {

// Rebuilds `e` with subtrees replaced per `fold` (indexed by the node ids
// Program::emit assigns: lhs, rhs, self post-order). 1 = const true,
// 2 = const false, 0 = keep.
psl::ExprPtr rebuild_folded(const psl::ExprPtr& e, uint32_t& next_idx,
                            const std::vector<uint8_t>& fold) {
  psl::ExprPtr lhs = e->lhs ? rebuild_folded(e->lhs, next_idx, fold) : nullptr;
  psl::ExprPtr rhs = e->rhs ? rebuild_folded(e->rhs, next_idx, fold) : nullptr;
  const uint32_t idx = next_idx++;
  if (fold[idx] == 1) return psl::const_true();
  if (fold[idx] == 2) return psl::const_false();
  if (lhs == e->lhs && rhs == e->rhs) return e;
  auto copy = std::make_shared<psl::Expr>(*e);
  copy->lhs = std::move(lhs);
  copy->rhs = std::move(rhs);
  return copy;
}

}  // namespace

psl::ExprPtr SymbolicEval::fold_dead(size_t* folded_nodes) {
  if (folded_nodes != nullptr) *folded_nodes = 0;
  if (status_ != Status::kOk || scheduled_ || !exhaustive()) return nullptr;
  if (program_->size() > 128 || program_->size() < 2) return nullptr;
  const Profile base = profile(*program_, nullptr);
  if (status_ != Status::kOk) return nullptr;
  // Greedy top-down constant folding: accept a node fold only if the full
  // profile is preserved under *all* folds accepted so far, so interacting
  // candidates cannot combine into a drifting program.
  std::vector<uint8_t> fold(program_->size(), 0);
  std::vector<bool> covered(program_->size(), false);
  for (uint32_t n = static_cast<uint32_t>(program_->size()) - 1; n-- > 0;) {
    if (covered[n]) continue;
    const auto& node = program_->nodes()[n];
    if (node.op == ExprKind::kConstTrue || node.op == ExprKind::kConstFalse) {
      continue;
    }
    for (uint8_t v : {uint8_t{2}, uint8_t{1}}) {
      fold[n] = v;
      if (profile(*program_, &fold) == base && status_ == Status::kOk) {
        for (uint32_t k = node.subtree_lo; k <= n; ++k) covered[k] = true;
        break;
      }
      fold[n] = 0;
    }
  }
  size_t count = 0;
  for (uint32_t n = 0; n < program_->size(); ++n) {
    // A fold of a subtree of S nodes leaves one constant node behind.
    if (fold[n] != 0) count += n - program_->nodes()[n].subtree_lo;
  }
  if (count == 0) return nullptr;
  uint32_t next_idx = 0;
  psl::ExprPtr folded = rebuild_folded(body_, next_idx, fold);
  assert(next_idx == program_->size());
  // Parity gate: the folded program's own profile (evaluated over the same
  // variable space) must match; anything else keeps the original.
  const auto folded_prog = Program::compile(folded);
  if (folded_prog->size() >= program_->size()) return nullptr;
  if (profile(*folded_prog, nullptr) != base || status_ != Status::kOk) {
    return nullptr;
  }
  if (folded_nodes != nullptr) *folded_nodes = count;
  return folded;
}

std::optional<Bdd::Ref> SymbolicEval::build_boolean(const psl::ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::kConstTrue:
      return Bdd::kTrue;
    case ExprKind::kConstFalse:
      return Bdd::kFalse;
    case ExprKind::kAtom: {
      // Map onto the anchor-instant variable of the matching program atom;
      // atoms the program does not mention get fresh variables.
      for (uint32_t k = 0; k < program_->atoms().size(); ++k) {
        if (program_->atoms()[k] == e->atom) return atom_ref(k, 0);
      }
      // Fresh variables sort after every trajectory variable, keyed by a
      // stable hash-free scan: reuse one extra variable per distinct atom.
      extra_atoms_.push_back(e->atom);
      for (size_t k = 0; k + 1 < extra_atoms_.size(); ++k) {
        if (extra_atoms_[k] == e->atom) {
          extra_atoms_.pop_back();
          return bdd_.var(static_cast<uint32_t>(1u << 24) +
                          static_cast<uint32_t>(k));
        }
      }
      return bdd_.var(static_cast<uint32_t>(1u << 24) +
                      static_cast<uint32_t>(extra_atoms_.size() - 1));
    }
    case ExprKind::kNot: {
      const auto a = build_boolean(e->lhs);
      if (!a) return std::nullopt;
      return bdd_.not_(*a);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kImplies: {
      const auto a = build_boolean(e->lhs);
      const auto b = build_boolean(e->rhs);
      if (!a || !b) return std::nullopt;
      if (e->kind == ExprKind::kAnd) return bdd_.and_(*a, *b);
      if (e->kind == ExprKind::kOr) return bdd_.or_(*a, *b);
      return bdd_.implies(*a, *b);
    }
    default:
      return std::nullopt;
  }
}

bool SymbolicEval::antecedent_unsat(const psl::ExprPtr& guard) {
  if (status_ != Status::kOk) return false;
  const psl::ExprPtr antecedent = checker::derive_antecedent(body_);
  if (antecedent == nullptr) return false;
  begin_eval(*program_, nullptr);
  const auto a = build_boolean(antecedent);
  if (!a) return false;
  Bdd::Ref cond = *a;
  if (guard != nullptr) {
    const auto g = build_boolean(guard);
    if (!g) return false;
    cond = bdd_.and_(cond, *g);
  }
  return cond == Bdd::kFalse;
}

namespace {

void emit_sym(CheckContext& ctx, std::string code, Severity severity,
              std::string message, std::string hint = {},
              WitnessTrace witness = {}) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = severity;
  d.property = ctx.property.name;
  d.check = "symbolic-eval";
  d.message = std::move(message);
  d.hint = std::move(hint);
  d.span = ctx.span;
  d.witness = std::move(witness);
  ctx.record.diagnostics.push_back(std::move(d));
}

void run_symbolic_level(CheckContext& ctx, const std::string& level,
                        const psl::ExprPtr& formula,
                        const psl::ExprPtr& guard) {
  SymbolicEval::Options opt;
  opt.clock_period_ns = ctx.options.abstraction.clock_period_ns;
  opt.step_budget = ctx.options.symbolic_budget;
  opt.atom_cap = ctx.options.atom_cap;
  SymbolicEval sym(formula, opt);
  if (sym.status() != SymbolicEval::Status::kOk) {
    emit_sym(ctx, "SYM005", Severity::kNote,
             level + ": symbolic analysis skipped: " + sym.skip_reason());
    return;
  }
  const std::string scope =
      (sym.time_scheduled() ? std::string("all event streams over ")
                            : std::string("all traces up to ")) +
      std::to_string(sym.horizon()) +
      (sym.time_scheduled() ? " scheduled instants" : " steps");
  if (sym.never_fails()) {
    if (sym.exhaustive()) {
      emit_sym(ctx, "SYM001", Severity::kNote,
               level + ": no trajectory can fail (" + scope +
                   ", exhaustive)",
               "elide-grade evidence: the checker can never report a "
               "failure for this property");
    }
  } else if (auto w = sym.fail_witness()) {
    std::string hint = "witness trace:\n" + format_witness(w->trace);
    emit_sym(ctx, "SYM004", Severity::kNote,
             level + ": a failing trace of " + std::to_string(w->length) +
                 " event(s) is reachable (replay-verified)",
             std::move(hint), std::move(w->trace));
  }
  const std::vector<uint32_t> dead =
      sym.exhaustive() ? sym.dead_nodes() : std::vector<uint32_t>{};
  if (!dead.empty()) {
    std::string names;
    for (const uint32_t n : dead) {
      if (!names.empty()) names += ", ";
      names += "#" + std::to_string(n) + ":" +
               opcode_name(sym.program()->nodes()[n].op);
    }
    emit_sym(ctx, "SYM002", Severity::kNote,
             level + ": " + std::to_string(dead.size()) +
                 " program node(s) never influence the verdict (" + scope +
                 "): " + names,
             "dead subtrees are constant-foldable without changing the "
             "verdict stream");
  }
  if (sym.antecedent_unsat(guard)) {
    emit_sym(ctx, "SYM003", Severity::kWarning,
             level + ": antecedent is unsatisfiable under the activation "
                     "guard on every reachable trajectory",
             "every pass would be vacuous; cf. COV001 runtime vacuity");
  }
}

}  // namespace

void check_symbolic(CheckContext& ctx) {
  if (ctx.options.symbolic_budget == 0) return;
  run_symbolic_level(ctx, "rtl", ctx.property.formula,
                     ctx.property.context.guard);
  if (!ctx.outcome.deleted()) {
    const psl::TlmProperty& tlm = *ctx.outcome.property;
    if (psl::to_string(tlm.formula) != psl::to_string(ctx.property.formula)) {
      run_symbolic_level(ctx, "tlm", tlm.formula, tlm.context.guard);
    }
  }
}

checker::Verdict replay_witness(const psl::ExprPtr& formula,
                                const WitnessTrace& witness) {
  psl::ExprPtr body = formula;
  while (body != nullptr && body->kind == ExprKind::kAlways) body = body->lhs;
  if (body == nullptr || witness.empty()) return checker::Verdict::kPending;
  checker::ProgramState state(Program::compile(body));
  for (const TraceEvent& te : witness) {
    checker::MapContext ctx;
    for (const auto& [name, value] : te.values) ctx.set(name, value);
    const checker::Event ev{te.time, &ctx};
    const checker::Verdict v = state.step(ev);
    // The concrete engine retires an instance at its first informative
    // verdict; later events no longer matter.
    if (v != checker::Verdict::kPending) return v;
  }
  return state.finish();
}

}  // namespace repro::analysis
