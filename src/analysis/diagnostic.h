// Structured diagnostics emitted by the static property-analysis layer.
//
// Every finding carries a stable code (the catalog lives in DESIGN.md §10),
// a severity, the property it was raised on, the check that produced it and
// a human-readable message; optionally a fix-it hint and a source span (byte
// offset into the property text the lexer saw). Codes are grouped by check:
//
//   PSL001..PSL005  simple-subset conformance (IEEE 1850 sec. 4.4.4)
//   PSL000          parse error surfaced as a diagnostic (psl_lint)
//   SEM001..SEM005  boolean-layer semantics (tautology / contradiction /
//                   static vacuity / analysis cap)
//   AUD001..AUD004  consequence audit of the abstracted formula (Thm. III.2)
//   ENV001..ENV002  environment binding of atoms against the target
//                   observable set
//   SIZ001..SIZ003  pre-simulation checker sizing (next_e windows, wrapper
//                   lifetime, instance-pool capacity)
//   COV001..COV002  post-run static-vs-dynamic vacuity cross-check
//                   (coverage_check.h; emitted after the simulation)
#ifndef REPRO_ANALYSIS_DIAGNOSTIC_H_
#define REPRO_ANALYSIS_DIAGNOSTIC_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace repro::analysis {

enum class Severity { kNote, kWarning, kError };

const char* to_string(Severity s);

// Byte range into the source text a property was parsed from; offset -1
// means "no source location" (e.g. programmatically built properties).
struct SourceSpan {
  int offset = -1;
  int length = 0;

  bool valid() const { return offset >= 0; }
};

struct Diagnostic {
  std::string code;      // stable catalog code, e.g. "PSL001"
  Severity severity = Severity::kWarning;
  std::string property;  // property name the finding is attached to
  std::string check;     // producing pass: "simple-subset", "bool-semantics",
                         // "consequence-audit", "env-binding", "checker-sizing"
  std::string message;
  std::string hint;      // optional fix-it hint; empty when absent
  SourceSpan span;
};

// One-line compiler-style rendering:
//   error[ENV001] p7: atom 'bogus' is not an observable of the target env
std::string to_string(const Diagnostic& d);

// Writes `d` as a JSON object (insertion-ordered keys, stable output).
void write_json(std::ostream& os, const Diagnostic& d);

// Severity histogram over a diagnostic list.
struct DiagnosticCounts {
  size_t notes = 0;
  size_t warnings = 0;
  size_t errors = 0;

  size_t total() const { return notes + warnings + errors; }
};

DiagnosticCounts count(const std::vector<Diagnostic>& diagnostics);

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_DIAGNOSTIC_H_
