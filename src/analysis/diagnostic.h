// Structured diagnostics emitted by the static property-analysis layer.
//
// Every finding carries a stable code (the catalog lives in DESIGN.md §10),
// a severity, the property it was raised on, the check that produced it and
// a human-readable message; optionally a fix-it hint and a source span (byte
// offset into the property text the lexer saw). Codes are grouped by check:
//
//   PSL001..PSL005  simple-subset conformance (IEEE 1850 sec. 4.4.4)
//   PSL000          parse error surfaced as a diagnostic (psl_lint)
//   SEM001..SEM005  boolean-layer semantics (tautology / contradiction /
//                   static vacuity / analysis cap)
//   AUD001..AUD004  consequence audit of the abstracted formula (Thm. III.2)
//   ENV001..ENV002  environment binding of atoms against the target
//                   observable set
//   SIZ001..SIZ003  pre-simulation checker sizing (next_e windows, wrapper
//                   lifetime, instance-pool capacity)
//   COV001..COV002  post-run static-vs-dynamic vacuity cross-check
//                   (coverage_check.h; emitted after the simulation)
//   SYM001..SYM005  symbolic bounded trajectory evaluation (symbolic.h):
//                   never-fails / dead program nodes / temporal static
//                   vacuity / reachable failure with witness / analysis
//                   skipped
#ifndef REPRO_ANALYSIS_DIAGNOSTIC_H_
#define REPRO_ANALYSIS_DIAGNOSTIC_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace repro::analysis {

enum class Severity { kNote, kWarning, kError };

const char* to_string(Severity s);

// Byte range into the source text a property was parsed from; offset -1
// means "no source location" (e.g. programmatically built properties).
struct SourceSpan {
  int offset = -1;
  int length = 0;

  bool valid() const { return offset >= 0; }
};

// One event of a concrete witness trace attached to a diagnostic: the
// simulation time plus the observable values the event carried.
struct TraceEvent {
  uint64_t time = 0;
  std::vector<std::pair<std::string, uint64_t>> values;  // sorted by name
};
// A replayable trace demonstrating a symbolic finding (SYM004): feeding it
// to the concrete interpreter reproduces the predicted verdict.
using WitnessTrace = std::vector<TraceEvent>;

struct Diagnostic {
  std::string code;      // stable catalog code, e.g. "PSL001"
  Severity severity = Severity::kWarning;
  std::string property;  // property name the finding is attached to
  std::string check;     // producing pass: "simple-subset", "bool-semantics",
                         // "consequence-audit", "env-binding", "checker-sizing"
  std::string message;
  std::string hint;      // optional fix-it hint; empty when absent
  SourceSpan span;
  WitnessTrace witness;  // concrete trace evidence; empty when absent
};

// Multi-line rendering of a witness trace, one "t=<ns> sig=val ..." line
// per event, each prefixed with `indent`. Empty string for empty traces.
std::string format_witness(const WitnessTrace& witness,
                           const std::string& indent = "    ");

// One-line compiler-style rendering:
//   error[ENV001] p7: atom 'bogus' is not an observable of the target env
std::string to_string(const Diagnostic& d);

// Writes `d` as a JSON object (insertion-ordered keys, stable output).
void write_json(std::ostream& os, const Diagnostic& d);

// Severity histogram over a diagnostic list. `skipped` counts explicit
// analysis-skip diagnostics (SEM005 / PRN004 / SYM005) so capped properties
// stay visible in summaries; each is also counted under its severity.
struct DiagnosticCounts {
  size_t notes = 0;
  size_t warnings = 0;
  size_t errors = 0;
  size_t skipped = 0;

  size_t total() const { return notes + warnings + errors; }
};

// True for codes that report an analysis explicitly skipped (atom cap,
// unsupported operator mix, step budget).
bool is_skip_code(const std::string& code);

DiagnosticCounts count(const std::vector<Diagnostic>& diagnostics);

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_DIAGNOSTIC_H_
