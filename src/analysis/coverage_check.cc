#include "analysis/coverage_check.h"

#include <unordered_set>

namespace repro::analysis {
namespace {

// Static-vacuity predictions come from the boolean-semantics pass only:
// SEM003 (antecedent statically false) and SEM004 (consequent/guard
// statically true). Other codes (tautologies elsewhere, sizing, binding)
// say nothing about whether passes are real.
bool is_static_vacuity(const Diagnostic& d) {
  return d.code == "SEM003" || d.code == "SEM004";
}

}  // namespace

std::vector<Diagnostic> cross_check_coverage(
    const std::vector<Diagnostic>& statics,
    const std::vector<DynamicCoverage>& observed) {
  std::unordered_set<std::string> statically_vacuous;
  for (const Diagnostic& d : statics) {
    if (is_static_vacuity(d)) statically_vacuous.insert(d.property);
  }

  std::vector<Diagnostic> out;
  for (const DynamicCoverage& c : observed) {
    const bool predicted = statically_vacuous.count(c.property) != 0;
    if (!predicted && c.dynamically_vacuous()) {
      Diagnostic d;
      d.code = "COV001";
      d.severity = Severity::kWarning;
      d.property = c.property;
      d.check = "coverage-cross-check";
      if (c.activations == 0) {
        d.message =
            "statically non-vacuous property was never activated by the run";
        d.hint =
            "the stimulus never reached the property's anchor condition; "
            "extend the workload or check the activation guard";
      } else {
        d.message =
            "statically non-vacuous property passed only vacuously (" +
            std::to_string(c.vacuous_passes) + " of " +
            std::to_string(c.activations) +
            " activations never fired the antecedent)";
        d.hint =
            "every pass was decided by the antecedent/guard alone; the "
            "consequent is untested by this stimulus";
      }
      out.push_back(std::move(d));
    } else if (predicted && c.dynamically_exercised()) {
      Diagnostic d;
      d.code = "COV002";
      d.severity = Severity::kWarning;
      d.property = c.property;
      d.check = "coverage-cross-check";
      d.message =
          "statically vacuous property was dynamically exercised (" +
          std::to_string(c.real_passes) + " real passes, " +
          std::to_string(c.failures) + " failures)";
      d.hint =
          "the static verdict was too conservative for this environment; "
          "re-examine the flagged antecedent/guard";
      out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace repro::analysis
