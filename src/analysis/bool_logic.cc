#include "analysis/bool_logic.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace repro::analysis {

namespace {
// Terminal nodes sort after every real variable.
constexpr uint32_t kTerminalVar = std::numeric_limits<uint32_t>::max();
}  // namespace

Bdd::Bdd() {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true
}

Bdd::Ref Bdd::mk(uint32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const Key key{var, lo, hi};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  const Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

Bdd::Ref Bdd::var(uint32_t v) { return mk(v, kFalse, kTrue); }

bool Bdd::sat_one(Ref f, Assignment& out) const {
  out.clear();
  if (f == kFalse) return false;
  // In a reduced BDD every non-false node has at most one false child, so
  // a greedy descent that avoids kFalse always reaches kTrue.
  while (f != kTrue) {
    const Node& n = nodes_[f];
    const bool take_hi = n.lo == kFalse;
    out.emplace_back(n.var, take_hi);
    f = take_hi ? n.hi : n.lo;
  }
  return true;
}

std::vector<Bdd::Assignment> Bdd::sat_some(Ref f, size_t limit) const {
  std::vector<Assignment> found;
  if (limit == 0) return found;
  Assignment path;
  // Iterative DFS, low branch first; each stack entry revisits a node to
  // explore its high branch after the low subtree is done.
  struct Item {
    Ref ref;
    int state;  // 0: enter, 1: after low
  };
  std::vector<Item> stack{{f, 0}};
  while (!stack.empty() && found.size() < limit) {
    Item& top = stack.back();
    if (top.ref == kFalse) {
      stack.pop_back();
      continue;
    }
    if (top.ref == kTrue) {
      found.push_back(path);
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[top.ref];
    if (top.state == 0) {
      top.state = 1;
      path.emplace_back(n.var, false);
      stack.push_back({n.lo, 0});
    } else if (top.state == 1) {
      top.state = 2;
      path.back() = {n.var, true};
      stack.push_back({n.hi, 0});
    } else {
      path.pop_back();
      stack.pop_back();
    }
  }
  return found;
}

Bdd::Ref Bdd::cofactor(Ref f, uint32_t var, bool positive) const {
  const Node& n = nodes_[f];
  if (n.var != var) return f;  // ordered: var < n.var, f independent of var
  return positive ? n.hi : n.lo;
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  const IteKey key{f, g, h};
  if (auto it = ite_memo_.find(key); it != ite_memo_.end()) return it->second;
  const uint32_t v =
      std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref hi =
      ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const Ref out = mk(v, lo, hi);
  ite_memo_.emplace(key, out);
  return out;
}

uint32_t BoolAnalyzer::var_for_atom(uint32_t table_atom) {
  if (auto it = atom_vars_.find(table_atom); it != atom_vars_.end()) {
    return it->second;
  }
  const uint32_t v = static_cast<uint32_t>(atom_vars_.size());
  atom_vars_.emplace(table_atom, v);
  return v;
}

void BoolAnalyzer::collect_atoms(psl::ExprId id, std::vector<uint32_t>& atoms) {
  if (id == psl::kNoExpr) return;
  if (auto it = atom_memo_.find(id); it != atom_memo_.end()) {
    atoms.insert(atoms.end(), it->second.begin(), it->second.end());
    return;
  }
  std::vector<uint32_t> own;
  const psl::ExprTable::Node& n = table_.node(id);
  if (n.kind == psl::ExprKind::kAtom) {
    own.push_back(n.atom);
  } else {
    collect_atoms(n.lhs, own);
    collect_atoms(n.rhs, own);
    std::sort(own.begin(), own.end());
    own.erase(std::unique(own.begin(), own.end()), own.end());
  }
  atoms.insert(atoms.end(), own.begin(), own.end());
  atom_memo_.emplace(id, std::move(own));
}

size_t BoolAnalyzer::distinct_atoms(psl::ExprId id) {
  std::vector<uint32_t> atoms;
  collect_atoms(id, atoms);
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return atoms.size();
}

std::optional<Bdd::Ref> BoolAnalyzer::build(psl::ExprId id,
                                            size_t* atoms_needed) {
  const size_t atoms = distinct_atoms(id);
  if (atoms_needed != nullptr) *atoms_needed = atoms;
  if (atoms > atom_cap_) return std::nullopt;
  struct Builder {
    BoolAnalyzer& a;
    Bdd::Ref go(psl::ExprId id) {
      if (auto it = a.build_memo_.find(id); it != a.build_memo_.end()) {
        return it->second;
      }
      const psl::ExprTable::Node& n = a.table_.node(id);
      Bdd::Ref out = Bdd::kFalse;
      switch (n.kind) {
        case psl::ExprKind::kConstTrue: out = Bdd::kTrue; break;
        case psl::ExprKind::kConstFalse: out = Bdd::kFalse; break;
        case psl::ExprKind::kAtom:
          out = a.bdd_.var(a.var_for_atom(n.atom));
          break;
        case psl::ExprKind::kNot: out = a.bdd_.not_(go(n.lhs)); break;
        case psl::ExprKind::kAnd:
          out = a.bdd_.and_(go(n.lhs), go(n.rhs));
          break;
        case psl::ExprKind::kOr: out = a.bdd_.or_(go(n.lhs), go(n.rhs)); break;
        case psl::ExprKind::kImplies:
          out = a.bdd_.implies(go(n.lhs), go(n.rhs));
          break;
        default:
          assert(false && "build() called on a non-boolean formula");
          break;
      }
      a.build_memo_.emplace(id, out);
      return out;
    }
  };
  return Builder{*this}.go(id);
}

BoolAnalyzer::Answer BoolAnalyzer::tautology(psl::ExprId id) {
  const auto f = build(id);
  if (!f) return Answer::kCapped;
  return bdd_.is_true(*f) ? Answer::kYes : Answer::kNo;
}

BoolAnalyzer::Answer BoolAnalyzer::contradiction(psl::ExprId id) {
  const auto f = build(id);
  if (!f) return Answer::kCapped;
  return bdd_.is_false(*f) ? Answer::kYes : Answer::kNo;
}

BoolAnalyzer::Answer BoolAnalyzer::implies(psl::ExprId a, psl::ExprId b) {
  std::vector<uint32_t> atoms;
  collect_atoms(a, atoms);
  collect_atoms(b, atoms);
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  if (atoms.size() > atom_cap_) return Answer::kCapped;
  const auto fa = build(a);
  const auto fb = build(b);
  if (!fa || !fb) return Answer::kCapped;
  return bdd_.is_true(bdd_.implies(*fa, *fb)) ? Answer::kYes : Answer::kNo;
}

}  // namespace repro::analysis
