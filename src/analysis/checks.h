// The static-analysis passes run by analysis::Driver over one property.
//
// Each check is its own pass over the interned IR (psl::ExprTable ids from
// the shared rewrite::PassManager) and appends Diagnostics to the property's
// record:
//
//   check_simple_subset   PSL001..PSL005  simple-subset conformance
//   check_bool_semantics  SEM001..SEM005  tautology / contradiction /
//                                         static vacuity (BDD, atom-capped)
//   check_consequence     AUD001..AUD004  the Thm. III.2 consequence audit:
//                                         is the abstracted formula really a
//                                         logical consequence of the
//                                         original? Cross-validates the
//                                         syntactic AbstractionClass.
//   check_env_binding     ENV001..ENV002  every atom (and context guard)
//                                         resolved against the target
//                                         environment's observable set
//   check_sizing          SIZ001..SIZ003  next_e window set, predicted
//                                         wrapper lifetime / pool capacity
//   check_symbolic        SYM001..SYM005  symbolic bounded trajectory
//                                         evaluation (symbolic.h): never
//                                         fails / dead program nodes /
//                                         temporal static vacuity /
//                                         reachable failure with witness /
//                                         analysis skipped. Opt-in via
//                                         AnalysisOptions::symbolic_budget.
#ifndef REPRO_ANALYSIS_CHECKS_H_
#define REPRO_ANALYSIS_CHECKS_H_

#include <string>
#include <vector>

#include "analysis/bool_logic.h"
#include "analysis/diagnostic.h"
#include "checker/wrapper.h"
#include "rewrite/methodology.h"
#include "rewrite/pass_manager.h"

namespace repro::analysis {

struct AnalysisOptions {
  // Clock period, abstracted signals and push mode of the target flow; the
  // driver runs the Methodology III.1 pipeline with exactly these options.
  rewrite::AbstractionOptions abstraction;
  // Observables exposed by the RTL environment; empty skips RTL binding.
  std::vector<std::string> rtl_observables;
  // Observables exposed by the TLM environment; empty skips TLM binding.
  std::vector<std::string> tlm_observables;
  // Boolean-layer analysis cap: formulas with more distinct atoms get an
  // explicit "analysis skipped" diagnostic instead of a BDD.
  size_t atom_cap = 20;
  // Step/instant budget of the symbolic bounded trajectory evaluation
  // (check_symbolic). 0 disables the pass entirely.
  size_t symbolic_budget = 0;
};

// Outcome of the consequence audit for one property.
enum class AuditStatus {
  kConfirmed,  // audit agrees with the syntactic classification
  kMismatch,   // classified consequence/unchanged, but p |= q not provable
  kSkipped,    // atom cap exceeded; audit explicitly skipped
};
const char* to_string(AuditStatus s);

// Per-property analysis record; filled by Driver::analyze.
struct PropertyAnalysis {
  std::string name;
  std::string rtl;  // printed RTL property
  std::string tlm;  // printed TLM property, "(deleted)" when erased
  rewrite::AbstractionClass classification = rewrite::AbstractionClass::kUnchanged;
  AuditStatus audit = AuditStatus::kConfirmed;
  checker::LifetimeInfo lifetime;
  std::vector<psl::TimeNs> windows_ns;  // distinct next_e windows, sorted
  std::vector<Diagnostic> diagnostics;

  bool ok() const;  // no error-severity diagnostics
};

// Shared state handed to every check of one property.
struct CheckContext {
  const psl::RtlProperty& property;
  const rewrite::AbstractionOutcome& outcome;
  rewrite::PassManager& pm;
  BoolAnalyzer& booleans;
  const AnalysisOptions& options;
  SourceSpan span;
  PropertyAnalysis& record;
};

void check_simple_subset(CheckContext& ctx);
void check_bool_semantics(CheckContext& ctx);
void check_consequence(CheckContext& ctx);
void check_env_binding(CheckContext& ctx);
void check_sizing(CheckContext& ctx);
// Implemented in symbolic.cc; no-op when options.symbolic_budget is 0.
void check_symbolic(CheckContext& ctx);

// Core of the consequence audit, exposed for tests: tries to prove
// table[p] |= table[q] (LTL consequence) by structural monotonicity rules
// with propositional discharge at the boolean layer (sound, incomplete).
enum class Entailment { kProved, kUnknown, kCapped };
Entailment prove_consequence(const psl::ExprTable& table, psl::ExprId p,
                             psl::ExprId q, BoolAnalyzer& booleans);

}  // namespace repro::analysis

#endif  // REPRO_ANALYSIS_CHECKS_H_
