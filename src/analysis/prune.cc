#include "analysis/prune.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "analysis/checks.h"
#include "analysis/symbolic.h"
#include "support/json.h"

namespace repro::analysis {

const char* to_string(PruneMode m) {
  switch (m) {
    case PruneMode::kOff:
      return "off";
    case PruneMode::kSafe:
      return "safe";
    case PruneMode::kAggressive:
      return "aggressive";
  }
  return "off";
}

const char* to_string(PruneAction a) {
  switch (a) {
    case PruneAction::kLive:
      return "live";
    case PruneAction::kElide:
      return "elide";
    case PruneAction::kSubsumed:
      return "subsumed";
  }
  return "live";
}

bool parse_prune_mode(std::string_view text, PruneMode& out) {
  if (text == "off") {
    out = PruneMode::kOff;
  } else if (text == "safe") {
    out = PruneMode::kSafe;
  } else if (text == "aggressive") {
    out = PruneMode::kAggressive;
  } else {
    return false;
  }
  return true;
}

PruneInput make_prune_input(const psl::RtlProperty& p) {
  PruneInput in;
  in.name = p.name;
  in.formula = p.formula;
  in.guard = p.context.guard;
  switch (p.context.kind) {
    case psl::ClockContext::Kind::kTrue:
      in.context_key = "event";
      break;
    case psl::ClockContext::Kind::kClk:
      in.context_key = "edge";
      break;
    case psl::ClockContext::Kind::kClkPos:
      in.context_key = "posedge";
      break;
    case psl::ClockContext::Kind::kClkNeg:
      in.context_key = "negedge";
      break;
  }
  return in;
}

PruneInput make_prune_input(const psl::TlmProperty& p) {
  PruneInput in;
  in.name = p.name;
  in.formula = p.formula;
  in.guard = p.context.guard;
  in.context_key = "tb";  // the basic transaction context Tb (Def. III.2)
  return in;
}

namespace {

// Static-verdict recursion over the NNF'd interned formula. Every rule is
// checked against the instance semantics of checker/instance.cc:
//
//   never_fails       the formula can never resolve Verdict::kFalse, on any
//                     trace including truncation (weak next truncates to
//                     true; strong until/eventually truncate to FALSE, so
//                     eventualities need a guaranteed witness; next_eps
//                     fails on a missed deadline regardless of its operand,
//                     so it is never assumed safe).
//   guaranteed_holds  the formula resolves kTrue at any evaluation position
//                     it is anchored on (position-uniform, so it can feed
//                     the until/eventually witness rules).
//   always_fails      the formula is guaranteed to resolve kFalse at any
//                     anchor (aggressive elide only; conservative — boolean
//                     contradictions threaded through and/or/always).
//
// Any BDD query that hits the atom cap flips `capped`; the caller then
// refuses to prune on the inconclusive analysis (PRN004).
struct StaticProver {
  const psl::ExprTable& table;
  BoolAnalyzer& booleans;
  bool capped = false;

  bool taut(psl::ExprId id) {
    switch (booleans.tautology(id)) {
      case BoolAnalyzer::Answer::kYes:
        return true;
      case BoolAnalyzer::Answer::kCapped:
        capped = true;
        return false;
      case BoolAnalyzer::Answer::kNo:
        return false;
    }
    return false;
  }

  bool contra(psl::ExprId id) {
    switch (booleans.contradiction(id)) {
      case BoolAnalyzer::Answer::kYes:
        return true;
      case BoolAnalyzer::Answer::kCapped:
        capped = true;
        return false;
      case BoolAnalyzer::Answer::kNo:
        return false;
    }
    return false;
  }

  bool guaranteed_holds(psl::ExprId id) {
    if (table.facts(id).is_boolean) return taut(id);
    const psl::ExprTable::Node& n = table.node(id);
    switch (n.kind) {
      case psl::ExprKind::kAnd:
        return guaranteed_holds(n.lhs) && guaranteed_holds(n.rhs);
      case psl::ExprKind::kOr:
        return guaranteed_holds(n.lhs) || guaranteed_holds(n.rhs);
      case psl::ExprKind::kUntil:
        // rhs true at the anchor resolves the until immediately.
        return guaranteed_holds(n.rhs);
      case psl::ExprKind::kRelease:
        // lhs && rhs at the anchor is the release condition.
        return guaranteed_holds(n.lhs) && guaranteed_holds(n.rhs);
      case psl::ExprKind::kEventually:
        return guaranteed_holds(n.lhs);
      case psl::ExprKind::kAbort:
        // Weak abort resolves true at the latest when the condition fires;
        // an immediately-true operand resolves it before that matters.
        return !n.strong && guaranteed_holds(n.lhs);
      default:
        // always/next/next_eps never resolve kTrue at their own anchor.
        return false;
    }
  }

  bool never_fails(psl::ExprId id) {
    if (table.facts(id).is_boolean) return taut(id);
    const psl::ExprTable::Node& n = table.node(id);
    switch (n.kind) {
      case psl::ExprKind::kAnd:
        return never_fails(n.lhs) && never_fails(n.rhs);
      case psl::ExprKind::kOr:
        // An or resolves kFalse only when both operands do.
        return never_fails(n.lhs) || never_fails(n.rhs);
      case psl::ExprKind::kAlways:
      case psl::ExprKind::kNext:  // weak: truncation resolves kTrue
        return never_fails(n.lhs);
      case psl::ExprKind::kNextEps:
        // A missed deadline fails regardless of the operand (Def. III.3).
        return false;
      case psl::ExprKind::kEventually:
        return guaranteed_holds(n.lhs);
      case psl::ExprKind::kUntil:
        return n.strong ? guaranteed_holds(n.rhs)
                        : guaranteed_holds(n.lhs) || guaranteed_holds(n.rhs);
      case psl::ExprKind::kRelease:
        return guaranteed_holds(n.rhs);
      case psl::ExprKind::kAbort:
        // Strong abort resolves kFalse when the condition fires.
        return !n.strong && never_fails(n.lhs);
      default:
        return false;
    }
  }

  bool always_fails(psl::ExprId id) {
    if (table.facts(id).is_boolean) return contra(id);
    const psl::ExprTable::Node& n = table.node(id);
    switch (n.kind) {
      case psl::ExprKind::kAlways:
        return always_fails(n.lhs);
      case psl::ExprKind::kAnd:
        return always_fails(n.lhs) || always_fails(n.rhs);
      case psl::ExprKind::kOr:
        return always_fails(n.lhs) && always_fails(n.rhs);
      default:
        return false;
    }
  }
};

void collect_atom_ids(const psl::ExprTable& table, psl::ExprId id,
                      std::vector<psl::ExprId>& out) {
  if (id == psl::kNoExpr) return;
  const psl::ExprTable::Node& n = table.node(id);
  if (n.kind == psl::ExprKind::kAtom) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
    return;
  }
  collect_atom_ids(table, n.lhs, out);
  collect_atom_ids(table, n.rhs, out);
}


}  // namespace

const PruneDecision* PrunePlan::find(std::string_view name) const {
  for (const PruneDecision& d : decisions) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

size_t PrunePlan::live() const {
  return static_cast<size_t>(
      std::count_if(decisions.begin(), decisions.end(), [](const auto& d) {
        return d.action == PruneAction::kLive;
      }));
}

size_t PrunePlan::elided() const {
  return static_cast<size_t>(
      std::count_if(decisions.begin(), decisions.end(), [](const auto& d) {
        return d.action == PruneAction::kElide;
      }));
}

size_t PrunePlan::subsumed() const {
  return static_cast<size_t>(
      std::count_if(decisions.begin(), decisions.end(), [](const auto& d) {
        return d.action == PruneAction::kSubsumed;
      }));
}

std::vector<Diagnostic> PrunePlan::diagnostics() const {
  std::vector<Diagnostic> out;
  for (const PruneDecision& d : decisions) {
    Diagnostic g;
    g.severity = Severity::kNote;
    g.property = d.name;
    g.check = "prune";
    switch (d.action) {
      case PruneAction::kElide:
        g.code = "PRN001";
        g.message = "elided (derived verdict: " +
                    std::string(d.static_verdict ? "holds" : "fails") +
                    "): " + d.reason;
        break;
      case PruneAction::kSubsumed:
        g.code = "PRN002";
        g.message = "subsumed by '" + d.subsumed_by +
                    "': verdict derived from its instance";
        break;
      case PruneAction::kLive:
        if (!d.capped) continue;
        g.code = "PRN004";
        g.message =
            "prune analysis hit the BDD atom cap; property stays live";
        break;
    }
    out.push_back(std::move(g));
  }
  return out;
}

void PrunePlan::write_json(std::ostream& os) const {
  os << "{\n  \"schema_version\": 1,\n  \"mode\": ";
  support::json::write_string(os, to_string(mode));
  os << ",\n  \"live\": " << live() << ",\n  \"elided\": " << elided()
     << ",\n  \"subsumed\": " << subsumed() << ",\n  \"properties\": [";
  bool first = true;
  for (const PruneDecision& d : decisions) {
    os << (first ? "\n" : ",\n") << "    {\"name\": ";
    first = false;
    support::json::write_string(os, d.name);
    os << ", \"action\": ";
    support::json::write_string(os, to_string(d.action));
    if (d.action == PruneAction::kElide) {
      os << ", \"static_verdict\": " << (d.static_verdict ? "true" : "false");
    }
    if (d.action == PruneAction::kSubsumed) {
      os << ", \"subsumed_by\": ";
      support::json::write_string(os, d.subsumed_by);
    }
    if (d.capped) os << ", \"capped\": true";
    if (!d.reason.empty()) {
      os << ", \"reason\": ";
      support::json::write_string(os, d.reason);
    }
    if (d.specialized != nullptr) {
      os << ", \"specialized\": ";
      support::json::write_string(os, psl::to_string(d.specialized));
    }
    if (d.program_fold != nullptr) {
      os << ", \"program_fold\": ";
      support::json::write_string(os, psl::to_string(d.program_fold));
    }
    os << "}";
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

PrunePlan build_prune_plan(rewrite::PassManager& pm, BoolAnalyzer& booleans,
                           const std::vector<PruneInput>& inputs,
                           PruneMode mode,
                           const SymbolicPruneOptions& symbolic) {
  PrunePlan plan;
  plan.mode = mode;
  const size_t n = inputs.size();
  plan.decisions.resize(n);
  for (size_t i = 0; i < n; ++i) plan.decisions[i].name = inputs[i].name;
  if (mode == PruneMode::kOff || n == 0) return plan;

  psl::ExprTable& table = pm.table();
  std::vector<psl::ExprId> raw(n), nnf(n), guard(n);
  for (size_t i = 0; i < n; ++i) {
    raw[i] = table.intern(inputs[i].formula);
    nnf[i] = pm.nnf(raw[i]);
    guard[i] =
        inputs[i].guard != nullptr ? table.intern(inputs[i].guard) : table.mk_true();
  }

  // Pass 1: static verdicts. An inconclusive (capped) analysis never elides.
  SymbolicEval::Options sym_opt;
  sym_opt.clock_period_ns = symbolic.clock_period_ns;
  sym_opt.step_budget = symbolic.step_budget;
  sym_opt.atom_cap = booleans.atom_cap();
  std::vector<char> capped(n, 0);
  for (size_t i = 0; i < n; ++i) {
    PruneDecision& d = plan.decisions[i];
    StaticProver prover{table, booleans};
    if (prover.never_fails(nnf[i])) {
      d.action = PruneAction::kElide;
      d.static_verdict = true;
      d.reason = "statically proved: cannot fail on any trace";
    } else if (mode == PruneMode::kAggressive && prover.always_fails(nnf[i])) {
      d.action = PruneAction::kElide;
      d.static_verdict = false;
      d.reason = "statically contradictory: fails at every activation";
    } else if (prover.capped) {
      capped[i] = 1;
    } else if (symbolic.enabled) {
      // Fallback: the bounded symbolic interpreter — elide-grade only when
      // its horizon provably covers every trajectory.
      SymbolicEval sym(inputs[i].formula, sym_opt);
      if (sym.status() == SymbolicEval::Status::kOk && sym.exhaustive() &&
          sym.never_fails()) {
        d.action = PruneAction::kElide;
        d.static_verdict = true;
        d.reason = "symbolically proved: no trajectory within the " +
                   std::to_string(sym.horizon()) +
                   "-step exhaustive horizon can fail";
      }
    }
  }

  // Pass 2: subsumption among the non-elided properties. An edge i -> j
  // means property i entails property j at every evaluation point of j:
  // same evaluation context, guard[j] => guard[i] (every activation of j is
  // one of i), and formula[i] |= formula[j] (Thm. III.2 consequence rules).
  std::vector<char> cand(n, 0);
  for (size_t i = 0; i < n; ++i) {
    cand[i] = plan.decisions[i].action != PruneAction::kElide;
  }
  std::vector<std::vector<char>> closure(n, std::vector<char>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    if (!cand[i]) continue;
    closure[i][i] = 1;
    for (size_t j = 0; j < n; ++j) {
      if (i == j || !cand[j]) continue;
      if (inputs[i].context_key != inputs[j].context_key) continue;
      bool guard_ok = guard[j] == guard[i];
      if (!guard_ok && table.facts(guard[i]).is_boolean &&
          table.facts(guard[j]).is_boolean) {
        switch (booleans.implies(guard[j], guard[i])) {
          case BoolAnalyzer::Answer::kYes:
            guard_ok = true;
            break;
          case BoolAnalyzer::Answer::kCapped:
            capped[j] = 1;
            break;
          case BoolAnalyzer::Answer::kNo:
            break;
        }
      }
      if (!guard_ok) continue;
      switch (prove_consequence(table, nnf[i], nnf[j], booleans)) {
        case Entailment::kProved:
          closure[i][j] = 1;
          break;
        case Entailment::kCapped:
          capped[j] = 1;
          break;
        case Entailment::kUnknown:
          break;
      }
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!closure[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (closure[k][j]) closure[i][j] = 1;
      }
    }
  }

  // Survivor selection: the min-index representative of each mutual-
  // implication class stays live unless something strictly entails it; a
  // capped property is always forced live (PRN004). Every pruned property
  // then names the min-index live entailer as its witness — such an
  // entailer always exists (the representative of a source class of the
  // condensation DAG above it).
  std::vector<char> is_live(n, 0);
  for (size_t j = 0; j < n; ++j) {
    if (!cand[j]) continue;
    bool rep = true;
    bool strictly_entailed = false;
    for (size_t i = 0; i < n && rep; ++i) {
      if (i == j || !cand[i] || !closure[i][j]) continue;
      if (closure[j][i]) {
        if (i < j) rep = false;  // mutual class has a smaller member
      } else {
        strictly_entailed = true;
      }
    }
    is_live[j] = (rep && !strictly_entailed) || capped[j];
  }
  for (size_t j = 0; j < n; ++j) {
    if (!cand[j]) continue;
    PruneDecision& d = plan.decisions[j];
    if (capped[j]) {
      d.capped = true;
      d.reason = "analysis hit the BDD atom cap; kept live";
      continue;
    }
    if (is_live[j]) continue;
    for (size_t i = 0; i < n; ++i) {
      if (i != j && cand[i] && is_live[i] && closure[i][j]) {
        d.action = PruneAction::kSubsumed;
        d.subsumed_by = inputs[i].name;
        d.reason = "entailed by '" + inputs[i].name +
                   "' (guard containment + consequence proof)";
        break;
      }
    }
  }

  // Pass 3: anchor-time specialization of the surviving live set. Atoms the
  // activation guard entails (the guard holds at every instance anchor) are
  // constant-folded on the boolean spine; the checker then compiles the
  // slimmer formula with an identical verdict stream.
  std::vector<psl::ExprId> atoms;
  for (size_t i = 0; i < n; ++i) {
    PruneDecision& d = plan.decisions[i];
    if (d.action != PruneAction::kLive) continue;
    if (guard[i] == table.mk_true() || !table.facts(guard[i]).is_boolean) {
      continue;
    }
    atoms.clear();
    collect_atom_ids(table, raw[i], atoms);
    rewrite::SpecializationFacts facts;
    for (const psl::ExprId a : atoms) {
      if (booleans.implies(guard[i], a) == BoolAnalyzer::Answer::kYes) {
        facts.add(a, true);
      } else if (booleans.implies(guard[i], table.mk_not(a)) ==
                 BoolAnalyzer::Answer::kYes) {
        facts.add(a, false);
      }
    }
    if (facts.empty()) continue;
    const psl::ExprId specialized = pm.specialize(raw[i], facts);
    if (specialized != raw[i]) {
      d.specialized = table.expr(specialized);
      if (d.reason.empty()) {
        d.reason = "guard-implied atoms folded at the instance anchor";
      }
    }
  }

  // Pass 4 (symbolic only): dead-node folds of what the runtime will
  // actually check — the specialized formula when pass 3 produced one. The
  // fold is parity-gated inside fold_dead; an unsupported or inexhaustive
  // program simply yields no fold.
  if (symbolic.enabled) {
    for (size_t i = 0; i < n; ++i) {
      PruneDecision& d = plan.decisions[i];
      if (d.action != PruneAction::kLive) continue;
      const psl::ExprPtr& effective =
          d.specialized != nullptr ? d.specialized : inputs[i].formula;
      SymbolicEval sym(effective, sym_opt);
      d.program_fold = sym.fold_dead();
    }
  }
  return plan;
}

PrunePlan build_prune_plan(const std::vector<PruneInput>& inputs,
                           PruneMode mode, size_t atom_cap,
                           const SymbolicPruneOptions& symbolic) {
  rewrite::PassManager pm{rewrite::AbstractionOptions{}};
  BoolAnalyzer booleans(pm.table(), atom_cap);
  return build_prune_plan(pm, booleans, inputs, mode, symbolic);
}

}  // namespace repro::analysis
