#include "analysis/driver.h"

#include <ostream>
#include <utility>

#include "support/json.h"

namespace repro::analysis {

Driver::Driver(AnalysisOptions options)
    : options_(std::move(options)),
      pm_(options_.abstraction),
      booleans_(pm_.table(), options_.atom_cap) {}

const PropertyAnalysis& Driver::analyze(const psl::RtlProperty& property,
                                        SourceSpan span) {
  const rewrite::AbstractionOutcome outcome =
      rewrite::abstract_property(pm_, property);

  PropertyAnalysis& record = results_.emplace_back();
  record.name = property.name;
  record.rtl = psl::to_string(property);
  record.tlm =
      outcome.deleted() ? "(deleted)" : psl::to_string(*outcome.property);
  record.classification = outcome.classification;

  CheckContext ctx{property, outcome,   pm_, booleans_,
                   options_, span,      record};
  check_simple_subset(ctx);
  check_bool_semantics(ctx);
  check_consequence(ctx);
  check_env_binding(ctx);
  check_sizing(ctx);
  check_symbolic(ctx);
  return record;
}

void Driver::add_diagnostic(Diagnostic d) { extra_.push_back(std::move(d)); }

DiagnosticCounts Driver::counts() const {
  DiagnosticCounts total = count(extra_);
  for (const PropertyAnalysis& r : results_) {
    const DiagnosticCounts c = count(r.diagnostics);
    total.notes += c.notes;
    total.warnings += c.warnings;
    total.errors += c.errors;
    total.skipped += c.skipped;
  }
  return total;
}

void Driver::render_text(std::ostream& os) const {
  for (const Diagnostic& d : extra_) {
    os << to_string(d) << "\n";
  }
  for (const PropertyAnalysis& r : results_) {
    for (const Diagnostic& d : r.diagnostics) {
      os << to_string(d) << "\n";
    }
  }
  const DiagnosticCounts c = counts();
  os << "analysis: " << results_.size() << " properties, " << c.errors
     << " errors, " << c.warnings << " warnings, " << c.notes << " notes"
     << ", skipped: " << c.skipped << "\n";
}

void Driver::write_json(std::ostream& os) const {
  os << "{\"schema_version\":1,\"generator\":\"analysis\"";
  os << ",\"clock_period_ns\":" << options_.abstraction.clock_period_ns;
  os << ",\"abstracted_signals\":[";
  bool first = true;
  for (const std::string& s : options_.abstraction.abstracted_signals) {
    if (!first) os << ",";
    first = false;
    support::json::write_string(os, s);
  }
  os << "],\"properties\":[";
  for (size_t i = 0; i < results_.size(); ++i) {
    const PropertyAnalysis& r = results_[i];
    if (i != 0) os << ",";
    os << "{\"name\":";
    support::json::write_string(os, r.name);
    os << ",\"rtl\":";
    support::json::write_string(os, r.rtl);
    os << ",\"tlm\":";
    support::json::write_string(os, r.tlm);
    os << ",\"classification\":";
    support::json::write_string(os, rewrite::to_string(r.classification));
    os << ",\"audit\":";
    support::json::write_string(os, to_string(r.audit));
    os << ",\"lifetime\":{\"bounded\":" << (r.lifetime.bounded ? "true" : "false")
       << ",\"instants\":" << r.lifetime.instants
       << ",\"max_eps_ns\":" << r.lifetime.max_eps << "}";
    os << ",\"windows_ns\":[";
    for (size_t w = 0; w < r.windows_ns.size(); ++w) {
      if (w != 0) os << ",";
      os << r.windows_ns[w];
    }
    os << "],\"diagnostics\":[";
    for (size_t d = 0; d < r.diagnostics.size(); ++d) {
      if (d != 0) os << ",";
      analysis::write_json(os, r.diagnostics[d]);
    }
    os << "]}";
  }
  os << "],\"diagnostics\":[";
  for (size_t d = 0; d < extra_.size(); ++d) {
    if (d != 0) os << ",";
    analysis::write_json(os, extra_[d]);
  }
  const DiagnosticCounts c = counts();
  os << "],\"totals\":{\"notes\":" << c.notes << ",\"warnings\":" << c.warnings
     << ",\"errors\":" << c.errors << ",\"skipped\":" << c.skipped << "}}\n";
}

}  // namespace repro::analysis
