#include "abv/snapshot_context.h"

#include <cstdio>
#include <cstdlib>

namespace repro::abv {

uint64_t ObservablesContext::value(std::string_view name) const {
  const std::optional<uint64_t> v = values_.get(name);
  if (!v.has_value()) {
    // A property referenced a signal the model does not expose in its
    // transaction records. Under NDEBUG an assert would vanish and the
    // dereference below would be UB; fail fast with the name instead.
    std::fprintf(stderr,
                 "fatal: observable '%.*s' missing from transaction record\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *v;
}

bool ObservablesContext::has(std::string_view name) const {
  return values_.get(name).has_value();
}

std::shared_ptr<const checker::WitnessValues> ObservablesContext::witness_values()
    const {
  if (witness_cache_ == nullptr && values_.keys() != nullptr) {
    // Deep copy: names and values only, no pointers into the borrowed
    // snapshot, so witness rings survive arena segment recycling.
    auto snapshot = std::make_shared<checker::WitnessValues>();
    const tlm::Snapshot::Keys& keys = *values_.keys();
    snapshot->reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      snapshot->emplace_back(keys[i], values_.at(i));
    }
    witness_cache_ = std::move(snapshot);
  }
  return witness_cache_;
}

}  // namespace repro::abv
