#include "abv/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace repro::abv {

void Report::add(const checker::PropertyChecker& checker) {
  const checker::CheckerStats& s = checker.stats();
  properties_.push_back({checker.name(), s.events, s.activations, s.holds,
                         s.failures, s.uncompleted, s.steps});
}

void Report::add(const checker::TlmCheckerWrapper& wrapper) {
  const checker::WrapperStats& s = wrapper.stats();
  properties_.push_back({wrapper.name(), s.transactions, s.activations, s.holds,
                         s.failures, s.uncompleted, s.steps});
}

void Report::sort_by_name() {
  std::stable_sort(
      properties_.begin(), properties_.end(),
      [](const PropertyReport& a, const PropertyReport& b) { return a.name < b.name; });
}

bool Report::all_ok() const {
  for (const auto& p : properties_) {
    if (!p.ok()) return false;
  }
  return true;
}

uint64_t Report::total_failures() const {
  uint64_t total = 0;
  for (const auto& p : properties_) total += p.failures;
  return total;
}

uint64_t Report::total_activations() const {
  uint64_t total = 0;
  for (const auto& p : properties_) total += p.activations;
  return total;
}

void Report::print(std::ostream& os) const {
  os << std::left << std::setw(16) << "property" << std::right << std::setw(12)
     << "events" << std::setw(12) << "activated" << std::setw(12) << "holds"
     << std::setw(10) << "fails" << std::setw(12) << "pending" << "\n";
  for (const auto& p : properties_) {
    os << std::left << std::setw(16) << p.name << std::right << std::setw(12)
       << p.events << std::setw(12) << p.activations << std::setw(12) << p.holds
       << std::setw(10) << p.failures << std::setw(12) << p.uncompleted << "\n";
  }
}

}  // namespace repro::abv
