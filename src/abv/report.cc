#include "abv/report.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "support/json.h"

namespace repro::abv {

namespace {

size_t digits(uint64_t v) {
  size_t n = 1;
  while (v >= 10) {
    v /= 10;
    ++n;
  }
  return n;
}

void append_delta(std::string& out, const char* field, int64_t v) {
  if (v == 0) return;
  if (!out.empty()) out += ", ";
  out += field;
  out += v > 0 ? " +" : " -";
  out += std::to_string(v > 0 ? v : -v);
}

}  // namespace

std::string PropertyDelta::to_string() const {
  std::string fields;
  append_delta(fields, "events", events);
  append_delta(fields, "activations", activations);
  append_delta(fields, "holds", holds);
  append_delta(fields, "failures", failures);
  append_delta(fields, "uncompleted", uncompleted);
  append_delta(fields, "steps", steps);
  append_delta(fields, "real_passes", real_passes);
  append_delta(fields, "vacuous_passes", vacuous_passes);
  append_delta(fields, "missed_deadlines", missed_deadlines);
  if (fields.empty()) fields = "no change";
  return name + ": " + fields;
}

void Report::add(const checker::PropertyChecker& checker) {
  const checker::CheckerStats& s = checker.stats();
  PropertyReport p;
  p.name = checker.name();
  p.events = s.events;
  p.activations = s.activations;
  p.holds = s.holds;
  p.failures = s.failures;
  p.uncompleted = s.uncompleted;
  p.steps = s.steps;
  p.trivial = s.trivial;
  p.real_passes = s.real_passes;
  p.vacuous_passes = s.vacuous_passes;
  p.node_visits = s.node_visits;
  p.latency_ns = checker.latency_histogram();
  p.failure_log = checker.failures();
  properties_.push_back(std::move(p));
}

void Report::add(const checker::TlmCheckerWrapper& wrapper) {
  const checker::WrapperStats& s = wrapper.stats();
  PropertyReport p;
  p.name = wrapper.name();
  p.events = s.transactions;
  p.activations = s.activations;
  p.holds = s.holds;
  p.failures = s.failures;
  p.uncompleted = s.uncompleted;
  p.steps = s.steps;
  p.trivial = s.trivial;
  p.real_passes = s.real_passes;
  p.vacuous_passes = s.vacuous_passes;
  p.missed_deadlines = s.missed_deadlines;
  p.node_visits = s.node_visits;
  p.latency_ns = wrapper.latency_histogram();
  p.failure_log = wrapper.failures();
  properties_.push_back(std::move(p));
}

void Report::add_derived(PropertyReport row) {
  properties_.push_back(std::move(row));
}

void Report::sort_by_name() {
  std::stable_sort(
      properties_.begin(), properties_.end(),
      [](const PropertyReport& a, const PropertyReport& b) { return a.name < b.name; });
}

std::vector<PropertyDelta> Report::diff(const Report& other) const {
  std::map<std::string, const PropertyReport*> mine;
  for (const auto& p : properties_) mine.emplace(p.name, &p);

  std::vector<PropertyDelta> deltas;
  auto signed_delta = [](uint64_t b, uint64_t a) {
    return static_cast<int64_t>(b) - static_cast<int64_t>(a);
  };
  for (const auto& p : other.properties_) {
    const auto it = mine.find(p.name);
    const PropertyReport base = it != mine.end() ? *it->second : PropertyReport{};
    if (it != mine.end()) mine.erase(it);
    PropertyDelta d;
    d.name = p.name;
    d.events = signed_delta(p.events, base.events);
    d.activations = signed_delta(p.activations, base.activations);
    d.holds = signed_delta(p.holds, base.holds);
    d.failures = signed_delta(p.failures, base.failures);
    d.uncompleted = signed_delta(p.uncompleted, base.uncompleted);
    d.steps = signed_delta(p.steps, base.steps);
    d.real_passes = signed_delta(p.real_passes, base.real_passes);
    d.vacuous_passes = signed_delta(p.vacuous_passes, base.vacuous_passes);
    d.missed_deadlines =
        signed_delta(p.missed_deadlines, base.missed_deadlines);
    if (!d.zero()) deltas.push_back(std::move(d));
  }
  // Properties present here but absent from `other` show up as the negated
  // counts, so the diff is symmetric up to sign.
  for (const auto& [name, p] : mine) {
    PropertyDelta d;
    d.name = name;
    d.events = -static_cast<int64_t>(p->events);
    d.activations = -static_cast<int64_t>(p->activations);
    d.holds = -static_cast<int64_t>(p->holds);
    d.failures = -static_cast<int64_t>(p->failures);
    d.uncompleted = -static_cast<int64_t>(p->uncompleted);
    d.steps = -static_cast<int64_t>(p->steps);
    d.real_passes = -static_cast<int64_t>(p->real_passes);
    d.vacuous_passes = -static_cast<int64_t>(p->vacuous_passes);
    d.missed_deadlines = -static_cast<int64_t>(p->missed_deadlines);
    if (!d.zero()) deltas.push_back(std::move(d));
  }
  return deltas;
}

bool Report::all_ok() const {
  for (const auto& p : properties_) {
    if (!p.ok()) return false;
  }
  return true;
}

uint64_t Report::total_failures() const {
  uint64_t total = 0;
  for (const auto& p : properties_) total += p.failures;
  return total;
}

uint64_t Report::total_activations() const {
  uint64_t total = 0;
  for (const auto& p : properties_) total += p.activations;
  return total;
}

void Report::print(std::ostream& os) const {
  PropertyReport totals;
  totals.name = "total";
  size_t name_width = totals.name.size();
  for (const auto& p : properties_) {
    name_width = std::max(name_width, p.name.size());
    totals.events += p.events;
    totals.activations += p.activations;
    totals.holds += p.holds;
    totals.failures += p.failures;
    totals.uncompleted += p.uncompleted;
    totals.real_passes += p.real_passes;
    totals.vacuous_passes += p.vacuous_passes;
  }
  struct Column {
    const char* header;
    uint64_t PropertyReport::*field;
    size_t width;
  };
  Column columns[] = {{"events", &PropertyReport::events, 0},
                      {"activated", &PropertyReport::activations, 0},
                      {"holds", &PropertyReport::holds, 0},
                      {"real", &PropertyReport::real_passes, 0},
                      {"vacuous", &PropertyReport::vacuous_passes, 0},
                      {"fails", &PropertyReport::failures, 0},
                      {"pending", &PropertyReport::uncompleted, 0}};
  size_t rule_width = name_width + 8;
  for (Column& c : columns) {
    // Totals bound every row's value, so sizing to header vs. total suffices.
    c.width = std::max(std::string_view(c.header).size(), digits(totals.*c.field)) + 2;
    rule_width += c.width;
  }
  const std::string rule(rule_width, '-');
  os << std::left << std::setw(static_cast<int>(name_width + 8)) << "property"
     << std::right;
  for (const Column& c : columns) os << std::setw(static_cast<int>(c.width)) << c.header;
  os << "\n";
  for (const auto& p : properties_) {
    os << std::left << std::setw(static_cast<int>(name_width + 8)) << p.name
       << std::right;
    for (const Column& c : columns) os << std::setw(static_cast<int>(c.width)) << p.*c.field;
    os << "\n";
  }
  os << rule << "\n";
  os << std::left << std::setw(static_cast<int>(name_width + 8)) << totals.name
     << std::right;
  for (const Column& c : columns) os << std::setw(static_cast<int>(c.width)) << totals.*c.field;
  os << "\n";
  size_t elided = 0;
  size_t subsumed = 0;
  for (const auto& p : properties_) {
    if (p.prune == "elide") ++elided;
    if (p.prune == "subsumed") ++subsumed;
  }
  if (elided + subsumed > 0) {
    os << "pruned: " << elided << " elided, " << subsumed
       << " subsumed (verdicts derived, never dropped)\n";
  }
}

void Report::write_json(std::ostream& os, const ReportTiming* timing) const {
  // schema_version history:
  //   1  all_ok/totals/properties(+failure_log)/timing
  //   2  adds the "coverage" array; v1 keys are unchanged (additive bump).
  os << "{\n";
  os << "  \"schema_version\": 2,\n";
  os << "  \"all_ok\": " << (all_ok() ? "true" : "false") << ",\n";
  os << "  \"totals\": {\"activations\": " << total_activations()
     << ", \"failures\": " << total_failures() << "},\n";
  os << "  \"properties\": [";
  for (size_t i = 0; i < properties_.size(); ++i) {
    const PropertyReport& p = properties_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": ";
    support::json::write_string(os, p.name);
    os << ", \"events\": " << p.events << ", \"activations\": " << p.activations
       << ", \"holds\": " << p.holds << ", \"failures\": " << p.failures
       << ", \"uncompleted\": " << p.uncompleted << ", \"steps\": " << p.steps;
    // Prune keys are emitted only for derived rows, so unpruned reports stay
    // byte-identical to schema_version 2 output.
    if (!p.prune.empty()) {
      os << ", \"prune\": ";
      support::json::write_string(os, p.prune);
      os << ", \"derived_from\": ";
      support::json::write_string(os, p.derived_from);
    }
    os << ",\n     \"failure_log\": [";
    for (size_t f = 0; f < p.failure_log.size(); ++f) {
      const checker::Failure& failure = p.failure_log[f];
      os << (f == 0 ? "\n" : ",\n");
      os << "       {\"time_ns\": " << failure.time << ", \"witness\": [";
      for (size_t w = 0; w < failure.witness.size(); ++w) {
        const checker::WitnessEntry& entry = failure.witness[w];
        os << (w == 0 ? "\n" : ",\n");
        os << "         {\"time_ns\": " << entry.time << ", \"observables\": {";
        if (entry.observables != nullptr) {
          for (size_t o = 0; o < entry.observables->size(); ++o) {
            if (o != 0) os << ", ";
            support::json::write_string(os, (*entry.observables)[o].first);
            os << ": " << (*entry.observables)[o].second;
          }
        }
        os << "}}";
      }
      os << (failure.witness.empty() ? "]}" : "\n       ]}");
    }
    os << (p.failure_log.empty() ? "]}" : "\n     ]}");
  }
  os << (properties_.empty() ? "]" : "\n  ]");
  os << ",\n  \"coverage\": [";
  for (size_t i = 0; i < properties_.size(); ++i) {
    const PropertyReport& p = properties_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": ";
    support::json::write_string(os, p.name);
    os << ", \"activations\": " << p.activations << ", \"holds\": " << p.holds
       << ", \"failures\": " << p.failures << ", \"trivial\": " << p.trivial
       << ", \"real_passes\": " << p.real_passes
       << ", \"vacuous_passes\": " << p.vacuous_passes
       << ", \"missed_deadlines\": " << p.missed_deadlines
       << ", \"node_visits\": " << p.node_visits
       << ", \"dynamically_vacuous\": "
       << (p.dynamically_vacuous() ? "true" : "false")
       << ",\n     \"latency_ns\": {\"bounds\": [";
    for (size_t b = 0; b < p.latency_ns.bounds().size(); ++b) {
      if (b != 0) os << ", ";
      os << p.latency_ns.bounds()[b];
    }
    os << "], \"counts\": [";
    for (size_t c = 0; c < p.latency_ns.counts().size(); ++c) {
      if (c != 0) os << ", ";
      os << p.latency_ns.counts()[c];
    }
    os << "], \"total\": " << p.latency_ns.total()
       << ", \"sum\": " << p.latency_ns.sum()
       << ", \"max\": " << p.latency_ns.max() << "}}";
  }
  os << (properties_.empty() ? "]" : "\n  ]");
  if (timing != nullptr) {
    const double rate = timing->wall_seconds > 0.0
                            ? static_cast<double>(timing->records) / timing->wall_seconds
                            : 0.0;
    const std::ios_base::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os << ",\n  \"timing\": {\n";
    os << "    \"wall_seconds\": " << std::fixed << std::setprecision(6)
       << timing->wall_seconds << ",\n";
    os << "    \"jobs\": " << timing->jobs << ",\n";
    os << "    \"records\": " << timing->records << ",\n";
    os << "    \"records_per_sec\": " << std::setprecision(1) << rate << ",\n";
    os.flags(flags);
    os.precision(precision);
    os << "    \"metrics\": ";
    {
      std::ostringstream metrics;
      timing->metrics.write_json(metrics);
      // Re-indent the nested metrics block to keep the file readable.
      const std::string text = metrics.str();
      for (const char c : text) {
        os << c;
        if (c == '\n') os << "    ";
      }
    }
    os << "\n  }";
  }
  os << "\n}\n";
}

}  // namespace repro::abv
