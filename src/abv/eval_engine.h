// Sharded, batched evaluation engine for the TLM ABV runtime.
//
// The serial runtime walks every wrapper and checker at every transaction
// end, so checking time grows linearly with the property count. The engine
// removes that bottleneck for large suites: wrappers/checkers are
// partitioned round-robin into per-worker shards, incoming transaction
// records are buffered into batches, and each batch is dispatched to all
// shards concurrently on a fixed thread pool.
//
// Correctness model:
//   - Each wrapper/checker is owned by exactly one shard, and a shard's
//     batch task is a single unit of work, so no locking is needed inside
//     on_transaction/on_event.
//   - Every shard iterates the batch in arrival order, so each property
//     observes the exact event stream of the serial engine; per-property
//     stats, verdicts and failure logs are therefore identical for any
//     `jobs` value.
//   - `jobs = 1` bypasses batching entirely and dispatches records
//     synchronously, which is bit-identical to the historical serial path.
//   - finish() flushes the pending batch, then retires properties serially
//     in registration order, so the merged Report is deterministic.
#ifndef REPRO_ABV_EVAL_ENGINE_H_
#define REPRO_ABV_EVAL_ENGINE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "checker/checker.h"
#include "checker/wrapper.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/trace_sink.h"
#include "tlm/transaction.h"

namespace repro::abv {

class EvalEngine {
 public:
  struct Options {
    // Worker shards. 1 = serial synchronous dispatch (the historical
    // behavior); values < 1 are clamped to 1.
    size_t jobs = 1;
    // Records buffered per concurrent dispatch when jobs > 1; values < 1
    // are clamped to 1.
    size_t batch_size = 64;
    // Optional metrics registry (records, batches, queue depth, per-shard
    // busy time, dispatch latency, wrapper pool/latency at finish). Must
    // have >= jobs lanes and outlive the engine. nullptr disables.
    support::MetricsRegistry* metrics = nullptr;
    // Optional Chrome-trace sink (batch/shard/retire spans, per-failure
    // instants). Must outlive the engine. nullptr disables.
    support::TraceSink* trace = nullptr;
  };

  explicit EvalEngine(Options options);
  ~EvalEngine();

  // Registration, in report order. Call before the first on_record.
  void add(checker::TlmCheckerWrapper* wrapper);
  void add(checker::PropertyChecker* checker);

  // One completed transaction. Serial mode evaluates immediately; sharded
  // mode buffers and dispatches full batches to all shards concurrently.
  void on_record(const tlm::TransactionRecord& record);

  // Flushes the pending batch and retires every property (end-of-trace
  // semantics), serially and in registration order.
  void finish();

  size_t jobs() const { return options_.jobs; }
  // Shards actually formed (0 before the first dispatch in sharded mode).
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::vector<checker::TlmCheckerWrapper*> wrappers;
    std::vector<checker::PropertyChecker*> checkers;
  };

  void ensure_sharded();
  void flush();
  void publish_metrics();

  Options options_;
  std::vector<checker::TlmCheckerWrapper*> wrappers_;
  std::vector<checker::PropertyChecker*> checkers_;

  std::vector<Shard> shards_;
  std::vector<std::function<void()>> shard_tasks_;  // reused every flush
  std::vector<tlm::TransactionRecord> batch_;
  std::unique_ptr<support::ThreadPool> pool_;
  bool sharded_ = false;

  // Metric handles (owned by options_.metrics), resolved once up front so
  // the hot path is a relaxed atomic add into the caller's lane.
  support::MetricsRegistry::Counter* m_records_ = nullptr;
  support::MetricsRegistry::Counter* m_batches_ = nullptr;
  support::MetricsRegistry::Counter* m_shard_records_ = nullptr;
  support::MetricsRegistry::Counter* m_shard_busy_ns_ = nullptr;
  support::MetricsRegistry::Gauge* m_queue_depth_ = nullptr;
  // Batch dispatch wall latency; recorded on the dispatch thread only and
  // merged into the registry at finish().
  support::Histogram batch_ns_;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_EVAL_ENGINE_H_
