// Sharded, pipelined evaluation engine for the TLM ABV runtime.
//
// The serial runtime walks every wrapper and checker at every transaction
// end, so checking time grows linearly with the property count. The engine
// removes that bottleneck for large suites: wrappers/checkers are
// partitioned round-robin into per-worker shards, incoming transaction
// records are appended once into a shared support::BatchArena, and sealed
// batches are dispatched by span — every shard reads the same immutable
// slab, eliminating the O(jobs) per-record fan-out copy.
//
// Dispatch is pipelined: each shard owns a worker thread with a FIFO batch
// queue, so the producer seals a full segment and immediately starts
// filling the next one while the shards drain the sealed one. The
// `max_inflight_batches` knob bounds sealed-but-undrained batches; at the
// bound the producer blocks (backpressure) until a batch fully drains.
//
// Correctness model:
//   - Each wrapper/checker is owned by exactly one shard, and shard queues
//     are FIFO, so every property observes the exact event stream of the
//     serial engine in arrival order; per-property stats, verdicts and
//     failure logs are therefore identical for any `jobs` or
//     `max_inflight_batches` value.
//   - Shard FIFOs also imply in-order drain completion per shard, so the
//     undrained batches always form a contiguous suffix of the sealed
//     sequence; recycled arena segments and batch tickets can never be
//     observed by a stale reader.
//   - Failure witnesses deep-copy the observables they retain (see
//     ObservablesContext::witness_values), so they stay valid after the
//     arena recycles a segment.
//   - `jobs = 1` bypasses the arena and threads entirely and dispatches
//     records synchronously, which is bit-identical to the historical
//     serial path.
//   - finish() seals the partial tail, waits for every batch to drain,
//     joins the workers, then retires properties serially in registration
//     order, so the merged Report is deterministic.
#ifndef REPRO_ABV_EVAL_ENGINE_H_
#define REPRO_ABV_EVAL_ENGINE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "abv/engine_config.h"
#include "checker/checker.h"
#include "checker/wrapper.h"
#include "support/batch_arena.h"
#include "support/coverage.h"
#include "support/metrics.h"
#include "support/trace_sink.h"
#include "tlm/transaction.h"

namespace repro::support::tracelog {
class TraceWriter;
}  // namespace repro::support::tracelog

namespace repro::abv {

class EvalEngine {
 public:
  struct Options {
    // Engine knobs; the same struct models::RunConfig::engine carries, so
    // callers pass their config group through unchanged.
    EngineConfig config;
    // Optional metrics registry (records, batches, arena/backpressure
    // accounting, per-shard busy time, wrapper pool/latency at finish).
    // Lane 0 is the producer, lane s+1 backs shard s, so the registry must
    // have >= jobs + 1 lanes and outlive the engine. nullptr disables.
    support::MetricsRegistry* metrics = nullptr;
    // Optional Chrome-trace sink (batch_fill/shard_batch/retire spans,
    // per-failure instants). Must outlive the engine. nullptr disables.
    support::TraceSink* trace = nullptr;
    // Optional JSONL snapshot stream (--metrics-out): one compact object per
    // line every `metrics_interval` ingested records, plus one exact line
    // with "final":true at finish(). Each line carries the merged metrics
    // snapshot and the coverage table (schema in tools/validate_metrics.py).
    // Mid-run lines in sharded mode are approximate — shards may not have
    // drained up to the sampled record yet (relaxed reads of the live
    // coverage rows); the final line is taken after every shard joined and
    // is exact. Must outlive the engine. nullptr disables.
    std::ostream* metrics_out = nullptr;
    // Records between two mid-run snapshot lines; 0 emits only the final
    // line (when metrics_out is set).
    size_t metrics_interval = 0;
    // Live per-property coverage table serialized into each snapshot line;
    // the caller attaches the table's rows to its wrappers/checkers. Must
    // outlive the engine. nullptr serializes an empty coverage array.
    support::CoverageTable* coverage = nullptr;
    // Optional trace-log writer (--record-out): the ingested record stream
    // is serialized exactly as checked — per sealed arena segment in
    // sharded mode (one frame per segment, written on the producer thread
    // right after the seal), per record on the serial path. Must outlive
    // the engine. nullptr disables.
    support::tracelog::TraceWriter* record_writer = nullptr;
  };

  explicit EvalEngine(Options options);
  ~EvalEngine();

  // Registration, in report order. Call before the first on_record.
  void add(checker::TlmCheckerWrapper* wrapper);
  void add(checker::PropertyChecker* checker);

  // One completed transaction. Serial mode evaluates immediately; sharded
  // mode appends the record to the arena (the one and only copy) and seals
  // a batch for the shard workers whenever batch_size records accumulate.
  void on_record(const tlm::TransactionRecord& record);
  // Move-ingest overload: the arena takes the record without copying.
  void on_record(tlm::TransactionRecord&& record);

  // Narrow span-based bulk ingest: equivalent to calling on_record for
  // each element of [begin, end) in order. Callers holding a contiguous
  // slice of records feed it here instead of reaching into batching
  // internals.
  void on_records(const tlm::TransactionRecord* begin,
                  const tlm::TransactionRecord* end);

  // Seals the partial tail, drains every in-flight batch, joins the shard
  // workers and retires every property (end-of-trace semantics), serially
  // and in registration order.
  void finish();

  size_t jobs() const { return options_.config.jobs; }
  // Shards actually formed (0 before the first record in sharded mode).
  size_t shard_count() const { return shards_.size(); }

 private:
  using RecordArena = support::BatchArena<tlm::TransactionRecord>;

  // One sealed batch in flight: a ticket shared by all shard queues.
  // Tickets are pooled; a ticket is recycled only after its last reader
  // released the span, and in-order drain makes reuse safe (see above).
  struct Batch {
    RecordArena::Span span;
    uint64_t seq = 0;      // seal order, for trace causality
    uint64_t seal_ns = 0;  // trace/mono clock at seal, for drain latency
  };

  // std::deque: Shard holds a mutex and is neither movable nor copyable.
  struct Shard {
    std::vector<checker::TlmCheckerWrapper*> wrappers;
    std::vector<checker::PropertyChecker*> checkers;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Batch*> queue;  // FIFO; guarded by mu
    bool stop = false;         // guarded by mu; workers drain, then exit
    std::thread thread;
  };

  uint64_t tick() const;  // trace clock when tracing, else monotonic
  void ensure_sharded();
  void append_sharded(tlm::TransactionRecord&& record);
  void seal_and_dispatch();
  void shard_loop(size_t s);
  void process_batch(Shard& shard, size_t s, Batch* batch);
  void stop_workers();
  void publish_metrics();
  // Bumps the ingest counter and emits a mid-run snapshot line every
  // metrics_interval records; called after each record is ingested.
  void count_record(uint64_t sim_time_ns);
  void write_sample(uint64_t sim_time_ns, bool final);

  Options options_;
  std::vector<checker::TlmCheckerWrapper*> wrappers_;
  std::vector<checker::PropertyChecker*> checkers_;

  RecordArena arena_;
  std::deque<Shard> shards_;
  bool sharded_ = false;
  bool workers_running_ = false;
  uint64_t fill_start_ns_ = 0;  // first append into the open segment

  // Producer/drain rendezvous: guards the ticket pool, in-flight count and
  // the drain-latency histogram (recorded by whichever shard releases a
  // batch last).
  std::mutex mu_;
  std::condition_variable drained_cv_;
  std::vector<std::unique_ptr<Batch>> tickets_;
  std::vector<Batch*> free_tickets_;
  size_t inflight_ = 0;
  size_t inflight_peak_ = 0;
  uint64_t next_seq_ = 0;
  // Seal-to-last-release latency; merged into the registry at finish().
  support::Histogram batch_ns_;

  // Snapshot-sampler state (producer thread only).
  uint64_t records_seen_ = 0;
  uint64_t sample_seq_ = 0;
  uint64_t last_record_time_ = 0;  // sim time of the last ingested record

  // Metric handles (owned by options_.metrics), resolved once up front so
  // the hot path is a relaxed atomic add into the caller's lane.
  support::MetricsRegistry::Counter* m_records_ = nullptr;
  support::MetricsRegistry::Counter* m_batches_ = nullptr;
  support::MetricsRegistry::Counter* m_shard_records_ = nullptr;
  support::MetricsRegistry::Counter* m_shard_busy_ns_ = nullptr;
  support::MetricsRegistry::Counter* m_backpressure_ns_ = nullptr;
  support::MetricsRegistry::Gauge* m_queue_depth_ = nullptr;
  support::MetricsRegistry::Gauge* m_inflight_peak_ = nullptr;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_EVAL_ENGINE_H_
