// Zero-copy checker ValueContext over a tlm::Snapshot.
//
// One context is built per evaluation point and shared read-only by every
// checker sampling that instant — the TLM engine builds it over a record
// held in the batch arena, the RTL environment over the per-edge sample
// snapshot. The context only borrows the snapshot; witness_values() is the
// escape hatch for data that must outlive it: it materializes a deep copy
// (names and values, no pointers into the snapshot) exactly once and hands
// out shared ownership, so failure-witness rings stay valid after the
// arena recycles the backing segment.
#ifndef REPRO_ABV_SNAPSHOT_CONTEXT_H_
#define REPRO_ABV_SNAPSHOT_CONTEXT_H_

#include <memory>
#include <string_view>

#include "checker/checker.h"
#include "tlm/transaction.h"

namespace repro::abv {

class ObservablesContext : public checker::ValueContext {
 public:
  explicit ObservablesContext(const tlm::Snapshot& values) : values_(values) {}

  // Fails fast (with the observable's name) when the record does not carry
  // `name`; a silent garbage read would make verdicts meaningless.
  uint64_t value(std::string_view name) const override;
  bool has(std::string_view name) const override;

  // Materialized once per context and shared, so the wrappers of one shard
  // remembering the same transaction all hold the same immutable snapshot.
  // The copy is deep: it stays valid after the batch arena recycles the
  // record this context was built over.
  std::shared_ptr<const checker::WitnessValues> witness_values() const override;

 private:
  const tlm::Snapshot& values_;
  mutable std::shared_ptr<const checker::WitnessValues> witness_cache_;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_SNAPSHOT_CONTEXT_H_
