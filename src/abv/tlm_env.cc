#include "abv/tlm_env.h"

#include <cstdio>
#include <cstdlib>

namespace repro::abv {

uint64_t ObservablesContext::value(std::string_view name) const {
  const std::optional<uint64_t> v = values_.get(name);
  if (!v.has_value()) {
    // A property referenced a signal the model does not expose in its
    // transaction records. Under NDEBUG an assert would vanish and the
    // dereference below would be UB; fail fast with the name instead.
    std::fprintf(stderr,
                 "fatal: observable '%.*s' missing from transaction record\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *v;
}

bool ObservablesContext::has(std::string_view name) const {
  return values_.get(name).has_value();
}

std::shared_ptr<const checker::WitnessValues> ObservablesContext::witness_values()
    const {
  if (witness_cache_ == nullptr && values_.keys() != nullptr) {
    auto snapshot = std::make_shared<checker::WitnessValues>();
    const tlm::Snapshot::Keys& keys = *values_.keys();
    snapshot->reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      snapshot->emplace_back(keys[i], values_.at(i));
    }
    witness_cache_ = std::move(snapshot);
  }
  return witness_cache_;
}

void TlmAbvEnv::add_property(const psl::TlmProperty& property) {
  wrappers_.push_back(std::make_unique<checker::TlmCheckerWrapper>(
      property, clock_period_ns_, checker_options_));
}

void TlmAbvEnv::add_rtl_property(const psl::RtlProperty& property) {
  checkers_.push_back(std::make_unique<checker::PropertyChecker>(
      property.name, property.formula, property.context.guard,
      checker_options_));
}

void TlmAbvEnv::attach(tlm::TransactionRecorder& recorder) {
  // Lane 0 is the dispatch thread; lanes 1..jobs-1 back the extra shards.
  metrics_ = std::make_unique<support::MetricsRegistry>(jobs_);
  EvalEngine::Options options;
  options.jobs = jobs_;
  options.batch_size = batch_size_;
  options.metrics = metrics_.get();
  options.trace = trace_;
  engine_ = std::make_unique<EvalEngine>(options);
  for (auto& wrapper : wrappers_) {
    wrapper->set_witness_depth(witness_depth_);
    engine_->add(wrapper.get());
  }
  for (auto& checker : checkers_) engine_->add(checker.get());
  recorder.subscribe(
      [this](const tlm::TransactionRecord& record) { on_record(record); });
}

void TlmAbvEnv::on_record(const tlm::TransactionRecord& record) {
  engine_->on_record(record);
}

void TlmAbvEnv::finish() {
  if (engine_ != nullptr) {
    engine_->finish();
    return;
  }
  // Never attached: retire directly (nothing was ever dispatched).
  for (auto& wrapper : wrappers_) wrapper->finish();
  for (auto& checker : checkers_) checker->finish();
}

support::MetricsSnapshot TlmAbvEnv::metrics_snapshot() const {
  return metrics_ != nullptr ? metrics_->snapshot() : support::MetricsSnapshot{};
}

Report TlmAbvEnv::report() const {
  Report report;
  for (const auto& wrapper : wrappers_) report.add(*wrapper);
  for (const auto& checker : checkers_) report.add(*checker);
  return report;
}

bool TlmAbvEnv::all_ok() const {
  for (const auto& wrapper : wrappers_) {
    if (!wrapper->ok()) return false;
  }
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  return true;
}

}  // namespace repro::abv
