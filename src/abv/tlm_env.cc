#include "abv/tlm_env.h"

namespace repro::abv {

void TlmAbvEnv::add_property(const psl::TlmProperty& property) {
  psl::TlmProperty effective = property;
  psl::ExprPtr fold;
  if (prune_plan_ != nullptr) {
    if (const analysis::PruneDecision* d = prune_plan_->find(property.name)) {
      if (d->action != analysis::PruneAction::kLive) {
        if (!prune_audit_) {
          coverage_.annotate(property.name, analysis::to_string(d->action));
          pruned_.push_back(*d);
          return;
        }
        audited_.push_back(*d);
      } else {
        if (d->specialized != nullptr) effective.formula = d->specialized;
        fold = d->program_fold;
      }
    }
  }
  wrappers_.push_back(std::make_unique<checker::TlmCheckerWrapper>(
      effective, clock_period_ns_, checker_options_));
  // Symbolic dead-node fold: swap in the slimmer program while the original
  // formula keeps driving cost accounting (verdict-stream parity-gated).
  if (fold != nullptr) wrappers_.back()->set_program_formula(fold);
}

void TlmAbvEnv::add_rtl_property(const psl::RtlProperty& property) {
  psl::ExprPtr formula = property.formula;
  psl::ExprPtr fold;
  if (prune_plan_ != nullptr) {
    if (const analysis::PruneDecision* d = prune_plan_->find(property.name)) {
      if (d->action != analysis::PruneAction::kLive) {
        if (!prune_audit_) {
          coverage_.annotate(property.name, analysis::to_string(d->action));
          pruned_.push_back(*d);
          return;
        }
        audited_.push_back(*d);
      } else {
        if (d->specialized != nullptr) formula = d->specialized;
        fold = d->program_fold;
      }
    }
  }
  checkers_.push_back(std::make_unique<checker::PropertyChecker>(
      property.name, formula, property.context.guard, checker_options_));
  if (fold != nullptr) checkers_.back()->set_program_formula(fold);
}

void TlmAbvEnv::bind() {
  // Lane 0 is the producer/dispatch thread; lanes 1..jobs back the shard
  // workers, which now run concurrently with the producer.
  metrics_ =
      std::make_unique<support::MetricsRegistry>(engine_config_.jobs + 1);
  EvalEngine::Options options;
  options.config = engine_config_;
  options.metrics = metrics_.get();
  options.trace = trace_;
  options.metrics_out = metrics_out_;
  options.metrics_interval = metrics_interval_;
  options.coverage = &coverage_;
  options.record_writer = record_writer_;
  engine_ = std::make_unique<EvalEngine>(options);
  for (auto& wrapper : wrappers_) {
    wrapper->set_witness_depth(witness_depth_);
    wrapper->set_coverage(&coverage_.row(wrapper->name()));
    engine_->add(wrapper.get());
  }
  for (auto& checker : checkers_) {
    checker->set_coverage(&coverage_.row(checker->name()));
    engine_->add(checker.get());
  }
}

void TlmAbvEnv::attach(tlm::TransactionRecorder& recorder) {
  bind();
  recorder.subscribe(
      [this](const tlm::TransactionRecord& record) { on_record(record); });
}

void TlmAbvEnv::on_record(const tlm::TransactionRecord& record) {
  engine_->on_record(record);
}

void TlmAbvEnv::on_records(const tlm::TransactionRecord* begin,
                           const tlm::TransactionRecord* end) {
  engine_->on_records(begin, end);
}

void TlmAbvEnv::finish() {
  if (engine_ != nullptr) {
    engine_->finish();
    return;
  }
  // Never attached: retire directly (nothing was ever dispatched).
  for (auto& wrapper : wrappers_) wrapper->finish();
  for (auto& checker : checkers_) checker->finish();
}

support::MetricsSnapshot TlmAbvEnv::metrics_snapshot() const {
  return metrics_ != nullptr ? metrics_->snapshot() : support::MetricsSnapshot{};
}

bool TlmAbvEnv::live_ok(const std::string& name, bool& found) const {
  for (const auto& wrapper : wrappers_) {
    if (wrapper->name() == name) {
      found = true;
      return wrapper->ok();
    }
  }
  for (const auto& checker : checkers_) {
    if (checker->name() == name) {
      found = true;
      return checker->ok();
    }
  }
  found = false;
  return true;
}

Report TlmAbvEnv::report() const {
  Report report;
  for (const auto& wrapper : wrappers_) report.add(*wrapper);
  for (const auto& checker : checkers_) report.add(*checker);
  for (const auto& d : pruned_) {
    bool found = false;
    bool subsumer_ok = true;
    if (d.action == analysis::PruneAction::kSubsumed) {
      subsumer_ok = live_ok(d.subsumed_by, found);
    }
    report.add_derived(derived_report_row(d, found, subsumer_ok));
  }
  return report;
}

std::vector<analysis::Diagnostic> TlmAbvEnv::prune_cross_check() const {
  std::vector<analysis::Diagnostic> out;
  for (const auto& d : audited_) {
    uint64_t activations = 0;
    uint64_t failures = 0;
    bool have = false;
    for (const auto& wrapper : wrappers_) {
      if (wrapper->name() == d.name) {
        activations = wrapper->stats().activations;
        failures = wrapper->stats().failures;
        have = true;
      }
    }
    for (const auto& checker : checkers_) {
      if (checker->name() == d.name) {
        activations = checker->stats().activations;
        failures = checker->stats().failures;
        have = true;
      }
    }
    if (!have) continue;
    bool found = false;
    const bool subsumer_ok = d.action == analysis::PruneAction::kSubsumed
                                 ? live_ok(d.subsumed_by, found)
                                 : true;
    cross_check_decision(d, activations, failures, subsumer_ok, out);
  }
  return out;
}

bool TlmAbvEnv::all_ok() const {
  for (const auto& wrapper : wrappers_) {
    if (!wrapper->ok()) return false;
  }
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  // Derived verdicts: an elided-false property fails by construction; a
  // subsumed property follows its subsumer, which the loops above covered.
  for (const auto& d : pruned_) {
    if (d.action == analysis::PruneAction::kElide && !d.static_verdict) {
      return false;
    }
  }
  return true;
}

}  // namespace repro::abv
