#include "abv/tlm_env.h"

#include <cassert>

namespace repro::abv {

uint64_t ObservablesContext::value(std::string_view name) const {
  const std::optional<uint64_t> v = values_.get(name);
  assert(v.has_value() && "observable missing from transaction record");
  return *v;
}

bool ObservablesContext::has(std::string_view name) const {
  return values_.get(name).has_value();
}

void TlmAbvEnv::add_property(const psl::TlmProperty& property) {
  wrappers_.push_back(
      std::make_unique<checker::TlmCheckerWrapper>(property, clock_period_ns_));
}

void TlmAbvEnv::add_rtl_property(const psl::RtlProperty& property) {
  checkers_.push_back(std::make_unique<checker::PropertyChecker>(
      property.name, property.formula, property.context.guard));
}

void TlmAbvEnv::attach(tlm::TransactionRecorder& recorder) {
  recorder.subscribe(
      [this](const tlm::TransactionRecord& record) { on_record(record); });
}

void TlmAbvEnv::on_record(const tlm::TransactionRecord& record) {
  const ObservablesContext ctx(record.observables);
  for (auto& wrapper : wrappers_) wrapper->on_transaction(record.end, ctx);
  for (auto& checker : checkers_) checker->on_event(record.end, ctx);
}

void TlmAbvEnv::finish() {
  for (auto& wrapper : wrappers_) wrapper->finish();
  for (auto& checker : checkers_) checker->finish();
}

Report TlmAbvEnv::report() const {
  Report report;
  for (const auto& wrapper : wrappers_) report.add(*wrapper);
  for (const auto& checker : checkers_) report.add(*checker);
  return report;
}

bool TlmAbvEnv::all_ok() const {
  for (const auto& wrapper : wrappers_) {
    if (!wrapper->ok()) return false;
  }
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  return true;
}

}  // namespace repro::abv
