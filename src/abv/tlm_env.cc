#include "abv/tlm_env.h"

namespace repro::abv {

void TlmAbvEnv::add_property(const psl::TlmProperty& property) {
  wrappers_.push_back(std::make_unique<checker::TlmCheckerWrapper>(
      property, clock_period_ns_, checker_options_));
}

void TlmAbvEnv::add_rtl_property(const psl::RtlProperty& property) {
  checkers_.push_back(std::make_unique<checker::PropertyChecker>(
      property.name, property.formula, property.context.guard,
      checker_options_));
}

void TlmAbvEnv::attach(tlm::TransactionRecorder& recorder) {
  // Lane 0 is the producer/dispatch thread; lanes 1..jobs back the shard
  // workers, which now run concurrently with the producer.
  metrics_ =
      std::make_unique<support::MetricsRegistry>(engine_config_.jobs + 1);
  EvalEngine::Options options;
  options.config = engine_config_;
  options.metrics = metrics_.get();
  options.trace = trace_;
  options.metrics_out = metrics_out_;
  options.metrics_interval = metrics_interval_;
  options.coverage = &coverage_;
  engine_ = std::make_unique<EvalEngine>(options);
  for (auto& wrapper : wrappers_) {
    wrapper->set_witness_depth(witness_depth_);
    wrapper->set_coverage(&coverage_.row(wrapper->name()));
    engine_->add(wrapper.get());
  }
  for (auto& checker : checkers_) {
    checker->set_coverage(&coverage_.row(checker->name()));
    engine_->add(checker.get());
  }
  recorder.subscribe(
      [this](const tlm::TransactionRecord& record) { on_record(record); });
}

void TlmAbvEnv::on_record(const tlm::TransactionRecord& record) {
  engine_->on_record(record);
}

void TlmAbvEnv::finish() {
  if (engine_ != nullptr) {
    engine_->finish();
    return;
  }
  // Never attached: retire directly (nothing was ever dispatched).
  for (auto& wrapper : wrappers_) wrapper->finish();
  for (auto& checker : checkers_) checker->finish();
}

support::MetricsSnapshot TlmAbvEnv::metrics_snapshot() const {
  return metrics_ != nullptr ? metrics_->snapshot() : support::MetricsSnapshot{};
}

Report TlmAbvEnv::report() const {
  Report report;
  for (const auto& wrapper : wrappers_) report.add(*wrapper);
  for (const auto& checker : checkers_) report.add(*checker);
  return report;
}

bool TlmAbvEnv::all_ok() const {
  for (const auto& wrapper : wrappers_) {
    if (!wrapper->ok()) return false;
  }
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  return true;
}

}  // namespace repro::abv
