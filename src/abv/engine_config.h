// Engine tuning knobs, shared verbatim between models::RunConfig::engine
// and abv::EvalEngine::Options::config so the testbench never hand-copies
// fields (single source of truth for the evaluation-engine surface).
#ifndef REPRO_ABV_ENGINE_CONFIG_H_
#define REPRO_ABV_ENGINE_CONFIG_H_

#include <cstddef>

namespace repro::abv {

// Designed for designated initializers:
//   abv::EngineConfig{.jobs = 4, .max_inflight_batches = 3}
struct EngineConfig {
  // Worker shards. 1 = serial synchronous dispatch, bit-identical to the
  // historical single-threaded walk; values < 1 are clamped to 1.
  size_t jobs = 1;
  // Records buffered per sealed arena batch. Only meaningful when
  // jobs > 1: the serial path evaluates every record synchronously and
  // never batches, so this knob is IGNORED at jobs == 1 (see also the
  // SIZ-style note the examples print). Values < 1 are clamped to 1.
  size_t batch_size = 64;
  // Sealed-but-undrained batches the producer may have outstanding before
  // it blocks (backpressure). 1 degenerates to synchronous fork-join
  // dispatch; 2 (default) double-buffers: the producer fills batch k+1
  // while the shards drain batch k. Ignored at jobs == 1; values < 1 are
  // clamped to 1.
  size_t max_inflight_batches = 2;
  // Evaluate frame-free compiled checker programs through the 64-wide
  // lockstep kernel (checker/batch.h). Reports are byte-identical either
  // way; only throughput differs. Kept last so existing designated
  // initializers stay valid.
  bool vectorized = true;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_ENGINE_CONFIG_H_
