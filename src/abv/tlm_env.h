// TLM dynamic ABV environment.
//
// Subscribes to a TransactionRecorder and drives, at the end of each
// transaction (the basic transaction context Tb):
//   - TlmCheckerWrappers for properties abstracted with Methodology III.1
//     (the intended use, Sec. IV), and
//   - plain PropertyCheckers for unabstracted RTL properties replayed at
//     TLM-CA (the paper's TLM-CA rows of Table I), where every per-cycle
//     transaction stands for a clock edge.
#ifndef REPRO_ABV_TLM_ENV_H_
#define REPRO_ABV_TLM_ENV_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "abv/engine_config.h"
#include "abv/eval_engine.h"
#include "abv/prune_runtime.h"
#include "abv/report.h"
#include "abv/snapshot_context.h"
#include "analysis/prune.h"
#include "checker/checker.h"
#include "checker/wrapper.h"
#include "psl/ast.h"
#include "support/coverage.h"
#include "support/metrics.h"
#include "support/trace_sink.h"
#include "tlm/recorder.h"

namespace repro::abv {

class TlmAbvEnv {
 public:
  // `clock_period_ns` is the reference RTL clock period, used to size the
  // wrapper instance pools (Sec. IV point 1). `jobs` selects the evaluation
  // engine: 1 (default) is the exact serial walk; N > 1 shards the
  // registered properties across N concurrent workers with identical
  // per-property results (see EvalEngine).
  explicit TlmAbvEnv(psl::TimeNs clock_period_ns = 10, size_t jobs = 1)
      : clock_period_ns_(clock_period_ns) {
    engine_config_.jobs = jobs == 0 ? 1 : jobs;
  }

  // Replaces the full engine knob group (jobs, batch size, in-flight
  // bound); must be called before attach(). The struct is handed to the
  // EvalEngine verbatim.
  void set_engine_config(const EngineConfig& config) {
    engine_config_ = config;
    if (engine_config_.jobs == 0) engine_config_.jobs = 1;
    if (engine_config_.batch_size == 0) engine_config_.batch_size = 1;
    if (engine_config_.max_inflight_batches == 0) {
      engine_config_.max_inflight_batches = 1;
    }
  }
  const EngineConfig& engine_config() const { return engine_config_; }

  // Field-wise conveniences over set_engine_config.
  void set_jobs(size_t jobs) { engine_config_.jobs = jobs == 0 ? 1 : jobs; }
  size_t jobs() const { return engine_config_.jobs; }
  void set_batch_size(size_t batch_size) {
    engine_config_.batch_size = batch_size == 0 ? 1 : batch_size;
  }
  size_t batch_size() const { return engine_config_.batch_size; }

  // Failure-witness ring depth applied to every wrapper at attach() (0
  // disables witness capture).
  void set_witness_depth(size_t depth) { witness_depth_ = depth; }
  size_t witness_depth() const { return witness_depth_; }

  // Checker backend and failure-log cap applied to wrappers and checkers
  // registered *after* this call; call before add_property.
  void set_checker_options(checker::CheckerOptions options) {
    checker_options_ = options;
  }
  const checker::CheckerOptions& checker_options() const {
    return checker_options_;
  }

  // Chrome-trace sink for engine spans and failure instants; must outlive
  // the environment. nullptr (default) disables tracing.
  void set_trace_sink(support::TraceSink* sink) { trace_ = sink; }

  // JSONL metrics/coverage snapshot stream (--metrics-out): one compact line
  // every `interval_records` records plus an exact final line at finish().
  // Must outlive the environment; nullptr (default) disables streaming.
  // Call before attach().
  void set_metrics_output(std::ostream* os, size_t interval_records) {
    metrics_out_ = os;
    metrics_interval_ = interval_records;
  }

  // Live per-property coverage table: attach() wires one row per registered
  // property into its wrapper/checker, so the table tracks the run as it
  // happens (exact after finish()).
  const support::CoverageTable& coverage() const { return coverage_; }

  // Applies a prune plan to properties registered *after* this call: elided
  // and subsumed properties do not spawn wrappers/checkers — their report
  // rows carry derived verdicts — and live properties with a specialized
  // formula compile the slimmed formula instead. With `cross_check` true
  // every property still runs and prune_cross_check() audits the derived
  // verdicts (PRN003). The plan must outlive the environment.
  void set_prune_plan(const analysis::PrunePlan* plan,
                      bool cross_check = false) {
    prune_plan_ = plan;
    prune_audit_ = cross_check;
  }

  // PRN003 error diagnostics for derived verdicts the audit run contradicts;
  // only ever non-empty when set_prune_plan(..., /*cross_check=*/true) was
  // used. Call after finish().
  std::vector<analysis::Diagnostic> prune_cross_check() const;

  // Registers an abstracted TLM property (checked through the wrapper).
  void add_property(const psl::TlmProperty& property);

  // Registers an unabstracted RTL property evaluated on the transaction
  // stream (per-cycle transactions at TLM-CA); the clock context guard, if
  // any, carries over.
  void add_rtl_property(const psl::RtlProperty& property);

  // Builds the evaluation engine over the registered properties without
  // subscribing to anything; records then arrive through on_records (the
  // pull-based RecordSource drain loop). Call after all add_* and config
  // calls.
  void bind();

  // bind() plus a recorder subscription — the push-based hookup.
  void attach(tlm::TransactionRecorder& recorder);

  // Bulk ingest for pull-based sources; requires bind() or attach() first.
  // Spans feed the engine exactly like subscribed delivery does.
  void on_records(const tlm::TransactionRecord* begin,
                  const tlm::TransactionRecord* end);

  // Trace-log writer serializing the ingested stream (--record-out); must
  // outlive the environment. Call before bind()/attach(). nullptr disables.
  void set_record_writer(support::tracelog::TraceWriter* writer) {
    record_writer_ = writer;
  }

  void finish();

  Report report() const;
  bool all_ok() const;

  // Metrics registry backing the evaluation engine; created by attach()
  // (nullptr before). Callers may add their own gauges (lane 0) before
  // taking a snapshot.
  support::MetricsRegistry* metrics() { return metrics_.get(); }
  // Deterministic merged view; empty when never attached.
  support::MetricsSnapshot metrics_snapshot() const;

  const std::vector<std::unique_ptr<checker::TlmCheckerWrapper>>& wrappers() const {
    return wrappers_;
  }

 private:
  void on_record(const tlm::TransactionRecord& record);
  // Verdict of the live wrapper/checker named `name`; `found` reports
  // whether one exists (derived rows are not consulted).
  bool live_ok(const std::string& name, bool& found) const;

  psl::TimeNs clock_period_ns_;
  EngineConfig engine_config_;
  size_t witness_depth_ = 8;
  checker::CheckerOptions checker_options_;
  support::TraceSink* trace_ = nullptr;
  support::tracelog::TraceWriter* record_writer_ = nullptr;
  std::ostream* metrics_out_ = nullptr;
  size_t metrics_interval_ = 0;
  support::CoverageTable coverage_;
  const analysis::PrunePlan* prune_plan_ = nullptr;
  bool prune_audit_ = false;
  std::vector<analysis::PruneDecision> pruned_;   // never spawned
  std::vector<analysis::PruneDecision> audited_;  // spawned for cross-check
  std::vector<std::unique_ptr<checker::TlmCheckerWrapper>> wrappers_;
  std::vector<std::unique_ptr<checker::PropertyChecker>> checkers_;
  std::unique_ptr<support::MetricsRegistry> metrics_;  // built by attach()
  std::unique_ptr<EvalEngine> engine_;                 // built by attach()
};

}  // namespace repro::abv

#endif  // REPRO_ABV_TLM_ENV_H_
