// Runtime side of the prune plan (analysis/prune.h): derived report rows
// for properties that never spawned a checker, and the PRN003 cross-check
// that audits derived verdicts against a real run when analysis=error.
//
// The verdict contract the helpers implement (DESIGN.md §14):
//   - an elided-true property reports zero failures (it can never fail);
//   - an elided-false property (aggressive mode) reports one derived
//     failure — it fails at every activation;
//   - a subsumed property inherits "ok" from its subsumer; when the
//     subsumer failed the row is reported as derived-inconclusive
//     (uncompleted = 1), never as a pass masking a failure — the overall
//     run verdict is already false through the subsumer.
#ifndef REPRO_ABV_PRUNE_RUNTIME_H_
#define REPRO_ABV_PRUNE_RUNTIME_H_

#include <cstdint>
#include <vector>

#include "abv/report.h"
#include "analysis/diagnostic.h"
#include "analysis/prune.h"

namespace repro::abv {

// Builds the derived report row for a pruned (never spawned) property.
// `subsumer_found` / `subsumer_ok` describe the subsuming property's live
// verdict; both are ignored for elided rows.
PropertyReport derived_report_row(const analysis::PruneDecision& decision,
                                  bool subsumer_found, bool subsumer_ok);

// Compares one derived verdict against the checker that actually ran
// (cross-check mode) and appends a PRN003 error per mismatch.
void cross_check_decision(const analysis::PruneDecision& decision,
                          uint64_t activations, uint64_t failures,
                          bool subsumer_ok,
                          std::vector<analysis::Diagnostic>& out);

}  // namespace repro::abv

#endif  // REPRO_ABV_PRUNE_RUNTIME_H_
