// RTL dynamic ABV environment.
//
// Binds PropertyCheckers (synthesized from RTL properties) to a clock and a
// set of design signals. At each clock edge selected by a property's clock
// context the environment samples the design — after its delta cycles have
// settled, so registered outputs written at the edge are visible — and
// feeds the evaluation event to the checker.
//
// Sampling follows the same arena discipline as the TLM engine: the signal
// bag is read ONCE per event into a reusable tlm::Snapshot (one getter call
// per signal, not one per signal per checker), and every checker selected
// at that edge evaluates against the same read-only ObservablesContext.
// With a single synchronous consumer the snapshot buffer is recycled in
// place — the degenerate one-reader case of support::BatchArena.
#ifndef REPRO_ABV_RTL_ENV_H_
#define REPRO_ABV_RTL_ENV_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "abv/prune_runtime.h"
#include "abv/report.h"
#include "analysis/prune.h"
#include "checker/checker.h"
#include "psl/ast.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"
#include "tlm/transaction.h"

namespace repro::support::tracelog {
class TraceWriter;
}  // namespace repro::support::tracelog

namespace repro::abv {

// Named read accessors into the design under verification. RTL models
// register their observable signals here; the environment samples them into
// per-event snapshots (it remains a ValueContext for direct, unsampled
// evaluation in tests and tools).
class SignalBag : public checker::ValueContext {
 public:
  void add(const std::string& name, std::function<uint64_t()> getter) {
    getters_[name] = std::move(getter);
    keys_cache_.reset();
  }
  void add(const std::string& name, const sim::Signal<uint64_t>& signal) {
    add(name, [&signal] { return signal.read(); });
  }
  void add(const std::string& name, const sim::Signal<bool>& signal) {
    add(name, [&signal] { return signal.read() ? uint64_t{1} : uint64_t{0}; });
  }

  uint64_t value(std::string_view name) const override;
  bool has(std::string_view name) const override;

  // Shared key table over the registered names (map order, so the index
  // layout is deterministic); built lazily, invalidated by add(). Feed it
  // to tlm::Snapshot so all snapshots of this bag share one allocation.
  std::shared_ptr<const tlm::Snapshot::Keys> keys() const;

  // Reads every getter once into `snapshot`, which must have been built
  // over this bag's keys().
  void sample_into(tlm::Snapshot& snapshot) const;

 private:
  std::map<std::string, std::function<uint64_t()>, std::less<>> getters_;
  mutable std::shared_ptr<const tlm::Snapshot::Keys> keys_cache_;
};

class RtlAbvEnv {
 public:
  RtlAbvEnv(sim::Kernel& kernel, SignalBag& signals)
      : kernel_(kernel), signals_(signals) {}

  // Checker backend and failure-log cap applied to properties registered
  // *after* this call; call before add_property.
  void set_checker_options(checker::CheckerOptions options) {
    checker_options_ = options;
  }
  const checker::CheckerOptions& checker_options() const {
    return checker_options_;
  }

  // Applies a prune plan to properties registered *after* this call; same
  // contract as TlmAbvEnv::set_prune_plan (elided/subsumed properties never
  // spawn checkers, live ones may compile a specialized formula, cross_check
  // audits derived verdicts via prune_cross_check()).
  void set_prune_plan(const analysis::PrunePlan* plan,
                      bool cross_check = false) {
    prune_plan_ = plan;
    prune_audit_ = cross_check;
  }

  // PRN003 error diagnostics for derived verdicts the audit run contradicts;
  // call after finish().
  std::vector<analysis::Diagnostic> prune_cross_check() const;

  // Synthesizes a checker for `property` and registers it. Properties with
  // kClkPos (or the basic) context are evaluated at rising edges, kClkNeg at
  // falling edges, kClk at both.
  void add_property(const psl::RtlProperty& property);

  // Attaches the environment to the DUV clock. Must be called after all
  // add_property calls and before the simulation runs.
  void attach(sim::Clock& clock);

  // One settled clock-edge evaluation point: dispatches `values` to every
  // checker selected at that edge kind. attach()'s sampling callbacks land
  // here; offline replay (support::tracelog) calls it directly with recorded
  // snapshots, no clock or live design needed.
  void on_sample(psl::TimeNs now, bool rising, const tlm::Snapshot& values);

  // Trace-log writer serializing the sampled edge stream (--record-out) as
  // one record per evaluation point: start = end = edge time, address 0 for
  // rising / 1 for falling, observables = the settled snapshot. Must outlive
  // the environment; nullptr disables.
  void set_record_writer(support::tracelog::TraceWriter* writer) {
    record_writer_ = writer;
  }

  // End of simulation: resolve outstanding obligations.
  void finish();

  Report report() const;
  bool all_ok() const;
  const std::vector<std::unique_ptr<checker::PropertyChecker>>& checkers() const {
    return checkers_;
  }

 private:
  void sample(bool rising);
  bool live_ok(const std::string& name, bool& found) const;

  sim::Kernel& kernel_;
  SignalBag& signals_;
  support::tracelog::TraceWriter* record_writer_ = nullptr;
  checker::CheckerOptions checker_options_;
  const analysis::PrunePlan* prune_plan_ = nullptr;
  bool prune_audit_ = false;
  std::vector<analysis::PruneDecision> pruned_;   // never spawned
  std::vector<analysis::PruneDecision> audited_;  // spawned for cross-check
  std::vector<std::unique_ptr<checker::PropertyChecker>> checkers_;
  std::vector<psl::ClockContext::Kind> kinds_;
  // Reusable per-event snapshot buffer, built over signals_.keys() at
  // attach(); refilled (recycled) at every sampled edge.
  tlm::Snapshot sample_buffer_;
  bool any_pos_ = false;
  bool any_neg_ = false;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_RTL_ENV_H_
