#include "abv/rtl_env.h"

#include <cassert>

namespace repro::abv {

uint64_t SignalBag::value(std::string_view name) const {
  auto it = getters_.find(name);
  assert(it != getters_.end() && "signal not registered in SignalBag");
  return it->second();
}

bool SignalBag::has(std::string_view name) const {
  return getters_.find(name) != getters_.end();
}

void RtlAbvEnv::add_property(const psl::RtlProperty& property) {
  checkers_.push_back(std::make_unique<checker::PropertyChecker>(
      property.name, property.formula, property.context.guard,
      checker_options_));
  kinds_.push_back(property.context.kind);
  switch (property.context.kind) {
    case psl::ClockContext::Kind::kTrue:
    case psl::ClockContext::Kind::kClkPos:
      any_pos_ = true;
      break;
    case psl::ClockContext::Kind::kClkNeg:
      any_neg_ = true;
      break;
    case psl::ClockContext::Kind::kClk:
      any_pos_ = true;
      any_neg_ = true;
      break;
  }
}

void RtlAbvEnv::attach(sim::Clock& clock) {
  // Sample after the design settles: edge callbacks run in the evaluate
  // phase; signal writes commit in the update phase; watcher cascades run in
  // the following deltas. Three nested deltas cover the register-style
  // single-stage processes of the bundled models.
  if (any_pos_) {
    clock.on_posedge([this] {
      kernel_.schedule_delta([this] {
        kernel_.schedule_delta([this] {
          kernel_.schedule_delta([this] { sample(/*rising=*/true); });
        });
      });
    });
  }
  if (any_neg_) {
    clock.on_negedge([this] {
      kernel_.schedule_delta([this] {
        kernel_.schedule_delta([this] {
          kernel_.schedule_delta([this] { sample(/*rising=*/false); });
        });
      });
    });
  }
}

void RtlAbvEnv::sample(bool rising) {
  const psl::TimeNs now = kernel_.now();
  for (size_t i = 0; i < checkers_.size(); ++i) {
    const psl::ClockContext::Kind kind = kinds_[i];
    const bool wants =
        kind == psl::ClockContext::Kind::kClk ||
        (rising && (kind == psl::ClockContext::Kind::kClkPos ||
                    kind == psl::ClockContext::Kind::kTrue)) ||
        (!rising && kind == psl::ClockContext::Kind::kClkNeg);
    if (wants) checkers_[i]->on_event(now, signals_);
  }
}

void RtlAbvEnv::finish() {
  for (auto& checker : checkers_) checker->finish();
}

Report RtlAbvEnv::report() const {
  Report report;
  for (const auto& checker : checkers_) report.add(*checker);
  return report;
}

bool RtlAbvEnv::all_ok() const {
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  return true;
}

}  // namespace repro::abv
