#include "abv/rtl_env.h"

#include <cassert>

#include "abv/snapshot_context.h"
#include "support/tracelog.h"

namespace repro::abv {

uint64_t SignalBag::value(std::string_view name) const {
  auto it = getters_.find(name);
  assert(it != getters_.end() && "signal not registered in SignalBag");
  return it->second();
}

bool SignalBag::has(std::string_view name) const {
  return getters_.find(name) != getters_.end();
}

std::shared_ptr<const tlm::Snapshot::Keys> SignalBag::keys() const {
  if (keys_cache_ == nullptr) {
    auto keys = std::make_shared<tlm::Snapshot::Keys>();
    keys->reserve(getters_.size());
    for (const auto& [name, getter] : getters_) keys->push_back(name);
    keys_cache_ = std::move(keys);
  }
  return keys_cache_;
}

void SignalBag::sample_into(tlm::Snapshot& snapshot) const {
  // The snapshot was built over keys() (map order), so index i is the i-th
  // getter: one pass, no name lookups.
  size_t i = 0;
  for (const auto& [name, getter] : getters_) snapshot.set_at(i++, getter());
}

void RtlAbvEnv::add_property(const psl::RtlProperty& property) {
  psl::ExprPtr formula = property.formula;
  psl::ExprPtr fold;
  if (prune_plan_ != nullptr) {
    if (const analysis::PruneDecision* d = prune_plan_->find(property.name)) {
      if (d->action != analysis::PruneAction::kLive) {
        if (!prune_audit_) {
          pruned_.push_back(*d);
          return;
        }
        audited_.push_back(*d);
      } else {
        if (d->specialized != nullptr) formula = d->specialized;
        fold = d->program_fold;
      }
    }
  }
  checkers_.push_back(std::make_unique<checker::PropertyChecker>(
      property.name, formula, property.context.guard, checker_options_));
  // Symbolic dead-node fold (see tlm_env.cc): program-level swap only.
  if (fold != nullptr) checkers_.back()->set_program_formula(fold);
  kinds_.push_back(property.context.kind);
  switch (property.context.kind) {
    case psl::ClockContext::Kind::kTrue:
    case psl::ClockContext::Kind::kClkPos:
      any_pos_ = true;
      break;
    case psl::ClockContext::Kind::kClkNeg:
      any_neg_ = true;
      break;
    case psl::ClockContext::Kind::kClk:
      any_pos_ = true;
      any_neg_ = true;
      break;
  }
}

void RtlAbvEnv::attach(sim::Clock& clock) {
  // One value vector reused for every sampled edge; the key table is shared
  // with the bag (single allocation for the whole run).
  sample_buffer_ = tlm::Snapshot(signals_.keys());
  // Sample after the design settles: edge callbacks run in the evaluate
  // phase; signal writes commit in the update phase; watcher cascades run in
  // the following deltas. Three nested deltas cover the register-style
  // single-stage processes of the bundled models.
  //
  // A record writer forces both edges: the log then carries the full edge
  // stream whatever the current property mix, and the extra samples are
  // invisible to checkers (on_sample filters by edge kind as always).
  if (any_pos_ || record_writer_ != nullptr) {
    clock.on_posedge([this] {
      kernel_.schedule_delta([this] {
        kernel_.schedule_delta([this] {
          kernel_.schedule_delta([this] { sample(/*rising=*/true); });
        });
      });
    });
  }
  if (any_neg_ || record_writer_ != nullptr) {
    clock.on_negedge([this] {
      kernel_.schedule_delta([this] {
        kernel_.schedule_delta([this] {
          kernel_.schedule_delta([this] { sample(/*rising=*/false); });
        });
      });
    });
  }
}

void RtlAbvEnv::sample(bool rising) {
  const psl::TimeNs now = kernel_.now();
  // Read the design once, share the snapshot with every checker selected at
  // this edge (was: each checker pulled every signal through the bag's
  // getters independently).
  signals_.sample_into(sample_buffer_);
  if (record_writer_ != nullptr) {
    // Each evaluation point becomes one record; replay feeds the same
    // (time, edge, snapshot) triples back through on_sample.
    tlm::TransactionRecord record;
    record.start = now;
    record.end = now;
    record.command = tlm::Command::kRead;
    record.address = rising ? 0 : 1;
    record.observables = sample_buffer_;
    record_writer_->append(record);
  }
  on_sample(now, rising, sample_buffer_);
}

void RtlAbvEnv::on_sample(psl::TimeNs now, bool rising,
                          const tlm::Snapshot& values) {
  const ObservablesContext ctx(values);
  for (size_t i = 0; i < checkers_.size(); ++i) {
    const psl::ClockContext::Kind kind = kinds_[i];
    const bool wants =
        kind == psl::ClockContext::Kind::kClk ||
        (rising && (kind == psl::ClockContext::Kind::kClkPos ||
                    kind == psl::ClockContext::Kind::kTrue)) ||
        (!rising && kind == psl::ClockContext::Kind::kClkNeg);
    if (wants) checkers_[i]->on_event(now, ctx);
  }
}

void RtlAbvEnv::finish() {
  for (auto& checker : checkers_) checker->finish();
}

bool RtlAbvEnv::live_ok(const std::string& name, bool& found) const {
  for (const auto& checker : checkers_) {
    if (checker->name() == name) {
      found = true;
      return checker->ok();
    }
  }
  found = false;
  return true;
}

Report RtlAbvEnv::report() const {
  Report report;
  for (const auto& checker : checkers_) report.add(*checker);
  for (const auto& d : pruned_) {
    bool found = false;
    bool subsumer_ok = true;
    if (d.action == analysis::PruneAction::kSubsumed) {
      subsumer_ok = live_ok(d.subsumed_by, found);
    }
    report.add_derived(derived_report_row(d, found, subsumer_ok));
  }
  return report;
}

std::vector<analysis::Diagnostic> RtlAbvEnv::prune_cross_check() const {
  std::vector<analysis::Diagnostic> out;
  for (const auto& d : audited_) {
    uint64_t activations = 0;
    uint64_t failures = 0;
    bool have = false;
    for (const auto& checker : checkers_) {
      if (checker->name() == d.name) {
        activations = checker->stats().activations;
        failures = checker->stats().failures;
        have = true;
      }
    }
    if (!have) continue;
    bool found = false;
    const bool subsumer_ok = d.action == analysis::PruneAction::kSubsumed
                                 ? live_ok(d.subsumed_by, found)
                                 : true;
    cross_check_decision(d, activations, failures, subsumer_ok, out);
  }
  return out;
}

bool RtlAbvEnv::all_ok() const {
  for (const auto& checker : checkers_) {
    if (!checker->ok()) return false;
  }
  for (const auto& d : pruned_) {
    if (d.action == analysis::PruneAction::kElide && !d.static_verdict) {
      return false;
    }
  }
  return true;
}

}  // namespace repro::abv
