// Aggregated verification report across the checkers of one simulation run.
#ifndef REPRO_ABV_REPORT_H_
#define REPRO_ABV_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/wrapper.h"

namespace repro::abv {

struct PropertyReport {
  std::string name;
  uint64_t events = 0;
  uint64_t activations = 0;
  uint64_t holds = 0;
  uint64_t failures = 0;
  uint64_t uncompleted = 0;
  uint64_t steps = 0;

  bool ok() const { return failures == 0; }
};

class Report {
 public:
  void add(const checker::PropertyChecker& checker);
  void add(const checker::TlmCheckerWrapper& wrapper);

  const std::vector<PropertyReport>& properties() const { return properties_; }

  // Reorders the rows by property name (stable). Rows are collected in
  // registration order, which is already independent of the evaluation
  // engine's worker count; sorting gives a canonical order for diffing
  // reports across runs that registered properties differently.
  void sort_by_name();

  bool all_ok() const;
  uint64_t total_failures() const;
  uint64_t total_activations() const;

  // Human-readable table, one row per property.
  void print(std::ostream& os) const;

 private:
  std::vector<PropertyReport> properties_;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_REPORT_H_
