// Aggregated verification report across the checkers of one simulation run.
#ifndef REPRO_ABV_REPORT_H_
#define REPRO_ABV_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/wrapper.h"
#include "support/metrics.h"

namespace repro::abv {

struct PropertyReport {
  std::string name;
  uint64_t events = 0;
  uint64_t activations = 0;
  uint64_t holds = 0;
  uint64_t failures = 0;
  uint64_t uncompleted = 0;
  uint64_t steps = 0;
  // Coverage & vacuity telemetry (the schema_version 2 "coverage" section;
  // see support/coverage.h for the counter semantics).
  uint64_t trivial = 0;
  uint64_t real_passes = 0;
  uint64_t vacuous_passes = 0;
  uint64_t missed_deadlines = 0;
  uint64_t node_visits = 0;
  // Activation-to-verdict sim-time latency, one sample per retirement.
  support::Histogram latency_ns;
  // Logged violations (capped at the checker), with the failure-witness ring
  // captured at verdict time for wrapper-checked properties.
  std::vector<checker::Failure> failure_log;
  // Prune-plan accounting: empty for live rows; "elide" / "subsumed" for
  // rows whose verdict was derived instead of simulated. `derived_from`
  // names the evidence: "static" for elided rows, the subsuming property's
  // name for subsumed rows. Derived rows carry zero activity counters; the
  // verdict contract (ok(), all_ok) is what pruning preserves.
  std::string prune;
  std::string derived_from;

  bool ok() const { return failures == 0; }
  // The run produced no real evidence about this property: it never failed
  // and never passed with its antecedent fired.
  bool dynamically_vacuous() const {
    return failures == 0 && real_passes == 0;
  }
};

// Per-property difference between two reports (other minus this). Only
// fields that can legitimately differ between equivalent runs are counted;
// a property present on one side only contributes its full (signed) counts.
struct PropertyDelta {
  std::string name;
  int64_t events = 0;
  int64_t activations = 0;
  int64_t holds = 0;
  int64_t failures = 0;
  int64_t uncompleted = 0;
  int64_t steps = 0;
  int64_t real_passes = 0;
  int64_t vacuous_passes = 0;
  int64_t missed_deadlines = 0;

  bool zero() const {
    return events == 0 && activations == 0 && holds == 0 && failures == 0 &&
           uncompleted == 0 && steps == 0 && real_passes == 0 &&
           vacuous_passes == 0 && missed_deadlines == 0;
  }
  // e.g. "p1: holds -2, failures +2".
  std::string to_string() const;
};

// Run-variant data attached to the JSON report under "timing". Everything
// outside this section is deterministic for a given stimulus, so reports
// from runs at different worker counts are byte-identical when the timing
// section is omitted.
struct ReportTiming {
  double wall_seconds = 0.0;
  size_t jobs = 1;
  uint64_t records = 0;  // transaction records dispatched
  support::MetricsSnapshot metrics;
};

class Report {
 public:
  void add(const checker::PropertyChecker& checker);
  void add(const checker::TlmCheckerWrapper& wrapper);
  // Adds a pre-built row for a property that never spawned a checker (the
  // prune plan derived its verdict); `row.prune` must be set.
  void add_derived(PropertyReport row);

  const std::vector<PropertyReport>& properties() const { return properties_; }

  // Reorders the rows by property name (stable). Rows are collected in
  // registration order, which is already independent of the evaluation
  // engine's worker count; sorting gives a canonical order for diffing
  // reports across runs that registered properties differently.
  void sort_by_name();

  // Non-zero per-property deltas (other minus this), matched by name.
  // Empty result == the two reports agree on every counted field.
  std::vector<PropertyDelta> diff(const Report& other) const;

  bool all_ok() const;
  uint64_t total_failures() const;
  uint64_t total_activations() const;

  // Human-readable table, one row per property, plus a totals row. Columns
  // are sized to the longest value so long property names stay aligned.
  void print(std::ostream& os) const;

  // Machine-readable report (stable schema, schema_version 2). Version 2
  // adds a top-level "coverage" array (per-property vacuity split, missed
  // deadlines, evaluation cost, latency histogram); every schema_version 1
  // key is unchanged, so v1 consumers that ignore unknown keys keep
  // working. With `timing == nullptr` the output depends only on the
  // verification results, not on worker count or wall time.
  void write_json(std::ostream& os, const ReportTiming* timing = nullptr) const;

 private:
  std::vector<PropertyReport> properties_;
};

}  // namespace repro::abv

#endif  // REPRO_ABV_REPORT_H_
