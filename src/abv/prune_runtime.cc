#include "abv/prune_runtime.h"

namespace repro::abv {

PropertyReport derived_report_row(const analysis::PruneDecision& decision,
                                  bool subsumer_found, bool subsumer_ok) {
  PropertyReport row;
  row.name = decision.name;
  if (decision.action == analysis::PruneAction::kElide) {
    row.prune = "elide";
    row.derived_from = "static";
    // Elided-true: zero failures matches any run of a never-failing
    // checker. Elided-false: one derived failure stands for "fails at
    // every activation" (aggressive mode assumes at least one activation).
    if (!decision.static_verdict) row.failures = 1;
  } else {
    row.prune = "subsumed";
    row.derived_from = decision.subsumed_by;
    // Contrapositive of the subsumption proof: a subsumed failure implies a
    // subsumer failure. Subsumer ok => subsumed ok; subsumer failed => this
    // row is inconclusive (the run verdict is already false through the
    // subsumer, so no failure is ever masked).
    if (!subsumer_found || !subsumer_ok) row.uncompleted = 1;
  }
  return row;
}

void cross_check_decision(const analysis::PruneDecision& decision,
                          uint64_t activations, uint64_t failures,
                          bool subsumer_ok,
                          std::vector<analysis::Diagnostic>& out) {
  auto mismatch = [&](const std::string& message) {
    analysis::Diagnostic d;
    d.code = "PRN003";
    d.severity = analysis::Severity::kError;
    d.property = decision.name;
    d.check = "prune";
    d.message = message;
    out.push_back(std::move(d));
  };
  switch (decision.action) {
    case analysis::PruneAction::kElide:
      if (decision.static_verdict && failures > 0) {
        mismatch("derived verdict 'holds' contradicted by " +
                 std::to_string(failures) + " audit-run failure(s)");
      }
      if (!decision.static_verdict && activations > 0 && failures == 0) {
        mismatch("derived verdict 'fails' contradicted by an audit run with " +
                 std::to_string(activations) + " activation(s) and no failure");
      }
      break;
    case analysis::PruneAction::kSubsumed:
      if (failures > 0 && subsumer_ok) {
        mismatch("subsumed property failed in the audit run while subsumer '" +
                 decision.subsumed_by + "' held");
      }
      break;
    case analysis::PruneAction::kLive:
      break;
  }
}

}  // namespace repro::abv
