#include "abv/eval_engine.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <string>
#include <utility>

#include "abv/snapshot_context.h"
#include "support/tracelog.h"

namespace repro::abv {

namespace {

// Monotonic wall clock for busy-time metrics; only differences are used.
uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

EvalEngine::Options clamped(EvalEngine::Options options) {
  options.config.jobs = std::max<size_t>(1, options.config.jobs);
  options.config.batch_size = std::max<size_t>(1, options.config.batch_size);
  options.config.max_inflight_batches =
      std::max<size_t>(1, options.config.max_inflight_batches);
  return options;
}

}  // namespace

EvalEngine::EvalEngine(Options options)
    : options_(clamped(options)),
      arena_(options_.config.batch_size),
      batch_ns_(support::exponential_bounds(1 << 10, 18))  // 1 us .. ~268 ms
{
  if (options_.metrics != nullptr) {
    m_records_ = &options_.metrics->counter("engine.records");
    m_batches_ = &options_.metrics->counter("engine.batches");
    m_shard_records_ = &options_.metrics->counter("engine.shard_records");
    m_shard_busy_ns_ = &options_.metrics->counter("engine.shard_busy_ns");
    m_backpressure_ns_ = &options_.metrics->counter("engine.backpressure_ns");
    m_queue_depth_ = &options_.metrics->gauge("engine.queue_depth");
    m_inflight_peak_ = &options_.metrics->gauge("engine.inflight_peak");
    // Arena and lockstep accounting are published at finish(); registering
    // the names up front keeps the snapshot key set identical across jobs
    // and vectorization settings.
    options_.metrics->counter("engine.arena_records");
    options_.metrics->counter("engine.arena_segments");
    options_.metrics->counter("engine.arena_recycled");
    options_.metrics->counter("engine.vector_batches");
    options_.metrics->counter("engine.vector_lanes_filled");
  }
  if (options_.trace != nullptr) {
    options_.trace->name_thread(0, "producer");
  }
}

EvalEngine::~EvalEngine() { stop_workers(); }

void EvalEngine::add(checker::TlmCheckerWrapper* wrapper) {
  // Serial mode evaluates on the dispatch lane; ensure_sharded() reassigns
  // the wrapper to its shard's lane.
  wrapper->set_trace(options_.trace, 0);
  wrappers_.push_back(wrapper);
}

void EvalEngine::add(checker::PropertyChecker* checker) {
  checkers_.push_back(checker);
}

uint64_t EvalEngine::tick() const {
  return options_.trace != nullptr ? options_.trace->now_ns() : mono_ns();
}

void EvalEngine::ensure_sharded() {
  if (sharded_) return;
  sharded_ = true;
  const size_t units = wrappers_.size() + checkers_.size();
  const size_t count =
      std::max<size_t>(1, std::min(options_.config.jobs, units));
  for (size_t s = 0; s < count; ++s) shards_.emplace_back();
  // Round-robin in registration order balances heterogeneous property costs
  // across shards and is deterministic.
  for (size_t i = 0; i < wrappers_.size(); ++i) {
    shards_[i % count].wrappers.push_back(wrappers_[i]);
    wrappers_[i]->set_trace(options_.trace, static_cast<uint32_t>(i % count) + 1);
  }
  for (size_t i = 0; i < checkers_.size(); ++i) {
    shards_[(wrappers_.size() + i) % count].checkers.push_back(checkers_[i]);
  }
  for (size_t s = 0; s < count; ++s) {
    if (options_.trace != nullptr) {
      options_.trace->name_thread(static_cast<uint32_t>(s) + 1,
                                  "shard-" + std::to_string(s));
    }
    shards_[s].thread = std::thread([this, s] { shard_loop(s); });
  }
  workers_running_ = true;
}

void EvalEngine::shard_loop(size_t s) {
  Shard& shard = shards_[s];
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop requested and fully drained
      batch = shard.queue.front();
      shard.queue.pop_front();
    }
    process_batch(shard, s, batch);
  }
}

void EvalEngine::process_batch(Shard& shard, size_t s, Batch* batch) {
  const bool instrumented =
      options_.trace != nullptr || options_.metrics != nullptr;
  const uint64_t t0 = instrumented ? tick() : 0;
  for (const tlm::TransactionRecord& record : batch->span) {
    const ObservablesContext ctx(record.observables);
    for (checker::TlmCheckerWrapper* w : shard.wrappers) {
      w->on_transaction(record.end, ctx);
    }
    for (checker::PropertyChecker* c : shard.checkers) {
      c->on_event(record.end, ctx);
    }
  }
  // Everything needed after release is copied out first: once this shard
  // releases (and some shard is the last), the ticket and the arena segment
  // may be recycled for a later batch.
  const size_t records = batch->span.size();
  const uint64_t seq = batch->seq;
  const uint64_t seal_ns = batch->seal_ns;
  if (instrumented) {
    const uint64_t t1 = tick();
    const uint64_t busy = t1 > t0 ? t1 - t0 : 0;
    const size_t lane = s + 1;
    if (m_shard_busy_ns_ != nullptr) m_shard_busy_ns_->add(lane, busy);
    if (m_shard_records_ != nullptr) m_shard_records_->add(lane, records);
    if (options_.trace != nullptr) {
      options_.trace->span(static_cast<uint32_t>(s) + 1, "shard_batch", t0,
                           busy, {{"records", records}, {"seq", seq}});
    }
  }
  if (arena_.release(batch->span)) {
    // Last reader: the batch is fully drained.
    const uint64_t drained = instrumented ? tick() : 0;
    std::lock_guard<std::mutex> lock(mu_);
    if (instrumented) batch_ns_.record(drained > seal_ns ? drained - seal_ns : 0);
    free_tickets_.push_back(batch);
    --inflight_;
    drained_cv_.notify_all();
  }
}

void EvalEngine::append_sharded(tlm::TransactionRecord&& record) {
  ensure_sharded();
  if (options_.trace != nullptr && arena_.pending() == 0) {
    fill_start_ns_ = options_.trace->now_ns();
  }
  arena_.append(std::move(record));
  if (arena_.pending() >= options_.config.batch_size) seal_and_dispatch();
}

void EvalEngine::seal_and_dispatch() {
  const size_t records = arena_.pending();
  if (records == 0) return;
  // Backpressure: bound sealed-but-undrained batches.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (inflight_ >= options_.config.max_inflight_batches) {
      const uint64_t w0 = tick();
      drained_cv_.wait(lock, [&] {
        return inflight_ < options_.config.max_inflight_batches;
      });
      if (m_backpressure_ns_ != nullptr) {
        const uint64_t w1 = tick();
        m_backpressure_ns_->add(0, w1 > w0 ? w1 - w0 : 0);
      }
    }
  }
  const RecordArena::Span span = arena_.seal(
      static_cast<uint32_t>(shards_.size()));
  if (options_.record_writer != nullptr) {
    // Producer thread, right after the seal: the log's frames are exactly
    // the sealed segments, in seal (= ingest) order.
    options_.record_writer->write_span(span.begin(), span.end());
  }
  Batch* batch = nullptr;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_tickets_.empty()) {
      batch = free_tickets_.back();
      free_tickets_.pop_back();
    } else {
      tickets_.push_back(std::make_unique<Batch>());
      batch = tickets_.back().get();
    }
    seq = next_seq_++;
    ++inflight_;
    inflight_peak_ = std::max(inflight_peak_, inflight_);
    if (m_inflight_peak_ != nullptr) m_inflight_peak_->set(0, inflight_);
  }
  const uint64_t now = tick();
  batch->span = span;
  batch->seq = seq;
  batch->seal_ns = now;
  if (m_batches_ != nullptr) m_batches_->add(0, 1);
  if (m_queue_depth_ != nullptr) m_queue_depth_->set(0, records);
  if (options_.trace != nullptr) {
    // One fill span per batch on the dispatch lane, first append -> seal.
    // Fill periods are sequential on the producer, so these never overlap;
    // a shard_batch span with the same seq always starts after the fill
    // span ends (causality checked by tools/validate_trace.py).
    options_.trace->span(0, "batch_fill", fill_start_ns_,
                         now > fill_start_ns_ ? now - fill_start_ns_ : 0,
                         {{"records", records},
                          {"seq", seq},
                          {"shards", shards_.size()}});
  }
  // The ticket fields written above happen-before every consumer via the
  // shard queue mutexes.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.queue.push_back(batch);
    shard.cv.notify_one();
  }
}

void EvalEngine::on_record(const tlm::TransactionRecord& record) {
  if (m_records_ != nullptr) m_records_->add(0, 1);
  if (options_.config.jobs == 1) {
    // Exact historical serial path: evaluate synchronously, no buffering.
    if (options_.record_writer != nullptr) options_.record_writer->append(record);
    const ObservablesContext ctx(record.observables);
    for (checker::TlmCheckerWrapper* w : wrappers_) {
      w->on_transaction(record.end, ctx);
    }
    for (checker::PropertyChecker* c : checkers_) c->on_event(record.end, ctx);
    count_record(record.end);
    return;
  }
  const uint64_t end = record.end;
  append_sharded(tlm::TransactionRecord(record));  // the one per-record copy
  count_record(end);
}

void EvalEngine::on_record(tlm::TransactionRecord&& record) {
  if (options_.config.jobs != 1) {
    if (m_records_ != nullptr) m_records_->add(0, 1);
    const uint64_t end = record.end;
    append_sharded(std::move(record));  // zero-copy ingest
    count_record(end);
    return;
  }
  on_record(static_cast<const tlm::TransactionRecord&>(record));
}

void EvalEngine::on_records(const tlm::TransactionRecord* begin,
                            const tlm::TransactionRecord* end) {
  for (const tlm::TransactionRecord* r = begin; r != end; ++r) on_record(*r);
}

void EvalEngine::stop_workers() {
  if (!workers_running_) return;
  workers_running_ = false;
  for (Shard& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.stop = true;
    }
    shard.cv.notify_all();
  }
  // Workers drain their queues before exiting, so joining here never
  // abandons a sealed batch.
  for (Shard& shard : shards_) {
    if (shard.thread.joinable()) shard.thread.join();
  }
}

void EvalEngine::publish_metrics() {
  if (options_.metrics == nullptr) return;
  options_.metrics->merge_histogram("engine.batch_ns", batch_ns_);
  const RecordArena::Stats arena = arena_.stats();
  options_.metrics->counter("engine.arena_records").add(0, arena.records);
  options_.metrics->counter("engine.arena_segments")
      .add(0, arena.segments_allocated);
  options_.metrics->counter("engine.arena_recycled")
      .add(0, arena.segments_recycled);
  if (m_inflight_peak_ != nullptr) m_inflight_peak_->set(0, inflight_peak_);
  support::MetricsRegistry::Gauge& pool_hw =
      options_.metrics->gauge("wrapper.pool_capacity");
  support::MetricsRegistry::Gauge& table_peak =
      options_.metrics->gauge("wrapper.table_peak");
  uint64_t program_nodes = 0;
  uint64_t compiled = 0;
  uint64_t vector_batches = 0;
  uint64_t vector_lanes = 0;
  for (checker::TlmCheckerWrapper* w : wrappers_) {
    // Serial, in registration order: the merged histogram and the gauge
    // high-water marks are deterministic for a given transaction stream.
    options_.metrics->merge_histogram("wrapper.latency_ns",
                                      w->latency_histogram());
    pool_hw.set(0, w->stats().pool_capacity);
    table_peak.set(0, w->stats().table_peak);
    if (w->program() != nullptr) {
      ++compiled;
      program_nodes += w->program()->size();
    }
    vector_batches += w->stats().vector_batches;
    vector_lanes += w->stats().vector_lanes_filled;
  }
  for (checker::PropertyChecker* c : checkers_) {
    vector_batches += c->stats().vector_batches;
    vector_lanes += c->stats().vector_lanes_filled;
  }
  options_.metrics->gauge("checker.compiled_wrappers").set(0, compiled);
  options_.metrics->gauge("checker.program_nodes").set(0, program_nodes);
  options_.metrics->counter("engine.vector_batches").add(0, vector_batches);
  options_.metrics->counter("engine.vector_lanes_filled")
      .add(0, vector_lanes);
}

void EvalEngine::finish() {
  if (sharded_) {
    seal_and_dispatch();  // partial tail; no-op when empty (0-record flush)
    {
      std::unique_lock<std::mutex> lock(mu_);
      drained_cv_.wait(lock, [&] { return inflight_ == 0; });
    }
    stop_workers();
  }
  const uint64_t t0 = options_.trace != nullptr ? options_.trace->now_ns() : 0;
  for (checker::TlmCheckerWrapper* w : wrappers_) w->finish();
  for (checker::PropertyChecker* c : checkers_) c->finish();
  if (options_.trace != nullptr) {
    options_.trace->span_end(0, "retire", t0,
                             {{"wrappers", wrappers_.size()},
                              {"checkers", checkers_.size()}});
  }
  publish_metrics();
  // Final snapshot line: every shard has joined and every property retired,
  // so this one is exact (identical across jobs and backends).
  if (options_.metrics_out != nullptr) {
    write_sample(last_record_time_, /*final=*/true);
  }
}

void EvalEngine::count_record(uint64_t sim_time_ns) {
  ++records_seen_;
  last_record_time_ = sim_time_ns;
  if (options_.metrics_out == nullptr || options_.metrics_interval == 0) {
    return;
  }
  if (records_seen_ % options_.metrics_interval == 0) {
    write_sample(sim_time_ns, /*final=*/false);
  }
}

void EvalEngine::write_sample(uint64_t sim_time_ns, bool final) {
  std::ostream& os = *options_.metrics_out;
  os << "{\"schema_version\":1,\"seq\":" << sample_seq_++
     << ",\"final\":" << (final ? "true" : "false")
     << ",\"records\":" << records_seen_
     << ",\"sim_time_ns\":" << sim_time_ns << ",\"metrics\":";
  support::MetricsSnapshot snap;
  if (options_.metrics != nullptr) snap = options_.metrics->snapshot();
  snap.write_json(os);
  os << ",\"coverage\":";
  if (options_.coverage != nullptr) {
    options_.coverage->write_json(os);
  } else {
    os << "[]";
  }
  os << "}\n";
}

}  // namespace repro::abv
