#include "abv/eval_engine.h"

#include <algorithm>

#include "abv/tlm_env.h"

namespace repro::abv {

EvalEngine::EvalEngine(Options options) : options_(options) {
  options_.jobs = std::max<size_t>(1, options_.jobs);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
}

EvalEngine::~EvalEngine() = default;

void EvalEngine::add(checker::TlmCheckerWrapper* wrapper) {
  wrappers_.push_back(wrapper);
}

void EvalEngine::add(checker::PropertyChecker* checker) {
  checkers_.push_back(checker);
}

void EvalEngine::ensure_sharded() {
  if (sharded_) return;
  sharded_ = true;
  const size_t units = wrappers_.size() + checkers_.size();
  const size_t count = std::max<size_t>(1, std::min(options_.jobs, units));
  shards_.resize(count);
  // Round-robin in registration order balances heterogeneous property costs
  // across shards and is deterministic.
  for (size_t i = 0; i < wrappers_.size(); ++i) {
    shards_[i % count].wrappers.push_back(wrappers_[i]);
  }
  for (size_t i = 0; i < checkers_.size(); ++i) {
    shards_[(wrappers_.size() + i) % count].checkers.push_back(checkers_[i]);
  }
  shard_tasks_.reserve(count);
  for (Shard& shard : shards_) {
    shard_tasks_.push_back([this, &shard] {
      for (const tlm::TransactionRecord& record : batch_) {
        const ObservablesContext ctx(record.observables);
        for (checker::TlmCheckerWrapper* w : shard.wrappers) {
          w->on_transaction(record.end, ctx);
        }
        for (checker::PropertyChecker* c : shard.checkers) {
          c->on_event(record.end, ctx);
        }
      }
    });
  }
  // The caller participates in every round, so jobs shards need jobs - 1
  // pool workers.
  pool_ = std::make_unique<support::ThreadPool>(count - 1);
  batch_.reserve(options_.batch_size);
}

void EvalEngine::flush() {
  if (batch_.empty()) return;
  pool_->run_all(shard_tasks_);
  batch_.clear();
}

void EvalEngine::on_record(const tlm::TransactionRecord& record) {
  if (options_.jobs == 1) {
    // Exact historical serial path: evaluate synchronously, no buffering.
    const ObservablesContext ctx(record.observables);
    for (checker::TlmCheckerWrapper* w : wrappers_) {
      w->on_transaction(record.end, ctx);
    }
    for (checker::PropertyChecker* c : checkers_) c->on_event(record.end, ctx);
    return;
  }
  ensure_sharded();
  batch_.push_back(record);
  if (batch_.size() >= options_.batch_size) flush();
}

void EvalEngine::finish() {
  if (sharded_) flush();
  for (checker::TlmCheckerWrapper* w : wrappers_) w->finish();
  for (checker::PropertyChecker* c : checkers_) c->finish();
}

}  // namespace repro::abv
