#include "abv/eval_engine.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "abv/tlm_env.h"

namespace repro::abv {

namespace {

// Monotonic wall clock for busy-time metrics; only differences are used.
uint64_t mono_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EvalEngine::EvalEngine(Options options)
    : options_(options),
      batch_ns_(support::exponential_bounds(1 << 10, 18))  // 1 us .. ~268 ms
{
  options_.jobs = std::max<size_t>(1, options_.jobs);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  if (options_.metrics != nullptr) {
    m_records_ = &options_.metrics->counter("engine.records");
    m_batches_ = &options_.metrics->counter("engine.batches");
    m_shard_records_ = &options_.metrics->counter("engine.shard_records");
    m_shard_busy_ns_ = &options_.metrics->counter("engine.shard_busy_ns");
    m_queue_depth_ = &options_.metrics->gauge("engine.queue_depth");
  }
  if (options_.trace != nullptr) {
    options_.trace->name_thread(0, "dispatch");
  }
}

EvalEngine::~EvalEngine() = default;

void EvalEngine::add(checker::TlmCheckerWrapper* wrapper) {
  // Serial mode evaluates on the dispatch lane; ensure_sharded() reassigns
  // the wrapper to its shard's lane.
  wrapper->set_trace(options_.trace, 0);
  wrappers_.push_back(wrapper);
}

void EvalEngine::add(checker::PropertyChecker* checker) {
  checkers_.push_back(checker);
}

void EvalEngine::ensure_sharded() {
  if (sharded_) return;
  sharded_ = true;
  const size_t units = wrappers_.size() + checkers_.size();
  const size_t count = std::max<size_t>(1, std::min(options_.jobs, units));
  shards_.resize(count);
  // Round-robin in registration order balances heterogeneous property costs
  // across shards and is deterministic.
  for (size_t i = 0; i < wrappers_.size(); ++i) {
    shards_[i % count].wrappers.push_back(wrappers_[i]);
    wrappers_[i]->set_trace(options_.trace, static_cast<uint32_t>(i % count) + 1);
  }
  for (size_t i = 0; i < checkers_.size(); ++i) {
    shards_[(wrappers_.size() + i) % count].checkers.push_back(checkers_[i]);
  }
  shard_tasks_.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    Shard& shard = shards_[s];
    if (options_.trace != nullptr) {
      options_.trace->name_thread(static_cast<uint32_t>(s) + 1,
                                  "shard-" + std::to_string(s));
    }
    shard_tasks_.push_back([this, &shard, s] {
      const bool instrumented =
          options_.trace != nullptr || m_shard_busy_ns_ != nullptr;
      const uint64_t t0 = options_.trace != nullptr ? options_.trace->now_ns()
                          : instrumented           ? mono_ns()
                                                   : 0;
      for (const tlm::TransactionRecord& record : batch_) {
        const ObservablesContext ctx(record.observables);
        for (checker::TlmCheckerWrapper* w : shard.wrappers) {
          w->on_transaction(record.end, ctx);
        }
        for (checker::PropertyChecker* c : shard.checkers) {
          c->on_event(record.end, ctx);
        }
      }
      if (!instrumented) return;
      const uint64_t t1 =
          options_.trace != nullptr ? options_.trace->now_ns() : mono_ns();
      const uint64_t busy = t1 > t0 ? t1 - t0 : 0;
      if (m_shard_busy_ns_ != nullptr) m_shard_busy_ns_->add(s, busy);
      if (m_shard_records_ != nullptr) m_shard_records_->add(s, batch_.size());
      if (options_.trace != nullptr) {
        options_.trace->span(static_cast<uint32_t>(s) + 1, "shard_batch", t0,
                             busy, {{"records", batch_.size()}});
      }
    });
  }
  // The caller participates in every round, so jobs shards need jobs - 1
  // pool workers.
  pool_ = std::make_unique<support::ThreadPool>(count - 1);
  batch_.reserve(options_.batch_size);
}

void EvalEngine::flush() {
  if (batch_.empty()) return;
  if (m_queue_depth_ != nullptr) m_queue_depth_->set(0, batch_.size());
  const bool instrumented =
      options_.trace != nullptr || options_.metrics != nullptr;
  const uint64_t t0 = options_.trace != nullptr ? options_.trace->now_ns()
                      : instrumented           ? mono_ns()
                                               : 0;
  pool_->run_all(shard_tasks_);
  if (instrumented) {
    const uint64_t t1 =
        options_.trace != nullptr ? options_.trace->now_ns() : mono_ns();
    const uint64_t dur = t1 > t0 ? t1 - t0 : 0;
    batch_ns_.record(dur);
    if (m_batches_ != nullptr) m_batches_->add(0, 1);
    if (options_.trace != nullptr) {
      options_.trace->span(0, "batch_dispatch", t0, dur,
                           {{"records", batch_.size()},
                            {"shards", shards_.size()}});
    }
  }
  batch_.clear();
}

void EvalEngine::on_record(const tlm::TransactionRecord& record) {
  if (m_records_ != nullptr) m_records_->add(0, 1);
  if (options_.jobs == 1) {
    // Exact historical serial path: evaluate synchronously, no buffering.
    const ObservablesContext ctx(record.observables);
    for (checker::TlmCheckerWrapper* w : wrappers_) {
      w->on_transaction(record.end, ctx);
    }
    for (checker::PropertyChecker* c : checkers_) c->on_event(record.end, ctx);
    return;
  }
  ensure_sharded();
  batch_.push_back(record);
  if (batch_.size() >= options_.batch_size) flush();
}

void EvalEngine::publish_metrics() {
  if (options_.metrics == nullptr) return;
  options_.metrics->merge_histogram("engine.batch_ns", batch_ns_);
  support::MetricsRegistry::Gauge& pool_hw =
      options_.metrics->gauge("wrapper.pool_capacity");
  support::MetricsRegistry::Gauge& table_peak =
      options_.metrics->gauge("wrapper.table_peak");
  uint64_t program_nodes = 0;
  uint64_t compiled = 0;
  for (checker::TlmCheckerWrapper* w : wrappers_) {
    // Serial, in registration order: the merged histogram and the gauge
    // high-water marks are deterministic for a given transaction stream.
    options_.metrics->merge_histogram("wrapper.latency_ns",
                                      w->latency_histogram());
    pool_hw.set(0, w->stats().pool_capacity);
    table_peak.set(0, w->stats().table_peak);
    if (w->program() != nullptr) {
      ++compiled;
      program_nodes += w->program()->size();
    }
  }
  options_.metrics->gauge("checker.compiled_wrappers").set(0, compiled);
  options_.metrics->gauge("checker.program_nodes").set(0, program_nodes);
}

void EvalEngine::finish() {
  if (sharded_) flush();
  const uint64_t t0 = options_.trace != nullptr ? options_.trace->now_ns() : 0;
  for (checker::TlmCheckerWrapper* w : wrappers_) w->finish();
  for (checker::PropertyChecker* c : checkers_) c->finish();
  if (options_.trace != nullptr) {
    options_.trace->span_end(0, "retire", t0,
                             {{"wrappers", wrappers_.size()},
                              {"checkers", checkers_.size()}});
  }
  publish_metrics();
}

}  // namespace repro::abv
