#include "support/trace_sink.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/json.h"

namespace repro::support {

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

TraceSink::TraceSink(std::string path) : TraceSink() { path_ = std::move(path); }

TraceSink::~TraceSink() {
  if (!path_.empty()) write_file(path_);
}

uint64_t TraceSink::now_ns() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

void TraceSink::push(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceSink::name_thread(uint32_t tid, const std::string& name) {
  Event e;
  e.phase = 'M';
  e.tid = tid;
  e.ts_ns = 0;
  e.dur_ns = 0;
  e.name = "thread_name";
  e.thread_name = name;
  push(std::move(e));
}

void TraceSink::span(uint32_t tid, const char* name, uint64_t start_ns,
                     uint64_t duration_ns, Args args) {
  Event e;
  e.phase = 'X';
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = duration_ns;
  e.name = name;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

void TraceSink::span_end(uint32_t tid, const char* name, uint64_t start_ns,
                         Args args) {
  const uint64_t end = now_ns();
  span(tid, name, start_ns, end > start_ns ? end - start_ns : 0, args);
}

void TraceSink::instant(uint32_t tid, const std::string& name, Args args) {
  Event e;
  e.phase = 'i';
  e.tid = tid;
  e.ts_ns = now_ns();
  e.dur_ns = 0;
  e.name = name;
  e.args.assign(args.begin(), args.end());
  push(std::move(e));
}

size_t TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

namespace {

// Chrome's "ts"/"dur" unit is microseconds; emit as <us>.<ns fraction>.
void write_us(std::ostream& os, uint64_t ns) {
  os << ns / 1000;
  if (ns % 1000 != 0) {
    char buf[8];
    std::snprintf(buf, sizeof buf, ".%03llu",
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
  }
}

}  // namespace

void TraceSink::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    json::write_string(os, e.name);
    os << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid;
    if (e.phase == 'M') {
      os << ",\"args\":{\"name\":";
      json::write_string(os, e.thread_name);
      os << "}}";
      continue;
    }
    os << ",\"ts\":";
    write_us(os, e.ts_ns);
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ',';
        json::write_string(os, e.args[i].first);
        os << ':' << e.args[i].second;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace_sink: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  write(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "trace_sink: short write to '%s'\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace repro::support
