#include "support/tracelog.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/json.h"

namespace repro::support::tracelog {

namespace {

// ---- little-endian primitives ----------------------------------------------
// Explicit byte shifts, never memcpy of host integers: the format is defined
// as little-endian regardless of the producing host.

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void put_string(std::vector<uint8_t>& out, const std::string& s) {
  put_u16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked cursor over a decoded file; every read reports whether the
// bytes were there, so truncation is detected exactly where it bites.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
  bool take(size_t n, const uint8_t*& out) {
    if (remaining() < n) return false;
    out = data + pos;
    pos += n;
    return true;
  }
  bool u8(uint8_t& v) {
    const uint8_t* p = nullptr;
    if (!take(1, p)) return false;
    v = p[0];
    return true;
  }
  bool u16(uint16_t& v) {
    const uint8_t* p = nullptr;
    if (!take(2, p)) return false;
    v = static_cast<uint16_t>(p[0] | (p[1] << 8));
    return true;
  }
  bool u32(uint32_t& v) {
    const uint8_t* p = nullptr;
    if (!take(4, p)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return true;
  }
  bool u64(uint64_t& v) {
    const uint8_t* p = nullptr;
    if (!take(8, p)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return true;
  }
  bool string(std::string& out) {
    uint16_t len = 0;
    const uint8_t* p = nullptr;
    if (!u16(len) || !take(len, p)) return false;
    out.assign(reinterpret_cast<const char*>(p), len);
    return true;
  }
};

TraceError make_error(TraceError::Kind kind, std::string message) {
  TraceError e;
  e.kind = kind;
  e.message = std::move(message);
  return e;
}

// ---- shared record payload layout ------------------------------------------

constexpr uint8_t kEndianLittle = 1;
constexpr uint8_t kFrameRecords = 'R';
constexpr uint8_t kFrameTrailer = 'E';
constexpr uint8_t kFlagHasObservables = 1;

void serialize_record(std::vector<uint8_t>& out,
                      const tlm::TransactionRecord& record,
                      size_t dictionary_size) {
  put_u64(out, record.start);
  put_u64(out, record.end);
  out.push_back(static_cast<uint8_t>(record.command));
  out.push_back(static_cast<uint8_t>(record.response));
  const bool has_obs = !record.observables.empty();
  out.push_back(has_obs ? kFlagHasObservables : 0);
  put_u64(out, record.address);
  put_u32(out, static_cast<uint32_t>(record.data.size()));
  for (const uint64_t word : record.data) put_u64(out, word);
  if (has_obs) {
    // Positional values, one per dictionary entry: the writer already
    // verified the record's key table IS the dictionary.
    for (size_t i = 0; i < dictionary_size; ++i) {
      put_u64(out, record.observables.at(i));
    }
  }
}

bool deserialize_record(
    Cursor& cur, const std::shared_ptr<const tlm::Snapshot::Keys>& keys,
    tlm::TransactionRecord& record) {
  uint8_t command = 0;
  uint8_t response = 0;
  uint8_t flags = 0;
  uint32_t data_count = 0;
  if (!cur.u64(record.start) || !cur.u64(record.end) || !cur.u8(command) ||
      !cur.u8(response) || !cur.u8(flags) || !cur.u64(record.address) ||
      !cur.u32(data_count)) {
    return false;
  }
  if (command > static_cast<uint8_t>(tlm::Command::kWrite) ||
      response > static_cast<uint8_t>(tlm::Response::kGenericError)) {
    return false;
  }
  record.command = static_cast<tlm::Command>(command);
  record.response = static_cast<tlm::Response>(response);
  if (cur.remaining() / 8 < data_count) return false;  // overflow-safe bound
  record.data.resize(data_count);
  for (uint32_t i = 0; i < data_count; ++i) {
    if (!cur.u64(record.data[i])) return false;
  }
  if ((flags & kFlagHasObservables) != 0) {
    record.observables = tlm::Snapshot(keys);
    for (size_t i = 0; i < keys->size(); ++i) {
      uint64_t value = 0;
      if (!cur.u64(value)) return false;
      record.observables.set_at(i, value);
    }
  } else {
    record.observables = tlm::Snapshot();
  }
  return true;
}

bool starts_with_jsonl(const std::string& bytes) {
  for (const char c : bytes) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{';
  }
  return false;
}

std::optional<TraceError> slurp(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(TraceError::Kind::kIo, "cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return make_error(TraceError::Kind::kIo, "read error on '" + path + "'");
  }
  bytes = std::move(buf).str();
  return std::nullopt;
}

// Binary header: magic, schema version, endian tag, CRC-protected meta
// block. On success `cur` stands at the first frame tag.
std::optional<TraceError> parse_binary_header(Cursor& cur,
                                              tlm::RecordStreamMeta& meta) {
  const uint8_t* magic = nullptr;
  if (!cur.take(sizeof kMagic, magic)) {
    // A short prefix of the magic is still recognizably ours.
    if (std::equal(cur.data, cur.data + cur.size,
                   reinterpret_cast<const uint8_t*>(kMagic))) {
      return make_error(TraceError::Kind::kTruncated,
                        "file ends inside the magic");
    }
    return make_error(TraceError::Kind::kBadMagic, "not a trace log");
  }
  if (!std::equal(magic, magic + sizeof kMagic,
                  reinterpret_cast<const uint8_t*>(kMagic))) {
    return make_error(TraceError::Kind::kBadMagic, "not a trace log");
  }
  uint32_t version = 0;
  uint8_t endian = 0;
  if (!cur.u32(version) || !cur.u8(endian)) {
    return make_error(TraceError::Kind::kTruncated,
                      "file ends inside the header");
  }
  if (version > kSchemaVersion) {
    return make_error(TraceError::Kind::kUnsupportedVersion,
                      "schema version " + std::to_string(version) +
                          " is newer than supported version " +
                          std::to_string(kSchemaVersion));
  }
  if (endian != kEndianLittle) {
    return make_error(TraceError::Kind::kCorrupt, "unknown endianness tag");
  }
  uint32_t meta_len = 0;
  const uint8_t* payload = nullptr;
  uint32_t stored_crc = 0;
  if (!cur.u32(meta_len) || !cur.take(meta_len, payload) ||
      !cur.u32(stored_crc)) {
    return make_error(TraceError::Kind::kTruncated,
                      "file ends inside the meta block");
  }
  if (crc32(payload, meta_len) != stored_crc) {
    return make_error(TraceError::Kind::kCrcMismatch,
                      "meta block crc mismatch");
  }
  Cursor meta_cur{payload, meta_len};
  uint32_t observable_count = 0;
  if (!meta_cur.string(meta.design) || !meta_cur.string(meta.level) ||
      !meta_cur.u64(meta.clock_period_ns) || !meta_cur.u32(observable_count)) {
    return make_error(TraceError::Kind::kCorrupt, "malformed meta block");
  }
  meta.observables.clear();
  for (uint32_t i = 0; i < observable_count; ++i) {
    std::string name;
    if (!meta_cur.string(name)) {
      return make_error(TraceError::Kind::kCorrupt, "malformed meta block");
    }
    meta.observables.push_back(std::move(name));
  }
  if (meta_cur.remaining() != 0) {
    return make_error(TraceError::Kind::kCorrupt,
                      "meta block has trailing bytes");
  }
  return std::nullopt;
}

std::optional<TraceError> parse_jsonl_meta(const std::string& line,
                                           tlm::RecordStreamMeta& meta) {
  std::string error;
  const std::optional<json::Value> doc = json::parse(line, &error);
  if (!doc.has_value() || !doc->is_object()) {
    return make_error(TraceError::Kind::kCorrupt,
                      "jsonl meta line does not parse: " + error);
  }
  const json::Value* version = doc->find("schema_version");
  const json::Value* design = doc->find("design");
  const json::Value* level = doc->find("level");
  const json::Value* period = doc->find("clock_period_ns");
  const json::Value* observables = doc->find("observables");
  if (version == nullptr || !version->is_number()) {
    return make_error(TraceError::Kind::kBadMagic,
                      "jsonl first line is not a trace meta object");
  }
  if (version->number > kSchemaVersion) {
    return make_error(TraceError::Kind::kUnsupportedVersion,
                      "schema version " +
                          std::to_string(static_cast<uint64_t>(version->number)) +
                          " is newer than supported version " +
                          std::to_string(kSchemaVersion));
  }
  if (design == nullptr || !design->is_string() || level == nullptr ||
      !level->is_string() || period == nullptr || !period->is_number() ||
      observables == nullptr || !observables->is_array()) {
    return make_error(TraceError::Kind::kCorrupt, "malformed jsonl meta line");
  }
  meta.design = design->string;
  meta.level = level->string;
  meta.clock_period_ns = static_cast<uint64_t>(period->number);
  meta.observables.clear();
  for (const json::Value& name : observables->array) {
    if (!name.is_string()) {
      return make_error(TraceError::Kind::kCorrupt,
                        "malformed jsonl meta line");
    }
    meta.observables.push_back(name.string);
  }
  return std::nullopt;
}

}  // namespace

Format format_for_path(const std::string& path) {
  const std::string suffix = ".jsonl";
  return path.size() >= suffix.size() &&
                 path.compare(path.size() - suffix.size(), suffix.size(),
                              suffix) == 0
             ? Format::kJsonl
             : Format::kBinary;
}

const char* to_string(TraceError::Kind kind) {
  switch (kind) {
    case TraceError::Kind::kIo: return "io error";
    case TraceError::Kind::kBadMagic: return "bad magic";
    case TraceError::Kind::kUnsupportedVersion: return "unsupported version";
    case TraceError::Kind::kTruncated: return "truncated";
    case TraceError::Kind::kCrcMismatch: return "crc mismatch";
    case TraceError::Kind::kCorrupt: return "corrupt";
    case TraceError::Kind::kMetaMismatch: return "meta mismatch";
  }
  return "?";
}

std::string TraceError::to_string() const {
  return std::string(tracelog::to_string(kind)) + ": " + message;
}

uint32_t crc32(const uint8_t* data, size_t size) {
  // IEEE reflected polynomial, table built on first use.
  static const std::vector<uint32_t> table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- JSONL encoding --------------------------------------------------------

void write_jsonl_meta(std::string& out, const tlm::RecordStreamMeta& meta) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"design\":";
  json::write_string(os, meta.design);
  os << ",\"level\":";
  json::write_string(os, meta.level);
  os << ",\"clock_period_ns\":" << meta.clock_period_ns << ",\"observables\":[";
  for (size_t i = 0; i < meta.observables.size(); ++i) {
    if (i != 0) os << ',';
    json::write_string(os, meta.observables[i]);
  }
  os << "]}\n";
  out += os.str();
}

void write_jsonl_record(std::string& out, const tlm::TransactionRecord& record,
                        const std::vector<std::string>& dictionary) {
  std::ostringstream os;
  os << "{\"start\":" << record.start << ",\"end\":" << record.end
     << ",\"command\":" << static_cast<int>(record.command)
     << ",\"response\":" << static_cast<int>(record.response)
     << ",\"address\":" << record.address << ",\"data\":[";
  for (size_t i = 0; i < record.data.size(); ++i) {
    if (i != 0) os << ',';
    os << record.data[i];
  }
  os << ']';
  if (!record.observables.empty()) {
    os << ",\"observables\":{";
    for (size_t i = 0; i < dictionary.size(); ++i) {
      if (i != 0) os << ',';
      json::write_string(os, dictionary[i]);
      os << ':' << record.observables.at(i);
    }
    os << '}';
  }
  os << "}\n";
  out += os.str();
}

// ---- TraceWriter -----------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, tlm::RecordStreamMeta meta,
                         size_t frame_records)
    : path_(path),
      meta_(std::move(meta)),
      format_(format_for_path(path)),
      frame_records_(frame_records == 0 ? 1 : frame_records),
      out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    fail(TraceError::Kind::kIo, "cannot open '" + path_ + "' for writing");
  }
}

TraceWriter::~TraceWriter() { finish(); }

void TraceWriter::fail(TraceError::Kind kind, const std::string& message) {
  if (error_ == nullptr) {
    error_ = std::make_unique<TraceError>(make_error(kind, message));
  }
}

bool TraceWriter::adopt_dictionary(const tlm::TransactionRecord& record) {
  if (record.observables.empty()) return true;
  const tlm::Snapshot::Keys& keys = *record.observables.keys();
  if (meta_.observables.empty()) {
    // First snapshot-carrying record defines the dictionary, preserving the
    // model's key-table order (witness byte-identity depends on it).
    meta_.observables = keys;
    return true;
  }
  if (meta_.observables != keys) {
    fail(TraceError::Kind::kCorrupt,
         "record key table does not match the observable dictionary");
    return false;
  }
  return true;
}

void TraceWriter::serialize(const tlm::TransactionRecord& record) {
  if (!adopt_dictionary(record)) return;
  if (format_ == Format::kBinary) {
    serialize_record(frame_buf_, record, meta_.observables.size());
  } else {
    write_jsonl_record(jsonl_buf_, record, meta_.observables);
  }
  ++frame_count_;
  ++records_written_;
}

void TraceWriter::append(const tlm::TransactionRecord& record) {
  if (!ok() || finished_) return;
  serialize(record);
  if (frame_count_ >= frame_records_) flush_frame();
}

void TraceWriter::write_span(const tlm::TransactionRecord* begin,
                             const tlm::TransactionRecord* end) {
  if (!ok() || finished_) return;
  // One frame per sealed arena segment: flush any buffered appends first so
  // the segment boundary is preserved in the file's framing.
  flush_frame();
  for (const tlm::TransactionRecord* r = begin; r != end; ++r) serialize(*r);
  flush_frame();
}

void TraceWriter::write_header() {
  if (header_written_) return;
  header_written_ = true;
  if (format_ == Format::kJsonl) {
    std::string line;
    write_jsonl_meta(line, meta_);
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
    return;
  }
  std::vector<uint8_t> head(kMagic, kMagic + sizeof kMagic);
  put_u32(head, kSchemaVersion);
  head.push_back(kEndianLittle);
  std::vector<uint8_t> meta_block;
  put_string(meta_block, meta_.design);
  put_string(meta_block, meta_.level);
  put_u64(meta_block, meta_.clock_period_ns);
  put_u32(meta_block, static_cast<uint32_t>(meta_.observables.size()));
  for (const std::string& name : meta_.observables) {
    put_string(meta_block, name);
  }
  put_u32(head, static_cast<uint32_t>(meta_block.size()));
  head.insert(head.end(), meta_block.begin(), meta_block.end());
  put_u32(head, crc32(meta_block.data(), meta_block.size()));
  out_.write(reinterpret_cast<const char*>(head.data()),
             static_cast<std::streamsize>(head.size()));
}

void TraceWriter::flush_frame() {
  if (!ok() || frame_count_ == 0) return;
  // The dictionary is final by the first flush: every record of this frame
  // (and the positional value layout) was serialized against it.
  write_header();
  if (format_ == Format::kJsonl) {
    out_.write(jsonl_buf_.data(),
               static_cast<std::streamsize>(jsonl_buf_.size()));
    jsonl_buf_.clear();
  } else {
    std::vector<uint8_t> frame;
    frame.push_back(kFrameRecords);
    put_u32(frame, static_cast<uint32_t>(frame_count_));
    put_u32(frame, static_cast<uint32_t>(frame_buf_.size()));
    out_.write(reinterpret_cast<const char*>(frame.data()),
               static_cast<std::streamsize>(frame.size()));
    out_.write(reinterpret_cast<const char*>(frame_buf_.data()),
               static_cast<std::streamsize>(frame_buf_.size()));
    std::vector<uint8_t> crc;
    put_u32(crc, crc32(frame_buf_.data(), frame_buf_.size()));
    out_.write(reinterpret_cast<const char*>(crc.data()),
               static_cast<std::streamsize>(crc.size()));
    frame_buf_.clear();
  }
  frame_count_ = 0;
  if (!out_) fail(TraceError::Kind::kIo, "write error on '" + path_ + "'");
}

bool TraceWriter::finish() {
  if (finished_) return ok();
  flush_frame();
  if (ok()) {
    write_header();  // empty stream: header + trailer, zero frames
    if (format_ == Format::kBinary) {
      std::vector<uint8_t> trailer;
      trailer.push_back(kFrameTrailer);
      std::vector<uint8_t> count;
      put_u64(count, records_written_);
      trailer.insert(trailer.end(), count.begin(), count.end());
      put_u32(trailer, crc32(count.data(), count.size()));
      out_.write(reinterpret_cast<const char*>(trailer.data()),
                 static_cast<std::streamsize>(trailer.size()));
    }
    out_.flush();
    if (!out_) fail(TraceError::Kind::kIo, "write error on '" + path_ + "'");
  }
  finished_ = true;
  out_.close();
  return ok();
}

// ---- TraceReader -----------------------------------------------------------

std::optional<TraceError> TraceReader::open(const std::string& path) {
  meta_ = {};
  records_.clear();
  frame_sizes_.clear();
  std::string bytes;
  if (std::optional<TraceError> e = slurp(path, bytes)) return e;

  if (starts_with_jsonl(bytes)) {
    // JSONL debug encoding: meta line, then one record object per line.
    size_t pos = 0;
    bool meta_seen = false;
    auto keys = std::make_shared<tlm::Snapshot::Keys>();
    while (pos < bytes.size()) {
      size_t nl = bytes.find('\n', pos);
      if (nl == std::string::npos) nl = bytes.size();
      const std::string line = bytes.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (!meta_seen) {
        if (std::optional<TraceError> e = parse_jsonl_meta(line, meta_)) {
          return e;
        }
        *keys = meta_.observables;
        meta_seen = true;
        continue;
      }
      std::string error;
      const std::optional<json::Value> doc = json::parse(line, &error);
      if (!doc.has_value() || !doc->is_object()) {
        return make_error(TraceError::Kind::kCorrupt,
                          "jsonl record line does not parse: " + error);
      }
      const json::Value* start = doc->find("start");
      const json::Value* end = doc->find("end");
      const json::Value* command = doc->find("command");
      const json::Value* response = doc->find("response");
      const json::Value* address = doc->find("address");
      const json::Value* data = doc->find("data");
      if (start == nullptr || !start->is_number() || end == nullptr ||
          !end->is_number() || command == nullptr || !command->is_number() ||
          response == nullptr || !response->is_number() || address == nullptr ||
          !address->is_number() || data == nullptr || !data->is_array()) {
        return make_error(TraceError::Kind::kCorrupt,
                          "malformed jsonl record line");
      }
      // u64 fields read the parser's exact unsigned value: the double alone
      // cannot represent data words and observables above 2^53.
      const auto exact = [](const json::Value& v) {
        return v.u64.value_or(static_cast<uint64_t>(v.number));
      };
      tlm::TransactionRecord record;
      record.start = exact(*start);
      record.end = exact(*end);
      const int cmd = static_cast<int>(command->number);
      const int rsp = static_cast<int>(response->number);
      if (cmd < 0 || cmd > static_cast<int>(tlm::Command::kWrite) || rsp < 0 ||
          rsp > static_cast<int>(tlm::Response::kGenericError)) {
        return make_error(TraceError::Kind::kCorrupt,
                          "jsonl record has an unknown command/response");
      }
      record.command = static_cast<tlm::Command>(cmd);
      record.response = static_cast<tlm::Response>(rsp);
      record.address = exact(*address);
      for (const json::Value& word : data->array) {
        if (!word.is_number()) {
          return make_error(TraceError::Kind::kCorrupt,
                            "malformed jsonl record line");
        }
        record.data.push_back(exact(word));
      }
      if (const json::Value* obs = doc->find("observables")) {
        if (!obs->is_object()) {
          return make_error(TraceError::Kind::kCorrupt,
                            "malformed jsonl record line");
        }
        record.observables = tlm::Snapshot(keys);
        for (const auto& [name, value] : obs->object) {
          const auto it =
              std::find(keys->begin(), keys->end(), name);
          if (it == keys->end() || !value.is_number()) {
            return make_error(
                TraceError::Kind::kCorrupt,
                "jsonl record observable '" + name + "' not in dictionary");
          }
          record.observables.set_at(static_cast<size_t>(it - keys->begin()),
                                    exact(value));
        }
      }
      records_.push_back(std::move(record));
    }
    if (!meta_seen) {
      return make_error(TraceError::Kind::kBadMagic, "not a trace log");
    }
    if (!records_.empty()) frame_sizes_.push_back(records_.size());
    return std::nullopt;
  }

  Cursor cur{reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()};
  if (std::optional<TraceError> e = parse_binary_header(cur, meta_)) return e;
  auto keys = std::make_shared<tlm::Snapshot::Keys>(meta_.observables);

  bool trailer_seen = false;
  while (!trailer_seen) {
    uint8_t tag = 0;
    if (!cur.u8(tag)) {
      return make_error(TraceError::Kind::kTruncated,
                        "file ends without the trailer frame");
    }
    if (tag == kFrameRecords) {
      uint32_t count = 0;
      uint32_t len = 0;
      const uint8_t* payload = nullptr;
      uint32_t stored_crc = 0;
      if (!cur.u32(count) || !cur.u32(len) || !cur.take(len, payload) ||
          !cur.u32(stored_crc)) {
        return make_error(TraceError::Kind::kTruncated,
                          "file ends inside a record frame");
      }
      if (crc32(payload, len) != stored_crc) {
        return make_error(TraceError::Kind::kCrcMismatch,
                          "record frame crc mismatch");
      }
      Cursor frame{payload, len};
      for (uint32_t i = 0; i < count; ++i) {
        tlm::TransactionRecord record;
        if (!deserialize_record(frame, keys, record)) {
          return make_error(TraceError::Kind::kCorrupt,
                            "malformed record in frame");
        }
        records_.push_back(std::move(record));
      }
      if (frame.remaining() != 0) {
        return make_error(TraceError::Kind::kCorrupt,
                          "record frame has trailing bytes");
      }
      frame_sizes_.push_back(count);
    } else if (tag == kFrameTrailer) {
      uint64_t total = 0;
      const uint8_t* count_bytes = cur.data + cur.pos;
      uint32_t stored_crc = 0;
      if (!cur.u64(total) || !cur.u32(stored_crc)) {
        return make_error(TraceError::Kind::kTruncated,
                          "file ends inside the trailer frame");
      }
      if (crc32(count_bytes, 8) != stored_crc) {
        return make_error(TraceError::Kind::kCrcMismatch,
                          "trailer frame crc mismatch");
      }
      if (total != records_.size()) {
        return make_error(TraceError::Kind::kCorrupt,
                          "trailer record count does not match the frames");
      }
      trailer_seen = true;
    } else {
      return make_error(TraceError::Kind::kCorrupt, "unknown frame tag");
    }
  }
  if (cur.remaining() != 0) {
    return make_error(TraceError::Kind::kCorrupt,
                      "trailing bytes after the trailer frame");
  }
  return std::nullopt;
}

std::optional<TraceError> read_meta(const std::string& path,
                                    tlm::RecordStreamMeta& out) {
  std::string bytes;
  if (std::optional<TraceError> e = slurp(path, bytes)) return e;
  if (starts_with_jsonl(bytes)) {
    size_t nl = bytes.find('\n');
    if (nl == std::string::npos) nl = bytes.size();
    return parse_jsonl_meta(bytes.substr(0, nl), out);
  }
  Cursor cur{reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()};
  return parse_binary_header(cur, out);
}

std::optional<TraceError> validate_meta(const tlm::RecordStreamMeta& actual,
                                        const tlm::RecordStreamMeta& expected) {
  if (!expected.design.empty() && actual.design != expected.design) {
    return make_error(TraceError::Kind::kMetaMismatch,
                      "trace records design '" + actual.design +
                          "', run expects '" + expected.design + "'");
  }
  if (!expected.level.empty() && actual.level != expected.level) {
    return make_error(TraceError::Kind::kMetaMismatch,
                      "trace records level '" + actual.level +
                          "', run expects '" + expected.level + "'");
  }
  if (expected.clock_period_ns != 0 &&
      actual.clock_period_ns != expected.clock_period_ns) {
    return make_error(
        TraceError::Kind::kMetaMismatch,
        "trace clock period " + std::to_string(actual.clock_period_ns) +
            " ns, run expects " + std::to_string(expected.clock_period_ns) +
            " ns");
  }
  if (!expected.observables.empty()) {
    // Set comparison: the same binding target may be enumerated in a
    // different order by different producers (sorted signal bags vs
    // declaration-ordered key tables).
    std::vector<std::string> a = actual.observables;
    std::vector<std::string> b = expected.observables;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) {
      return make_error(
          TraceError::Kind::kMetaMismatch,
          "observable dictionary does not match the run's observables");
    }
  }
  return std::nullopt;
}

// ---- TraceReplaySource -----------------------------------------------------

TraceReplaySource::TraceReplaySource(TraceReader reader)
    : reader_(std::move(reader)) {}

tlm::RecordSpan TraceReplaySource::next() {
  const std::vector<tlm::TransactionRecord>& records = reader_.records();
  if (record_pos_ >= records.size()) return {};
  const size_t count = frame_pos_ < reader_.frame_sizes().size()
                           ? reader_.frame_sizes()[frame_pos_]
                           : records.size() - record_pos_;
  ++frame_pos_;
  const tlm::TransactionRecord* begin = records.data() + record_pos_;
  record_pos_ += count;
  return {begin, begin + count};
}

}  // namespace repro::support::tracelog
