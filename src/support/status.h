// Lightweight error-reporting primitives shared across the library.
//
// The library avoids exceptions on expected failure paths (parse errors,
// malformed properties) and returns Result<T> instead; programming errors
// use assertions.
#ifndef REPRO_SUPPORT_STATUS_H_
#define REPRO_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace repro {

// An error with a human-readable message and an optional source location
// (byte offset) into the text that produced it.
struct Error {
  std::string message;
  int position = -1;  // byte offset into the source text, -1 if unknown

  std::string to_string() const {
    if (position < 0) return message;
    return message + " (at offset " + std::to_string(position) + ")";
  }
};

// Minimal expected-like type: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace repro

#endif  // REPRO_SUPPORT_STATUS_H_
