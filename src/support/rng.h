// Deterministic pseudo-random number generator for stimulus and tests.
//
// We use our own xoshiro256** rather than std::mt19937 so that stimulus
// streams are bit-identical across standard library implementations; the
// benchmark tables depend on identical workloads at every abstraction level.
#ifndef REPRO_SUPPORT_RNG_H_
#define REPRO_SUPPORT_RNG_H_

#include <cstdint>

namespace repro {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t next();

  // Uniform value in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound);

  // Uniform value in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi);

  // Bernoulli draw: true with probability num/den.
  bool chance(uint32_t num, uint32_t den);

 private:
  uint64_t state_[4];
};

}  // namespace repro

#endif  // REPRO_SUPPORT_RNG_H_
