// Small string helpers used by the PSL front end and the CLI tools.
#ifndef REPRO_SUPPORT_STRUTIL_H_
#define REPRO_SUPPORT_STRUTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
// dropping empty pieces.
std::vector<std::string> split_and_trim(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Strict decimal parsers for CLI arguments. Unlike bare strtoull — which
// accepts leading whitespace/signs, silently stops at the first non-digit
// ("64k" -> 64, "abc" -> 0) and wraps on overflow — these accept only a
// non-empty all-digit string that fits the result type, and return nullopt
// otherwise. Callers turn nullopt into a usage error.
std::optional<uint64_t> parse_u64(std::string_view text);
std::optional<size_t> parse_size(std::string_view text);

}  // namespace repro

#endif  // REPRO_SUPPORT_STRUTIL_H_
