// Small string helpers used by the PSL front end and the CLI tools.
#ifndef REPRO_SUPPORT_STRUTIL_H_
#define REPRO_SUPPORT_STRUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace repro {

// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
// dropping empty pieces.
std::vector<std::string> split_and_trim(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace repro

#endif  // REPRO_SUPPORT_STRUTIL_H_
