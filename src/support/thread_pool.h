// Fixed-size fork/join worker pool.
//
// The pool is deliberately minimal: it only supports fork/join rounds
// (`run_all`) — submit a task list, then a barrier until every task ran.
// The calling thread participates in draining the round's queue, so a pool
// with W workers executes a round with up to W+1 threads and `workers = 0`
// degenerates to plain serial execution on the caller.
//
// Note: the sharded ABV evaluation engine no longer dispatches through
// this pool; it owns long-lived per-shard workers fed by a batch arena
// (abv::EvalEngine, DESIGN.md §11), which removed the per-batch barrier
// this pool imposes. The pool stays as general support machinery for
// fork/join-shaped work.
#ifndef REPRO_SUPPORT_THREAD_POOL_H_
#define REPRO_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace repro::support {

class ThreadPool {
 public:
  // Spawns `workers` threads (0 is allowed and means run_all executes
  // everything on the calling thread).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  // Executes every task and returns once all of them have completed.
  // Tasks may run on any worker thread or on the calling thread; completion
  // of run_all establishes a happens-before edge between the tasks of this
  // round and anything the caller does afterwards. Not reentrant: one
  // run_all round at a time.
  void run_all(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();
  // Pops and runs queued tasks until the queue is empty. Returns with the
  // lock in `lock` held.
  void drain(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: work or shutdown
  std::condition_variable done_cv_;  // signals run_all: round complete
  std::deque<const std::function<void()>*> queue_;
  size_t unfinished_ = 0;  // tasks queued or executing in this round
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace repro::support

#endif  // REPRO_SUPPORT_THREAD_POOL_H_
