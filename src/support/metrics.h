// Runtime metrics: counters, gauges and fixed-bucket histograms.
//
// The registry is built for the sharded evaluation engine's threading model:
// every metric owns one cache-line-padded atomic cell per shard, a shard
// task touches only its own cell with relaxed atomics (no locks, no
// cross-shard contention on the hot path), and a snapshot merges the cells
// in fixed shard order so the merged value is deterministic for a given set
// of per-cell values. Registration (`counter()` / `gauge()`) is mutex-
// protected and expected to happen during setup, before worker threads run;
// handles stay valid for the registry's lifetime.
//
// Histograms are plain mergeable value types: the producer (a wrapper, the
// dispatch thread) records into a private Histogram and merges it into the
// registry at finish(), serially, which keeps the hot path allocation- and
// synchronization-free.
#ifndef REPRO_SUPPORT_METRICS_H_
#define REPRO_SUPPORT_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace repro::support {

// Fixed-bucket histogram over uint64 values. `bounds` are inclusive upper
// bucket edges in ascending order; values above the last edge land in an
// implicit overflow bucket, so counts().size() == bounds().size() + 1.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<uint64_t> bounds);

  void record(uint64_t value);
  // Merges `other` into this histogram; bucket bounds must match (an empty
  // histogram adopts the other's bounds).
  void merge(const Histogram& other);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total() const { return total_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  bool empty() const { return total_ == 0; }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Exponential bucket edges {first, first*2, ...}, `count` edges long.
std::vector<uint64_t> exponential_bounds(uint64_t first, size_t count);

// Deterministic point-in-time view of a registry (plus any histograms merged
// in at finish). Keys are sorted by name via std::map, so two snapshots of
// equal metric values serialize identically.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  std::map<std::string, Histogram> histograms;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  // Number of independent writer lanes ("shards"); lane s is only ever
  // written from the thread currently running shard s (the engine's shard
  // tasks never run the same shard concurrently, and lane 0 doubles as the
  // dispatch/setup thread's lane between rounds).
  explicit MetricsRegistry(size_t shards);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  size_t shards() const { return shards_; }

  class Counter {
   public:
    void add(size_t shard, uint64_t delta) {
      cells_[shard].v.fetch_add(delta, std::memory_order_relaxed);
    }
    uint64_t total() const;

   private:
    friend class MetricsRegistry;
    struct alignas(64) Cell {
      std::atomic<uint64_t> v{0};
    };
    explicit Counter(size_t shards) : cells_(shards) {}
    std::deque<Cell> cells_;
  };

  // A gauge keeps, per lane, the last written value and the high-water mark;
  // the merged value is the maximum across lanes (the natural merge for
  // depth/occupancy-style measurements).
  class Gauge {
   public:
    void set(size_t shard, uint64_t value) {
      cells_[shard].last.store(value, std::memory_order_relaxed);
      uint64_t peak = cells_[shard].peak.load(std::memory_order_relaxed);
      while (value > peak && !cells_[shard].peak.compare_exchange_weak(
                                 peak, value, std::memory_order_relaxed)) {
      }
    }
    uint64_t max() const;

   private:
    friend class MetricsRegistry;
    struct alignas(64) Cell {
      std::atomic<uint64_t> last{0};
      std::atomic<uint64_t> peak{0};
    };
    explicit Gauge(size_t shards) : cells_(shards) {}
    std::deque<Cell> cells_;
  };

  // Returns the metric with `name`, creating it on first use. Stable
  // references; intended for the setup phase (serialized internally).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  // Merges a producer-owned histogram under `name` (same-name merges
  // accumulate). Serialized; call from finish paths, not hot loops.
  void merge_histogram(const std::string& name, const Histogram& histogram);

  // Deterministic merged view: cells summed (counters) / maxed (gauges) in
  // lane order, names sorted.
  MetricsSnapshot snapshot() const;

 private:
  const size_t shards_;
  mutable std::mutex mu_;  // guards the maps, not the cells
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace repro::support

#endif  // REPRO_SUPPORT_METRICS_H_
