#include "support/strutil.h"

#include <cctype>

namespace repro {

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_and_trim(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = trim(text.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace repro
