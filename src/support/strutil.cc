#include "support/strutil.h"

#include <cctype>
#include <cstdint>

namespace repro {

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_and_trim(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = trim(text.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<size_t> parse_size(std::string_view text) {
  const std::optional<uint64_t> value = parse_u64(text);
  if (!value.has_value()) return std::nullopt;
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    if (*value > static_cast<uint64_t>(SIZE_MAX)) return std::nullopt;
  }
  return static_cast<size_t>(*value);
}

}  // namespace repro
