// Chrome trace-event JSON sink.
//
// Collects complete-event spans ("ph":"X") and instant events ("ph":"i")
// and writes them as one {"traceEvents":[...]} document loadable in
// chrome://tracing or Perfetto (ui.perfetto.dev). Timestamps are
// microseconds (with nanosecond fraction) measured on the steady clock from
// sink construction; `tid` is a logical lane — the evaluation engine uses
// tid 0 for the dispatch thread and tid 1+s for shard s, regardless of
// which OS thread a shard task lands on, so the per-shard timelines stay
// stable across runs.
//
// Emission is mutex-serialized: producers are shard tasks that emit one
// span per batch (not per record), so the lock is far off the hot path.
#ifndef REPRO_SUPPORT_TRACE_SINK_H_
#define REPRO_SUPPORT_TRACE_SINK_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace repro::support {

class TraceSink {
 public:
  // Numeric event arguments, rendered into the event's "args" object.
  using Args = std::initializer_list<std::pair<const char*, uint64_t>>;

  TraceSink();
  // Convenience: write_file(path) is called by the destructor (errors are
  // reported to stderr — tracing must never fail the run).
  explicit TraceSink(std::string path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Nanoseconds since sink construction, on the steady clock; pass the
  // result back as a span's start time.
  uint64_t now_ns() const;

  // Names lane `tid` in the viewer (thread_name metadata event).
  void name_thread(uint32_t tid, const std::string& name);

  // Complete span on lane `tid` from `start_ns` (a prior now_ns() value)
  // to now.
  void span_end(uint32_t tid, const char* name, uint64_t start_ns,
                Args args = {});
  // Complete span with an explicit duration.
  void span(uint32_t tid, const char* name, uint64_t start_ns,
            uint64_t duration_ns, Args args = {});
  // Thread-scoped instant event at the current time.
  void instant(uint32_t tid, const std::string& name, Args args = {});

  size_t events() const;

  // Serializes every collected event as Chrome trace-event JSON.
  void write(std::ostream& os) const;
  // Writes to `path`; returns false (and reports) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X', 'i' or 'M'
    uint32_t tid;
    uint64_t ts_ns;
    uint64_t dur_ns;
    std::string name;
    std::vector<std::pair<std::string, uint64_t>> args;
    std::string thread_name;  // 'M' only
  };

  void push(Event event);

  const std::chrono::steady_clock::time_point epoch_;
  std::string path_;  // empty: destructor does not write
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace repro::support

#endif  // REPRO_SUPPORT_TRACE_SINK_H_
