// Zero-copy batch arena: a ref-counted, epoch-recycled slab of immutable
// records shared by every consumer of a sealed batch.
//
// The single producer appends records into the currently open segment (one
// move/copy per record, total), seals it when a batch is full, and hands the
// resulting Span — a (segment, begin, end) view, not a copy — to N
// concurrent readers. Each reader releases the span when done; the last
// release recycles the segment: its epoch is bumped, the records are
// destroyed, and the slab (with its grown capacity) returns to the free
// list for the producer to refill. This replaces the O(consumers) per-batch
// record fan-out copy with O(1) and lets the producer fill the next segment
// while readers drain sealed ones (pipelined dispatch, see
// abv::EvalEngine).
//
// Threading contract:
//   - append/pending/seal: producer thread only.
//   - release: any reader thread, exactly once per reader counted at seal.
//   - The recycle path (last release) and segment reuse synchronize through
//     the arena mutex, so a refilled segment never races a stale reader.
//   - Span contents are immutable and valid until the LAST release; anyone
//     keeping data beyond that point (e.g. failure witnesses) must deep-copy
//     before releasing.
//   - stats() requires quiescence (no concurrent append/release), e.g.
//     after the consumers joined.
#ifndef REPRO_SUPPORT_BATCH_ARENA_H_
#define REPRO_SUPPORT_BATCH_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace repro::support {

template <typename T>
class BatchArena {
 public:
  struct Stats {
    uint64_t records = 0;             // appended over the arena's lifetime
    uint64_t segments_sealed = 0;     // batches handed to readers
    uint64_t segments_allocated = 0;  // distinct slabs ever created
    uint64_t segments_recycled = 0;   // slabs returned by a last release
  };

  // Read-only view over one sealed segment: records [begin, end). Cheap to
  // copy; all copies refer to the same underlying slab and together consume
  // the reader count given to seal().
  class Span {
   public:
    Span() = default;

    const T* data() const { return segment_->records.data() + begin_; }
    const T* begin() const { return data(); }
    const T* end() const { return data() + size(); }
    size_t size() const { return end_ - begin_; }
    bool empty() const { return segment_ == nullptr || begin_ == end_; }
    // Recycle generation of the backing slab at seal time; a debugging aid
    // for use-after-release detection.
    uint64_t epoch() const { return epoch_; }

   private:
    friend class BatchArena;
    Span(typename BatchArena::Segment* segment, size_t begin, size_t end)
        : segment_(segment), begin_(begin), end_(end),
          epoch_(segment->epoch) {}

    typename BatchArena::Segment* segment_ = nullptr;
    size_t begin_ = 0;
    size_t end_ = 0;
    uint64_t epoch_ = 0;
  };

  // `reserve` pre-sizes every new slab (records per segment, typically the
  // batch size) so steady state appends never reallocate.
  explicit BatchArena(size_t reserve = 0) : reserve_(reserve) {}

  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;

  // Appends one record to the open segment (producer only).
  void append(T record) {
    if (open_ == nullptr) open_ = acquire_segment();
    open_->records.push_back(std::move(record));
    ++stats_.records;
  }

  // Records currently buffered in the open (unsealed) segment.
  size_t pending() const {
    return open_ != nullptr ? open_->records.size() : 0;
  }

  // Seals the open segment for `readers` concurrent consumers and returns
  // its span; an empty open segment yields an empty span and seals nothing.
  // The producer may immediately append again (a fresh slab is opened).
  Span seal(uint32_t readers) {
    if (open_ == nullptr || open_->records.empty()) return Span();
    Segment* segment = open_;
    open_ = nullptr;
    segment->readers.store(readers, std::memory_order_release);
    ++stats_.segments_sealed;
    return Span(segment, 0, segment->records.size());
  }

  // One call per reader counted at seal(). Returns true when this was the
  // last outstanding reader: the segment is then recycled (epoch bumped,
  // records destroyed, slab capacity kept) and every pointer into the span
  // is dead. Releasing an empty span is a no-op returning false.
  bool release(const Span& span) {
    Segment* segment = span.segment_;
    if (segment == nullptr) return false;
    if (segment->readers.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++segment->epoch;
    segment->records.clear();
    free_.push_back(segment);
    ++stats_.segments_recycled;
    return true;
  }

  Stats stats() const { return stats_; }

 private:
  struct Segment {
    std::vector<T> records;
    uint64_t epoch = 0;  // bumped on every recycle (under the arena mutex)
    std::atomic<uint32_t> readers{0};
  };

  Segment* acquire_segment() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        Segment* segment = free_.back();
        free_.pop_back();
        return segment;
      }
    }
    // segments_ is producer-only; readers never touch the owner vector.
    segments_.push_back(std::make_unique<Segment>());
    segments_.back()->records.reserve(reserve_);
    ++stats_.segments_allocated;
    return segments_.back().get();
  }

  const size_t reserve_;
  Segment* open_ = nullptr;                         // producer only
  std::vector<std::unique_ptr<Segment>> segments_;  // owns every slab
  std::mutex mu_;                                   // guards free_ + recycle
  std::vector<Segment*> free_;
  Stats stats_;  // records/sealed/allocated: producer; recycled: under mu_
};

}  // namespace repro::support

#endif  // REPRO_SUPPORT_BATCH_ARENA_H_
