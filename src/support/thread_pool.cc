#include "support/thread_pool.h"

namespace repro::support {

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain(std::unique_lock<std::mutex>& lock) {
  while (!queue_.empty()) {
    const std::function<void()>* task = queue_.front();
    queue_.pop_front();
    lock.unlock();
    (*task)();
    lock.lock();
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    drain(lock);
  }
}

void ThreadPool::run_all(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (const auto& task : tasks) queue_.push_back(&task);
  unfinished_ = tasks.size();
  if (!threads_.empty()) work_cv_.notify_all();
  // The caller helps drain the queue, then waits for in-flight tasks.
  drain(lock);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

}  // namespace repro::support
