#include "support/coverage.h"

#include <cstdio>

#include "support/json.h"

namespace repro::support {

CoverageTable::Row& CoverageTable::row(const std::string& property) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, row] : rows_) {
    if (name == property) return row;
  }
  rows_.emplace_back(std::piecewise_construct,
                     std::forward_as_tuple(property), std::forward_as_tuple());
  return rows_.back().second;
}

void CoverageTable::annotate(const std::string& property, std::string label) {
  row(property);  // ensure the row exists (zero counters for pruned rows)
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, existing] : labels_) {
    if (name == property) {
      existing = std::move(label);
      return;
    }
  }
  labels_.emplace_back(property, std::move(label));
}

std::vector<CoverageTable::RowSnapshot> CoverageTable::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RowSnapshot> out;
  out.reserve(rows_.size());
  for (const auto& [name, row] : rows_) {
    RowSnapshot s;
    s.name = name;
    for (const auto& [labelled, label] : labels_) {
      if (labelled == name) {
        s.prune = label;
        break;
      }
    }
    s.activations = row.activations.load(std::memory_order_relaxed);
    s.holds = row.holds.load(std::memory_order_relaxed);
    s.failures = row.failures.load(std::memory_order_relaxed);
    s.uncompleted = row.uncompleted.load(std::memory_order_relaxed);
    s.trivial = row.trivial.load(std::memory_order_relaxed);
    s.real_passes = row.real_passes.load(std::memory_order_relaxed);
    s.vacuous_passes = row.vacuous_passes.load(std::memory_order_relaxed);
    s.missed_deadlines = row.missed_deadlines.load(std::memory_order_relaxed);
    s.node_visits = row.node_visits.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void CoverageTable::write_json(std::ostream& os) const {
  const auto rows = snapshot();
  os << '[';
  bool first = true;
  for (const auto& r : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    json::escape(os, r.name);
    os << '"';
    if (!r.prune.empty()) {
      os << ",\"prune\":\"";
      json::escape(os, r.prune);
      os << '"';
    }
    os << ",\"activations\":" << r.activations
       << ",\"holds\":" << r.holds
       << ",\"failures\":" << r.failures
       << ",\"uncompleted\":" << r.uncompleted
       << ",\"trivial\":" << r.trivial
       << ",\"real_passes\":" << r.real_passes
       << ",\"vacuous_passes\":" << r.vacuous_passes
       << ",\"missed_deadlines\":" << r.missed_deadlines
       << ",\"node_visits\":" << r.node_visits
       << ",\"dynamically_vacuous\":"
       << (r.dynamically_vacuous() ? "true" : "false") << '}';
  }
  os << ']';
}

size_t CoverageTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

}  // namespace repro::support
