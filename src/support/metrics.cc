#include "support/metrics.h"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "support/json.h"

namespace repro::support {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::record(uint64_t value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  if (counts_.empty()) counts_.resize(1, 0);  // default-constructed: 1 bucket
  ++counts_[std::min(bucket, counts_.size() - 1)];
  ++total_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.total_ == 0 && other.bounds_.empty()) return;
  if (counts_.empty() || (bounds_.empty() && total_ == 0)) {
    *this = other;
    return;
  }
  assert(bounds_ == other.bounds_ && "histogram bucket bounds must match");
  for (size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::vector<uint64_t> exponential_bounds(uint64_t first, size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  uint64_t edge = first;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= 2;
  }
  return bounds;
}

uint64_t MetricsRegistry::Counter::total() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
  return total;
}

uint64_t MetricsRegistry::Gauge::max() const {
  uint64_t value = 0;
  for (const Cell& cell : cells_) {
    value = std::max(value, cell.peak.load(std::memory_order_relaxed));
  }
  return value;
}

MetricsRegistry::MetricsRegistry(size_t shards)
    : shards_(std::max<size_t>(1, shards)) {}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, Counter(shards_)).first;
  }
  return it->second;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, Gauge(shards_)).first;
  }
  return it->second;
}

void MetricsRegistry::merge_histogram(const std::string& name,
                                      const Histogram& histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].merge(histogram);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter.total();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge.max();
  }
  snap.histograms = histograms_;
  return snap;
}

namespace {

void write_uint_map(std::ostream& os, const std::map<std::string, uint64_t>& m) {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : m) {
    if (!first) os << ',';
    first = false;
    json::write_string(os, name);
    os << ':' << value;
  }
  os << '}';
}

void write_uint_vector(std::ostream& os, const std::vector<uint64_t>& v) {
  os << '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << ']';
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\"counters\":";
  write_uint_map(os, counters);
  os << ",\"gauges\":";
  write_uint_map(os, gauges);
  os << ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    json::write_string(os, name);
    os << ":{\"bounds\":";
    write_uint_vector(os, h.bounds());
    os << ",\"counts\":";
    write_uint_vector(os, h.counts());
    os << ",\"total\":" << h.total() << ",\"sum\":" << h.sum()
       << ",\"max\":" << h.max() << '}';
  }
  os << "}}";
}

}  // namespace repro::support
