// Live per-property coverage & vacuity counters.
//
// A CoverageTable holds one Row per property. The checker (or wrapper) that
// owns a property is the only writer of that property's Row; it mirrors its
// bookkeeping stats into the Row with relaxed atomic stores at the end of
// every event it processes. Readers (the EvalEngine snapshot sampler, the
// service daemon once it exists) read the whole table concurrently with
// relaxed loads. Because each Row has exactly one writer, plain stores of
// the current totals suffice — no read-modify-write is needed — and a
// mid-run read observes some recent, internally-plausible prefix of the
// run. The end-of-run values are exact: `EvalEngine::finish()` joins every
// shard before the final sample is taken.
//
// Semantics of the counters (see DESIGN.md §13):
//   activations       instances anchored (one per matched activation event)
//   holds             instances retired with verdict true
//   failures          instances retired with verdict false
//   uncompleted       instances truncated at end-of-sim while still pending
//   trivial           activations that resolved at their anchor event
//   real_passes       holds whose antecedent/guard fired ("consequent
//                     exercised") — the pass constitutes real evidence
//   vacuous_passes    holds whose antecedent never fired; holds ==
//                     real_passes + vacuous_passes
//   missed_deadlines  wrapper table entries evaluated past their deadline
//                     (TLM-AT out-of-order streams); always 0 for RTL
//   node_visits       steps x formula node count — a deterministic,
//                     backend-invariant evaluation-cost proxy
//
// A property is *dynamically vacuous* when the run produced no real
// evidence about it: no failures and no real passes.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace repro::support {

class CoverageTable {
 public:
  // One writer (the owning checker/wrapper thread), many readers.
  struct Row {
    std::atomic<uint64_t> activations{0};
    std::atomic<uint64_t> holds{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> uncompleted{0};
    std::atomic<uint64_t> trivial{0};
    std::atomic<uint64_t> real_passes{0};
    std::atomic<uint64_t> vacuous_passes{0};
    std::atomic<uint64_t> missed_deadlines{0};
    std::atomic<uint64_t> node_visits{0};
  };

  // Plain-value copy of a Row, taken with relaxed loads.
  struct RowSnapshot {
    std::string name;
    // Prune-plan annotation ("elide", "subsumed"); empty for live rows.
    std::string prune;
    uint64_t activations = 0;
    uint64_t holds = 0;
    uint64_t failures = 0;
    uint64_t uncompleted = 0;
    uint64_t trivial = 0;
    uint64_t real_passes = 0;
    uint64_t vacuous_passes = 0;
    uint64_t missed_deadlines = 0;
    uint64_t node_visits = 0;

    bool dynamically_vacuous() const {
      return failures == 0 && real_passes == 0;
    }
  };

  // Returns the row for `property`, creating it on first use. The
  // reference stays valid for the table's lifetime (rows live in a deque
  // and are never erased). Thread-safe.
  Row& row(const std::string& property);

  // Attaches a prune-plan label to `property`'s row (creating the row), so
  // pruned properties are accounted explicitly instead of silently missing
  // from the table. Snapshots carry the label; write_json emits a "prune"
  // key only for labelled rows, keeping unpruned output unchanged.
  void annotate(const std::string& property, std::string label);

  // Rows in registration order, read with relaxed loads.
  std::vector<RowSnapshot> snapshot() const;

  // Compact single-line JSON array (JSONL-safe), registration order:
  //   [{"name":"p","activations":3,...,"dynamically_vacuous":false},...]
  void write_json(std::ostream& os) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::pair<std::string, Row>> rows_;
  std::vector<std::pair<std::string, std::string>> labels_;  // property, label
};

}  // namespace repro::support
