// Versioned on-disk transaction-record trace log (record once, check many).
//
// Decouples record production from checking: a TraceWriter serializes the
// engine-visible record stream — per sealed BatchArena segment in sharded
// mode, per record on the serial path — and a TraceReader replays it through
// the same checker configuration via TraceReplaySource. Verdicts depend only
// on the recorded observation stream, so a replayed run reports byte-identical
// results (timing excluded) to the live run that produced the log.
//
// Two encodings share one logical schema (DESIGN.md §16):
//   - binary (default): explicit little-endian integers, magic + schema
//     version + CRC-protected meta block (design, level, clock period,
//     observable dictionary) + CRC-framed record segments + a trailer frame
//     carrying the total record count (truncation detection);
//   - JSONL (paths ending in .jsonl, and auto-detected on read by a leading
//     '{'): a meta object line followed by one record object per line, for
//     debugging and foreign producers. No CRC/trailer; the binary encoding
//     is the durable one.
//
// The observable dictionary is the producing model's snapshot key table,
// verbatim and in order: witness rings serialize observables in key-table
// order, so preserving it is what makes replayed witness bytes identical.
#ifndef REPRO_SUPPORT_TRACELOG_H_
#define REPRO_SUPPORT_TRACELOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tlm/record_source.h"
#include "tlm/transaction.h"

namespace repro::support::tracelog {

// The one schema this revision writes; readers reject anything newer and
// accept anything older (none exist yet). Bump only with a DESIGN.md §16
// compatibility note.
inline constexpr uint32_t kSchemaVersion = 1;
inline constexpr char kMagic[8] = {'R', 'T', 'A', 'B', 'V', 'L', 'O', 'G'};

enum class Format { kBinary, kJsonl };

// .jsonl paths select the debug encoding; everything else is binary.
Format format_for_path(const std::string& path);

// Every rejection reason a reader can produce, each with a distinct kind so
// CLIs and tests can tell truncation from corruption from version skew.
struct TraceError {
  enum class Kind {
    kIo,                  // open/read/write failed
    kBadMagic,            // not a trace log (or JSONL first line not meta)
    kUnsupportedVersion,  // schema_version newer than this reader
    kTruncated,           // file ends mid-frame or without the trailer
    kCrcMismatch,         // frame or meta checksum failed
    kCorrupt,             // structurally invalid (bad tag, length, value)
    kMetaMismatch,        // stream identity does not match the run config
  };
  Kind kind = Kind::kIo;
  std::string message;

  std::string to_string() const;
};

const char* to_string(TraceError::Kind kind);

// IEEE CRC-32 (polynomial 0xEDB88320), the framing checksum.
uint32_t crc32(const uint8_t* data, size_t size);

// Serializes the record stream as it is ingested. The observable dictionary
// is adopted from the first record carrying a snapshot, so the header is
// written at the first frame flush (or at finish() for an empty stream).
// Errors (I/O, inconsistent key tables) latch: ok() turns false and every
// later call is a no-op.
class TraceWriter {
 public:
  // `meta.observables` may be left empty to adopt the dictionary from the
  // first record; when non-empty it must match the records' key tables.
  TraceWriter(const std::string& path, tlm::RecordStreamMeta meta,
              size_t frame_records = 256);
  ~TraceWriter();  // finishes implicitly; prefer calling finish() to see ok()

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const tlm::TransactionRecord& record);
  // One frame per sealed arena segment: serializes [begin, end) and flushes
  // it as a single frame (any partially buffered appends flush first).
  void write_span(const tlm::TransactionRecord* begin,
                  const tlm::TransactionRecord* end);
  // Flushes the tail frame and the trailer; returns ok().
  bool finish();

  bool ok() const { return error_ == nullptr; }
  // Empty string while ok().
  std::string error() const { return error_ ? error_->to_string() : ""; }
  uint64_t records_written() const { return records_written_; }

 private:
  void fail(TraceError::Kind kind, const std::string& message);
  bool adopt_dictionary(const tlm::TransactionRecord& record);
  void serialize(const tlm::TransactionRecord& record);
  void flush_frame();
  void write_header();

  std::string path_;
  tlm::RecordStreamMeta meta_;
  Format format_;
  size_t frame_records_;
  std::ofstream out_;
  std::unique_ptr<TraceError> error_;
  bool header_written_ = false;
  bool finished_ = false;
  std::vector<uint8_t> frame_buf_;  // binary: serialized records of the open frame
  std::string jsonl_buf_;           // jsonl: record lines of the open frame
  size_t frame_count_ = 0;
  uint64_t records_written_ = 0;
};

// Decodes and fully validates a log in one pass; after a successful open()
// the meta, the records and the original frame sizes are in memory.
class TraceReader {
 public:
  // Returns the (distinct-kind) rejection reason, or nullopt on success.
  std::optional<TraceError> open(const std::string& path);

  const tlm::RecordStreamMeta& meta() const { return meta_; }
  const std::vector<tlm::TransactionRecord>& records() const {
    return records_;
  }
  // Record count of each 'R' frame, in file order (JSONL: one virtual frame).
  const std::vector<size_t>& frame_sizes() const { return frame_sizes_; }

 private:
  tlm::RecordStreamMeta meta_;
  std::vector<tlm::TransactionRecord> records_;
  std::vector<size_t> frame_sizes_;
};

// Parses only the stream identity (binary header / JSONL meta line); cheap
// way for CLIs to pick the run configuration before a full replay.
std::optional<TraceError> read_meta(const std::string& path,
                                    tlm::RecordStreamMeta& out);

// Checks a stream's identity against the configuration a run was built
// with. The dictionary is compared as a set: the binding target is the same,
// only the producing container's iteration order may differ (RTL signal
// bags sort their keys; TLM key tables are declaration-ordered).
std::optional<TraceError> validate_meta(const tlm::RecordStreamMeta& actual,
                                        const tlm::RecordStreamMeta& expected);

// Offline replay: hands out the recorded records frame by frame, mirroring
// the spans the live engine sealed.
class TraceReplaySource : public tlm::RecordSource {
 public:
  // The reader must have open()ed successfully and is consumed (moved from).
  explicit TraceReplaySource(TraceReader reader);

  const tlm::RecordStreamMeta& meta() const override { return reader_.meta(); }
  tlm::RecordSpan next() override;

 private:
  TraceReader reader_;
  size_t record_pos_ = 0;
  size_t frame_pos_ = 0;
};

// JSONL building blocks, shared by the writer and `tools/tracelog dump`.
void write_jsonl_meta(std::string& out, const tlm::RecordStreamMeta& meta);
void write_jsonl_record(std::string& out, const tlm::TransactionRecord& record,
                        const std::vector<std::string>& dictionary);

}  // namespace repro::support::tracelog

#endif  // REPRO_SUPPORT_TRACELOG_H_
