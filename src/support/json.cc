#include "support/json.h"

#include <cctype>
#include <cstdlib>

namespace repro::support::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out.kind = Value::Kind::kBool;
          out.boolean = true;
          return true;
        }
        fail("bad literal");
        return false;
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out.kind = Value::Kind::kBool;
          out.boolean = false;
          return true;
        }
        fail("bad literal");
        return false;
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out.kind = Value::Kind::kNull;
          return true;
        }
        fail("bad literal");
        return false;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    out.kind = Value::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        fail("expected object key");
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    out.kind = Value::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Non-surrogate BMP escapes only; emitted as UTF-8.
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(Value& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("bad number");
      return false;
    }
    out.kind = Value::Kind::kNumber;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace repro::support::json
