#include "support/json.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace repro::support::json {

void escape(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_string(std::ostream& os, std::string_view text) {
  os << '"';
  escape(os, text);
  os << '"';
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out.kind = Value::Kind::kBool;
          out.boolean = true;
          return true;
        }
        fail("bad literal");
        return false;
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out.kind = Value::Kind::kBool;
          out.boolean = false;
          return true;
        }
        fail("bad literal");
        return false;
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out.kind = Value::Kind::kNull;
          return true;
        }
        fail("bad literal");
        return false;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    out.kind = Value::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        fail("expected object key");
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    out.kind = Value::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']'");
      return false;
    }
  }

  // Reads exactly 4 hex digits at pos_ into `cp`; any non-hex character
  // fails the parse (strtoul would silently stop early and decode garbage
  // like \uZZZZ to 0, i.e. an embedded NUL).
  bool parse_hex4(uint32_t& cp) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + i];
      uint32_t digit = 0;
      if (h >= '0' && h <= '9') {
        digit = static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        digit = static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        digit = static_cast<uint32_t>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
        return false;
      }
      cp = (cp << 4) | digit;
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair: a high surrogate must be followed by a \uXXXX
          // low surrogate; the pair combines into one supplementary-plane
          // code point (4-byte UTF-8).
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate in \\u escape");
              return false;
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate in \\u escape");
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
            return false;
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(Value& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("bad number");
      return false;
    }
    // Plain unsigned integers additionally keep their exact 64-bit value
    // (the double alone cannot represent integers above 2^53 exactly).
    if (!token.empty() && token.size() <= 20 &&
        token.find_first_not_of("0123456789") == std::string::npos) {
      errno = 0;
      const unsigned long long exact = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.u64 = static_cast<uint64_t>(exact);
      }
    }
    out.kind = Value::Kind::kNumber;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace repro::support::json
