// Minimal JSON reader.
//
// Just enough of RFC 8259 to round-trip the observability outputs this
// library emits (trace files, metric snapshots, run reports) in tests and
// validation tools: objects, arrays, strings with the common escapes
// (\uXXXX escapes are validated digit-by-digit and surrogate pairs decode
// to 4-byte UTF-8; lone surrogates are a parse error), numbers (parsed as
// double), booleans and null. Not a general-purpose library — no streaming,
// inputs are trusted build artifacts.
#ifndef REPRO_SUPPORT_JSON_H_
#define REPRO_SUPPORT_JSON_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repro::support::json {

// The one string-escaping rule every emitter in the repo shares (reports,
// coverage snapshots, prune plans, diagnostics, metrics, trace logs): the
// JSON specials by name, other control characters as lowercase \u00xx,
// everything else verbatim. Exactly the escapes the parser below accepts.
void escape(std::ostream& os, std::string_view text);

// escape() wrapped in double quotes — a complete JSON string literal.
void write_string(std::ostream& os, std::string_view text);

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  // Exact value when the number token is a plain unsigned integer (no sign,
  // fraction or exponent) that fits 64 bits; `number` alone loses precision
  // above 2^53. Consumers of u64 fields (e.g. tracelog JSONL records) read
  // this instead of casting `number`.
  std::optional<uint64_t> u64;
  std::string string;
  std::vector<Value> array;
  // Insertion order preserved (matters for byte-stable golden comparisons).
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage
// rejected). On failure returns nullopt and, if `error` is given, a short
// description with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace repro::support::json

#endif  // REPRO_SUPPORT_JSON_H_
