// Value Change Dump (IEEE 1364) writer for the simulation kernel, so RTL
// runs can be inspected in any waveform viewer.
#ifndef REPRO_SIM_VCD_H_
#define REPRO_SIM_VCD_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/signal.h"

namespace repro::sim {

// Streams a VCD file. Register all signals with add(), then call
// start_dump() once (writes the header and initial values); subsequent
// committed changes are emitted as they happen. The writer assumes a 1 ns
// timescale, matching the kernel's time unit.
class VcdWriter {
 public:
  VcdWriter(Kernel& kernel, std::ostream& os, std::string top = "top")
      : kernel_(kernel), os_(os), top_(std::move(top)) {}

  // Registers a signal under its own name with the given bit width.
  void add(Signal<uint64_t>& signal, int width = 64);
  void add(Signal<bool>& signal);

  // Writes the header and the time-zero values; must be called after all
  // add() calls and before the simulation runs.
  void start_dump();

  uint64_t changes_written() const { return changes_; }

 private:
  struct Entry {
    std::string name;
    std::string id;  // VCD short identifier
    int width;
    std::function<uint64_t()> read;
  };

  std::string next_id();
  void emit(const Entry& entry, uint64_t value);
  void advance_time();

  Kernel& kernel_;
  std::ostream& os_;
  std::string top_;
  std::vector<Entry> entries_;
  bool started_ = false;
  uint64_t changes_ = 0;
  Time last_time_ = 0;
  bool time_written_ = false;
};

}  // namespace repro::sim

#endif  // REPRO_SIM_VCD_H_
