// Typed simulation signal with deferred (delta-cycle) update semantics.
#ifndef REPRO_SIM_SIGNAL_H_
#define REPRO_SIM_SIGNAL_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.h"

namespace repro::sim {

// A signal holds a current value readable by any process; writes are
// deferred to the update phase of the current delta cycle, exactly like
// sc_signal. Sensitive callbacks run in the delta cycle after a committed
// change.
template <typename T>
class Signal : public SignalBase {
 public:
  Signal(Kernel& kernel, std::string name, T initial)
      : SignalBase(std::move(name)),
        kernel_(kernel),
        current_(initial),
        next_(initial) {}

  const T& read() const { return current_; }

  // Schedules `value` to become visible in the next update phase.
  void write(const T& value) {
    next_ = value;
    if (!update_requested_) {
      update_requested_ = true;
      kernel_.request_update(this);
    }
  }

  // Registers a callback invoked (in a fresh delta cycle) whenever the
  // committed value changes.
  void on_change(std::function<void()> fn) {
    watchers_.push_back(std::move(fn));
  }

  Kernel& kernel() { return kernel_; }

 protected:
  bool apply_update() override {
    update_requested_ = false;
    if (next_ == current_) return false;
    current_ = next_;
    return true;
  }

  void notify_changed() override {
    for (const auto& fn : watchers_) kernel_.schedule_delta(fn);
  }

 private:
  Kernel& kernel_;
  T current_;
  T next_;
  bool update_requested_ = false;
  std::vector<std::function<void()>> watchers_;
};

}  // namespace repro::sim

#endif  // REPRO_SIM_SIGNAL_H_
