// Event-driven simulation kernel.
//
// A deliberately small SystemC-like kernel: time is an integer number of
// nanoseconds, a timestamp is processed as a sequence of delta cycles, and
// each delta cycle has an evaluate phase (callbacks run, possibly writing
// signals) followed by an update phase (signal values commit, waking
// sensitive callbacks in the next delta). This gives exactly the two
// observables the paper's methodology needs: cycle-accurate signal events at
// RTL and wall-clock transaction instants at TLM.
#ifndef REPRO_SIM_KERNEL_H_
#define REPRO_SIM_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace repro::sim {

// Simulation time in nanoseconds. The paper expresses next_eps evaluation
// times in nanoseconds (Def. III.3), so we use the same unit throughout.
using Time = uint64_t;

class SignalBase;

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Current simulation time. Valid during and after run().
  Time now() const { return now_; }

  // Schedules `fn` to run in the evaluate phase at absolute time `t`.
  // t must be >= now().
  void schedule_at(Time t, std::function<void()> fn);

  // Schedules `fn` to run in the next delta cycle of the current timestamp.
  void schedule_delta(std::function<void()> fn);

  // Registers a signal whose pending write should commit in the next update
  // phase. Called by Signal<T>::write().
  void request_update(SignalBase* signal);

  // Runs until the event queue is exhausted or simulation time would exceed
  // `until` (events at exactly `until` are processed).
  void run(Time until);

  // Runs until the event queue is empty.
  void run_all();

  // Advances exactly one timestamp (all its delta cycles). Returns false —
  // without advancing — when a stop is pending, the queue is empty, or the
  // next event lies beyond `until`. Pull-style drivers (tlm::LiveRecordSource)
  // interleave step() with draining the records each timestamp produced;
  // unlike run(), step() does not clear a pending stop request.
  bool step(Time until);

  // Stops the simulation at the end of the current delta cycle.
  void stop() { stop_requested_ = true; }

  // Statistics, used by benchmarks to report simulated activity.
  uint64_t events_executed() const { return events_executed_; }
  uint64_t delta_cycles() const { return delta_cycles_; }

 private:
  void execute_timestamp();

  Time now_ = 0;
  bool stop_requested_ = false;
  uint64_t events_executed_ = 0;
  uint64_t delta_cycles_ = 0;

  // Timed events keyed by time; FIFO within a timestamp.
  std::multimap<Time, std::function<void()>> timed_;
  // Callbacks runnable in the current delta cycle.
  std::vector<std::function<void()>> runnable_;
  // Callbacks scheduled for the next delta cycle of this timestamp.
  std::vector<std::function<void()>> next_delta_;
  // Signals with pending writes awaiting the update phase.
  std::vector<SignalBase*> pending_updates_;
};

// Base class for signals: the kernel drives the update phase through it.
class SignalBase {
 public:
  explicit SignalBase(std::string name) : name_(std::move(name)) {}
  virtual ~SignalBase() = default;

  const std::string& name() const { return name_; }

 protected:
  friend class Kernel;
  // Commits the pending write, if any; returns true if the value changed.
  virtual bool apply_update() = 0;
  // Invoked by the kernel when apply_update() returned true.
  virtual void notify_changed() = 0;

 private:
  std::string name_;
};

}  // namespace repro::sim

#endif  // REPRO_SIM_KERNEL_H_
