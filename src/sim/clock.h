// Clock generator for RTL-style cycle-accurate models.
#ifndef REPRO_SIM_CLOCK_H_
#define REPRO_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/kernel.h"

namespace repro::sim {

// Generates rising/falling edge callbacks with a fixed period. The first
// rising edge occurs at `start`; the falling edge at start + period/2.
// Posedge callbacks are invoked in registration order within the evaluate
// phase of the edge timestamp, so signal writes made by one callback are not
// visible to the others until the following delta — matching RTL registers.
class Clock {
 public:
  Clock(Kernel& kernel, std::string name, Time period, Time start = 0);

  // Registers a callback for every rising edge.
  void on_posedge(std::function<void()> fn);
  // Registers a callback for every falling edge.
  void on_negedge(std::function<void()> fn);

  Time period() const { return period_; }
  const std::string& name() const { return name_; }
  // Number of rising edges generated so far.
  uint64_t cycles() const { return cycles_; }

 private:
  void rising();
  void falling();

  Kernel& kernel_;
  std::string name_;
  Time period_;
  Time next_edge_;
  uint64_t cycles_ = 0;
  std::vector<std::function<void()>> posedge_;
  std::vector<std::function<void()>> negedge_;
};

}  // namespace repro::sim

#endif  // REPRO_SIM_CLOCK_H_
