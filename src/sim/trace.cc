#include "sim/trace.h"

#include <ostream>

namespace repro::sim {

void ChangeLog::watch(Signal<uint64_t>& signal) {
  record(kernel_.now(), signal.name(), signal.read());
  signal.on_change([this, &signal] {
    record(kernel_.now(), signal.name(), signal.read());
  });
}

void ChangeLog::watch(Signal<bool>& signal) {
  record(kernel_.now(), signal.name(), signal.read() ? 1 : 0);
  signal.on_change([this, &signal] {
    record(kernel_.now(), signal.name(), signal.read() ? 1 : 0);
  });
}

void ChangeLog::record(Time time, const std::string& name, uint64_t value) {
  // Collapse repeated observations of the same value (TLM models may report
  // a stable value at several transaction boundaries).
  for (auto it = changes_.rbegin(); it != changes_.rend(); ++it) {
    if (it->name == name) {
      if (it->value == value) return;
      break;
    }
  }
  changes_.push_back({time, name, value});
}

std::vector<Change> ChangeLog::for_signal(const std::string& name) const {
  std::vector<Change> out;
  for (const auto& change : changes_) {
    if (change.name == name) out.push_back(change);
  }
  return out;
}

void ChangeLog::dump(std::ostream& os) const {
  for (const auto& change : changes_) {
    os << change.time << " ns  " << change.name << " = " << change.value << "\n";
  }
}

}  // namespace repro::sim
