#include "sim/clock.h"

#include <utility>

namespace repro::sim {

Clock::Clock(Kernel& kernel, std::string name, Time period, Time start)
    : kernel_(kernel), name_(std::move(name)), period_(period), next_edge_(start) {
  kernel_.schedule_at(next_edge_, [this] { rising(); });
}

void Clock::on_posedge(std::function<void()> fn) {
  posedge_.push_back(std::move(fn));
}

void Clock::on_negedge(std::function<void()> fn) {
  negedge_.push_back(std::move(fn));
}

void Clock::rising() {
  ++cycles_;
  for (const auto& fn : posedge_) fn();
  if (!negedge_.empty()) {
    kernel_.schedule_at(kernel_.now() + period_ / 2, [this] { falling(); });
  }
  next_edge_ += period_;
  kernel_.schedule_at(next_edge_, [this] { rising(); });
}

void Clock::falling() {
  for (const auto& fn : negedge_) fn();
}

}  // namespace repro::sim
