// Value-change recording, used by tests to establish timing equivalence
// (Def. III.1) between models at different abstraction levels.
#ifndef REPRO_SIM_TRACE_H_
#define REPRO_SIM_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/signal.h"

namespace repro::sim {

// One observed assignment: signal `name` took value `value` at `time`.
struct Change {
  Time time;
  std::string name;
  uint64_t value;

  bool operator==(const Change&) const = default;
};

// Records committed value changes of the signals it watches. The initial
// value is recorded as a change at the attach time so that two logs are
// comparable from t = 0.
class ChangeLog {
 public:
  explicit ChangeLog(Kernel& kernel) : kernel_(kernel) {}

  // Starts watching `signal`; every committed change is appended.
  void watch(Signal<uint64_t>& signal);
  void watch(Signal<bool>& signal);

  // Appends an explicit observation (used by TLM models, where interface
  // values change at transaction boundaries rather than via signals).
  void record(Time time, const std::string& name, uint64_t value);

  const std::vector<Change>& changes() const { return changes_; }

  // Changes restricted to a single signal name, in time order.
  std::vector<Change> for_signal(const std::string& name) const;

  // Writes a VCD-like textual dump, one change per line.
  void dump(std::ostream& os) const;

 private:
  Kernel& kernel_;
  std::vector<Change> changes_;
};

}  // namespace repro::sim

#endif  // REPRO_SIM_TRACE_H_
