#include "sim/vcd.h"

#include <cassert>

namespace repro::sim {

std::string VcdWriter::next_id() {
  // Printable-ASCII identifiers: !, ", #, ... with multi-character overflow.
  std::string id;
  size_t n = entries_.size();
  do {
    id += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n > 0);
  return id;
}

void VcdWriter::add(Signal<uint64_t>& signal, int width) {
  assert(!started_ && "add() must precede start_dump()");
  Entry entry{signal.name(), next_id(), width,
              [&signal] { return signal.read(); }};
  const size_t index = entries_.size();
  entries_.push_back(std::move(entry));
  signal.on_change([this, index] {
    if (!started_) return;
    advance_time();
    emit(entries_[index], entries_[index].read());
  });
}

void VcdWriter::add(Signal<bool>& signal) {
  assert(!started_ && "add() must precede start_dump()");
  Entry entry{signal.name(), next_id(), 1,
              [&signal] { return signal.read() ? 1u : 0u; }};
  const size_t index = entries_.size();
  entries_.push_back(std::move(entry));
  signal.on_change([this, index] {
    if (!started_) return;
    advance_time();
    emit(entries_[index], entries_[index].read());
  });
}

void VcdWriter::start_dump() {
  os_ << "$timescale 1ns $end\n";
  os_ << "$scope module " << top_ << " $end\n";
  for (const Entry& entry : entries_) {
    os_ << "$var wire " << entry.width << " " << entry.id << " " << entry.name
        << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n";
  os_ << "$dumpvars\n";
  started_ = true;  // set before emitting so counters behave consistently
  for (const Entry& entry : entries_) emit(entry, entry.read());
  os_ << "$end\n";
  last_time_ = kernel_.now();
  time_written_ = true;
}

void VcdWriter::advance_time() {
  const Time now = kernel_.now();
  if (!time_written_ || now != last_time_) {
    os_ << "#" << now << "\n";
    last_time_ = now;
    time_written_ = true;
  }
}

void VcdWriter::emit(const Entry& entry, uint64_t value) {
  ++changes_;
  if (entry.width == 1) {
    os_ << (value & 1) << entry.id << "\n";
    return;
  }
  // Binary vector value: b<bits> <id>.
  std::string bits;
  for (int bit = entry.width - 1; bit >= 0; --bit) {
    bits += ((value >> bit) & 1) ? '1' : '0';
  }
  // Trim leading zeros (VCD allows it), keep at least one digit.
  const size_t first_one = bits.find('1');
  if (first_one != std::string::npos) {
    bits = bits.substr(first_one);
  } else {
    bits = "0";
  }
  os_ << "b" << bits << " " << entry.id << "\n";
}

}  // namespace repro::sim
