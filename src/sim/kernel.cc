#include "sim/kernel.h"

#include <cassert>
#include <utility>

namespace repro::sim {

void Kernel::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ || timed_.empty());  // allow pre-run setup at t < first run
  timed_.emplace(t, std::move(fn));
}

void Kernel::schedule_delta(std::function<void()> fn) {
  next_delta_.push_back(std::move(fn));
}

void Kernel::request_update(SignalBase* signal) {
  pending_updates_.push_back(signal);
}

void Kernel::execute_timestamp() {
  // Move all events at now_ into the runnable set.
  auto range = timed_.equal_range(now_);
  for (auto it = range.first; it != range.second; ++it) {
    runnable_.push_back(std::move(it->second));
  }
  timed_.erase(range.first, range.second);

  while (!runnable_.empty()) {
    ++delta_cycles_;
    // Evaluate phase. Callbacks may write signals (queued for the update
    // phase) and schedule further deltas.
    std::vector<std::function<void()>> batch;
    batch.swap(runnable_);
    for (auto& fn : batch) {
      ++events_executed_;
      fn();
      if (stop_requested_) return;
    }
    // Update phase: commit signal writes; changed signals wake their
    // sensitive callbacks in the next delta.
    std::vector<SignalBase*> updates;
    updates.swap(pending_updates_);
    for (SignalBase* signal : updates) {
      if (signal->apply_update()) signal->notify_changed();
    }
    runnable_.swap(next_delta_);
  }
}

void Kernel::run(Time until) {
  stop_requested_ = false;
  while (step(until)) {
  }
}

bool Kernel::step(Time until) {
  if (stop_requested_ || timed_.empty()) return false;
  const Time next = timed_.begin()->first;
  if (next > until) return false;
  now_ = next;
  execute_timestamp();
  return true;
}

void Kernel::run_all() {
  stop_requested_ = false;
  while (!stop_requested_ && !timed_.empty()) {
    now_ = timed_.begin()->first;
    execute_timestamp();
  }
}

}  // namespace repro::sim
