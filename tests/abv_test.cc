#include <gtest/gtest.h>

#include <sstream>

#include "abv/report.h"
#include "abv/rtl_env.h"
#include "abv/tlm_env.h"
#include "psl/parser.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"
#include "tlm/recorder.h"

namespace repro::abv {
namespace {

psl::RtlProperty rtl_prop(const std::string& text) {
  auto result = psl::parse_rtl_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

// ---- SignalBag ------------------------------------------------------------------

TEST(SignalBag, ReadsSignalsAndGetters) {
  sim::Kernel kernel;
  sim::Signal<uint64_t> data(kernel, "data", 5);
  sim::Signal<bool> flag(kernel, "flag", true);
  SignalBag bag;
  bag.add("data", data);
  bag.add("flag", flag);
  bag.add("derived", [] { return uint64_t{99}; });
  EXPECT_TRUE(bag.has("data"));
  EXPECT_FALSE(bag.has("nope"));
  EXPECT_EQ(bag.value("data"), 5u);
  EXPECT_EQ(bag.value("flag"), 1u);
  EXPECT_EQ(bag.value("derived"), 99u);
}

// ---- RtlAbvEnv -------------------------------------------------------------------

TEST(RtlAbvEnv, SamplesAfterDesignSettles) {
  // A register written at the rising edge must be visible to the checker at
  // that same edge's evaluation point (post-settle sampling).
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  sim::Signal<uint64_t> counter(kernel, "counter", 0);
  clock.on_posedge([&] { counter.write(counter.read() + 1); });

  SignalBag bag;
  bag.add("counter", counter);
  RtlAbvEnv env(kernel, bag);
  // counter >= 1 at every sampled edge: true only with post-settle sampling
  // (the pre-edge value at the first edge is 0).
  env.add_property(rtl_prop("always (counter >= 1) @clk_pos"));
  env.attach(clock);
  kernel.run(100);
  env.finish();
  EXPECT_TRUE(env.all_ok());
  EXPECT_EQ(env.checkers()[0]->stats().events, 11u);  // edges 0..100
}

TEST(RtlAbvEnv, ClkNegPropertiesSampleFallingEdges) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  sim::Signal<uint64_t> x(kernel, "x", 1);
  SignalBag bag;
  bag.add("x", x);
  RtlAbvEnv env(kernel, bag);
  env.add_property(rtl_prop("pos: always (x == 1) @clk_pos"));
  env.add_property(rtl_prop("neg: always (x == 1) @clk_neg"));
  env.add_property(rtl_prop("both: always (x == 1) @clk"));
  env.attach(clock);
  kernel.run(40);  // posedges 0..40 (5), negedges 5..35 (4)
  env.finish();
  EXPECT_EQ(env.checkers()[0]->stats().events, 5u);
  EXPECT_EQ(env.checkers()[1]->stats().events, 4u);
  EXPECT_EQ(env.checkers()[2]->stats().events, 9u);
}

TEST(RtlAbvEnv, DetectsRtlViolation) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  sim::Signal<uint64_t> x(kernel, "x", 0);
  clock.on_posedge([&] { x.write(x.read() + 1); });
  SignalBag bag;
  bag.add("x", x);
  RtlAbvEnv env(kernel, bag);
  env.add_property(rtl_prop("bound: always (x <= 3) @clk_pos"));
  env.attach(clock);
  kernel.run(100);
  env.finish();
  EXPECT_FALSE(env.all_ok());
  EXPECT_GT(env.report().total_failures(), 0u);
}

// ---- TlmAbvEnv -------------------------------------------------------------------

tlm::TransactionRecord record_at(sim::Time end, uint64_t ds, uint64_t rdy) {
  static auto keys =
      std::make_shared<tlm::Snapshot::Keys>(tlm::Snapshot::Keys{"ds", "rdy"});
  tlm::TransactionRecord record;
  record.end = end;
  record.observables = tlm::Snapshot(keys);
  record.observables.set("ds", ds);
  record.observables.set("rdy", rdy);
  return record;
}

TEST(TlmAbvEnv, DrivesWrappersFromRecorder) {
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  TlmAbvEnv env(10);
  env.add_property(tlm_prop("q: always (!ds || next_e[1,20](rdy)) @Tb"));
  env.attach(recorder);
  kernel.schedule_at(0, [&] {
    recorder.emit(record_at(10, 1, 0));
    recorder.emit(record_at(30, 0, 1));
  });
  kernel.run_all();
  env.finish();
  EXPECT_TRUE(env.all_ok());
  EXPECT_EQ(env.wrappers()[0]->stats().transactions, 2u);
  EXPECT_EQ(env.wrappers()[0]->stats().activations, 2u);
}

TEST(TlmAbvEnv, DrivesRtlCheckersEventCounted) {
  // TLM-CA replay: an unabstracted next counts transactions.
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  TlmAbvEnv env(10);
  env.add_rtl_property(rtl_prop("p: always (!ds || next(rdy)) @clk_pos"));
  env.attach(recorder);
  kernel.schedule_at(0, [&] {
    recorder.emit(record_at(10, 1, 0));
    recorder.emit(record_at(20, 0, 1));
    recorder.emit(record_at(30, 1, 0));
    recorder.emit(record_at(40, 0, 0));  // violation: rdy low one event later
  });
  kernel.run_all();
  env.finish();
  EXPECT_FALSE(env.all_ok());
  Report report = env.report();
  EXPECT_EQ(report.total_failures(), 1u);
}

// ---- Report ---------------------------------------------------------------------

TEST(Report, PrintsOneRowPerProperty) {
  checker::PropertyChecker checker("demo", psl::parse_expr("always a").value(),
                                   nullptr);
  checker::MapContext ctx;
  ctx.set("a", 1);
  checker.on_event(10, ctx);
  checker.finish();
  Report report;
  report.add(checker);
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.total_activations(), 1u);
}

}  // namespace
}  // namespace repro::abv
