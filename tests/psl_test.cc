#include <gtest/gtest.h>

#include "psl/ast.h"
#include "psl/lexer.h"
#include "psl/parser.h"
#include "psl/simple_subset.h"

namespace repro::psl {
namespace {

// ---- Lexer ------------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsAndIdents) {
  auto tokens = tokenize("always (!ds || next[17](out != 0)) @clk_pos");
  ASSERT_TRUE(tokens.ok());
  const auto& v = tokens.value();
  EXPECT_EQ(v.front().text, "always");
  EXPECT_EQ(v.back().kind, TokenKind::kEnd);
}

TEST(Lexer, StrongOperatorSuffix) {
  auto tokens = tokenize("a until! b eventually! c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].text, "until!");
  EXPECT_EQ(tokens.value()[3].text, "eventually!");
}

TEST(Lexer, HexAndDecimalNumbers) {
  auto tokens = tokenize("x == 0x1F y == 42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[2].value, 0x1Fu);
  EXPECT_EQ(tokens.value()[5].value, 42u);
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = tokenize("a # comment\n-- another\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 3u);  // a, b, end
}

TEST(Lexer, SingleEqualsAcceptedAsEquality) {
  auto tokens = tokenize("indata = 0");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kEq);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_FALSE(tokenize("a $ b").ok());
  EXPECT_FALSE(tokenize("a - b").ok());
  EXPECT_FALSE(tokenize("0x").ok());
}

// ---- Parser round trips -----------------------------------------------------

// Parsing the printed form must reproduce the same tree.
void expect_roundtrip(const std::string& text) {
  auto first = parse_expr(text);
  ASSERT_TRUE(first.ok()) << text << ": " << first.error().to_string();
  const std::string printed = to_string(first.value());
  auto second = parse_expr(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.error().to_string();
  EXPECT_TRUE(equal(first.value(), second.value()))
      << text << " -> " << printed << " -> " << to_string(second.value());
}

TEST(Parser, RoundTrips) {
  expect_roundtrip("ds");
  expect_roundtrip("!ds");
  expect_roundtrip("ds && rdy || out != 0");
  expect_roundtrip("always (!(ds && indata == 0) || next[17](out != 0))");
  expect_roundtrip("always (!ds || (next(!ds) until next[2](rdy)))");
  expect_roundtrip("a until! b");
  expect_roundtrip("a release b");
  expect_roundtrip("eventually! rdy");
  expect_roundtrip("next_e[1,170](out != 0)");
  expect_roundtrip("always (!ds || (next_e[1,10](!ds) until next_e[2,20](rdy)))");
  expect_roundtrip("a -> b -> c");
  expect_roundtrip("x >= 16 && x <= 235");
  expect_roundtrip("r == g && g == b");
  expect_roundtrip("true until! false");
  expect_roundtrip("(a until b) abort rst");
  expect_roundtrip("always (!a || b) abort rst");
}

TEST(Parser, NeverIsSugarForAlwaysNot) {
  auto never = parse_expr("never (a && b)");
  auto always_not = parse_expr("always !(a && b)");
  ASSERT_TRUE(never.ok());
  ASSERT_TRUE(always_not.ok());
  EXPECT_TRUE(equal(never.value(), always_not.value()));
}

TEST(Parser, AbortConditionMustBeBoolean) {
  EXPECT_TRUE(parse_expr("a abort rst").ok());
  EXPECT_TRUE(parse_expr("next[3](a) abort (rst || err == 2)").ok());
  EXPECT_FALSE(parse_expr("a abort next(rst)").ok());
}

TEST(Parser, PrecedenceAndBindsTighterThanOr) {
  auto e = parse_expr("a || b && c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, ExprKind::kOr);
  EXPECT_EQ(e.value()->rhs->kind, ExprKind::kAnd);
}

TEST(Parser, ImpliesIsRightAssociative) {
  auto e = parse_expr("a -> b -> c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, ExprKind::kImplies);
  EXPECT_EQ(e.value()->rhs->kind, ExprKind::kImplies);
}

TEST(Parser, UntilBindsLooserThanOr) {
  auto e = parse_expr("a || b until c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, ExprKind::kUntil);
  EXPECT_EQ(e.value()->lhs->kind, ExprKind::kOr);
}

TEST(Parser, NextDefaultsToOne) {
  auto e = parse_expr("next(a)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->kind, ExprKind::kNext);
  EXPECT_EQ(e.value()->next_count, 1u);
}

TEST(Parser, ErrorsArePositioned) {
  auto e = parse_expr("always (ds ||");
  ASSERT_FALSE(e.ok());
  EXPECT_GE(e.error().position, 0);
}

TEST(Parser, RejectsNextZero) {
  EXPECT_FALSE(parse_expr("next[0](a)").ok());
}

TEST(Parser, RejectsTrailingInput) {
  EXPECT_FALSE(parse_expr("a b").ok());
}

TEST(Parser, RejectsKeywordAsAtom) {
  EXPECT_FALSE(parse_expr("until").ok());
}

TEST(Parser, ComparisonNeedsOperand) {
  EXPECT_FALSE(parse_expr("a ==").ok());
  EXPECT_FALSE(parse_expr("a == until").ok());
}

// ---- Properties and contexts -------------------------------------------------

TEST(Parser, RtlPropertyWithNameAndContext) {
  auto p = parse_rtl_property("p1: always (!ds || rdy) @clk_pos");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().name, "p1");
  EXPECT_EQ(p.value().context.kind, ClockContext::Kind::kClkPos);
  EXPECT_EQ(p.value().context.guard, nullptr);
}

TEST(Parser, RtlPropertyGuardedContext) {
  auto p = parse_rtl_property("always (!ds || rdy) @clk_pos && monitor_en");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().context.kind, ClockContext::Kind::kClkPos);
  ASSERT_NE(p.value().context.guard, nullptr);
  EXPECT_EQ(to_string(p.value().context.guard), "monitor_en");
}

TEST(Parser, RtlPropertyDefaultContextIsTrue) {
  auto p = parse_rtl_property("always rdy");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().context.kind, ClockContext::Kind::kTrue);
}

TEST(Parser, RtlPropertyRejectsTbContext) {
  EXPECT_FALSE(parse_rtl_property("always rdy @Tb").ok());
}

TEST(Parser, TlmPropertyParsesTb) {
  auto q = parse_tlm_property("q3: always (!ds || next_e[1,170](rdy)) @Tb");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().name, "q3");
  EXPECT_EQ(q.value().context.guard, nullptr);
}

TEST(Parser, TlmPropertyGuardedTb) {
  auto q = parse_tlm_property("always rdy @Tb && monitor_en");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q.value().context.guard, nullptr);
}

TEST(Parser, TlmPropertyRejectsClockContext) {
  EXPECT_FALSE(parse_tlm_property("always rdy @clk_pos").ok());
}

TEST(Parser, PropertyFileParsesMultiple) {
  auto file = parse_rtl_property_file(R"(
    # suite
    p1: always (!ds || rdy) @clk_pos;
    p2: always (!ds || next(!ds until rdy)) @clk_pos;
  )");
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file.value().size(), 2u);
  EXPECT_EQ(file.value()[0].name, "p1");
  EXPECT_EQ(file.value()[1].name, "p2");
}

TEST(Parser, PropertyFileRejectsMissingSeparator) {
  EXPECT_FALSE(parse_rtl_property_file("p1: a @clk_pos p2: b @clk_pos").ok());
}

// ---- AST queries --------------------------------------------------------------

TEST(Ast, ReferencedSignals) {
  auto e = parse_expr("always (!(ds && indata == 0) || next[17](out != k2))");
  ASSERT_TRUE(e.ok());
  const auto signals = referenced_signals(e.value());
  EXPECT_EQ(signals, (std::set<std::string>{"ds", "indata", "out", "k2"}));
}

TEST(Ast, IsBooleanAndLiteral) {
  EXPECT_TRUE(is_boolean(parse_expr("a && !b || c != 3").value()));
  EXPECT_FALSE(is_boolean(parse_expr("next(a)").value()));
  EXPECT_TRUE(is_literal(parse_expr("!a").value()));
  EXPECT_FALSE(is_literal(parse_expr("!(a && b)").value()));
}

TEST(Ast, MaxEpsAccumulatesAlongPaths) {
  auto e = parse_expr("next_e[1,30](a) && next_e[2,50](b)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(max_eps(e.value()), 50u);
}

TEST(Ast, HasTemporal) {
  EXPECT_FALSE(has_temporal(parse_expr("a && b").value()));
  EXPECT_TRUE(has_temporal(parse_expr("a until b").value()));
  EXPECT_TRUE(has_temporal(parse_expr("always a").value()));
}

TEST(Ast, EqualityDistinguishesStrength) {
  EXPECT_FALSE(equal(parse_expr("a until b").value(),
                     parse_expr("a until! b").value()));
  EXPECT_TRUE(equal(parse_expr("a until b").value(),
                    parse_expr("a until b").value()));
}

TEST(Ast, NodeCount) {
  EXPECT_EQ(node_count(parse_expr("a && b").value()), 3u);
}

// ---- Simple subset -------------------------------------------------------------

TEST(SimpleSubset, AcceptsPaperProperties) {
  EXPECT_TRUE(in_simple_subset(
      parse_expr("always (!(ds && indata == 0) || next[17](out != 0))").value()));
  EXPECT_TRUE(in_simple_subset(
      parse_expr("always (!ds || (next(!ds) until next[2](rdy)))").value()));
}

TEST(SimpleSubset, RejectsNegatedTemporal) {
  const auto violations =
      simple_subset_violations(parse_expr("!(next(a))").value());
  EXPECT_FALSE(violations.empty());
}

TEST(SimpleSubset, RejectsTemporalOrTemporal) {
  EXPECT_FALSE(in_simple_subset(parse_expr("next(a) || next(b)").value()));
}

TEST(SimpleSubset, RejectsTemporalImplicationAntecedent) {
  EXPECT_FALSE(in_simple_subset(parse_expr("next(a) -> b").value()));
}

TEST(SimpleSubset, AcceptsBooleanOperandFixpoints) {
  EXPECT_TRUE(in_simple_subset(parse_expr("a until b").value()));
  EXPECT_TRUE(in_simple_subset(parse_expr("a release b").value()));
  EXPECT_TRUE(in_simple_subset(parse_expr("(a until b) abort rst").value()));
}

}  // namespace
}  // namespace repro::psl
