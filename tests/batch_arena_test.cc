// Tests for the zero-copy batch arena and the pipelined dispatch built on
// it: slab recycling (epoch bumps, free-list reuse, multi-reader release),
// and the engine-level edge cases — max_inflight=1 degenerate pipelining,
// failure witnesses outliving recycled segments, empty-tail finish, and the
// segment-count bound implied by backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "abv/eval_engine.h"
#include "checker/wrapper.h"
#include "psl/parser.h"
#include "support/batch_arena.h"
#include "support/metrics.h"
#include "tlm/transaction.h"

namespace repro {
namespace {

// ---- BatchArena ------------------------------------------------------------------

TEST(BatchArena, AppendSealReleaseRecyclesSlab) {
  support::BatchArena<int> arena(/*reserve=*/8);
  arena.append(1);
  arena.append(2);
  arena.append(3);
  EXPECT_EQ(arena.pending(), 3u);

  auto span = arena.seal(/*readers=*/1);
  EXPECT_EQ(arena.pending(), 0u);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span.data()[0], 1);
  EXPECT_EQ(span.data()[2], 3);
  EXPECT_EQ(span.epoch(), 0u);

  EXPECT_TRUE(arena.release(span));  // sole reader: recycles
  const auto stats = arena.stats();
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.segments_sealed, 1u);
  EXPECT_EQ(stats.segments_allocated, 1u);
  EXPECT_EQ(stats.segments_recycled, 1u);

  // The next batch reuses the recycled slab instead of allocating.
  arena.append(4);
  auto span2 = arena.seal(1);
  EXPECT_EQ(arena.stats().segments_allocated, 1u);
  EXPECT_EQ(span2.epoch(), 1u);  // epoch bumped by the recycle
  ASSERT_EQ(span2.size(), 1u);
  EXPECT_EQ(span2.data()[0], 4);
  arena.release(span2);
}

TEST(BatchArena, EmptySealYieldsEmptySpanAndSealsNothing) {
  support::BatchArena<int> arena;
  auto span = arena.seal(4);
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(span.size(), 0u);
  EXPECT_FALSE(arena.release(span));  // releasing an empty span: no-op
  const auto stats = arena.stats();
  EXPECT_EQ(stats.segments_sealed, 0u);
  EXPECT_EQ(stats.segments_allocated, 0u);
  EXPECT_EQ(stats.segments_recycled, 0u);
}

TEST(BatchArena, OnlyLastOfManyReadersRecycles) {
  support::BatchArena<std::string> arena;
  arena.append("a");
  arena.append("b");
  auto span = arena.seal(/*readers=*/3);

  EXPECT_FALSE(arena.release(span));
  // The slab must stay intact while readers remain.
  EXPECT_EQ(span.data()[0], "a");
  EXPECT_EQ(span.data()[1], "b");
  EXPECT_FALSE(arena.release(span));
  EXPECT_EQ(span.data()[1], "b");
  EXPECT_TRUE(arena.release(span));
  EXPECT_EQ(arena.stats().segments_recycled, 1u);
}

TEST(BatchArena, EpochBumpsOnEveryRecycleAndSlabIsReused) {
  support::BatchArena<int> arena(4);
  for (uint64_t round = 0; round < 16; ++round) {
    arena.append(static_cast<int>(round));
    auto span = arena.seal(1);
    EXPECT_EQ(span.epoch(), round);
    EXPECT_TRUE(arena.release(span));
  }
  const auto stats = arena.stats();
  EXPECT_EQ(stats.segments_allocated, 1u);  // one slab serves every round
  EXPECT_EQ(stats.segments_sealed, 16u);
  EXPECT_EQ(stats.segments_recycled, 16u);
}

TEST(BatchArena, SupportsMoveOnlyRecords) {
  support::BatchArena<std::unique_ptr<int>> arena;
  arena.append(std::make_unique<int>(7));
  auto span = arena.seal(1);
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(*span.data()[0], 7);
  EXPECT_TRUE(arena.release(span));
}

TEST(BatchArena, ConcurrentReadersAllSeeTheSameSlab) {
  support::BatchArena<int> arena(64);
  constexpr int kRecords = 64;
  constexpr uint32_t kReaders = 4;
  for (int i = 0; i < kRecords; ++i) arena.append(i);
  auto span = arena.seal(kReaders);

  std::atomic<int> recycles{0};
  std::atomic<int> sum_errors{0};
  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      long long sum = 0;
      for (const int v : span) sum += v;
      if (sum != kRecords * (kRecords - 1) / 2) sum_errors.fetch_add(1);
      if (arena.release(span)) recycles.fetch_add(1);
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(sum_errors.load(), 0);
  EXPECT_EQ(recycles.load(), 1);  // exactly one last reader
  EXPECT_EQ(arena.stats().segments_recycled, 1u);
}

// ---- PipelineDispatch ------------------------------------------------------------

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

tlm::TransactionRecord make_record(sim::Time end, uint64_t ds, uint64_t rdy,
                                   uint64_t out) {
  static auto keys = std::make_shared<tlm::Snapshot::Keys>(
      tlm::Snapshot::Keys{"ds", "rdy", "out"});
  tlm::TransactionRecord record;
  record.end = end;
  record.observables = tlm::Snapshot(keys);
  record.observables.set("ds", ds);
  record.observables.set("rdy", rdy);
  record.observables.set("out", out);
  return record;
}

std::vector<psl::TlmProperty> small_suite() {
  return {
      tlm_prop("s1: always (!ds || next_e[1,40](rdy)) @Tb"),
      tlm_prop("d1: always (!ds || (!rdy until rdy)) @Tb"),
      tlm_prop("f1: always (!ds || next_e[1,40](out != 0)) @Tb"),
  };
}

std::vector<tlm::TransactionRecord> mixed_stream(size_t n) {
  std::vector<tlm::TransactionRecord> out;
  sim::Time t = 10;
  for (size_t i = 0; i < n; ++i) {
    const bool fire = i % 3 == 0;
    const bool gap = i % 7 == 6;
    const uint64_t data = i % 5 == 0 ? 0 : i;  // zeros fail f1
    out.push_back(make_record(t, fire ? 1 : 0, fire ? 0 : 1, data));
    t += gap ? 130 : 40;
  }
  return out;
}

enum class Ingest { kCopy, kMove, kBulk };

struct SuiteRun {
  std::vector<std::unique_ptr<checker::TlmCheckerWrapper>> wrappers;
};

SuiteRun run_suite(abv::EngineConfig config, size_t records,
                   support::MetricsRegistry* metrics = nullptr,
                   Ingest ingest = Ingest::kCopy) {
  SuiteRun run;
  abv::EvalEngine::Options options;
  options.config = config;
  options.metrics = metrics;
  abv::EvalEngine engine(options);
  for (const psl::TlmProperty& p : small_suite()) {
    run.wrappers.push_back(std::make_unique<checker::TlmCheckerWrapper>(p, 10));
    engine.add(run.wrappers.back().get());
  }
  std::vector<tlm::TransactionRecord> stream = mixed_stream(records);
  switch (ingest) {
    case Ingest::kCopy:
      for (const tlm::TransactionRecord& r : stream) engine.on_record(r);
      break;
    case Ingest::kMove:
      for (tlm::TransactionRecord& r : stream) engine.on_record(std::move(r));
      break;
    case Ingest::kBulk:
      engine.on_records(stream.data(), stream.data() + stream.size());
      break;
  }
  engine.finish();
  return run;
}

void expect_identical(const SuiteRun& a, const SuiteRun& b) {
  ASSERT_EQ(a.wrappers.size(), b.wrappers.size());
  for (size_t i = 0; i < a.wrappers.size(); ++i) {
    const checker::TlmCheckerWrapper& wa = *a.wrappers[i];
    const checker::TlmCheckerWrapper& wb = *b.wrappers[i];
    ASSERT_EQ(wa.name(), wb.name());
    EXPECT_EQ(wa.stats().transactions, wb.stats().transactions) << wa.name();
    EXPECT_EQ(wa.stats().activations, wb.stats().activations) << wa.name();
    EXPECT_EQ(wa.stats().failures, wb.stats().failures) << wa.name();
    EXPECT_EQ(wa.stats().holds, wb.stats().holds) << wa.name();
    ASSERT_EQ(wa.failures().size(), wb.failures().size()) << wa.name();
    for (size_t k = 0; k < wa.failures().size(); ++k) {
      EXPECT_EQ(wa.failures()[k].time, wb.failures()[k].time) << wa.name();
    }
  }
}

TEST(PipelineDispatch, MaxInflightOneDegeneratesToSynchronousDispatch) {
  // max_inflight_batches=1 removes the pipeline overlap (the producer
  // blocks until each batch drains) but must not change any verdict.
  const SuiteRun serial = run_suite({.jobs = 1}, /*records=*/200);
  const SuiteRun sync = run_suite(
      {.jobs = 3, .batch_size = 8, .max_inflight_batches = 1}, 200);
  expect_identical(serial, sync);
  const SuiteRun pipelined = run_suite(
      {.jobs = 3, .batch_size = 8, .max_inflight_batches = 4}, 200);
  expect_identical(serial, pipelined);
}

TEST(PipelineDispatch, MoveAndBulkIngestMatchPerRecordCopyIngest) {
  const abv::EngineConfig config{
      .jobs = 3, .batch_size = 16, .max_inflight_batches = 2};
  const SuiteRun copied = run_suite(config, 150, nullptr, Ingest::kCopy);
  const SuiteRun moved = run_suite(config, 150, nullptr, Ingest::kMove);
  const SuiteRun bulk = run_suite(config, 150, nullptr, Ingest::kBulk);
  expect_identical(copied, moved);
  expect_identical(copied, bulk);
}

TEST(PipelineDispatch, WitnessRingSurvivesArenaRecycling) {
  // Tiny batches over a long stream force many segment recycles; every
  // logged failure witness must still carry the observables it saw, because
  // witness capture deep-copies them out of the (recycled) slab. The
  // witness contents must also match the serial run exactly.
  const SuiteRun serial = run_suite({.jobs = 1}, /*records=*/300);
  const SuiteRun sharded = run_suite(
      {.jobs = 3, .batch_size = 4, .max_inflight_batches = 2}, 300);
  expect_identical(serial, sharded);

  size_t witnessed = 0;
  for (size_t i = 0; i < sharded.wrappers.size(); ++i) {
    const auto& fa = serial.wrappers[i]->failures();
    const auto& fb = sharded.wrappers[i]->failures();
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t k = 0; k < fb.size(); ++k) {
      ASSERT_EQ(fa[k].witness.size(), fb[k].witness.size());
      for (size_t w = 0; w < fb[k].witness.size(); ++w) {
        const checker::WitnessEntry& ea = fa[k].witness[w];
        const checker::WitnessEntry& eb = fb[k].witness[w];
        EXPECT_EQ(ea.time, eb.time);
        ASSERT_NE(eb.observables, nullptr);
        ASSERT_NE(ea.observables, nullptr);
        EXPECT_EQ(*ea.observables, *eb.observables);
        ++witnessed;
      }
    }
  }
  EXPECT_GT(witnessed, 0u);  // the stream is built to fail with witnesses
}

TEST(PipelineDispatch, FinishWithoutRecordsPublishesZeroArenaActivity) {
  support::MetricsRegistry metrics(/*lanes=*/5);  // producer + 4 shards
  const SuiteRun run = run_suite({.jobs = 4}, /*records=*/0, &metrics);
  for (const auto& w : run.wrappers) {
    EXPECT_EQ(w->stats().transactions, 0u);
    EXPECT_EQ(w->stats().activations, 0u);
  }
  const support::MetricsSnapshot snap = metrics.snapshot();
  // The arena counters exist (deterministic key set) but saw no traffic.
  EXPECT_EQ(snap.counters.at("engine.arena_records"), 0u);
  EXPECT_EQ(snap.counters.at("engine.arena_segments"), 0u);
  EXPECT_EQ(snap.counters.at("engine.arena_recycled"), 0u);
  EXPECT_EQ(snap.counters.at("engine.batches"), 0u);
}

TEST(PipelineDispatch, ArenaSlabsBoundedByMaxInflight) {
  // Backpressure caps sealed-but-undrained batches at max_inflight, so the
  // arena never holds more than max_inflight + 1 slabs (the +1 is the open
  // segment the producer fills) no matter how long the stream runs.
  for (const size_t max_inflight : {size_t{1}, size_t{2}, size_t{4}}) {
    support::MetricsRegistry metrics(/*lanes=*/4);
    run_suite({.jobs = 3, .batch_size = 8,
               .max_inflight_batches = max_inflight},
              /*records=*/400, &metrics);
    const support::MetricsSnapshot snap = metrics.snapshot();
    EXPECT_EQ(snap.counters.at("engine.arena_records"), 400u);
    EXPECT_LE(snap.counters.at("engine.arena_segments"), max_inflight + 1)
        << "max_inflight " << max_inflight;
    // Every sealed segment was recycled by its last reader.
    EXPECT_EQ(snap.counters.at("engine.arena_recycled"),
              snap.counters.at("engine.batches"));
    EXPECT_LE(snap.gauges.at("engine.inflight_peak"), max_inflight);
    EXPECT_GE(snap.gauges.at("engine.inflight_peak"), 1u);
  }
}

}  // namespace
}  // namespace repro
