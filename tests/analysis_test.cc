// Tests for the static property-analysis layer: diagnostic codes on seeded
// defective properties, the BDD boolean layer, the Thm. III.2 consequence
// audit against the syntactic classification of both built-in suites, and
// the no-perturbation guarantee (analysis on/off yields byte-identical
// simulation reports).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/driver.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "psl/parser.h"
#include "support/json.h"

namespace repro::analysis {
namespace {

psl::RtlProperty rtl(const std::string& text) {
  auto result = psl::parse_rtl_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

bool has_code(const std::vector<Diagnostic>& diagnostics,
              const std::string& code) {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

// Ad-hoc options: 10 ns clock, ds/rdy observable, nothing abstracted.
AnalysisOptions adhoc() {
  AnalysisOptions options;
  options.abstraction.clock_period_ns = 10;
  options.rtl_observables = {"ds", "rdy"};
  return options;
}

// ---- Seeded defects -> exact diagnostic codes -------------------------------

TEST(Analysis, FlagsNonSimpleSubsetProperty) {
  Driver driver(adhoc());
  const PropertyAnalysis& r =
      driver.analyze(rtl("bad: always (!next(ds) || rdy) @clk_pos"));
  EXPECT_TRUE(has_code(r.diagnostics, "PSL001"));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(driver.ok());
}

TEST(Analysis, FlagsStaticallyVacuousImplication) {
  Driver driver(adhoc());
  const PropertyAnalysis& r =
      driver.analyze(rtl("v: always (ds && !ds -> next[2](rdy)) @clk_pos"));
  EXPECT_TRUE(has_code(r.diagnostics, "SEM003"));
  EXPECT_TRUE(r.ok());  // warning, not error
}

TEST(Analysis, FlagsTautologyAndContradiction) {
  Driver driver(adhoc());
  const PropertyAnalysis& taut =
      driver.analyze(rtl("t: always (!ds || rdy || !rdy) @clk_pos"));
  EXPECT_TRUE(has_code(taut.diagnostics, "SEM001"));
  const PropertyAnalysis& contra =
      driver.analyze(rtl("c: always (!ds || next(rdy && !rdy)) @clk_pos"));
  EXPECT_TRUE(has_code(contra.diagnostics, "SEM002"));
}

TEST(Analysis, FlagsAtomOverMissingObservable) {
  Driver driver(adhoc());
  const PropertyAnalysis& r =
      driver.analyze(rtl("e: always (!ds || next[17](bogus_sig)) @clk_pos"));
  EXPECT_TRUE(has_code(r.diagnostics, "ENV001"));
  EXPECT_FALSE(r.ok());
}

TEST(Analysis, FlagsGuardOverMissingObservable) {
  Driver driver(adhoc());
  const PropertyAnalysis& r =
      driver.analyze(rtl("g: always (!ds || rdy) @clk_pos && bogus_en"));
  EXPECT_TRUE(has_code(r.diagnostics, "ENV002"));
  EXPECT_FALSE(r.ok());
}

TEST(Analysis, FlagsWindowNotMultipleOfClockPeriod) {
  Driver driver(adhoc());
  const PropertyAnalysis& r =
      driver.analyze(rtl("s: always (!ds || next_e[1,175](rdy)) @clk_pos"));
  EXPECT_TRUE(has_code(r.diagnostics, "SIZ001"));
  // The sizing record carries the rounded-up lifetime (ceil(175/10) = 18).
  EXPECT_TRUE(r.lifetime.bounded);
  EXPECT_EQ(r.lifetime.instants, 18u);
  EXPECT_EQ(r.windows_ns, std::vector<psl::TimeNs>{175});
}

TEST(Analysis, AtomCapSkipsBooleanAnalysisExplicitly) {
  AnalysisOptions options = adhoc();
  options.atom_cap = 3;
  Driver driver(options);
  const PropertyAnalysis& r = driver.analyze(
      rtl("x: always (a && b && c && d -> rdy) @clk_pos"));
  EXPECT_TRUE(has_code(r.diagnostics, "SEM005"));
  EXPECT_FALSE(has_code(r.diagnostics, "SEM003"));
}

// ---- Boolean layer ----------------------------------------------------------

TEST(Analysis, BddAnswersTautologyContradictionImplication) {
  psl::ExprTable table;
  BoolAnalyzer ba(table);
  auto id = [&](const char* text) {
    auto parsed = psl::parse_expr(text);
    EXPECT_TRUE(parsed.ok()) << text;
    return table.intern(parsed.value());
  };
  EXPECT_EQ(ba.tautology(id("a || !a")), BoolAnalyzer::Answer::kYes);
  EXPECT_EQ(ba.tautology(id("a || b")), BoolAnalyzer::Answer::kNo);
  EXPECT_EQ(ba.contradiction(id("a && !a")), BoolAnalyzer::Answer::kYes);
  EXPECT_EQ(ba.implies(id("a && b"), id("a")), BoolAnalyzer::Answer::kYes);
  EXPECT_EQ(ba.implies(id("a"), id("a && b")), BoolAnalyzer::Answer::kNo);
  // Same atom name interns to the same BDD variable across formulas.
  EXPECT_EQ(ba.implies(id("a"), id("a || c")), BoolAnalyzer::Answer::kYes);
}

TEST(Analysis, BddCapsAtConfiguredAtomCount) {
  psl::ExprTable table;
  BoolAnalyzer ba(table, /*atom_cap=*/2);
  auto parsed = psl::parse_expr("a && b && c");
  ASSERT_TRUE(parsed.ok());
  const psl::ExprId id = table.intern(parsed.value());
  EXPECT_EQ(ba.distinct_atoms(id), 3u);
  EXPECT_EQ(ba.tautology(id), BoolAnalyzer::Answer::kCapped);
  EXPECT_EQ(ba.contradiction(id), BoolAnalyzer::Answer::kCapped);
}

TEST(Analysis, ProveConsequenceStructuralRules) {
  psl::ExprTable table;
  BoolAnalyzer ba(table);
  auto id = [&](const char* text) {
    auto parsed = psl::parse_expr(text);
    EXPECT_TRUE(parsed.ok()) << text;
    return table.intern(parsed.value());
  };
  // Conjunction elimination under always/next (the Fig. 4 deletion shape).
  EXPECT_EQ(prove_consequence(table, id("always (next(a) && next(b))"),
                              id("always (next(a))"), ba),
            Entailment::kProved);
  // Disjunction introduction.
  EXPECT_EQ(prove_consequence(table, id("a"), id("a || next(b)"), ba),
            Entailment::kProved);
  // Strong until entails its weak form, not vice versa.
  EXPECT_EQ(prove_consequence(table, id("a until! b"), id("a until b"), ba),
            Entailment::kProved);
  EXPECT_EQ(prove_consequence(table, id("a until b"), id("a until! b"), ba),
            Entailment::kUnknown);
  // No rule proves strengthening.
  EXPECT_EQ(prove_consequence(table, id("a || b"), id("a"), ba),
            Entailment::kUnknown);
}

// ---- Consequence audit over the built-in suites -----------------------------

TEST(Analysis, AuditConfirmsSyntacticClassificationOnBothSuites) {
  struct Case {
    models::PropertySuite suite;
    models::Design design;
  };
  const Case cases[] = {
      {models::des56_suite(), models::Design::kDes56},
      {models::colorconv_suite(), models::Design::kColorConv},
  };
  for (const Case& c : cases) {
    AnalysisOptions options;
    options.abstraction.clock_period_ns = c.suite.clock_period_ns;
    options.abstraction.abstracted_signals = c.suite.abstracted_signals;
    options.rtl_observables =
        models::level_observables(c.design, models::Level::kRtl);
    options.tlm_observables =
        models::level_observables(c.design, models::Level::kTlmAt);
    Driver driver(options);
    for (const psl::RtlProperty& p : c.suite.properties) {
      const PropertyAnalysis& r = driver.analyze(p);
      EXPECT_EQ(r.audit, AuditStatus::kConfirmed)
          << c.suite.design << " " << p.name;
      EXPECT_FALSE(has_code(r.diagnostics, "AUD002")) << p.name;
      EXPECT_TRUE(r.ok()) << p.name;
    }
    const DiagnosticCounts counts = driver.counts();
    EXPECT_EQ(counts.errors, 0u) << c.suite.design;
    EXPECT_EQ(counts.warnings, 0u) << c.suite.design;
    EXPECT_TRUE(driver.ok());
  }
}

// ---- Reports ----------------------------------------------------------------

TEST(Analysis, DriverJsonReportParses) {
  Driver driver(adhoc());
  driver.analyze(rtl("bad: always (!next(ds) || bogus) @clk_pos"));
  Diagnostic parse_error;
  parse_error.code = "PSL000";
  parse_error.severity = Severity::kError;
  parse_error.check = "parse";
  parse_error.message = "unexpected token";
  parse_error.span = {4, 1};
  driver.add_diagnostic(parse_error);

  std::ostringstream os;
  driver.write_json(os);
  std::string error;
  auto doc = support::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema_version")->number, 1);
  const support::json::Value* properties = doc->find("properties");
  ASSERT_NE(properties, nullptr);
  ASSERT_EQ(properties->array.size(), 1u);
  EXPECT_EQ(properties->array[0].find("name")->string, "bad");
  EXPECT_EQ(doc->find("diagnostics")->array.size(), 1u);
  EXPECT_GT(doc->find("totals")->find("errors")->number, 0);
}

// ---- Testbench integration --------------------------------------------------

TEST(Analysis, ErrorModeBlocksSimulation) {
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 20;
  config.analysis = models::AnalysisMode::kError;
  config.extra_properties.push_back(
      rtl("bad: always (!ds || no_such_signal) @clk_pos"));
  const models::RunResult result = models::run_simulation(config);
  EXPECT_FALSE(result.analysis_ok);
  EXPECT_TRUE(has_code(result.analysis_diagnostics, "ENV001"));
  // The simulation never ran.
  EXPECT_EQ(result.ops_completed, 0u);
  EXPECT_TRUE(result.report.properties().empty());
}

TEST(Analysis, OnModeAttachesDiagnosticsAndStillSimulates) {
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 20;
  config.checkers = 3;
  config.analysis = models::AnalysisMode::kOn;
  const models::RunResult result = models::run_simulation(config);
  EXPECT_TRUE(result.analysis_ok);
  EXPECT_FALSE(result.analysis_diagnostics.empty());  // AUD/SIZ notes
  EXPECT_TRUE(result.functional_ok);
  EXPECT_TRUE(result.properties_ok);
}

TEST(Analysis, ReportsByteIdenticalWithAnalysisOnAndOff) {
  for (const size_t jobs : {size_t{1}, size_t{4}}) {
    models::RunConfig config;
    config.design = models::Design::kDes56;
    config.level = models::Level::kTlmAt;
    config.workload = 40;
    config.checkers = 9;
    config.engine.jobs = jobs;

    config.analysis = models::AnalysisMode::kOff;
    const models::RunResult off = models::run_simulation(config);
    config.analysis = models::AnalysisMode::kOn;
    const models::RunResult on = models::run_simulation(config);

    std::ostringstream off_json, on_json;
    off.report.write_json(off_json);
    on.report.write_json(on_json);
    EXPECT_EQ(off_json.str(), on_json.str()) << "jobs=" << jobs;
    EXPECT_TRUE(on.analysis_ok);
  }
}

}  // namespace
}  // namespace repro::analysis
