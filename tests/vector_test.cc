// Vectorized-backend tests: the 64-wide lockstep kernel (checker/batch.h),
// lane lifecycle, staggered/ragged deadline cohorts through the wrapper and
// the PropertyChecker active list, and byte-identical JSON reports with
// vectorization on and off at jobs 1 and 4 on both designs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "checker/batch.h"
#include "checker/checker.h"
#include "checker/instance.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "checker/wrapper.h"
#include "models/testbench.h"
#include "psl/ast.h"
#include "psl/parser.h"
#include "support/rng.h"
#include "support/trace_sink.h"

namespace repro::checker {
namespace {

using psl::ExprPtr;

ExprPtr parse(const std::string& text) {
  auto result = psl::parse_expr(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

// ---- Support predicate ----------------------------------------------------------

TEST(VectorBatch, SupportedExactlyWhenFrameFree) {
  // Frame-free: boolean layer, next, next_e, abort.
  for (const char* text :
       {"a", "!a && (b || c)", "a -> next[3](b)", "next_e[1,40](a)",
        "(a -> next_e[1,40](b)) abort c", "next[2](next_e[1,20](a && b))"}) {
    const auto program = Program::compile(parse(text));
    EXPECT_TRUE(ProgramBatch::supported(*program)) << text;
  }
  // Dynamic (frame-spawning) operators force the scalar fallback.
  for (const char* text :
       {"a until b", "a until! b", "a release b", "always a", "eventually! a",
        "next_e[1,40](a until b)"}) {
    const auto program = Program::compile(parse(text));
    EXPECT_FALSE(ProgramBatch::supported(*program)) << text;
  }
}

// ---- Lane lifecycle -------------------------------------------------------------

TEST(VectorBatch, LaneAllocationIsLowestFreeAndExhaustsAtSixtyFour) {
  auto block = std::make_shared<BatchState>(
      std::make_shared<const ProgramBatch>(Program::compile(parse("a"))));
  for (uint32_t i = 0; i < BatchState::kLanes; ++i) {
    ASSERT_TRUE(block->has_free_lane());
    EXPECT_EQ(block->allocate_lane(), i);
  }
  EXPECT_FALSE(block->has_free_lane());
  block->release_lane(17);
  ASSERT_TRUE(block->has_free_lane());
  EXPECT_EQ(block->allocate_lane(), 17u);
  EXPECT_FALSE(block->has_free_lane());
}

// ---- Lockstep kernel parity -----------------------------------------------------

// Random frame-free formulas only: the vectorizable subset (boolean layer,
// next, next_e, abort). The dynamic operators have their own fallback path
// and are swept three-way in ir_test.cc.
ExprPtr random_supported_formula(Rng& rng, int depth) {
  const char* signals[] = {"a", "b", "c"};
  if (depth <= 0 || rng.chance(1, 3)) {
    switch (rng.below(4)) {
      case 0:
        return psl::sig(signals[rng.below(3)]);
      case 1:
        return psl::not_(psl::sig(signals[rng.below(3)]));
      case 2:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kEq, rng.below(3));
      default:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kGe, rng.below(3));
    }
  }
  switch (rng.below(6)) {
    case 0:
      return psl::and_(random_supported_formula(rng, depth - 1),
                       random_supported_formula(rng, depth - 1));
    case 1:
      return psl::or_(random_supported_formula(rng, depth - 1),
                      random_supported_formula(rng, depth - 1));
    case 2:
      return psl::implies(random_supported_formula(rng, depth - 1),
                          random_supported_formula(rng, depth - 1));
    case 3:
      return psl::next(static_cast<uint32_t>(rng.range(1, 3)),
                       random_supported_formula(rng, depth - 1));
    case 4:
      return psl::next_eps(1, rng.range(1, 5) * 10,
                           random_supported_formula(rng, depth - 1));
    default:
      return psl::abort_(random_supported_formula(rng, depth - 1),
                         psl::sig(signals[rng.below(3)]), rng.chance(1, 2));
  }
}

Trace random_trace(Rng& rng, size_t max_len) {
  Trace trace;
  psl::TimeNs time = 10;
  const size_t len = rng.range(1, max_len);
  for (size_t i = 0; i < len; ++i) {
    Observation o;
    o.time = time;
    o.values.set("a", rng.below(3));
    o.values.set("b", rng.below(3));
    o.values.set("c", rng.below(3));
    trace.push_back(std::move(o));
    time += 10 * rng.range(1, 3);
  }
  return trace;
}

class VectorLockstep : public ::testing::TestWithParam<int> {};

// Staggered cohorts: lane i anchors at event i, so every event advances a
// word whose lanes sit at different phases of the formula. Each event is
// primed once for the whole live mask (the wrapper's cohort path) and every
// lane must match its scalar compiled twin step for step, deadline for
// deadline, through finish.
TEST_P(VectorLockstep, StaggeredCohortMatchesScalar) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 9176 + 11);
  const ExprPtr formula = random_supported_formula(rng, 3);
  const Trace trace = random_trace(rng, 20);
  const auto program = Program::compile(formula);
  ASSERT_TRUE(ProgramBatch::supported(*program));
  auto block = std::make_shared<BatchState>(
      std::make_shared<const ProgramBatch>(program));

  const size_t lanes = std::min<size_t>(trace.size(), 16);
  std::vector<std::unique_ptr<Instance>> vec(lanes);
  std::vector<std::unique_ptr<Instance>> ref(lanes);

  for (size_t k = 0; k < trace.size(); ++k) {
    const Event ev{trace[k].time, &trace[k].values};
    if (k < lanes) {  // anchor a new pair at this event
      vec[k] = std::make_unique<Instance>(block, block->allocate_lane());
      ref[k] = std::make_unique<Instance>(program);
    }
    uint64_t mask = 0;
    for (size_t i = 0; i < lanes; ++i) {
      if (vec[i] != nullptr && !vec[i]->resolved()) {
        mask |= uint64_t{1} << vec[i]->batch_lane();
      }
    }
    if (mask == 0) break;
    block->prime(ev, mask);
    for (size_t i = 0; i < lanes && i <= k; ++i) {
      if (vec[i]->resolved()) continue;
      const Verdict vv = vec[i]->step(ev);
      const Verdict vr = ref[i]->step(ev);
      ASSERT_EQ(vv, vr) << "lane " << i << " diverged on "
                        << psl::to_string(formula) << "\nprefix length: "
                        << k + 1;
      ASSERT_EQ(vec[i]->next_deadline(), ref[i]->next_deadline())
          << "lane " << i << ": " << psl::to_string(formula);
    }
  }
  for (size_t i = 0; i < lanes; ++i) {
    if (vec[i] == nullptr || vec[i]->resolved()) continue;
    ASSERT_EQ(vec[i]->finish(), ref[i]->finish())
        << "lane " << i << ": " << psl::to_string(formula);
  }
}

TEST_P(VectorLockstep, RecycledLaneBehavesLikeFresh) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 40277 + 3);
  const ExprPtr formula = random_supported_formula(rng, 3);
  const Trace first = random_trace(rng, 8);
  const Trace second = random_trace(rng, 8);
  const auto program = Program::compile(formula);
  ASSERT_TRUE(ProgramBatch::supported(*program));
  auto block = std::make_shared<BatchState>(
      std::make_shared<const ProgramBatch>(program));

  // Dirty one lane with a full run, then return it to the block.
  const uint32_t lane = block->allocate_lane();
  for (const auto& o : first) {
    if (block->step_lane(Event{o.time, &o.values}, lane) != Verdict::kPending) {
      break;
    }
  }
  block->release_lane(lane);

  // The recycled lane must replay exactly like a never-used scalar instance.
  ASSERT_TRUE(block->has_free_lane());
  const uint32_t again = block->allocate_lane();
  EXPECT_EQ(again, lane);  // lowest free lane is the one just released
  Instance fresh(program);
  for (const auto& o : second) {
    const Event ev{o.time, &o.values};
    const Verdict a = block->step_lane(ev, again);
    const Verdict b = fresh.step(ev);
    ASSERT_EQ(a, b) << psl::to_string(formula);
    if (a != Verdict::kPending) return;
  }
  EXPECT_EQ(block->finish_lane(again), fresh.finish())
      << psl::to_string(formula);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VectorLockstep, ::testing::Range(0, 60));

// ---- Wrapper cohorts ------------------------------------------------------------

MapContext handshake(bool ds, bool rdy, bool err = false) {
  MapContext values;
  values.set("ds", ds ? 1 : 0);
  values.set("rdy", rdy ? 1 : 0);
  values.set("err", err ? 1 : 0);
  return values;
}

void expect_same_outcome(const WrapperStats& v, const WrapperStats& s) {
  EXPECT_EQ(v.transactions, s.transactions);
  EXPECT_EQ(v.activations, s.activations);
  EXPECT_EQ(v.failures, s.failures);
  EXPECT_EQ(v.holds, s.holds);
  EXPECT_EQ(v.trivial, s.trivial);
  EXPECT_EQ(v.uncompleted, s.uncompleted);
  EXPECT_EQ(v.reuses, s.reuses);
  EXPECT_EQ(v.steps, s.steps);
  // Coverage telemetry must be byte-identical across backends too.
  EXPECT_EQ(v.real_passes, s.real_passes);
  EXPECT_EQ(v.vacuous_passes, s.vacuous_passes);
  EXPECT_EQ(v.missed_deadlines, s.missed_deadlines);
  EXPECT_EQ(v.node_visits, s.node_visits);
}

void expect_same_failures(const TlmCheckerWrapper& v,
                          const TlmCheckerWrapper& s) {
  ASSERT_EQ(v.failures().size(), s.failures().size());
  for (size_t i = 0; i < v.failures().size(); ++i) {
    EXPECT_EQ(v.failures()[i].time, s.failures()[i].time) << i;
  }
}

// A long silent gap makes every scheduled instance's deadline pass at once;
// the wrapper pops the whole missed cohort on the next transaction and the
// vectorized backend must prime it as one multi-lane batch.
TEST(VectorWrapper, MissedDeadlineCohortMatchesScalar) {
  const psl::TlmProperty p =
      tlm_prop("w: always (!ds || next_e[1,100](rdy)) @Tb");
  CheckerOptions vec_opts;
  vec_opts.vectorized = true;
  CheckerOptions scalar_opts;
  scalar_opts.vectorized = false;
  TlmCheckerWrapper vec(p, 10, vec_opts);
  TlmCheckerWrapper scalar(p, 10, scalar_opts);
  auto feed = [&](psl::TimeNs t, bool ds, bool rdy) {
    vec.on_transaction(t, handshake(ds, rdy));
    scalar.on_transaction(t, handshake(ds, rdy));
  };
  // Ten activations 10 ns apart, none ever answered...
  for (psl::TimeNs t = 10; t <= 100; t += 10) feed(t, true, false);
  // ...then a gap past every deadline: the missed cohort pops together.
  feed(700, false, false);
  for (psl::TimeNs t = 710; t <= 760; t += 10) feed(t, true, false);
  vec.finish();
  scalar.finish();

  EXPECT_GT(vec.stats().failures, 0u);
  expect_same_outcome(vec.stats(), scalar.stats());
  expect_same_failures(vec, scalar);
  EXPECT_GT(vec.stats().vector_batches, 0u);
  EXPECT_GT(vec.stats().vector_lanes_filled, vec.stats().vector_batches);
  EXPECT_EQ(scalar.stats().vector_batches, 0u);
}

// An abort-carrying property is unbounded, so its instances live on the
// dense list and all of them see every transaction. Holding >64 of them
// pending at once spills into multiple lane blocks and primes a ragged
// 64/64/22 cohort per transaction.
TEST(VectorWrapper, RaggedDenseCohortsAcrossMultipleBlocks) {
  const psl::TlmProperty p =
      tlm_prop("w: always ((!ds || next_e[1,5000](rdy)) abort err) @Tb");
  CheckerOptions vec_opts;
  vec_opts.vectorized = true;
  CheckerOptions scalar_opts;
  scalar_opts.vectorized = false;
  TlmCheckerWrapper vec(p, 10, vec_opts);
  TlmCheckerWrapper scalar(p, 10, scalar_opts);
  auto feed = [&](psl::TimeNs t, bool ds, bool rdy, bool err) {
    vec.on_transaction(t, handshake(ds, rdy, err));
    scalar.on_transaction(t, handshake(ds, rdy, err));
  };
  // 150 concurrent pending sessions: three lane blocks, ragged tail.
  for (psl::TimeNs t = 10; t <= 1500; t += 10) feed(t, true, false, false);
  // Aborting discharges every pending session at once.
  feed(1510, false, false, true);
  // A second wave exercises block/lane reuse after the mass retirement.
  for (psl::TimeNs t = 1520; t <= 1600; t += 10) feed(t, true, false, false);
  vec.finish();
  scalar.finish();

  expect_same_outcome(vec.stats(), scalar.stats());
  expect_same_failures(vec, scalar);
  EXPECT_GT(vec.stats().vector_batches, 0u);
  // With 150 live lanes a single transaction fills two full words plus a
  // ragged third; well over 64 lanes must have gone through prime().
  EXPECT_GT(vec.stats().vector_lanes_filled, 64u);
  EXPECT_EQ(scalar.stats().vector_lanes_filled, 0u);
}

// Each multi-lane prime emits one "vector_batch" span carrying the lane
// count (what tools/validate_trace.py checks for nesting and args.lanes).
TEST(VectorWrapper, MultiLanePrimesEmitTraceSpans) {
  const psl::TlmProperty p =
      tlm_prop("w: always (!ds || next_e[1,100](rdy)) @Tb");
  support::TraceSink sink;
  TlmCheckerWrapper wrapper(p, 10);
  wrapper.set_trace(&sink, 3);
  // Same missed-deadline shape as above: a cohort pops after the gap.
  for (psl::TimeNs t = 10; t <= 100; t += 10) {
    wrapper.on_transaction(t, handshake(true, false));
  }
  wrapper.on_transaction(700, handshake(false, false));
  wrapper.finish();
  ASSERT_GT(wrapper.stats().vector_batches, 0u);

  std::ostringstream os;
  sink.write(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"vector_batch\""), std::string::npos);
  EXPECT_NE(trace.find("\"lanes\""), std::string::npos);
}

// Mixed-deadline regression: activations at irregular spacing give each
// transaction a cohort mixing just-due, long-overdue and freshly anchored
// lanes. eps == 0 re-dues (the double-step pathology) stay on the scalar
// bookkeeping path via lane self-priming.
TEST(VectorWrapper, MixedDeadlineStreamMatchesScalar) {
  const psl::TlmProperty p =
      tlm_prop("w: always (!ds || next_e[1,40](rdy)) @Tb");
  CheckerOptions vec_opts;
  vec_opts.vectorized = true;
  CheckerOptions scalar_opts;
  scalar_opts.vectorized = false;
  TlmCheckerWrapper vec(p, 10, vec_opts);
  TlmCheckerWrapper scalar(p, 10, scalar_opts);
  Rng rng(20260809);
  psl::TimeNs t = 10;
  for (int i = 0; i < 400; ++i) {
    const bool ds = rng.chance(2, 3);
    const bool rdy = rng.chance(1, 3);
    vec.on_transaction(t, handshake(ds, rdy));
    scalar.on_transaction(t, handshake(ds, rdy));
    // Mostly dense traffic with occasional deadline-skipping jumps.
    t += rng.chance(1, 10) ? 10 * rng.range(5, 30) : 10 * rng.range(1, 3);
  }
  vec.finish();
  scalar.finish();
  EXPECT_GT(vec.stats().activations, 0u);
  expect_same_outcome(vec.stats(), scalar.stats());
  expect_same_failures(vec, scalar);
}

// ---- PropertyChecker active list -------------------------------------------------

TEST(VectorChecker, ActiveListCohortMatchesScalar) {
  const ExprPtr formula = parse("always (!a || next[8](b))");
  CheckerOptions vec_opts;
  vec_opts.vectorized = true;
  CheckerOptions scalar_opts;
  scalar_opts.vectorized = false;
  PropertyChecker vec("v", formula, nullptr, vec_opts);
  PropertyChecker scalar("s", formula, nullptr, scalar_opts);
  Rng rng(77);
  for (psl::TimeNs t = 10; t <= 2000; t += 10) {
    MapContext values;
    values.set("a", rng.chance(1, 2) ? 1 : 0);
    values.set("b", rng.chance(1, 2) ? 1 : 0);
    vec.on_event(t, values);
    scalar.on_event(t, values);
  }
  vec.finish();
  scalar.finish();

  const CheckerStats& v = vec.stats();
  const CheckerStats& s = scalar.stats();
  EXPECT_EQ(v.events, s.events);
  EXPECT_EQ(v.activations, s.activations);
  EXPECT_EQ(v.failures, s.failures);
  EXPECT_EQ(v.holds, s.holds);
  EXPECT_EQ(v.trivial, s.trivial);
  EXPECT_EQ(v.uncompleted, s.uncompleted);
  EXPECT_EQ(v.steps, s.steps);
  ASSERT_EQ(vec.failures().size(), scalar.failures().size());
  for (size_t i = 0; i < vec.failures().size(); ++i) {
    EXPECT_EQ(vec.failures()[i].time, scalar.failures()[i].time) << i;
  }
  // next[8] keeps ~8 instances pending per event: real multi-lane cohorts.
  EXPECT_GT(v.vector_batches, 0u);
  EXPECT_GT(v.vector_lanes_filled, v.vector_batches);
  EXPECT_EQ(s.vector_batches, 0u);
}

// ---- Full-run byte equivalence ---------------------------------------------------

std::string rendered_report(models::Design design, models::Level level,
                            size_t jobs, bool vectorized) {
  models::RunConfig config;
  config.design = design;
  config.level = level;
  config.workload = design == models::Design::kDes56 ? 30 : 120;
  config.checkers = 99;  // clamped to the whole suite
  config.engine.jobs = jobs;
  config.engine.vectorized = vectorized;
  const models::RunResult r = models::run_simulation(config);
  EXPECT_TRUE(r.functional_ok);
  std::ostringstream os;
  r.report.write_json(os);
  return os.str();
}

TEST(VectorReport, ByteIdenticalAcrossBackendsAndJobsOnBothDesigns) {
  for (const models::Design design :
       {models::Design::kDes56, models::Design::kColorConv}) {
    const std::string reference =
        rendered_report(design, models::Level::kTlmAt, 1, false);
    for (const size_t jobs : {size_t{1}, size_t{4}}) {
      EXPECT_EQ(rendered_report(design, models::Level::kTlmAt, jobs, true),
                reference)
          << "design " << static_cast<int>(design) << " jobs " << jobs;
    }
    EXPECT_EQ(rendered_report(design, models::Level::kTlmAt, 4, false),
              reference)
        << "design " << static_cast<int>(design);
  }
}

TEST(VectorReport, CycleAccurateReplayFillsLanes) {
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmCa;
  config.workload = 30;
  config.checkers = 99;
  // The suite's handshake antecedents rarely hold, so their active lists
  // stay short; this unconditional 16-cycle obligation keeps ~16 instances
  // pending per clock and forces genuine multi-lane cohorts.
  {
    auto parsed = psl::parse_rtl_property("vload: always (next[16](rdy)) @clk_pos");
    ASSERT_TRUE(parsed.ok());
    config.extra_properties.push_back(parsed.value());
  }
  config.engine.vectorized = true;
  const models::RunResult on = models::run_simulation(config);
  config.engine.vectorized = false;
  const models::RunResult off = models::run_simulation(config);

  // Byte-identical verdicts either way...
  auto render = [](const models::RunResult& r) {
    std::ostringstream os;
    r.report.write_json(os);
    return os.str();
  };
  EXPECT_EQ(render(on), render(off));
  // ...and the same metric keys, so report schemas never depend on the
  // backend; only the lockstep counters move.
  ASSERT_EQ(on.metrics.counters.count("engine.vector_lanes_filled"), 1u);
  ASSERT_EQ(off.metrics.counters.count("engine.vector_lanes_filled"), 1u);
  EXPECT_GT(on.metrics.counters.at("engine.vector_lanes_filled"), 0u);
  EXPECT_GT(on.metrics.counters.at("engine.vector_batches"), 0u);
  EXPECT_EQ(off.metrics.counters.at("engine.vector_lanes_filled"), 0u);
}

}  // namespace
}  // namespace repro::checker
