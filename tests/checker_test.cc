#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/instance.h"
#include "checker/reference_eval.h"
#include "checker/trace.h"
#include "psl/parser.h"
#include "support/rng.h"

namespace repro::checker {
namespace {

using psl::ExprPtr;

ExprPtr parse(const std::string& text) {
  auto result = psl::parse_expr(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

// Builds an observation from {name, value} pairs.
Observation obs(psl::TimeNs time,
                std::initializer_list<std::pair<const char*, uint64_t>> values) {
  Observation o;
  o.time = time;
  for (const auto& [name, value] : values) o.values.set(name, value);
  return o;
}

// Steps a fresh instance through the whole trace and finishes it.
Verdict run_instance(const ExprPtr& formula, const Trace& trace) {
  Instance instance(formula);
  for (const auto& o : trace) {
    const Verdict v = instance.step(Event{o.time, &o.values});
    if (v != Verdict::kPending) return v;
  }
  return instance.finish();
}

// ---- Atom evaluation -----------------------------------------------------------

TEST(Atoms, AllComparisonOperators) {
  MapContext ctx;
  ctx.set("x", 5);
  ctx.set("y", 5);
  EXPECT_TRUE(eval_boolean(parse("x"), ctx));
  EXPECT_TRUE(eval_boolean(parse("x == 5"), ctx));
  EXPECT_FALSE(eval_boolean(parse("x != 5"), ctx));
  EXPECT_TRUE(eval_boolean(parse("x <= 5"), ctx));
  EXPECT_FALSE(eval_boolean(parse("x < 5"), ctx));
  EXPECT_TRUE(eval_boolean(parse("x >= 5"), ctx));
  EXPECT_FALSE(eval_boolean(parse("x > 5"), ctx));
  EXPECT_TRUE(eval_boolean(parse("x == y"), ctx));
  EXPECT_TRUE(eval_boolean(parse("!(x > 5) && (x == 5 || x == 0)"), ctx));
  EXPECT_TRUE(eval_boolean(parse("x == 4 -> x == 9"), ctx));
}

// ---- Basic operator semantics -----------------------------------------------------

TEST(Instance, BooleanResolvesAtAnchor) {
  const Trace t{obs(10, {{"a", 1}})};
  EXPECT_EQ(run_instance(parse("a"), t), Verdict::kTrue);
  EXPECT_EQ(run_instance(parse("!a"), t), Verdict::kFalse);
}

TEST(Instance, NextCountsEvents) {
  const Trace t{obs(10, {{"a", 0}}), obs(20, {{"a", 0}}), obs(30, {{"a", 1}})};
  EXPECT_EQ(run_instance(parse("next[2](a)"), t), Verdict::kTrue);
  EXPECT_EQ(run_instance(parse("next(a)"), t), Verdict::kFalse);
}

TEST(Instance, NextBeyondTraceIsWeaklyTrue) {
  const Trace t{obs(10, {{"a", 0}})};
  EXPECT_EQ(run_instance(parse("next[5](a)"), t), Verdict::kTrue);
}

TEST(Instance, NextEpsEvaluatesAtExactInstant) {
  const Trace t{obs(10, {{"a", 0}}), obs(40, {{"a", 1}})};
  EXPECT_EQ(run_instance(parse("next_e[1,30](a)"), t), Verdict::kTrue);
}

TEST(Instance, NextEpsIgnoresEarlierEvents) {
  const Trace t{obs(10, {{"a", 0}}), obs(20, {{"a", 0}}), obs(40, {{"a", 1}})};
  // Events at 20 (early) must not consume the obligation due at 40.
  EXPECT_EQ(run_instance(parse("next_e[1,30](a)"), t), Verdict::kTrue);
}

TEST(Instance, NextEpsFailsWhenInstantIsMissed) {
  // Def. III.3: no event observable at eps -> false (detected at the first
  // later event).
  const Trace t{obs(10, {{"a", 0}}), obs(50, {{"a", 1}})};
  EXPECT_EQ(run_instance(parse("next_e[1,30](a)"), t), Verdict::kFalse);
}

TEST(Instance, NextEpsPendingAtTraceEndIsWeaklyTrue) {
  const Trace t{obs(10, {{"a", 0}}), obs(20, {{"a", 0}})};
  EXPECT_EQ(run_instance(parse("next_e[1,30](a)"), t), Verdict::kTrue);
}

TEST(Instance, NextEpsAnchorsFixpointOperand) {
  // next_e wrapping a boolean-operand until (the opaque-fixpoint form): the
  // until anchors at the deadline event and then runs over later events.
  const Trace t{obs(10, {{"p", 1}, {"q", 0}}), obs(20, {{"p", 1}, {"q", 0}}),
                obs(170, {{"p", 1}, {"q", 0}}), obs(180, {{"p", 0}, {"q", 1}})};
  EXPECT_EQ(run_instance(parse("next_e[1,10](p until q)"), t), Verdict::kTrue);
  EXPECT_EQ(run_instance(parse("next_e[1,10](q until p)"), t), Verdict::kTrue);
}

TEST(Instance, WeakUntilDischargesOnQ) {
  const Trace t{obs(10, {{"p", 1}, {"q", 0}}), obs(20, {{"p", 1}, {"q", 0}}),
                obs(30, {{"p", 0}, {"q", 1}})};
  EXPECT_EQ(run_instance(parse("p until q"), t), Verdict::kTrue);
}

TEST(Instance, UntilFailsWhenPBreaksBeforeQ) {
  const Trace t{obs(10, {{"p", 1}, {"q", 0}}), obs(20, {{"p", 0}, {"q", 0}}),
                obs(30, {{"p", 1}, {"q", 1}})};
  EXPECT_EQ(run_instance(parse("p until q"), t), Verdict::kFalse);
  EXPECT_EQ(run_instance(parse("p until! q"), t), Verdict::kFalse);
}

TEST(Instance, WeakVsStrongUntilAtTraceEnd) {
  const Trace t{obs(10, {{"p", 1}, {"q", 0}}), obs(20, {{"p", 1}, {"q", 0}})};
  EXPECT_EQ(run_instance(parse("p until q"), t), Verdict::kTrue);    // weak
  EXPECT_EQ(run_instance(parse("p until! q"), t), Verdict::kFalse);  // strong
}

TEST(Instance, ReleaseHoldsQThroughRelease) {
  const Trace t{obs(10, {{"p", 0}, {"q", 1}}), obs(20, {{"p", 1}, {"q", 1}}),
                obs(30, {{"p", 0}, {"q", 0}})};
  // Released at t=20 with q still true: q may fall afterwards.
  EXPECT_EQ(run_instance(parse("p release q"), t), Verdict::kTrue);
}

TEST(Instance, ReleaseFailsWhenQFallsEarly) {
  const Trace t{obs(10, {{"p", 0}, {"q", 1}}), obs(20, {{"p", 0}, {"q", 0}})};
  EXPECT_EQ(run_instance(parse("p release q"), t), Verdict::kFalse);
}

TEST(Instance, ReleaseIsWeak) {
  const Trace t{obs(10, {{"p", 0}, {"q", 1}}), obs(20, {{"p", 0}, {"q", 1}})};
  EXPECT_EQ(run_instance(parse("p release q"), t), Verdict::kTrue);
}

TEST(Instance, AlwaysDetectsViolationImmediately) {
  Instance instance(parse("always a"));
  const Observation good = obs(10, {{"a", 1}});
  EXPECT_EQ(instance.step(Event{good.time, &good.values}), Verdict::kPending);
  const Observation bad = obs(20, {{"a", 0}});
  EXPECT_EQ(instance.step(Event{bad.time, &bad.values}), Verdict::kFalse);
}

TEST(Instance, EventuallyStrongFailsAtEnd) {
  const Trace t{obs(10, {{"a", 0}}), obs(20, {{"a", 0}})};
  EXPECT_EQ(run_instance(parse("eventually! a"), t), Verdict::kFalse);
  const Trace t2{obs(10, {{"a", 0}}), obs(20, {{"a", 1}})};
  EXPECT_EQ(run_instance(parse("eventually! a"), t2), Verdict::kTrue);
}

TEST(Instance, AbortDischargesPendingObligation) {
  // next[3](a) would fail, but rst fires first: discharged.
  const Trace t{obs(10, {{"a", 0}, {"rst", 0}}), obs(20, {{"a", 0}, {"rst", 1}}),
                obs(30, {{"a", 0}, {"rst", 0}}), obs(40, {{"a", 0}, {"rst", 0}})};
  EXPECT_EQ(run_instance(parse("next[3](a) abort rst"), t), Verdict::kTrue);
  // Without the reset the obligation fails.
  const Trace t2{obs(10, {{"a", 0}, {"rst", 0}}), obs(20, {{"a", 0}, {"rst", 0}}),
                 obs(30, {{"a", 0}, {"rst", 0}}), obs(40, {{"a", 0}, {"rst", 0}})};
  EXPECT_EQ(run_instance(parse("next[3](a) abort rst"), t2), Verdict::kFalse);
}

TEST(Instance, AbortDoesNotMaskEarlierFailure) {
  // The operand fails strictly before the reset: the failure stands.
  const Trace t{obs(10, {{"a", 0}, {"rst", 0}}), obs(20, {{"a", 0}, {"rst", 0}}),
                obs(30, {{"a", 0}, {"rst", 1}})};
  EXPECT_EQ(run_instance(parse("next(a) abort rst"), t), Verdict::kFalse);
}

TEST(Instance, AbortAtAnchorIsImmediatelyTrue) {
  const Trace t{obs(10, {{"a", 0}, {"rst", 1}})};
  EXPECT_EQ(run_instance(parse("eventually! a abort rst"), t), Verdict::kTrue);
}

TEST(Instance, AbortConditionCheckedBeforeOperand) {
  // At t=30 both the reset and the (failing) deadline coincide: reset wins.
  const Trace t{obs(10, {{"a", 0}, {"rst", 0}}), obs(30, {{"a", 0}, {"rst", 1}})};
  EXPECT_EQ(run_instance(parse("next_e[1,10](a) abort rst"), t), Verdict::kTrue);
}

TEST(Instance, ImplicationShortCircuit) {
  const Trace t{obs(10, {{"a", 0}, {"b", 0}})};
  EXPECT_EQ(run_instance(parse("a -> next[7](b)"), t), Verdict::kTrue);
}

TEST(Instance, ResetRestoresFreshState) {
  const ExprPtr formula = parse("next_e[1,20](a)");
  Instance instance(formula);
  const Observation o1 = obs(10, {{"a", 0}});
  const Observation o2 = obs(30, {{"a", 1}});
  instance.step(Event{o1.time, &o1.values});
  instance.step(Event{o2.time, &o2.values});
  EXPECT_EQ(instance.verdict(), Verdict::kTrue);

  instance.reset();
  EXPECT_EQ(instance.verdict(), Verdict::kPending);
  // Re-anchor at a different time: target must be recomputed.
  const Observation o3 = obs(100, {{"a", 0}});
  const Observation o4 = obs(120, {{"a", 0}});
  instance.step(Event{o3.time, &o3.values});
  EXPECT_EQ(instance.step(Event{o4.time, &o4.values}), Verdict::kFalse);
}

TEST(Instance, NextDeadlineReportsNextEpsTargets) {
  Instance instance(parse("next_e[1,30](a) && next_e[2,50](b)"));
  const Observation o = obs(100, {{"a", 0}, {"b", 0}});
  instance.step(Event{o.time, &o.values});
  const auto deadline = instance.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, 130u);
}

TEST(Instance, NextDeadlineAbsentForDenseObligations) {
  Instance instance(parse("p until q"));
  const Observation o = obs(10, {{"p", 1}, {"q", 0}});
  instance.step(Event{o.time, &o.values});
  EXPECT_FALSE(instance.next_deadline().has_value());
}

// ---- PropertyChecker ---------------------------------------------------------------

TEST(PropertyChecker, AlwaysSpawnsPerEventAndCountsFailures) {
  // always(!a || next(b)): fails exactly when a is followed by !b.
  PropertyChecker checker("t", parse("always (!a || next(b))"), nullptr);
  const std::vector<std::pair<uint64_t, uint64_t>> values = {
      {1, 0}, {0, 1}, {1, 0}, {1, 0}, {0, 0}};
  psl::TimeNs time = 10;
  for (const auto& [a, b] : values) {
    MapContext ctx;
    ctx.set("a", a);
    ctx.set("b", b);
    checker.on_event(time, ctx);
    time += 10;
  }
  checker.finish();
  EXPECT_EQ(checker.stats().events, 5u);
  EXPECT_EQ(checker.stats().activations, 5u);
  // Failing anchors: a@30 (b@40 == 0) and a@40 (b@50 == 0).
  EXPECT_EQ(checker.stats().failures, 2u);
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.failures().size(), 2u);
  EXPECT_EQ(checker.failures()[0].property, "t");
}

TEST(PropertyChecker, TrivialActivationsAreCounted) {
  // !a || next(b): with a low, every session resolves at its anchor.
  PropertyChecker checker("t", parse("always (!a || next(b))"), nullptr);
  for (int i = 0; i < 4; ++i) {
    MapContext ctx;
    ctx.set("a", 0);
    ctx.set("b", 0);
    checker.on_event(10 * (i + 1), ctx);
  }
  checker.finish();
  EXPECT_EQ(checker.stats().trivial, 4u);
  // A real firing is not trivial.
  MapContext ctx;
  ctx.set("a", 1);
  ctx.set("b", 1);
  checker.on_event(100, ctx);
  checker.finish();
  EXPECT_EQ(checker.stats().trivial, 4u);
  EXPECT_EQ(checker.stats().activations, 5u);
}

TEST(PropertyChecker, GuardRestrictsActivation) {
  PropertyChecker checker("t", parse("always a"), parse("en"));
  for (int i = 0; i < 4; ++i) {
    MapContext ctx;
    ctx.set("a", 1);
    ctx.set("en", i % 2);
    checker.on_event(10 * (i + 1), ctx);
  }
  checker.finish();
  EXPECT_EQ(checker.stats().activations, 2u);
}

TEST(PropertyChecker, NonRepeatingPropertyActivatesOnce) {
  PropertyChecker checker("t", parse("eventually! done"), nullptr);
  for (int i = 0; i < 3; ++i) {
    MapContext ctx;
    ctx.set("done", i == 2);
    checker.on_event(10 * (i + 1), ctx);
  }
  checker.finish();
  EXPECT_EQ(checker.stats().activations, 1u);
  EXPECT_EQ(checker.stats().holds, 1u);
}

TEST(PropertyChecker, UncompletedCountsPendingAtFinish) {
  // A never-anchored obligation: no events at all.
  PropertyChecker checker("t", parse("always a"), nullptr);
  checker.finish();
  EXPECT_EQ(checker.stats().uncompleted, 0u);
  EXPECT_TRUE(checker.ok());
}

// ---- Randomized equivalence with the reference evaluator -----------------------------

// Random formula over signals {a, b, c} from the operator classes the
// library supports.
ExprPtr random_formula(Rng& rng, int depth) {
  const char* signals[] = {"a", "b", "c"};
  if (depth <= 0 || rng.chance(1, 3)) {
    switch (rng.below(4)) {
      case 0:
        return psl::sig(signals[rng.below(3)]);
      case 1:
        return psl::not_(psl::sig(signals[rng.below(3)]));
      case 2:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kEq, rng.below(3));
      default:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kGe, rng.below(3));
    }
  }
  switch (rng.below(10)) {
    case 0:
      return psl::and_(random_formula(rng, depth - 1), random_formula(rng, depth - 1));
    case 1:
      return psl::or_(random_formula(rng, depth - 1), random_formula(rng, depth - 1));
    case 2:
      return psl::implies(random_formula(rng, depth - 1),
                          random_formula(rng, depth - 1));
    case 3:
      return psl::next(static_cast<uint32_t>(rng.range(1, 3)),
                       random_formula(rng, depth - 1));
    case 4:
      return psl::next_eps(1, rng.range(1, 5) * 10, random_formula(rng, depth - 1));
    case 5:
      return psl::until(random_formula(rng, depth - 1),
                        random_formula(rng, depth - 1), rng.chance(1, 2));
    case 6:
      return psl::release(random_formula(rng, depth - 1),
                          random_formula(rng, depth - 1));
    case 7:
      return psl::always(random_formula(rng, depth - 1));
    case 8:
      return psl::abort_(random_formula(rng, depth - 1),
                         psl::sig(signals[rng.below(3)]));
    default:
      return psl::eventually(random_formula(rng, depth - 1));
  }
}

// Random trace: mostly on a 10 ns grid with occasional dropped instants, so
// next_e obligations both hit and miss.
Trace random_trace(Rng& rng, size_t max_len) {
  Trace trace;
  psl::TimeNs time = 10;
  const size_t len = rng.range(1, max_len);
  for (size_t i = 0; i < len; ++i) {
    Observation o;
    o.time = time;
    o.values.set("a", rng.below(3));
    o.values.set("b", rng.below(3));
    o.values.set("c", rng.below(3));
    trace.push_back(std::move(o));
    time += 10 * rng.range(1, 3);  // skip 0..2 grid instants
  }
  return trace;
}

class RandomizedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedEquivalence, InstanceMatchesReferenceEvaluator) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  const ExprPtr formula = random_formula(rng, 3);
  const Trace trace = random_trace(rng, 12);

  Instance instance(formula);
  for (size_t k = 0; k < trace.size(); ++k) {
    const Verdict incremental =
        instance.step(Event{trace[k].time, &trace[k].values});
    const Trace prefix(trace.begin(), trace.begin() + k + 1);
    const Verdict reference =
        reference_eval(formula, prefix, 0, /*complete=*/false);
    ASSERT_EQ(incremental, reference)
        << "formula: " << psl::to_string(formula) << "\nprefix length: " << k + 1;
    if (incremental != Verdict::kPending) return;  // resolved: stays resolved
  }
  const Verdict final_incremental = instance.finish();
  const Verdict final_reference =
      reference_eval(formula, trace, 0, /*complete=*/true);
  ASSERT_EQ(final_incremental, final_reference)
      << "formula: " << psl::to_string(formula);
}

TEST_P(RandomizedEquivalence, ResetInstanceBehavesLikeFresh) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  const ExprPtr formula = random_formula(rng, 3);
  const Trace first = random_trace(rng, 8);
  const Trace second = random_trace(rng, 8);

  Instance reused(formula);
  for (const auto& o : first) {
    if (reused.step(Event{o.time, &o.values}) != Verdict::kPending) break;
  }
  reused.reset();

  Instance fresh(formula);
  for (const auto& o : second) {
    const Verdict a = reused.step(Event{o.time, &o.values});
    const Verdict b = fresh.step(Event{o.time, &o.values});
    ASSERT_EQ(a, b) << psl::to_string(formula);
    if (a != Verdict::kPending) return;
  }
  ASSERT_EQ(reused.finish(), fresh.finish()) << psl::to_string(formula);
}

TEST_P(RandomizedEquivalence, PropertyCheckerMatchesReferenceAlways) {
  // The repeating (always) checker must agree with the reference evaluation
  // of `always body` over the full trace.
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299709 + 31);
  const ExprPtr body = random_formula(rng, 2);
  const Trace trace = random_trace(rng, 10);

  PropertyChecker checker("rand", psl::always(body), nullptr);
  for (const auto& o : trace) checker.on_event(o.time, o.values);
  checker.finish();

  const Verdict reference =
      reference_eval_always(body, trace, /*complete=*/true);
  if (reference == Verdict::kFalse) {
    EXPECT_GT(checker.stats().failures, 0u) << psl::to_string(body);
  } else {
    EXPECT_EQ(checker.stats().failures, 0u) << psl::to_string(body);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedEquivalence, ::testing::Range(0, 300));

}  // namespace
}  // namespace repro::checker
