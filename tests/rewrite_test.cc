#include <gtest/gtest.h>

#include "psl/parser.h"
#include "rewrite/context_map.h"
#include "rewrite/methodology.h"
#include "rewrite/next_substitution.h"
#include "rewrite/nnf.h"
#include "rewrite/push_ahead.h"
#include "rewrite/signal_abstraction.h"

namespace repro::rewrite {
namespace {

using psl::ExprPtr;

ExprPtr parse(const std::string& text) {
  auto result = psl::parse_expr(text);
  EXPECT_TRUE(result.ok()) << text << ": "
                           << (result.ok() ? "" : result.error().to_string());
  return result.value();
}

void expect_rewrites(const ExprPtr& input, const std::string& expected,
                     ExprPtr (*pass)(const ExprPtr&)) {
  const ExprPtr got = pass(input);
  EXPECT_EQ(psl::to_string(got), expected) << "input: " << psl::to_string(input);
}

// ---- NNF --------------------------------------------------------------------

TEST(Nnf, EliminatesImplication) {
  expect_rewrites(parse("a -> b"), "!a || b", to_nnf);
}

TEST(Nnf, DeMorgan) {
  expect_rewrites(parse("!(a && b)"), "!a || !b", to_nnf);
  expect_rewrites(parse("!(a || b)"), "!a && !b", to_nnf);
}

TEST(Nnf, DoubleNegation) {
  expect_rewrites(parse("!!a"), "a", to_nnf);
}

TEST(Nnf, FlipsComparisonAtoms) {
  expect_rewrites(parse("!(x == 3)"), "x != 3", to_nnf);
  expect_rewrites(parse("!(x < 3)"), "x >= 3", to_nnf);
  expect_rewrites(parse("!(x >= 3)"), "x < 3", to_nnf);
  expect_rewrites(parse("!(x != 3)"), "x == 3", to_nnf);
}

TEST(Nnf, NegationThroughNext) {
  expect_rewrites(parse("!(next[3](a))"), "next[3](!a)", to_nnf);
}

TEST(Nnf, UntilReleaseDuality) {
  expect_rewrites(parse("!(a until! b)"), "!a release !b", to_nnf);
  expect_rewrites(parse("!(a release b)"), "!a until! !b", to_nnf);
  // Weak until negation: !(p W q) == !q until! (!p && !q); the conjunction
  // needs no parentheses since && binds tighter than until!.
  expect_rewrites(parse("!(a until b)"), "!b until! !a && !b", to_nnf);
}

TEST(Nnf, AlwaysEventuallyDuality) {
  expect_rewrites(parse("!(always a)"), "eventually! !a", to_nnf);
  expect_rewrites(parse("!(eventually! a)"), "always !a", to_nnf);
}

TEST(Nnf, NegationThroughAbort) {
  // Reset semantics: negation flips the reset resolution value.
  expect_rewrites(parse("!((a until b) abort rst)"),
                  "(!b until! !a && !b) abort! rst", to_nnf);
  expect_rewrites(parse("!(a abort! rst)"), "!a abort rst", to_nnf);
}

TEST(Nnf, Constants) {
  expect_rewrites(parse("!true"), "false", to_nnf);
  expect_rewrites(parse("!false"), "true", to_nnf);
}

TEST(Nnf, IsIdempotent) {
  const ExprPtr once = to_nnf(parse("!(a -> next(b until! c))"));
  const ExprPtr twice = to_nnf(once);
  EXPECT_TRUE(psl::equal(once, twice));
  EXPECT_TRUE(is_nnf(once));
}

TEST(Nnf, RecognizerRejectsNonNnf) {
  EXPECT_FALSE(is_nnf(parse("a -> b")));
  EXPECT_FALSE(is_nnf(parse("!(a && b)")));
  EXPECT_TRUE(is_nnf(parse("!a || b")));
}

// ---- push_ahead_next ----------------------------------------------------------

ExprPtr push_paper(const ExprPtr& e) {
  return push_ahead_next(e, PushMode::kDistributeThroughFixpoints);
}

TEST(PushAhead, DistributesOverOr) {
  expect_rewrites(parse("next(a || b)"), "next(a) || next(b)", push_paper);
}

TEST(PushAhead, DistributesOverAnd) {
  expect_rewrites(parse("next(a && b)"), "next(a) && next(b)", push_paper);
}

TEST(PushAhead, DistributesOverUntil) {
  // The paper's p2 example (Sec. III-A).
  expect_rewrites(parse("next(!ds until next(rdy))"),
                  "next(!ds) until next[2](rdy)", push_paper);
}

TEST(PushAhead, DistributesOverRelease) {
  expect_rewrites(parse("next(a release b)"), "next(a) release next(b)",
                  push_paper);
}

TEST(PushAhead, CollapsesChains) {
  expect_rewrites(parse("next[2](next[3](a))"), "next[5](a)", push_paper);
}

TEST(PushAhead, CommutesWithAlwaysAndEventually) {
  expect_rewrites(parse("next(always a)"), "always next(a)", push_paper);
  expect_rewrites(parse("next(eventually! a)"), "eventually! next(a)",
                  push_paper);
}

TEST(PushAhead, ConstantsAreTimeInvariant) {
  expect_rewrites(parse("next[4](true)"), "true", push_paper);
  expect_rewrites(parse("next[4](false)"), "false", push_paper);
}

TEST(PushAhead, OpaqueModeKeepsBooleanOperandFixpoints) {
  const ExprPtr got =
      push_ahead_next(parse("next(!ds until rdy)"), PushMode::kOpaqueFixpoints);
  EXPECT_EQ(psl::to_string(got), "next(!ds until rdy)");
  EXPECT_TRUE(is_pushed(got));
}

TEST(PushAhead, OpaqueModeStillDistributesNonBooleanFixpoints) {
  const ExprPtr got = push_ahead_next(parse("next(!ds until next(rdy))"),
                                      PushMode::kOpaqueFixpoints);
  EXPECT_EQ(psl::to_string(got), "next(!ds) until next[2](rdy)");
}

TEST(PushAhead, AbortConditionShiftsWithOperand) {
  expect_rewrites(parse("next[2](a abort rst)"), "next[2](a) abort rst",
                  push_paper);
}

TEST(PushAhead, OpaqueModeKeepsBooleanAbort) {
  const auto got =
      push_ahead_next(parse("next(a abort rst)"), PushMode::kOpaqueFixpoints);
  EXPECT_EQ(psl::to_string(got), "next(a abort rst)");
}

TEST(PushAhead, ResultIsPushed) {
  const ExprPtr got = push_paper(parse("next[2]((a || next(b)) until c)"));
  EXPECT_TRUE(is_pushed(got));
}

// ---- Algorithm III.1 ------------------------------------------------------------

TEST(NextSubstitution, AssignsTauInTextualOrderAndEpsFromClock) {
  const ExprPtr input = parse("next[3](a) && next[5](b)");
  const ExprPtr got = substitute_next(input, 10);
  EXPECT_EQ(psl::to_string(got), "next_e[1,30](a) && next_e[2,50](b)");
}

TEST(NextSubstitution, UsesClockPeriod) {
  const ExprPtr got = substitute_next(parse("next[4](a)"), 7);
  EXPECT_EQ(psl::to_string(got), "next_e[1,28](a)");
}

TEST(NextSubstitution, LeavesUntilReleaseUnchanged) {
  const ExprPtr input = parse("a until b");
  const ExprPtr got = substitute_next(input, 10);
  EXPECT_TRUE(psl::equal(input, got));
}

TEST(NextSubstitution, TauOrderInsideUntilOperands) {
  const ExprPtr input = parse("next(a) until next[2](b)");
  const ExprPtr got = substitute_next(input, 10);
  EXPECT_EQ(psl::to_string(got), "next_e[1,10](a) until next_e[2,20](b)");
}

// ---- Def. III.2 context mapping ---------------------------------------------------

TEST(ContextMap, BasicContextsMapToTb) {
  for (auto kind : {psl::ClockContext::Kind::kTrue, psl::ClockContext::Kind::kClk,
                    psl::ClockContext::Kind::kClkPos,
                    psl::ClockContext::Kind::kClkNeg}) {
    psl::ClockContext c;
    c.kind = kind;
    const psl::TransactionContext t = map_context(c);
    EXPECT_EQ(t.guard, nullptr);
    EXPECT_EQ(psl::to_string(t), "Tb");
  }
}

TEST(ContextMap, GuardCarriesOver) {
  psl::ClockContext c;
  c.kind = psl::ClockContext::Kind::kClkPos;
  c.guard = parse("monitor_en && mode == 2");
  const psl::TransactionContext t = map_context(c);
  EXPECT_EQ(psl::to_string(t), "Tb && monitor_en && mode == 2");
}

// ---- Fig. 4 signal abstraction ------------------------------------------------------

SignalAbstractionResult abstract(const std::string& text,
                                 std::set<std::string> signals) {
  return abstract_signals(to_nnf(parse(text)), signals);
}

TEST(SignalAbstraction, AtomDeleted) {
  const auto result = abstract("a_s", {"a_s"});
  EXPECT_EQ(result.formula, nullptr);
  EXPECT_EQ(result.classification, AbstractionClass::kDeleted);
}

TEST(SignalAbstraction, NegatedAtomDeleted) {
  const auto result = abstract("!a_s", {"a_s"});
  EXPECT_EQ(result.formula, nullptr);
}

TEST(SignalAbstraction, NextOfDeletedIsDeleted) {
  const auto result = abstract("next[3](a_s)", {"a_s"});
  EXPECT_EQ(result.formula, nullptr);
}

TEST(SignalAbstraction, OrAbsorbsDeleted) {
  const auto left = abstract("p || a_s", {"a_s"});
  ASSERT_NE(left.formula, nullptr);
  EXPECT_EQ(psl::to_string(left.formula), "p");
  EXPECT_EQ(left.classification, AbstractionClass::kNeedsReview);

  const auto right = abstract("a_s || p", {"a_s"});
  EXPECT_EQ(psl::to_string(right.formula), "p");
}

TEST(SignalAbstraction, AndAbsorbsDeletedAsConsequence) {
  const auto result = abstract("p && a_s", {"a_s"});
  EXPECT_EQ(psl::to_string(result.formula), "p");
  EXPECT_EQ(result.classification, AbstractionClass::kConsequence);
}

TEST(SignalAbstraction, UntilRules) {
  // p until deleted -> p (needs review).
  const auto rhs = abstract("p until a_s", {"a_s"});
  EXPECT_EQ(psl::to_string(rhs.formula), "p");
  EXPECT_EQ(rhs.classification, AbstractionClass::kNeedsReview);
  // deleted until p -> deleted.
  const auto lhs = abstract("a_s until p", {"a_s"});
  EXPECT_EQ(lhs.formula, nullptr);
}

TEST(SignalAbstraction, ReleaseRules) {
  // p release deleted -> deleted.
  const auto rhs = abstract("p release a_s", {"a_s"});
  EXPECT_EQ(rhs.formula, nullptr);
  // deleted release p -> p (consequence: p release q entails q now).
  const auto lhs = abstract("a_s release p", {"a_s"});
  EXPECT_EQ(psl::to_string(lhs.formula), "p");
  EXPECT_EQ(lhs.classification, AbstractionClass::kConsequence);
}

TEST(SignalAbstraction, AbortRules) {
  // p abort deleted -> p (needs review: the reset protection is lost).
  const auto rhs = abstract("p abort rst_s", {"rst_s"});
  EXPECT_EQ(psl::to_string(rhs.formula), "p");
  EXPECT_EQ(rhs.classification, AbstractionClass::kNeedsReview);
  // deleted abort b -> deleted.
  const auto lhs = abstract("a_s abort rst", {"a_s"});
  EXPECT_EQ(lhs.formula, nullptr);
}

TEST(SignalAbstraction, AlwaysOfDeletedIsDeleted) {
  EXPECT_EQ(abstract("always a_s", {"a_s"}).formula, nullptr);
  EXPECT_EQ(abstract("eventually! a_s", {"a_s"}).formula, nullptr);
}

TEST(SignalAbstraction, UntouchedFormulaIsUnchangedAndShared) {
  const ExprPtr input = to_nnf(parse("a until b"));
  const auto result = abstract_signals(input, {"other"});
  EXPECT_EQ(result.formula, input);  // pointer-equal: no rebuild
  EXPECT_EQ(result.classification, AbstractionClass::kUnchanged);
}

TEST(SignalAbstraction, AtomWithAbstractedRhsSignalDeleted) {
  const auto result = abstract("x == a_s || p", {"a_s"});
  EXPECT_EQ(psl::to_string(result.formula), "p");
}

TEST(SignalAbstraction, PaperP3Example) {
  // Fig. 3: p3 loses both next-chains over the abstracted handshake signals
  // and keeps next[17](rdy); the && absorptions are consequences.
  const auto result = abstract(
      "!ds || (next[15](rdy_nnc) && next[16](rdy_nc) && next[17](rdy))",
      {"rdy_nnc", "rdy_nc"});
  EXPECT_EQ(psl::to_string(result.formula), "!ds || next[17](rdy)");
  EXPECT_EQ(result.classification, AbstractionClass::kConsequence);
}

// ---- Methodology III.1 end to end ------------------------------------------------------

AbstractionOptions options_with(psl::TimeNs period, std::set<std::string> sigs,
                                PushMode mode = PushMode::kOpaqueFixpoints) {
  AbstractionOptions o;
  o.clock_period_ns = period;
  o.abstracted_signals = std::move(sigs);
  o.push_mode = mode;
  return o;
}

TEST(Methodology, Fig3Q1) {
  const auto p1 = psl::parse_rtl_property(
      "p1: always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos");
  ASSERT_TRUE(p1.ok());
  const auto outcome = abstract_property(p1.value(), options_with(10, {}));
  ASSERT_FALSE(outcome.deleted());
  EXPECT_EQ(psl::to_string(*outcome.property),
            "always !ds || indata != 0 || next_e[1,170](out != 0) @Tb");
  EXPECT_EQ(outcome.classification, AbstractionClass::kUnchanged);
}

TEST(Methodology, Fig3Q2PaperMode) {
  // The published q2: next distributed into the until (Fig. 3).
  const auto p2 = psl::parse_rtl_property(
      "p2: always (!ds || next(!ds until next(rdy))) @clk_pos");
  ASSERT_TRUE(p2.ok());
  const auto outcome = abstract_property(
      p2.value(), options_with(10, {}, PushMode::kDistributeThroughFixpoints));
  ASSERT_FALSE(outcome.deleted());
  EXPECT_EQ(psl::to_string(*outcome.property),
            "always !ds || (next_e[1,10](!ds) until next_e[2,20](rdy)) @Tb");
}

TEST(Methodology, Fig3Q3) {
  const auto p3 = psl::parse_rtl_property(
      "p3: always (!ds || (next[15](rdy_next_next_cycle) && "
      "next[16](rdy_next_cycle) && next[17](rdy))) @clk_pos");
  ASSERT_TRUE(p3.ok());
  const auto outcome = abstract_property(
      p3.value(),
      options_with(10, {"rdy_next_cycle", "rdy_next_next_cycle"}));
  ASSERT_FALSE(outcome.deleted());
  EXPECT_EQ(psl::to_string(*outcome.property),
            "always !ds || next_e[1,170](rdy) @Tb");
  EXPECT_EQ(outcome.classification, AbstractionClass::kConsequence);
}

TEST(Methodology, DeletedPropertyReported) {
  const auto p = psl::parse_rtl_property(
      "always (rdy_nnc -> next(rdy_nc)) @clk_pos");
  ASSERT_TRUE(p.ok());
  const auto outcome =
      abstract_property(p.value(), options_with(10, {"rdy_nc", "rdy_nnc"}));
  EXPECT_TRUE(outcome.deleted());
  EXPECT_EQ(outcome.classification, AbstractionClass::kDeleted);
}

TEST(Methodology, GuardOverAbstractedSignalFallsBackToTb) {
  const auto p = psl::parse_rtl_property(
      "always (!ds || next(rdy)) @clk_pos && dbg_en");
  ASSERT_TRUE(p.ok());
  const auto outcome = abstract_property(p.value(), options_with(10, {"dbg_en"}));
  ASSERT_FALSE(outcome.deleted());
  EXPECT_EQ(outcome.property->context.guard, nullptr);
}

TEST(Methodology, GuardPartiallyAbstracted) {
  const auto p = psl::parse_rtl_property(
      "always (!ds || next(rdy)) @clk_pos && monitor_en && dbg_en");
  ASSERT_TRUE(p.ok());
  const auto outcome = abstract_property(p.value(), options_with(10, {"dbg_en"}));
  ASSERT_FALSE(outcome.deleted());
  ASSERT_NE(outcome.property->context.guard, nullptr);
  EXPECT_EQ(psl::to_string(outcome.property->context.guard), "monitor_en");
}

TEST(Methodology, SuiteKeepsOrderAndCounts) {
  const auto suite = psl::parse_rtl_property_file(
      "a1: always (!x || next(y)) @clk_pos;"
      "a2: always (ctrl -> next(ctrl2)) @clk_pos;"
      "a3: always (x until y) @clk_pos;");
  ASSERT_TRUE(suite.ok());
  const auto outcomes =
      abstract_suite(suite.value(), options_with(10, {"ctrl", "ctrl2"}));
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[0].deleted());
  EXPECT_TRUE(outcomes[1].deleted());
  EXPECT_FALSE(outcomes[2].deleted());
  // Theorem III.1: pure until properties pass through unchanged.
  EXPECT_EQ(psl::to_string(outcomes[2].property->formula), "always x until y");
}

TEST(Methodology, SimpleSubsetViolationsAreReported) {
  const auto p = psl::parse_rtl_property("always (next(a) || next(b)) @clk_pos");
  ASSERT_TRUE(p.ok());
  const auto outcome = abstract_property(p.value(), options_with(10, {}));
  bool found = false;
  for (const auto& note : outcome.notes) {
    if (note.find("simple-subset") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace repro::rewrite
