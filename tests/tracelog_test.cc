// support::tracelog: on-disk format round trips, corrupt-input rejection
// with distinct error kinds, and record-then-replay equivalence against the
// live simulation (the RecordSource ingest redesign's core guarantee).
#include "support/tracelog.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/testbench.h"
#include "psl/parser.h"
#include "tlm/record_source.h"
#include "tlm/transaction.h"

namespace repro {
namespace {

using support::tracelog::TraceError;
using support::tracelog::TraceReader;
using support::tracelog::TraceReplaySource;
using support::tracelog::TraceWriter;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::shared_ptr<const tlm::Snapshot::Keys> test_keys() {
  return std::make_shared<const tlm::Snapshot::Keys>(
      tlm::Snapshot::Keys{"ds", "rdy", "out"});
}

tlm::RecordStreamMeta test_meta() {
  tlm::RecordStreamMeta meta;
  meta.design = "DES56";
  meta.level = "TLM-AT";
  meta.clock_period_ns = 10;
  return meta;
}

std::vector<tlm::TransactionRecord> test_records(size_t n) {
  auto keys = test_keys();
  std::vector<tlm::TransactionRecord> records;
  for (size_t i = 0; i < n; ++i) {
    tlm::TransactionRecord r;
    r.start = 10 * i;
    r.end = 10 * i + 7;
    r.command = i % 2 == 0 ? tlm::Command::kWrite : tlm::Command::kRead;
    r.response = tlm::Response::kOk;
    r.address = 0x100 + i;
    r.data = {i, ~i};
    r.observables = tlm::Snapshot(keys);
    r.observables.set_at(0, i % 2);
    r.observables.set_at(1, i % 3);
    r.observables.set_at(2, 0xdead0000 + i);
    records.push_back(std::move(r));
  }
  return records;
}

// Writes `n` records into `path`, `frame_records` per frame.
void write_log(const std::string& path, size_t n, size_t frame_records = 256) {
  TraceWriter writer(path, test_meta(), frame_records);
  for (const tlm::TransactionRecord& r : test_records(n)) writer.append(r);
  ASSERT_TRUE(writer.finish()) << writer.error();
}

void expect_same_records(const std::vector<tlm::TransactionRecord>& got,
                         const std::vector<tlm::TransactionRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].start, want[i].start) << i;
    EXPECT_EQ(got[i].end, want[i].end) << i;
    EXPECT_EQ(got[i].command, want[i].command) << i;
    EXPECT_EQ(got[i].response, want[i].response) << i;
    EXPECT_EQ(got[i].address, want[i].address) << i;
    EXPECT_EQ(got[i].data, want[i].data) << i;
    ASSERT_EQ(got[i].observables.size(), want[i].observables.size()) << i;
    for (size_t k = 0; k < want[i].observables.size(); ++k) {
      EXPECT_EQ((*got[i].observables.keys())[k],
                (*want[i].observables.keys())[k]);
      EXPECT_EQ(got[i].observables.at(k), want[i].observables.at(k)) << i;
    }
  }
}

TEST(TracelogFormat, PathPicksEncoding) {
  EXPECT_EQ(support::tracelog::format_for_path("x.rtabv"),
            support::tracelog::Format::kBinary);
  EXPECT_EQ(support::tracelog::format_for_path("x"),
            support::tracelog::Format::kBinary);
  EXPECT_EQ(support::tracelog::format_for_path("x.jsonl"),
            support::tracelog::Format::kJsonl);
}

TEST(TracelogFormat, BinaryRoundTrip) {
  const std::string path = temp_path("roundtrip.rtabv");
  write_log(path, 10, /*frame_records=*/4);  // 4+4+2: three frames
  TraceReader reader;
  ASSERT_FALSE(reader.open(path).has_value());
  EXPECT_EQ(reader.meta().design, "DES56");
  EXPECT_EQ(reader.meta().level, "TLM-AT");
  EXPECT_EQ(reader.meta().clock_period_ns, 10u);
  EXPECT_EQ(reader.meta().observables, *test_keys());
  EXPECT_EQ(reader.frame_sizes(), (std::vector<size_t>{4, 4, 2}));
  expect_same_records(reader.records(), test_records(10));
}

TEST(TracelogFormat, JsonlRoundTrip) {
  const std::string path = temp_path("roundtrip.jsonl");
  write_log(path, 5);
  // The debug encoding is line-oriented text: meta line + one line/record.
  const std::string text = slurp(path);
  EXPECT_EQ(text.compare(0, 1, "{"), 0);
  TraceReader reader;
  ASSERT_FALSE(reader.open(path).has_value());
  EXPECT_EQ(reader.meta().observables, *test_keys());
  expect_same_records(reader.records(), test_records(5));
}

TEST(TracelogFormat, EmptyStreamRoundTrip) {
  const std::string path = temp_path("empty.rtabv");
  TraceWriter writer(path, test_meta());
  ASSERT_TRUE(writer.finish()) << writer.error();
  TraceReader reader;
  ASSERT_FALSE(reader.open(path).has_value());
  EXPECT_TRUE(reader.records().empty());
  EXPECT_EQ(reader.meta().design, "DES56");
}

TEST(TracelogFormat, WriteSpanFramesPerSegment) {
  const std::string path = temp_path("spans.rtabv");
  const std::vector<tlm::TransactionRecord> records = test_records(10);
  TraceWriter writer(path, test_meta());
  writer.write_span(records.data(), records.data() + 7);
  writer.write_span(records.data() + 7, records.data() + 10);
  ASSERT_TRUE(writer.finish()) << writer.error();
  TraceReader reader;
  ASSERT_FALSE(reader.open(path).has_value());
  // One frame per sealed segment, mirroring the live engine's batching.
  EXPECT_EQ(reader.frame_sizes(), (std::vector<size_t>{7, 3}));
  expect_same_records(reader.records(), records);
}

TEST(TracelogFormat, WriterAdoptsDictionaryFromFirstRecord) {
  const std::string path = temp_path("adopt.rtabv");
  tlm::RecordStreamMeta meta = test_meta();
  meta.observables.clear();  // adopt from the stream
  TraceWriter writer(path, meta);
  for (const tlm::TransactionRecord& r : test_records(3)) writer.append(r);
  ASSERT_TRUE(writer.finish()) << writer.error();
  TraceReader reader;
  ASSERT_FALSE(reader.open(path).has_value());
  EXPECT_EQ(reader.meta().observables, *test_keys());
}

TEST(TracelogFormat, WriterRejectsInconsistentKeyTable) {
  const std::string path = temp_path("inconsistent.rtabv");
  TraceWriter writer(path, test_meta());
  std::vector<tlm::TransactionRecord> records = test_records(1);
  writer.append(records[0]);
  tlm::TransactionRecord odd;
  odd.observables = tlm::Snapshot(std::make_shared<const tlm::Snapshot::Keys>(
      tlm::Snapshot::Keys{"other"}));
  writer.append(odd);
  EXPECT_FALSE(writer.finish());
  EXPECT_NE(writer.error().find("key table"), std::string::npos);
}

TEST(TracelogErrors, MissingFileIsIo) {
  TraceReader reader;
  auto err = reader.open(temp_path("does_not_exist.rtabv"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kIo);
}

TEST(TracelogErrors, ShortMagicIsTruncated) {
  const std::string path = temp_path("shortmagic.rtabv");
  spit(path, "RTAB");
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kTruncated);
}

TEST(TracelogErrors, WrongMagicIsBadMagic) {
  const std::string path = temp_path("badmagic.rtabv");
  spit(path, "NOTALOG!garbage beyond the magic");
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kBadMagic);
}

TEST(TracelogErrors, FutureVersionIsUnsupported) {
  const std::string path = temp_path("future.rtabv");
  write_log(path, 2);
  std::string bytes = slurp(path);
  bytes[8] = 99;  // schema_version LSB (little-endian u32 after the magic)
  spit(path, bytes);
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kUnsupportedVersion);
  EXPECT_NE(err->message.find("99"), std::string::npos);
}

TEST(TracelogErrors, FlippedMetaByteIsCrcMismatch) {
  const std::string path = temp_path("metacrc.rtabv");
  write_log(path, 2);
  std::string bytes = slurp(path);
  // 8 magic + 4 version + 1 endian + 4 meta length, then the meta payload.
  bytes[17] ^= 0x40;
  spit(path, bytes);
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kCrcMismatch);
}

TEST(TracelogErrors, FlippedRecordByteIsCrcMismatch) {
  const std::string path = temp_path("framecrc.rtabv");
  write_log(path, 4);
  std::string bytes = slurp(path);
  // The trailer is the last 13 bytes ('E' + u64 + u32); flip a record byte
  // well inside the single record frame just before it.
  bytes[bytes.size() - 20] ^= 0x01;
  spit(path, bytes);
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kCrcMismatch);
}

TEST(TracelogErrors, ChoppedTrailerIsTruncated) {
  const std::string path = temp_path("chopped.rtabv");
  write_log(path, 4);
  std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 13));  // drop the trailer frame
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kTruncated);
}

TEST(TracelogErrors, ChoppedRecordFrameIsTruncated) {
  const std::string path = temp_path("midframe.rtabv");
  write_log(path, 4);
  std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 30));  // ends inside the frame
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kTruncated);
}

TEST(TracelogErrors, TrailingBytesAreCorrupt) {
  const std::string path = temp_path("trailing.rtabv");
  write_log(path, 2);
  spit(path, slurp(path) + "x");
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kCorrupt);
}

TEST(TracelogErrors, JsonlWithoutMetaIsBadMagic) {
  const std::string path = temp_path("nometa.jsonl");
  spit(path, "{\"start\":0,\"end\":1}\n");
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kBadMagic);
}

TEST(TracelogErrors, MalformedJsonlRecordIsCorrupt) {
  const std::string path = temp_path("badline.jsonl");
  write_log(path, 1);
  spit(path, slurp(path) + "{\"start\":}\n");
  TraceReader reader;
  auto err = reader.open(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kCorrupt);
}

TEST(TracelogErrors, KindStringsAreDistinct) {
  const TraceError::Kind kinds[] = {
      TraceError::Kind::kIo,           TraceError::Kind::kBadMagic,
      TraceError::Kind::kUnsupportedVersion, TraceError::Kind::kTruncated,
      TraceError::Kind::kCrcMismatch,  TraceError::Kind::kCorrupt,
      TraceError::Kind::kMetaMismatch};
  std::vector<std::string> names;
  for (TraceError::Kind k : kinds) names.push_back(to_string(k));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(TracelogMeta, ValidateChecksIdentity) {
  tlm::RecordStreamMeta actual = test_meta();
  actual.observables = *test_keys();
  tlm::RecordStreamMeta expected = actual;
  EXPECT_FALSE(
      support::tracelog::validate_meta(actual, expected).has_value());

  // The dictionary is compared as a set: container iteration order is a
  // producer detail (RTL bags sort, TLM tables are declaration-ordered).
  expected.observables = {"rdy", "out", "ds"};
  EXPECT_FALSE(
      support::tracelog::validate_meta(actual, expected).has_value());

  expected.observables = {"rdy", "out"};
  auto err = support::tracelog::validate_meta(actual, expected);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kMetaMismatch);

  expected = actual;
  expected.design = "ColorConv";
  err = support::tracelog::validate_meta(actual, expected);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kMetaMismatch);

  expected = actual;
  expected.clock_period_ns = 20;
  err = support::tracelog::validate_meta(actual, expected);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, TraceError::Kind::kMetaMismatch);

  // Unset expectations (empty design/level, zero clock) match anything.
  expected = tlm::RecordStreamMeta{};
  expected.observables = actual.observables;
  EXPECT_FALSE(
      support::tracelog::validate_meta(actual, expected).has_value());
}

TEST(TracelogMeta, ReadMetaParsesHeaderOnly) {
  const std::string path = temp_path("metaonly.rtabv");
  write_log(path, 3);
  tlm::RecordStreamMeta meta;
  ASSERT_FALSE(support::tracelog::read_meta(path, meta).has_value());
  EXPECT_EQ(meta.design, "DES56");
  EXPECT_EQ(meta.observables, *test_keys());
}

TEST(TracelogSource, ReplaySourceMirrorsFrames) {
  const std::string path = temp_path("source.rtabv");
  write_log(path, 10, /*frame_records=*/4);
  TraceReader reader;
  ASSERT_FALSE(reader.open(path).has_value());
  TraceReplaySource source(std::move(reader));
  EXPECT_EQ(source.meta().design, "DES56");
  std::vector<size_t> spans;
  size_t total = 0;
  for (tlm::RecordSpan span = source.next(); !span.empty();
       span = source.next()) {
    spans.push_back(span.size());
    total += span.size();
  }
  EXPECT_EQ(spans, (std::vector<size_t>{4, 4, 2}));
  EXPECT_EQ(total, 10u);
  EXPECT_TRUE(source.next().empty());  // stays exhausted
}

// ---- Record-then-replay equivalence ---------------------------------------

// The reports must match byte for byte with the timing block excluded, which
// is exactly write_json without a ReportTiming argument.
std::string report_json(const models::RunResult& result) {
  std::ostringstream os;
  result.report.write_json(os, nullptr);
  return os.str();
}

models::RunConfig replay_config(const models::RunConfig& recorded,
                                const std::string& log, size_t jobs) {
  models::RunConfig config = recorded;
  config.ingest.record_path.clear();
  config.ingest.replay_path = log;
  config.engine.jobs = jobs;
  return config;
}

class ReplayEquivalence : public testing::TestWithParam<size_t> {};

TEST_P(ReplayEquivalence, Des56TlmAtWithWitnessDemo) {
  const std::string log =
      temp_path("des56_at_" + std::to_string(GetParam()) + ".rtabv");
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 120;
  config.checkers = 9;
  config.engine.jobs = GetParam();
  // A deliberately failing property so the equivalence covers failure logs
  // and witness rings, not just counters.
  auto parsed = psl::parse_rtl_property(
      "wdemo: always (!ds || next[1](rdy)) @clk_pos");
  ASSERT_TRUE(parsed.ok());
  config.extra_properties.push_back(std::move(parsed).take());
  config.ingest.record_path = log;
  const models::RunResult live = models::run_simulation(config);
  ASSERT_TRUE(live.ingest_error.empty()) << live.ingest_error;
  ASSERT_GT(live.report.total_failures(), 0u);

  for (size_t replay_jobs : {size_t{1}, size_t{4}}) {
    const models::RunResult replayed =
        models::run_simulation(replay_config(config, log, replay_jobs));
    ASSERT_TRUE(replayed.ingest_error.empty()) << replayed.ingest_error;
    EXPECT_EQ(replayed.transactions, live.transactions);
    EXPECT_EQ(report_json(replayed), report_json(live))
        << "replay at jobs=" << replay_jobs;
  }
}

TEST_P(ReplayEquivalence, ColorConvTlmAtWithPrune) {
  const std::string log =
      temp_path("colorconv_at_" + std::to_string(GetParam()) + ".rtabv");
  models::RunConfig config;
  config.design = models::Design::kColorConv;
  config.level = models::Level::kTlmAt;
  config.workload = 200;
  config.checkers = 12;
  config.engine.jobs = GetParam();
  // Derived (pruned) report rows must replay identically too.
  config.analysis = models::AnalysisMode::kOn;
  config.analysis.prune = analysis::PruneMode::kSafe;
  config.ingest.record_path = log;
  const models::RunResult live = models::run_simulation(config);
  ASSERT_TRUE(live.ingest_error.empty()) << live.ingest_error;

  for (size_t replay_jobs : {size_t{1}, size_t{4}}) {
    const models::RunResult replayed =
        models::run_simulation(replay_config(config, log, replay_jobs));
    ASSERT_TRUE(replayed.ingest_error.empty()) << replayed.ingest_error;
    EXPECT_EQ(report_json(replayed), report_json(live))
        << "replay at jobs=" << replay_jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ReplayEquivalence,
                         testing::Values(size_t{1}, size_t{4}));

TEST(ReplayRtl, RecordThenReplayMatchesAndRoundTrips) {
  const std::string log = temp_path("des56_rtl.rtabv");
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kRtl;
  config.workload = 60;
  config.checkers = 9;
  config.ingest.record_path = log;
  const models::RunResult live = models::run_simulation(config);
  ASSERT_TRUE(live.ingest_error.empty()) << live.ingest_error;

  // Replay while re-recording: the checker report matches the live run and
  // the re-recorded log is byte-identical (same records, same framing).
  const std::string rerecorded = temp_path("des56_rtl_rt.rtabv");
  models::RunConfig replay = replay_config(config, log, 1);
  replay.ingest.record_path = rerecorded;
  const models::RunResult replayed = models::run_simulation(replay);
  ASSERT_TRUE(replayed.ingest_error.empty()) << replayed.ingest_error;
  EXPECT_EQ(report_json(replayed), report_json(live));
  EXPECT_EQ(slurp(rerecorded), slurp(log));
}

TEST(ReplayRtl, ColorConvRecordThenReplayMatches) {
  const std::string log = temp_path("colorconv_rtl.rtabv");
  models::RunConfig config;
  config.design = models::Design::kColorConv;
  config.level = models::Level::kRtl;
  config.workload = 100;
  config.checkers = 12;
  config.ingest.record_path = log;
  const models::RunResult live = models::run_simulation(config);
  ASSERT_TRUE(live.ingest_error.empty()) << live.ingest_error;

  const models::RunResult replayed =
      models::run_simulation(replay_config(config, log, 1));
  ASSERT_TRUE(replayed.ingest_error.empty()) << replayed.ingest_error;
  EXPECT_EQ(report_json(replayed), report_json(live));
}

TEST(ReplayValidation, MismatchedConfigIsRejected) {
  const std::string log = temp_path("mismatch.rtabv");
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 30;
  config.checkers = 9;
  config.ingest.record_path = log;
  ASSERT_TRUE(models::run_simulation(config).ingest_error.empty());

  // Same file replayed as the wrong design/level: distinct meta mismatch.
  models::RunConfig wrong = replay_config(config, log, 1);
  wrong.design = models::Design::kColorConv;
  const models::RunResult r = models::run_simulation(wrong);
  EXPECT_NE(r.ingest_error.find("meta mismatch"), std::string::npos)
      << r.ingest_error;

  models::RunConfig wrong_level = replay_config(config, log, 1);
  wrong_level.level = models::Level::kRtl;
  EXPECT_NE(models::run_simulation(wrong_level).ingest_error.find(
                "meta mismatch"),
            std::string::npos);
}

TEST(ReplayValidation, CorruptLogSurfacesIngestError) {
  const std::string log = temp_path("corrupt_replay.rtabv");
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 30;
  config.checkers = 9;
  config.ingest.record_path = log;
  ASSERT_TRUE(models::run_simulation(config).ingest_error.empty());
  std::string bytes = slurp(log);
  spit(log, bytes.substr(0, bytes.size() - 13));

  const models::RunResult r = models::run_simulation(replay_config(config, log, 1));
  EXPECT_NE(r.ingest_error.find("truncated"), std::string::npos)
      << r.ingest_error;
}

TEST(ReplayJsonl, TlmAtJsonlLogReplaysIdentically) {
  const std::string log = temp_path("des56_at.jsonl");
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 60;
  config.checkers = 9;
  config.ingest.record_path = log;
  const models::RunResult live = models::run_simulation(config);
  ASSERT_TRUE(live.ingest_error.empty()) << live.ingest_error;

  const models::RunResult replayed =
      models::run_simulation(replay_config(config, log, 1));
  ASSERT_TRUE(replayed.ingest_error.empty()) << replayed.ingest_error;
  EXPECT_EQ(report_json(replayed), report_json(live));
}

}  // namespace
}  // namespace repro
