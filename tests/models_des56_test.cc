#include <gtest/gtest.h>

#include "models/des56/des56_cycle.h"
#include "models/des56/des56_rtl.h"
#include "models/des56/des_core.h"
#include "models/stimulus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "support/rng.h"

namespace repro::models {
namespace {

// ---- DES core against published vectors -------------------------------------

TEST(DesCore, Fips46TestVector) {
  EXPECT_EQ(des_encrypt(0x0123456789ABCDEFull, 0x133457799BBCDFF1ull),
            0x85E813540F0AB405ull);
  EXPECT_EQ(des_decrypt(0x85E813540F0AB405ull, 0x133457799BBCDFF1ull),
            0x0123456789ABCDEFull);
}

TEST(DesCore, KnownZeroCiphertextVector) {
  EXPECT_EQ(des_encrypt(0x8787878787878787ull, 0x0E329232EA6D0D73ull), 0ull);
}

TEST(DesCore, WeakKeySelfInverse) {
  // With the all-ones weak key, all round keys are equal; encryption is an
  // involution.
  const uint64_t weak = 0xFFFFFFFFFFFFFFFFull;
  const uint64_t block = 0x0123456789ABCDEFull;
  EXPECT_EQ(des_encrypt(des_encrypt(block, weak), weak), block);
}

class DesRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DesRoundTrip, DecryptInvertsEncrypt) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const uint64_t block = rng.next();
  const uint64_t key = rng.next();
  EXPECT_EQ(des_decrypt(des_encrypt(block, key), key), block);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DesRoundTrip, ::testing::Range(0, 50));

TEST(DesCore, StagedApiMatchesOneShot) {
  const uint64_t block = 0xFEDCBA9876543210ull;
  const uint64_t key = 0x0F1571C947D9E859ull;
  const DesKeySchedule schedule = des_key_schedule(key);
  DesState state = des_load(block);
  for (int round = 0; round < 16; ++round) {
    state = des_round(state, schedule[round]);
  }
  EXPECT_EQ(des_unload(state), des_encrypt(block, key));
}

TEST(DesCore, RotatingKeyPathReproducesSchedule) {
  const uint64_t key = 0x133457799BBCDFF1ull;
  const DesKeySchedule schedule = des_key_schedule(key);
  DesCd cd = des_key_load(key);
  for (int round = 0; round < 16; ++round) {
    cd = des_cd_rotate_left(cd, kDesEncShifts[round]);
    EXPECT_EQ(des_round_key(cd), schedule[round]) << "round " << round;
  }
  // After 16 rounds the total rotation is 28: back to C0/D0.
  EXPECT_EQ(cd, des_key_load(key));
}

TEST(DesCore, ReverseKeyPathReproducesScheduleBackwards) {
  const uint64_t key = 0xAABB09182736CCDDull;
  const DesKeySchedule schedule = des_key_schedule(key);
  DesCd cd = des_key_load(key);  // == C16/D16
  for (int round = 0; round < 16; ++round) {
    cd = des_cd_rotate_right(cd, kDesDecShifts[round]);
    EXPECT_EQ(des_round_key(cd), schedule[15 - round]) << "round " << round;
  }
}

// ---- Cycle-accurate core ------------------------------------------------------

// Runs one operation through the cycle model; returns the number of edges
// from acceptance to rdy and checks the handshake staging.
int run_op(Des56Cycle& core, uint64_t block, uint64_t key, bool decrypt,
           uint64_t& result) {
  Des56Inputs in;
  in.ds = true;
  in.indata = block;
  in.key = key;
  in.decrypt = decrypt;
  Des56Outputs out = core.step(in);  // acceptance edge
  EXPECT_FALSE(out.rdy);
  in = Des56Inputs{};  // ds low afterwards
  for (int edge = 1; edge <= 32; ++edge) {
    out = core.step(in);
    EXPECT_EQ(out.rdy_next_next_cycle, edge == 15) << "edge " << edge;
    EXPECT_EQ(out.rdy_next_cycle, edge == 16) << "edge " << edge;
    if (out.rdy) {
      result = out.out;
      return edge;
    }
  }
  ADD_FAILURE() << "no rdy within 32 edges";
  return -1;
}

TEST(Des56Cycle, SeventeenCycleLatencyAndCorrectResult) {
  Des56Cycle core;
  uint64_t result = 0;
  const int latency =
      run_op(core, 0x0123456789ABCDEFull, 0x133457799BBCDFF1ull, false, result);
  EXPECT_EQ(latency, 17);
  EXPECT_EQ(result, 0x85E813540F0AB405ull);
}

TEST(Des56Cycle, DecryptMode) {
  Des56Cycle core;
  uint64_t result = 0;
  run_op(core, 0x85E813540F0AB405ull, 0x133457799BBCDFF1ull, true, result);
  EXPECT_EQ(result, 0x0123456789ABCDEFull);
}

TEST(Des56Cycle, BackToBackOperations) {
  Des56Cycle core;
  Rng rng(7);
  for (int op = 0; op < 8; ++op) {
    const uint64_t block = rng.next();
    const uint64_t key = rng.next();
    uint64_t result = 0;
    EXPECT_EQ(run_op(core, block, key, false, result), 17);
    EXPECT_EQ(result, des_encrypt(block, key));
  }
}

TEST(Des56Cycle, DsIgnoredWhileBusy) {
  Des56Cycle core;
  Des56Inputs in;
  in.ds = true;
  in.indata = 0x1111;
  in.key = 0x2222;
  core.step(in);  // accepted
  // A second ds mid-operation must be ignored (one-outstanding protocol).
  in.indata = 0x9999;
  core.step(in);
  in = Des56Inputs{};
  Des56Outputs out{};
  for (int edge = 3; edge <= 18; ++edge) out = core.step(in);
  EXPECT_TRUE(out.rdy);
  EXPECT_EQ(out.out, des_encrypt(0x1111, 0x2222));
}

TEST(Des56Cycle, OutHoldsAfterRdy) {
  Des56Cycle core;
  uint64_t result = 0;
  run_op(core, 42, 43, false, result);
  const Des56Outputs after = core.step(Des56Inputs{});
  EXPECT_FALSE(after.rdy);         // single-cycle pulse
  EXPECT_EQ(after.out, result);    // data held
}

// ---- RTL model vs. cycle model ---------------------------------------------------

// The RTL model (3 signal-connected processes) must be cycle-equivalent to
// the behavioural Des56Cycle core for a whole random schedule.
TEST(Des56Rtl, MatchesCycleModelOverRandomSchedule) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  Des56Rtl rtl(kernel, clock);
  Des56Cycle reference;

  const std::vector<DesOp> ops = make_des_ops(20, 99);
  Des56DriverModel driver(ops);
  auto last_inputs = std::make_shared<Des56Inputs>();
  size_t divergences = 0;

  // Falling edge: drive both models' inputs for the next rising edge.
  clock.on_negedge([&] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    const Des56Inputs in = driver.tick(rtl.rdy.read(), rtl.out.read());
    rtl.ds.write(in.ds);
    rtl.indata.write(in.indata);
    rtl.key.write(in.key);
    rtl.decrypt.write(in.decrypt);
    *last_inputs = in;
  });
  // Rising edge: step the reference with the same inputs the RTL model
  // samples, then compare outputs one delta later (after commits).
  clock.on_posedge([&] {
    const Des56Outputs expect = reference.step(*last_inputs);
    kernel.schedule_delta([&rtl, expect, &divergences, &kernel] {
      kernel.schedule_delta([&rtl, expect, &divergences] {
        if (rtl.rdy.read() != expect.rdy || rtl.out.read() != expect.out ||
            rtl.rdy_next_cycle.read() != expect.rdy_next_cycle ||
            rtl.rdy_next_next_cycle.read() != expect.rdy_next_next_cycle) {
          ++divergences;
        }
      });
    });
  });

  kernel.run(10'000'000);
  EXPECT_EQ(divergences, 0u);
  EXPECT_EQ(driver.mismatches(), 0u);
  EXPECT_EQ(driver.ops_completed(), ops.size());
}

// ---- Stimulus / driver model -------------------------------------------------------

TEST(Stimulus, DesOpsDeterministicAndSeedSensitive) {
  const auto a = make_des_ops(50, 1);
  const auto b = make_des_ops(50, 1);
  const auto c = make_des_ops(50, 2);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].indata, b[i].indata);
    EXPECT_EQ(a[i].key, b[i].key);
  }
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].indata != c[i].indata) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Stimulus, DesOpsIncludeZeroBlocks) {
  const auto ops = make_des_ops(200, 42);
  size_t zeros = 0;
  for (const auto& op : ops) zeros += op.indata == 0;
  EXPECT_GT(zeros, 5u);  // p1 must fire non-vacuously
  EXPECT_LT(zeros, 100u);
}

TEST(Stimulus, DriverModelEnforcesOneOutstanding) {
  const auto ops = make_des_ops(5, 3);
  Des56DriverModel driver(ops);
  Des56Cycle core;
  Des56Inputs in;
  int ds_while_busy = 0;
  for (int edge = 0; edge < 400 && !driver.done(); ++edge) {
    const bool was_busy = core.busy();
    const Des56Outputs out = core.step(in);
    if (in.ds && was_busy) {
      // ds was asserted while the core is mid-operation: protocol violation.
      ++ds_while_busy;
    }
    in = driver.tick(out.rdy, out.out);
  }
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.mismatches(), 0u);
  EXPECT_EQ(driver.ops_completed(), ops.size());
  EXPECT_EQ(ds_while_busy, 0);
}

}  // namespace
}  // namespace repro::models
