#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.h"
#include "tlm/recorder.h"
#include "tlm/socket.h"
#include "tlm/transaction.h"

namespace repro::tlm {
namespace {

// ---- Snapshot -----------------------------------------------------------------

TEST(Snapshot, SetAndGetByName) {
  auto keys = std::make_shared<Snapshot::Keys>(Snapshot::Keys{"a", "b", "c"});
  Snapshot s(keys);
  s.set("b", 7);
  EXPECT_EQ(s.get("b"), std::optional<uint64_t>(7));
  EXPECT_EQ(s.get("a"), std::optional<uint64_t>(0));
  EXPECT_FALSE(s.get("missing").has_value());
}

TEST(Snapshot, EmptySnapshotHasNoKeys) {
  Snapshot s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.get("x").has_value());
}

TEST(Snapshot, CopySharesKeysButNotValues) {
  auto keys = std::make_shared<Snapshot::Keys>(Snapshot::Keys{"a"});
  Snapshot first(keys);
  first.set("a", 1);
  Snapshot second = first;
  second.set("a", 2);
  EXPECT_EQ(first.get("a"), std::optional<uint64_t>(1));
  EXPECT_EQ(second.get("a"), std::optional<uint64_t>(2));
  EXPECT_EQ(first.keys(), second.keys());
}

TEST(Snapshot, IndexAccess) {
  auto keys = std::make_shared<Snapshot::Keys>(Snapshot::Keys{"x", "y"});
  Snapshot s(keys);
  s.set_at(1, 42);
  EXPECT_EQ(s.at(1), 42u);
  EXPECT_EQ(s.get("y"), std::optional<uint64_t>(42));
}

// ---- Recorder -------------------------------------------------------------------

TEST(Recorder, DeliversAtCompletionTimeInOrder) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  std::vector<sim::Time> delivered;
  recorder.subscribe([&](const TransactionRecord& record) {
    delivered.push_back(record.end);
    EXPECT_EQ(kernel.now(), record.end);
  });
  kernel.schedule_at(10, [&] {
    TransactionRecord late;
    late.end = 50;
    recorder.emit(late);
    TransactionRecord early;
    early.end = 20;
    recorder.emit(early);
  });
  kernel.run_all();
  EXPECT_EQ(delivered, (std::vector<sim::Time>{20, 50}));
  EXPECT_EQ(recorder.transactions(), 2u);
}

TEST(Recorder, InactiveWithoutListeners) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  EXPECT_FALSE(recorder.active());
  recorder.subscribe([](const TransactionRecord&) {});
  EXPECT_TRUE(recorder.active());
}

TEST(Recorder, CountOnlyTracksUnmaterializedTransactions) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  recorder.count();
  recorder.count();
  EXPECT_EQ(recorder.transactions(), 2u);
}

// ---- Socket ---------------------------------------------------------------------

// Target that accepts writes with a fixed latency and echoes data on reads.
class EchoTarget : public TargetIf {
 public:
  void b_transport(Payload& payload, sim::Time& delay) override {
    saw_monitored = payload.monitored;
    if (payload.command == Command::kWrite) {
      stored = payload.data;
      delay += 30;
    } else {
      payload.data = stored;
      delay += 5;
    }
    payload.response = Response::kOk;
  }

  std::vector<uint64_t> stored;
  bool saw_monitored = false;
};

TEST(Socket, TransportReturnsCompletionTime) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  EchoTarget target;
  InitiatorSocket socket(kernel, &recorder, "test");
  socket.bind(target);
  kernel.schedule_at(100, [&] {
    Payload write;
    write.command = Command::kWrite;
    write.data = {1, 2, 3};
    EXPECT_EQ(socket.transport(write), 130u);
  });
  kernel.run_all();
  EXPECT_EQ(recorder.transactions(), 1u);
}

TEST(Socket, TemporalDecouplingAccumulatesDelay) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  std::vector<std::pair<sim::Time, sim::Time>> spans;
  recorder.subscribe([&](const TransactionRecord& r) {
    spans.push_back({r.start, r.end});
  });
  EchoTarget target;
  InitiatorSocket socket(kernel, &recorder, "test");
  socket.bind(target);
  kernel.schedule_at(100, [&] {
    // Two writes issued from one kernel event with local offsets 0 and 10.
    Payload a;
    a.command = Command::kWrite;
    sim::Time da = 0;
    EXPECT_EQ(socket.transport(a, da), 130u);
    Payload b;
    b.command = Command::kWrite;
    sim::Time db = 10;
    EXPECT_EQ(socket.transport(b, db), 140u);
    EXPECT_EQ(db, 40u);  // 10 local + 30 target latency
  });
  kernel.run_all();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (std::pair<sim::Time, sim::Time>{100, 130}));
  EXPECT_EQ(spans[1], (std::pair<sim::Time, sim::Time>{110, 140}));
}

TEST(Socket, MonitoredFlagFollowsRecorderState) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  EchoTarget target;
  InitiatorSocket socket(kernel, &recorder, "test");
  socket.bind(target);
  kernel.schedule_at(10, [&] {
    Payload p;
    p.command = Command::kWrite;
    socket.transport(p);
    EXPECT_FALSE(target.saw_monitored);  // no listeners yet
  });
  kernel.run(10);
  recorder.subscribe([](const TransactionRecord&) {});
  kernel.schedule_at(20, [&] {
    Payload p;
    p.command = Command::kWrite;
    socket.transport(p);
    EXPECT_TRUE(target.saw_monitored);
  });
  kernel.run_all();
}

TEST(Socket, SilentPhasesAreCountedButNotDelivered) {
  sim::Kernel kernel;
  TransactionRecorder recorder(kernel);
  size_t delivered = 0;
  recorder.subscribe([&](const TransactionRecord&) { ++delivered; });
  EchoTarget target;
  InitiatorSocket socket(kernel, &recorder, "test");
  socket.bind(target);
  kernel.schedule_at(10, [&] {
    Payload loud;
    loud.command = Command::kWrite;
    socket.transport(loud);
    Payload silent;
    silent.command = Command::kWrite;
    silent.record = false;
    socket.transport(silent);
  });
  kernel.run_all();
  EXPECT_EQ(recorder.transactions(), 2u);
  EXPECT_EQ(delivered, 1u);
}

TEST(Socket, UnboundSocketReportsNotBound) {
  sim::Kernel kernel;
  InitiatorSocket socket(kernel, nullptr, "test");
  EXPECT_FALSE(socket.bound());
  EchoTarget target;
  socket.bind(target);
  EXPECT_TRUE(socket.bound());
}

TEST(Socket, ReadEchoesWrittenData) {
  sim::Kernel kernel;
  EchoTarget target;
  InitiatorSocket socket(kernel, nullptr, "test");
  socket.bind(target);
  kernel.schedule_at(10, [&] {
    Payload write;
    write.command = Command::kWrite;
    write.data = {7, 8};
    socket.transport(write);
    Payload read;
    read.command = Command::kRead;
    socket.transport(read);
    EXPECT_EQ(read.data, (std::vector<uint64_t>{7, 8}));
  });
  kernel.run_all();
}

}  // namespace
}  // namespace repro::tlm
