// Tests for the sharded evaluation engine and its thread pool: the engine
// must produce bit-identical per-property verdicts, stats and failure logs
// for any worker count, because every wrapper observes the same ordered
// transaction stream regardless of sharding.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "abv/eval_engine.h"
#include "abv/tlm_env.h"
#include "checker/wrapper.h"
#include "models/testbench.h"
#include "psl/parser.h"
#include "support/thread_pool.h"
#include "tlm/transaction.h"

namespace repro {
namespace {

// ---- ThreadPool ------------------------------------------------------------------

TEST(ThreadPool, RunsAllTasksWithWorkers) {
  support::ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run_all(tasks);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  support::ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  bool on_caller = false;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] { on_caller = std::this_thread::get_id() == caller; });
  pool.run_all(tasks);
  EXPECT_TRUE(on_caller);
}

TEST(ThreadPool, RunAllIsABarrierAcrossRounds) {
  // Each round must complete before the next starts: with a per-round
  // counter, no task of round k may observe a value from round k+1.
  support::ThreadPool pool(2);
  int rounds_done = 0;  // unsynchronized on purpose: run_all must order it
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> in_round{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&in_round] { in_round.fetch_add(1); });
    }
    pool.run_all(tasks);
    EXPECT_EQ(in_round.load(), 8);
    ++rounds_done;
  }
  EXPECT_EQ(rounds_done, 50);
}

TEST(ThreadPool, EmptyRoundIsANoOp) {
  support::ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  pool.run_all(tasks);  // must not hang
}

// ---- EvalEngine ------------------------------------------------------------------

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

tlm::TransactionRecord make_record(sim::Time end, uint64_t ds, uint64_t rdy,
                                   uint64_t out) {
  static auto keys = std::make_shared<tlm::Snapshot::Keys>(
      tlm::Snapshot::Keys{"ds", "rdy", "out"});
  tlm::TransactionRecord record;
  record.end = end;
  record.observables = tlm::Snapshot(keys);
  record.observables.set("ds", ds);
  record.observables.set("rdy", rdy);
  record.observables.set("out", out);
  return record;
}

// A mixed suite: time-scheduled, until-based (dense), and a data check that
// fails on part of the stream.
std::vector<psl::TlmProperty> mixed_suite() {
  return {
      tlm_prop("s1: always (!ds || next_e[1,40](rdy)) @Tb"),
      tlm_prop("s2: always (!ds || next_e[1,80](rdy)) @Tb"),
      tlm_prop("d1: always (!ds || (!rdy until rdy)) @Tb"),
      tlm_prop("f1: always (!ds || next_e[1,40](out != 0)) @Tb"),
      tlm_prop("s3: always (!ds || next_e[2,80](rdy)) @Tb"),
  };
}

// A deterministic stream with firings, on-time completions, missed
// deadlines (gaps) and zero `out` data (f1 failures).
std::vector<tlm::TransactionRecord> mixed_stream(size_t n) {
  std::vector<tlm::TransactionRecord> out;
  sim::Time t = 10;
  for (size_t i = 0; i < n; ++i) {
    const bool fire = i % 3 == 0;
    const bool gap = i % 7 == 6;       // skip ahead: deadlines get missed
    const uint64_t data = i % 5 == 0 ? 0 : i;  // zeros fail f1
    out.push_back(make_record(t, fire ? 1 : 0, fire ? 0 : 1, data));
    t += gap ? 130 : 40;
  }
  return out;
}

struct SuiteRun {
  std::vector<std::unique_ptr<checker::TlmCheckerWrapper>> wrappers;
};

SuiteRun run_suite(size_t jobs, size_t records) {
  SuiteRun run;
  abv::EvalEngine::Options options;
  options.config.jobs = jobs;
  options.config.batch_size = 16;  // force several seals plus a finish() tail
  abv::EvalEngine engine(options);
  for (const psl::TlmProperty& p : mixed_suite()) {
    run.wrappers.push_back(std::make_unique<checker::TlmCheckerWrapper>(p, 10));
    engine.add(run.wrappers.back().get());
  }
  for (const tlm::TransactionRecord& r : mixed_stream(records)) {
    engine.on_record(r);
  }
  engine.finish();
  return run;
}

void expect_identical(const SuiteRun& a, const SuiteRun& b) {
  ASSERT_EQ(a.wrappers.size(), b.wrappers.size());
  for (size_t i = 0; i < a.wrappers.size(); ++i) {
    const checker::TlmCheckerWrapper& wa = *a.wrappers[i];
    const checker::TlmCheckerWrapper& wb = *b.wrappers[i];
    ASSERT_EQ(wa.name(), wb.name());
    const checker::WrapperStats& sa = wa.stats();
    const checker::WrapperStats& sb = wb.stats();
    EXPECT_EQ(sa.transactions, sb.transactions) << wa.name();
    EXPECT_EQ(sa.activations, sb.activations) << wa.name();
    EXPECT_EQ(sa.failures, sb.failures) << wa.name();
    EXPECT_EQ(sa.holds, sb.holds) << wa.name();
    EXPECT_EQ(sa.trivial, sb.trivial) << wa.name();
    EXPECT_EQ(sa.uncompleted, sb.uncompleted) << wa.name();
    EXPECT_EQ(sa.reuses, sb.reuses) << wa.name();
    EXPECT_EQ(sa.steps, sb.steps) << wa.name();
    EXPECT_EQ(sa.real_passes, sb.real_passes) << wa.name();
    EXPECT_EQ(sa.vacuous_passes, sb.vacuous_passes) << wa.name();
    EXPECT_EQ(sa.missed_deadlines, sb.missed_deadlines) << wa.name();
    EXPECT_EQ(sa.node_visits, sb.node_visits) << wa.name();
    EXPECT_EQ(sa.pool_capacity, sb.pool_capacity) << wa.name();
    EXPECT_EQ(sa.table_peak, sb.table_peak) << wa.name();
    ASSERT_EQ(wa.failures().size(), wb.failures().size()) << wa.name();
    for (size_t k = 0; k < wa.failures().size(); ++k) {
      EXPECT_EQ(wa.failures()[k].time, wb.failures()[k].time) << wa.name();
      EXPECT_EQ(wa.failures()[k].property, wb.failures()[k].property);
    }
  }
}

TEST(EvalEngine, ShardedMatchesSerialOnMixedSuite) {
  const SuiteRun serial = run_suite(/*jobs=*/1, /*records=*/200);
  // The stream contains failures; the test is vacuous without them.
  uint64_t failures = 0;
  for (const auto& w : serial.wrappers) failures += w->stats().failures;
  EXPECT_GT(failures, 0u);
  for (size_t jobs : {2, 3, 4, 16}) {
    const SuiteRun sharded = run_suite(jobs, /*records=*/200);
    expect_identical(serial, sharded);
  }
}

TEST(EvalEngine, MoreJobsThanPropertiesIsCappedToOneShardEach) {
  const SuiteRun serial = run_suite(/*jobs=*/1, /*records=*/40);
  const SuiteRun sharded = run_suite(/*jobs=*/64, /*records=*/40);
  expect_identical(serial, sharded);
}

TEST(EvalEngine, FinishFlushesAPartialBatch) {
  // Fewer records than one batch: everything is evaluated at finish().
  const SuiteRun serial = run_suite(/*jobs=*/1, /*records=*/5);
  const SuiteRun sharded = run_suite(/*jobs=*/4, /*records=*/5);
  expect_identical(serial, sharded);
  uint64_t transactions = 0;
  for (const auto& w : sharded.wrappers) transactions += w->stats().transactions;
  EXPECT_EQ(transactions, 5u * sharded.wrappers.size());
}

TEST(EvalEngine, FinishWithoutRecordsRetiresNothing) {
  abv::EvalEngine::Options options;
  options.config.jobs = 4;
  abv::EvalEngine engine(options);
  auto p = tlm_prop("q: always (!ds || next_e[1,40](rdy)) @Tb");
  checker::TlmCheckerWrapper wrapper(p, 10);
  engine.add(&wrapper);
  engine.finish();
  EXPECT_EQ(wrapper.stats().transactions, 0u);
  EXPECT_EQ(wrapper.stats().activations, 0u);
}

// ---- Full-simulation serial-vs-sharded equivalence --------------------------------

void expect_reports_identical(const models::RunResult& a,
                              const models::RunResult& b) {
  EXPECT_EQ(a.functional_ok, b.functional_ok);
  EXPECT_EQ(a.properties_ok, b.properties_ok);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.sim_end_ns, b.sim_end_ns);
  ASSERT_EQ(a.report.properties().size(), b.report.properties().size());
  for (const abv::PropertyDelta& d : a.report.diff(b.report)) {
    ADD_FAILURE() << "report mismatch: " << d.to_string();
  }
}

void expect_jobs_equivalent(models::Design design, models::Level level,
                            size_t workload) {
  models::RunConfig config;
  config.design = design;
  config.level = level;
  config.workload = workload;
  config.checkers = 99;  // whole suite (clamped)
  config.engine.jobs = 1;
  const models::RunResult serial = models::run_simulation(config);
  EXPECT_TRUE(serial.functional_ok);
  config.engine.jobs = 4;
  const models::RunResult sharded = models::run_simulation(config);
  expect_reports_identical(serial, sharded);
}

TEST(JobsEquivalence, Des56TlmAt) {
  expect_jobs_equivalent(models::Design::kDes56, models::Level::kTlmAt, 60);
}

TEST(JobsEquivalence, Des56TlmCa) {
  expect_jobs_equivalent(models::Design::kDes56, models::Level::kTlmCa, 40);
}

TEST(JobsEquivalence, ColorConvTlmAt) {
  expect_jobs_equivalent(models::Design::kColorConv, models::Level::kTlmAt, 600);
}

TEST(JobsEquivalence, ColorConvTlmCa) {
  expect_jobs_equivalent(models::Design::kColorConv, models::Level::kTlmCa, 300);
}

// ---- TlmAbvEnv jobs knob ----------------------------------------------------------

TEST(EvalEngine, TlmAbvEnvThreadsJobsThrough) {
  abv::TlmAbvEnv env(10, 4);
  EXPECT_EQ(env.jobs(), 4u);
  env.set_jobs(0);  // clamped
  EXPECT_EQ(env.jobs(), 1u);
  env.set_jobs(2);
  EXPECT_EQ(env.jobs(), 2u);
}

}  // namespace
}  // namespace repro
