// Coverage & vacuity telemetry tests: antecedent derivation (psl level and
// the compiled program's node-set mirror), the real/vacuous pass split on
// every checker backend, missed-deadline counting, the recycled-lane
// exercised bit, the CoverageTable and its JSON, the EvalEngine JSONL
// snapshot sampler, the schema_version 2 report coverage section, and the
// static-vs-dynamic cross-check (COV001/COV002).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abv/eval_engine.h"
#include "abv/report.h"
#include "analysis/coverage_check.h"
#include "checker/batch.h"
#include "checker/checker.h"
#include "checker/instance.h"
#include "checker/program.h"
#include "checker/trace.h"
#include "checker/wrapper.h"
#include "psl/ast.h"
#include "psl/parser.h"
#include "support/coverage.h"
#include "tlm/transaction.h"

namespace repro::checker {
namespace {

using psl::ExprPtr;

ExprPtr parse(const std::string& text) {
  auto result = psl::parse_expr(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

// ---- Antecedent derivation ------------------------------------------------------

TEST(CoverageAntecedent, BooleanImplicationYieldsItsAntecedent) {
  const ExprPtr ant = derive_antecedent(parse("a -> next[1](b)"));
  ASSERT_NE(ant, nullptr);
  MapContext values;
  values.set("a", 1);
  EXPECT_TRUE(eval_boolean(ant, values));
  values.set("a", 0);
  EXPECT_FALSE(eval_boolean(ant, values));
}

TEST(CoverageAntecedent, GuardedOrYieldsNegatedGuard) {
  // NNF guard idiom: `!ds || temporal` passes vacuously exactly when the
  // boolean disjunct alone decided it, i.e. when ds is low.
  const ExprPtr ant = derive_antecedent(parse("!ds || next[1](rdy)"));
  ASSERT_NE(ant, nullptr);
  MapContext values;
  values.set("ds", 1);
  EXPECT_TRUE(eval_boolean(ant, values));
  values.set("ds", 0);
  EXPECT_FALSE(eval_boolean(ant, values));
}

TEST(CoverageAntecedent, NestedGuardsConjoin) {
  const ExprPtr ant = derive_antecedent(parse("a -> (!b || next[1](c))"));
  ASSERT_NE(ant, nullptr);
  MapContext values;
  values.set("a", 1);
  values.set("b", 1);
  EXPECT_TRUE(eval_boolean(ant, values));  // both guards fired
  values.set("b", 0);
  EXPECT_FALSE(eval_boolean(ant, values));
  values.set("a", 0);
  values.set("b", 1);
  EXPECT_FALSE(eval_boolean(ant, values));
}

TEST(CoverageAntecedent, NoGuardShapeYieldsNull) {
  EXPECT_EQ(derive_antecedent(parse("next[1](b)")), nullptr);
  EXPECT_EQ(derive_antecedent(parse("a && b")), nullptr);
  // Guards under a temporal operator are out of scope: the walk stops at
  // the first temporal node.
  EXPECT_EQ(derive_antecedent(parse("next[1](a -> b)")), nullptr);
  // Two temporal operands leave no boolean guard to split on.
  EXPECT_EQ(derive_antecedent(parse("next[1](a) || next[2](b)")), nullptr);
}

TEST(CoverageAntecedent, ProgramMirrorsAntecedentNodeSet) {
  const auto guarded = Program::compile(parse("a -> next[1](b)"));
  EXPECT_FALSE(guarded->antecedent_nodes().empty());
  std::ostringstream guarded_listing;
  guarded->dump(guarded_listing);
  EXPECT_NE(guarded_listing.str().find("| ant"), std::string::npos);

  const auto unguarded = Program::compile(parse("next[1](b)"));
  EXPECT_TRUE(unguarded->antecedent_nodes().empty());
  std::ostringstream unguarded_listing;
  unguarded->dump(unguarded_listing);
  EXPECT_EQ(unguarded_listing.str().find("| ant"), std::string::npos);
}

// ---- Real vs vacuous pass counting ----------------------------------------------

// Drives `always (a -> next[1](b))` so one activation passes with the
// antecedent fired (real) and one resolves trivially off a false antecedent
// (vacuous), on each backend.
void expect_vacuity_split(const CheckerOptions& options) {
  PropertyChecker checker("p", parse("always (a -> next[1](b))"), nullptr,
                          options);
  MapContext fired;
  fired.set("a", 1);
  fired.set("b", 0);
  MapContext idle;
  idle.set("a", 0);
  idle.set("b", 1);
  checker.on_event(10, fired);  // activates with antecedent fired
  checker.on_event(20, idle);   // resolves the first instance: b=1, real pass;
                                // activates a second with a=0: trivial, vacuous
  checker.finish();
  const CheckerStats& s = checker.stats();
  EXPECT_EQ(s.activations, 2u);
  EXPECT_EQ(s.failures, 0u);
  EXPECT_EQ(s.holds, 2u);
  EXPECT_EQ(s.real_passes, 1u);
  EXPECT_EQ(s.vacuous_passes, 1u);
  EXPECT_EQ(s.holds, s.real_passes + s.vacuous_passes);
  EXPECT_GT(s.node_visits, 0u);
}

TEST(CoverageVacuity, SplitOnInterpreterBackend) {
  CheckerOptions options;
  options.compiled = false;
  expect_vacuity_split(options);
}

TEST(CoverageVacuity, SplitOnCompiledScalarBackend) {
  CheckerOptions options;
  options.compiled = true;
  options.vectorized = false;
  expect_vacuity_split(options);
}

TEST(CoverageVacuity, SplitOnLockstepBackend) {
  CheckerOptions options;
  options.compiled = true;
  options.vectorized = true;
  expect_vacuity_split(options);
}

TEST(CoverageVacuity, UnguardedPropertyCountsEveryHoldAsReal) {
  PropertyChecker checker("p", parse("always (next[1](b))"), nullptr);
  MapContext values;
  values.set("b", 1);
  checker.on_event(10, values);
  checker.on_event(20, values);
  checker.finish();
  const CheckerStats& s = checker.stats();
  EXPECT_GT(s.holds, 0u);
  EXPECT_EQ(s.vacuous_passes, 0u);
  EXPECT_EQ(s.real_passes, s.holds);
}

// ---- Wrapper: missed deadlines and the split ------------------------------------

MapContext handshake(bool ds, bool rdy) {
  MapContext values;
  values.set("ds", ds ? 1 : 0);
  values.set("rdy", rdy ? 1 : 0);
  return values;
}

TEST(CoverageWrapper, CountsMissedDeadlinesAndVacuousPasses) {
  const psl::TlmProperty p = tlm_prop("w: always (!ds || next_e[1,20](rdy)) @Tb");
  TlmCheckerWrapper wrapper(p, 10);
  // ds at t=10 schedules a deadline at t=30; the next transaction arrives
  // long past it, so the evaluation-table pop counts a missed deadline.
  wrapper.on_transaction(10, handshake(true, false));
  wrapper.on_transaction(100, handshake(false, false));
  wrapper.finish();
  const WrapperStats& s = wrapper.stats();
  EXPECT_EQ(s.missed_deadlines, 1u);
  EXPECT_GT(s.failures, 0u);       // rdy never rose inside the window
  EXPECT_GT(s.vacuous_passes, 0u); // the ds=0 activation resolved trivially
  EXPECT_EQ(s.holds, s.real_passes + s.vacuous_passes);
}

TEST(CoverageWrapper, RealPassWhenConsequentExercised) {
  const psl::TlmProperty p = tlm_prop("w: always (!ds || next_e[1,20](rdy)) @Tb");
  TlmCheckerWrapper wrapper(p, 10);
  wrapper.on_transaction(10, handshake(true, false));
  wrapper.on_transaction(20, handshake(false, true));  // rdy inside the window
  wrapper.finish();
  const WrapperStats& s = wrapper.stats();
  EXPECT_EQ(s.failures, 0u);
  EXPECT_GE(s.real_passes, 1u);
  EXPECT_EQ(s.missed_deadlines, 0u);
  EXPECT_EQ(s.holds, s.real_passes + s.vacuous_passes);
}

// ---- Recycled lanes / instances forget the exercised bit ------------------------

TEST(CoverageExercisedBit, ScalarInstanceResetClearsIt) {
  const auto program = Program::compile(parse("a -> next[1](b)"));
  Instance instance(program);
  instance.set_exercised(true);
  EXPECT_TRUE(instance.exercised());
  instance.reset();
  EXPECT_FALSE(instance.exercised());
}

TEST(CoverageExercisedBit, RecycledLaneStartsNotExercised) {
  auto block = std::make_shared<BatchState>(
      std::make_shared<const ProgramBatch>(Program::compile(parse("a"))));
  const uint32_t lane = block->allocate_lane();
  block->set_exercised(lane, true);
  EXPECT_TRUE(block->exercised(lane));
  block->reset_lane(lane);
  EXPECT_FALSE(block->exercised(lane));
  // Neighbouring lanes are untouched by another lane's reset.
  const uint32_t other = block->allocate_lane();
  block->set_exercised(other, true);
  block->reset_lane(lane);
  EXPECT_TRUE(block->exercised(other));
}

// ---- CoverageTable --------------------------------------------------------------

TEST(CoverageTable, RowsAreStableAndSnapshotsCopyValues) {
  support::CoverageTable table;
  support::CoverageTable::Row& row = table.row("p1");
  EXPECT_EQ(&row, &table.row("p1"));  // create-on-first-use, stable reference
  row.activations.store(3, std::memory_order_relaxed);
  row.holds.store(2, std::memory_order_relaxed);
  row.real_passes.store(2, std::memory_order_relaxed);
  table.row("p2").failures.store(1, std::memory_order_relaxed);
  ASSERT_EQ(table.size(), 2u);

  const auto rows = table.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "p1");
  EXPECT_EQ(rows[0].activations, 3u);
  EXPECT_FALSE(rows[0].dynamically_vacuous());
  EXPECT_EQ(rows[1].name, "p2");
  EXPECT_FALSE(rows[1].dynamically_vacuous());  // it failed: not vacuous
  EXPECT_TRUE(support::CoverageTable::RowSnapshot{}.dynamically_vacuous());
}

TEST(CoverageTable, WritesCompactSingleLineJson) {
  support::CoverageTable table;
  table.row("p\"q").holds.store(1, std::memory_order_relaxed);
  std::ostringstream os;
  table.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"p\\\"q\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"holds\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dynamically_vacuous\":true"), std::string::npos);
}

// ---- EvalEngine JSONL snapshot sampler ------------------------------------------

std::vector<tlm::TransactionRecord> handshake_stream(size_t n) {
  static auto keys =
      std::make_shared<tlm::Snapshot::Keys>(tlm::Snapshot::Keys{"ds", "rdy"});
  std::vector<tlm::TransactionRecord> records;
  for (size_t i = 0; i < n; ++i) {
    tlm::TransactionRecord r;
    r.end = 10 * (i + 1);
    r.observables = tlm::Snapshot(keys);
    r.observables.set("ds", i % 2 == 0 ? 1 : 0);
    r.observables.set("rdy", i % 2 == 0 ? 0 : 1);
    records.push_back(std::move(r));
  }
  return records;
}

// Runs a tiny wrapper suite through the engine with the sampler on and
// returns the emitted JSONL lines.
std::vector<std::string> sample_run(size_t jobs, size_t interval) {
  const psl::TlmProperty p = tlm_prop("w: always (!ds || next_e[1,20](rdy)) @Tb");
  TlmCheckerWrapper wrapper(p, 10);
  support::CoverageTable coverage;
  wrapper.set_coverage(&coverage.row(wrapper.name()));
  std::ostringstream os;
  abv::EvalEngine::Options options;
  options.config.jobs = jobs;
  options.config.batch_size = 4;
  options.metrics_out = &os;
  options.metrics_interval = interval;
  options.coverage = &coverage;
  abv::EvalEngine engine(options);
  engine.add(&wrapper);
  for (const tlm::TransactionRecord& r : handshake_stream(20)) {
    engine.on_record(r);
  }
  engine.finish();

  std::vector<std::string> lines;
  std::istringstream in(os.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(CoverageSampler, EmitsPeriodicLinesAndExactFinalLine) {
  const std::vector<std::string> lines = sample_run(/*jobs=*/1, /*interval=*/5);
  // 20 records at interval 5 -> 4 mid-run lines + 1 final.
  ASSERT_EQ(lines.size(), 5u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"schema_version\":1"), std::string::npos) << i;
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(i)), std::string::npos)
        << i;
    const bool last = i + 1 == lines.size();
    EXPECT_NE(lines[i].find(last ? "\"final\":true" : "\"final\":false"),
              std::string::npos)
        << i;
    EXPECT_NE(lines[i].find("\"metrics\":{"), std::string::npos) << i;
    EXPECT_NE(lines[i].find("\"coverage\":["), std::string::npos) << i;
  }
  EXPECT_NE(lines.back().find("\"records\":20"), std::string::npos);
}

TEST(CoverageSampler, ZeroIntervalEmitsOnlyTheFinalLine) {
  const std::vector<std::string> lines = sample_run(/*jobs=*/1, /*interval=*/0);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"final\":true"), std::string::npos);
}

// The final line is taken after every shard joined, so its coverage array is
// exact and identical across worker counts (mid-run lines may differ).
TEST(CoverageSampler, FinalCoverageIdenticalAcrossJobs) {
  auto final_coverage = [](size_t jobs) {
    const std::vector<std::string> lines = sample_run(jobs, /*interval=*/0);
    EXPECT_EQ(lines.size(), 1u);
    const size_t at = lines.back().find("\"coverage\":");
    EXPECT_NE(at, std::string::npos);
    return lines.back().substr(at);
  };
  const std::string serial = final_coverage(1);
  EXPECT_EQ(serial, final_coverage(4));
}

// ---- Report schema v2 -----------------------------------------------------------

TEST(CoverageReport, JsonCarriesCoverageSectionAndPrintTheSplitColumns) {
  PropertyChecker checker("p", parse("always (a -> next[1](b))"), nullptr);
  MapContext values;
  values.set("a", 0);
  values.set("b", 0);
  checker.on_event(10, values);
  checker.finish();
  abv::Report report;
  report.add(checker);

  std::ostringstream json;
  report.write_json(json);
  EXPECT_NE(json.str().find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.str().find("\"coverage\": ["), std::string::npos);
  EXPECT_NE(json.str().find("\"vacuous_passes\""), std::string::npos);
  EXPECT_NE(json.str().find("\"dynamically_vacuous\": true"), std::string::npos);
  EXPECT_NE(json.str().find("\"latency_ns\""), std::string::npos);

  std::ostringstream table;
  report.print(table);
  EXPECT_NE(table.str().find("real"), std::string::npos);
  EXPECT_NE(table.str().find("vacuous"), std::string::npos);
}

// ---- Static-vs-dynamic cross-check ----------------------------------------------

analysis::DynamicCoverage observed(const std::string& name, uint64_t activations,
                                   uint64_t failures, uint64_t real,
                                   uint64_t vacuous) {
  analysis::DynamicCoverage c;
  c.property = name;
  c.activations = activations;
  c.failures = failures;
  c.real_passes = real;
  c.vacuous_passes = vacuous;
  return c;
}

analysis::Diagnostic static_vacuity(const std::string& code,
                                    const std::string& property) {
  analysis::Diagnostic d;
  d.code = code;
  d.severity = analysis::Severity::kWarning;
  d.property = property;
  d.check = "bool-semantics";
  return d;
}

TEST(CoverageCrossCheck, FlagsDynamicallyVacuousWhenStaticallyClean) {
  const auto diags = analysis::cross_check_coverage(
      {}, {observed("p", 5, 0, 0, 5), observed("q", 0, 0, 0, 0)});
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].code, "COV001");
  EXPECT_EQ(diags[0].property, "p");
  EXPECT_NE(diags[0].message.find("vacuously"), std::string::npos);
  EXPECT_EQ(diags[1].code, "COV001");
  EXPECT_NE(diags[1].message.find("never activated"), std::string::npos);
}

TEST(CoverageCrossCheck, FlagsExercisedWhenStaticallyVacuous) {
  const auto diags = analysis::cross_check_coverage(
      {static_vacuity("SEM003", "p")}, {observed("p", 5, 1, 2, 2)});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "COV002");
  EXPECT_EQ(diags[0].property, "p");
}

TEST(CoverageCrossCheck, AgreementProducesNoDiagnostics) {
  // Statically vacuous and dynamically vacuous: consistent. Statically
  // clean and dynamically exercised: consistent. Non-vacuity codes on a
  // dynamically vacuous property do not count as a prediction.
  EXPECT_TRUE(analysis::cross_check_coverage({static_vacuity("SEM003", "p")},
                                             {observed("p", 5, 0, 0, 5)})
                  .empty());
  EXPECT_TRUE(
      analysis::cross_check_coverage({}, {observed("p", 5, 0, 5, 0)}).empty());
  const auto diags = analysis::cross_check_coverage(
      {static_vacuity("SIZ001", "p")}, {observed("p", 5, 0, 0, 5)});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "COV001");  // SIZ001 is not a vacuity prediction
}

}  // namespace
}  // namespace repro::checker
