// Timing equivalence (Def. III.1) across abstraction levels, checked the way
// Theorem III.1's proof requires it: for every preserved interface signal,
// every instant where the signal takes a new value at RTL must have a TLM
// transaction at the same instant exposing that value. (TLM models may add
// further evaluation points — e.g. response phases — without breaking
// equivalence.)
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "models/colorconv/colorconv_rtl.h"
#include "models/colorconv/colorconv_tlm_at.h"
#include "models/colorconv/colorconv_tlm_ca.h"
#include "models/des56/des56_rtl.h"
#include "models/des56/des56_tlm_at.h"
#include "models/des56/des56_tlm_ca.h"
#include "models/stimulus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/trace.h"
#include "tlm/recorder.h"
#include "tlm/socket.h"

namespace repro::models {
namespace {

// All (time, value) pairs a TLM run exposed per signal.
using TlmExposure = std::map<std::string, std::set<std::pair<sim::Time, uint64_t>>>;

void collect(TlmExposure& exposure, const tlm::TransactionRecord& record,
             const std::vector<std::string>& signals) {
  for (const auto& name : signals) {
    if (auto v = record.observables.get(name)) {
      exposure[name].insert({record.end, *v});
    }
  }
}

// Checks that every RTL change (after t=0 initials) is covered by a TLM
// exposure at the same instant with the same value. Driver inputs commit at
// the falling edge but become *observable* at the following rising edge, so
// change instants are normalized up to the sampling grid (Def. III.1 talks
// about assignments as seen at the models' evaluation points).
void expect_covered(const std::vector<sim::Change>& rtl_changes,
                    const TlmExposure& exposure,
                    const std::vector<std::string>& signals,
                    const std::string& level, sim::Time period = 10) {
  for (const auto& name : signals) {
    size_t checked = 0;
    for (const auto& change : rtl_changes) {
      if (change.name != name) continue;
      if (change.time == 0) continue;  // initial value, not an assignment
      const sim::Time observed =
          (change.time + period - 1) / period * period;
      const auto it = exposure.find(name);
      ASSERT_NE(it, exposure.end()) << level << ": signal " << name;
      EXPECT_TRUE(it->second.count({observed, change.value}))
          << level << ": " << name << " = " << change.value << " at "
          << observed << " ns not exposed by any transaction";
      ++checked;
    }
    EXPECT_GT(checked, 0u) << name << " never changed at RTL: weak test";
  }
}

// ---- DES56 ---------------------------------------------------------------------

std::vector<sim::Change> des56_rtl_changes(const std::vector<DesOp>& ops) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  Des56Rtl duv(kernel, clock);
  Des56DriverModel driver(ops);
  clock.on_negedge([&] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    const Des56Inputs in = driver.tick(duv.rdy.read(), duv.out.read());
    duv.ds.write(in.ds);
    duv.indata.write(in.indata);
    duv.key.write(in.key);
    duv.decrypt.write(in.decrypt);
  });
  sim::ChangeLog log(kernel);
  log.watch(duv.ds);
  log.watch(duv.rdy);
  log.watch(duv.out);
  kernel.run(100'000'000);
  EXPECT_EQ(driver.mismatches(), 0u);
  return log.changes();
}

TEST(TimingEquivalence, Des56RtlVsTlmAt) {
  const std::vector<DesOp> ops = make_des_ops(12, 77);
  const std::vector<std::string> signals = {"ds", "rdy", "out"};

  const std::vector<sim::Change> rtl_changes = des56_rtl_changes(ops);

  // TLM-AT run collecting every exposed record.
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  TlmExposure exposure;
  recorder.subscribe([&](const tlm::TransactionRecord& record) {
    collect(exposure, record, signals);
  });
  Des56TlmAt target(kernel, &recorder, 10);
  tlm::InitiatorSocket socket(kernel, &recorder, "at");
  socket.bind(target);
  size_t index = 0;
  std::function<void()> submit = [&] {
    tlm::Payload write;
    write.command = tlm::Command::kWrite;
    write.data = {ops[index].indata, ops[index].key,
                  ops[index].decrypt ? uint64_t{1} : 0};
    socket.transport(write);
    tlm::Payload read;
    read.command = tlm::Command::kRead;
    const sim::Time done = socket.transport(read);
    ++index;
    if (index < ops.size()) {
      kernel.schedule_at(kernel.now() + (18 + ops[index].gap) * 10, submit);
    } else {
      kernel.schedule_at(done + 40, [&kernel] { kernel.stop(); });
    }
  };
  kernel.schedule_at((ops[0].gap + 1) * 10, submit);
  kernel.run(100'000'000);

  expect_covered(rtl_changes, exposure, signals, "TLM-AT");
}

TEST(TimingEquivalence, Des56RtlVsTlmCa) {
  const std::vector<DesOp> ops = make_des_ops(12, 77);
  const std::vector<std::string> signals = {"ds", "rdy", "out"};

  const std::vector<sim::Change> rtl_changes = des56_rtl_changes(ops);

  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  TlmExposure exposure;
  recorder.subscribe([&](const tlm::TransactionRecord& record) {
    collect(exposure, record, signals);
  });
  Des56TlmCa target;
  tlm::InitiatorSocket socket(kernel, &recorder, "ca");
  socket.bind(target);
  Des56DriverModel driver(ops);
  auto inputs = std::make_shared<Des56Inputs>();
  std::function<void()> cycle = [&, inputs] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    tlm::Payload payload;
    payload.command = tlm::Command::kWrite;
    payload.data = {inputs->ds ? uint64_t{1} : 0, inputs->indata, inputs->key,
                    inputs->decrypt ? uint64_t{1} : 0};
    socket.transport(payload);
    *inputs = driver.tick(payload.data[1] != 0, payload.data[0]);
    kernel.schedule_at(kernel.now() + 10, cycle);
  };
  kernel.schedule_at(0, cycle);
  kernel.run(100'000'000);
  EXPECT_EQ(driver.mismatches(), 0u);

  expect_covered(rtl_changes, exposure, signals, "TLM-CA");
}

// ---- ColorConv -----------------------------------------------------------------

TEST(TimingEquivalence, ColorConvRtlVsTlmAt) {
  const std::vector<CcBurst> bursts = make_cc_bursts(60, 13);
  const std::vector<std::string> signals = {"ds", "rdy", "y"};

  // RTL run.
  sim::Kernel rtl_kernel;
  sim::Clock clock(rtl_kernel, "clk", 10, 0);
  ColorConvRtl duv(rtl_kernel, clock);
  ColorConvDriverModel driver(bursts);
  clock.on_negedge([&] {
    if (driver.done()) {
      rtl_kernel.stop();
      return;
    }
    const ColorConvDrive drive =
        driver.tick(duv.rdy.read(), static_cast<uint8_t>(duv.y.read()),
                    static_cast<uint8_t>(duv.cb.read()),
                    static_cast<uint8_t>(duv.cr.read()));
    duv.ds.write(drive.inputs.ds);
    duv.r.write(drive.inputs.r);
    duv.g.write(drive.inputs.g);
    duv.b.write(drive.inputs.b);
  });
  sim::ChangeLog rtl_log(rtl_kernel);
  rtl_log.watch(duv.ds);
  rtl_log.watch(duv.rdy);
  rtl_log.watch(duv.y);
  rtl_kernel.run(100'000'000);
  EXPECT_EQ(driver.mismatches(), 0u);
  const std::vector<sim::Change> rtl_changes = rtl_log.changes();

  // TLM-AT run (temporally decoupled, with silent coincident reads — the
  // write records at the same instants must still cover all changes).
  sim::Kernel kernel;
  tlm::TransactionRecorder recorder(kernel);
  TlmExposure exposure;
  recorder.subscribe([&](const tlm::TransactionRecord& record) {
    collect(exposure, record, signals);
  });
  ColorConvTlmAt target(kernel, &recorder, 10);
  tlm::InitiatorSocket socket(kernel, &recorder, "at");
  socket.bind(target);
  size_t burst_index = 0;
  std::function<void()> burst_fn = [&] {
    const CcBurst& burst = bursts[burst_index];
    const sim::Time t0 = kernel.now();
    const size_t n = burst.pixels.size();
    for (size_t i = 0; i < n; ++i) {
      const Pixel& p = burst.pixels[i];
      tlm::Payload write;
      write.command = tlm::Command::kWrite;
      write.data = {p.r, p.g, p.b, i == 0 ? uint64_t{1} : 0};
      sim::Time wd = i * 10;
      socket.transport(write, wd);
      tlm::Payload read;
      read.command = tlm::Command::kRead;
      read.record = i + 8 >= n;
      sim::Time rd = i * 10;
      socket.transport(read, rd);
    }
    target.emit_idle(t0 + n * 10);
    target.emit_idle(t0 + (n + 8) * 10);
    ++burst_index;
    if (burst_index < bursts.size()) {
      kernel.schedule_at(t0 + (n + bursts[burst_index].gap) * 10, burst_fn);
    } else {
      kernel.schedule_at(t0 + (n + 12) * 10, [&kernel] { kernel.stop(); });
    }
  };
  kernel.schedule_at((bursts[0].gap + 1) * 10, burst_fn);
  kernel.run(100'000'000);

  expect_covered(rtl_changes, exposure, signals, "TLM-AT");
}

}  // namespace
}  // namespace repro::models
